// Package migrate implements SNIPE process migration (paper §5.6).
//
// The protocol follows the paper step for step:
//
//  1. The process's communication addresses are withdrawn from the RC
//     servers, so new senders resolve no address and their traffic is
//     held in the comm layer's system buffer.
//  2. The process checkpoints (cooperatively, via its task context, or
//     — for playground code — by VM snapshot), capturing its state and
//     its endpoint's sequence numbers.
//  3. The checkpoint is optionally staged on a SNIPE file server:
//     "temporary storage of state is provided by the SNIPE file
//     servers".
//  4. The destination daemon adopts the task under its existing URN,
//     restoring state and sequences, and publishes the new location —
//     "after migration the process updates RC servers with its new
//     location".
//  5. Interested parties on the notify list learn of the move through
//     the daemons' state-change notifications; senders that never
//     noticed the migration "find its new location via the RC
//     servers" when their buffered retries re-resolve.
//
// Because unacknowledged messages stay buffered at their senders until
// the receiver acknowledges from its new home, "processes with open
// communications are guaranteed no loss of data while migration is in
// progress" — the property experiment E5 measures.
//
// The paper's general case is migration initiated by the process
// itself; in this build the orchestration runs wherever a catalog and
// an endpoint are available (the process, its daemon, or a resource
// manager — the paper's §5.6 notes the daemon may arrange it for
// programming environments with migration support).
package migrate

import (
	"fmt"
	"sync/atomic"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/fileserv"
	"snipe/internal/lifn"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
)

var reqIDs atomic.Uint64

// Options tunes a migration.
type Options struct {
	// CheckpointTimeout bounds how long the task may take to honour the
	// checkpoint request.
	CheckpointTimeout time.Duration
	// Stage, if non-nil, stores the checkpoint on a file server before
	// restart and records the LIFN in the task's metadata.
	Stage *Staging
	// TransferDelay, if positive, is waited between checkpoint and
	// restart — the time a checkpoint took to cross a 1997 network.
	// Experiments use it to widen the window in which the process has
	// no registered address.
	TransferDelay time.Duration
}

// Staging names where checkpoints are stored.
type Staging struct {
	Client    *fileserv.Client
	ServerURN string
}

// Local migrates a task between two daemons in the same process,
// using their Go APIs directly. Returns the duration the task was
// unavailable (checkpoint start to adoption).
func Local(cat naming.Catalog, src, dst *daemon.Daemon, taskURN string, opts Options) (time.Duration, error) {
	if opts.CheckpointTimeout == 0 {
		opts.CheckpointTimeout = 10 * time.Second
	}
	start := time.Now()

	// 1. Withdraw addresses; mark migrating. New senders now buffer.
	cat.Set(taskURN, rcds.AttrState, string(task.StateMigrating))
	if err := naming.Unregister(cat, taskURN); err != nil {
		return 0, err
	}

	// 2. Checkpoint.
	spec, err := src.Checkpoint(taskURN, opts.CheckpointTimeout)
	if err != nil {
		return 0, fmt.Errorf("migrate: checkpoint: %w", err)
	}

	// 3. Stage the state on a file server.
	if err := stage(cat, taskURN, &spec, opts.Stage); err != nil {
		return 0, err
	}
	if opts.TransferDelay > 0 {
		time.Sleep(opts.TransferDelay)
	}

	// 4. Restart at the destination; this republishes addresses and
	// state and fires notify-list messages.
	if err := dst.Adopt(taskURN, spec); err != nil {
		return 0, fmt.Errorf("migrate: adopt: %w", err)
	}
	downtime := time.Since(start)

	// 5. End the old location's relay window.
	src.Release(taskURN)
	return downtime, nil
}

// Remote migrates a task using only the daemons' message protocols —
// the form a console or resource manager uses across hosts. ep is the
// orchestrator's endpoint; srcDaemonURN and dstDaemonURN are the host
// daemons involved.
func Remote(cat naming.Catalog, ep *comm.Endpoint, taskURN, srcDaemonURN, dstDaemonURN string, opts Options) (time.Duration, error) {
	if opts.CheckpointTimeout == 0 {
		opts.CheckpointTimeout = 10 * time.Second
	}
	start := time.Now()

	cat.Set(taskURN, rcds.AttrState, string(task.StateMigrating))
	if err := naming.Unregister(cat, taskURN); err != nil {
		return 0, err
	}

	spec, err := daemon.CheckpointRemote(ep, srcDaemonURN, taskURN, reqIDs.Add(1), opts.CheckpointTimeout)
	if err != nil {
		return 0, fmt.Errorf("migrate: remote checkpoint: %w", err)
	}
	if err := stage(cat, taskURN, &spec, opts.Stage); err != nil {
		return 0, err
	}
	if opts.TransferDelay > 0 {
		time.Sleep(opts.TransferDelay)
	}
	if err := daemon.MigrateRemote(ep, dstDaemonURN, taskURN, spec, reqIDs.Add(1), opts.CheckpointTimeout); err != nil {
		return 0, fmt.Errorf("migrate: remote adopt: %w", err)
	}
	// End the old location's tenure (best effort: the quiesced endpoint
	// holds no state the new location needs).
	daemon.ReleaseRemote(ep, srcDaemonURN, taskURN)
	return time.Since(start), nil
}

// stage writes the checkpoint to a file server and records its LIFN as
// the task's supervisor state (§5.2.3's supervisor LIFN).
func stage(cat naming.Catalog, taskURN string, spec *task.Spec, st *Staging) error {
	if st == nil || spec.Checkpoint == nil {
		return nil
	}
	name := lifn.New("ckpt", spec.Checkpoint)
	if err := st.Client.Store(st.ServerURN, name, spec.Checkpoint); err != nil {
		return fmt.Errorf("migrate: staging checkpoint: %w", err)
	}
	if err := lifn.Bind(cat, name, st.ServerURN); err != nil {
		return err
	}
	return cat.Set(taskURN, rcds.AttrSupervisorLIFN, name)
}
