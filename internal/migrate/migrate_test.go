package migrate

import (
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/fileserv"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

type world struct {
	t     *testing.T
	store *rcds.Store
	cat   naming.Catalog
	reg   *task.Registry
}

func newWorld(t *testing.T) *world {
	s := rcds.NewStore("mig-test")
	w := &world{t: t, store: s, cat: naming.StoreCatalog(s), reg: task.NewRegistry()}

	// counter: receives tag-1 messages, counts them, acknowledges each
	// by sending the running count back to the controller; checkpoints
	// its count on request.
	w.reg.Register("counter", func(ctx *task.Context) error {
		count := uint32(0)
		if st := ctx.RestoredState(); st != nil {
			d := xdr.NewDecoder(st)
			v, err := d.Uint32()
			if err != nil {
				return err
			}
			count = v
		}
		for {
			select {
			case <-ctx.CheckpointRequested():
				e := xdr.NewEncoder(4)
				e.PutUint32(count)
				ctx.SaveCheckpoint(e.Bytes())
				return task.ErrMigrated
			case <-ctx.Done():
				return task.ErrKilled
			default:
			}
			m, err := ctx.RecvMatch("", 1, 20*time.Millisecond)
			if err != nil {
				continue
			}
			count++
			e := xdr.NewEncoder(8)
			e.PutUint32(count)
			e.PutUint8(m.Payload[0])
			ctx.Send("urn:controller", 2, e.Bytes())
		}
	})
	return w
}

func (w *world) daemon(host string) *daemon.Daemon {
	w.t.Helper()
	d := daemon.New(daemon.Config{HostName: host, Catalog: w.cat, Registry: w.reg})
	if err := d.Start(); err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(d.Close)
	return d
}

func (w *world) endpoint(urn string) *comm.Endpoint {
	w.t.Helper()
	res := naming.NewResolver(w.cat)
	res.SetTTL(20 * time.Millisecond)
	ep := comm.NewEndpoint(urn,
		comm.WithResolver(res),
		comm.WithRetryInterval(50*time.Millisecond))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		w.t.Fatal(err)
	}
	naming.Register(w.cat, urn, []comm.Route{route})
	w.t.Cleanup(ep.Close)
	return ep
}

// TestLocalMigrationZeroLoss drives E5's scenario: a controller
// streams numbered messages at the counter task while it migrates
// between daemons; every message must be counted exactly once, in
// order.
func TestLocalMigrationZeroLoss(t *testing.T) {
	w := newWorld(t)
	streamAndMigrateLocal(t, w, func(src, dst *daemon.Daemon, taskURN string) {
		if _, err := Local(w.cat, src, dst, taskURN, Options{}); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
}

// streamAndMigrateLocal is like streamAndMigrate but passes daemon
// handles to the migration callback.
func streamAndMigrateLocal(t *testing.T, w *world, doMigrate func(src, dst *daemon.Daemon, taskURN string)) {
	t.Helper()
	controller := w.endpoint("urn:controller")
	d1 := w.daemon("h1")
	d2 := w.daemon("h2")

	taskURN, err := d1.Spawn(task.Spec{Program: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	go func() {
		for i := 0; i < total; i++ {
			controller.Send(taskURN, 1, []byte{byte(i)})
			if i == total/2 {
				doMigrate(d1, d2, taskURN)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for i := 0; i < total; i++ {
		m, err := recvMatchT(controller, "", 2, 20*time.Second)
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		d := xdr.NewDecoder(m.Payload)
		count, _ := d.Uint32()
		b, _ := d.Uint8()
		if int(count) != i+1 || int(b) != i {
			t.Fatalf("ack %d: count=%d payload=%d", i, count, b)
		}
	}
	// The task now lives on h2.
	if st, err := d2.TaskState(taskURN); err != nil || st != task.StateRunning {
		t.Fatalf("task on h2: %v %v", st, err)
	}
	// Metadata points at the new host.
	if v, _ := w.store.FirstValue(taskURN, "host"); v != d2.HostURL() {
		t.Fatalf("host metadata: %q", v)
	}
	if st, _ := w.store.FirstValue(taskURN, rcds.AttrState); st != string(task.StateRunning) {
		t.Fatalf("state metadata: %q", st)
	}
}

func TestRemoteMigration(t *testing.T) {
	w := newWorld(t)
	controller := w.endpoint("urn:controller")
	d1 := w.daemon("h1")
	d2 := w.daemon("h2")
	orchestrator := w.endpoint("urn:orchestrator")

	taskURN, err := d1.Spawn(task.Spec{Program: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the counter.
	controller.Send(taskURN, 1, []byte{0})
	if _, err := recvMatchT(controller, "", 2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	downtime, err := Remote(w.cat, orchestrator, taskURN, d1.URN(), d2.URN(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if downtime <= 0 {
		t.Fatal("no downtime measured")
	}
	if st, err := d2.TaskState(taskURN); err != nil || st != task.StateRunning {
		t.Fatalf("after remote migrate: %v %v", st, err)
	}
	// The restored count continues from 1.
	controller.Send(taskURN, 1, []byte{1})
	m, err := recvMatchT(controller, "", 2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d := xdr.NewDecoder(m.Payload)
	count, _ := d.Uint32()
	if count != 2 {
		t.Fatalf("count after migration = %d, want 2", count)
	}
}

func TestMigrationWithStagedCheckpoint(t *testing.T) {
	w := newWorld(t)
	w.endpoint("urn:controller") // counter acks go here
	d1 := w.daemon("h1")
	d2 := w.daemon("h2")
	fs, err := fileserv.NewServer("fs1", w.cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	stagingEP := w.endpoint("urn:stager")
	staging := &Staging{Client: fileserv.NewClient(w.cat, stagingEP), ServerURN: fs.URN()}

	taskURN, err := d1.Spawn(task.Spec{Program: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Local(w.cat, d1, d2, taskURN, Options{Stage: staging}); err != nil {
		t.Fatal(err)
	}
	// The checkpoint LIFN is recorded and resolvable to stored bytes.
	lifnName, ok := w.store.FirstValue(taskURN, rcds.AttrSupervisorLIFN)
	if !ok {
		t.Fatal("supervisor LIFN not recorded")
	}
	data, err := staging.Client.Fetch(fs.URN(), lifnName)
	if err != nil || len(data) == 0 {
		t.Fatalf("staged checkpoint: %d bytes, %v", len(data), err)
	}
}

func TestMigrationUncooperativeTask(t *testing.T) {
	w := newWorld(t)
	w.reg.Register("stubborn", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	d1 := w.daemon("h1")
	d2 := w.daemon("h2")
	taskURN, err := d1.Spawn(task.Spec{Program: "stubborn"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Local(w.cat, d1, d2, taskURN, Options{CheckpointTimeout: 100 * time.Millisecond}); err == nil {
		t.Fatal("uncooperative migration succeeded")
	}
	d1.Signal(taskURN, task.SigKill)
}

func TestSequentialMigrations(t *testing.T) {
	// A task migrates h1→h2→h3→h1; its state accumulates across all
	// hops.
	w := newWorld(t)
	controller := w.endpoint("urn:controller")
	daemons := []*daemon.Daemon{w.daemon("h1"), w.daemon("h2"), w.daemon("h3")}

	taskURN, err := daemons[0].Spawn(task.Spec{Program: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	expectCount := uint32(0)
	poke := func() {
		t.Helper()
		controller.Send(taskURN, 1, []byte{0})
		m, err := recvMatchT(controller, "", 2, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		d := xdr.NewDecoder(m.Payload)
		count, _ := d.Uint32()
		expectCount++
		if count != expectCount {
			t.Fatalf("count = %d, want %d", count, expectCount)
		}
	}
	poke()
	for hop := 0; hop < 3; hop++ {
		src := daemons[hop%3]
		dst := daemons[(hop+1)%3]
		if _, err := Local(w.cat, src, dst, taskURN, Options{}); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		poke()
	}
}

func BenchmarkMigration(b *testing.B) {
	s := rcds.NewStore("mig-bench")
	cat := naming.StoreCatalog(s)
	reg := task.NewRegistry()
	reg.Register("idle-ckpt", func(ctx *task.Context) error {
		for {
			select {
			case <-ctx.CheckpointRequested():
				ctx.SaveCheckpoint([]byte{1})
				return task.ErrMigrated
			case <-ctx.Done():
				return task.ErrKilled
			}
		}
	})
	mk := func(h string) *daemon.Daemon {
		d := daemon.New(daemon.Config{HostName: h, Catalog: cat, Registry: reg})
		if err := d.Start(); err != nil {
			b.Fatal(err)
		}
		return d
	}
	d1, d2 := mk("bh1"), mk("bh2")
	defer d1.Close()
	defer d2.Close()
	urn, err := d1.Spawn(task.Spec{Program: "idle-ckpt"})
	if err != nil {
		b.Fatal(err)
	}
	daemons := []*daemon.Daemon{d1, d2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := daemons[i%2], daemons[(i+1)%2]
		if _, err := Local(cat, src, dst, urn, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
