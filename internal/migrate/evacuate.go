package migrate

import (
	"errors"
	"fmt"
	"sync"

	"snipe/internal/comm"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
)

// EvacuationResult records the outcome of one attempted task
// evacuation.
type EvacuationResult struct {
	TaskURN string
	From    string // host URL entering suspicion
	DstURN  string // destination daemon URN ("" if none was found)
	Err     error  // nil on success
}

// EvacuatorConfig wires an Evacuator.
type EvacuatorConfig struct {
	Catalog  naming.Catalog
	Monitor  *liveness.Monitor
	Endpoint *comm.Endpoint // orchestrator endpoint for the remote protocol
	// Dest picks a destination daemon for tasks leaving excludeHost —
	// typically a closure over rm.Manager.SelectHost with the suspect
	// host excluded. Returning an error skips the evacuation.
	Dest func(excludeHost string) (dstDaemonURN string, err error)
	// Options tunes the underlying migrations.
	Options Options
	// OnResult, if non-nil, observes every attempted evacuation.
	OnResult func(EvacuationResult)
	// DrainHook, if non-nil, runs before task evacuation whenever a host
	// enters Suspect — typically a service replica's Drain, so the
	// replica stops accepting new streams and withdraws its catalog
	// registration while its in-flight work (and then its tasks) are
	// moved off the host.
	DrainHook func(hostURL string)
}

// Evacuator watches a liveness monitor and migrates tasks off any host
// entering Suspect — acting while the host's daemon can still answer
// checkpoint requests, because once the host is Dead there is nothing
// left to checkpoint. This is the paper's migration machinery driven
// by its failure notification: suspicion is the early warning,
// evacuation the response.
type Evacuator struct {
	cfg       EvacuatorConfig
	done      chan struct{}
	cancelSub func()
	wg        sync.WaitGroup
	closed    sync.Once
}

// NewEvacuator starts an evacuator; Close stops it. The monitor is not
// owned and outlives the evacuator.
func NewEvacuator(cfg EvacuatorConfig) (*Evacuator, error) {
	if cfg.Catalog == nil || cfg.Monitor == nil || cfg.Endpoint == nil || cfg.Dest == nil {
		return nil, errors.New("migrate: evacuator needs Catalog, Monitor, Endpoint and Dest")
	}
	ev := &Evacuator{cfg: cfg, done: make(chan struct{})}
	events, cancel := cfg.Monitor.Subscribe(0)
	ev.cancelSub = cancel
	ev.wg.Add(1)
	go func() {
		defer ev.wg.Done()
		for {
			select {
			case <-ev.done:
				return
			case e, ok := <-events:
				if !ok {
					return
				}
				if e.To == liveness.Suspect {
					if cfg.DrainHook != nil {
						cfg.DrainHook(e.Host)
					}
					ev.evacuate(e.Host)
				}
			}
		}
	}()
	return ev, nil
}

// Close stops the evacuator and drops its monitor subscription.
// In-progress migrations finish.
func (ev *Evacuator) Close() {
	ev.closed.Do(func() {
		close(ev.done)
		ev.cancelSub()
	})
	ev.wg.Wait()
}

// evacuate moves every running task off a suspect host.
func (ev *Evacuator) evacuate(hostURL string) {
	cat := ev.cfg.Catalog
	srcDaemonURN, ok, err := cat.FirstValue(hostURL, rcds.AttrHostDaemonURL)
	if err != nil || !ok {
		return // no daemon record: nothing addressable to checkpoint
	}
	tasks, err := cat.Values(hostURL, "task")
	if err != nil {
		return
	}
	for _, urn := range tasks {
		st, ok, err := cat.FirstValue(urn, rcds.AttrState)
		if err != nil || !ok || task.State(st) != task.StateRunning {
			continue // only running tasks can honour a checkpoint request
		}
		res := EvacuationResult{TaskURN: urn, From: hostURL}
		res.DstURN, res.Err = ev.cfg.Dest(hostURL)
		if res.Err == nil {
			if res.DstURN == srcDaemonURN {
				res.Err = fmt.Errorf("migrate: no destination besides %s", hostURL)
			} else {
				_, res.Err = Remote(cat, ev.cfg.Endpoint, urn, srcDaemonURN, res.DstURN, ev.cfg.Options)
			}
		}
		if ev.cfg.OnResult != nil {
			ev.cfg.OnResult(res)
		}
	}
}
