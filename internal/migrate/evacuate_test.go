package migrate

import (
	"testing"
	"time"

	"snipe/internal/liveness"
	"snipe/internal/task"
)

func TestEvacuatorMovesTasksOffSuspectHost(t *testing.T) {
	w := newWorld(t)
	w.endpoint("urn:controller") // counter acks land here
	d1 := w.daemon("h1")
	d2 := w.daemon("h2")
	orch := w.endpoint("urn:orchestrator")

	mon := liveness.NewMonitor(w.cat, liveness.Options{
		CheckInterval: time.Hour, // suspicion injected by hand
		MinSuspect:    time.Hour,
		MaxSuspect:    2 * time.Hour,
	})
	t.Cleanup(mon.Close)

	results := make(chan EvacuationResult, 8)
	ev, err := NewEvacuator(EvacuatorConfig{
		Catalog:  w.cat,
		Monitor:  mon,
		Endpoint: orch,
		Dest:     func(exclude string) (string, error) { return d2.URN(), nil },
		OnResult: func(r EvacuationResult) { results <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ev.Close)

	taskURN, err := d1.Spawn(task.Spec{Program: "counter"})
	if err != nil {
		t.Fatal(err)
	}

	mon.MarkSuspect(d1.HostURL(), "drill")
	select {
	case r := <-results:
		if r.Err != nil {
			t.Fatalf("evacuation failed: %v", r.Err)
		}
		if r.TaskURN != taskURN || r.From != d1.HostURL() || r.DstURN != d2.URN() {
			t.Fatalf("evacuation result: %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("suspicion never triggered an evacuation")
	}
	// The task now runs on the healthy host, checkpoint intact.
	if st, err := d2.TaskState(taskURN); err != nil || st != task.StateRunning {
		t.Fatalf("evacuated task on h2: %v %v", st, err)
	}
	if st, err := d1.TaskState(taskURN); err == nil && st == task.StateRunning {
		t.Fatal("task still running on the suspect host")
	}
}

func TestEvacuatorRefusesSuspectDestination(t *testing.T) {
	w := newWorld(t)
	w.endpoint("urn:controller")
	d1 := w.daemon("h1")
	orch := w.endpoint("urn:orchestrator")

	mon := liveness.NewMonitor(w.cat, liveness.Options{
		CheckInterval: time.Hour,
		MinSuspect:    time.Hour,
		MaxSuspect:    2 * time.Hour,
	})
	t.Cleanup(mon.Close)

	results := make(chan EvacuationResult, 8)
	ev, err := NewEvacuator(EvacuatorConfig{
		Catalog:  w.cat,
		Monitor:  mon,
		Endpoint: orch,
		// A degenerate Dest that can only offer the suspect host itself.
		Dest:     func(exclude string) (string, error) { return d1.URN(), nil },
		OnResult: func(r EvacuationResult) { results <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ev.Close)

	if _, err := d1.Spawn(task.Spec{Program: "counter"}); err != nil {
		t.Fatal(err)
	}
	mon.MarkSuspect(d1.HostURL(), "drill")
	select {
	case r := <-results:
		if r.Err == nil {
			t.Fatal("evacuation back onto the suspect host succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no evacuation attempt recorded")
	}
}

func TestEvacuatorConfigValidation(t *testing.T) {
	if _, err := NewEvacuator(EvacuatorConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
