package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The leak checker snapshots every goroutine stack after a package's
// tests finish and fails the binary if any non-infrastructure goroutine
// is still alive. Goroutines wind down asynchronously (deferred Close
// calls race the snapshot), so the check polls until the set settles or
// a budget expires — a goroutine that is still there after five seconds
// of quiescence is leaked, not slow.

// leakSettle is how long VerifyNoLeaks waits for stragglers to exit.
const leakSettle = 5 * time.Second

// leakIgnores are stack substrings of goroutines that legitimately
// outlive a test run: the testing harness itself and runtime/os
// infrastructure the process keeps for its lifetime.
var leakIgnores = []string{
	"testing.Main(",
	"testing.runTests(",
	"testing.(*M).",
	"created by testing.",
	"created by runtime.",
	"runtime.goexit0",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/pprof.",
	"runtime/trace.",
}

// stacks returns one stanza per live goroutine, the caller's first.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// leaked returns the stacks of goroutines that match neither the
// built-in infrastructure list nor the caller's extra ignore
// substrings. The first stanza — the goroutine running the check — is
// always skipped.
func leaked(ignores []string) []string {
	var out []string
	for i, stanza := range stacks() {
		if i == 0 {
			continue
		}
		drop := false
		for _, ign := range leakIgnores {
			if strings.Contains(stanza, ign) {
				drop = true
				break
			}
		}
		for _, ign := range ignores {
			if !drop && strings.Contains(stanza, ign) {
				drop = true
			}
		}
		if !drop {
			out = append(out, stanza)
		}
	}
	return out
}

// VerifyNoLeaks polls until every non-infrastructure goroutine has
// exited or the settle budget expires, then returns an error listing
// the survivors' stacks. Extra ignore substrings exempt goroutines a
// package intentionally leaves running for the process lifetime.
func VerifyNoLeaks(ignores ...string) error {
	deadline := time.Now().Add(leakSettle)
	var last []string
	for {
		last = leaked(ignores)
		if len(last) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("%d leaked goroutine(s):\n\n%s", len(last), strings.Join(last, "\n\n"))
}

// Main is a TestMain body with leak verification: it runs the
// package's tests and, when they pass, fails the binary if any
// goroutine is still alive afterwards. Wire it as
//
//	func TestMain(m *testing.M) { testutil.Main(m) }
func Main(m *testing.M, ignores ...string) {
	code := m.Run()
	if code == 0 {
		if err := VerifyNoLeaks(ignores...); err != nil {
			fmt.Fprintf(os.Stderr, "testutil: goroutine leak after tests: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}
