// Package testutil holds test-only infrastructure shared across SNIPE
// packages: bounded condition polling (WaitFor) and a runtime
// goroutine-leak checker (Main/VerifyNoLeaks) built on runtime.Stack,
// so the tree stays free of test-framework dependencies.
package testutil

import (
	"testing"
	"time"
)

// WaitFor polls cond until it holds or d elapses, failing the test
// with msg on expiry. Bounded condition polling replaces fixed sleeps
// that make timing-sensitive tests flake on loaded machines: a fast
// machine passes in microseconds, a slow one gets the whole budget.
func WaitFor(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v: %s", d, msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
