package testutil

import (
	"testing"
	"time"
)

func TestMain(m *testing.M) { Main(m) }

// TestLeakedDetectsStray parks a goroutine on a channel, observes the
// checker report it, releases it and observes the report clear.
func TestLeakedDetectsStray(t *testing.T) {
	release := make(chan struct{})
	go func() { <-release }()
	WaitFor(t, 2*time.Second, func() bool { return len(leaked(nil)) >= 1 },
		"stray goroutine not reported")
	for _, stanza := range leaked(nil) {
		t.Logf("reported:\n%s", stanza)
	}
	close(release)
	WaitFor(t, 2*time.Second, func() bool { return len(leaked(nil)) == 0 },
		"released goroutine still reported")
}

// TestVerifyNoLeaksIgnores exempts an intentionally parked goroutine by
// stack substring.
func TestVerifyNoLeaksIgnores(t *testing.T) {
	release := make(chan struct{})
	go parkForIgnoreTest(release)
	defer close(release)
	WaitFor(t, 2*time.Second, func() bool { return len(leaked(nil)) >= 1 },
		"parked goroutine not reported")
	if err := VerifyNoLeaks("parkForIgnoreTest"); err != nil {
		t.Fatalf("ignored goroutine still reported: %v", err)
	}
}

func parkForIgnoreTest(release chan struct{}) { <-release }
