package liveness

import (
	"context"
	"math"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/gossip"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/stats"
)

// State is the Monitor's judgement of one host.
type State uint8

// Host liveness states. The failure path is Alive → Suspect → Dead;
// a clean shutdown tombstone goes straight to Left; a fresh heartbeat
// returns any state to Alive (a healed partition or a restarted host).
const (
	Unknown State = iota // no heartbeat ever observed
	Alive
	Suspect
	Dead
	Left // clean shutdown (tombstone published)
)

// String names the state.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Left:
		return "left"
	default:
		return "unknown"
	}
}

// Placeable reports whether a resource manager may place new work on a
// host in this state. Unknown passes: records without heartbeats (e.g.
// hand-registered hosts) keep working as before the subsystem existed.
func (s State) Placeable() bool { return s != Suspect && s != Dead && s != Left }

// Event is one state transition — the paper's failure notification.
type Event struct {
	Host   string // host URL
	From   State
	To     State
	Reason string
	At     time.Time
}

// Info is a point-in-time view of one tracked host.
type Info struct {
	Host         string
	State        State
	Seq          uint64        // last heartbeat/gossip sequence number seen
	Inc          uint64        // gossip incarnation (zero for legacy heartbeats)
	Load         float64       // load carried by the last heartbeat or digest
	Age          time.Duration // since the last new liveness evidence arrived
	SuspectAfter time.Duration // current adaptive suspicion bound
	Failures     int           // consecutive comm-reported send failures
}

// Options tunes a Monitor. Zero values take the defaults noted.
type Options struct {
	// CheckInterval is the evaluation tick (default 25ms).
	CheckInterval time.Duration
	// MinSuspect floors the adaptive suspicion bound (default 50ms), so
	// a burst of quick heartbeats cannot tighten the detector below
	// scheduling noise.
	MinSuspect time.Duration
	// MaxSuspect caps the bound and is also the bound used before any
	// inter-arrival history exists (default 10s).
	MaxSuspect time.Duration
	// DeadFactor scales the suspicion bound into the death bound
	// (default 2): a host is dead after DeadFactor × suspect-bound of
	// silence.
	DeadFactor float64
	// FixedSuspect, when positive, replaces the adaptive bound with a
	// fixed deadline — the ablation knob for the detection-latency
	// experiment (DESIGN.md key decision #10).
	FixedSuspect time.Duration
	// FailureThreshold is how many consecutive comm send failures force
	// suspicion ahead of the heartbeat timeout (default 3, SWIM-style
	// piggybacked evidence). Zero keeps the default; negative disables
	// the evidence path.
	FailureThreshold int
	// ScanInterval is the catalog poll period when the catalog offers
	// neither push subscriptions nor version long-poll (default 100ms).
	ScanInterval time.Duration
	// Retention is how long a Dead or Left record is kept once both its
	// last transition and the last evidence mentioning it are in the
	// past (default 10 × MaxSuspect, floored at one minute). Expiring
	// settled records bounds monitor memory under host churn and lets a
	// host reborn after a long outage meet a clean slate instead of its
	// old verdict.
	Retention time.Duration
}

func (o *Options) fill() {
	if o.CheckInterval <= 0 {
		o.CheckInterval = 25 * time.Millisecond
	}
	if o.MinSuspect <= 0 {
		o.MinSuspect = 50 * time.Millisecond
	}
	if o.MaxSuspect <= 0 {
		o.MaxSuspect = 10 * time.Second
	}
	if o.DeadFactor <= 1 {
		o.DeadFactor = 2
	}
	if o.FailureThreshold == 0 {
		o.FailureThreshold = 3
	}
	if o.ScanInterval <= 0 {
		o.ScanInterval = 100 * time.Millisecond
	}
	if o.Retention <= 0 {
		o.Retention = 10 * o.MaxSuspect
		if o.Retention < time.Minute {
			o.Retention = time.Minute
		}
	}
}

// historySize is the inter-arrival window behind the adaptive bound.
const historySize = 32

// hostRecord is the Monitor's per-host tracking state.
type hostRecord struct {
	state     State
	seq       uint64
	aliveSeq  uint64    // highest seq any alive claim carried at inc
	inc       uint64    // gossip incarnation (zero for legacy heartbeats)
	load      float64
	lastBeat  time.Time // local arrival time of the last NEW evidence
	lastSeen  time.Time // last intake mentioning the host, fresh or stale
	changedAt time.Time // when the current state was adopted
	intervals []time.Duration
	next      int // ring cursor into intervals
	failures  int // consecutive comm-reported failures
}

// digestMark records the newest digest ingested for one gossip group.
// The scan-based watch paths re-read every group's digest each cycle,
// and a lagging replica can serve an older one during catch-up; a
// digest that is not strictly newer than the mark contributes no
// liveness evidence twice.
type digestMark struct {
	reporter string
	seq      uint64
}

// subscriber is the push face of a catalog (satisfied by
// naming.StoreCatalog via rcds.Store.Subscribe).
type subscriber interface {
	Subscribe(prefix string, ch chan rcds.Event) int
	Unsubscribe(id int)
}

// waiter is the long-poll face of a catalog (satisfied by
// *rcds.Client): Wait blocks until the replica's catalog version
// advances past since.
type waiter interface {
	Wait(ctx context.Context, since uint64, timeout time.Duration) (uint64, error)
}

// Monitor tracks host liveness from heartbeat metadata. It rides the
// catalog's own change-notification channel: push subscriptions for
// in-process stores, the Wait long-poll for remote RC clients, a plain
// scan ticker otherwise.
type Monitor struct {
	cat  naming.Catalog
	opts Options

	mu    sync.Mutex
	hosts map[string]*hostRecord
	marks map[int]digestMark // newest ingested digest per gossip group

	subMu   sync.Mutex
	subs    map[int]chan Event
	nextSub int
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	metrics      *stats.Registry
	mHeartbeats  *stats.Counter
	mDigests     *stats.Counter
	mSuspects    *stats.Counter
	mDeads       *stats.Counter
	mRevives     *stats.Counter
	mLefts       *stats.Counter
	mEvidence    *stats.Counter
	mScans       *stats.Counter
	mDropped     *stats.Counter   // subscriber events evicted (drop-oldest)
	hDetectDelay *stats.Histogram // µs from last heartbeat to dead verdict
}

// NewMonitor builds and starts a monitor over cat.
func NewMonitor(cat naming.Catalog, opts Options) *Monitor {
	opts.fill()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Monitor{
		cat:     cat,
		opts:    opts,
		hosts:   make(map[string]*hostRecord),
		marks:   make(map[int]digestMark),
		subs:    make(map[int]chan Event),
		ctx:     ctx,
		cancel:  cancel,
		metrics: stats.NewRegistry(),
	}
	m.mHeartbeats = m.metrics.Counter("heartbeats_observed")
	m.mDigests = m.metrics.Counter("digests_observed")
	m.mDropped = m.metrics.Counter("liveness_events_dropped")
	m.mSuspects = m.metrics.Counter("transitions_suspect")
	m.mDeads = m.metrics.Counter("transitions_dead")
	m.mRevives = m.metrics.Counter("transitions_alive")
	m.mLefts = m.metrics.Counter("transitions_left")
	m.mEvidence = m.metrics.Counter("evidence_reports")
	m.mScans = m.metrics.Counter("catalog_scans")
	m.hDetectDelay = m.metrics.Histogram("detect_delay_us", stats.LatencyBucketsUs)
	m.startWatch()
	m.wg.Add(1)
	go m.evalLoop()
	return m
}

// Close stops the monitor's goroutines and closes event channels.
func (m *Monitor) Close() {
	m.cancel()
	m.wg.Wait()
	m.subMu.Lock()
	subs := m.subs
	m.subs = nil
	m.closed = true
	m.subMu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

// State answers the synchronous query API: the current judgement of
// hostURL.
func (m *Monitor) State(hostURL string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.hosts[hostURL]
	if !ok {
		return Unknown
	}
	return rec.state
}

// Subscribe registers a state-change subscription: every host
// transition is delivered on the returned channel (buffer buf, default
// 128 when buf <= 0). Slow consumers drop events rather than stalling
// detection; resync with Snapshot. The cancel function removes the
// subscription and closes the channel; it is idempotent and safe to
// call after Close (which closes every remaining channel itself).
func (m *Monitor) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 128
	}
	ch := make(chan Event, buf)
	m.subMu.Lock()
	if m.closed {
		m.subMu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := m.nextSub
	m.nextSub++
	m.subs[id] = ch
	m.subMu.Unlock()
	cancel := func() {
		m.subMu.Lock()
		sub, ok := m.subs[id]
		if ok {
			delete(m.subs, id)
		}
		m.subMu.Unlock()
		if ok {
			close(sub)
		}
	}
	return ch, cancel
}

// Events returns a new subscription to state-transition events that
// lives until Close — Subscribe with no way to cancel early, kept for
// consumers whose lifetime matches the monitor's.
func (m *Monitor) Events() <-chan Event {
	ch, _ := m.Subscribe(0)
	return ch
}

// Snapshot reports every tracked host.
func (m *Monitor) Snapshot() []Info {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.hosts))
	for url, rec := range m.hosts {
		out = append(out, Info{
			Host:         url,
			State:        rec.state,
			Seq:          rec.seq,
			Inc:          rec.inc,
			Load:         rec.load,
			Age:          now.Sub(rec.lastBeat),
			SuspectAfter: m.suspectBoundLocked(rec),
			Failures:     rec.failures,
		})
	}
	return out
}

// Metrics returns the monitor's live metric registry.
func (m *Monitor) Metrics() *stats.Registry { return m.metrics }

// MetricsSnapshot captures the metrics with per-state host gauges
// refreshed.
func (m *Monitor) MetricsSnapshot() stats.Snapshot {
	counts := map[State]int{}
	m.mu.Lock()
	for _, rec := range m.hosts {
		counts[rec.state]++
	}
	m.mu.Unlock()
	m.metrics.Gauge("hosts_alive").Set(float64(counts[Alive]))
	m.metrics.Gauge("hosts_suspect").Set(float64(counts[Suspect]))
	m.metrics.Gauge("hosts_dead").Set(float64(counts[Dead]))
	m.metrics.Gauge("hosts_left").Set(float64(counts[Left]))
	return m.metrics.Snapshot()
}

// MarkSuspect forces a host into Suspect — the entry point for
// out-of-band evidence (an operator, a failed health probe, an
// evacuation drill). A later heartbeat revives the host as usual.
func (m *Monitor) MarkSuspect(hostURL, reason string) {
	m.mu.Lock()
	rec := m.recordLocked(hostURL)
	var ev *Event
	if rec.state == Alive || rec.state == Unknown {
		ev = m.transitionLocked(hostURL, rec, Suspect, reason)
	}
	m.mu.Unlock()
	m.emit(ev)
}

// ReportFailure feeds one comm-layer send failure as suspicion
// evidence. Enough consecutive failures against a host we have not
// heard from recently force Suspect ahead of the heartbeat timeout.
func (m *Monitor) ReportFailure(hostURL string) {
	if m.opts.FailureThreshold < 0 {
		return
	}
	m.mEvidence.Inc()
	now := time.Now()
	m.mu.Lock()
	rec, ok := m.hosts[hostURL]
	if !ok {
		// No heartbeat record: nothing to corroborate against.
		m.mu.Unlock()
		return
	}
	rec.failures++
	var ev *Event
	if rec.failures >= m.opts.FailureThreshold && rec.state == Alive {
		// Corroborate: only indict when the heartbeat is also late by at
		// least one expected interval, so a dead task endpoint on a
		// healthy host cannot condemn the host.
		if mean, _, n := rec.intervalStats(); n > 0 && now.Sub(rec.lastBeat) > mean {
			ev = m.transitionLocked(hostURL, rec, Suspect, "comm send failures")
		}
	}
	m.mu.Unlock()
	m.emit(ev)
}

// ReportSuccess feeds one successful end-to-end acknowledgement:
// direct proof of life that clears accumulated failure evidence and
// refutes suspicion.
func (m *Monitor) ReportSuccess(hostURL string) {
	m.mu.Lock()
	rec, ok := m.hosts[hostURL]
	var ev *Event
	if ok {
		rec.failures = 0
		if rec.state == Suspect {
			ev = m.transitionLocked(hostURL, rec, Alive, "acknowledged traffic")
		}
	}
	m.mu.Unlock()
	m.emit(ev)
}

// CommLiveness adapts the monitor to the comm layer's PeerLiveness
// surface, mapping process URNs to their host records.
func (m *Monitor) CommLiveness() comm.PeerLiveness { return commAdapter{m} }

type commAdapter struct{ m *Monitor }

func (a commAdapter) PeerDead(dst string) bool {
	host := HostOfURN(dst)
	if host == "" {
		return false
	}
	s := a.m.State(host)
	return s == Dead || s == Left
}

func (a commAdapter) ReportFailure(dst string) {
	if host := HostOfURN(dst); host != "" {
		a.m.ReportFailure(host)
	}
}

func (a commAdapter) ReportSuccess(dst string) {
	if host := HostOfURN(dst); host != "" {
		a.m.ReportSuccess(host)
	}
}

// --- heartbeat intake ----------------------------------------------------

// recordLocked returns (creating if needed) the record for hostURL.
func (m *Monitor) recordLocked(hostURL string) *hostRecord {
	rec, ok := m.hosts[hostURL]
	if !ok {
		rec = &hostRecord{state: Unknown}
		m.hosts[hostURL] = rec
	}
	return rec
}

// observe ingests one heartbeat value for a host. now is the local
// arrival time (the adaptive bound is built from local inter-arrival
// gaps, never from sender clocks).
func (m *Monitor) observe(hostURL, value string, now time.Time) {
	hb, err := ParseHeartbeat(value)
	if err != nil {
		return // tolerate foreign records in open metadata
	}
	var ev *Event
	m.mu.Lock()
	rec := m.recordLocked(hostURL)
	rec.lastSeen = now
	switch {
	case hb.Down:
		if rec.state != Left {
			ev = m.transitionLocked(hostURL, rec, Left, "clean shutdown")
		}
		rec.seq = hb.Seq
	case hb.Seq > rec.seq || rec.state == Left ||
		(rec.state == Dead && rec.inc == 0 && hb.Seq < rec.seq):
		// A restarted daemon begins a new incarnation at seq 1: any
		// heartbeat after a tombstone is such a rebirth, and so is a
		// LOWER-seq heartbeat after a death verdict on a legacy record —
		// without that clause a reborn host stays Dead until its new
		// counter outruns its old one. Gossip-fed records (inc > 0)
		// instead revive through their agent's boot-derived incarnation;
		// for them the frozen startup heartbeat a crashed host leaves in
		// the catalog must not keep resurrecting the record. An equal-seq
		// re-read of the final pre-death heartbeat stays old news.
		m.mHeartbeats.Inc()
		if !rec.lastBeat.IsZero() && hb.Seq > rec.seq && rec.state != Left {
			// The catalog may batch several beats between scans: spread
			// the elapsed time over the sequence distance so the history
			// reflects the sender's cadence, not our scan cadence.
			gap := now.Sub(rec.lastBeat) / time.Duration(hb.Seq-rec.seq)
			if gap > 0 {
				rec.pushInterval(gap)
			}
		}
		rec.seq = hb.Seq
		rec.load = hb.Load
		rec.lastBeat = now
		rec.failures = 0
		if rec.state != Alive {
			ev = m.transitionLocked(hostURL, rec, Alive, "heartbeat")
		}
	default:
		// Old news (same or earlier seq): no new liveness information.
	}
	m.mu.Unlock()
	m.emit(ev)
}

// --- gossip digest intake ------------------------------------------------

// observeDigest ingests one gossip group digest: the second tier of
// the hierarchical detector. Intake is deduplicated on the digest's
// (reporter, seq): the scan-based watch paths re-read every group's
// digest each cycle, and a digest that stops changing — the whole
// group crashed and no reporter remains to write — must contribute no
// new liveness evidence, or its members stay Alive forever. An older
// seq from the same reporter (a lagging replica during catch-up) is
// likewise a replay; a different reporter is always admitted — that is
// failover, not a replay. Every member entry of an admitted digest is
// merged as gossip evidence; a minority digest (reporter partitioned
// from most of its group) has its death verdicts downgraded to
// suspicion, so an isolated ex-reporter cannot condemn the healthy
// majority.
func (m *Monitor) observeDigest(value string, now time.Time) {
	d, err := gossip.ParseDigest(value)
	if err != nil {
		return // tolerate foreign records in open metadata
	}
	m.mu.Lock()
	mark, seen := m.marks[d.Group]
	if seen && mark.reporter == d.Reporter && d.Seq <= mark.seq {
		m.mu.Unlock()
		return
	}
	m.marks[d.Group] = digestMark{reporter: d.Reporter, seq: d.Seq}
	m.mu.Unlock()
	m.mDigests.Inc()
	for _, u := range d.Members {
		m.ObserveGossipQuorum(u, d.Quorum, now)
	}
}

// ObserveGossip ingests one first-hand gossip event — the direct feed
// a colocated gossip.Agent's Observer hook supplies, bypassing the
// catalog round-trip.
func (m *Monitor) ObserveGossip(u gossip.Update) {
	m.ObserveGossipQuorum(u, true, time.Now())
}

// gossipRank orders a monitor state against gossip claims at equal
// (incarnation, sequence): the more advanced claim wins, mirroring the
// agents' own conflict resolution.
func gossipRank(s State) int {
	switch s {
	case Left:
		return 4
	case Dead:
		return 3
	case Suspect:
		return 2
	case Alive:
		return 1
	default:
		return 0
	}
}

func gossipStateRank(s uint8) int {
	switch s {
	case gossip.StateLeft:
		return 4
	case gossip.StateDead:
		return 3
	case gossip.StateSuspect:
		return 2
	case gossip.StateAlive:
		return 1
	default:
		return 0
	}
}

// ObserveGossipQuorum merges one gossip liveness claim about a host.
// Higher incarnation wins outright. At equal incarnations freshness is
// asymmetric in both directions that matter: a suspicion or death
// verdict carries the sequence at which the member was LAST HEARD,
// which lags its final alive dissemination, so a higher state rank
// wins even at a lower sequence; conversely an alive claim whose
// sequence strictly advances past both the verdict's frozen sequence
// and the highest alive sequence ever credited proves the member made
// progress after the verdict and resurrects it — the victim of a
// healed partition never bumps its incarnation when its peers expired
// it silently, so progress is the only revival signal. An alive claim
// that advances nothing still refreshes the arrival clock of an Alive
// record — an admitted digest re-asserting an unchanged member seq is
// the reporter's detector vouching for it despite dissemination lag —
// but cannot touch a record under a verdict, and replayed digests are
// deduped before their claims reach this merge at all.
//
// quorum=false marks evidence from a minority digest: its death
// verdicts count only as suspicion, and its alive claims refresh the
// record but cannot overturn a Dead or Left verdict — in a gossip
// split where both sides still reach the catalog, a minority
// reporter's advancing sequences would otherwise flap its members
// between Dead and Alive every digest interval. Suspicion is still
// cleared by minority evidence: a two-member group can never form a
// quorum, and its lone survivor must be able to refute a false
// suspicion of itself. An incarnation bump — the member's own
// refutation — revives from any state regardless of quorum.
func (m *Monitor) ObserveGossipQuorum(u gossip.Update, quorum bool, now time.Time) {
	if u.Host == "" {
		return
	}
	var ev *Event
	m.mu.Lock()
	rec := m.recordLocked(u.Host)
	rec.lastSeen = now
	ur, rr := gossipStateRank(u.State), gossipRank(rec.state)
	incAdvance := u.Inc > rec.inc
	var fresh bool
	switch {
	case u.Inc != rec.inc:
		fresh = incAdvance
	case u.State == gossip.StateAlive:
		// Progress past rec.seq alone is not enough: a verdict froze
		// rec.seq at its lagging last-heard value, so a replayed older
		// alive claim (an out-of-order digest from a lagging replica)
		// can sit between the frozen seq and the highest alive seq
		// already credited. Genuine life advances past both.
		fresh = ur > rr || (u.Seq > rec.seq && u.Seq > rec.aliveSeq)
	default:
		fresh = ur > rr || u.Seq > rec.seq
	}
	if !fresh {
		if u.State == gossip.StateAlive && u.Seq == rec.seq && rec.state == Alive {
			// A newer digest re-asserting the member at an unchanged seq
			// is the reporter's failure detector still vouching for it:
			// fresh group-level evidence even though dissemination lag
			// kept the member's own counter from advancing between
			// digest writes. Replayed digests never reach this point —
			// intake dedupes them — so refreshing the arrival clock here
			// cannot keep a crashed group alive. A record under a
			// verdict (Suspect/Dead/Left) still demands seq progress.
			rec.lastBeat = now
			rec.failures = 0
		}
		m.mu.Unlock()
		return
	}
	if incAdvance {
		rec.aliveSeq = 0 // sequences restart with the new incarnation
	}
	switch u.State {
	case gossip.StateAlive:
		if !rec.lastBeat.IsZero() && !incAdvance && u.Seq > rec.seq {
			// Digests batch several gossip rounds between catalog writes:
			// spread the elapsed time over the sequence distance so the
			// history reflects the member's cadence, not the digest's.
			gap := now.Sub(rec.lastBeat) / time.Duration(u.Seq-rec.seq)
			if gap > 0 {
				rec.pushInterval(gap)
			}
		}
		rec.inc, rec.seq, rec.load = u.Inc, u.Seq, u.Load
		if u.Seq > rec.aliveSeq {
			rec.aliveSeq = u.Seq
		}
		rec.lastBeat = now
		rec.failures = 0
		if rec.state != Alive {
			if !quorum && !incAdvance && (rec.state == Dead || rec.state == Left) {
				// Minority evidence refreshes but cannot resurrect.
			} else {
				ev = m.transitionLocked(u.Host, rec, Alive, "gossip alive")
			}
		}
	case gossip.StateSuspect:
		rec.inc, rec.seq = u.Inc, u.Seq
		if rec.state == Alive || rec.state == Unknown {
			ev = m.transitionLocked(u.Host, rec, Suspect, "gossip suspicion")
		}
	case gossip.StateDead:
		rec.inc, rec.seq = u.Inc, u.Seq
		if quorum {
			if rec.state != Dead && rec.state != Left {
				ev = m.transitionLocked(u.Host, rec, Dead, "gossip verdict")
				if !rec.lastBeat.IsZero() {
					m.hDetectDelay.Observe(float64(now.Sub(rec.lastBeat).Microseconds()))
				}
			}
		} else if rec.state == Alive || rec.state == Unknown {
			// Minority digest: the reporter may be the partitioned one.
			ev = m.transitionLocked(u.Host, rec, Suspect, "minority gossip verdict")
		}
	case gossip.StateLeft:
		rec.inc, rec.seq = u.Inc, u.Seq
		if rec.state != Left {
			ev = m.transitionLocked(u.Host, rec, Left, "gossip departure")
		}
	}
	m.mu.Unlock()
	m.emit(ev)
}

func (r *hostRecord) pushInterval(d time.Duration) {
	if len(r.intervals) < historySize {
		r.intervals = append(r.intervals, d)
		return
	}
	r.intervals[r.next] = d
	r.next = (r.next + 1) % historySize
}

// intervalStats returns mean and standard deviation of the observed
// inter-arrival history.
func (r *hostRecord) intervalStats() (mean, std time.Duration, n int) {
	n = len(r.intervals)
	if n == 0 {
		return 0, 0, 0
	}
	var sum float64
	for _, d := range r.intervals {
		sum += float64(d)
	}
	mf := sum / float64(n)
	var varsum float64
	for _, d := range r.intervals {
		diff := float64(d) - mf
		varsum += diff * diff
	}
	return time.Duration(mf), time.Duration(math.Sqrt(varsum / float64(n))), n
}

// suspectBoundLocked computes the current suspicion bound for a host:
// adaptive (mean + 4σ, floored at 2.5× the mean so steady cadences get
// slack for scheduling noise) unless the fixed-deadline ablation is
// active. With no history yet, the cap applies. Caller holds m.mu.
func (m *Monitor) suspectBoundLocked(rec *hostRecord) time.Duration {
	if m.opts.FixedSuspect > 0 {
		return m.opts.FixedSuspect
	}
	mean, std, n := rec.intervalStats()
	if n == 0 {
		return m.opts.MaxSuspect
	}
	bound := mean + 4*std
	floor := mean * 5 / 2
	if rec.inc > 0 {
		// Digest-fed record: every member of a gossip group refreshes on
		// the group's single write cadence, so a crashed reporter stalls
		// them all together until another member detects the death and
		// takes over (~2-3 probe intervals). The floor must span that
		// failover gap, or the whole group is falsely suspected in
		// unison; actual failures are still detected faster through the
		// digests' own suspect/dead verdicts.
		floor = mean * 5
	}
	if bound < floor {
		bound = floor
	}
	if bound < m.opts.MinSuspect {
		bound = m.opts.MinSuspect
	}
	if bound > m.opts.MaxSuspect {
		bound = m.opts.MaxSuspect
	}
	return bound
}

// transitionLocked moves a host to a new state and prepares the event.
// Caller holds m.mu and must call emit after unlocking.
func (m *Monitor) transitionLocked(hostURL string, rec *hostRecord, to State, reason string) *Event {
	from := rec.state
	rec.state = to
	at := time.Now()
	rec.changedAt = at
	switch to {
	case Suspect:
		m.mSuspects.Inc()
	case Dead:
		m.mDeads.Inc()
	case Alive:
		m.mRevives.Inc()
	case Left:
		m.mLefts.Inc()
	}
	return &Event{Host: hostURL, From: from, To: to, Reason: reason, At: at}
}

// emit broadcasts an event (nil is a no-op) to all subscribers. A full
// subscriber buffer evicts its OLDEST event to admit the new one
// (counted by liveness_events_dropped): a slow consumer that finally
// drains sees the FRESHEST transitions — the ones that still describe
// reality — rather than a stale prefix, and never backpressures
// detection. Sends happen under subMu so a concurrent cancel cannot
// close a channel mid-send; every send is non-blocking, so the lock is
// never held for long.
func (m *Monitor) emit(ev *Event) {
	if ev == nil {
		return
	}
	m.subMu.Lock()
	for _, ch := range m.subs {
		select {
		case ch <- *ev:
			continue
		default:
		}
		// Buffer full: evict the oldest queued event, then retry once. A
		// consumer racing us may have freed space (eviction finds the
		// channel empty) or refilled it (the retry fails) — either way we
		// never block, and every lost event is counted.
		select {
		case <-ch:
			m.mDropped.Inc()
		default:
		}
		select {
		case ch <- *ev:
		default:
			m.mDropped.Inc()
		}
	}
	m.subMu.Unlock()
}

// --- watch plumbing ------------------------------------------------------

// startWatch wires heartbeat intake to the cheapest channel the
// catalog offers: push events, version long-poll, or periodic scan.
// For push catalogs the subscription is registered here, synchronously,
// so no heartbeat written after NewMonitor returns can fall between
// the seed scan and the subscription becoming active.
func (m *Monitor) startWatch() {
	m.wg.Add(1)
	switch c := m.cat.(type) {
	case subscriber:
		ch := make(chan rcds.Event, 256)
		id := c.Subscribe(naming.HostPrefix, ch)
		gid := c.Subscribe(naming.LivenessPrefix, ch) // gossip group digests
		m.scan()                                      // seed from hosts already registered
		go m.watchSubscribe(c, id, gid, ch)
	case waiter:
		m.scan()
		go m.watchWait(c)
	default:
		m.scan()
		go m.watchScan()
	}
}

// watchSubscribe rides a store's push subscription: every heartbeat
// and group-digest assertion lands here as it is applied.
func (m *Monitor) watchSubscribe(sub subscriber, id, gid int, ch chan rcds.Event) {
	defer m.wg.Done()
	defer sub.Unsubscribe(id)
	defer sub.Unsubscribe(gid)
	for {
		select {
		case <-m.ctx.Done():
			return
		case ev := <-ch:
			a := ev.Assertion
			if a.Deleted {
				continue
			}
			switch a.Name {
			case rcds.AttrHeartbeat:
				m.observe(a.URI, a.Value, time.Now())
			case rcds.AttrGroupDigest:
				m.observeDigest(a.Value, time.Now())
			}
		}
	}
}

// watchWait rides a remote RC client's Wait long-poll: when the
// replica's version advances, rescan the host records. Subscription
// events are not available across the wire, so the scan granularity is
// the notification latency — still push-shaped, not timer-shaped.
func (m *Monitor) watchWait(w waiter) {
	defer m.wg.Done()
	const poll = 2 * time.Second
	var since uint64
	for {
		if m.ctx.Err() != nil {
			return
		}
		ctx, cancel := context.WithTimeout(m.ctx, poll+5*time.Second)
		v, err := w.Wait(ctx, since, poll)
		cancel()
		if err != nil {
			select {
			case <-m.ctx.Done():
				return
			case <-time.After(m.opts.ScanInterval):
			}
			continue
		}
		if v != since {
			since = v
			m.scan()
		}
	}
}

// watchScan is the fallback: poll the catalog on a fixed cadence.
func (m *Monitor) watchScan() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.opts.ScanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-ticker.C:
			m.scan()
		}
	}
}

// scan reads every host record's heartbeat and every group digest from
// the catalog. Catalog errors are tolerated: an unreachable catalog
// stalls intake, and the silence is indistinguishable from host
// failure — exactly the partition semantics the detector is specified
// to report.
func (m *Monitor) scan() {
	m.mScans.Inc()
	now := time.Now()
	if urls, err := m.cat.URIs(naming.HostPrefix); err == nil {
		for _, url := range urls {
			v, ok, err := m.cat.FirstValue(url, rcds.AttrHeartbeat)
			if err != nil || !ok {
				continue
			}
			m.observe(url, v, now)
		}
	}
	if uris, err := m.cat.URIs(naming.LivenessPrefix); err == nil {
		for _, uri := range uris {
			v, ok, err := m.cat.FirstValue(uri, rcds.AttrGroupDigest)
			if err != nil || !ok {
				continue
			}
			m.observeDigest(v, now)
		}
	}
}

// evalLoop ages hosts toward suspicion and death on the check tick.
func (m *Monitor) evalLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.opts.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-ticker.C:
			m.evaluate(time.Now())
		}
	}
}

// evaluate applies the timeout state machine to every tracked host and
// expires settled records.
func (m *Monitor) evaluate(now time.Time) {
	var evs []*Event
	m.mu.Lock()
	for url, rec := range m.hosts {
		if rec.state == Dead || rec.state == Left {
			// A settled record is kept while anything still mentions the
			// host (scan mode re-reads whatever the catalog retains) and
			// expired once the evidence stops, mirroring the gossip
			// agents' own member retention: bounded memory under churn,
			// and a host reborn after a long outage meets a clean slate
			// instead of a verdict it can no longer out-sequence.
			if now.Sub(rec.changedAt) > m.opts.Retention && now.Sub(rec.lastSeen) > m.opts.Retention {
				delete(m.hosts, url)
			}
			continue
		}
		if rec.lastBeat.IsZero() {
			continue
		}
		age := now.Sub(rec.lastBeat)
		bound := m.suspectBoundLocked(rec)
		deadBound := time.Duration(float64(bound) * m.opts.DeadFactor)
		switch rec.state {
		case Unknown, Alive:
			if age > deadBound {
				evs = append(evs, m.transitionLocked(url, rec, Dead, "heartbeat timeout"))
				m.hDetectDelay.Observe(float64(age.Microseconds()))
			} else if age > bound {
				evs = append(evs, m.transitionLocked(url, rec, Suspect, "heartbeat overdue"))
			}
		case Suspect:
			if age > deadBound {
				evs = append(evs, m.transitionLocked(url, rec, Dead, "heartbeat timeout"))
				m.hDetectDelay.Observe(float64(age.Microseconds()))
			}
		}
	}
	m.mu.Unlock()
	for _, ev := range evs {
		m.emit(ev)
	}
}
