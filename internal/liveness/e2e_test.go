// End-to-end failure scenarios across the real stack: daemons
// heartbeating into a shared catalog, a monitor watching it, and a
// resource manager placing around failures. External test package so
// the tests can use internal/rm and internal/daemon without an import
// cycle (both import liveness).
package liveness_test

import (
	"strings"
	"testing"
	"time"

	"snipe/internal/daemon"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/netsim"
	"snipe/internal/rcds"
	"snipe/internal/rm"
	"snipe/internal/task"
)

const hbInterval = 20 * time.Millisecond

func quickMonitor(t *testing.T, cat naming.Catalog) *liveness.Monitor {
	t.Helper()
	mon := liveness.NewMonitor(cat, liveness.Options{
		CheckInterval: 5 * time.Millisecond,
		MinSuspect:    2 * hbInterval,
		MaxSuspect:    2 * time.Second,
	})
	t.Cleanup(mon.Close)
	return mon
}

func startDaemon(t *testing.T, host string, cat naming.Catalog, reg *task.Registry) *daemon.Daemon {
	t.Helper()
	return startDaemonGossip(t, host, cat, reg, daemon.GossipOptions{})
}

func startDaemonGossip(t *testing.T, host string, cat naming.Catalog, reg *task.Registry, g daemon.GossipOptions) *daemon.Daemon {
	t.Helper()
	d := daemon.New(daemon.Config{
		HostName: host, Catalog: cat, Registry: reg,
		HeartbeatInterval: hbInterval,
		Gossip:            g,
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func waitHostState(t *testing.T, mon *liveness.Monitor, host string, want liveness.State, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for mon.State(host) != want {
		if time.Now().After(deadline) {
			t.Fatalf("host %s state = %v, want %v", host, mon.State(host), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func idleRegistry() *task.Registry {
	reg := task.NewRegistry()
	reg.Register("idle", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	return reg
}

// TestCrashDetectionEndToEnd kills one of three daemons mid-flight and
// checks the whole response: the monitor declares the host dead within
// the adaptive bound, the resource manager stops placing work there,
// and the task stranded on the corpse is re-reported as failed.
func TestCrashDetectionEndToEnd(t *testing.T) {
	store := rcds.NewStore("e2e-crash")
	cat := naming.StoreCatalog(store)
	reg := idleRegistry()
	victim := startDaemon(t, "e1", cat, reg)
	startDaemon(t, "e2", cat, reg)
	startDaemon(t, "e3", cat, reg)

	mon := quickMonitor(t, cat)
	mgr, err := rm.NewManager("e2e-rm", cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.UseLiveness(mon)

	// A task to strand on the victim.
	taskURN, err := victim.Spawn(task.Spec{Program: "idle"})
	if err != nil {
		t.Fatal(err)
	}

	// Let all three hosts build inter-arrival history.
	time.Sleep(10 * hbInterval)
	for _, h := range []string{"e1", "e2", "e3"} {
		if got := mon.State(naming.HostURL(h)); got != liveness.Alive {
			t.Fatalf("host %s not alive before injection: %v", h, got)
		}
	}

	victim.Kill() // crash: heartbeats stop, no tombstone, no metadata cleanup
	// With a steady 20ms cadence the adaptive bound sits near
	// 2.5 × 20ms = 50ms and death at twice that; allow 10× headroom for
	// scheduler noise before calling the detector broken.
	waitHostState(t, mon, victim.HostURL(), liveness.Dead, 25*hbInterval)

	// Placement must route around the corpse from the first query after
	// detection — and keep doing so.
	for i := 0; i < 10; i++ {
		host, _, err := mgr.SelectHost(task.Requirements{})
		if err != nil {
			t.Fatal(err)
		}
		if host == victim.HostURL() {
			t.Fatalf("SelectHost returned the dead host on query %d", i)
		}
	}

	// The stranded task is settled: state failed, addresses withdrawn.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st, _ := store.FirstValue(taskURN, rcds.AttrState); st == string(task.StateFailed) {
			break
		}
		if time.Now().After(deadline) {
			st, _ := store.FirstValue(taskURN, rcds.AttrState)
			t.Fatalf("stranded task state = %q, want failed", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addrs := store.Values(taskURN, rcds.AttrCommAddr); len(addrs) != 0 {
		t.Fatalf("stranded task still registered: %v", addrs)
	}
}

// TestCleanShutdownIsNotAFailure closes a daemon properly and checks
// the tombstone path: the host transitions to Left without ever being
// suspected, and placement excludes it immediately.
func TestCleanShutdownIsNotAFailure(t *testing.T) {
	store := rcds.NewStore("e2e-clean")
	cat := naming.StoreCatalog(store)
	reg := idleRegistry()
	leaver := startDaemon(t, "c1", cat, reg)
	startDaemon(t, "c2", cat, reg)

	mon := quickMonitor(t, cat)
	events := mon.Events()
	mgr, err := rm.NewManager("clean-rm", cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.UseLiveness(mon)

	time.Sleep(10 * hbInterval)
	leaver.Close()
	waitHostState(t, mon, leaver.HostURL(), liveness.Left, 2*time.Second)

	// Linger past the death bound: no suspicion may surface for a host
	// that said goodbye.
	time.Sleep(10 * hbInterval)
	for done := false; !done; {
		select {
		case ev := <-events:
			if ev.To == liveness.Suspect || ev.To == liveness.Dead {
				t.Fatalf("clean shutdown produced %v for %s (%s)", ev.To, ev.Host, ev.Reason)
			}
		default:
			done = true
		}
	}
	host, _, err := mgr.SelectHost(task.Requirements{})
	if err != nil || host != naming.HostURL("c2") {
		t.Fatalf("placement after departure: %q %v", host, err)
	}
}

// fabricGossipGate adapts a fabric's pair gate to the daemon's gossip
// Gate hook, which is called with full host URLs while the fabric
// names nodes by bare host name.
func fabricGossipGate(fabric *netsim.Fabric) func(from, to string) error {
	gate := fabric.PairGate()
	return func(from, to string) error {
		return gate(strings.TrimPrefix(from, naming.HostPrefix),
			strings.TrimPrefix(to, naming.HostPrefix))
	}
}

// TestPartitionAndHeal fully isolates one daemon through a netsim
// fabric: its catalog access is gated AND its gossip traffic is
// severed, the two-tier equivalent of pulling the network cable. Only
// that combination may produce Dead — a host that still gossips is
// alive by definition, its peers' digests keep vouching for it no
// matter what the catalog sees. After healing, the victim refutes the
// group's suspicion and revives.
func TestPartitionAndHeal(t *testing.T) {
	store := rcds.NewStore("e2e-part")
	cat := naming.StoreCatalog(store)
	reg := idleRegistry()
	fabric := netsim.NewFabric()
	gossip := daemon.GossipOptions{Gate: fabricGossipGate(fabric)}

	gated := naming.GatedCatalog(cat, fabric.Gate("p1", "rc"))
	isolated := startDaemonGossip(t, "p1", gated, reg, gossip)
	startDaemonGossip(t, "p2", cat, reg, gossip)

	mon := quickMonitor(t, cat)
	time.Sleep(10 * hbInterval)
	if got := mon.State(isolated.HostURL()); got != liveness.Alive {
		t.Fatalf("before partition: %v", got)
	}

	// Isolate severs every pair involving p1: the p1–rc catalog gate
	// and the p1–p2 gossip path go down together.
	fabric.Isolate("p1")
	waitHostState(t, mon, isolated.HostURL(), liveness.Dead, 25*hbInterval)
	// The unpartitioned host is untouched.
	if got := mon.State(naming.HostURL("p2")); got != liveness.Alive {
		t.Fatalf("bystander state: %v", got)
	}

	fabric.Rejoin("p1")
	// The daemon never stopped running; once gossip flows again it
	// refutes the suspicion with a bumped incarnation and the digests
	// revive the host.
	waitHostState(t, mon, isolated.HostURL(), liveness.Alive, 2*time.Second)
}
