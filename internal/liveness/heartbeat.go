// Package liveness is SNIPE's failure-detection subsystem: the paper's
// "failure notification" made a system property instead of a private
// habit of each layer.
//
// Host daemons publish heartbeats — a monotonically increasing sequence
// number, a wall-clock timestamp and the host's load, folded into ONE
// replicated RC metadata write per beat (riding the daemon's existing
// load publication, so liveness costs no new wire protocol). A Monitor
// watches the catalog and tracks every host through the state machine
//
//	alive → suspect → dead
//
// using an adaptive timeout derived from the observed inter-arrival
// history (in the spirit of the φ accrual detector, Hayashibara et al.,
// SRDS 2004) rather than a fixed deadline, plus SWIM-style external
// suspicion evidence piggybacked on existing traffic: the comm layer
// reports send failures and acknowledgements, accelerating detection
// without extra probes (Das et al., DSN 2002).
//
// Consumers: resource managers filter suspect/dead hosts out of
// placement and re-report tasks stranded on dead hosts; the comm layer
// fail-fasts buffered sends to dead peers (flag-guarded); the migration
// layer evacuates checkpointable tasks off hosts entering suspicion.
// A clean daemon shutdown writes a tombstone heartbeat, so planned
// exits transition to "left" without ever looking like crashes.
package liveness

import (
	"fmt"
	"strconv"
	"strings"

	"snipe/internal/gossip"
	"snipe/internal/naming"
	"snipe/internal/rcds"
)

// Heartbeat is one liveness publication by a host daemon. The catalog
// value format is "<seq> <unixnano> <load>" with a trailing " down" on
// the clean-shutdown tombstone.
type Heartbeat struct {
	Seq  uint64  // monotonically increasing per daemon incarnation
	Time int64   // sender's wall clock, ns since epoch (informational)
	Load float64 // running tasks per CPU, the placement input
	Down bool    // clean-shutdown tombstone
}

// String renders the heartbeat in its catalog value format.
func (h Heartbeat) String() string {
	if h.Down {
		return fmt.Sprintf("%d %d %.2f down", h.Seq, h.Time, h.Load)
	}
	return fmt.Sprintf("%d %d %.2f", h.Seq, h.Time, h.Load)
}

// ParseHeartbeat reads a catalog heartbeat value.
func ParseHeartbeat(s string) (Heartbeat, error) {
	var h Heartbeat
	fields := strings.Fields(s)
	if len(fields) < 3 || len(fields) > 4 {
		return h, fmt.Errorf("liveness: malformed heartbeat %q", s)
	}
	var err error
	if h.Seq, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
		return h, fmt.Errorf("liveness: heartbeat seq: %w", err)
	}
	if h.Time, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return h, fmt.Errorf("liveness: heartbeat time: %w", err)
	}
	if h.Load, err = strconv.ParseFloat(fields[2], 64); err != nil {
		return h, fmt.Errorf("liveness: heartbeat load: %w", err)
	}
	if len(fields) == 4 {
		if fields[3] != "down" {
			return h, fmt.Errorf("liveness: heartbeat trailer %q", fields[3])
		}
		h.Down = true
	}
	return h, nil
}

// HostOfURN maps a process URN to its host's distinguished URL, the key
// the Monitor tracks. Returns "" for names outside the process
// namespace (liveness is a host property, not a task property).
func HostOfURN(urn string) string {
	rest, ok := strings.CutPrefix(urn, naming.ProcessPrefix)
	if !ok {
		return ""
	}
	host, _, ok := strings.Cut(rest, ":")
	if !ok || host == "" {
		return ""
	}
	return naming.HostURL(host)
}

// HostLoad reads a host's load figure. A gossip-mode host (it carries
// a gossip-group attribute) publishes load through its group's digest,
// so that is consulted first; the per-host heartbeat covers legacy
// daemons, and the standalone load attribute covers records published
// by hand.
func HostLoad(cat naming.Catalog, hostURL string) (float64, bool) {
	if v, ok, err := cat.FirstValue(hostURL, rcds.AttrGossipGroup); err == nil && ok {
		if load, ok := digestLoad(cat, hostURL, v); ok {
			return load, true
		}
	}
	if v, ok, err := cat.FirstValue(hostURL, rcds.AttrHeartbeat); err == nil && ok {
		if hb, err := ParseHeartbeat(v); err == nil {
			return hb.Load, true
		}
	}
	if v, ok, err := cat.FirstValue(hostURL, rcds.AttrLoad); err == nil && ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f, true
		}
	}
	return 0, false
}

// digestLoad resolves a host's load from its gossip group's digest.
// groupAttr is the host's "<group>/<groups>" membership attribute.
func digestLoad(cat naming.Catalog, hostURL, groupAttr string) (float64, bool) {
	idx, _, ok := strings.Cut(groupAttr, "/")
	if !ok {
		return 0, false
	}
	g, err := strconv.Atoi(idx)
	if err != nil || g < 0 {
		return 0, false
	}
	v, ok, err := cat.FirstValue(naming.LivenessGroupURI(g), rcds.AttrGroupDigest)
	if err != nil || !ok {
		return 0, false
	}
	d, err := gossip.ParseDigest(v)
	if err != nil {
		return 0, false
	}
	for _, u := range d.Members {
		if u.Host == hostURL {
			return u.Load, true
		}
	}
	return 0, false
}
