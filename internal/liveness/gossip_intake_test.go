package liveness

import (
	"testing"
	"time"

	"snipe/internal/gossip"
	"snipe/internal/naming"
	"snipe/internal/rcds"
)

// slowOptions keeps the timeout state machine out of the picture so
// tests exercise the gossip intake rules in isolation.
func slowOptions() Options {
	return Options{CheckInterval: time.Hour, MinSuspect: time.Hour, MaxSuspect: 2 * time.Hour}
}

func TestObserveGossipFreshness(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	host := naming.HostURL("g1")
	u := func(inc, seq uint64, state uint8) gossip.Update {
		return gossip.Update{Host: host, Inc: inc, Seq: seq, State: state}
	}
	steps := []struct {
		name string
		u    gossip.Update
		want State
	}{
		{"first alive claim", u(1, 5, gossip.StateAlive), Alive},
		{"stale alive at lower seq ignored", u(1, 3, gossip.StateAlive), Alive},
		{"stale lower inc ignored", u(0, 99, gossip.StateDead), Alive},
		// A suspicion verdict carries the seq at which the prober last
		// heard the member, which lags the last alive claim; state rank
		// beats a lagging seq at equal incarnations.
		{"suspicion at lagging seq accepted", u(1, 4, gossip.StateSuspect), Suspect},
		{"alive at frozen seq does not refute", u(1, 4, gossip.StateAlive), Suspect},
		// Seq progress past the verdict's frozen seq proves the member
		// outlived the verdict: resurrection without an incarnation bump.
		{"alive with seq progress resurrects", u(1, 6, gossip.StateAlive), Alive},
		{"higher inc refutes", u(2, 1, gossip.StateAlive), Alive},
		{"quorum death verdict at equal seq", u(2, 1, gossip.StateDead), Dead},
		{"alive claim at death inc ignored", u(2, 1, gossip.StateAlive), Dead},
		{"rebirth at next incarnation", u(3, 1, gossip.StateAlive), Alive},
		{"clean departure", u(3, 2, gossip.StateLeft), Left},
	}
	for _, s := range steps {
		w.mon.ObserveGossip(s.u)
		if got := w.mon.State(host); got != s.want {
			t.Fatalf("%s: state = %v, want %v", s.name, got, s.want)
		}
	}
	// The record tracks the freshest (inc, seq) it accepted.
	for _, info := range w.mon.Snapshot() {
		if info.Host == host && (info.Inc != 3 || info.Seq != 2) {
			t.Fatalf("record at inc %d seq %d, want 3/2", info.Inc, info.Seq)
		}
	}
}

func TestMinorityDigestDowngradesDeath(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	host := naming.HostURL("g2")
	w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 1, Seq: 1, State: gossip.StateAlive})

	// A minority reporter's death verdict counts only as suspicion: the
	// reporter may be the partitioned one.
	w.mon.ObserveGossipQuorum(gossip.Update{Host: host, Inc: 1, Seq: 2, State: gossip.StateDead}, false, time.Now())
	if got := w.mon.State(host); got != Suspect {
		t.Fatalf("minority verdict gave %v, want %v", got, Suspect)
	}
	// The same claim with quorum is believed.
	w.mon.ObserveGossipQuorum(gossip.Update{Host: host, Inc: 1, Seq: 3, State: gossip.StateDead}, true, time.Now())
	if got := w.mon.State(host); got != Dead {
		t.Fatalf("quorum verdict gave %v, want %v", got, Dead)
	}
	// A later minority verdict cannot resurrect a dead host to suspect.
	w.mon.ObserveGossipQuorum(gossip.Update{Host: host, Inc: 1, Seq: 4, State: gossip.StateDead}, false, time.Now())
	if got := w.mon.State(host); got != Dead {
		t.Fatalf("minority verdict moved a dead host to %v", got)
	}
}

func TestDigestIntakeViaCatalog(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	alive := naming.HostURL("da")
	dead := naming.HostURL("dd")
	d := &gossip.Digest{Group: 2, Reporter: alive, Seq: 1, Quorum: true, Members: []gossip.Update{
		{Host: alive, Inc: 1, Seq: 8, State: gossip.StateAlive, Load: 1.5},
		{Host: dead, Inc: 1, Seq: 3, State: gossip.StateDead},
	}}
	w.cat.Set(naming.LivenessGroupURI(2), rcds.AttrGroupDigest, d.Format())

	deadline := time.Now().Add(2 * time.Second)
	for w.mon.State(alive) != Alive || w.mon.State(dead) != Dead {
		if time.Now().After(deadline) {
			t.Fatalf("digest not ingested: %v/%v", w.mon.State(alive), w.mon.State(dead))
		}
		time.Sleep(time.Millisecond)
	}
	if got := w.mon.Metrics().Counter("digests_observed").Value(); got < 1 {
		t.Fatalf("digests_observed = %d", got)
	}
	for _, info := range w.mon.Snapshot() {
		if info.Host == alive && info.Load != 1.5 {
			t.Fatalf("digest load not recorded: %+v", info)
		}
	}
	// Garbage in the digest attribute must be tolerated, not crash intake.
	w.cat.Set(naming.LivenessGroupURI(3), rcds.AttrGroupDigest, "not a digest")
	time.Sleep(10 * time.Millisecond)
	if got := w.mon.State(alive); got != Alive {
		t.Fatalf("state disturbed by garbage digest: %v", got)
	}
}

func TestStaleDigestLosesToDirectEvidence(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	host := naming.HostURL("g3")
	// Direct gossip (the colocated agent's observer feed) has already
	// seen the host refute a false verdict at incarnation 2.
	w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 2, Seq: 4, State: gossip.StateAlive})

	// A digest written before the refutation still carries the stale
	// death at incarnation 1. It must lose.
	d := &gossip.Digest{Group: 0, Reporter: naming.HostURL("r"), Seq: 9, Quorum: true, Members: []gossip.Update{
		{Host: host, Inc: 1, Seq: 99, State: gossip.StateDead},
	}}
	w.cat.Set(naming.LivenessGroupURI(0), rcds.AttrGroupDigest, d.Format())
	deadline := time.Now().Add(time.Second)
	for w.mon.Metrics().Counter("digests_observed").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("digest never observed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := w.mon.State(host); got != Alive {
		t.Fatalf("stale digest won over direct evidence: %v", got)
	}
}

func TestSubscribeDropOldest(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	host := naming.HostURL("g4")
	ch, cancel := w.mon.Subscribe(2)
	defer cancel()

	// Alternate suspect/alive transitions without draining: each call
	// produces exactly one event into the 2-slot buffer.
	const transitions = 12
	seq := uint64(0)
	for i := 0; i < transitions; i++ {
		seq++
		state := uint8(gossip.StateSuspect)
		if i%2 == 1 {
			state = gossip.StateAlive
		}
		w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 1, Seq: seq, State: state})
	}
	dropped := w.mon.Metrics().Counter("liveness_events_dropped").Value()
	if dropped != transitions-2 {
		t.Fatalf("liveness_events_dropped = %d, want %d", dropped, transitions-2)
	}
	// Drop-OLDEST: the survivors are the two freshest transitions, so a
	// consumer that finally drains sees the state that still describes
	// reality (the last transition was to Alive).
	var last Event
	for n := 0; ; n++ {
		select {
		case ev := <-ch:
			last = ev
		default:
			if n != 2 {
				t.Fatalf("buffer held %d events, want 2", n)
			}
			if last.To != Alive {
				t.Fatalf("freshest surviving event is %v, want %v", last.To, Alive)
			}
			return
		}
	}
}

// recordOf copies a host's tracking record for white-box assertions.
func recordOf(m *Monitor, host string) (hostRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.hosts[host]
	if !ok {
		return hostRecord{}, false
	}
	return *rec, true
}

func TestArrivalClockRefreshRules(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	host := naming.HostURL("g5")
	t0 := time.Now()
	u := func(inc, seq uint64, state uint8) gossip.Update {
		return gossip.Update{Host: host, Inc: inc, Seq: seq, State: state}
	}
	w.mon.ObserveGossipQuorum(u(1, 5, gossip.StateAlive), true, t0)
	rec, ok := recordOf(w.mon, host)
	if !ok || !rec.lastBeat.Equal(t0) {
		t.Fatalf("fresh claim did not set the arrival clock: %v %v", ok, rec.lastBeat)
	}
	// A newer digest re-asserting the member at an unchanged seq is the
	// reporter still vouching for it (dissemination lag keeps member
	// counters behind the digest cadence): the clock refreshes. Replayed
	// digests are deduped before they can reach the claim merge.
	t1 := t0.Add(time.Second)
	w.mon.ObserveGossipQuorum(u(1, 5, gossip.StateAlive), true, t1)
	rec, _ = recordOf(w.mon, host)
	if !rec.lastBeat.Equal(t1) {
		t.Fatalf("re-vouched claim did not refresh the arrival clock: %v", rec.lastBeat)
	}
	// A claim at a LOWER seq is history and refreshes nothing.
	t2 := t1.Add(time.Second)
	w.mon.ObserveGossipQuorum(u(1, 3, gossip.StateAlive), true, t2)
	rec, _ = recordOf(w.mon, host)
	if !rec.lastBeat.Equal(t1) {
		t.Fatalf("stale claim refreshed the arrival clock to %v", rec.lastBeat)
	}
	// Once a verdict freezes the record, an alive claim at the frozen
	// seq must not refresh the clock either — reviving or sustaining a
	// suspected host demands seq progress.
	w.mon.ObserveGossipQuorum(u(1, 4, gossip.StateSuspect), true, t2)
	t3 := t2.Add(time.Second)
	w.mon.ObserveGossipQuorum(u(1, 4, gossip.StateAlive), true, t3)
	rec, _ = recordOf(w.mon, host)
	if rec.state != Suspect || !rec.lastBeat.Equal(t1) {
		t.Fatalf("claim at frozen seq touched a suspected record: %v %v", rec.state, rec.lastBeat)
	}
	// Every intake, fresh or stale, notes that something still mentions
	// the host.
	if !rec.lastSeen.Equal(t3) {
		t.Fatalf("stale claim did not refresh lastSeen: %v", rec.lastSeen)
	}
}

func TestFrozenDigestMembersTimeOut(t *testing.T) {
	w := newBeatWorld(t, quickOptions())
	host := naming.HostURL("g6")
	d := &gossip.Digest{Group: 9, Reporter: host, Seq: 4, Quorum: true, Members: []gossip.Update{
		{Host: host, Inc: 1, Seq: 20, State: gossip.StateAlive},
	}}
	val := d.Format()
	w.mon.observeDigest(val, time.Now())
	if got := w.mon.State(host); got != Alive {
		t.Fatalf("digest member not alive: %v", got)
	}
	// The whole group crashes: no reporter remains to write a newer
	// digest, but the frozen value is still re-read every scan cycle.
	// The member must still age to Dead.
	deadline := time.Now().Add(2 * time.Second)
	for w.mon.State(host) != Dead {
		if time.Now().After(deadline) {
			t.Fatalf("frozen digest kept host %v forever", w.mon.State(host))
		}
		w.mon.observeDigest(val, time.Now())
		time.Sleep(2 * time.Millisecond)
	}
	if got := w.mon.Metrics().Counter("digests_observed").Value(); got != 1 {
		t.Fatalf("digests_observed = %d, want 1 (replays deduped)", got)
	}
}

func TestDigestDedupeAdmissionRules(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	r1, r2 := naming.HostURL("r1"), naming.HostURL("r2")
	mk := func(rep string, seq uint64) string {
		d := &gossip.Digest{Group: 1, Reporter: rep, Seq: seq, Quorum: true, Members: []gossip.Update{
			{Host: rep, Inc: 1, Seq: seq, State: gossip.StateAlive},
		}}
		return d.Format()
	}
	now := time.Now()
	observed := func() uint64 { return w.mon.Metrics().Counter("digests_observed").Value() }
	w.mon.observeDigest(mk(r1, 5), now) // first sight: admitted
	w.mon.observeDigest(mk(r1, 5), now) // re-scan replay: rejected
	w.mon.observeDigest(mk(r1, 3), now) // lagging replica during catch-up: rejected
	if got := observed(); got != 1 {
		t.Fatalf("after replays digests_observed = %d, want 1", got)
	}
	// A different reporter is failover, not a replay — even at a lower
	// seq (each reporter numbers its own digests from 1).
	w.mon.observeDigest(mk(r2, 1), now)
	if got := observed(); got != 2 {
		t.Fatalf("failover reporter rejected: digests_observed = %d, want 2", got)
	}
	w.mon.observeDigest(mk(r2, 2), now) // progress from the new reporter: admitted
	if got := observed(); got != 3 {
		t.Fatalf("newer digest rejected: digests_observed = %d, want 3", got)
	}
}

func TestMinorityAliveCannotResurrectDead(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	host := naming.HostURL("g7")
	now := time.Now()
	u := func(inc, seq uint64, state uint8) gossip.Update {
		return gossip.Update{Host: host, Inc: inc, Seq: seq, State: state}
	}
	w.mon.ObserveGossipQuorum(u(1, 1, gossip.StateAlive), true, now)
	w.mon.ObserveGossipQuorum(u(1, 2, gossip.StateDead), true, now)
	if got := w.mon.State(host); got != Dead {
		t.Fatalf("quorum verdict gave %v", got)
	}
	// A gossip split where both sides reach the catalog: the minority
	// reporter's advancing seqs must refresh the record without flapping
	// it back to Alive against the majority's verdict.
	for seq := uint64(3); seq < 8; seq++ {
		w.mon.ObserveGossipQuorum(u(1, seq, gossip.StateAlive), false, now)
		if got := w.mon.State(host); got != Dead {
			t.Fatalf("minority alive at seq %d resurrected host to %v", seq, got)
		}
	}
	// Quorum evidence of further progress does resurrect.
	w.mon.ObserveGossipQuorum(u(1, 9, gossip.StateAlive), true, now)
	if got := w.mon.State(host); got != Alive {
		t.Fatalf("quorum alive after progress gave %v", got)
	}
	// Dead again; the member's own refutation (incarnation bump) revives
	// it even when carried by a minority digest.
	w.mon.ObserveGossipQuorum(u(1, 10, gossip.StateDead), true, now)
	if got := w.mon.State(host); got != Dead {
		t.Fatalf("second verdict gave %v", got)
	}
	w.mon.ObserveGossipQuorum(u(2, 1, gossip.StateAlive), false, now)
	if got := w.mon.State(host); got != Alive {
		t.Fatalf("minority-carried refutation gave %v", got)
	}
}

func TestMinorityAliveClearsSuspicion(t *testing.T) {
	// A two-member group can never form a quorum (alive*2 > total fails
	// at 1 of 2), so its lone survivor's digests are minority forever;
	// they must still be able to clear a false suspicion of the survivor
	// or it ages to a false Dead.
	w := newBeatWorld(t, slowOptions())
	host := naming.HostURL("g8")
	now := time.Now()
	w.mon.ObserveGossipQuorum(gossip.Update{Host: host, Inc: 1, Seq: 1, State: gossip.StateAlive}, false, now)
	if got := w.mon.State(host); got != Alive {
		t.Fatalf("minority alive on a fresh record gave %v", got)
	}
	w.mon.ObserveGossipQuorum(gossip.Update{Host: host, Inc: 1, Seq: 2, State: gossip.StateSuspect}, false, now)
	if got := w.mon.State(host); got != Suspect {
		t.Fatalf("minority suspicion gave %v", got)
	}
	w.mon.ObserveGossipQuorum(gossip.Update{Host: host, Inc: 1, Seq: 3, State: gossip.StateAlive}, false, now)
	if got := w.mon.State(host); got != Alive {
		t.Fatalf("minority alive did not clear suspicion: %v", got)
	}
}

func TestReplayedAliveBetweenVerdictAndCreditedSeq(t *testing.T) {
	w := newBeatWorld(t, slowOptions())
	host := naming.HostURL("g9")
	w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 1, Seq: 9, State: gossip.StateAlive})
	// The prober last heard the member at seq 4; its verdict carries
	// that lagging seq and freezes the record there.
	w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 1, Seq: 4, State: gossip.StateSuspect})
	if got := w.mon.State(host); got != Suspect {
		t.Fatalf("verdict gave %v", got)
	}
	// An out-of-order digest served by a lagging replica replays an
	// alive claim from between the frozen seq and the highest alive seq
	// already credited: that is history, not progress.
	w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 1, Seq: 7, State: gossip.StateAlive})
	if got := w.mon.State(host); got != Suspect {
		t.Fatalf("replayed alive claim resurrected host to %v", got)
	}
	// Progress past both seqs is genuine life after the verdict.
	w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 1, Seq: 10, State: gossip.StateAlive})
	if got := w.mon.State(host); got != Alive {
		t.Fatalf("genuine progress gave %v", got)
	}
}

func TestDeadRecordExpiresAfterRetention(t *testing.T) {
	opts := slowOptions()
	opts.CheckInterval = 2 * time.Millisecond
	opts.Retention = 40 * time.Millisecond
	w := newBeatWorld(t, opts)
	host := naming.HostURL("g10")
	w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 1, Seq: 1, State: gossip.StateAlive})
	w.mon.ObserveGossip(gossip.Update{Host: host, Inc: 1, Seq: 2, State: gossip.StateDead})
	if got := w.mon.State(host); got != Dead {
		t.Fatalf("verdict gave %v", got)
	}
	// While stale evidence still mentions the host (the catalog retains
	// its record and scans keep re-reading it), the verdict is kept —
	// expiring it would let the stale evidence recreate the record and
	// flap it through a fresh timeout cycle.
	hold := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(hold) {
		w.mon.ObserveGossipQuorum(gossip.Update{Host: host, Inc: 1, Seq: 2, State: gossip.StateDead}, true, time.Now())
		if got := w.mon.State(host); got != Dead {
			t.Fatalf("still-mentioned dead record expired early: %v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The evidence stops: the record expires and a host reborn after a
	// long outage meets a clean slate instead of its old verdict.
	deadline := time.Now().Add(2 * time.Second)
	for w.mon.State(host) != Unknown {
		if time.Now().After(deadline) {
			t.Fatalf("dead record never expired: %v", w.mon.State(host))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, info := range w.mon.Snapshot() {
		if info.Host == host {
			t.Fatalf("expired host still in snapshot: %+v", info)
		}
	}
}

func TestHostLoadDigestPath(t *testing.T) {
	store := rcds.NewStore("hl-digest")
	cat := naming.StoreCatalog(store)
	host := naming.HostURL("gh1")

	// A gossip-mode host publishes load through its group digest, which
	// beats even a (stale) legacy heartbeat on the same record.
	cat.Set(host, rcds.AttrGossipGroup, "5/8")
	cat.Set(host, rcds.AttrHeartbeat, Heartbeat{Seq: 1, Time: 1, Load: 9.75}.String())
	d := &gossip.Digest{Group: 5, Reporter: host, Seq: 3, Quorum: true, Members: []gossip.Update{
		{Host: host, Inc: 1, Seq: 30, State: gossip.StateAlive, Load: 2.25},
	}}
	cat.Set(naming.LivenessGroupURI(5), rcds.AttrGroupDigest, d.Format())
	if load, ok := HostLoad(cat, host); !ok || load != 2.25 {
		t.Fatalf("digest load: %v %v", load, ok)
	}

	// Digest missing (group not yet written): fall through to the
	// heartbeat rather than reporting no load.
	cat.Set(host, rcds.AttrGossipGroup, "6/8")
	if load, ok := HostLoad(cat, host); !ok || load != 9.75 {
		t.Fatalf("heartbeat fallback: %v %v", load, ok)
	}
	// A malformed membership attribute also falls through.
	cat.Set(host, rcds.AttrGossipGroup, "junk")
	if load, ok := HostLoad(cat, host); !ok || load != 9.75 {
		t.Fatalf("malformed group fallback: %v %v", load, ok)
	}
	// Host absent from its group's digest: fall through too.
	cat.Set(host, rcds.AttrGossipGroup, "7/8")
	other := &gossip.Digest{Group: 7, Reporter: naming.HostURL("x"), Seq: 1, Members: []gossip.Update{
		{Host: naming.HostURL("x"), Inc: 1, Seq: 1, State: gossip.StateAlive, Load: 0.5},
	}}
	cat.Set(naming.LivenessGroupURI(7), rcds.AttrGroupDigest, other.Format())
	if load, ok := HostLoad(cat, host); !ok || load != 9.75 {
		t.Fatalf("absent-member fallback: %v %v", load, ok)
	}
}
