package liveness

import (
	"strings"
	"testing"
	"time"

	"snipe/internal/naming"
	"snipe/internal/rcds"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	cases := []Heartbeat{
		{Seq: 1, Time: 1234567890, Load: 0},
		{Seq: 42, Time: 987654321000, Load: 2.5},
		{Seq: 7, Time: 1, Load: 0.33, Down: true},
	}
	for _, hb := range cases {
		got, err := ParseHeartbeat(hb.String())
		if err != nil {
			t.Fatalf("%q: %v", hb.String(), err)
		}
		if got.Seq != hb.Seq || got.Time != hb.Time || got.Down != hb.Down {
			t.Fatalf("round trip: %+v -> %+v", hb, got)
		}
		// Load survives at the printed precision.
		if diff := got.Load - hb.Load; diff > 0.005 || diff < -0.005 {
			t.Fatalf("load round trip: %v -> %v", hb.Load, got.Load)
		}
	}
	for _, bad := range []string{"", "1", "1 2", "1 2 3 4 5", "x 2 3", "1 y 3", "1 2 z", "1 2 3 up"} {
		if _, err := ParseHeartbeat(bad); err == nil {
			t.Fatalf("ParseHeartbeat(%q) accepted", bad)
		}
	}
}

func TestHostOfURN(t *testing.T) {
	if got := HostOfURN("urn:snipe:process:h1:counter-3"); got != naming.HostURL("h1") {
		t.Fatalf("got %q", got)
	}
	for _, bad := range []string{"urn:other:process:h1:x", "snipe://hosts/h1", "urn:snipe:process:nocolon", "urn:snipe:process::x"} {
		if got := HostOfURN(bad); got != "" {
			t.Fatalf("HostOfURN(%q) = %q, want empty", bad, got)
		}
	}
}

func TestHostLoadLegacyFallback(t *testing.T) {
	store := rcds.NewStore("hl")
	cat := naming.StoreCatalog(store)
	host := naming.HostURL("h1")
	// Legacy standalone load attribute only.
	cat.Set(host, rcds.AttrLoad, "1.50")
	if load, ok := HostLoad(cat, host); !ok || load != 1.5 {
		t.Fatalf("legacy: %v %v", load, ok)
	}
	// A heartbeat takes precedence.
	cat.Set(host, rcds.AttrHeartbeat, Heartbeat{Seq: 3, Time: 1, Load: 2.25}.String())
	if load, ok := HostLoad(cat, host); !ok || load != 2.25 {
		t.Fatalf("heartbeat: %v %v", load, ok)
	}
	if _, ok := HostLoad(cat, naming.HostURL("ghost")); ok {
		t.Fatal("ghost host reported a load")
	}
}

func TestPlaceable(t *testing.T) {
	want := map[State]bool{Unknown: true, Alive: true, Suspect: false, Dead: false, Left: false}
	for s, w := range want {
		if s.Placeable() != w {
			t.Fatalf("%v.Placeable() = %v", s, !w)
		}
	}
}

func TestAdaptiveSuspectBound(t *testing.T) {
	m := &Monitor{opts: Options{MinSuspect: time.Millisecond, MaxSuspect: 10 * time.Second}}
	m.opts.fill()
	m.opts.MinSuspect = time.Millisecond // fill() would raise it to the default

	rec := &hostRecord{}
	// No history: the cap applies.
	if got := m.suspectBoundLocked(rec); got != m.opts.MaxSuspect {
		t.Fatalf("no history bound = %v", got)
	}
	// A perfectly steady 10ms cadence: zero variance, so the 2.5×mean
	// floor provides the slack.
	for i := 0; i < historySize; i++ {
		rec.pushInterval(10 * time.Millisecond)
	}
	if got := m.suspectBoundLocked(rec); got != 25*time.Millisecond {
		t.Fatalf("steady bound = %v, want 25ms", got)
	}
	// A jittery cadence widens the bound past the floor.
	jittery := &hostRecord{}
	for i := 0; i < historySize; i++ {
		d := 10 * time.Millisecond
		if i%2 == 0 {
			d = 30 * time.Millisecond
		}
		jittery.pushInterval(d)
	}
	mean, std, _ := jittery.intervalStats()
	if got := m.suspectBoundLocked(jittery); got < mean+4*std {
		t.Fatalf("jittery bound %v < mean+4σ (%v)", got, mean+4*std)
	}
	// A digest-fed record (gossip incarnation seen) gets a wider floor:
	// the whole group refreshes on one reporter's cadence, so the bound
	// must span a reporter-failover gap.
	digestFed := &hostRecord{inc: 1}
	for i := 0; i < historySize; i++ {
		digestFed.pushInterval(10 * time.Millisecond)
	}
	if got := m.suspectBoundLocked(digestFed); got != 50*time.Millisecond {
		t.Fatalf("digest-fed bound = %v, want 50ms", got)
	}

	// The fixed-deadline ablation overrides everything.
	m.opts.FixedSuspect = 123 * time.Millisecond
	if got := m.suspectBoundLocked(jittery); got != 123*time.Millisecond {
		t.Fatalf("fixed bound = %v", got)
	}
}

func TestIntervalRingWraps(t *testing.T) {
	rec := &hostRecord{}
	for i := 0; i < historySize*2; i++ {
		rec.pushInterval(time.Duration(i) * time.Millisecond)
	}
	if n := len(rec.intervals); n != historySize {
		t.Fatalf("ring grew to %d", n)
	}
	// All surviving samples come from the second pass.
	for _, d := range rec.intervals {
		if d < time.Duration(historySize)*time.Millisecond {
			t.Fatalf("stale sample %v survived the wrap", d)
		}
	}
}

// beatWorld is a store-backed monitor with a helper for publishing
// heartbeats by hand.
type beatWorld struct {
	t    *testing.T
	cat  naming.Catalog
	mon  *Monitor
	host string
	seq  uint64
}

func newBeatWorld(t *testing.T, opts Options) *beatWorld {
	t.Helper()
	store := rcds.NewStore("liveness-test")
	cat := naming.StoreCatalog(store)
	mon := NewMonitor(cat, opts)
	t.Cleanup(mon.Close)
	return &beatWorld{t: t, cat: cat, mon: mon, host: naming.HostURL("h1")}
}

func (w *beatWorld) beat(load float64) {
	w.seq++
	w.cat.Set(w.host, rcds.AttrHeartbeat, Heartbeat{Seq: w.seq, Time: time.Now().UnixNano(), Load: load}.String())
}

func (w *beatWorld) tombstone() {
	w.seq++
	w.cat.Set(w.host, rcds.AttrHeartbeat, Heartbeat{Seq: w.seq, Time: time.Now().UnixNano(), Down: true}.String())
}

func (w *beatWorld) waitState(want State, d time.Duration) {
	w.t.Helper()
	deadline := time.Now().Add(d)
	for {
		if got := w.mon.State(w.host); got == want {
			return
		}
		if time.Now().After(deadline) {
			w.t.Fatalf("state = %v, want %v", w.mon.State(w.host), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func quickOptions() Options {
	return Options{
		CheckInterval: 2 * time.Millisecond,
		MinSuspect:    30 * time.Millisecond,
		MaxSuspect:    60 * time.Millisecond,
		DeadFactor:    2,
	}
}

func TestMonitorStateMachine(t *testing.T) {
	w := newBeatWorld(t, quickOptions())
	events := w.mon.Events()

	// Heartbeats at a steady cadence: alive.
	for i := 0; i < 8; i++ {
		w.beat(1.0)
		time.Sleep(5 * time.Millisecond)
	}
	w.waitState(Alive, time.Second)

	// Silence: suspect, then dead — in that order.
	w.waitState(Dead, 2*time.Second)
	var seen []State
	for done := false; !done; {
		select {
		case ev := <-events:
			seen = append(seen, ev.To)
		default:
			done = true
		}
	}
	var names []string
	for _, s := range seen {
		names = append(names, s.String())
	}
	trace := strings.Join(names, "→")
	if !strings.HasSuffix(trace, "suspect→dead") {
		t.Fatalf("transition trace %q does not end alive→suspect→dead", trace)
	}

	// A fresh (higher-seq) heartbeat revives even a dead host.
	w.beat(0.5)
	w.waitState(Alive, time.Second)
	if info := w.mon.Snapshot(); len(info) != 1 || info[0].Load != 0.5 {
		t.Fatalf("snapshot after revival: %+v", info)
	}
}

func TestLegacyRebirthAtLowerSeq(t *testing.T) {
	w := newBeatWorld(t, quickOptions())
	for i := 0; i < 6; i++ {
		w.beat(1.0)
		time.Sleep(5 * time.Millisecond)
	}
	w.waitState(Alive, time.Second)
	w.waitState(Dead, 2*time.Second) // silence ages it out

	// A re-read of the final pre-death heartbeat (equal seq, fresh
	// timestamp) is old news, not a revival.
	w.cat.Set(w.host, rcds.AttrHeartbeat, Heartbeat{Seq: w.seq, Time: time.Now().UnixNano(), Load: 1}.String())
	time.Sleep(25 * time.Millisecond)
	if got := w.mon.State(w.host); got != Dead {
		t.Fatalf("equal-seq re-read revived a dead host: %v", got)
	}

	// The restarted daemon begins a new life at seq 1 — far below the
	// dead record's counter. For a legacy (heartbeat-only) record that
	// lower-seq beat is the rebirth signal.
	w.cat.Set(w.host, rcds.AttrHeartbeat, Heartbeat{Seq: 1, Time: time.Now().UnixNano(), Load: 0.25}.String())
	w.waitState(Alive, time.Second)
}

func TestTombstoneGoesToLeftNeverSuspect(t *testing.T) {
	w := newBeatWorld(t, quickOptions())
	events := w.mon.Events()
	for i := 0; i < 5; i++ {
		w.beat(0)
		time.Sleep(5 * time.Millisecond)
	}
	w.waitState(Alive, time.Second)
	w.tombstone()
	w.waitState(Left, time.Second)

	// Linger past both bounds: a departed host must never be suspected
	// or declared dead.
	time.Sleep(150 * time.Millisecond)
	if got := w.mon.State(w.host); got != Left {
		t.Fatalf("state after linger = %v", got)
	}
	for done := false; !done; {
		select {
		case ev := <-events:
			if ev.To == Suspect || ev.To == Dead {
				t.Fatalf("clean shutdown produced %v (%s)", ev.To, ev.Reason)
			}
		default:
			done = true
		}
	}

	// Any heartbeat after a tombstone is a new incarnation, even at a
	// lower sequence number.
	w.cat.Set(w.host, rcds.AttrHeartbeat, Heartbeat{Seq: 1, Time: time.Now().UnixNano(), Load: 0}.String())
	w.waitState(Alive, time.Second)
}

func TestEvidencePath(t *testing.T) {
	w := newBeatWorld(t, Options{
		CheckInterval: time.Hour, // timeouts out of the picture
		MinSuspect:    time.Hour,
		MaxSuspect:    2 * time.Hour,
	})
	// Two beats build one inter-arrival sample, then the host goes
	// quiet so failures can corroborate.
	w.beat(0)
	time.Sleep(10 * time.Millisecond)
	w.beat(0)
	w.waitState(Alive, time.Second)
	time.Sleep(30 * time.Millisecond) // age past the ~10ms mean interval

	// Unknown hosts are never indicted by evidence alone.
	w.mon.ReportFailure(naming.HostURL("stranger"))
	if got := w.mon.State(naming.HostURL("stranger")); got != Unknown {
		t.Fatalf("stranger state = %v", got)
	}

	for i := 0; i < 3; i++ { // default FailureThreshold
		w.mon.ReportFailure(w.host)
	}
	if got := w.mon.State(w.host); got != Suspect {
		t.Fatalf("after failures: %v", got)
	}
	// An acknowledgement is proof of life: suspicion is refuted and the
	// failure tally cleared.
	w.mon.ReportSuccess(w.host)
	if got := w.mon.State(w.host); got != Alive {
		t.Fatalf("after success: %v", got)
	}
	w.mon.ReportFailure(w.host) // 1 of 3: stays alive
	if got := w.mon.State(w.host); got != Alive {
		t.Fatalf("tally not reset: %v", got)
	}
}

func TestEvidenceNeedsLateHeartbeat(t *testing.T) {
	w := newBeatWorld(t, Options{CheckInterval: time.Hour, MinSuspect: time.Hour, MaxSuspect: 2 * time.Hour})
	// A steady stream of fresh beats: send failures alone (a crashed
	// task endpoint, say) must not condemn the host.
	w.beat(0)
	time.Sleep(5 * time.Millisecond)
	w.beat(0)
	w.waitState(Alive, time.Second)
	w.beat(0) // fresh beat right now: age ≈ 0 < mean
	for i := 0; i < 10; i++ {
		w.mon.ReportFailure(w.host)
	}
	if got := w.mon.State(w.host); got != Alive {
		t.Fatalf("fresh host indicted by evidence: %v", got)
	}
}

func TestMarkSuspectAndCommAdapter(t *testing.T) {
	w := newBeatWorld(t, Options{CheckInterval: time.Hour, MinSuspect: time.Hour, MaxSuspect: 2 * time.Hour})
	w.beat(0)
	w.waitState(Alive, time.Second)

	w.mon.MarkSuspect(w.host, "drill")
	if got := w.mon.State(w.host); got != Suspect {
		t.Fatalf("after MarkSuspect: %v", got)
	}

	cl := w.mon.CommLiveness()
	urn := "urn:snipe:process:h1:counter-1"
	if cl.PeerDead(urn) {
		t.Fatal("suspect peer reported dead") // suspect ≠ dead: sends still buffered
	}
	w.tombstone()
	w.waitState(Left, time.Second)
	if !cl.PeerDead(urn) {
		t.Fatal("departed peer not reported dead")
	}
	if cl.PeerDead("urn:not-a-process") {
		t.Fatal("foreign URN reported dead")
	}

	// The adapter routes evidence through the URN→host mapping.
	cl.ReportSuccess(urn) // no-op on a Left host, but must not panic
	cl.ReportFailure("urn:not-a-process")
}

func TestMonitorSeedsFromExistingRecords(t *testing.T) {
	store := rcds.NewStore("seed-test")
	cat := naming.StoreCatalog(store)
	cat.Set(naming.HostURL("pre"), rcds.AttrHeartbeat, Heartbeat{Seq: 9, Time: time.Now().UnixNano(), Load: 1}.String())
	mon := NewMonitor(cat, quickOptions())
	defer mon.Close()
	if got := mon.State(naming.HostURL("pre")); got != Alive {
		t.Fatalf("pre-existing record not seeded: %v", got)
	}
}
