package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"snipe/internal/comm"
)

// The commtail experiment drives the comm hot path at endpoint counts
// the paper's environment targets (§2: hundreds to thousands of
// cooperating tasks) and reports the *tail* of the end-to-end ack
// latency distribution — the quantity the send-queue sharding, ack
// coalescing and pooled receive path exist to protect. A fleet of
// sender endpoints converges on one sink over the in-process
// transport; every SendWait round-trip is an exact latency
// sample (no histogram buckets), so p50/p99/p999 are order statistics
// of the real distribution. A single-stream goodput comparison across
// tcp-loopback, unix and inproc pins down what the local transports
// buy over looping back through the kernel's TCP stack.

// CommTailPoint is one fan-in measurement: Endpoints concurrent
// senders each issuing MsgsPerEP acknowledged sends of MsgSize bytes
// into one sink.
type CommTailPoint struct {
	Endpoints   int     `json:"endpoints"`
	MsgsPerEP   int     `json:"msgs_per_endpoint"`
	MsgSize     int     `json:"msg_size"`
	Samples     int     `json:"samples"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	P999Us      float64 `json:"p999_us"`
	MaxUs       float64 `json:"max_us"`
	GoodputMBps float64 `json:"goodput_mbps"` // aggregate acknowledged bytes / elapsed
	ElapsedSec  float64 `json:"elapsed_sec"`
	AckBatches  uint64  `json:"sink_ack_batches"`  // batched ack frames the sink emitted
	AcksBatched uint64  `json:"sink_acks_batched"` // acks carried inside those batches
}

// CommTailStream is one single-stream goodput measurement over a
// transport, through the identical endpoint stack.
type CommTailStream struct {
	Transport string  `json:"transport"`
	MsgSize   int     `json:"msg_size"`
	Msgs      int     `json:"msgs"`
	MBps      float64 `json:"mbps"`
}

// lockedResolver is a mutable resolver safe for concurrent use while
// the endpoint fleet is still being built.
type lockedResolver struct {
	mu sync.RWMutex
	m  map[string][]comm.Route
}

func newLockedResolver() *lockedResolver {
	return &lockedResolver{m: make(map[string][]comm.Route)}
}

func (r *lockedResolver) Resolve(urn string) ([]comm.Route, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]comm.Route(nil), r.m[urn]...), nil
}

func (r *lockedResolver) set(urn string, routes ...comm.Route) {
	r.mu.Lock()
	r.m[urn] = routes
	r.mu.Unlock()
}

// quantileUs returns the q-th order statistic of the sorted latency
// samples, in microseconds.
func quantileUs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e3
}

// MeasureCommTail runs the fan-in: endpoints concurrent senders, each
// sending msgs acknowledged messages of msgSize bytes to one sink over
// the in-process transport.
func MeasureCommTail(endpoints, msgs, msgSize int) (CommTailPoint, error) {
	pt := CommTailPoint{Endpoints: endpoints, MsgsPerEP: msgs, MsgSize: msgSize}
	res := newLockedResolver()
	const sinkURN = "urn:snipe:bench:ct:sink"
	sink := comm.NewEndpoint(sinkURN, comm.WithResolver(res),
		comm.WithBufferLimit(1<<16), comm.WithRetryInterval(5*time.Second),
		comm.WithHandler(func(m *comm.Message) {}))
	defer sink.Close()
	sinkRoute, err := sink.Listen(comm.ListenSpec{Transport: "inproc"})
	if err != nil {
		return pt, err
	}
	res.set(sinkURN, sinkRoute)

	senders := make([]*comm.Endpoint, endpoints)
	for i := range senders {
		urn := fmt.Sprintf("urn:snipe:bench:ct:s%d", i)
		e := comm.NewEndpoint(urn, comm.WithResolver(res),
			comm.WithBufferLimit(1<<12), comm.WithRetryInterval(5*time.Second))
		route, err := e.Listen(comm.ListenSpec{Transport: "inproc"})
		if err != nil {
			e.Close()
			return pt, err
		}
		res.set(urn, route)
		senders[i] = e
		defer e.Close()
	}

	payload := make([]byte, msgSize)
	latencies := make([][]time.Duration, endpoints)
	errs := make(chan error, endpoints)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Warmup: every sender dials, shakes hands and completes one
	// unmeasured round-trip, so the timed phase samples the steady-state
	// hot path rather than a thousand simultaneous connection setups.
	var warm sync.WaitGroup
	for i, e := range senders {
		warm.Add(1)
		go func(i int, e *comm.Endpoint) {
			defer warm.Done()
			if err := e.SendWait(ctx, sinkURN, 1, payload); err != nil {
				errs <- fmt.Errorf("bench: commtail warmup %d: %w", i, err)
			}
		}(i, e)
	}
	warm.Wait()
	select {
	case err := <-errs:
		return pt, err
	default:
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i, e := range senders {
		wg.Add(1)
		go func(i int, e *comm.Endpoint) {
			defer wg.Done()
			lat := make([]time.Duration, 0, msgs)
			for j := 0; j < msgs; j++ {
				t0 := time.Now()
				if err := e.SendWait(ctx, sinkURN, 1, payload); err != nil {
					errs <- fmt.Errorf("bench: commtail sender %d msg %d: %w", i, j, err)
					return
				}
				lat = append(lat, time.Since(t0))
			}
			latencies[i] = lat
		}(i, e)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return pt, err
	default:
	}

	var all []time.Duration
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pt.Samples = len(all)
	pt.P50Us = quantileUs(all, 0.50)
	pt.P99Us = quantileUs(all, 0.99)
	pt.P999Us = quantileUs(all, 0.999)
	pt.MaxUs = quantileUs(all, 1)
	pt.ElapsedSec = elapsed.Seconds()
	pt.GoodputMBps = float64(len(all)*msgSize) / 1e6 / elapsed.Seconds()
	snap := sink.MetricsSnapshot()
	pt.AckBatches = snap.Counters["ack_batches"]
	pt.AcksBatched = snap.Counters["acks_batched"]
	return pt, nil
}

// MeasureCommStream measures single-stream goodput between one sender
// and one sink over the given transport ("tcp", "unix" or "inproc"),
// with a shallow unacked window so the pipe stays full without
// unbounded buffering.
func MeasureCommStream(transport string, msgSize, msgs int) (CommTailStream, error) {
	pt := CommTailStream{Transport: transport, MsgSize: msgSize, Msgs: msgs}
	addr := ""
	switch transport {
	case "tcp":
		addr = "127.0.0.1:0"
	case "unix":
		dir, err := os.MkdirTemp("", "snipe-ct")
		if err != nil {
			return pt, err
		}
		defer os.RemoveAll(dir)
		addr = filepath.Join(dir, "stream.sock")
	case "inproc":
	default:
		return pt, fmt.Errorf("bench: commtail stream: unknown transport %q", transport)
	}

	res := newLockedResolver()
	const srcURN, sinkURN = "urn:snipe:bench:cts:src", "urn:snipe:bench:cts:sink"
	done := make(chan struct{})
	received := 0
	sink := comm.NewEndpoint(sinkURN, comm.WithResolver(res),
		comm.WithBufferLimit(1<<15), comm.WithRetryInterval(5*time.Second),
		comm.WithHandler(func(m *comm.Message) {
			received++ // handler calls are serialized per endpoint
			if received == msgs {
				close(done)
			}
		}))
	defer sink.Close()
	route, err := sink.Listen(comm.ListenSpec{Transport: transport, Addr: addr})
	if err != nil {
		return pt, err
	}
	res.set(sinkURN, route)
	src := comm.NewEndpoint(srcURN, comm.WithResolver(res),
		comm.WithBufferLimit(1<<15), comm.WithRetryInterval(5*time.Second))
	defer src.Close()

	payload := make([]byte, msgSize)
	start := time.Now()
	for i := 0; i < msgs; i++ {
		for {
			err := src.Send(sinkURN, 1, payload)
			if err == nil {
				break
			}
			if err == comm.ErrBufferFull {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			return pt, err
		}
		for src.Pending() > 16 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		return pt, fmt.Errorf("bench: commtail stream over %s stalled (%d/%d delivered)",
			transport, received, msgs)
	}
	pt.MBps = float64(msgs*msgSize) / 1e6 / time.Since(start).Seconds()
	return pt, nil
}

// CommTailArtifact is the machine-readable form of a commtail run,
// written to BENCH_commtail.json.
type CommTailArtifact struct {
	Experiment  string           `json:"experiment"`
	GeneratedAt string           `json:"generated_at"`
	Quick       bool             `json:"quick"`
	Points      []CommTailPoint  `json:"points"`
	Streams     []CommTailStream `json:"streams"`
}

// WriteCommTailArtifact writes the run's artifact as indented JSON.
func WriteCommTailArtifact(path string, points []CommTailPoint, streams []CommTailStream, quick bool) error {
	art := CommTailArtifact{
		Experiment:  "commtail",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Points:      points,
		Streams:     streams,
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
