package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/mcast"
	"snipe/internal/migrate"
	"snipe/internal/mpi"
	"snipe/internal/naming"
	"snipe/internal/netsim"
	"snipe/internal/pvm"
	"snipe/internal/rcds"
	"snipe/internal/rm"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

// --- E2: MPI Connect vs PVMPI point-to-point -------------------------

// E2Point is one inter-MPP ping-pong measurement.
type E2Point struct {
	Bridge    string
	MsgSize   int
	RTTMicros float64
	MBps      float64
}

// MeasureE2 ping-pongs one message size across the named bridge
// ("mpiconnect" or "pvmpi"), reproducing the §6.1 comparison.
func MeasureE2(bridgeName string, msgSize, iters int) (E2Point, error) {
	p := E2Point{Bridge: bridgeName, MsgSize: msgSize}

	var bridgeA, bridgeB mpi.Bridge
	var cleanup func()
	switch bridgeName {
	case "mpiconnect":
		cat := naming.StoreCatalog(rcds.NewStore("bench-mpic"))
		b := mpi.NewMPIConnectBridge(cat)
		bridgeA, bridgeB = b, b
		cleanup = b.Close
	case "pvmpi":
		reg := mpi.RelayRegistry()
		master, err := pvm.NewMaster("mpp-a", "127.0.0.1:0", reg)
		if err != nil {
			return p, err
		}
		slave, err := pvm.Join("mpp-b", "127.0.0.1:0", master.Addr(), reg)
		if err != nil {
			master.Kill()
			return p, err
		}
		ba := mpi.NewPVMPIBridge(master)
		bb := mpi.NewPVMPIBridge(slave)
		bridgeA, bridgeB = ba, bb
		cleanup = func() {
			slave.Kill()
			master.Kill()
		}
	default:
		return p, fmt.Errorf("bench: unknown bridge %q", bridgeName)
	}
	defer cleanup()

	wa := mpi.NewWorld("cray", 1)
	wb := mpi.NewWorld("paragon", 1)
	if err := wa.ConnectBridge(bridgeA); err != nil {
		return p, err
	}
	if err := wb.ConnectBridge(bridgeB); err != nil {
		return p, err
	}
	if ba, ok := bridgeA.(*mpi.PVMPIBridge); ok {
		bb := bridgeB.(*mpi.PVMPIBridge)
		mpi.ShareDirectory(ba, bb)
		mpi.ShareDirectory(bb, ba)
	}

	payload := make([]byte, msgSize)
	errB := make(chan error, 1)
	go func() {
		c := wb.Rank(0)
		for i := 0; i < iters; i++ {
			_, _, data, err := c.InterRecv(1, 60*time.Second)
			if err != nil {
				errB <- err
				return
			}
			if err := c.InterSend("cray", 0, 2, data); err != nil {
				errB <- err
				return
			}
		}
		errB <- nil
	}()

	c := wa.Rank(0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := c.InterSend("paragon", 0, 1, payload); err != nil {
			return p, err
		}
		if _, _, _, err := c.InterRecv(2, 60*time.Second); err != nil {
			return p, err
		}
	}
	elapsed := time.Since(start)
	if err := <-errB; err != nil {
		return p, err
	}
	p.RTTMicros = float64(elapsed.Microseconds()) / float64(iters)
	p.MBps = float64(2*iters*msgSize) / 1e6 / elapsed.Seconds()
	return p, nil
}

// --- E3: metadata availability under server failure -------------------

// E3Result is one availability measurement.
type E3Result struct {
	System       string
	Replicas     int
	Queries      int
	Failures     int
	Availability float64 // fraction of successful queries
}

// MeasureAvailabilitySNIPE queries a replicated RC service while one
// replica is down for downFraction of the run.
func MeasureAvailabilitySNIPE(replicas, queries int, downFraction float64) (E3Result, error) {
	res := E3Result{System: "snipe-rc", Replicas: replicas}
	servers := make([]*rcds.Server, replicas)
	for i := range servers {
		servers[i] = rcds.NewServer(rcds.NewStore(fmt.Sprintf("av%d", i)),
			rcds.WithAntiEntropyInterval(50*time.Millisecond))
		if err := servers[i].Start("127.0.0.1:0"); err != nil {
			return res, err
		}
		defer servers[i].Close()
	}
	addrs := make([]string, replicas)
	for i, s := range servers {
		addrs[i] = s.Addr()
	}
	for i, s := range servers {
		var peers []string
		for j, a := range addrs {
			if i != j {
				peers = append(peers, a)
			}
		}
		s.SetPeers(peers...)
	}
	client := rcds.NewClient(addrs, nil)
	defer client.Close()
	client.SetTimeout(300 * time.Millisecond)
	if err := client.Set(context.Background(), "urn:av", "k", "v"); err != nil {
		return res, err
	}

	downAt := int(float64(queries) * (1 - downFraction) / 2)
	downUntil := downAt + int(float64(queries)*downFraction)
	for i := 0; i < queries; i++ {
		if i == downAt && replicas > 1 {
			servers[0].Close() // crash one replica mid-run
		}
		if i == downAt && replicas == 1 {
			servers[0].Close() // single server: total outage
		}
		if i == downUntil && replicas == 1 {
			// Single-server "recovery": restart on the same store.
			revived := rcds.NewServer(servers[0].Store())
			if err := revived.Start(addrs[0]); err == nil {
				defer revived.Close()
			}
		}
		res.Queries++
		if _, _, err := client.FirstValue(context.Background(), "urn:av", "k"); err != nil {
			res.Failures++
		}
	}
	res.Availability = 1 - float64(res.Failures)/float64(res.Queries)
	return res, nil
}

// MeasureAvailabilityPVM performs the equivalent run against PVM's
// master-held host table: the "query" is a spawn placement, which
// requires the master (§2.2).
func MeasureAvailabilityPVM(hosts, queries int, downFraction float64) (E3Result, error) {
	res := E3Result{System: "pvm-master", Replicas: 1}
	reg := pvm.NewRegistry()
	reg.Register("q", func(ctx *pvm.TaskCtx) error { return nil })
	master, err := pvm.NewMaster("m0", "127.0.0.1:0", reg)
	if err != nil {
		return res, err
	}
	defer master.Kill()
	slaves := make([]*pvm.Daemon, hosts-1)
	for i := range slaves {
		s, err := pvm.Join(fmt.Sprintf("s%d", i), "127.0.0.1:0", master.Addr(), reg)
		if err != nil {
			return res, err
		}
		defer s.Kill()
		slaves[i] = s
	}
	if len(slaves) == 0 {
		return res, fmt.Errorf("bench: PVM availability needs >= 2 hosts")
	}
	querier := slaves[0]

	downAt := int(float64(queries) * (1 - downFraction) / 2)
	for i := 0; i < queries; i++ {
		if i == downAt {
			master.Kill() // the master host fails; PVM cannot recover it
		}
		res.Queries++
		if _, err := querier.Spawn("q", nil); err != nil {
			res.Failures++
		}
	}
	res.Availability = 1 - float64(res.Failures)/float64(res.Queries)
	return res, nil
}

// --- E4: multicast under router failure -------------------------------

// E4Result reports multicast delivery under failed routers.
type E4Result struct {
	Routers      int
	Failed       int
	Members      int
	Sent         int
	Delivered    int // across all members
	DeliveryRate float64
}

// MeasureMulticast sends msgs to a group of members over R routers
// with f of them crashed, and reports the delivery rate (the >½
// invariant of §5.4 predicts 1.0 for any minority f).
func MeasureMulticast(routers, failed, members, msgs int) (E4Result, error) {
	res := E4Result{Routers: routers, Failed: failed, Members: members, Sent: msgs}
	store := rcds.NewStore("bench-mcast")
	cat := naming.StoreCatalog(store)
	group := naming.GroupURN("bench")

	rs := make([]*mcast.Router, routers)
	for i := range rs {
		r, err := mcast.NewRouter(fmt.Sprintf("mh%d", i), cat, nil)
		if err != nil {
			return res, err
		}
		defer r.Close()
		if err := r.Serve(group); err != nil {
			return res, err
		}
		rs[i] = r
	}

	newEP := func(urn string) (*comm.Endpoint, error) {
		ep := comm.NewEndpoint(urn,
			comm.WithResolver(naming.NewResolver(cat)),
			comm.WithRetryInterval(100*time.Millisecond))
		route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
		if err != nil {
			return nil, err
		}
		naming.Register(cat, urn, []comm.Route{route})
		return ep, nil
	}
	mems := make([]*mcast.Member, members)
	for i := range mems {
		ep, err := newEP(fmt.Sprintf("urn:bm%d", i))
		if err != nil {
			return res, err
		}
		defer ep.Close()
		m, err := mcast.Join(cat, ep, group)
		if err != nil {
			return res, err
		}
		mems[i] = m
	}
	time.Sleep(100 * time.Millisecond) // joins settle

	for i := 0; i < failed; i++ {
		rs[i].Close()
	}

	for i := 0; i < msgs; i++ {
		if err := mems[0].Send(0, []byte{byte(i)}); err != nil {
			return res, err
		}
	}
	for _, m := range mems {
		for i := 0; i < msgs; i++ {
			if _, _, _, err := m.Recv(5 * time.Second); err != nil {
				break
			}
			res.Delivered++
		}
	}
	res.DeliveryRate = float64(res.Delivered) / float64(msgs*members)
	return res, nil
}

// --- E5: migration with live traffic ----------------------------------

// E5Result reports migration behaviour under a live message stream.
type E5Result struct {
	Buffering bool
	Sent      int
	Delivered int
	Downtime  time.Duration
}

// MeasureMigration streams msgs at a task while it migrates between
// hosts; with system buffering on, delivery is exactly-once and
// complete; the ablation without buffering loses the messages sent
// while the task had no address.
func MeasureMigration(buffering bool, msgs int) (E5Result, error) {
	res := E5Result{Buffering: buffering, Sent: msgs}
	store := rcds.NewStore("bench-mig")
	cat := naming.StoreCatalog(store)
	reg := task.NewRegistry()
	reg.Register("counter", func(ctx *task.Context) error {
		count := uint32(0)
		if st := ctx.RestoredState(); st != nil {
			d := xdr.NewDecoder(st)
			v, err := d.Uint32()
			if err != nil {
				return err
			}
			count = v
		}
		for {
			select {
			case <-ctx.CheckpointRequested():
				e := xdr.NewEncoder(4)
				e.PutUint32(count)
				ctx.SaveCheckpoint(e.Bytes())
				return task.ErrMigrated
			case <-ctx.Done():
				return task.ErrKilled
			default:
			}
			m, err := ctx.RecvMatch("", 1, 10*time.Millisecond)
			if err != nil {
				continue
			}
			count++
			ctx.Send(m.Src, 2, []byte{byte(count >> 8), byte(count)})
		}
	})
	mk := func(h string) (*daemon.Daemon, error) {
		d := daemon.New(daemon.Config{HostName: h, Catalog: cat, Registry: reg})
		return d, d.Start()
	}
	d1, err := mk("e5h1")
	if err != nil {
		return res, err
	}
	defer d1.Close()
	d2, err := mk("e5h2")
	if err != nil {
		return res, err
	}
	defer d2.Close()

	resolver := naming.NewResolver(cat)
	resolver.SetTTL(20 * time.Millisecond)
	opts := []comm.EndpointOption{
		comm.WithResolver(resolver),
		comm.WithRetryInterval(50 * time.Millisecond),
	}
	if !buffering {
		opts = append(opts, comm.WithoutBuffering())
	}
	controller := comm.NewEndpoint("urn:e5:controller", opts...)
	defer controller.Close()
	route, err := controller.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		return res, err
	}
	naming.Register(cat, "urn:e5:controller", []comm.Route{route})

	urn, err := d1.Spawn(task.Spec{Program: "counter"})
	if err != nil {
		return res, err
	}
	// The migration runs concurrently with the stream, so sends overlap
	// the window in which the task has no registered address.
	migrateAt := msgs / 2
	migDone := make(chan error, 1)
	for i := 0; i < msgs; i++ {
		controller.Send(urn, 1, []byte{byte(i)}) // without buffering this fails mid-migration
		if i == migrateAt {
			go func() {
				// A 50ms transfer delay models the checkpoint crossing a
				// 1997 network; the stream continues underneath it.
				dt, err := migrate.Local(cat, d1, d2, urn,
					migrate.Options{TransferDelay: 50 * time.Millisecond})
				res.Downtime = dt
				migDone <- err
			}()
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-migDone; err != nil {
		return res, err
	}
	// Collect acknowledgements until quiet.
	for {
		rctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := controller.RecvMatch(rctx, "", 2)
		cancel()
		if err != nil {
			break
		}
		res.Delivered++
	}
	return res, nil
}

// --- E6: scalability ----------------------------------------------------

// E6JoinPoint is the cost of adding the n-th host.
type E6JoinPoint struct {
	System string
	N      int
	Micros float64
}

// MeasureHostJoinSNIPE reports the cost of bringing host n into a
// SNIPE universe (daemon start + metadata registration) — flat in n,
// since there is no virtual machine membership to update.
func MeasureHostJoinSNIPE(maxHosts int, sample []int) ([]E6JoinPoint, error) {
	store := rcds.NewStore("bench-join")
	cat := naming.StoreCatalog(store)
	reg := task.NewRegistry()
	var out []E6JoinPoint
	want := map[int]bool{}
	for _, n := range sample {
		want[n] = true
	}
	var daemons []*daemon.Daemon
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()
	for n := 1; n <= maxHosts; n++ {
		d := daemon.New(daemon.Config{HostName: fmt.Sprintf("jh%d", n), Catalog: cat, Registry: reg})
		start := time.Now()
		if err := d.Start(); err != nil {
			return out, err
		}
		elapsed := time.Since(start)
		daemons = append(daemons, d)
		if want[n] {
			out = append(out, E6JoinPoint{System: "snipe", N: n, Micros: float64(elapsed.Microseconds())})
		}
	}
	return out, nil
}

// MeasureHostJoinPVM reports the cost of pvm_addhosts for the n-th
// host — linear in n, since the master re-broadcasts the whole host
// table to every member.
func MeasureHostJoinPVM(maxHosts int, sample []int) ([]E6JoinPoint, error) {
	reg := pvm.NewRegistry()
	master, err := pvm.NewMaster("jm", "127.0.0.1:0", reg)
	if err != nil {
		return nil, err
	}
	defer master.Kill()
	var out []E6JoinPoint
	want := map[int]bool{}
	for _, n := range sample {
		want[n] = true
	}
	var slaves []*pvm.Daemon
	defer func() {
		for _, s := range slaves {
			s.Kill()
		}
	}()
	for n := 2; n <= maxHosts; n++ {
		start := time.Now()
		s, err := pvm.Join(fmt.Sprintf("js%d", n), "127.0.0.1:0", master.Addr(), reg)
		if err != nil {
			return out, err
		}
		elapsed := time.Since(start)
		slaves = append(slaves, s)
		if want[n] {
			out = append(out, E6JoinPoint{System: "pvm", N: n, Micros: float64(elapsed.Microseconds())})
		}
	}
	return out, nil
}

// E6SpawnResult reports spawn throughput with redundant RMs and the
// effect of killing one mid-run.
type E6SpawnResult struct {
	RMs           int
	Spawns        int
	Failures      int
	SpawnsPerSec  float64
	RMKilledAtMid bool
}

// MeasureSpawnRedundantRMs runs spawns through the RM service with the
// given redundancy, killing RM 0 halfway when killOne is set.
func MeasureSpawnRedundantRMs(rms, hosts, spawns int, killOne bool) (E6SpawnResult, error) {
	res := E6SpawnResult{RMs: rms, Spawns: spawns, RMKilledAtMid: killOne}
	store := rcds.NewStore("bench-rm")
	cat := naming.StoreCatalog(store)
	reg := task.NewRegistry()
	reg.Register("quick", func(ctx *task.Context) error { return nil })
	for i := 0; i < hosts; i++ {
		d := daemon.New(daemon.Config{HostName: fmt.Sprintf("sh%d", i), Catalog: cat, Registry: reg, CPUs: 4})
		if err := d.Start(); err != nil {
			return res, err
		}
		defer d.Close()
	}
	managers := make([]*rm.Manager, rms)
	for i := range managers {
		m, err := rm.NewManager(fmt.Sprintf("brm%d", i), cat, nil)
		if err != nil {
			return res, err
		}
		defer m.Close()
		managers[i] = m
	}
	ep := comm.NewEndpoint("urn:e6:client", comm.WithResolver(naming.NewResolver(cat)))
	defer ep.Close()
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		return res, err
	}
	naming.Register(cat, "urn:e6:client", []comm.Route{route})
	client := rm.NewClient(cat, ep)
	client.SetTimeout(2 * time.Second)

	start := time.Now()
	for i := 0; i < spawns; i++ {
		if killOne && i == spawns/2 {
			managers[0].Close()
		}
		if _, err := client.Allocate(task.Spec{Program: "quick"}); err != nil {
			res.Failures++
		}
	}
	res.SpawnsPerSec = float64(spawns) / time.Since(start).Seconds()
	return res, nil
}

// --- E7: route failover --------------------------------------------------

// E7Result reports delivery completeness across a link failure.
type E7Result struct {
	Buffering bool
	Sent      int
	Delivered int
	MaxGap    time.Duration // longest inter-delivery gap (switchover)
}

// MeasureFailover streams messages to a two-interface receiver and
// kills the preferred interface mid-stream.
func MeasureFailover(buffering bool, msgs int) (E7Result, error) {
	res := E7Result{Buffering: buffering, Sent: msgs}
	resolver := &mutableResolver{m: make(map[string][]comm.Route)}
	opts := []comm.EndpointOption{
		comm.WithResolver(resolver),
		comm.WithRetryInterval(50 * time.Millisecond),
	}
	if !buffering {
		opts = append(opts, comm.WithoutBuffering())
	}
	sender := comm.NewEndpoint("urn:e7:send", opts...)
	defer sender.Close()
	receiver := comm.NewEndpoint("urn:e7:recv", comm.WithResolver(resolver))
	defer receiver.Close()
	r1, err := receiver.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0", RateBps: 2e9}) // preferred
	if err != nil {
		return res, err
	}
	r2, err := receiver.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0", RateBps: 1e9})
	if err != nil {
		return res, err
	}
	resolver.set("urn:e7:recv", r1, r2)

	killAt := msgs / 2
	done := make(chan struct{})
	var maxGap time.Duration
	go func() {
		defer close(done)
		last := time.Now()
		for i := 0; i < msgs; i++ {
			rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_, err := receiver.Recv(rctx)
			cancel()
			if err != nil {
				return
			}
			if gap := time.Since(last); gap > maxGap {
				maxGap = gap
			}
			last = time.Now()
			res.Delivered++
		}
	}()
	for i := 0; i < msgs; i++ {
		sender.Send("urn:e7:recv", 1, []byte{byte(i)})
		if i == killAt {
			receiver.CloseListener(r1) // kill the preferred interface mid-stream
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
	}
	res.MaxGap = maxGap
	return res, nil
}

// mutableResolver is a tiny thread-safe resolver for harness use.
type mutableResolver struct {
	mu sync.Mutex
	m  map[string][]comm.Route
}

func (r *mutableResolver) Resolve(urn string) ([]comm.Route, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]comm.Route(nil), r.m[urn]...), nil
}

func (r *mutableResolver) set(urn string, routes ...comm.Route) {
	r.mu.Lock()
	r.m[urn] = routes
	r.mu.Unlock()
}

// --- RUDP loss sweep (Fig. 1 companion) ----------------------------------

// LossPoint is throughput of the selective-resend protocol at a loss
// rate.
type LossPoint struct {
	Loss    float64
	MBps    float64
	Resends int
}

// MeasureRUDPLoss measures RUDP goodput on a lossy medium.
func MeasureRUDPLoss(loss float64, msgSize, msgs int, seed uint64) (LossPoint, error) {
	res := LossPoint{Loss: loss}
	medium := netsim.Ethernet100.WithLoss(loss)
	a, b, cleanup, err := endpointPair(medium, "snipe-rudp", seed)
	if err != nil {
		return res, err
	}
	defer cleanup()
	payload := make([]byte, msgSize)
	received := make(chan struct{})
	go func() {
		for i := 0; i < msgs; i++ {
			rctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			_, err := b.Recv(rctx)
			cancel()
			if err != nil {
				return
			}
		}
		close(received)
	}()
	start := time.Now()
	for i := 0; i < msgs; i++ {
		for a.Pending() > 128 {
			time.Sleep(200 * time.Microsecond)
		}
		if err := a.Send("urn:snipe:bench:b", 1, payload); err != nil {
			return res, err
		}
	}
	select {
	case <-received:
	case <-time.After(180 * time.Second):
		return res, fmt.Errorf("bench: rudp loss receiver stalled at loss %.2f", loss)
	}
	res.MBps = float64(msgs*msgSize) / 1e6 / time.Since(start).Seconds()
	return res, nil
}
