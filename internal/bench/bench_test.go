package bench

import (
	"testing"
	"time"

	"snipe/internal/netsim"
)

// These tests validate the harness itself with small parameters; the
// full paper-scale runs live in the repository root's bench_test.go
// and cmd/snipe-bench.

func TestFig1PointTCP(t *testing.T) {
	pt, err := MeasureFig1(netsim.Ethernet100, "snipe-tcp", 65536, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MBps <= 0 {
		t.Fatalf("no bandwidth measured: %+v", pt)
	}
	// 100 Mbit = 12.5 MB/s ceiling; protocol overhead keeps us below,
	// shaping keeps us well above a tenth of it.
	if pt.MBps > 13 || pt.MBps < 1 {
		t.Fatalf("implausible 100Mb bandwidth: %.2f MB/s", pt.MBps)
	}
}

func TestFig1PointRUDP(t *testing.T) {
	pt, err := MeasureFig1(netsim.Ethernet100, "snipe-rudp", 16384, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MBps <= 0 || pt.MBps > 13 {
		t.Fatalf("implausible RUDP bandwidth: %.2f MB/s", pt.MBps)
	}
}

func TestFig1Raw(t *testing.T) {
	pt, err := MeasureFig1(netsim.Ethernet100, "raw", 65536, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MBps < 8 || pt.MBps > 13 {
		t.Fatalf("raw ceiling off: %.2f MB/s", pt.MBps)
	}
}

func TestFig1MediaOrdering(t *testing.T) {
	// ATM155 must beat Ethernet100 must beat Ethernet10 at large sizes.
	var rates []float64
	for i, m := range []netsim.Profile{netsim.Ethernet10, netsim.Ethernet100, netsim.ATM155} {
		pt, err := MeasureFig1(m, "snipe-tcp", 262144, uint64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, pt.MBps)
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Fatalf("media ordering violated: %v", rates)
	}
}

func TestE2BothBridges(t *testing.T) {
	mc, err := MeasureE2("mpiconnect", 1024, 50)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := MeasureE2("pvmpi", 1024, 50)
	if err != nil {
		t.Fatal(err)
	}
	if mc.RTTMicros <= 0 || pv.RTTMicros <= 0 {
		t.Fatalf("no latency measured: %+v %+v", mc, pv)
	}
	// The paper's claim: MPI Connect (direct connections) beats PVMPI
	// (daemon-routed) point-to-point.
	if mc.RTTMicros >= pv.RTTMicros {
		t.Logf("warning: MPI Connect (%.1fµs) not faster than PVMPI (%.1fµs) in this run",
			mc.RTTMicros, pv.RTTMicros)
	}
}

func TestE3Availability(t *testing.T) {
	snipe, err := MeasureAvailabilitySNIPE(3, 200, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if snipe.Availability < 0.95 {
		t.Fatalf("replicated RC availability %.3f", snipe.Availability)
	}
	pvmRes, err := MeasureAvailabilityPVM(3, 60, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if pvmRes.Availability > 0.9 {
		t.Fatalf("PVM survived master death: %.3f", pvmRes.Availability)
	}
	if snipe.Availability <= pvmRes.Availability {
		t.Fatalf("replication did not help: snipe=%.3f pvm=%.3f",
			snipe.Availability, pvmRes.Availability)
	}
}

func TestE4Multicast(t *testing.T) {
	// Minority failure: full delivery.
	r, err := MeasureMulticast(3, 1, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveryRate < 1.0 {
		t.Fatalf("delivery rate %.2f with minority failure", r.DeliveryRate)
	}
	// Ablation: single router, router dead → nothing delivered.
	r2, err := MeasureMulticast(1, 1, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r2.DeliveryRate > 0 {
		t.Fatalf("single dead router still delivered %.2f", r2.DeliveryRate)
	}
}

func TestE5Migration(t *testing.T) {
	r, err := MeasureMigration(true, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != r.Sent {
		t.Fatalf("zero-loss violated: %d/%d", r.Delivered, r.Sent)
	}
	if r.Downtime <= 0 {
		t.Fatal("no downtime measured")
	}
}

func TestE5MigrationAblation(t *testing.T) {
	r, err := MeasureMigration(false, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered >= r.Sent {
		t.Fatalf("ablation lost nothing: %d/%d", r.Delivered, r.Sent)
	}
}

func TestE6HostJoin(t *testing.T) {
	snipePts, err := MeasureHostJoinSNIPE(8, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	pvmPts, err := MeasureHostJoinPVM(8, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(snipePts) != 2 || len(pvmPts) != 2 {
		t.Fatalf("points: %v %v", snipePts, pvmPts)
	}
}

func TestE6SpawnRedundancy(t *testing.T) {
	// With two RMs, killing one mid-run must not fail spawns.
	r, err := MeasureSpawnRedundantRMs(2, 2, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 0 {
		t.Fatalf("redundant RMs failed %d spawns", r.Failures)
	}
	// With a single RM, killing it fails the rest.
	r1, err := MeasureSpawnRedundantRMs(1, 2, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Failures == 0 {
		t.Fatal("single-RM ablation lost nothing")
	}
}

func TestE7Failover(t *testing.T) {
	r, err := MeasureFailover(true, 40)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered != r.Sent {
		t.Fatalf("failover lost messages: %d/%d", r.Delivered, r.Sent)
	}
}

func TestRUDPLossSweepPoint(t *testing.T) {
	p0, err := MeasureRUDPLoss(0, 4096, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	p10, err := MeasureRUDPLoss(0.10, 4096, 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p0.MBps <= 0 || p10.MBps <= 0 {
		t.Fatalf("no goodput: %v %v", p0, p10)
	}
	if p10.MBps > p0.MBps {
		t.Fatalf("loss increased goodput? %.2f vs %.2f", p10.MBps, p0.MBps)
	}
}

func TestLivenessScaleSmoke(t *testing.T) {
	pt, err := MeasureLivenessScale(48, 12, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pt.FalseSuspects != 0 {
		t.Fatalf("no-fault window produced %d false suspects", pt.FalseSuspects)
	}
	if pt.CrashDeadMs < 0 || pt.PartitionDeadMs < 0 {
		t.Fatalf("victim never declared dead: %+v", pt)
	}
	if pt.WriteReduction < 2 {
		t.Fatalf("write reduction %.1fx with 4 groups of 12, want well above 1", pt.WriteReduction)
	}
}
