// Package bench implements the experiment harness that regenerates the
// paper's evaluation (DESIGN.md experiment index E1–E8). Each
// experiment is a pure function returning structured results; the
// root-level testing.B benchmarks and the snipe-bench CLI both call
// into it.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"snipe/internal/comm"
	"snipe/internal/netsim"
	"snipe/internal/stats"
)

// Fig1Point is one measurement of Fig. 1: bandwidth offered to SNIPE
// client applications for a message size on a medium, plus the sender
// endpoint's end-to-end ack-latency histogram for SNIPE transports.
type Fig1Point struct {
	Medium    string  `json:"medium"`
	Transport string  `json:"transport"` // "snipe-tcp", "snipe-rudp", "raw"
	MsgSize   int     `json:"msg_size"`
	MBps      float64 `json:"mbps"` // decimal megabytes per second, as the paper plots

	AckLatencyUs *stats.HistogramSnapshot `json:"ack_latency_us,omitempty"`
}

// Fig1Sizes is the message-size sweep of the figure.
var Fig1Sizes = []int{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// Fig1Media are the paper's media plus the lossy WAN extension.
var Fig1Media = []netsim.Profile{netsim.Ethernet10, netsim.Ethernet100, netsim.ATM155}

// endpointPair builds two endpoints joined by a single shaped link of
// the given medium, speaking the chosen SNIPE transport.
func endpointPair(medium netsim.Profile, transport string, seed uint64) (a, b *comm.Endpoint, cleanup func(), err error) {
	const urnA, urnB = "urn:snipe:bench:a", "urn:snipe:bench:b"
	routeA := comm.Route{Transport: "attached", Addr: "a"}
	routeB := comm.Route{Transport: "attached", Addr: "b"}
	resolver := comm.StaticResolver{urnA: {routeA}, urnB: {routeB}}

	// Endpoint-level retry is route failover, not loss recovery (the
	// transports are reliable); a long interval avoids duplicating the
	// ARQ's work on lossy media.
	a = comm.NewEndpoint(urnA, comm.WithResolver(resolver),
		comm.WithBufferLimit(1<<16), comm.WithRetryInterval(5*time.Second))
	b = comm.NewEndpoint(urnB, comm.WithResolver(resolver),
		comm.WithBufferLimit(1<<16), comm.WithRetryInterval(5*time.Second))

	var fca, fcb comm.FrameConn
	var closeLink func()
	switch transport {
	case "snipe-tcp":
		ca, cb, link := netsim.StreamPipe(medium, seed)
		fca, fcb = comm.NewStreamFrameConn(ca), comm.NewStreamFrameConn(cb)
		closeLink = link.Close
	case "snipe-rudp":
		pa, pb, link := netsim.PacketPipe(medium, seed)
		fca, fcb = comm.NewRUDPConn(pa), comm.NewRUDPConn(pb)
		closeLink = link.Close
	default:
		a.Close()
		b.Close()
		return nil, nil, nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
	// Each endpoint reaches the peer over the attached conn.
	a.AttachConn(routeB.String(), fca)
	b.AttachConn(routeA.String(), fcb)
	cleanup = func() {
		a.Close()
		b.Close()
		closeLink()
	}
	return a, b, cleanup, nil
}

// targetBytes sizes a run: enough traffic to occupy the medium for
// roughly 300 ms, bounded to keep small-message runs finite.
func targetBytes(medium netsim.Profile, msgSize int) int {
	t := int(medium.BytesPerSec() * 0.3)
	if t < 16*msgSize {
		t = 16 * msgSize
	}
	if t > 24<<20 {
		t = 24 << 20
	}
	return t
}

// MeasureFig1 measures one point of Fig. 1 through the full SNIPE
// client stack (endpoint, sequencing, fragmentation, acknowledgement,
// chosen transport, shaped medium).
func MeasureFig1(medium netsim.Profile, transport string, msgSize int, seed uint64) (Fig1Point, error) {
	p := Fig1Point{Medium: medium.Name, Transport: transport, MsgSize: msgSize}
	if transport == "raw" {
		mbps, err := measureRaw(medium, msgSize, seed)
		p.MBps = mbps
		return p, err
	}
	a, b, cleanup, err := endpointPair(medium, transport, seed)
	if err != nil {
		return p, err
	}
	defer cleanup()

	total := targetBytes(medium, msgSize)
	n := total / msgSize
	if n < 4 {
		n = 4
	}
	payload := make([]byte, msgSize)
	received := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			rctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			_, err := b.Recv(rctx)
			cancel()
			if err != nil {
				return
			}
		}
		close(received)
	}()

	start := time.Now()
	for i := 0; i < n; i++ {
		for {
			err := a.Send("urn:snipe:bench:b", 1, payload)
			if err == nil {
				break
			}
			if err == comm.ErrBufferFull {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			return p, err
		}
		// Flow control: do not let the system buffer grow without bound.
		for a.Pending() > 256 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	select {
	case <-received:
	case <-time.After(120 * time.Second):
		return p, fmt.Errorf("bench: fig1 receiver stalled (%s %s %d)", medium.Name, transport, msgSize)
	}
	elapsed := time.Since(start)
	p.MBps = float64(n*msgSize) / 1e6 / elapsed.Seconds()
	if h, ok := a.MetricsSnapshot().Histograms["ack_latency_us"]; ok && h.Count > 0 {
		p.AckLatencyUs = &h
	}
	return p, nil
}

// measureRaw measures the medium ceiling: bytes written straight into
// the shaped pipe with no protocol above it.
func measureRaw(medium netsim.Profile, msgSize int, seed uint64) (float64, error) {
	ca, cb, link := netsim.StreamPipe(medium, seed)
	defer link.Close()
	total := targetBytes(medium, msgSize)
	n := total / msgSize
	if n < 4 {
		n = 4
	}
	buf := make([]byte, msgSize)
	done := make(chan error, 1)
	go func() {
		sink := make([]byte, 64<<10)
		remaining := n * msgSize
		for remaining > 0 {
			m, err := cb.Read(sink)
			if err != nil {
				done <- err
				return
			}
			remaining -= m
		}
		done <- nil
	}()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := ca.Write(buf); err != nil {
			return 0, err
		}
	}
	if err := <-done; err != nil && err != io.EOF {
		return 0, err
	}
	elapsed := time.Since(start)
	return float64(n*msgSize) / 1e6 / elapsed.Seconds(), nil
}

// Fig1Artifact is the machine-readable form of a Fig. 1 run, written
// to BENCH_fig1.json so successive revisions leave a comparable perf
// trajectory behind.
type Fig1Artifact struct {
	Experiment  string         `json:"experiment"`
	GeneratedAt string         `json:"generated_at"`
	Quick       bool           `json:"quick"`
	Points      []Fig1Point    `json:"points"`
	Netsim      stats.Snapshot `json:"netsim"` // media-level totals for the whole run
}

// WriteFig1Artifact writes the run's artifact as indented JSON.
func WriteFig1Artifact(path string, points []Fig1Point, quick bool) error {
	art := Fig1Artifact{
		Experiment:  "fig1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Points:      points,
		Netsim:      netsim.Metrics().Snapshot(),
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Fig1Sweep runs the full figure: every medium × transport × size.
// sizes and media may be nil for the defaults.
func Fig1Sweep(media []netsim.Profile, transports []string, sizes []int) ([]Fig1Point, error) {
	if media == nil {
		media = Fig1Media
	}
	if transports == nil {
		transports = []string{"raw", "snipe-tcp", "snipe-rudp"}
	}
	if sizes == nil {
		sizes = Fig1Sizes
	}
	var out []Fig1Point
	seed := uint64(1)
	for _, m := range media {
		for _, tr := range transports {
			for _, s := range sizes {
				seed++
				pt, err := MeasureFig1(m, tr, s, seed)
				if err != nil {
					return out, err
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}
