package bench

import (
	"context"
	"fmt"
	"time"

	"snipe/internal/comm"
)

// Path ablations: the cost of each optional layer in the SNIPE
// communications stack, measured as ping-pong RTT over loopback TCP.

// PathPoint is one path-ablation measurement.
type PathPoint struct {
	Path      string
	MsgSize   int
	RTTMicros float64
}

// pathEndpoints holds one assembled variant of the stack.
type pathEndpoints struct {
	a, b    *comm.Endpoint
	cleanup []func()
}

func (p *pathEndpoints) close() {
	for i := len(p.cleanup) - 1; i >= 0; i-- {
		p.cleanup[i]()
	}
}

func buildPath(path string) (*pathEndpoints, error) {
	pe := &pathEndpoints{}
	shared := &mutableResolver{m: make(map[string][]comm.Route)}

	transport := "tcp"
	var opts []comm.EndpointOption
	if path == "encrypted" {
		transports := comm.NewTransports()
		transports.Register(comm.EncryptedTransport{Inner: comm.TCPTransport{}, Secret: []byte("bench")})
		opts = append(opts, comm.WithTransports(transports))
		transport = "tcp+tls"
	}

	mk := func(urn string, res comm.Resolver, extra ...comm.EndpointOption) (*comm.Endpoint, comm.Route, error) {
		ep := comm.NewEndpoint(urn, append(append([]comm.EndpointOption{
			comm.WithResolver(res),
			comm.WithRetryInterval(5 * time.Second),
		}, opts...), extra...)...)
		route, err := ep.Listen(comm.ListenSpec{Transport: transport, Addr: "127.0.0.1:0"})
		if err != nil {
			ep.Close()
			pe.close()
			return nil, comm.Route{}, err
		}
		pe.cleanup = append(pe.cleanup, ep.Close)
		return ep, route, nil
	}

	var ra, rb comm.Route
	var err error
	switch path {
	case "direct", "encrypted":
		if pe.a, ra, err = mk("urn:pa", shared); err != nil {
			return nil, err
		}
		if pe.b, rb, err = mk("urn:pb", shared); err != nil {
			return nil, err
		}
		shared.set("urn:pa", ra)
		shared.set("urn:pb", rb)
	case "gateway":
		// Senders only see the gateway; the gateway's private resolver
		// holds the direct addresses.
		gwView := &mutableResolver{m: make(map[string][]comm.Route)}
		_, rg, err := mk("urn:pgw", gwView, comm.WithGatewayRelay())
		if err != nil {
			return nil, err
		}
		if pe.a, ra, err = mk("urn:pa", shared); err != nil {
			return nil, err
		}
		if pe.b, rb, err = mk("urn:pb", shared); err != nil {
			return nil, err
		}
		shared.set("urn:pgw", rg)
		shared.set("urn:pa", comm.GatewayRoute("urn:pgw"))
		shared.set("urn:pb", comm.GatewayRoute("urn:pgw"))
		gwView.set("urn:pa", ra)
		gwView.set("urn:pb", rb)
	default:
		return nil, fmt.Errorf("bench: unknown path %q", path)
	}
	return pe, nil
}

// MeasurePath measures a ping-pong RTT over one of the stack variants:
//
//	"direct"    — plain TCP transport
//	"encrypted" — AES-GCM-sealed TCP transport (§3.4's optional encryption)
//	"gateway"   — both directions relayed through a gateway (§5.1)
func MeasurePath(path string, msgSize, iters int) (PathPoint, error) {
	pt := PathPoint{Path: path, MsgSize: msgSize}
	pe, err := buildPath(path)
	if err != nil {
		return pt, err
	}
	defer pe.close()

	// Warmup establishes connections and JITs the path before timing.
	const warmup = 20
	payload := make([]byte, msgSize)
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < warmup+iters; i++ {
			rctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			m, err := pe.b.RecvMatch(rctx, "", 1)
			cancel()
			if err != nil {
				errCh <- err
				return
			}
			if err := pe.b.Send(m.Src, 2, m.Payload); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	pingPong := func() error {
		if err := pe.a.Send("urn:pb", 1, payload); err != nil {
			return err
		}
		rctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_, err := pe.a.RecvMatch(rctx, "", 2)
		return err
	}
	for i := 0; i < warmup; i++ {
		if err := pingPong(); err != nil {
			return pt, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := pingPong(); err != nil {
			return pt, err
		}
	}
	elapsed := time.Since(start)
	if err := <-errCh; err != nil {
		return pt, err
	}
	pt.RTTMicros = float64(elapsed.Microseconds()) / float64(iters)
	return pt, nil
}
