package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"snipe/internal/comm"
	"snipe/internal/netsim"
	"snipe/internal/stats"
)

// The multipath experiment quantifies the paper's multi-path claim
// (§5.3/§7: a dual-homed host should be able to use *all* of its
// interfaces, not just the preferred one): a pair of endpoints joined
// by two independent shaped links stripes large messages across both
// and the aggregate bandwidth is compared against the same stack
// restricted to either medium alone.

// MultipathPoint is one row of the experiment: for a message size and a
// media pair, the striped aggregate bandwidth versus each single-medium
// baseline measured through the identical endpoint stack.
type MultipathPoint struct {
	Media      []string           `json:"media"`
	MsgSize    int                `json:"msg_size"`
	MBps       float64            `json:"striped_mbps"`
	SingleMBps map[string]float64 `json:"single_mbps"`      // per-medium single-route baselines
	BestSingle float64            `json:"best_single_mbps"` // max of SingleMBps
	Speedup    float64            `json:"speedup"`          // striped / best single
}

// MultipathMedia is the canonical media pair of the experiment: the
// paper testbed's switched Ethernet and ATM LANs.
var MultipathMedia = [2]netsim.Profile{netsim.Ethernet100, netsim.ATM155}

// MultipathSizes is the default message-size sweep. Everything is at or
// above the default stripe threshold; the interesting claim is the
// ≥ 1 MB region where fragmentation amortizes.
var MultipathSizes = []int{262144, 1048576, 4194304}

// multipathPair builds two endpoints that are dual-homed toward each
// other: two independent shaped stream links, one per medium, each
// advertised as its own route with the medium's rate/latency so the
// adaptive scorer starts from honest priors.
func multipathPair(media [2]netsim.Profile, seed uint64) (a, b *comm.Endpoint, cleanup func(), err error) {
	const urnA, urnB = "urn:snipe:bench:mp:a", "urn:snipe:bench:mp:b"
	var routes [2][2]comm.Route
	for i, m := range media {
		routes[i] = [2]comm.Route{
			{Transport: "attached", Addr: fmt.Sprintf("a-%d", i), NetName: m.Name, RateBps: m.BitsPerSec, LatencyUs: float64(m.Latency.Microseconds())},
			{Transport: "attached", Addr: fmt.Sprintf("b-%d", i), NetName: m.Name, RateBps: m.BitsPerSec, LatencyUs: float64(m.Latency.Microseconds())},
		}
	}
	resolver := comm.StaticResolver{
		urnA: {routes[0][0], routes[1][0]},
		urnB: {routes[0][1], routes[1][1]},
	}
	a = comm.NewEndpoint(urnA, comm.WithResolver(resolver),
		comm.WithBufferLimit(1<<16), comm.WithRetryInterval(5*time.Second))
	b = comm.NewEndpoint(urnB, comm.WithResolver(resolver),
		comm.WithBufferLimit(1<<16), comm.WithRetryInterval(5*time.Second))

	closers := make([]func(), 0, 2)
	for i := range media {
		ca, cb, link := netsim.StreamPipe(media[i], seed+uint64(i))
		closers = append(closers, link.Close)
		a.AttachConn(routes[i][1].String(), comm.NewStreamFrameConn(ca))
		b.AttachConn(routes[i][0].String(), comm.NewStreamFrameConn(cb))
	}
	cleanup = func() {
		a.Close()
		b.Close()
		for _, c := range closers {
			c()
		}
	}
	return a, b, cleanup, nil
}

// measureStriped pushes n msgSize-byte messages through a dual-homed
// pair and returns the delivered bandwidth plus the sender's route
// scores after the run.
func measureStriped(media [2]netsim.Profile, msgSize, n int, seed uint64) (float64, []comm.RouteScore, error) {
	a, b, cleanup, err := multipathPair(media, seed)
	if err != nil {
		return 0, nil, err
	}
	defer cleanup()

	payload := make([]byte, msgSize)
	received := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			rctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			_, err := b.Recv(rctx)
			cancel()
			if err != nil {
				received <- err
				return
			}
		}
		received <- nil
	}()

	start := time.Now()
	for i := 0; i < n; i++ {
		for {
			err := a.Send("urn:snipe:bench:mp:b", 1, payload)
			if err == nil {
				break
			}
			if err == comm.ErrBufferFull {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			return 0, nil, err
		}
		// Striped payloads are large; keep the unacked window shallow so
		// memory stays bounded without starving the pipes.
		for a.Pending() > 8 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	select {
	case err := <-received:
		if err != nil {
			return 0, nil, fmt.Errorf("bench: multipath receiver: %w", err)
		}
	case <-time.After(120 * time.Second):
		return 0, nil, fmt.Errorf("bench: multipath receiver stalled (%s+%s %d)", media[0].Name, media[1].Name, msgSize)
	}
	elapsed := time.Since(start)
	if snap := a.MetricsSnapshot(); snap.Counters["striped"] == 0 {
		return 0, nil, fmt.Errorf("bench: multipath run at %d bytes never striped", msgSize)
	}
	return float64(n*msgSize) / 1e6 / elapsed.Seconds(), a.RouteScores(), nil
}

// MeasureMultipath measures one point: striped aggregate over the media
// pair versus each medium alone, all through the identical SNIPE stack
// (single-medium runs use the same endpoint code; with one route there
// is nothing to stripe across, so they exercise the failover path).
func MeasureMultipath(media [2]netsim.Profile, msgSize int, seed uint64) (MultipathPoint, []comm.RouteScore, error) {
	pt := MultipathPoint{
		Media:      []string{media[0].Name, media[1].Name},
		MsgSize:    msgSize,
		SingleMBps: make(map[string]float64, 2),
	}
	// Size the run off the aggregate capacity so the sweep's duration
	// stays flat across media pairs.
	total := int((media[0].BytesPerSec() + media[1].BytesPerSec()) * 0.3)
	if total > 24<<20 {
		total = 24 << 20
	}
	n := total / msgSize
	if n < 6 {
		n = 6
	}

	mbps, scores, err := measureStriped(media, msgSize, n, seed)
	if err != nil {
		return pt, nil, err
	}
	pt.MBps = mbps

	for i, m := range media {
		single, err := MeasureFig1(m, "snipe-tcp", msgSize, seed+10+uint64(i))
		if err != nil {
			return pt, nil, err
		}
		pt.SingleMBps[m.Name] = single.MBps
		if single.MBps > pt.BestSingle {
			pt.BestSingle = single.MBps
		}
	}
	if pt.BestSingle > 0 {
		pt.Speedup = pt.MBps / pt.BestSingle
	}
	return pt, scores, nil
}

// MultipathSweep runs the experiment for every size over the canonical
// media pair. It returns the points and the route scores observed by
// the sender on the final (largest) striped run.
func MultipathSweep(sizes []int) ([]MultipathPoint, []comm.RouteScore, error) {
	if sizes == nil {
		sizes = MultipathSizes
	}
	var out []MultipathPoint
	var scores []comm.RouteScore
	seed := uint64(7000)
	for _, s := range sizes {
		seed += 20
		pt, sc, err := MeasureMultipath(MultipathMedia, s, seed)
		if err != nil {
			return out, scores, err
		}
		out = append(out, pt)
		scores = sc
	}
	return out, scores, nil
}

// MultipathArtifact is the machine-readable form of a multipath run,
// written to BENCH_multipath.json.
type MultipathArtifact struct {
	Experiment  string            `json:"experiment"`
	GeneratedAt string            `json:"generated_at"`
	Quick       bool              `json:"quick"`
	Points      []MultipathPoint  `json:"points"`
	RouteScores []comm.RouteScore `json:"route_scores"` // sender's scorer after the last striped run
	Netsim      stats.Snapshot    `json:"netsim"`
}

// WriteMultipathArtifact writes the run's artifact as indented JSON.
func WriteMultipathArtifact(path string, points []MultipathPoint, scores []comm.RouteScore, quick bool) error {
	art := MultipathArtifact{
		Experiment:  "multipath",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Points:      points,
		RouteScores: scores,
		Netsim:      netsim.Metrics().Snapshot(),
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
