package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"snipe/internal/daemon"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/netsim"
	"snipe/internal/rcds"
	"snipe/internal/rm"
	"snipe/internal/stats"
	"snipe/internal/task"
)

// --- Detection latency: the liveness experiment --------------------------
//
// Three daemons heartbeat into one catalog; a liveness.Monitor and a
// resource manager watch. Reservations weight the placement so the
// victim is the preferred host, then the victim is killed (heartbeats
// just stop), partitioned from the catalog (netsim.Fabric gate), or
// cleanly shut down (tombstone). Measured: injection → suspect,
// injection → dead, and injection → first placement that avoids the
// victim — the time the system keeps placing work on a dead host.

// FailoverPoint is one failure-detection measurement.
type FailoverPoint struct {
	Mode        string  `json:"mode"` // crash | partition | clean
	HeartbeatMs float64 `json:"heartbeat_ms"`
	SuspectMs   float64 `json:"suspect_ms"` // injection → suspect (-1: never)
	DeadMs      float64 `json:"dead_ms"`    // injection → dead/left (-1: never)
	// PlacementMs is injection → first SelectHost answer not on the
	// victim: the window in which new work was still sent to a dead
	// host.
	PlacementMs   float64 `json:"first_correct_placement_ms"`
	FalseSuspects int     `json:"false_suspects"` // suspect events that indict a healthy host
}

// MeasureDetection runs one failure injection and measures detection
// and placement-correction latency. mode is "crash" (daemon killed, no
// catalog writes), "partition" (daemon's catalog access severed via a
// netsim fabric gate), or "clean" (Daemon.Close tombstone — expected
// to produce zero suspects).
func MeasureDetection(mode string, hbInterval time.Duration) (FailoverPoint, stats.Snapshot, error) {
	pt := FailoverPoint{Mode: mode, HeartbeatMs: float64(hbInterval) / 1e6, SuspectMs: -1, DeadMs: -1, PlacementMs: -1}
	store := rcds.NewStore("bench-liveness-" + mode)
	cat := naming.StoreCatalog(store)
	reg := task.NewRegistry()

	fabric := netsim.NewFabric()
	victimCat := cat
	if mode == "partition" {
		// The victim reaches the catalog only through the fabric: a
		// partition stops its heartbeats (and all its reads) while the
		// daemon itself keeps running — a true split, not a crash.
		victimCat = naming.GatedCatalog(cat, fabric.Gate("victim", "rc"))
	}

	mk := func(h string, c naming.Catalog) (*daemon.Daemon, error) {
		d := daemon.New(daemon.Config{HostName: h, Catalog: c, Registry: reg, HeartbeatInterval: hbInterval})
		return d, d.Start()
	}
	victim, err := mk("flv1", victimCat)
	if err != nil {
		return pt, stats.Snapshot{}, err
	}
	defer victim.Close()
	d2, err := mk("flv2", cat)
	if err != nil {
		return pt, stats.Snapshot{}, err
	}
	defer d2.Close()
	d3, err := mk("flv3", cat)
	if err != nil {
		return pt, stats.Snapshot{}, err
	}
	defer d3.Close()

	mon := liveness.NewMonitor(cat, liveness.Options{
		CheckInterval: 5 * time.Millisecond,
		MinSuspect:    2 * hbInterval,
		MaxSuspect:    2 * time.Second,
	})
	defer mon.Close()
	mgr, err := rm.NewManager("flv-rm", cat, nil)
	if err != nil {
		return pt, stats.Snapshot{}, err
	}
	defer mgr.Close()
	mgr.UseLiveness(mon)
	// Reservations make the victim the least-loaded candidate, so until
	// detection engages every placement lands on it.
	mgr.Reserve(d2.HostURL())
	mgr.Reserve(d3.HostURL())

	// Let the monitor build inter-arrival history on all three hosts.
	time.Sleep(15 * hbInterval)
	if host, _, err := mgr.SelectHost(task.Requirements{}); err != nil {
		return pt, stats.Snapshot{}, err
	} else if host != victim.HostURL() {
		return pt, stats.Snapshot{}, fmt.Errorf("bench: expected victim preferred, placement went to %s", host)
	}

	events := mon.Events()
	inject := time.Now()
	switch mode {
	case "crash":
		victim.Kill()
	case "partition":
		fabric.Partition("victim", "rc")
	case "clean":
		victim.Close()
	default:
		return pt, stats.Snapshot{}, fmt.Errorf("bench: unknown detection mode %q", mode)
	}

	// Poll placement until it stops answering with the victim, bounded
	// by a 10s deadline in the loop condition.
	placed := make(chan time.Duration, 1)
	go func() {
		for time.Since(inject) <= 10*time.Second {
			host, _, err := mgr.SelectHost(task.Requirements{})
			if err == nil && host != victim.HostURL() {
				placed <- time.Since(inject)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		placed <- -1
	}()

	// Watch transitions until the victim settles (dead or left), then
	// linger briefly to catch stray false suspicions. Clean shutdowns
	// settle on the Left event.
	deadline := time.After(10 * time.Second)
	settled := false
	linger := 20 * hbInterval
	for !settled {
		select {
		case ev := <-events:
			if ev.Host != victim.HostURL() {
				if ev.To == liveness.Suspect {
					pt.FalseSuspects++
				}
				continue
			}
			switch ev.To {
			case liveness.Suspect:
				if mode == "clean" {
					pt.FalseSuspects++ // a tombstoned host must never look suspect
				} else if pt.SuspectMs < 0 {
					pt.SuspectMs = float64(time.Since(inject)) / 1e6
				}
			case liveness.Dead, liveness.Left:
				pt.DeadMs = float64(time.Since(inject)) / 1e6
				settled = true
			}
		case <-deadline:
			settled = true
		}
	}
	quiet := time.After(linger)
	for done := false; !done; {
		select {
		case ev := <-events:
			if ev.To == liveness.Suspect && (ev.Host != victim.HostURL() || mode == "clean") {
				pt.FalseSuspects++
			}
		case <-quiet:
			done = true
		}
	}
	if d := <-placed; d >= 0 {
		pt.PlacementMs = float64(d) / 1e6
	}
	return pt, mon.MetricsSnapshot(), nil
}

// RunFailoverSuite measures all injection modes. Quick mode runs one
// heartbeat cadence; the full suite sweeps cadences for the crash
// case to show detection latency tracking the adaptive bound.
func RunFailoverSuite(quick bool) ([]FailoverPoint, stats.Snapshot, error) {
	type run struct {
		mode string
		hb   time.Duration
	}
	runs := []run{
		{"crash", 25 * time.Millisecond},
		{"partition", 25 * time.Millisecond},
		{"clean", 25 * time.Millisecond},
	}
	if !quick {
		runs = append(runs,
			run{"crash", 50 * time.Millisecond},
			run{"crash", 100 * time.Millisecond},
			run{"partition", 100 * time.Millisecond},
			run{"clean", 100 * time.Millisecond},
		)
	}
	var out []FailoverPoint
	var mstats stats.Snapshot
	for _, r := range runs {
		pt, ms, err := MeasureDetection(r.mode, r.hb)
		if err != nil {
			return out, mstats, err
		}
		out = append(out, pt)
		mstats = ms
	}
	return out, mstats, nil
}

// FailoverArtifact is the machine-readable form of a detection run,
// written to BENCH_failover.json.
type FailoverArtifact struct {
	Experiment  string          `json:"experiment"`
	GeneratedAt string          `json:"generated_at"`
	Quick       bool            `json:"quick"`
	Points      []FailoverPoint `json:"points"`
	Monitor     stats.Snapshot  `json:"monitor"` // last run's monitor metrics
}

// WriteFailoverArtifact writes the run's artifact as indented JSON.
func WriteFailoverArtifact(path string, points []FailoverPoint, monitor stats.Snapshot, quick bool) error {
	art := FailoverArtifact{
		Experiment:  "liveness",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Points:      points,
		Monitor:     monitor,
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
