package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"snipe/internal/daemon"
	"snipe/internal/gossip"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/netsim"
	"snipe/internal/rcds"
	"snipe/internal/rm"
	"snipe/internal/stats"
	"snipe/internal/task"
)

// --- Detection latency: the liveness experiment --------------------------
//
// Three daemons heartbeat into one catalog; a liveness.Monitor and a
// resource manager watch. Reservations weight the placement so the
// victim is the preferred host, then the victim is killed (heartbeats
// just stop), partitioned from the catalog (netsim.Fabric gate), or
// cleanly shut down (tombstone). Measured: injection → suspect,
// injection → dead, and injection → first placement that avoids the
// victim — the time the system keeps placing work on a dead host.

// FailoverPoint is one failure-detection measurement.
type FailoverPoint struct {
	Mode        string  `json:"mode"` // crash | partition | clean
	HeartbeatMs float64 `json:"heartbeat_ms"`
	SuspectMs   float64 `json:"suspect_ms"` // injection → suspect (-1: never)
	DeadMs      float64 `json:"dead_ms"`    // injection → dead/left (-1: never)
	// PlacementMs is injection → first SelectHost answer not on the
	// victim: the window in which new work was still sent to a dead
	// host.
	PlacementMs   float64 `json:"first_correct_placement_ms"`
	FalseSuspects int     `json:"false_suspects"` // suspect events that indict a healthy host
}

// fabricGossipGate adapts a netsim fabric to the gossip layer's gate
// hook, mapping host URLs back to bare fabric node names.
func fabricGossipGate(fabric *netsim.Fabric) func(from, to string) error {
	gate := fabric.PairGate()
	return func(from, to string) error {
		return gate(strings.TrimPrefix(from, naming.HostPrefix),
			strings.TrimPrefix(to, naming.HostPrefix))
	}
}

// MeasureDetection runs one failure injection and measures detection
// and placement-correction latency. mode is "crash" (daemon killed, no
// catalog writes), "partition" (full isolation: the victim's catalog
// access AND its gossip traffic severed via a netsim fabric — a host
// that can still gossip is alive by definition, so a real split severs
// both), or "clean" (Daemon.Close tombstone — expected to produce zero
// suspects).
func MeasureDetection(mode string, hbInterval time.Duration) (FailoverPoint, stats.Snapshot, error) {
	pt := FailoverPoint{Mode: mode, HeartbeatMs: float64(hbInterval) / 1e6, SuspectMs: -1, DeadMs: -1, PlacementMs: -1}
	store := rcds.NewStore("bench-liveness-" + mode)
	cat := naming.StoreCatalog(store)
	reg := task.NewRegistry()

	fabric := netsim.NewFabric()
	victimCat := cat
	if mode == "partition" {
		// The victim reaches the catalog only through the fabric: a
		// partition stops its digest writes (and all its reads) while the
		// daemon itself keeps running — a true split, not a crash.
		victimCat = naming.GatedCatalog(cat, fabric.Gate("flv1", "rc"))
	}

	gopts := daemon.GossipOptions{Gate: fabricGossipGate(fabric)}
	mk := func(h string, c naming.Catalog) (*daemon.Daemon, error) {
		d := daemon.New(daemon.Config{HostName: h, Catalog: c, Registry: reg, HeartbeatInterval: hbInterval, Gossip: gopts})
		return d, d.Start()
	}
	victim, err := mk("flv1", victimCat)
	if err != nil {
		return pt, stats.Snapshot{}, err
	}
	defer victim.Close()
	d2, err := mk("flv2", cat)
	if err != nil {
		return pt, stats.Snapshot{}, err
	}
	defer d2.Close()
	d3, err := mk("flv3", cat)
	if err != nil {
		return pt, stats.Snapshot{}, err
	}
	defer d3.Close()

	mon := liveness.NewMonitor(cat, liveness.Options{
		CheckInterval: 5 * time.Millisecond,
		MinSuspect:    2 * hbInterval,
		MaxSuspect:    2 * time.Second,
	})
	defer mon.Close()
	mgr, err := rm.NewManager("flv-rm", cat, nil)
	if err != nil {
		return pt, stats.Snapshot{}, err
	}
	defer mgr.Close()
	mgr.UseLiveness(mon)
	// Reservations make the victim the least-loaded candidate, so until
	// detection engages every placement lands on it.
	mgr.Reserve(d2.HostURL())
	mgr.Reserve(d3.HostURL())

	// Let the monitor build inter-arrival history on all three hosts.
	time.Sleep(15 * hbInterval)
	if host, _, err := mgr.SelectHost(task.Requirements{}); err != nil {
		return pt, stats.Snapshot{}, err
	} else if host != victim.HostURL() {
		return pt, stats.Snapshot{}, fmt.Errorf("bench: expected victim preferred, placement went to %s", host)
	}

	events := mon.Events()
	inject := time.Now()
	switch mode {
	case "crash":
		victim.Kill()
	case "partition":
		fabric.Isolate("flv1")
	case "clean":
		victim.Close()
	default:
		return pt, stats.Snapshot{}, fmt.Errorf("bench: unknown detection mode %q", mode)
	}

	// Poll placement until it stops answering with the victim, bounded
	// by a 10s deadline in the loop condition.
	placed := make(chan time.Duration, 1)
	go func() {
		for time.Since(inject) <= 10*time.Second {
			host, _, err := mgr.SelectHost(task.Requirements{})
			if err == nil && host != victim.HostURL() {
				placed <- time.Since(inject)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		placed <- -1
	}()

	// Watch transitions until the victim settles (dead or left), then
	// linger briefly to catch stray false suspicions. Clean shutdowns
	// settle on the Left event.
	deadline := time.After(10 * time.Second)
	settled := false
	linger := 20 * hbInterval
	for !settled {
		select {
		case ev := <-events:
			if ev.Host != victim.HostURL() {
				if ev.To == liveness.Suspect {
					pt.FalseSuspects++
				}
				continue
			}
			switch ev.To {
			case liveness.Suspect:
				if mode == "clean" {
					pt.FalseSuspects++ // a tombstoned host must never look suspect
				} else if pt.SuspectMs < 0 {
					pt.SuspectMs = float64(time.Since(inject)) / 1e6
				}
			case liveness.Dead, liveness.Left:
				pt.DeadMs = float64(time.Since(inject)) / 1e6
				settled = true
			}
		case <-deadline:
			settled = true
		}
	}
	quiet := time.After(linger)
	for done := false; !done; {
		select {
		case ev := <-events:
			if ev.To == liveness.Suspect && (ev.Host != victim.HostURL() || mode == "clean") {
				pt.FalseSuspects++
			}
		case <-quiet:
			done = true
		}
	}
	if d := <-placed; d >= 0 {
		pt.PlacementMs = float64(d) / 1e6
	}
	return pt, mon.MetricsSnapshot(), nil
}

// RunFailoverSuite measures all injection modes. Quick mode runs one
// heartbeat cadence; the full suite sweeps cadences for the crash
// case to show detection latency tracking the adaptive bound.
func RunFailoverSuite(quick bool) ([]FailoverPoint, stats.Snapshot, error) {
	type run struct {
		mode string
		hb   time.Duration
	}
	runs := []run{
		{"crash", 25 * time.Millisecond},
		{"partition", 25 * time.Millisecond},
		{"clean", 25 * time.Millisecond},
	}
	if !quick {
		runs = append(runs,
			run{"crash", 50 * time.Millisecond},
			run{"crash", 100 * time.Millisecond},
			run{"partition", 100 * time.Millisecond},
			run{"clean", 100 * time.Millisecond},
		)
	}
	var out []FailoverPoint
	var mstats stats.Snapshot
	for _, r := range runs {
		pt, ms, err := MeasureDetection(r.mode, r.hb)
		if err != nil {
			return out, mstats, err
		}
		out = append(out, pt)
		mstats = ms
	}
	return out, mstats, nil
}

// --- Cluster-size sweep: hierarchical liveness at 100–10k hosts ----------
//
// N in-process gossip agents over a netsim hub, grouped with elected
// digest reporters writing into one rcds store; a single
// liveness.Monitor consumes the digests. Measured per size: a no-fault
// window (false suspects + catalog write rate), crash detection
// latency (mean over several victims), a full-isolation partition with
// heal, and the legacy per-host heartbeat write rate over the same
// store type for the write-amplification comparison.

// LivenessScalePoint is one cluster size's measurements.
type LivenessScalePoint struct {
	Hosts     int     `json:"hosts"`
	Groups    int     `json:"groups"`
	GroupSize int     `json:"group_size"`
	ProbeMs   float64 `json:"probe_ms"`
	WarmupMs  float64 `json:"warmup_ms"` // start → monitor sees every host alive
	// FalseSuspects counts monitor suspect transitions during the
	// no-fault observation window (claim: zero).
	FalseSuspects int `json:"false_suspects"`
	// Crash detection, mean over trials: victim agent silently stopped.
	CrashSuspectMs float64 `json:"crash_suspect_ms"`
	CrashDeadMs    float64 `json:"crash_dead_ms"`
	// Partition detection, one victim fully isolated then healed.
	PartitionSuspectMs float64 `json:"partition_suspect_ms"`
	PartitionDeadMs    float64 `json:"partition_dead_ms"`
	HealReviveMs       float64 `json:"heal_revive_ms"` // rejoin → monitor alive again
	// Catalog write amplification: digests vs one heartbeat per host.
	GossipWritesPerSec float64 `json:"gossip_writes_per_sec"`
	LegacyWritesPerSec float64 `json:"legacy_writes_per_sec"`
	WriteReduction     float64 `json:"write_reduction"`
}

// scaleWorld is one running cluster of the scale sweep.
type scaleWorld struct {
	fabric *netsim.Fabric
	hub    *netsim.Hub
	cat    naming.Catalog
	mon    *liveness.Monitor
	names  []string // host URLs, index-aligned with agents
	shorts []string // fabric node names
	agents []*gossip.Agent
	writes atomic.Int64 // successful digest writes
}

func (w *scaleWorld) close() {
	w.mon.Close()
	for _, ag := range w.agents {
		if ag != nil {
			ag.Stop()
		}
	}
	w.hub.Close()
}

// startScaleWorld spins up hosts gossip agents in contiguous groups of
// groupSize over a hub, plus a monitor on the shared store.
func startScaleWorld(hosts, groupSize int, probe time.Duration) (*scaleWorld, error) {
	groups := (hosts + groupSize - 1) / groupSize
	w := &scaleWorld{fabric: netsim.NewFabric()}
	w.hub = netsim.NewHub(w.fabric)
	w.cat = naming.StoreCatalog(rcds.NewStore(fmt.Sprintf("bench-liveness-%d", hosts)))

	w.names = make([]string, hosts)
	w.shorts = make([]string, hosts)
	shortOf := make(map[string]string, hosts)
	for i := range w.names {
		w.shorts[i] = fmt.Sprintf("s%05d", i)
		w.names[i] = naming.HostURL(w.shorts[i])
		shortOf[w.names[i]] = w.shorts[i]
	}
	member := func(g int) []string {
		end := (g + 1) * groupSize
		if end > hosts {
			end = hosts
		}
		return w.names[g*groupSize : end]
	}

	// Handlers look their agent up lazily under a lock, so hub nodes can
	// attach before the agents that use them exist.
	var agMu sync.RWMutex
	agentOf := make(map[string]*gossip.Agent, hosts)

	w.agents = make([]*gossip.Agent, hosts)
	for i := 0; i < hosts; i++ {
		short := w.shorts[i]
		g := i / groupSize
		node, err := w.hub.Attach(short, func(from string, payload any) {
			agMu.RLock()
			ag := agentOf[short]
			agMu.RUnlock()
			if ag == nil {
				return
			}
			b, ok := payload.([]byte)
			if !ok {
				return
			}
			if m, err := gossip.DecodeMessage(b); err == nil {
				ag.Deliver(&m)
			}
		})
		if err != nil {
			w.close()
			return nil, err
		}
		// The default ack deadline (probe/4) assumes network-like
		// round-trips; thousands of in-process agents sharing a few
		// cores see scheduler pauses well past it, which reads as probe
		// loss and seeds false suspicion. At >=2k hosts stretch the
		// probe budget to a full interval — there detection latency is
		// dominated by the suspect timeout, so the claims are
		// untouched. Smaller worlds keep the tight defaults: their
		// scheduling load is light, and the tighter probe deadline is
		// most of their detection latency.
		ackTO, probeTO := time.Duration(0), time.Duration(0)
		if hosts >= 2000 {
			ackTO, probeTO = probe/2, probe
		}
		ag, err := gossip.NewAgent(gossip.Config{
			Self:          w.names[i],
			Group:         g,
			Groups:        groups,
			ProbeInterval: probe,
			AckTimeout:    ackTO,
			ProbeTimeout:  probeTO,
			Transport: gossip.TransportFunc(func(to string, m *gossip.Message) error {
				return node.Send(shortOf[to], m.Encode())
			}),
			Peers: func() ([]string, error) { return member(g), nil },
			WriteDigest: func(d *gossip.Digest) error {
				// The catalog sits on node "rc": full isolation severs
				// digest writes exactly as a gated daemon catalog would.
				if w.fabric.Partitioned(short, "rc") {
					return errors.New("bench: catalog unreachable")
				}
				if err := w.cat.Set(naming.LivenessGroupURI(d.Group), rcds.AttrGroupDigest, d.Format()); err != nil {
					return err
				}
				w.writes.Add(1)
				return nil
			},
		})
		if err != nil {
			w.close()
			return nil, err
		}
		agMu.Lock()
		agentOf[short] = ag
		agMu.Unlock()
		w.agents[i] = ag
	}

	w.mon = liveness.NewMonitor(w.cat, liveness.Options{
		MinSuspect: 3 * probe,
		MaxSuspect: 30 * probe,
	})
	for _, ag := range w.agents {
		if err := ag.Start(); err != nil {
			w.close()
			return nil, err
		}
	}
	return w, nil
}

// waitState polls the monitor for a host state until the deadline.
func (w *scaleWorld) waitState(host string, want liveness.State, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	for {
		if w.mon.State(host) == want {
			return time.Since(start), nil
		}
		if time.Since(start) > timeout {
			return -1, fmt.Errorf("bench: %s never reached %v (is %v)", host, want, w.mon.State(host))
		}
		time.Sleep(time.Millisecond)
	}
}

// detect stamps injection → first suspect and → dead for one victim,
// reading the monitor's event feed.
func (w *scaleWorld) detect(victim string, inject func(), timeout time.Duration) (suspectMs, deadMs float64, err error) {
	ch, cancel := w.mon.Subscribe(8192)
	defer cancel()
	start := time.Now()
	inject()
	suspectMs, deadMs = -1, -1
	deadline := time.After(timeout)
	for {
		select {
		case ev := <-ch:
			if ev.Host != victim {
				continue
			}
			switch ev.To {
			case liveness.Suspect:
				if suspectMs < 0 {
					suspectMs = float64(time.Since(start)) / 1e6
				}
			case liveness.Dead:
				deadMs = float64(time.Since(start)) / 1e6
				return suspectMs, deadMs, nil
			}
		case <-deadline:
			return suspectMs, deadMs, fmt.Errorf("bench: victim %s not declared dead within %v", victim, timeout)
		}
	}
}

// MeasureLivenessScale runs the hierarchical detector at one cluster
// size and measures detection latency, false-suspect rate, and catalog
// write amplification.
func MeasureLivenessScale(hosts, groupSize int, probe time.Duration) (LivenessScalePoint, error) {
	pt := LivenessScalePoint{
		Hosts: hosts, GroupSize: groupSize,
		Groups:  (hosts + groupSize - 1) / groupSize,
		ProbeMs: float64(probe) / 1e6,
	}
	if pt.Groups < 4 {
		return pt, fmt.Errorf("bench: need >= 4 groups for victim selection, have %d", pt.Groups)
	}
	w, err := startScaleWorld(hosts, groupSize, probe)
	if err != nil {
		return pt, err
	}
	defer w.close()

	// Warmup: the monitor has ingested a digest claim for every host.
	// The deadline scales with cluster size — at 10k in-process agents
	// the startup dissemination storm is bounded by cores, not by the
	// protocol.
	start := time.Now()
	warmDeadline := time.Now().Add(60*time.Second + time.Duration(hosts)*20*time.Millisecond)
	for {
		snap := w.mon.Snapshot()
		alive := 0
		for _, info := range snap {
			if info.State == liveness.Alive {
				alive++
			}
		}
		if alive == hosts {
			break
		}
		if time.Now().After(warmDeadline) {
			return pt, fmt.Errorf("bench: warmup stalled at %d/%d alive", alive, hosts)
		}
		time.Sleep(25 * time.Millisecond)
	}
	pt.WarmupMs = float64(time.Since(start)) / 1e6

	// Settle: "every host alive at the monitor" does not mean the
	// startup dissemination storm is over — in-flight suspicions from
	// the join burst are still being refuted. Give them a few probe
	// intervals to drain before judging the no-fault window.
	time.Sleep(5 * probe)

	// No-fault window: zero suspicion expected, and the steady-state
	// catalog write rate is the write-amplification numerator. Any
	// suspect event in the window is a claim failure, so narrate the
	// first few for diagnosis.
	window := 10 * probe
	events, cancelEvents := w.mon.Subscribe(4096)
	suspectsBefore := w.mon.Metrics().Counter("transitions_suspect").Value()
	writesBefore := w.writes.Load()
	windowStart := time.Now()
	time.Sleep(window)
	elapsed := time.Since(windowStart).Seconds()
	pt.FalseSuspects = int(w.mon.Metrics().Counter("transitions_suspect").Value() - suspectsBefore)
	cancelEvents()
	logged := 0
	for done := false; !done && logged < 5; {
		select {
		case ev, ok := <-events:
			if !ok {
				done = true
				break
			}
			if ev.To == liveness.Suspect {
				fmt.Fprintf(os.Stderr, "liveness scale: false suspect %s (%s)\n", ev.Host, ev.Reason)
				logged++
			}
		default:
			done = true
		}
	}
	pt.GossipWritesPerSec = float64(w.writes.Load()-writesBefore) / elapsed

	// Crash detection: mean over mid-rank (never-reporter) victims.
	// SWIM's probe ring makes a single victim's time-to-first-probe a
	// random variable; the claim is about the detector's latency, so
	// average it. Victims rotate through groups 1.. and the rank shifts
	// on each pass so no host is ever killed twice even when the trial
	// count exceeds the group count.
	// SWIM's time-to-first-probe is ~uniform over a probe interval with
	// a ring-alignment tail out to 2-3 intervals, so single trials are
	// noisy. Small worlds pay ~1.5s per trial — average more of them;
	// the 5k/10k points keep 5 to bound wall-clock.
	trials := 9
	if hosts >= 2000 {
		trials = 5
	}
	detectTimeout := 30*probe + 5*time.Second
	var sumSuspect, sumDead float64
	for trial := 0; trial < trials; trial++ {
		g := 1 + trial%(pt.Groups-1)
		lo, hi := g*groupSize, (g+1)*groupSize
		if hi > hosts {
			hi = hosts
		}
		v := lo + (hi-lo)/2 + trial/(pt.Groups-1)
		if v >= hi {
			v = hi - 1
		}
		sMs, dMs, err := w.detect(w.names[v], func() { w.agents[v].Stop() }, detectTimeout)
		if err != nil {
			return pt, fmt.Errorf("crash trial %d: %w", trial, err)
		}
		if sMs < 0 {
			sMs = dMs // dead observed before any suspect event reached us
		}
		fmt.Fprintf(os.Stderr, "liveness scale: %d hosts crash trial %d: suspect %.1fms dead %.1fms\n",
			hosts, trial, sMs, dMs)
		sumSuspect += sMs
		sumDead += dMs
	}
	pt.CrashSuspectMs = sumSuspect / float64(trials)
	pt.CrashDeadMs = sumDead / float64(trials)

	// Partition: one victim fully isolated (gossip and catalog), then
	// healed — the detector must declare it dead and revive it.
	// Crash victims rotate through groups 1.., so group 0's middle host
	// is never a prior casualty.
	pv := groupSize / 2
	if pv >= hosts {
		pv = hosts - 2
	}
	sMs, dMs, err := w.detect(w.names[pv], func() { w.fabric.Isolate(w.shorts[pv]) }, detectTimeout)
	if err != nil {
		return pt, fmt.Errorf("partition: %w", err)
	}
	pt.PartitionSuspectMs, pt.PartitionDeadMs = sMs, dMs
	w.fabric.Rejoin(w.shorts[pv])
	revive, err := w.waitState(w.names[pv], liveness.Alive, detectTimeout)
	if err != nil {
		return pt, fmt.Errorf("heal: %w", err)
	}
	pt.HealReviveMs = float64(revive) / 1e6

	// Legacy baseline, measured: one catalog heartbeat per host per
	// interval into the same store type, counted over a few intervals.
	lcat := naming.StoreCatalog(rcds.NewStore(fmt.Sprintf("bench-liveness-legacy-%d", hosts)))
	lstart := time.Now()
	writes := 0
	ticker := time.NewTicker(probe)
	defer ticker.Stop()
	for tick := 1; tick <= 3; tick++ {
		<-ticker.C
		for _, host := range w.names {
			hb := liveness.Heartbeat{Seq: uint64(tick), Time: time.Now().UnixNano(), Load: 1}
			if err := lcat.Set(host, rcds.AttrHeartbeat, hb.String()); err != nil {
				return pt, err
			}
			writes++
		}
	}
	pt.LegacyWritesPerSec = float64(writes) / time.Since(lstart).Seconds()
	if pt.GossipWritesPerSec > 0 {
		pt.WriteReduction = pt.LegacyWritesPerSec / pt.GossipWritesPerSec
	}
	return pt, nil
}

// RunLivenessScaleSuite sweeps cluster sizes. Quick mode runs one
// CI-sized cluster; the full sweep reproduces the 100–10k scaling
// claim. The probe interval grows with the cluster — exactly as a
// real deployment would tune it — keeping the per-second message load
// (hosts/probe) within what an in-process single-box emulation can
// schedule without the scheduler's own latency polluting the
// detection measurements; every claim is expressed relative to the
// size's own probe interval.
func RunLivenessScaleSuite(quick bool) ([]LivenessScalePoint, error) {
	type size struct {
		hosts, group int
		probe        time.Duration
	}
	sizes := []size{{100, 25, 100 * time.Millisecond}}
	if !quick {
		sizes = []size{
			{100, 25, 200 * time.Millisecond},
			{1000, 32, 200 * time.Millisecond},
			{5000, 32, time.Second},
			{10000, 32, time.Second},
		}
	}
	var out []LivenessScalePoint
	for _, s := range sizes {
		fmt.Fprintf(os.Stderr, "liveness scale: %d hosts (groups of %d, probe %v)...\n",
			s.hosts, s.group, s.probe)
		pt, err := MeasureLivenessScale(s.hosts, s.group, s.probe)
		if err != nil {
			return out, fmt.Errorf("scale %d: %w", s.hosts, err)
		}
		fmt.Fprintf(os.Stderr, "liveness scale: %d hosts done: warmup %.0fms, crash suspect %.1fms, dead %.1fms\n",
			s.hosts, pt.WarmupMs, pt.CrashSuspectMs, pt.CrashDeadMs)
		out = append(out, pt)
	}
	return out, nil
}

// FailoverArtifact is the machine-readable form of a detection run,
// written to BENCH_failover.json.
type FailoverArtifact struct {
	Experiment  string               `json:"experiment"`
	GeneratedAt string               `json:"generated_at"`
	Quick       bool                 `json:"quick"`
	Points      []FailoverPoint      `json:"points"`
	Scale       []LivenessScalePoint `json:"scale,omitempty"`
	Monitor     stats.Snapshot       `json:"monitor"` // last run's monitor metrics
}

// WriteFailoverArtifact writes the run's artifact as indented JSON.
func WriteFailoverArtifact(path string, points []FailoverPoint, scale []LivenessScalePoint, monitor stats.Snapshot, quick bool) error {
	art := FailoverArtifact{
		Experiment:  "liveness",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Points:      points,
		Scale:       scale,
		Monitor:     monitor,
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
