package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/service"
)

// --- Service groups: replicated RPC under a mid-run host kill ------------
//
// N echo replicas register under one service URN; a swarm of client
// workers issues streaming calls continuously. Mid-run one replica's
// host is killed cold — heartbeats stop, endpoint dies, no drain. The
// claim under test is the tentpole invariant: between per-attempt
// retry and the liveness-fed balancer, NOT ONE client call fails, and
// throughput recovers to the pre-kill level once detection narrows the
// rotation.

// ServicePhasePoint summarises one phase of the run relative to the
// kill: "before" (start → kill), "during" (kill → the balancer drops
// the victim from rotation) and "after" (rotation narrowed → end).
type ServicePhasePoint struct {
	Phase       string  `json:"phase"`
	Calls       int     `json:"calls"`
	Failures    int     `json:"failures"`
	Secs        float64 `json:"secs"`
	CallsPerSec float64 `json:"calls_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// ServiceResult is one full service-kill run.
type ServiceResult struct {
	Replicas    int                 `json:"replicas"`
	Workers     int                 `json:"workers"`
	RespBytes   int                 `json:"resp_bytes"`
	KilledHost  string              `json:"killed_host"`
	SuspectMs   float64             `json:"suspect_ms"`   // kill → monitor suspects the host (-1: never)
	RebalanceMs float64             `json:"rebalance_ms"` // kill → victim out of client rotation (-1: never)
	Calls       int                 `json:"calls"`
	Failures    int                 `json:"failures"`
	Phases      []ServicePhasePoint `json:"phases"`
}

type serviceSample struct {
	at     time.Duration // call completion, relative to run start
	lat    time.Duration
	failed bool
}

// MeasureServiceKill runs the service-group kill experiment: replicas
// echo replicas padded to respBytes, workers concurrent callers, warm
// of pre-kill traffic and post of post-detection traffic.
func MeasureServiceKill(replicas, workers, respBytes int, warm, post time.Duration) (ServiceResult, error) {
	res := ServiceResult{Replicas: replicas, Workers: workers, RespBytes: respBytes, SuspectMs: -1, RebalanceMs: -1}
	cat := naming.StoreCatalog(rcds.NewStore("bench-service"))

	endpoint := func(urn string) (*comm.Endpoint, error) {
		r := naming.NewResolver(cat)
		r.SetTTL(20 * time.Millisecond)
		ep := comm.NewEndpoint(urn, comm.WithResolver(r))
		route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
		if err != nil {
			return nil, err
		}
		return ep, naming.Register(cat, urn, []comm.Route{route})
	}

	// Host heartbeats, stoppable per host to simulate the kill.
	hbStop := make(map[string]chan struct{})
	var hbWG sync.WaitGroup
	beatHost := func(host string) {
		hostURL := naming.HostURL(host)
		done := make(chan struct{})
		hbStop[host] = done
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			var seq uint64
			for {
				seq++
				hb := liveness.Heartbeat{Seq: seq, Time: time.Now().UnixNano(), Load: 0.5}
				cat.Set(hostURL, rcds.AttrHeartbeat, hb.String())
				select {
				case <-done:
					return
				case <-tick.C:
				}
			}
		}()
	}
	defer func() {
		for _, ch := range hbStop {
			select {
			case <-ch:
			default:
				close(ch)
			}
		}
		hbWG.Wait()
	}()

	mon := liveness.NewMonitor(cat, liveness.Options{
		CheckInterval: 10 * time.Millisecond,
		MinSuspect:    100 * time.Millisecond,
		MaxSuspect:    400 * time.Millisecond,
	})
	defer mon.Close()

	pad := make([]byte, respBytes)
	for i := range pad {
		pad[i] = byte(i)
	}
	var eps []*comm.Endpoint
	for i := 0; i < replicas; i++ {
		host := fmt.Sprintf("svc%d", i+1)
		beatHost(host)
		ep, err := endpoint(naming.ProcessURN(host, "echo"))
		if err != nil {
			return res, err
		}
		defer ep.Close()
		srv, err := service.NewServer(service.ServerConfig{
			Name: "bench-echo", Catalog: cat, Endpoint: ep,
		})
		if err != nil {
			return res, err
		}
		defer srv.Close()
		srv.Handle("echo", func(ctx context.Context, st *comm.Stream) error {
			for {
				if _, err := st.Read(ctx); err == io.EOF {
					break
				} else if err != nil {
					return err
				}
			}
			return st.Write(ctx, pad)
		})
		eps = append(eps, ep)
	}

	cliEP, err := endpoint(naming.ProcessURN("cli", "bench"))
	if err != nil {
		return res, err
	}
	defer cliEP.Close()
	cli, err := service.NewClient(service.ClientConfig{
		Service: "bench-echo", Catalog: cat, Endpoint: cliEP,
		Monitor: mon, Attempts: replicas, AttemptTimeout: 700 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	defer cli.Close()

	// The load: workers call as fast as the group answers, recording
	// every outcome with its completion time.
	var mu sync.Mutex
	var samples []serviceSample
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	start := time.Now()
	for wkr := 0; wkr < workers; wkr++ {
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			req := []byte("bench request")
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				t0 := time.Now()
				resp, err := cli.Call(ctx, "echo", req)
				cancel()
				s := serviceSample{at: time.Since(start), lat: time.Since(t0), failed: err != nil}
				if err == nil && len(resp) != respBytes {
					s.failed = true
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}

	time.Sleep(warm)

	// The kill: victim is the first replica. Heartbeats stop and the
	// endpoint drops cold, exactly like a host crash.
	victimHost := "svc1"
	victimURL := naming.HostURL(victimHost)
	res.KilledHost = victimURL
	killAt := time.Since(start)
	close(hbStop[victimHost])
	eps[0].Close()

	kill := time.Now()
	for time.Since(kill) < 10*time.Second {
		if st := mon.State(victimURL); st == liveness.Suspect || st == liveness.Dead {
			if res.SuspectMs < 0 {
				res.SuspectMs = float64(time.Since(kill)) / 1e6
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	rebalancedAt := time.Duration(-1)
	for time.Since(kill) < 10*time.Second {
		cands, err := cli.Candidates()
		if err == nil {
			inRotation := false
			for _, urn := range cands {
				if liveness.HostOfURN(urn) == victimURL {
					inRotation = true
				}
			}
			if !inRotation {
				res.RebalanceMs = float64(time.Since(kill)) / 1e6
				rebalancedAt = time.Since(start)
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	time.Sleep(post)
	close(stopLoad)
	loadWG.Wait()

	// Phase accounting by completion time.
	if rebalancedAt < 0 {
		rebalancedAt = killAt // degenerate: everything post-kill is "after"
	}
	phases := map[string][]serviceSample{}
	for _, s := range samples {
		switch {
		case s.at < killAt:
			phases["before"] = append(phases["before"], s)
		case s.at < rebalancedAt:
			phases["during"] = append(phases["during"], s)
		default:
			phases["after"] = append(phases["after"], s)
		}
		res.Calls++
		if s.failed {
			res.Failures++
		}
	}
	bounds := map[string]float64{
		"before": killAt.Seconds(),
		"during": (rebalancedAt - killAt).Seconds(),
		"after":  (time.Since(start) - rebalancedAt).Seconds(),
	}
	for _, name := range []string{"before", "during", "after"} {
		ss := phases[name]
		pt := ServicePhasePoint{Phase: name, Calls: len(ss), Secs: bounds[name]}
		lats := make([]float64, 0, len(ss))
		for _, s := range ss {
			if s.failed {
				pt.Failures++
			} else {
				lats = append(lats, float64(s.lat)/1e6)
			}
		}
		if pt.Secs > 0 {
			pt.CallsPerSec = float64(pt.Calls) / pt.Secs
		}
		pt.P50Ms = pctlMs(lats, 0.50)
		pt.P99Ms = pctlMs(lats, 0.99)
		res.Phases = append(res.Phases, pt)
	}
	return res, nil
}

// pctlMs picks the q-quantile of a millisecond sample set (-1: empty).
func pctlMs(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return -1
	}
	sort.Float64s(ms)
	i := int(q * float64(len(ms)-1))
	return ms[i]
}

// ServiceArtifact is the machine-readable run record, written to
// BENCH_service.json.
type ServiceArtifact struct {
	Experiment  string        `json:"experiment"`
	GeneratedAt string        `json:"generated_at"`
	Quick       bool          `json:"quick"`
	Result      ServiceResult `json:"result"`
}

// WriteServiceArtifact writes the run's artifact as indented JSON.
func WriteServiceArtifact(path string, result ServiceResult, quick bool) error {
	art := ServiceArtifact{
		Experiment:  "service",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Result:      result,
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
