package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"snipe/internal/rcds"
)

// Catalog-at-scale experiment (DESIGN.md "Sharded catalog"): a
// million-URI population loaded through a shard-routing client into a
// catalog partitioned across replica groups, then read back, watched by
// thousands of long-poll watchers, and finally healed through the
// snapshot rejoin path. The run verifies the sharding claims with the
// replicas' own counters: writes fan out only within the owning group,
// nothing lands cross-shard, and a rejoining replica converges via the
// compacted snapshot instead of replaying the write history.

// CatalogConfig sizes one catalog-at-scale run.
type CatalogConfig struct {
	Groups      int // shard groups (replica groups)
	Replicas    int // replicas per group
	URIs        int // catalog population written through the client
	Writers     int // concurrent writer goroutines
	Reads       int // random point reads in the read phase
	Watchers    int // concurrent WaitURI watchers in the fan-out phase
	CompactKeep int // per-origin op-log tail the replicas keep
}

// CatalogDefaults returns the paper-scale configuration, or a reduced
// one for CI smoke runs.
func CatalogDefaults(quick bool) CatalogConfig {
	if quick {
		return CatalogConfig{Groups: 4, Replicas: 2, URIs: 20_000, Writers: 32, Reads: 4_000, Watchers: 400, CompactKeep: 512}
	}
	return CatalogConfig{Groups: 4, Replicas: 2, URIs: 1_000_000, Writers: 128, Reads: 50_000, Watchers: 10_000, CompactKeep: 4096}
}

// CatalogResult is one run's measurements and verification counters.
type CatalogResult struct {
	Groups   int `json:"groups"`
	Replicas int `json:"replicas"`
	URIs     int `json:"uris"`
	Writers  int `json:"writers"`

	LoadSecs       float64 `json:"load_secs"`
	WriteOpsPerSec float64 `json:"write_ops_per_sec"`

	Reads         int     `json:"reads"`
	ReadOpsPerSec float64 `json:"read_ops_per_sec"`
	ReadP50Ms     float64 `json:"read_p50_ms"`
	ReadP99Ms     float64 `json:"read_p99_ms"`

	// Placement proof: URIs held per group, misplaced URIs in a sampled
	// cross-check of non-owning groups, origins appearing in a group's
	// version vector that belong to another group's replicas, and the
	// wrong-shard wire counters (server rejects, client redirects).
	PerGroupURIs        []int  `json:"per_group_uris"`
	PlacementSample     int    `json:"placement_sample"`
	MisplacedURIs       int    `json:"misplaced_uris"`
	CrossGroupOrigins   int    `json:"cross_group_origins"`
	ShardRejects        uint64 `json:"shard_rejects"`
	WrongShardRedirects uint64 `json:"wrong_shard_redirects"`
	ShardMapResolves    uint64 `json:"shard_map_resolves"`

	Watchers       int     `json:"watchers"`
	WatchTimeouts  int     `json:"watch_timeouts"`
	WatchWakeP50Ms float64 `json:"watch_wake_p50_ms"`
	WatchWakeP99Ms float64 `json:"watch_wake_p99_ms"`

	// Rejoin proof: ops the downed replica missed vs elements it pulled
	// via the compacted snapshot, and the serving side's page counter.
	RejoinHistoryOps     int     `json:"rejoin_history_ops"`
	RejoinSnapshotOps    int     `json:"rejoin_snapshot_ops"`
	SnapshotPagesServed  uint64  `json:"snapshot_pages_served"`
	RejoinUsedSnapshot   bool    `json:"rejoin_used_snapshot"`
	RejoinConverged      bool    `json:"rejoin_converged"`
	RejoinSecs           float64 `json:"rejoin_secs"`
}

// catURI names the i-th population URI. The path hashes through
// ShardKey, so the population spreads across groups.
func catURI(i int) string { return fmt.Sprintf("snipe://files/bench/%08d", i) }

// waitUntil polls cond every poll until it holds or timeout elapses.
func waitUntil(timeout, poll time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(poll)
	}
	return true
}

func vecSum(v rcds.VersionVector) uint64 {
	var sum uint64
	for _, seq := range v {
		sum += seq
	}
	return sum
}

// MeasureCatalog runs the full experiment: bulk load, placement
// verification, random reads, watch fan-out, and a compacted-snapshot
// rejoin of a downed replica.
func MeasureCatalog(cfg CatalogConfig) (CatalogResult, error) {
	res := CatalogResult{Groups: cfg.Groups, Replicas: cfg.Replicas, URIs: cfg.URIs, Writers: cfg.Writers}
	ctx := context.Background()

	// Replica groups: each an independent master–master mesh; the shard
	// map is enforced and seeded on every replica before traffic, as
	// core.Universe and snipe-rcserver do.
	groups := make([][]*rcds.Server, cfg.Groups)
	defer func() {
		for _, srvs := range groups {
			for _, s := range srvs {
				s.Close()
			}
		}
	}()
	m := &rcds.ShardMap{Epoch: 1}
	for g := range groups {
		addrs := make([]string, cfg.Replicas)
		for i := 0; i < cfg.Replicas; i++ {
			s := rcds.NewServer(rcds.NewStore(fmt.Sprintf("rc%d-%d", g, i)),
				rcds.WithAntiEntropyInterval(250*time.Millisecond),
				rcds.WithLogCompaction(cfg.CompactKeep))
			if err := s.Start("127.0.0.1:0"); err != nil {
				return res, err
			}
			groups[g] = append(groups[g], s)
			addrs[i] = s.Addr()
		}
		for i, s := range groups[g] {
			var peers []string
			for j, p := range addrs {
				if i != j {
					peers = append(peers, p)
				}
			}
			s.SetPeers(peers...)
		}
		m.Groups = append(m.Groups, addrs)
	}
	for g, srvs := range groups {
		for _, s := range srvs {
			s.SetShard(g, m)
			s.Store().Set(rcds.ShardMapURI, rcds.AttrShardMap, m.Format())
		}
	}
	client := rcds.NewClient(m.Groups[0], nil,
		rcds.WithShardRouting(), rcds.WithTimeout(15*time.Second))
	defer client.Close()

	var errMu sync.Mutex
	var runErr error
	setErr := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}
	failed := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return runErr
	}

	// Phase 1: bulk load through the routing client, each writer taking
	// a stride of the population.
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < cfg.URIs; i += cfg.Writers {
				if err := client.Set(ctx, catURI(i), "owner", fmt.Sprintf("host%d", i%61)); err != nil {
					setErr(fmt.Errorf("load write %d: %w", i, err))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res.LoadSecs = time.Since(start).Seconds()
	res.WriteOpsPerSec = float64(cfg.URIs) / res.LoadSecs
	if err := failed(); err != nil {
		return res, err
	}

	// Quiesce: every group's replicas agree on their version vectors
	// before placement is judged and watchers arm.
	if !waitUntil(60*time.Second, 50*time.Millisecond, func() bool {
		for _, srvs := range groups {
			v0 := srvs[0].Store().Vector()
			for _, s := range srvs[1:] {
				v := s.Store().Vector()
				if !v.Dominates(v0) || !v0.Dominates(v) {
					return false
				}
			}
		}
		return true
	}) {
		return res, fmt.Errorf("bench: replica groups did not converge after load")
	}

	// Phase 2: placement verification. Per-group population, a sampled
	// cross-check that no URI is present on a non-owning group, vector
	// origins confined to each group's own replicas, and the wire
	// counters for wrong-shard traffic.
	for g, srvs := range groups {
		uris, _, _ := srvs[0].Store().Stats()
		res.PerGroupURIs = append(res.PerGroupURIs, uris)
		for origin := range srvs[0].Store().Vector() {
			if !strings.HasPrefix(origin, fmt.Sprintf("rc%d-", g)) {
				res.CrossGroupOrigins++
			}
		}
	}
	step := cfg.URIs / 2000
	if step < 1 {
		step = 1
	}
	for i := 0; i < cfg.URIs; i += step {
		uri := catURI(i)
		owner := m.Owner(uri)
		res.PlacementSample++
		for g, srvs := range groups {
			if g == owner {
				continue
			}
			if _, ok := srvs[0].Store().FirstValue(uri, "owner"); ok {
				res.MisplacedURIs++
			}
		}
	}
	for _, srvs := range groups {
		for _, s := range srvs {
			res.ShardRejects += s.Store().Metrics().Counter("shard_rejects").Value()
		}
	}
	res.WrongShardRedirects = client.Metrics().Counter("wrong_shard_redirects").Value()
	res.ShardMapResolves = client.Metrics().Counter("shard_map_resolves").Value()

	// Phase 3: random point reads through the router.
	readers := cfg.Writers
	if readers > 64 {
		readers = 64
	}
	perReader := cfg.Reads / readers
	latCh := make(chan []float64, readers)
	start = time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			lats := make([]float64, 0, perReader)
			for k := 0; k < perReader; k++ {
				i := rng.Intn(cfg.URIs)
				t := time.Now()
				_, ok, err := client.FirstValue(ctx, catURI(i), "owner")
				if err != nil || !ok {
					setErr(fmt.Errorf("read %s: ok=%v err=%v", catURI(i), ok, err))
					return
				}
				lats = append(lats, float64(time.Since(t).Microseconds())/1e3)
			}
			latCh <- lats
		}(int64(r) + 1)
	}
	wg.Wait()
	readSecs := time.Since(start).Seconds()
	close(latCh)
	if err := failed(); err != nil {
		return res, err
	}
	var readLats []float64
	for l := range latCh {
		readLats = append(readLats, l...)
	}
	res.Reads = len(readLats)
	res.ReadOpsPerSec = float64(res.Reads) / readSecs
	res.ReadP50Ms = pctlMs(readLats, 0.50)
	res.ReadP99Ms = pctlMs(readLats, 0.99)

	// Phase 4: watch fan-out. Watchers arm a long-poll on the version
	// stream of the group owning their URI; one write per group then
	// wakes every watcher of that group at once — the worst-case
	// thundering herd — and each watcher records write-to-wake latency.
	res.Watchers = cfg.Watchers
	wakeURIs := make([]string, cfg.Groups)
	for g := range wakeURIs {
		for j := 0; ; j++ {
			uri := fmt.Sprintf("snipe://files/bench/wake/%d", j)
			if m.Owner(uri) == g {
				wakeURIs[g] = uri
				break
			}
		}
	}
	var ready, watchers sync.WaitGroup
	startCh := make(chan struct{})
	wakeLats := make([]float64, cfg.Watchers)
	var t0 time.Time
	for i := 0; i < cfg.Watchers; i++ {
		ready.Add(1)
		watchers.Add(1)
		go func(i int) {
			defer watchers.Done()
			uri := catURI(i % cfg.URIs)
			wakeLats[i] = -1
			v0, err := client.WaitURI(ctx, uri, 0, 10*time.Millisecond)
			ready.Done()
			if err != nil {
				return
			}
			<-startCh
			wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			defer cancel()
			v, err := client.WaitURI(wctx, uri, v0, 25*time.Second)
			if err != nil || v <= v0 {
				return
			}
			wakeLats[i] = float64(time.Since(t0).Microseconds()) / 1e3
		}(i)
	}
	ready.Wait()
	t0 = time.Now()
	close(startCh)
	for g := range wakeURIs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if err := client.Set(ctx, wakeURIs[g], "wake", "now"); err != nil {
				setErr(fmt.Errorf("wake write group %d: %w", g, err))
			}
		}(g)
	}
	wg.Wait()
	watchers.Wait()
	if err := failed(); err != nil {
		return res, err
	}
	var wakeOK []float64
	for _, l := range wakeLats {
		if l < 0 {
			res.WatchTimeouts++
		} else {
			wakeOK = append(wakeOK, l)
		}
	}
	res.WatchWakeP50Ms = pctlMs(wakeOK, 0.50)
	res.WatchWakeP99Ms = pctlMs(wakeOK, 0.99)

	// Phase 5: rejoin via compacted snapshot. Down one group-0 replica,
	// overwrite-churn more history than the whole group-0 catalog holds,
	// compact the survivors past the victim's vector, then restart it
	// over its old store: it must converge by pulling the snapshot
	// (O(catalog)) rather than replaying the churn (O(history)).
	victim := groups[0][cfg.Replicas-1]
	victimStore := victim.Store()
	missedBase := vecSum(victimStore.Vector())
	victim.Close()

	g0URIs, _, _ := groups[0][0].Store().Stats()
	churn := 3 * cfg.CompactKeep
	if min := g0URIs * 3 / 2; churn < min {
		churn = min
	}
	var targets []string
	for i := 0; len(targets) < 64 && i < cfg.URIs; i++ {
		if uri := catURI(i); m.Owner(uri) == 0 {
			targets = append(targets, uri)
		}
	}
	if len(targets) == 0 {
		return res, fmt.Errorf("bench: no group-0 URIs in population")
	}
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < churn; i += cfg.Writers {
				// Cycle two values so the churn supersedes in place: the
				// catalog stays O(population) while the history grows.
				if err := client.Set(ctx, targets[i%len(targets)], "owner", fmt.Sprintf("v%d", i%2)); err != nil {
					setErr(fmt.Errorf("churn write %d: %w", i, err))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := failed(); err != nil {
		return res, err
	}
	survivors := groups[0][:cfg.Replicas-1]
	if !waitUntil(60*time.Second, 50*time.Millisecond, func() bool {
		v0 := survivors[0].Store().Vector()
		for _, s := range survivors[1:] {
			v := s.Store().Vector()
			if !v.Dominates(v0) || !v0.Dominates(v) {
				return false
			}
		}
		return true
	}) {
		return res, fmt.Errorf("bench: surviving replicas did not converge after churn")
	}
	res.RejoinHistoryOps = int(vecSum(survivors[0].Store().Vector()) - missedBase)
	pagesBefore := uint64(0)
	for _, s := range survivors {
		s.Store().Compact(cfg.CompactKeep)
		pagesBefore += s.Store().Metrics().Counter("snapshot_pages_served").Value()
	}

	peers := make([]string, len(survivors))
	for i, s := range survivors {
		peers[i] = s.Addr()
	}
	rejoined := rcds.NewServer(victimStore,
		rcds.WithPeers(peers...),
		rcds.WithAntiEntropyInterval(100*time.Millisecond),
		rcds.WithShard(0, m),
		rcds.WithLogCompaction(cfg.CompactKeep))
	rejoinStart := time.Now()
	if err := rejoined.Start("127.0.0.1:0"); err != nil {
		return res, err
	}
	defer rejoined.Close()
	// Convergence must be claimed, not coincidental: the rejoiner's
	// vector has to cover the survivor's (snapshot base merged, tail
	// applied) before the byte-identical content check counts. A
	// content-only check can pass while the sync machinery is still
	// thrashing mid-snapshot.
	res.RejoinConverged = waitUntil(240*time.Second, 500*time.Millisecond, func() bool {
		return victimStore.Vector().Dominates(survivors[0].Store().Vector()) &&
			victimStore.ContentHash() == survivors[0].Store().ContentHash()
	})
	res.RejoinSecs = time.Since(rejoinStart).Seconds()
	res.RejoinSnapshotOps = int(victimStore.Metrics().Counter("snapshot_ops_installed").Value())
	for _, s := range survivors {
		res.SnapshotPagesServed += s.Store().Metrics().Counter("snapshot_pages_served").Value()
	}
	res.SnapshotPagesServed -= pagesBefore
	res.RejoinUsedSnapshot = res.SnapshotPagesServed > 0 && res.RejoinSnapshotOps > 0
	return res, nil
}

// CatalogArtifact is the machine-readable run record, written to
// BENCH_catalog.json.
type CatalogArtifact struct {
	Experiment  string        `json:"experiment"`
	GeneratedAt string        `json:"generated_at"`
	Quick       bool          `json:"quick"`
	Result      CatalogResult `json:"result"`
}

// WriteCatalogArtifact writes the run's artifact as indented JSON.
func WriteCatalogArtifact(path string, result CatalogResult, quick bool) error {
	art := CatalogArtifact{
		Experiment:  "catalog",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		Result:      result,
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
