package console

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"snipe/internal/daemon"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
)

type world struct {
	t     *testing.T
	store *rcds.Store
	cat   naming.Catalog
	con   *Console
	ts    *httptest.Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	s := rcds.NewStore("con-test")
	cat := naming.StoreCatalog(s)
	con, err := New("ops", cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(con.Close)
	ts := httptest.NewServer(con)
	t.Cleanup(ts.Close)
	return &world{t: t, store: s, cat: cat, con: con, ts: ts}
}

func (w *world) get(path string) (int, string) {
	w.t.Helper()
	resp, err := w.ts.Client().Get(w.ts.URL + path)
	if err != nil {
		w.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		w.t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	w := newWorld(t)
	code, body := w.get("/")
	if code != 200 || !strings.Contains(body, "SNIPE console ops") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _ := w.get("/nothing-here"); code != 404 {
		t.Fatalf("bad path: %d", code)
	}
}

func TestResolveProxy(t *testing.T) {
	w := newWorld(t)
	w.cat.Set("urn:snipe:process:h1:x", rcds.AttrState, "running")
	w.cat.Add("urn:snipe:process:h1:x", rcds.AttrCommAddr, "tcp://127.0.0.1:9")
	code, body := w.get("/resolve?uri=" + "urn:snipe:process:h1:x")
	if code != 200 || !strings.Contains(body, "running") || !strings.Contains(body, "tcp://127.0.0.1:9") {
		t.Fatalf("resolve: %d %q", code, body)
	}
	if code, _ := w.get("/resolve?uri=urn:unknown"); code != 404 {
		t.Fatalf("unknown uri: %d", code)
	}
	if code, _ := w.get("/resolve"); code != 400 {
		t.Fatalf("missing uri: %d", code)
	}
}

func TestHostsAndTasksPages(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("idle", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	d := daemon.New(daemon.Config{HostName: "h1", Catalog: w.cat, Registry: reg})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	urn, err := d.Spawn(task.Spec{Program: "idle"})
	if err != nil {
		t.Fatal(err)
	}

	code, body := w.get("/hosts")
	if code != 200 || !strings.Contains(body, "snipe://hosts/h1") {
		t.Fatalf("hosts: %d %q", code, body)
	}
	code, body = w.get("/tasks?host=snipe://hosts/h1")
	if code != 200 || !strings.Contains(body, urn) || !strings.Contains(body, "running") {
		t.Fatalf("tasks: %d %q", code, body)
	}
	if code, _ := w.get("/tasks?host=snipe://hosts/none"); code != 404 {
		t.Fatalf("unknown host: %d", code)
	}
	if code, _ := w.get("/tasks"); code != 400 {
		t.Fatalf("missing host: %d", code)
	}
}

func TestGroupState(t *testing.T) {
	w := newWorld(t)
	g := naming.GroupURN("pipeline")
	AddGroupMember(w.cat, g, "urn:p1")
	AddGroupMember(w.cat, g, "urn:p2")
	w.cat.Set("urn:p1", rcds.AttrState, "running")
	w.cat.Set("urn:p2", rcds.AttrState, "exited")

	members, err := GroupState(w.cat, g)
	if err != nil || len(members) != 2 {
		t.Fatalf("GroupState = %v, %v", members, err)
	}
	if members[0].URN != "urn:p1" || members[0].State != "running" ||
		members[1].State != "exited" {
		t.Fatalf("members: %v", members)
	}
	code, body := w.get("/group?urn=" + g)
	if code != 200 || !strings.Contains(body, "urn:p2") {
		t.Fatalf("group page: %d %q", code, body)
	}
	if code, _ := w.get("/group"); code != 400 {
		t.Fatalf("missing urn: %d", code)
	}
}

func TestHTTPBinding(t *testing.T) {
	w := newWorld(t)
	if err := w.con.RegisterHTTPBinding(w.ts.URL); err != nil {
		t.Fatal(err)
	}
	got, err := ResolveHTTPBinding(w.cat, w.con.URN())
	if err != nil || got != w.ts.URL {
		t.Fatalf("binding: %q %v", got, err)
	}
	// A browser following the binding reaches the console.
	resp, err := http.Get(got + "/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("follow binding: %v %v", resp, err)
	}
	resp.Body.Close()
	if _, err := ResolveHTTPBinding(w.cat, "urn:nowhere"); err == nil {
		t.Fatal("missing binding resolved")
	}
}

func TestRenderText(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("quick", func(ctx *task.Context) error { return nil })
	d := daemon.New(daemon.Config{HostName: "h1", Catalog: w.cat, Registry: reg})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	urn, _ := d.Spawn(task.Spec{Program: "quick"})
	d.WaitTask(urn, 5*time.Second)

	text, err := w.con.RenderText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "snipe://hosts/h1") || !strings.Contains(text, urn) {
		t.Fatalf("text console: %q", text)
	}
}

func TestStatsEndToEnd(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("quick", func(ctx *task.Context) error { return nil })
	d := daemon.New(daemon.Config{HostName: "h1", Catalog: w.cat, Registry: reg})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	urn, _ := d.Spawn(task.Spec{Program: "quick"})
	d.WaitTask(urn, 5*time.Second)

	// The console's stats command round-trips over the daemon protocol.
	snap, err := w.con.Stats("snipe://hosts/h1")
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["daemon.spawns"]; got < 1 {
		t.Fatalf("daemon.spawns = %d, want ≥ 1", got)
	}
	if _, ok := snap.Counters["comm.sent"]; !ok {
		t.Fatalf("snapshot missing comm metrics: %v", snap.Counters)
	}
	if _, ok := snap.Counters["rcds.local_ops"]; !ok {
		t.Fatalf("snapshot missing rcds metrics: %v", snap.Counters)
	}
	if h, ok := snap.Histograms["daemon.spawn_latency_us"]; !ok || h.Count < 1 {
		t.Fatalf("spawn latency histogram missing or empty: %+v", h)
	}

	text, err := w.con.RenderStats("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "stats for snipe://hosts/h1") ||
		!strings.Contains(text, "daemon.spawns") {
		t.Fatalf("rendered stats: %q", text)
	}

	code, body := w.get("/stats?host=snipe://hosts/h1")
	if code != 200 || !strings.Contains(body, "daemon.spawns") {
		t.Fatalf("stats page: %d %q", code, body)
	}
	if code, _ := w.get("/stats"); code != 400 {
		t.Fatalf("missing host: %d", code)
	}
	if code, _ := w.get("/stats?host=snipe://hosts/none"); code != 502 {
		t.Fatalf("unknown host: %d", code)
	}
}
