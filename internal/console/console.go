// Package console implements SNIPE consoles (paper §3.7): processes
// that communicate with humans.
//
// A console is an ordinary SNIPE process; this one doubles as an HTTP
// server, "allowing text and graphical output and forms and
// mouse-click input from any web browser". It registers a binding
// between its URN and its current HTTP location in RC metadata, so a
// browser can find it even if it moves, and it acts as the paper's
// proxy server "which allows any web browser to resolve the URI of any
// RCDS-registered resource".
//
// Because "there is no SNIPE virtual machine apart from the entire
// Internet, there is no way to list all SNIPE processes" — the console
// therefore answers queries scoped the way the paper describes: the
// processes initiated by a particular host's daemon (host metadata),
// and the state of the processes in a process group (group metadata).
package console

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/stats"
	"snipe/internal/task"
)

// AttrHTTPLocation is the assertion name binding a console URN to its
// current HTTP address.
const AttrHTTPLocation = "http-location"

var reqIDs atomic.Uint64

// Console is a human-facing SNIPE process with an HTTP interface.
type Console struct {
	name string
	urn  string
	cat  naming.Catalog
	ep   *comm.Endpoint
	mux  *http.ServeMux
}

// New creates a console process with its own endpoint.
func New(name string, cat naming.Catalog) (*Console, error) {
	c := &Console{
		name: name,
		urn:  naming.ProcessURN(name, "console"),
		cat:  cat,
	}
	c.ep = comm.NewEndpoint(c.urn, comm.WithResolver(naming.NewResolver(cat)))
	route, err := c.ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		return nil, fmt.Errorf("console: %w", err)
	}
	if err := naming.Register(cat, c.urn, []comm.Route{route}); err != nil {
		c.ep.Close()
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", c.handleIndex)
	mux.HandleFunc("/resolve", c.handleResolve)
	mux.HandleFunc("/hosts", c.handleHosts)
	mux.HandleFunc("/tasks", c.handleTasks)
	mux.HandleFunc("/group", c.handleGroup)
	mux.HandleFunc("/stats", c.handleStats)
	c.mux = mux
	return c, nil
}

// URN returns the console's process URN.
func (c *Console) URN() string { return c.urn }

// Close stops the console and withdraws its advertised addresses, so
// peers do not accumulate dead routes for the URN.
func (c *Console) Close() {
	naming.Unregister(c.cat, c.urn)
	c.ep.Close()
}

// ServeHTTP implements http.Handler.
func (c *Console) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// RegisterHTTPBinding records the console's current HTTP location in
// RC metadata so browsers can find it across migrations or replicas.
func (c *Console) RegisterHTTPBinding(httpURL string) error {
	return c.cat.Set(c.urn, AttrHTTPLocation, httpURL)
}

// ResolveHTTPBinding finds the current HTTP location of any console or
// HTTP-serving process by URN.
func ResolveHTTPBinding(cat naming.Catalog, urn string) (string, error) {
	v, ok, err := cat.FirstValue(urn, AttrHTTPLocation)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("console: %s has no HTTP binding", urn)
	}
	return v, nil
}

func (c *Console) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, "<html><head><title>SNIPE console %s</title></head><body>\n", html.EscapeString(c.name))
	fmt.Fprintf(w, "<h1>SNIPE console %s</h1>\n<ul>\n", html.EscapeString(c.name))
	fmt.Fprintln(w, `<li><a href="/hosts">hosts</a></li>`)
	fmt.Fprintln(w, `<li>/resolve?uri=&lt;URI&gt; — resolve any RCDS-registered resource</li>`)
	fmt.Fprintln(w, `<li>/tasks?host=&lt;host URL&gt; — tasks started by a host daemon</li>`)
	fmt.Fprintln(w, `<li>/group?urn=&lt;group URN&gt; — process-group state</li>`)
	fmt.Fprintln(w, `<li>/stats?host=&lt;host URL&gt; — live daemon metrics snapshot (JSON)</li>`)
	fmt.Fprintln(w, "</ul></body></html>")
}

// handleResolve is the URI proxy: it renders the live assertions of
// any registered resource.
func (c *Console) handleResolve(w http.ResponseWriter, r *http.Request) {
	uri := r.URL.Query().Get("uri")
	if uri == "" {
		http.Error(w, "missing uri parameter", http.StatusBadRequest)
		return
	}
	as, err := c.assertions(uri)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if len(as) == 0 {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, "<html><body><h1>%s</h1><table border=1>\n", html.EscapeString(uri))
	fmt.Fprintln(w, "<tr><th>attribute</th><th>value</th></tr>")
	for _, a := range as {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(a.name), html.EscapeString(a.value))
	}
	fmt.Fprintln(w, "</table></body></html>")
}

type attrPair struct{ name, value string }

// loadString renders a host's load figure for display, reading the
// heartbeat-carried value (with legacy AttrLoad fallback); "?" when
// the host publishes neither.
func loadString(cat naming.Catalog, hostURL string) string {
	if load, ok := liveness.HostLoad(cat, hostURL); ok {
		return fmt.Sprintf("%.2f", load)
	}
	return "?"
}

// assertions collects all live (name, value) pairs of a URI. The
// Catalog interface is value-oriented, so we enumerate the well-known
// attribute names plus whatever a Get on the raw client would return;
// to stay interface-clean we probe the standard attribute set.
func (c *Console) assertions(uri string) ([]attrPair, error) {
	names := []string{
		rcds.AttrArch, rcds.AttrCPUs, rcds.AttrMemory, rcds.AttrLoad,
		rcds.AttrHeartbeat,
		rcds.AttrHostDaemonURL, rcds.AttrInterface, rcds.AttrBroker,
		rcds.AttrCommAddr, rcds.AttrState, rcds.AttrNotify,
		rcds.AttrLocation, rcds.AttrMcastRouter, rcds.AttrPublicKey,
		rcds.AttrSupervisorLIFN, rcds.AttrCodeHash, rcds.AttrProtocol,
		AttrHTTPLocation, "host", "task", "member",
	}
	var out []attrPair
	for _, n := range names {
		vals, err := c.cat.Values(uri, n)
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			out = append(out, attrPair{n, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].value < out[j].value
	})
	return out, nil
}

func (c *Console) handleHosts(w http.ResponseWriter, r *http.Request) {
	hosts, err := c.cat.URIs(naming.HostPrefix)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	fmt.Fprintln(w, "<html><body><h1>SNIPE hosts</h1><table border=1>")
	fmt.Fprintln(w, "<tr><th>host</th><th>arch</th><th>load</th><th>daemon</th></tr>")
	for _, h := range hosts {
		arch, _, _ := c.cat.FirstValue(h, rcds.AttrArch)
		durn, _, _ := c.cat.FirstValue(h, rcds.AttrHostDaemonURL)
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(h), html.EscapeString(arch),
			html.EscapeString(loadString(c.cat, h)), html.EscapeString(durn))
	}
	fmt.Fprintln(w, "</table></body></html>")
}

// handleTasks shows "the SNIPE processes which were initiated by the
// SNIPE daemon on any particular host" (§3.7), queried live from that
// daemon.
func (c *Console) handleTasks(w http.ResponseWriter, r *http.Request) {
	host := r.URL.Query().Get("host")
	if host == "" {
		http.Error(w, "missing host parameter", http.StatusBadRequest)
		return
	}
	durn, ok, err := c.cat.FirstValue(host, rcds.AttrHostDaemonURL)
	if err != nil || !ok {
		http.Error(w, "host has no daemon", http.StatusNotFound)
		return
	}
	tasks, err := daemon.StatusRemote(c.ep, durn, reqIDs.Add(1), 5*time.Second)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	urns := make([]string, 0, len(tasks))
	for u := range tasks {
		urns = append(urns, u)
	}
	sort.Strings(urns)
	fmt.Fprintf(w, "<html><body><h1>Tasks on %s</h1><table border=1>\n", html.EscapeString(host))
	fmt.Fprintln(w, "<tr><th>task</th><th>state</th></tr>")
	for _, u := range urns {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(u), html.EscapeString(string(tasks[u])))
	}
	fmt.Fprintln(w, "</table></body></html>")
}

// handleGroup shows the state of each process in a process group: "the
// state of each process in a process group is maintained as metadata
// associated with that process group" (§3.7).
func (c *Console) handleGroup(w http.ResponseWriter, r *http.Request) {
	urn := r.URL.Query().Get("urn")
	if urn == "" {
		http.Error(w, "missing urn parameter", http.StatusBadRequest)
		return
	}
	members, err := GroupState(c.cat, urn)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	fmt.Fprintf(w, "<html><body><h1>Group %s</h1><table border=1>\n", html.EscapeString(urn))
	fmt.Fprintln(w, "<tr><th>member</th><th>state</th></tr>")
	for _, m := range members {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(m.URN), html.EscapeString(string(m.State)))
	}
	fmt.Fprintln(w, "</table></body></html>")
}

// Stats fetches the composed metrics snapshot (daemon, comm, RC
// catalog) of a host's daemon over the message protocol.
func (c *Console) Stats(host string) (stats.Snapshot, error) {
	durn, ok, err := c.cat.FirstValue(host, rcds.AttrHostDaemonURL)
	if err != nil {
		return stats.Snapshot{}, err
	}
	if !ok {
		return stats.Snapshot{}, fmt.Errorf("console: %s has no daemon", host)
	}
	return daemon.StatsRemote(c.ep, durn, reqIDs.Add(1), 5*time.Second)
}

// RenderStats produces the terminal metrics view for one host — the
// console's `stats` command. With host "", every registered host is
// queried.
func (c *Console) RenderStats(host string) (string, error) {
	hosts := []string{host}
	if host == "" {
		var err error
		hosts, err = c.cat.URIs(naming.HostPrefix)
		if err != nil {
			return "", err
		}
	}
	var b strings.Builder
	for _, h := range hosts {
		s, err := c.Stats(h)
		if err != nil {
			if host == "" {
				fmt.Fprintf(&b, "%s: unreachable (%v)\n", h, err)
				continue
			}
			return "", err
		}
		fmt.Fprintf(&b, "stats for %s\n%s", h, s.Render())
	}
	return b.String(), nil
}

// handleStats serves a host daemon's metrics snapshot as JSON.
func (c *Console) handleStats(w http.ResponseWriter, r *http.Request) {
	host := r.URL.Query().Get("host")
	if host == "" {
		http.Error(w, "missing host parameter", http.StatusBadRequest)
		return
	}
	s, err := c.Stats(host)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	b, err := s.JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// GroupMember is one process-group member's recorded state.
type GroupMember struct {
	URN   string
	State task.State
}

// AddGroupMember records a process in a process group's metadata.
func AddGroupMember(cat naming.Catalog, groupURN, memberURN string) error {
	return cat.Add(groupURN, "member", memberURN)
}

// GroupState reads the group's member list and each member's state
// from RC metadata.
func GroupState(cat naming.Catalog, groupURN string) ([]GroupMember, error) {
	members, err := cat.Values(groupURN, "member")
	if err != nil {
		return nil, err
	}
	out := make([]GroupMember, 0, len(members))
	for _, m := range members {
		st, _, err := cat.FirstValue(m, rcds.AttrState)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupMember{URN: m, State: task.State(st)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URN < out[j].URN })
	return out, nil
}

// RenderText produces a terminal listing of hosts and their tasks —
// the character-based console mode the paper mentions.
func (c *Console) RenderText() (string, error) {
	var b strings.Builder
	hosts, err := c.cat.URIs(naming.HostPrefix)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "SNIPE console %s — %d host(s)\n", c.name, len(hosts))
	for _, h := range hosts {
		arch, _, _ := c.cat.FirstValue(h, rcds.AttrArch)
		fmt.Fprintf(&b, "  %s arch=%s load=%s\n", h, arch, loadString(c.cat, h))
		tasks, err := c.cat.Values(h, "task")
		if err != nil {
			continue
		}
		sort.Strings(tasks)
		for _, t := range tasks {
			st, _, _ := c.cat.FirstValue(t, rcds.AttrState)
			fmt.Fprintf(&b, "    %s [%s]\n", t, st)
		}
	}
	return b.String(), nil
}
