package rm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"snipe/internal/seckey"
	"snipe/internal/task"
)

type detRand struct{ state uint64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}

// secureWorld sets up the §4 trust topology: the RM is CA for users
// and hosts; the resource host trusts the RM for grants.
type secureWorld struct {
	*world
	m         *Manager
	rmPrin    *seckey.Principal
	user      *seckey.Principal
	hostPrin  *seckey.Principal
	userCert  *seckey.KeyCertificate
	hostCert  *seckey.KeyCertificate
	hostTrust *seckey.TrustStore
}

func newSecureWorld(t *testing.T) *secureWorld {
	t.Helper()
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 2)
	m := w.manager("rm1")

	rmPrin, err := seckey.NewPrincipal(m.URN(), &detRand{state: 1})
	if err != nil {
		t.Fatal(err)
	}
	user, _ := seckey.NewPrincipal("urn:snipe:user:alice", &detRand{state: 2})
	hostPrin, _ := seckey.NewPrincipal("snipe://hosts/h1", &detRand{state: 3})

	userCert := seckey.NewKeyCertificate(rmPrin, user.Name, user.Public(), seckey.PurposeUserCA, 0, 0)
	hostCert := seckey.NewKeyCertificate(rmPrin, hostPrin.Name, hostPrin.Public(), seckey.PurposeHostCA, 0, 0)

	rmTrust := seckey.NewTrustStore()
	rmTrust.Trust(seckey.PurposeUserCA, rmPrin.Name, rmPrin.Public())
	rmTrust.Trust(seckey.PurposeHostCA, rmPrin.Name, rmPrin.Public())
	acl := seckey.ACLFunc(func(u, r string) bool { return u == user.Name })
	m.SetAuthorizer(seckey.NewAuthorizer(rmPrin, rmTrust, acl))

	hostTrust := seckey.NewTrustStore()
	hostTrust.Trust(seckey.PurposeResourceGrant, rmPrin.Name, rmPrin.Public())

	return &secureWorld{world: w, m: m, rmPrin: rmPrin, user: user,
		hostPrin: hostPrin, userCert: userCert, hostCert: hostCert, hostTrust: hostTrust}
}

func (sw *secureWorld) request(process, resource string) *SecureRequest {
	return &SecureRequest{
		Spec:     task.Spec{Program: "quick"},
		Grant:    seckey.NewUserGrant(sw.user, process, sw.hostPrin.Name, resource, 0, 0),
		UserCert: sw.userCert,
		Att:      seckey.NewHostAttestation(sw.hostPrin, process, resource, 0, 0),
		HostCert: sw.hostCert,
	}
}

func TestSecureAllocateEndToEnd(t *testing.T) {
	sw := newSecureWorld(t)
	c := sw.client("urn:secclient")
	req := sw.request("urn:snipe:process:pending", "snipe://res/cluster")
	urn, err := c.SecureAllocate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(urn, "quick") {
		t.Fatalf("urn = %q", urn)
	}
	// The RM's authorization is published with the task and verifies at
	// a host that trusts the RM.
	if err := VerifyTaskAuthorization(sw.cat, sw.hostTrust, urn, 1<<40); err != nil {
		t.Fatalf("published authorization: %v", err)
	}
	// A host with no trust in this RM rejects it.
	if err := VerifyTaskAuthorization(sw.cat, seckey.NewTrustStore(), urn, 1<<40); err == nil {
		t.Fatal("untrusting host accepted the authorization")
	}
}

func TestSecureAllocateForgedGrant(t *testing.T) {
	sw := newSecureWorld(t)
	c := sw.client("urn:secclient")
	mallory, _ := seckey.NewPrincipal(sw.user.Name, &detRand{state: 99})
	req := sw.request("urn:p", "snipe://res/x")
	req.Grant = seckey.NewUserGrant(mallory, "urn:p", sw.hostPrin.Name, "snipe://res/x", 0, 0)
	if _, err := c.SecureAllocate(req); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("forged grant: %v", err)
	}
}

func TestSecureAllocateScopeMismatch(t *testing.T) {
	sw := newSecureWorld(t)
	c := sw.client("urn:secclient")
	req := sw.request("urn:p", "snipe://res/x")
	// Attestation for a different resource.
	req.Att = seckey.NewHostAttestation(sw.hostPrin, "urn:p", "snipe://res/OTHER", 0, 0)
	if _, err := c.SecureAllocate(req); err == nil {
		t.Fatal("scope mismatch accepted")
	}
}

func TestSecureAllocateWithoutAuthorizer(t *testing.T) {
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 2)
	m := w.manager("rmplain")
	req := &SecureRequest{Spec: task.Spec{Program: "quick"}}
	if _, err := m.SecureAllocate(req, 1); !errors.Is(err, ErrNoAuthorizer) {
		t.Fatalf("want ErrNoAuthorizer, got %v", err)
	}
}

func TestSecureRequestRoundTrip(t *testing.T) {
	sw := newSecureWorld(t)
	req := sw.request("urn:p", "snipe://res/x")
	// Encode/decode preserves verifiability.
	now := uint64(time.Now().Unix())
	urn, err := sw.m.SecureAllocate(req, now)
	if err != nil {
		t.Fatal(err)
	}
	_ = urn
}
