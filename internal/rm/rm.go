// Package rm implements SNIPE resource managers (paper §3.5),
// descendants of PVM's General Resource Manager modified "to allow for
// redundant resource management processes".
//
// A resource manager monitors the hosts it manages through their RC
// metadata (architecture, memory, load published by host daemons),
// clarifies resource requests, and selects actual resources in
// response. It operates in two modes, as the paper describes:
//
//   - passive: the RM reserves resources on a host on a requester's
//     behalf without allocating them;
//   - active: the RM acts as a proxy, spawning the process via the
//     chosen host's daemon.
//
// Any number of RMs may run concurrently; each registers itself under
// the well-known service URN, and clients fail over between them —
// removing PVM's single-resource-manager bottleneck and single point
// of failure (§2.2).
package rm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/seckey"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

// maxWireHost caps host names, URLs and error strings decoded off the
// wire, so a corrupt length prefix fails fast.
const maxWireHost = 4096

// ServiceName is the well-known replicated-service name for resource
// managers; RMs register their process URNs as AttrLocation values of
// naming.ServiceURN(ServiceName).
const ServiceName = "resource-manager"

// RM protocol operations (TagRM messages).
const (
	opSelect uint8 = iota + 1
	opAllocate
	opReserve
	opRelease
)

// Errors of the resource-management layer.
var (
	// ErrNoHosts indicates no registered host satisfies the request.
	ErrNoHosts = errors.New("rm: no host satisfies request")
	// ErrNoManagers indicates no resource manager answered.
	ErrNoManagers = errors.New("rm: no reachable resource manager")
)

// hostInfo is an RM's view of one candidate host.
type hostInfo struct {
	url       string
	daemonURN string
	arch      string
	memoryMB  int
	load      float64
}

// Manager is one resource manager instance.
type Manager struct {
	name string
	urn  string
	cat  naming.Catalog
	ep   *comm.Endpoint

	mu           sync.Mutex
	reservations map[string]int // host URL → reserved slots
	nextReqID    uint64
	authorizer   *seckey.Authorizer // nil: secure allocation disabled
	closed       bool

	mon       *liveness.Monitor // optional failure detector (UseLiveness)
	watchDone chan struct{}
	watchWG   sync.WaitGroup
}

// NewManager creates and registers a resource manager. listens
// defaults to loopback TCP.
func NewManager(name string, cat naming.Catalog, listens []comm.Route) (*Manager, error) {
	m := &Manager{
		name:         name,
		urn:          naming.ProcessURN(name, "rm"),
		cat:          cat,
		reservations: make(map[string]int),
	}
	m.ep = comm.NewEndpoint(m.urn,
		comm.WithResolver(naming.NewResolver(cat)),
		comm.WithHandler(m.handle, task.TagRM))
	if len(listens) == 0 {
		listens = []comm.Route{{Transport: "tcp", Addr: "127.0.0.1:0"}}
	}
	var routes []comm.Route
	for _, l := range listens {
		route, err := m.ep.Listen(l.Spec())
		if err != nil {
			m.ep.Close()
			return nil, fmt.Errorf("rm: listen: %w", err)
		}
		routes = append(routes, route)
	}
	if err := naming.Register(cat, m.urn, routes); err != nil {
		m.ep.Close()
		return nil, err
	}
	if err := cat.Add(naming.ServiceURN(ServiceName), rcds.AttrLocation, m.urn); err != nil {
		m.ep.Close()
		return nil, err
	}
	return m, nil
}

// URN returns the manager's process URN.
func (m *Manager) URN() string { return m.urn }

// UseLiveness connects the manager to a failure detector: SelectHost
// stops placing work on suspect/dead/departed hosts, and a watcher
// re-reports tasks stranded on hosts declared dead — publishing their
// failure and notifying their notify lists, the paper's "failure
// notification" applied to orphaned work. The monitor is not owned:
// the caller closes it.
func (m *Manager) UseLiveness(mon *liveness.Monitor) {
	m.mu.Lock()
	if m.mon != nil || m.closed {
		m.mu.Unlock()
		return
	}
	m.mon = mon
	m.watchDone = make(chan struct{})
	m.mu.Unlock()
	events := mon.Events()
	m.watchWG.Add(1)
	go func() {
		defer m.watchWG.Done()
		for {
			select {
			case <-m.watchDone:
				return
			case ev, ok := <-events:
				if !ok {
					return
				}
				if ev.To == liveness.Dead {
					m.reportDeadHost(ev.Host)
				}
			}
		}
	}()
}

// reportDeadHost settles the metadata of every task stranded on a dead
// host: running/suspended tasks are marked failed, their addresses
// withdrawn (no one can reach them), and their notify lists told — the
// work a crashed daemon could not do for itself.
func (m *Manager) reportDeadHost(hostURL string) {
	tasks, err := m.cat.Values(hostURL, "task")
	if err != nil {
		return // catalog unreachable: retried when the next event fires
	}
	for _, urn := range tasks {
		st, ok, err := m.cat.FirstValue(urn, rcds.AttrState)
		if err != nil || !ok {
			continue
		}
		from := task.State(st)
		if from != task.StateRunning && from != task.StateSuspended {
			continue // already settled (exited, failed, checkpointed)
		}
		m.cat.Set(urn, rcds.AttrState, string(task.StateFailed))
		naming.Unregister(m.cat, urn)
		if notify, err := m.cat.Values(urn, rcds.AttrNotify); err == nil && len(notify) > 0 {
			payload := task.EncodeStateChange(task.StateChange{
				URN: urn, From: from, To: task.StateFailed, Host: hostURL,
			})
			for _, n := range notify {
				m.ep.Send(n, task.TagNotify, payload)
			}
		}
	}
}

// Close deregisters and stops the manager.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	watchDone := m.watchDone
	m.mu.Unlock()
	if watchDone != nil {
		close(watchDone)
		m.watchWG.Wait()
	}
	m.cat.Remove(naming.ServiceURN(ServiceName), rcds.AttrLocation, m.urn)
	m.ep.Close()
}

// hosts gathers the current host inventory from RC metadata. Catalog
// errors propagate — "this record is not a host" and "the catalog is
// unreachable" are different facts, and conflating them would have a
// partitioned RM serve placements from a silently shrinking inventory
// instead of failing so clients rotate to a reachable replica's RM.
func (m *Manager) hosts() ([]hostInfo, error) {
	urls, err := m.cat.URIs(naming.HostPrefix)
	if err != nil {
		return nil, fmt.Errorf("rm: host inventory: %w", err)
	}
	infos := make([]hostInfo, 0, len(urls))
	for _, url := range urls {
		durn, ok, err := m.cat.FirstValue(url, rcds.AttrHostDaemonURL)
		if err != nil {
			return nil, fmt.Errorf("rm: reading %s: %w", url, err)
		}
		if !ok {
			continue // not a SNIPE host record (withdrawn or foreign)
		}
		info := hostInfo{url: url, daemonURN: durn}
		if v, ok, err := m.cat.FirstValue(url, rcds.AttrArch); err != nil {
			return nil, fmt.Errorf("rm: reading %s: %w", url, err)
		} else if ok {
			info.arch = v
		}
		if v, ok, err := m.cat.FirstValue(url, rcds.AttrMemory); err != nil {
			return nil, fmt.Errorf("rm: reading %s: %w", url, err)
		} else if ok {
			info.memoryMB, _ = strconv.Atoi(v)
		}
		if load, ok := liveness.HostLoad(m.cat, url); ok {
			info.load = load
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// SelectHost picks the best host for the requirements: the paper's
// "selecting the actual resources in response to a request", using the
// load figures the daemons publish. Reserved slots count toward load
// so passive reservations steer later placements.
func (m *Manager) SelectHost(req task.Requirements) (hostURL, daemonURN string, err error) {
	infos, err := m.hosts()
	if err != nil {
		return "", "", err
	}
	m.mu.Lock()
	mon := m.mon
	m.mu.Unlock()
	candidates := infos[:0]
	for _, h := range infos {
		// Liveness filter: never place on a host the detector calls
		// suspect, dead, or cleanly departed. Unknown passes — a record
		// with no heartbeat history predates the monitor, not the host's
		// death.
		if mon != nil && !mon.State(h.url).Placeable() {
			continue
		}
		if req.Host != "" && req.Host != h.url {
			continue
		}
		if req.Arch != "" && req.Arch != h.arch {
			continue
		}
		if req.MinMemoryMB > 0 && req.MinMemoryMB > h.memoryMB {
			continue
		}
		candidates = append(candidates, h)
	}
	if len(candidates) == 0 {
		return "", "", fmt.Errorf("%w: %+v", ErrNoHosts, req)
	}
	m.mu.Lock()
	for i := range candidates {
		candidates[i].load += float64(m.reservations[candidates[i].url])
	}
	m.mu.Unlock()
	sort.SliceStable(candidates, func(i, j int) bool {
		return candidates[i].load < candidates[j].load
	})
	return candidates[0].url, candidates[0].daemonURN, nil
}

// Allocate is active-mode resource management: select a host and spawn
// the spec there via the host daemon, returning the new task URN.
func (m *Manager) Allocate(spec task.Spec) (string, error) {
	_, daemonURN, err := m.SelectHost(spec.Req)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	m.nextReqID++
	reqID := m.nextReqID
	m.mu.Unlock()
	return daemon.SpawnRemote(m.ep, daemonURN, spec, reqID, 10*time.Second)
}

// Reserve is passive-mode management: mark one slot on the host as
// spoken for, "allowing a process to reserve resources on a particular
// host, without actually providing the access" (§3.5).
func (m *Manager) Reserve(hostURL string) {
	m.mu.Lock()
	m.reservations[hostURL]++
	m.mu.Unlock()
}

// Release returns a reserved slot.
func (m *Manager) Release(hostURL string) {
	m.mu.Lock()
	if m.reservations[hostURL] > 0 {
		m.reservations[hostURL]--
	}
	m.mu.Unlock()
}

// Reserved reports outstanding reservations for a host.
func (m *Manager) Reserved(hostURL string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reservations[hostURL]
}

// SignalTask enforces resource policy on a running task (suspend,
// kill): the RM locates the task's host daemon via RC metadata and
// relays the signal — the paper's active-mode "suspend, kill, or ...
// migrate processes".
func (m *Manager) SignalTask(taskURN string, sig task.Signal) error {
	hostURL, ok, err := m.cat.FirstValue(taskURN, "host")
	if err != nil || !ok {
		return fmt.Errorf("rm: task %s has no host metadata: %w", taskURN, err)
	}
	daemonURN, ok, err := m.cat.FirstValue(hostURL, rcds.AttrHostDaemonURL)
	if err != nil || !ok {
		return fmt.Errorf("rm: host %s has no daemon: %w", hostURL, err)
	}
	return daemon.SignalRemote(m.ep, daemonURN, taskURN, sig)
}

// handle answers the RM message protocol.
func (m *Manager) handle(msg *comm.Message) {
	if msg.Tag != task.TagRM {
		return
	}
	d := xdr.NewDecoder(msg.Payload)
	reqID, err := d.Uint64()
	if err != nil {
		return
	}
	op, err := d.Uint8()
	if err != nil {
		return
	}
	e := xdr.NewEncoder(64)
	e.PutUint64(reqID)
	switch op {
	case opSelect:
		spec, err := task.DecodeSpec(d)
		var hostURL string
		if err == nil {
			hostURL, _, err = m.SelectHost(spec.Req)
		}
		putResult(e, hostURL, err)
	case opAllocate:
		spec, err := task.DecodeSpec(d)
		var urn string
		if err == nil {
			urn, err = m.Allocate(spec)
		}
		putResult(e, urn, err)
	case opReserve:
		host, err := d.StringMax(maxWireHost)
		if err == nil {
			m.Reserve(host)
		}
		putResult(e, host, err)
	case opRelease:
		host, err := d.StringMax(maxWireHost)
		if err == nil {
			m.Release(host)
		}
		putResult(e, host, err)
	case opSecureAllocate:
		m.handleSecure(d, e)
	default:
		putResult(e, "", fmt.Errorf("rm: unknown op %d", op))
	}
	m.ep.Send(msg.Src, task.TagRMResp, e.Bytes())
}

func putResult(e *xdr.Encoder, value string, err error) {
	e.PutBool(err == nil)
	if err != nil {
		e.PutString(err.Error())
	} else {
		e.PutString(value)
	}
}

// Client talks to the replicated resource-manager service, failing
// over between RMs — the redundancy experiment of E6.
type Client struct {
	cat naming.Catalog
	ep  *comm.Endpoint

	mu        sync.Mutex
	nextReqID uint64
	timeout   time.Duration
}

// NewClient builds an RM client over an existing endpoint.
func NewClient(cat naming.Catalog, ep *comm.Endpoint) *Client {
	return &Client{cat: cat, ep: ep, timeout: 5 * time.Second}
}

// SetTimeout adjusts the per-RM request timeout.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// managers returns the currently registered RM URNs.
func (c *Client) managers() ([]string, error) {
	return c.cat.Values(naming.ServiceURN(ServiceName), rcds.AttrLocation)
}

// request runs one op against the RM service with failover.
func (c *Client) request(op uint8, body func(*xdr.Encoder)) (string, error) {
	rms, err := c.managers()
	if err != nil {
		return "", err
	}
	if len(rms) == 0 {
		return "", ErrNoManagers
	}
	c.mu.Lock()
	timeout := c.timeout
	c.mu.Unlock()
	var lastErr error = ErrNoManagers
	for _, rmURN := range rms {
		c.mu.Lock()
		c.nextReqID++
		reqID := c.nextReqID
		c.mu.Unlock()
		e := xdr.NewEncoder(128)
		e.PutUint64(reqID)
		e.PutUint8(op)
		if body != nil {
			body(e)
		}
		if err := c.ep.Send(rmURN, task.TagRM, e.Bytes()); err != nil {
			lastErr = err
			continue
		}
		value, err := c.awaitResp(rmURN, reqID, timeout)
		if err == nil {
			return value, nil
		}
		lastErr = err
		if !errors.Is(err, comm.ErrTimeout) {
			return "", err // a real answer (e.g. ErrNoHosts): do not mask it
		}
	}
	return "", fmt.Errorf("%w (last: %v)", ErrNoManagers, lastErr)
}

func (c *Client) awaitResp(rmURN string, reqID uint64, timeout time.Duration) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		m, err := c.ep.RecvMatch(ctx, rmURN, task.TagRMResp)
		if err != nil {
			return "", err
		}
		d := xdr.NewDecoder(m.Payload)
		gotID, err := d.Uint64()
		if err != nil {
			return "", err
		}
		if gotID != reqID {
			continue
		}
		ok, err := d.Bool()
		if err != nil {
			return "", err
		}
		s, err := d.StringMax(maxWireHost)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("rm: %s", s)
		}
		return s, nil
	}
}

// Allocate spawns spec on the best host, via any live RM.
func (c *Client) Allocate(spec task.Spec) (string, error) {
	return c.request(opAllocate, func(e *xdr.Encoder) { spec.Encode(e) })
}

// SelectHost asks any live RM for a placement decision without
// spawning.
func (c *Client) SelectHost(req task.Requirements) (string, error) {
	spec := task.Spec{Req: req}
	return c.request(opSelect, func(e *xdr.Encoder) { spec.Encode(e) })
}

// Reserve makes a passive reservation on a host.
func (c *Client) Reserve(hostURL string) error {
	_, err := c.request(opReserve, func(e *xdr.Encoder) { e.PutString(hostURL) })
	return err
}

// Release drops a passive reservation.
func (c *Client) Release(hostURL string) error {
	_, err := c.request(opRelease, func(e *xdr.Encoder) { e.PutString(hostURL) })
	return err
}
