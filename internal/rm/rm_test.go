package rm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
	"snipe/internal/testutil"
)

type world struct {
	t     *testing.T
	store *rcds.Store
	cat   naming.Catalog
	reg   *task.Registry
}

func newWorld(t *testing.T) *world {
	s := rcds.NewStore("rm-test")
	reg := task.NewRegistry()
	reg.Register("idle", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	reg.Register("quick", func(ctx *task.Context) error { return nil })
	return &world{t: t, store: s, cat: naming.StoreCatalog(s), reg: reg}
}

func (w *world) daemon(host, arch string, memMB, cpus int) *daemon.Daemon {
	w.t.Helper()
	d := daemon.New(daemon.Config{
		HostName: host, Arch: arch, CPUs: cpus, MemoryMB: memMB,
		Catalog: w.cat, Registry: w.reg,
	})
	if err := d.Start(); err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(d.Close)
	return d
}

func (w *world) manager(name string) *Manager {
	w.t.Helper()
	m, err := NewManager(name, w.cat, nil)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(m.Close)
	return m
}

func (w *world) client(urn string) *Client {
	w.t.Helper()
	ep := comm.NewEndpoint(urn, comm.WithResolver(naming.NewResolver(w.cat)))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		w.t.Fatal(err)
	}
	naming.Register(w.cat, urn, []comm.Route{route})
	w.t.Cleanup(ep.Close)
	return NewClient(w.cat, ep)
}

func TestSelectHostFiltersAndRanks(t *testing.T) {
	w := newWorld(t)
	w.daemon("big", "go-sim", 4096, 8)
	w.daemon("small", "go-sim", 128, 1)
	w.daemon("sparc", "sparc-solaris", 2048, 4)
	m := w.manager("rm1")

	// Memory filter.
	host, _, err := m.SelectHost(task.Requirements{MinMemoryMB: 1024, Arch: "go-sim"})
	if err != nil || host != naming.HostURL("big") {
		t.Fatalf("memory filter: %q %v", host, err)
	}
	// Arch filter.
	host, _, err = m.SelectHost(task.Requirements{Arch: "sparc-solaris"})
	if err != nil || host != naming.HostURL("sparc") {
		t.Fatalf("arch filter: %q %v", host, err)
	}
	// Pinned host.
	host, _, err = m.SelectHost(task.Requirements{Host: naming.HostURL("small")})
	if err != nil || host != naming.HostURL("small") {
		t.Fatalf("pin: %q %v", host, err)
	}
	// Impossible request.
	if _, _, err := m.SelectHost(task.Requirements{Arch: "vax"}); !errors.Is(err, ErrNoHosts) {
		t.Fatalf("want ErrNoHosts, got %v", err)
	}
}

func TestSelectHostLoadBalancing(t *testing.T) {
	w := newWorld(t)
	d1 := w.daemon("h1", "go-sim", 512, 1)
	w.daemon("h2", "go-sim", 512, 1)
	m := w.manager("rm1")

	// Load h1 with running tasks and let its daemon publish the load.
	for i := 0; i < 3; i++ {
		if _, err := d1.Spawn(task.Spec{Program: "idle"}); err != nil {
			t.Fatal(err)
		}
	}
	testutil.WaitFor(t, 3*time.Second, func() bool {
		load, ok := liveness.HostLoad(w.cat, naming.HostURL("h1"))
		return ok && load == 3.0
	}, "load not published")
	host, _, err := m.SelectHost(task.Requirements{})
	if err != nil || host != naming.HostURL("h2") {
		t.Fatalf("load balancing: %q %v", host, err)
	}
}

func TestReservationsSteerPlacement(t *testing.T) {
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 1)
	w.daemon("h2", "go-sim", 512, 1)
	m := w.manager("rm1")

	// Reserve two slots on h1 (by name order it would win ties).
	m.Reserve(naming.HostURL("h1"))
	m.Reserve(naming.HostURL("h1"))
	if m.Reserved(naming.HostURL("h1")) != 2 {
		t.Fatal("reservation count")
	}
	host, _, err := m.SelectHost(task.Requirements{})
	if err != nil || host != naming.HostURL("h2") {
		t.Fatalf("reservations ignored: %q %v", host, err)
	}
	m.Release(naming.HostURL("h1"))
	m.Release(naming.HostURL("h1"))
	m.Release(naming.HostURL("h1")) // over-release is safe
	if m.Reserved(naming.HostURL("h1")) != 0 {
		t.Fatal("release")
	}
}

func TestManagerAllocateSpawns(t *testing.T) {
	w := newWorld(t)
	d := w.daemon("h1", "go-sim", 512, 2)
	m := w.manager("rm1")
	urn, err := m.Allocate(task.Spec{Program: "idle"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := d.TaskState(urn); err != nil || st != task.StateRunning {
		t.Fatalf("allocated task: %v %v", st, err)
	}
	if err := m.SignalTask(urn, task.SigKill); err != nil {
		t.Fatal(err)
	}
	if st, _ := d.WaitTask(urn, 5*time.Second); st != task.StateExited {
		t.Fatalf("after RM kill: %v", st)
	}
}

func TestClientAllocateViaService(t *testing.T) {
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 2)
	w.manager("rm1")
	c := w.client("urn:rmclient")
	urn, err := c.Allocate(task.Spec{Program: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(urn, "quick") {
		t.Fatalf("urn = %q", urn)
	}
	host, err := c.SelectHost(task.Requirements{})
	if err != nil || host != naming.HostURL("h1") {
		t.Fatalf("SelectHost: %q %v", host, err)
	}
	if err := c.Reserve(naming.HostURL("h1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(naming.HostURL("h1")); err != nil {
		t.Fatal(err)
	}
}

func TestClientFailoverBetweenManagers(t *testing.T) {
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 2)
	m1 := w.manager("rm1")
	w.manager("rm2")
	c := w.client("urn:rmclient")
	c.SetTimeout(time.Second)

	// Kill rm1; allocations must still succeed via rm2. Closing the
	// manager also removes its service registration, but we simulate a
	// crash (no deregistration) to exercise timeout failover too.
	m1.Close()
	urn, err := c.Allocate(task.Spec{Program: "quick"})
	if err != nil {
		t.Fatalf("failover allocate: %v", err)
	}
	if urn == "" {
		t.Fatal("empty urn")
	}
}

func TestClientCrashedManagerTimeoutFailover(t *testing.T) {
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 2)
	// A phantom RM registration pointing nowhere (simulated crash that
	// never deregistered), plus one live RM.
	w.cat.Add(naming.ServiceURN(ServiceName), rcds.AttrLocation, "urn:snipe:process:ghost:rm")
	w.manager("rm2")
	c := w.client("urn:rmclient")
	c.SetTimeout(500 * time.Millisecond)
	urn, err := c.Allocate(task.Spec{Program: "quick"})
	if err != nil {
		t.Fatalf("timeout failover: %v", err)
	}
	_ = urn
}

func TestClientNoManagers(t *testing.T) {
	w := newWorld(t)
	c := w.client("urn:rmclient")
	if _, err := c.Allocate(task.Spec{Program: "quick"}); !errors.Is(err, ErrNoManagers) {
		t.Fatalf("want ErrNoManagers, got %v", err)
	}
}

func TestClientPropagatesRealErrors(t *testing.T) {
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 2)
	w.manager("rm1")
	c := w.client("urn:rmclient")
	// No host has this arch: the RM answers with ErrNoHosts, which must
	// not be masked as ErrNoManagers.
	_, err := c.Allocate(task.Spec{Program: "quick", Req: task.Requirements{Arch: "cray"}})
	if err == nil || !strings.Contains(err.Error(), "no host satisfies") {
		t.Fatalf("got %v", err)
	}
}

func TestManagerCloseDeregisters(t *testing.T) {
	w := newWorld(t)
	m := w.manager("rm1")
	svc := naming.ServiceURN(ServiceName)
	if locs := w.store.Values(svc, rcds.AttrLocation); len(locs) != 1 {
		t.Fatalf("registered: %v", locs)
	}
	m.Close()
	if locs := w.store.Values(svc, rcds.AttrLocation); len(locs) != 0 {
		t.Fatalf("after close: %v", locs)
	}
	m.Close() // idempotent
}

// flakyCatalog wraps a Catalog and fails reads on command — the
// "catalog unreachable" case that hosts() used to swallow silently,
// conflating it with "not a host record" and answering placement
// queries from a truncated inventory.
type flakyCatalog struct {
	naming.Catalog
	failing bool
}

func (f *flakyCatalog) FirstValue(uri, name string) (string, bool, error) {
	if f.failing {
		return "", false, errors.New("replica unreachable")
	}
	return f.Catalog.FirstValue(uri, name)
}

func TestSelectHostPropagatesCatalogErrors(t *testing.T) {
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 1)
	fc := &flakyCatalog{Catalog: w.cat}
	m, err := NewManager("rm-flaky", fc, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	if _, _, err := m.SelectHost(task.Requirements{}); err != nil {
		t.Fatalf("healthy catalog: %v", err)
	}
	fc.failing = true
	_, _, err = m.SelectHost(task.Requirements{})
	if err == nil {
		t.Fatal("catalog failure swallowed: SelectHost answered from a truncated inventory")
	}
	if errors.Is(err, ErrNoHosts) {
		t.Fatalf("catalog failure misreported as ErrNoHosts: %v", err)
	}
	if !strings.Contains(err.Error(), "replica unreachable") {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestSelectHostFiltersUnplaceableHosts(t *testing.T) {
	w := newWorld(t)
	w.daemon("h1", "go-sim", 512, 1)
	w.daemon("h2", "go-sim", 512, 1)
	m := w.manager("rm1")

	mon := liveness.NewMonitor(w.cat, liveness.Options{
		CheckInterval: time.Hour, // manual transitions only
		MinSuspect:    time.Hour,
		MaxSuspect:    2 * time.Hour,
	})
	t.Cleanup(mon.Close)
	m.UseLiveness(mon)

	// By name order h1 wins ties; suspecting it must flip placement.
	mon.MarkSuspect(naming.HostURL("h1"), "test")
	host, _, err := m.SelectHost(task.Requirements{})
	if err != nil || host != naming.HostURL("h2") {
		t.Fatalf("suspect host not filtered: %q %v", host, err)
	}
	// Even an explicit pin refuses a suspect host.
	if _, _, err := m.SelectHost(task.Requirements{Host: naming.HostURL("h1")}); !errors.Is(err, ErrNoHosts) {
		t.Fatalf("pinned suspect host: %v", err)
	}
	// With both hosts unplaceable placement fails outright.
	mon.MarkSuspect(naming.HostURL("h2"), "test")
	if _, _, err := m.SelectHost(task.Requirements{}); !errors.Is(err, ErrNoHosts) {
		t.Fatalf("want ErrNoHosts with all hosts suspect, got %v", err)
	}
}
