package rm

import (
	"errors"
	"fmt"
	"time"

	"snipe/internal/naming"
	"snipe/internal/seckey"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

// Secure allocation implements the resource-manager side of the §4
// two-certificate protocol over the RM message protocol: the requester
// presents a user grant, the user's key certificate, a host
// attestation and the host's key certificate; the RM verifies both
// chains and the ACL, issues its own signed authorization, and only
// then allocates. The issued authorization is published as metadata of
// the spawned task so resource hosts can verify it (§4: the RM
// "transmits that statement to the hosts where the resources reside").

// opSecureAllocate extends the RM protocol.
const opSecureAllocate uint8 = 100

// AttrAuthorization is the assertion name under which a task's RM
// authorization is published.
const AttrAuthorization = "rm-authorization"

// ErrNoAuthorizer indicates secure allocation on an RM without a
// configured authorizer.
var ErrNoAuthorizer = errors.New("rm: no authorizer configured")

// SetAuthorizer enables secure allocation, making this RM a
// certificate-verifying allocator (and, per §4, typically the CA for
// its users and hosts).
func (m *Manager) SetAuthorizer(a *seckey.Authorizer) {
	m.mu.Lock()
	m.authorizer = a
	m.mu.Unlock()
}

// SecureRequest bundles the §4 credentials with a spawn spec.
type SecureRequest struct {
	Spec     task.Spec
	Grant    *seckey.UserGrant
	UserCert *seckey.KeyCertificate
	Att      *seckey.HostAttestation
	HostCert *seckey.KeyCertificate
}

// Encode serialises the request.
func (r *SecureRequest) Encode(e *xdr.Encoder) {
	r.Spec.Encode(e)
	r.Grant.Encode(e)
	r.UserCert.Encode(e)
	r.Att.Encode(e)
	r.HostCert.Encode(e)
}

// DecodeSecureRequest reads a request written by Encode.
func DecodeSecureRequest(d *xdr.Decoder) (*SecureRequest, error) {
	var r SecureRequest
	var err error
	if r.Spec, err = task.DecodeSpec(d); err != nil {
		return nil, err
	}
	var s *seckey.Statement
	if s, err = seckey.DecodeStatement(d); err != nil {
		return nil, err
	}
	r.Grant = &seckey.UserGrant{Statement: s}
	if s, err = seckey.DecodeStatement(d); err != nil {
		return nil, err
	}
	r.UserCert = &seckey.KeyCertificate{Statement: s}
	if s, err = seckey.DecodeStatement(d); err != nil {
		return nil, err
	}
	r.Att = &seckey.HostAttestation{Statement: s}
	if s, err = seckey.DecodeStatement(d); err != nil {
		return nil, err
	}
	r.HostCert = &seckey.KeyCertificate{Statement: s}
	return &r, nil
}

// SecureAllocate verifies the credentials and, on success, allocates
// the spec and publishes the RM's authorization as task metadata.
func (m *Manager) SecureAllocate(req *SecureRequest, now uint64) (string, error) {
	m.mu.Lock()
	auth := m.authorizer
	m.mu.Unlock()
	if auth == nil {
		return "", ErrNoAuthorizer
	}
	authorization, err := auth.Authorize(req.Grant, req.UserCert, req.Att, req.HostCert, now)
	if err != nil {
		return "", fmt.Errorf("rm: authorization refused: %w", err)
	}
	urn, err := m.Allocate(req.Spec)
	if err != nil {
		return "", err
	}
	e := xdr.NewEncoder(256)
	authorization.Encode(e)
	if err := m.cat.Add(urn, AttrAuthorization, string(e.Bytes())); err != nil {
		return urn, err
	}
	return urn, nil
}

// handleSecure answers opSecureAllocate (called from handle).
func (m *Manager) handleSecure(d *xdr.Decoder, e *xdr.Encoder) {
	req, err := DecodeSecureRequest(d)
	var urn string
	if err == nil {
		urn, err = m.SecureAllocate(req, uint64(time.Now().Unix()))
	}
	putResult(e, urn, err)
}

// SecureAllocate is the client side: present credentials with the
// spec.
func (c *Client) SecureAllocate(req *SecureRequest) (string, error) {
	return c.request(opSecureAllocate, func(e *xdr.Encoder) { req.Encode(e) })
}

// VerifyTaskAuthorization lets a resource host check the published
// authorization of a task against the RMs it trusts (§4's final
// verification step). now is the verifier's logical time.
func VerifyTaskAuthorization(cat naming.Catalog, trust *seckey.TrustStore, taskURN string, now uint64) error {
	vals, err := cat.Values(taskURN, AttrAuthorization)
	if err != nil {
		return err
	}
	if len(vals) == 0 {
		return fmt.Errorf("rm: %s has no published authorization", taskURN)
	}
	var lastErr error
	for _, v := range vals {
		d := xdr.NewDecoder([]byte(v))
		s, err := seckey.DecodeStatement(d)
		if err != nil {
			lastErr = err
			continue
		}
		if err := seckey.VerifyAuthorization(trust, &seckey.Authorization{Statement: s}, now); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("rm: no verifiable authorization for %s: %w", taskURN, lastErr)
}
