package stats

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sent")
	c.Inc()
	c.Add(4)
	if got := r.Counter("sent").Value(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	g := r.Gauge("load")
	g.Set(0.75)
	if got := r.Gauge("load").Value(); got != 0.75 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i)) // uniform 1..100
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// 10 values ≤ 10, 90 in (10,100], none beyond.
	if s.Counts[0] != 10 || s.Counts[1] != 90 || s.Counts[2] != 0 || s.Counts[3] != 0 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if mean := s.Mean(); math.Abs(mean-50.5) > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
	// p50 of uniform 1..100 interpolates inside the (10,100] bucket.
	p50 := s.Quantile(0.5)
	if p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %v", p50)
	}
	if q := s.Quantile(1.0); q != 100 {
		t.Fatalf("p100 = %v", q)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(50)
	s := h.snapshot()
	if s.Counts[2] != 1 {
		t.Fatalf("overflow counts = %v", s.Counts)
	}
	if q := s.Quantile(0.99); q != 50 {
		t.Fatalf("overflow quantile = %v", q)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(2.5)
	r.Histogram("c", LatencyBucketsUs).Observe(123)
	b, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["a"] != 7 || s.Gauges["b"] != 2.5 || s.Histograms["c"].Count != 1 {
		t.Fatalf("round trip: %+v", s)
	}
}

func TestPrefixedAndMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("sent").Add(3)
	b := NewRegistry()
	b.Counter("sent").Add(4)
	b.Histogram("lat", SizeBuckets).Observe(64)
	m := Merge(a.Snapshot().Prefixed("comm"), b.Snapshot().Prefixed("daemon"))
	if m.Counters["comm.sent"] != 3 || m.Counters["daemon.sent"] != 4 {
		t.Fatalf("merge: %+v", m.Counters)
	}
	if m.Histograms["daemon.lat"].Count != 1 {
		t.Fatalf("merge hist: %+v", m.Histograms)
	}
	if m.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestConcurrentObservers(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LatencyBucketsUs)
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(float64(seed*1000 + i))
				c.Inc()
			}
		}(w)
	}
	// Snapshot concurrently with writers.
	for i := 0; i < 50; i++ {
		r.Snapshot()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 16000 || s.Histograms["lat"].Count != 16000 {
		t.Fatalf("lost updates: %+v", s.Counters)
	}
}
