//go:build go1.18

package stats

import "testing"

func FuzzParseSnapshot(f *testing.F) {
	r := NewRegistry()
	r.Counter("send_total").Inc()
	r.Gauge("queue_depth").Set(3)
	r.Histogram("rtt_ms", []float64{1, 10, 100}).Observe(4)
	b, _ := r.Snapshot().JSON()
	f.Add(b)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":{"x":18446744073709551615}}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := ParseSnapshot(b)
		if err != nil {
			return
		}
		// A parsed snapshot must survive re-marshalling.
		b2, err := s.JSON()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if _, err := ParseSnapshot(b2); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}
