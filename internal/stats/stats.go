// Package stats is SNIPE's operational telemetry substrate: atomic
// counters, gauges, and fixed-bucket histograms collected into named
// registries with JSON-serialisable snapshots.
//
// The paper's console is the human window into a running metacomputer
// (§3.7), and the evaluation is built on quantified hot-path behaviour
// (Fig. 1, §6). This package gives every subsystem — the comm
// substrate, the RC catalogs, the host daemons, the media emulation —
// one dependency-free way to count and time what it does, so a live
// daemon can be inspected over the wire and benchmark runs leave a
// machine-readable trajectory behind.
//
// All mutation paths are lock-free (sync/atomic); registries take a
// lock only when creating or snapshotting metrics, so instrumenting a
// hot path costs one atomic add.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (queue depths, smoothed RTT,
// load figures).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets defined by
// ascending upper bounds; values above the last bound land in an
// overflow bucket. Observation is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sumμ   atomic.Uint64 // sum in micro-units to keep atomic adds integral
	min    atomic.Uint64 // math.Float64bits, CAS-updated
	max    atomic.Uint64
}

// sumScale converts observed values to integral micro-units for the
// atomic sum. Good to ~1e13 observations of unit scale.
const sumScale = 1e6

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds. The bounds slice is not copied and must not be
// modified.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sumμ.Add(uint64(v * sumScale))
	}
	for {
		cur := h.min.Load()
		if v >= math.Float64frombits(cur) || h.min.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= math.Float64frombits(cur) || h.max.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    float64(h.sumμ.Load()) / sumScale,
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
	}
	return s
}

// HistogramSnapshot is the JSON-portable state of a histogram.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Mean returns the average observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket. The overflow bucket
// reports the observed maximum.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	lower := 0.0
	if len(s.Bounds) > 0 && s.Min < s.Bounds[0] && s.Min > 0 {
		lower = s.Min
	}
	for i, c := range s.Counts {
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		if float64(c)+seen >= rank && c > 0 {
			if i == len(s.Bounds) { // overflow bucket
				return s.Max
			}
			upper := s.Bounds[i]
			frac := (rank - seen) / float64(c)
			// Clamp: interpolation against bucket bounds must not step
			// outside the observed range.
			v := lower + frac*(upper-lower)
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
		seen += float64(c)
	}
	return s.Max
}

// Summary renders a compact human-readable digest.
func (s HistogramSnapshot) Summary() string {
	if s.Count == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Max)
}

// Standard bucket sets. Bounds are ascending upper bounds.
var (
	// LatencyBucketsUs spans 1 µs to ~10 s, exponentially: message and
	// RPC latencies across loopback, LAN and WAN paths.
	LatencyBucketsUs = expBuckets(1, 2, 24)
	// SizeBuckets spans 16 B to 16 MB: message and fragment sizes.
	SizeBuckets = expBuckets(16, 2, 21)
)

// expBuckets returns n ascending bounds: start, start·factor, ...
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a namespace of metrics. Metric accessors create on first
// use and are safe for concurrent callers; hot paths should capture the
// returned pointer once rather than re-looking-up by name.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds if needed (bounds are ignored for an existing histogram).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.ctrs)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, the unit that
// crosses the wire (as JSON) between daemons and consoles.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// JSON marshals the snapshot.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// ParseSnapshot unmarshals a snapshot produced by JSON.
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	err := json.Unmarshal(b, &s)
	return s, err
}

// Prefixed returns a copy with every metric name prefixed
// "prefix.name" — how subsystem registries compose into one snapshot.
func (s Snapshot) Prefixed(prefix string) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[prefix+"."+k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[prefix+"."+k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[prefix+"."+k] = v
	}
	return out
}

// Merge combines snapshots; on name collisions counters add, gauges and
// histograms take the later snapshot's value.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			out.Histograms[k] = v
		}
	}
	return out
}

// Render produces a sorted, aligned, human-readable listing — the
// console's text view of a snapshot.
func (s Snapshot) Render() string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-44s %d\n", k, s.Counters[k])
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-44s %.2f\n", k, s.Gauges[k])
	}
	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-44s %s\n", k, s.Histograms[k].Summary())
	}
	return b.String()
}
