package comm

import (
	"sync"
	"time"
)

// Acknowledgement coalescing. A striped transfer generates one
// per-fragment ack per received fragment; at 64 KiB fragments a
// 64 MiB message produces a thousand reverse-path frames, each paying
// full framing and syscall cost. The coalescer batches a connection's
// outgoing acks into frameAckBatch/frameFragAckBatch frames:
//
//   - per-fragment acks accumulate until the batch fills (ackBatchMax)
//     or the flush timer fires (Endpoint.ackFlush);
//   - end-to-end acks flush the connection's pending acks immediately,
//     so single-message traffic sees no added ack latency — the
//     coalescer only defers the high-rate per-fragment stream;
//   - a batch of one encodes as the legacy single-ack frame, so a pair
//     of endpoints exchanging sparse acks produces pre-batching wire
//     traffic (and stays readable to older decoders).
//
// Each readLoop owns one coalescer for its connection; stop() flushes
// any stragglers when the connection dies.

// defaultAckFlush is the default coalescing window for per-fragment
// acks: long enough to batch a burst of fragments from one window,
// short enough to never stall the sender's in-flight window (fragment
// RTTs are hundreds of microseconds on local media at minimum).
const defaultAckFlush = 200 * time.Microsecond

// ackBatchMax caps the entries in one batched ack frame; a full batch
// flushes immediately rather than waiting out the timer.
const ackBatchMax = 64

type ackCoalescer struct {
	e     *Endpoint
	conn  FrameConn
	flush time.Duration

	mu         sync.Mutex
	acks       []ackRef // pending end-to-end acks (normally flushed same-call)
	frags      []ackRef // pending per-fragment acks
	timer      *time.Timer
	timerArmed bool
	stopped    bool
}

func newAckCoalescer(e *Endpoint, conn FrameConn) *ackCoalescer {
	a := &ackCoalescer{e: e, conn: conn, flush: e.ackFlush}
	a.timer = time.AfterFunc(time.Hour, a.timerFlush)
	a.timer.Stop()
	return a
}

// ack queues one end-to-end acknowledgement and flushes the
// connection's pending acks (fragment acks for the same message
// included, ordered before it).
func (a *ackCoalescer) ack(src, dst string, seq uint64) {
	a.mu.Lock()
	a.acks = append(a.acks, ackRef{src: src, dst: dst, seq: seq})
	frames := a.takeLocked()
	a.mu.Unlock()
	a.send(frames)
}

// fragAck queues one per-fragment acknowledgement, flushing when the
// batch fills; otherwise the flush timer (armed on the first pending
// entry) bounds how long it waits.
func (a *ackCoalescer) fragAck(src, dst string, seq uint64, fragIdx uint32) {
	a.mu.Lock()
	a.frags = append(a.frags, ackRef{src: src, dst: dst, seq: seq, fragIdx: fragIdx})
	if len(a.frags) >= ackBatchMax || a.flush <= 0 || a.stopped {
		frames := a.takeLocked()
		a.mu.Unlock()
		a.send(frames)
		return
	}
	if !a.timerArmed {
		a.timerArmed = true
		a.timer.Reset(a.flush)
	}
	a.mu.Unlock()
}

// timerFlush is the AfterFunc body.
func (a *ackCoalescer) timerFlush() {
	a.mu.Lock()
	frames := a.takeLocked()
	a.mu.Unlock()
	a.send(frames)
}

// stop flushes anything pending and disarms the timer; the readLoop
// calls it as the connection dies (late sends fail harmlessly — acks
// are retransmission-driven, the peer simply retries).
func (a *ackCoalescer) stop() {
	a.mu.Lock()
	a.stopped = true
	frames := a.takeLocked()
	a.mu.Unlock()
	a.timer.Stop()
	a.send(frames)
}

// takeLocked drains the pending acks into encoded frames. Caller holds
// a.mu; encoding under the lock keeps batch composition atomic, while
// conn.Send happens outside it (see send).
func (a *ackCoalescer) takeLocked() [][]byte {
	if a.timerArmed {
		a.timerArmed = false
		a.timer.Stop()
	}
	var frames [][]byte
	// Fragment acks go out before end-to-end acks: a message's final
	// fragment ack precedes its completion ack, matching the
	// pre-batching wire order.
	if n := len(a.frags); n > 0 {
		if n == 1 {
			f := a.frags[0]
			frames = append(frames, encodeFragAck(f.src, f.dst, f.seq, f.fragIdx))
		} else {
			enc := getFrameEncoder()
			frames = append(frames, append([]byte(nil), encodeAckBatchInto(enc, frameFragAckBatch, a.frags)...))
			putFrameEncoder(enc)
			a.e.mAckBatches.Inc()
			a.e.mAcksBatched.Add(uint64(n))
		}
		a.frags = a.frags[:0]
	}
	if n := len(a.acks); n > 0 {
		if n == 1 {
			f := a.acks[0]
			frames = append(frames, encodeAck(f.src, f.dst, f.seq))
		} else {
			enc := getFrameEncoder()
			frames = append(frames, append([]byte(nil), encodeAckBatchInto(enc, frameAckBatch, a.acks)...))
			putFrameEncoder(enc)
			a.e.mAckBatches.Inc()
			a.e.mAcksBatched.Add(uint64(n))
		}
		a.acks = a.acks[:0]
	}
	return frames
}

// send writes drained frames outside the coalescer lock. Errors are
// ignored: a dead connection loses acks the same way a dead wire
// would, and the sender's retransmission recovers.
func (a *ackCoalescer) send(frames [][]byte) {
	for _, f := range frames {
		a.conn.Send(f)
	}
}
