package comm

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// streamPair wires two endpoints with muxes over loopback TCP.
func streamPair(t *testing.T, opts ...StreamMuxOption) (*StreamMux, *StreamMux) {
	t.Helper()
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:stream:a", res)
	b := newTestEndpoint(t, "urn:stream:b", res)
	ma := NewStreamMux(a, opts...)
	mb := NewStreamMux(b, opts...)
	t.Cleanup(ma.Close)
	t.Cleanup(mb.Close)
	return ma, mb
}

func TestStreamRoundTrip(t *testing.T) {
	ma, mb := streamPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	s, err := ma.Open(ctx, "urn:stream:b", "echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseWrite(); err != nil {
		t.Fatal(err)
	}

	srv, err := mb.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Method() != "echo" {
		t.Fatalf("method = %q", srv.Method())
	}
	if srv.Peer() != "urn:stream:a" {
		t.Fatalf("peer = %q", srv.Peer())
	}
	var req []byte
	for {
		chunk, err := srv.Read(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		req = append(req, chunk...)
	}
	if string(req) != "ping" {
		t.Fatalf("request = %q", req)
	}
	if err := srv.Write(ctx, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if err := srv.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Read(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "pong" {
		t.Fatalf("response = %q", resp)
	}
	if _, err := s.Read(ctx); err != io.EOF {
		t.Fatalf("after close: %v", err)
	}
	// Both directions closed on both sides: the muxes reap the streams.
	waitFor(t, 3*time.Second, func() bool {
		return ma.ActiveStreams() == 0 && mb.ActiveStreams() == 0
	}, "streams not reaped after close")
}

func TestStreamLargePayloadChunks(t *testing.T) {
	// A payload much larger than the chunk size arrives intact and in
	// order, as multiple DATA messages.
	ma, mb := streamPair(t, WithStreamChunk(8<<10), WithStreamWindow(64<<10))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	payload := make([]byte, 100<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	s, err := ma.Open(ctx, "urn:stream:b", "bulk")
	if err != nil {
		t.Fatal(err)
	}
	writeDone := make(chan error, 1)
	go func() {
		if err := s.Write(ctx, payload); err != nil {
			writeDone <- err
			return
		}
		writeDone <- s.CloseWrite()
	}()

	srv, err := mb.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		chunk, err := srv.Read(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
	}
	if err := <-writeDone; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestStreamWindowExhaustion(t *testing.T) {
	// With a window of one chunk, the writer cannot run ahead of the
	// reader: the second chunk blocks until the first is consumed.
	ma, mb := streamPair(t, WithStreamChunk(1<<10), WithStreamWindow(1<<10))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	s, err := ma.Open(ctx, "urn:stream:b", "slow")
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 1<<10)
	if err := s.Write(ctx, chunk); err != nil {
		t.Fatal(err)
	}

	// The window is now exhausted; a bounded write must time out.
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	err = s.Write(shortCtx, chunk)
	shortCancel()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("write beyond window: %v, want ErrTimeout", err)
	}

	// Consuming on the reader side grants credit and unblocks.
	srv, err := mb.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Read(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, chunk); err != nil {
		t.Fatalf("write after credit grant: %v", err)
	}
}

func TestStreamHalfClose(t *testing.T) {
	// After CloseWrite the closer can still read: the classic
	// request/response shape with a streamed response.
	ma, mb := streamPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	s, err := ma.Open(ctx, "urn:stream:b", "half")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, []byte("req")); err != nil {
		t.Fatal(err)
	}
	if err := s.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, []byte("more")); !errors.Is(err, ErrStreamReset) {
		t.Fatalf("write after CloseWrite: %v", err)
	}

	srv, err := mb.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Read(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Read(ctx); err != io.EOF {
		t.Fatalf("read after peer half-close: %v", err)
	}
	// The server side still writes freely.
	for i := 0; i < 3; i++ {
		if err := srv.Write(ctx, []byte("part")); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		chunk, err := s.Read(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += len(chunk)
	}
	if n != 12 {
		t.Fatalf("streamed response bytes = %d, want 12", n)
	}
}

func TestStreamCancelMidStream(t *testing.T) {
	// A canceled reader context aborts the pending Read without killing
	// the stream; an explicit Reset then kills it for both sides.
	ma, mb := streamPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	s, err := ma.Open(ctx, "urn:stream:b", "cancel")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	srv, err := mb.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Read(ctx); err != nil {
		t.Fatal(err)
	}

	readCtx, readCancel := context.WithCancel(context.Background())
	readErr := make(chan error, 1)
	go func() {
		_, err := srv.Read(readCtx)
		readErr <- err
	}()
	readCancel()
	if err := <-readErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled read: %v", err)
	}

	// The stream survives the canceled call...
	if err := s.Write(ctx, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Read(ctx); err != nil {
		t.Fatalf("stream dead after canceled read: %v", err)
	}

	// ...until the client resets it; the server's next read fails.
	s.Reset("client gave up")
	if _, err := srv.Read(ctx); !errors.Is(err, ErrStreamReset) {
		t.Fatalf("read after reset: %v", err)
	}
	if _, err := s.Read(ctx); !errors.Is(err, ErrStreamReset) {
		t.Fatalf("local read after reset: %v", err)
	}
}

func TestStreamDrainRejectsNewStreams(t *testing.T) {
	ma, mb := streamPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// An established stream keeps flowing through a drain.
	s, err := ma.Open(ctx, "urn:stream:b", "old")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, []byte("before")); err != nil {
		t.Fatal(err)
	}
	srv, err := mb.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}

	mb.Drain()
	if !mb.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	// New opens are reset with the drain marker.
	s2, err := ma.Open(ctx, "urn:stream:b", "new")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Read(ctx); !errors.Is(err, ErrDraining) {
		t.Fatalf("open against draining mux: %v", err)
	}

	// The pre-drain stream still works both ways.
	if _, err := srv.Read(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Write(ctx, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMuxCloseFailsStreams(t *testing.T) {
	ma, mb := streamPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	s, err := ma.Open(ctx, "urn:stream:b", "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Accept(ctx); err != nil {
		t.Fatal(err)
	}
	ma.Close()
	if _, err := s.Read(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after mux close: %v", err)
	}
	if err := s.Write(ctx, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after mux close: %v", err)
	}
}
