package comm

import (
	"context"
	"testing"
	"time"

	"snipe/internal/testutil"
)

// Timeout-flavoured conveniences over the context-first Endpoint API,
// so tests can say "within d" without building a context at every call
// site. (The production timeout-signature wrappers were removed once
// snipe-lint's ctxfirst barred new callers.)

func recvT(e *Endpoint, d time.Duration) (*Message, error) {
	return recvMatchT(e, "", AnyTag, d)
}

func recvMatchT(e *Endpoint, src string, tag uint32, d time.Duration) (*Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return e.RecvMatch(ctx, src, tag)
}

func sendWaitT(e *Endpoint, dst string, tag uint32, payload []byte, d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return e.SendWait(ctx, dst, tag, payload)
}

// waitFor is testutil.WaitFor under the package-local name the comm
// tests grew up with.
func waitFor(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	testutil.WaitFor(t, d, cond, msg)
}
