package comm

import (
	"context"
	"testing"
	"time"
)

// Timeout-flavoured conveniences over the context-first Endpoint API,
// so tests can say "within d" without building a context at every call
// site. (The production timeout-signature wrappers were removed once
// snipe-lint's ctxfirst barred new callers.)

func recvT(e *Endpoint, d time.Duration) (*Message, error) {
	return recvMatchT(e, "", AnyTag, d)
}

func recvMatchT(e *Endpoint, src string, tag uint32, d time.Duration) (*Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return e.RecvMatch(ctx, src, tag)
}

func sendWaitT(e *Endpoint, dst string, tag uint32, payload []byte, d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return e.SendWait(ctx, dst, tag, payload)
}

// waitFor polls cond until it holds or d elapses, failing the test
// with msg on expiry. Bounded condition polling replaces the fixed
// sleeps that made timing-sensitive tests flake on loaded machines: a
// fast machine passes in microseconds, a slow one gets the whole
// budget.
func waitFor(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v: %s", d, msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
