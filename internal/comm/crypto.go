package comm

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"snipe/internal/seckey"
)

// The paper's client library supports "optionally encryption" (§3.4)
// and §4 describes maintaining authenticated connections keyed by a
// shared secret instead of signing every message. EncryptedConn
// provides both properties for any FrameConn: frames are sealed with
// AES-256-GCM under a per-connection key derived from the shared
// secret, giving confidentiality, integrity and replay protection
// (monotonic nonces) — the modern equivalent of the paper's
// TLS-with-RC-metadata-certificates plan (substitution note in
// DESIGN.md).

// ErrDecrypt indicates a frame failing authentication or decryption.
var ErrDecrypt = errors.New("comm: frame decryption failed")

// encryptedConn wraps a FrameConn with AEAD sealing.
type encryptedConn struct {
	inner FrameConn
	aead  cipher.AEAD
	// Nonce prefix disambiguates the two directions; each side seals
	// with its own random prefix carried on the frame.
}

// NewEncryptedConn seals every frame of inner under a key derived from
// secret and label (use the same label on both ends of a connection).
func NewEncryptedConn(inner FrameConn, secret []byte, label string) (FrameConn, error) {
	key := seckey.MACKey(secret, "frame-cipher:"+label)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("comm: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("comm: gcm: %w", err)
	}
	return &encryptedConn{inner: inner, aead: aead}, nil
}

func (c *encryptedConn) Send(frame []byte) error {
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return fmt.Errorf("comm: nonce: %w", err)
	}
	sealed := c.aead.Seal(nonce, nonce, frame, nil)
	return c.inner.Send(sealed)
}

func (c *encryptedConn) Recv() ([]byte, error) {
	sealed, err := c.inner.Recv()
	if err != nil {
		return nil, err
	}
	ns := c.aead.NonceSize()
	if len(sealed) < ns {
		putPayloadBuf(sealed)
		return nil, ErrDecrypt
	}
	plain, err := c.aead.Open(nil, sealed[:ns], sealed[ns:], nil)
	// The ciphertext buffer came from the inner conn's receive pool and
	// is fully consumed by Open (which writes into a fresh plaintext
	// buffer), so it recycles here regardless of the outcome.
	putPayloadBuf(sealed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return plain, nil
}

func (c *encryptedConn) Close() error { return c.inner.Close() }

// MTU subtracts the nonce and AEAD tag overhead.
func (c *encryptedConn) MTU() int {
	return c.inner.MTU() - c.aead.NonceSize() - c.aead.Overhead()
}

func (c *encryptedConn) RemoteAddr() string { return c.inner.RemoteAddr() + "+aead" }

// EncryptedTransport wraps a transport so that every connection it
// produces is sealed under the shared secret. Register it under a
// distinct name (conventionally "<inner>+tls") and advertise routes
// with that transport; both ends must share the secret.
type EncryptedTransport struct {
	Inner  Transport
	Secret []byte
}

// Name implements Transport.
func (t EncryptedTransport) Name() string { return t.Inner.Name() + "+tls" }

// Listen implements Transport.
func (t EncryptedTransport) Listen(addr string) (Listener, error) {
	ln, err := t.Inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return encryptedListener{ln: ln, secret: t.Secret, label: t.Name()}, nil
}

// Dial implements Transport.
func (t EncryptedTransport) Dial(addr string) (FrameConn, error) {
	conn, err := t.Inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	ec, err := NewEncryptedConn(conn, t.Secret, t.Name())
	if err != nil {
		conn.Close()
		return nil, err
	}
	return ec, nil
}

type encryptedListener struct {
	ln     Listener
	secret []byte
	label  string
}

func (l encryptedListener) Accept() (FrameConn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	ec, err := NewEncryptedConn(conn, l.secret, l.label)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return ec, nil
}

func (l encryptedListener) Addr() string { return l.ln.Addr() }
func (l encryptedListener) Close() error { return l.ln.Close() }
