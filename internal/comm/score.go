package comm

import (
	"sort"
	"time"
)

// Adaptive route scoring. The paper's static policy (§5.3: shared
// private network first, then the advertised media profile) decides
// which routes are *eligible* first; within each eligibility class the
// endpoint now ranks routes by what it has actually observed on them:
// exponentially weighted moving averages of ack round-trip time,
// goodput, and error rate, fed by the same events that drive the
// internal/stats counters. Routes with no history fall back to their
// advertised RateBps/LatencyUs, so a fresh endpoint behaves exactly
// like the static OrderRoutes policy until evidence accumulates.

// scoreMinSamples is how many observations a route needs before its
// measured RTT/goodput displace the advertised media profile.
const scoreMinSamples = 3

// routeEWMA is the per-route moving state behind RouteScores. All
// fields are guarded by Endpoint.scoreMu.
type routeEWMA struct {
	rttUs      float64 // EWMA of observed ack RTT, µs
	goodputBps float64 // EWMA of observed goodput, bytes/sec
	errRate    float64 // EWMA of attempt failure rate, 0..1
	samples    uint64  // successful observations folded in
	errors     uint64  // cumulative send failures on this route
}

// observeRouteAck folds one successful acknowledgement into the
// route's EWMAs: bytes acknowledged and the elapsed send→ack time.
func (e *Endpoint) observeRouteAck(routeKey string, bytes int, elapsed time.Duration) {
	if routeKey == "" || elapsed <= 0 {
		return
	}
	rttUs := float64(elapsed.Microseconds())
	if rttUs <= 0 {
		rttUs = 1
	}
	bps := float64(bytes) / elapsed.Seconds()
	e.scoreMu.Lock()
	s := e.scoreFor(routeKey)
	a := e.scoreAlpha
	if s.samples == 0 {
		s.rttUs, s.goodputBps = rttUs, bps
	} else {
		s.rttUs += a * (rttUs - s.rttUs)
		s.goodputBps += a * (bps - s.goodputBps)
	}
	s.errRate *= 1 - a // success decays the failure estimate
	s.samples++
	e.scoreMu.Unlock()
}

// observeRouteError folds one send failure into the route's error-rate
// EWMA; a failing route's score collapses quadratically (see
// routeScoreLocked) so retries drain to healthier paths.
func (e *Endpoint) observeRouteError(routeKey string) {
	if routeKey == "" {
		return
	}
	e.scoreMu.Lock()
	s := e.scoreFor(routeKey)
	s.errRate += e.scoreAlpha * (1 - s.errRate)
	s.errors++
	e.scoreMu.Unlock()
}

// scoreFor returns (creating if needed) the EWMA state for a route
// key. Caller holds e.scoreMu.
func (e *Endpoint) scoreFor(routeKey string) *routeEWMA {
	s, ok := e.scores[routeKey]
	if !ok {
		s = &routeEWMA{}
		e.scores[routeKey] = s
	}
	return s
}

// routeScoreLocked computes a route's scalar preference:
//
//	score = capacity × (1 − errRate)² / (1 + latency_µs / 10 000)
//
// where capacity (bytes/sec) and latency come from the route's EWMAs
// once scoreMinSamples observations exist, and from the advertised
// RateBps/LatencyUs before that. Higher is better. Caller holds
// e.scoreMu.
func (e *Endpoint) routeScoreLocked(r Route) float64 {
	s := e.scores[r.String()]
	capacity := r.RateBps / 8 // advertised bits/sec → bytes/sec prior
	latUs := r.LatencyUs
	errRate := 0.0
	if s != nil {
		errRate = s.errRate
		if s.samples >= scoreMinSamples {
			capacity = s.goodputBps
			latUs = s.rttUs
		}
	}
	if capacity <= 0 {
		capacity = 1e6 // unknown media: assume ~8 Mbit/s
	}
	if latUs < 0 {
		latUs = 0
	}
	healthy := 1 - errRate
	return capacity * healthy * healthy / (1 + latUs/1e4)
}

// orderRoutesAdaptive ranks candidate routes best-first: the §5.3
// shared-private-network preference partitions them exactly as the
// static OrderRoutes does, then each partition is ordered by the
// adaptive score. With no observed history the score reduces to the
// advertised profile, preserving the static ordering.
func (e *Endpoint) orderRoutesAdaptive(local, remote []Route) []Route {
	ordered := OrderRoutes(local, remote)
	localNets := make(map[string]bool, len(local))
	for _, r := range local {
		if r.NetName != "" {
			localNets[r.NetName] = true
		}
	}
	type scored struct {
		route  Route
		shared bool
		score  float64
	}
	ranked := make([]scored, len(ordered))
	e.scoreMu.Lock()
	for i, r := range ordered {
		ranked[i] = scored{
			route:  r,
			shared: r.NetName != "" && localNets[r.NetName],
			score:  e.routeScoreLocked(r),
		}
	}
	e.scoreMu.Unlock()
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].shared != ranked[j].shared {
			return ranked[i].shared
		}
		return ranked[i].score > ranked[j].score
	})
	out := make([]Route, len(ranked))
	for i, s := range ranked {
		out[i] = s.route
	}
	return out
}

// RouteScore is one route's adaptive-scoring state, as exported by
// RouteScores and surfaced by the multipath benchmark artifact.
type RouteScore struct {
	Route      string  `json:"route"`       // route key (Route.String form)
	Score      float64 `json:"score"`       // scalar preference, higher is better
	RTTUs      float64 `json:"rtt_us"`      // EWMA ack round-trip time, µs
	GoodputBps float64 `json:"goodput_bps"` // EWMA observed goodput, bytes/sec
	ErrRate    float64 `json:"err_rate"`    // EWMA failure rate, 0..1
	Samples    uint64  `json:"samples"`     // acks folded into the EWMAs
	Errors     uint64  `json:"errors"`      // cumulative send failures
}

// RouteScores reports the endpoint's per-route adaptive-scoring state,
// sorted by route key. The scalar Score column is computed with no
// advertised-profile prior (routes the endpoint has never used score
// from defaults), so it is primarily useful for routes with Samples>0.
func (e *Endpoint) RouteScores() []RouteScore {
	e.scoreMu.Lock()
	out := make([]RouteScore, 0, len(e.scores))
	for key, s := range e.scores {
		r, err := ParseRoute(key)
		if err != nil {
			r = Route{}
		}
		out = append(out, RouteScore{
			Route:      key,
			Score:      e.routeScoreLocked(r),
			RTTUs:      s.rttUs,
			GoodputBps: s.goodputBps,
			ErrRate:    s.errRate,
			Samples:    s.samples,
			Errors:     s.errors,
		})
	}
	e.scoreMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}
