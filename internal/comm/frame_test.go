package comm

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"snipe/internal/xdr"
)

func TestParseRouteRoundTrip(t *testing.T) {
	cases := []Route{
		{Transport: "tcp", Addr: "127.0.0.1:9000"},
		{Transport: "rudp", Addr: "10.0.0.1:1234", NetName: "lan-a"},
		{Transport: "tcp", Addr: "h:1", NetName: "atm", RateBps: 155e6, LatencyUs: 90},
	}
	for _, r := range cases {
		got, err := ParseRoute(r.String())
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip: %v != %v", got, r)
		}
	}
}

func TestParseRouteErrors(t *testing.T) {
	for _, s := range []string{"", "noscheme", "://addr", "tcp://", "tcp://a;rate=x", "tcp://a;bad"} {
		if _, err := ParseRoute(s); err == nil {
			t.Errorf("ParseRoute(%q) accepted", s)
		}
	}
	// Unknown options are tolerated.
	if _, err := ParseRoute("tcp://a;future=1"); err != nil {
		t.Errorf("unknown option rejected: %v", err)
	}
}

// TestParseRouteNegative is the table of hostile route strings: every
// rejection names what was wrong, and values that would poison the
// route-scoring arithmetic (negative, NaN, infinite rate/latency) are
// refused rather than silently carried.
func TestParseRouteNegative(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "missing transport://"},
		{"no scheme", "hostport", "missing transport://"},
		{"empty transport", "://addr", "empty transport or address"},
		{"empty address", "tcp://", "empty transport or address"},
		{"option without value", "tcp://a;net", "route option"},
		{"unparseable rate", "tcp://a;rate=fast", "route rate"},
		{"negative rate", "tcp://a;rate=-5", "out of range"},
		{"NaN rate", "tcp://a;rate=NaN", "out of range"},
		{"infinite rate", "tcp://a;rate=+Inf", "out of range"},
		{"unparseable latency", "tcp://a;lat=low", "route latency"},
		{"negative latency", "tcp://a;lat=-1", "out of range"},
		{"NaN latency", "tcp://a;lat=nan", "out of range"},
		{"infinite latency", "tcp://a;lat=Inf", "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseRoute(tc.in)
			if err == nil {
				t.Fatalf("ParseRoute(%q) accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

func TestOrderRoutesPrefersSharedNetworkThenRate(t *testing.T) {
	local := []Route{
		{Transport: "tcp", Addr: "l1", NetName: "myrinet-1"},
		{Transport: "tcp", Addr: "l2", NetName: "lan-a"},
	}
	remote := []Route{
		{Transport: "tcp", Addr: "public", RateBps: 1e9},
		{Transport: "tcp", Addr: "lan", NetName: "lan-a", RateBps: 1e8},
		{Transport: "tcp", Addr: "myri", NetName: "myrinet-1", RateBps: 6.4e8},
		{Transport: "tcp", Addr: "other", NetName: "lan-z", RateBps: 2e9},
	}
	got := OrderRoutes(local, remote)
	// Shared networks first (fastest shared first), then the rest by rate.
	if got[0].Addr != "myri" || got[1].Addr != "lan" {
		t.Fatalf("shared networks not preferred: %v", got)
	}
	if got[2].Addr != "other" || got[3].Addr != "public" {
		t.Fatalf("non-shared rate order wrong: %v", got)
	}
	// Input must not be mutated.
	if remote[0].Addr != "public" {
		t.Fatal("OrderRoutes mutated input")
	}
}

func TestOrderRoutesLatencyTiebreak(t *testing.T) {
	remote := []Route{
		{Transport: "tcp", Addr: "slowlat", RateBps: 1e8, LatencyUs: 500},
		{Transport: "tcp", Addr: "fastlat", RateBps: 1e8, LatencyUs: 50},
	}
	got := OrderRoutes(nil, remote)
	if got[0].Addr != "fastlat" {
		t.Fatalf("latency tiebreak: %v", got)
	}
}

func TestFragmentReassemble(t *testing.T) {
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	frames := fragment("urn:a", "urn:b", 7, 42, payload, 1024, 0)
	if len(frames) != 10 {
		t.Fatalf("fragment count = %d", len(frames))
	}
	r := newReassembly(frames[0].FragCount, frames[0].Tag, frames[0].Dst)
	// Deliver out of order.
	order := []int{3, 0, 9, 1, 2, 5, 4, 7, 8, 6}
	var got []byte
	for _, i := range order {
		out, _, err := r.add(frames[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			got = out
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembled payload differs")
	}
}

func TestFragmentEmptyPayload(t *testing.T) {
	frames := fragment("a", "b", 0, 1, nil, 1024, 0)
	if len(frames) != 1 || frames[0].FragCount != 1 {
		t.Fatalf("empty payload frames = %v", frames)
	}
	r := newReassembly(1, 0, "b")
	out, _, err := r.add(frames[0], nil)
	if err != nil || out == nil || len(out) != 0 {
		t.Fatalf("reassemble empty: %v %v", out, err)
	}
}

func TestReassemblyDuplicateFragment(t *testing.T) {
	frames := fragment("a", "b", 0, 1, []byte("hello world"), 4, 0)
	r := newReassembly(frames[0].FragCount, 0, "b")
	if _, _, err := r.add(frames[0], nil); err != nil {
		t.Fatal(err)
	}
	out, retained, err := r.add(frames[0], nil) // duplicate
	if err != nil || out != nil || retained {
		t.Fatalf("duplicate: %v %v retained=%v", out, err, retained)
	}
	for _, f := range frames[1:] {
		if out, _, err = r.add(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	if string(out) != "hello world" {
		t.Fatalf("got %q", out)
	}
}

func TestReassemblyCountMismatch(t *testing.T) {
	r := newReassembly(3, 0, "b")
	bad := &msgFrame{Src: "a", Dst: "b", Seq: 1, FragIdx: 0, FragCount: 5, Payload: []byte("x")}
	if _, _, err := r.add(bad, nil); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestMsgFrameEncodeDecode(t *testing.T) {
	f := &msgFrame{Src: "urn:snipe:p1", Dst: "urn:snipe:p2", Tag: 99,
		Seq: 1 << 40, FragIdx: 2, FragCount: 5, Payload: []byte{1, 2, 3}}
	buf := encodeMsgFrame(f)
	d := xdr.NewDecoder(buf)
	ftype, _ := d.Uint8()
	if ftype != frameMsg {
		t.Fatalf("frame type %d", ftype)
	}
	got, err := decodeMsgFrame(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != f.Src || got.Dst != f.Dst || got.Tag != 99 ||
		got.Seq != f.Seq || got.FragIdx != 2 || got.FragCount != 5 ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestMsgFrameRejectsBadFragments(t *testing.T) {
	f := &msgFrame{Src: "a", Dst: "b", FragIdx: 5, FragCount: 5, Payload: nil}
	buf := encodeMsgFrame(f)
	d := xdr.NewDecoder(buf)
	d.Uint8()
	if _, err := decodeMsgFrame(d); err == nil {
		t.Fatal("FragIdx >= FragCount accepted")
	}
	f2 := &msgFrame{Src: "a", Dst: "b", FragIdx: 0, FragCount: 0}
	d2 := xdr.NewDecoder(encodeMsgFrame(f2))
	d2.Uint8()
	if _, err := decodeMsgFrame(d2); err == nil {
		t.Fatal("FragCount == 0 accepted")
	}
}

func TestAckEncodeDecode(t *testing.T) {
	buf := encodeAck("urn:src", "urn:dst", 77)
	d := xdr.NewDecoder(buf)
	ftype, _ := d.Uint8()
	if ftype != frameAck {
		t.Fatalf("frame type %d", ftype)
	}
	src, dst, seq, err := decodeAck(d)
	if err != nil || src != "urn:src" || dst != "urn:dst" || seq != 77 {
		t.Fatalf("ack round trip: %s %s %d %v", src, dst, seq, err)
	}
}

// Property: fragmentation at any MTU reassembles to the original
// payload regardless of arrival order.
func TestQuickFragmentRoundTrip(t *testing.T) {
	f := func(payload []byte, mtuSeed uint16, perm []uint16) bool {
		mtu := int(mtuSeed)%4096 + 1
		frames := fragment("s", "d", 1, 1, payload, mtu, 0)
		idx := make([]int, len(frames))
		for i := range idx {
			idx[i] = i
		}
		for i := range idx {
			if len(perm) > 0 {
				j := int(perm[i%len(perm)]) % (i + 1)
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
		r := newReassembly(frames[0].FragCount, 1, "d")
		var got []byte
		for _, i := range idx {
			out, _, err := r.add(frames[i], nil)
			if err != nil {
				return false
			}
			if out != nil {
				got = out
			}
		}
		return bytes.Equal(got, payload) || (len(payload) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: route strings round-trip for arbitrary metadata values.
func TestQuickRouteRoundTrip(t *testing.T) {
	f := func(addrSeed uint16, net uint8, rate uint32, lat uint16) bool {
		r := Route{
			Transport: "tcp",
			Addr:      "h:" + string(rune('0'+addrSeed%10)),
			RateBps:   float64(rate),
			LatencyUs: float64(lat),
		}
		if net%2 == 0 {
			r.NetName = "lan"
		}
		got, err := ParseRoute(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
