package comm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"snipe/internal/netsim"
)

// rudpPair wires two RUDP conns over a simulated packet link.
func rudpPair(t testing.TB, p netsim.Profile, seed uint64) (FrameConn, FrameConn, *netsim.Link) {
	t.Helper()
	ea, eb, link := netsim.PacketPipe(p, seed)
	a := NewRUDPConn(ea)
	b := NewRUDPConn(eb)
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b, link
}

func TestRUDPBasicDelivery(t *testing.T) {
	a, b, _ := rudpPair(t, netsim.Loopback, 1)
	if err := a.Send([]byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("frame-2")); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"frame-1", "frame-2"} {
		got, err := b.Recv()
		if err != nil || string(got) != want {
			t.Fatalf("recv %d: %q %v", i, got, err)
		}
	}
}

func TestRUDPBidirectional(t *testing.T) {
	a, b, _ := rudpPair(t, netsim.Loopback, 2)
	go func() {
		f, _ := b.Recv()
		b.Send(append([]byte("echo:"), f...))
	}()
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := a.Recv()
	if err != nil || string(got) != "echo:hello" {
		t.Fatalf("echo: %q %v", got, err)
	}
}

func TestRUDPReliabilityUnderLoss(t *testing.T) {
	// 20% loss: every frame must still arrive, in order.
	a, b, _ := rudpPair(t, netsim.Loopback.WithLoss(0.2), 3)
	const n = 300
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send([]byte(fmt.Sprintf("m%04d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("m%04d", i); string(got) != want {
			t.Fatalf("order violated at %d: got %q", i, got)
		}
	}
	ra := a.(*rudpConn).Retransmissions()
	if ra == 0 {
		t.Fatal("expected retransmissions under 20% loss")
	}
}

func TestRUDPHeavyLossBothDirections(t *testing.T) {
	a, b, _ := rudpPair(t, netsim.Loopback.WithLoss(0.35), 4)
	const n = 100
	errs := make(chan error, 2)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send([]byte{byte(i)}); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	go func() {
		for i := 0; i < n; i++ {
			got, err := b.Recv()
			if err != nil {
				errs <- err
				return
			}
			if got[0] != byte(i) {
				errs <- fmt.Errorf("order: want %d got %d", i, got[0])
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRUDPLargeFrames(t *testing.T) {
	a, b, _ := rudpPair(t, netsim.ATM155, 5)
	payload := make([]byte, a.MTU())
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := a.Send(payload); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("large frame: len=%d err=%v", len(got), err)
	}
	// Over-MTU frames are rejected.
	if err := a.Send(make([]byte, a.MTU()+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
}

func TestRUDPWindowBackpressure(t *testing.T) {
	// With the receiver not draining and high latency, the sender must
	// eventually block at the window limit rather than run away. We
	// verify it is *not* blocked after the receiver drains.
	a, b, _ := rudpPair(t, netsim.Loopback, 6)
	done := make(chan struct{})
	go func() {
		for i := 0; i < rudpWindow*3; i++ {
			if err := a.Send([]byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				break
			}
		}
		close(done)
	}()
	for i := 0; i < rudpWindow*3; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sender stuck despite drained window")
	}
}

func TestRUDPCloseUnblocksRecv(t *testing.T) {
	a, b, _ := rudpPair(t, netsim.Loopback, 7)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Recv not unblocked by peer close")
	}
	if err := b.Send([]byte("x")); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("send after peer close: %v", err)
	}
}

func TestRUDPSendAfterCloseFails(t *testing.T) {
	a, _, _ := rudpPair(t, netsim.Loopback, 8)
	a.Close()
	if err := a.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestRUDPOverRealUDP(t *testing.T) {
	tr := RUDPTransport{}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptCh := make(chan FrameConn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	dialer, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	if err := dialer.Send([]byte("over real udp")); err != nil {
		t.Fatal(err)
	}
	var server FrameConn
	select {
	case server = <-acceptCh:
	case <-time.After(3 * time.Second):
		t.Fatal("accept timeout")
	}
	defer server.Close()
	got, err := server.Recv()
	if err != nil || string(got) != "over real udp" {
		t.Fatalf("recv: %q %v", got, err)
	}
	// Reply path.
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	got, err = dialer.Recv()
	if err != nil || string(got) != "pong" {
		t.Fatalf("reply: %q %v", got, err)
	}
}

func TestRUDPManyFramesOverRealUDP(t *testing.T) {
	tr := RUDPTransport{}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	//lint:allow goroutinelife echo loop exits when the conn errors after the deferred ln.Close
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			f, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(f); err != nil {
				return
			}
		}
	}()
	dialer, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			dialer.Send([]byte(fmt.Sprintf("%03d", i)))
		}
	}()
	for i := 0; i < n; i++ {
		got, err := dialer.Recv()
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if want := fmt.Sprintf("%03d", i); string(got) != want {
			t.Fatalf("echo order at %d: %q", i, got)
		}
	}
}

func BenchmarkRUDPThroughputLoopback(b *testing.B) {
	a, bb, _ := rudpPair(b, netsim.Loopback, 1)
	payload := make([]byte, 1024)
	//lint:allow goroutinelife drain loop exits when Recv errors after the pair's cleanup closes bb
	go func() {
		for {
			if _, err := bb.Recv(); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}
