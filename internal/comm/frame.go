// Package comm implements the SNIPE communications module (paper §3.4,
// §5.3–5.4, §6): message passing between globally named processes over
// multiple transports and media, with fragmentation, system-side
// buffering of messages for unavailable or migrating tasks, and
// automatic route/interface failover.
//
// The module's layering follows the 1998 implementation:
//
//   - FrameConn: a reliable, message-boundary-preserving connection.
//     Two transports are provided, as in the paper: TCP/IP, and a
//     "selective re-send UDP protocol" (RUDP) — a sliding-window
//     selective-repeat ARQ with SACK bitmaps and adaptive RTO.
//   - Endpoint: a process's communications identity. It listens on any
//     number of transport addresses, resolves destination URNs to
//     routes (via RC metadata in the full system), picks the best
//     common network, fragments and sequences messages, acknowledges
//     end-to-end, retries over alternate routes, and buffers traffic
//     for peers that are temporarily unreachable — which is what makes
//     "no loss of data while migration is in progress" (§5.6) hold.
package comm

import (
	"errors"
	"fmt"

	"snipe/internal/xdr"
)

// Frame types exchanged between endpoints, inside transport frames.
const (
	frameHello uint8 = iota + 1 // sender identifies itself: URN
	frameMsg                    // one fragment of an application message
	frameAck                    // end-to-end acknowledgement of a message
)

// AnyTag matches any message tag in receive operations.
const AnyTag uint32 = ^uint32(0)

// Errors of the comm layer.
var (
	// ErrClosed indicates the endpoint or connection is closed.
	ErrClosed = errors.New("comm: closed")
	// ErrTimeout indicates a receive or send deadline expired.
	ErrTimeout = errors.New("comm: timeout")
	// ErrNoRoute indicates no route to the destination could be found.
	ErrNoRoute = errors.New("comm: no route to destination")
	// ErrBufferFull indicates the system buffer for an unreachable peer
	// overflowed.
	ErrBufferFull = errors.New("comm: system buffer full")
	// ErrBadFrame indicates a malformed frame.
	ErrBadFrame = errors.New("comm: malformed frame")
	// ErrTooLarge indicates a message beyond MaxMessageSize.
	ErrTooLarge = errors.New("comm: message too large")
)

// MaxMessageSize bounds a single application message.
const MaxMessageSize = 64 << 20

// Per-field wire-decode caps handed to the xdr *Max decoders, so a
// corrupt or hostile length prefix fails fast instead of sizing an
// allocation. Whole frames are already bounded by maxWireFrame; these
// bound individual fields within one.
const (
	maxWireURN     = 4096         // URNs: src/dst names in hello/msg/ack frames
	maxWirePayload = maxWireFrame // one fragment's payload
)

// Message is a received application message.
type Message struct {
	Src     string // sender URN
	Dst     string // destination URN (this endpoint, or a group)
	Tag     uint32 // application tag for selective receive
	Seq     uint64 // sender-assigned per-destination sequence number
	Payload []byte
}

// msgFrame is one fragment of a message on the wire. Every fragment
// carries the full header so that fragments are self-contained and can
// arrive in any order (and, after a route failover, over different
// connections).
type msgFrame struct {
	Src       string
	Dst       string
	Tag       uint32
	Seq       uint64
	FragIdx   uint32
	FragCount uint32
	Payload   []byte
}

func encodeHello(urn string) []byte {
	e := xdr.NewEncoder(len(urn) + 8)
	e.PutUint8(frameHello)
	e.PutString(urn)
	return e.Bytes()
}

func decodeHello(d *xdr.Decoder) (string, error) {
	return d.StringMax(maxWireURN)
}

func encodeMsgFrame(f *msgFrame) []byte {
	e := xdr.NewEncoder(len(f.Payload) + len(f.Src) + len(f.Dst) + 40)
	e.PutUint8(frameMsg)
	e.PutString(f.Src)
	e.PutString(f.Dst)
	e.PutUint32(f.Tag)
	e.PutUint64(f.Seq)
	e.PutUint32(f.FragIdx)
	e.PutUint32(f.FragCount)
	e.PutBytes(f.Payload)
	return e.Bytes()
}

func decodeMsgFrame(d *xdr.Decoder) (*msgFrame, error) {
	f := &msgFrame{}
	var err error
	if f.Src, err = d.StringMax(maxWireURN); err != nil {
		return nil, err
	}
	if f.Dst, err = d.StringMax(maxWireURN); err != nil {
		return nil, err
	}
	if f.Tag, err = d.Uint32(); err != nil {
		return nil, err
	}
	if f.Seq, err = d.Uint64(); err != nil {
		return nil, err
	}
	if f.FragIdx, err = d.Uint32(); err != nil {
		return nil, err
	}
	if f.FragCount, err = d.Uint32(); err != nil {
		return nil, err
	}
	if f.Payload, err = d.BytesCopyMax(maxWirePayload); err != nil {
		return nil, err
	}
	if f.FragCount == 0 || f.FragIdx >= f.FragCount {
		return nil, fmt.Errorf("%w: fragment %d/%d", ErrBadFrame, f.FragIdx, f.FragCount)
	}
	return f, nil
}

func encodeAck(src, dst string, seq uint64) []byte {
	e := xdr.NewEncoder(len(src) + len(dst) + 16)
	e.PutUint8(frameAck)
	e.PutString(src) // original message's sender
	e.PutString(dst) // original message's destination (the acker)
	e.PutUint64(seq)
	return e.Bytes()
}

func decodeAck(d *xdr.Decoder) (src, dst string, seq uint64, err error) {
	if src, err = d.StringMax(maxWireURN); err != nil {
		return
	}
	if dst, err = d.StringMax(maxWireURN); err != nil {
		return
	}
	seq, err = d.Uint64()
	return
}

// fragment splits payload into n MTU-sized fragments sharing one
// header. mtu is the maximum fragment payload size.
func fragment(src, dst string, tag uint32, seq uint64, payload []byte, mtu int) []*msgFrame {
	if mtu <= 0 {
		mtu = 1 << 16
	}
	count := (len(payload) + mtu - 1) / mtu
	if count == 0 {
		count = 1
	}
	frames := make([]*msgFrame, count)
	for i := 0; i < count; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(payload) {
			hi = len(payload)
		}
		frames[i] = &msgFrame{
			Src: src, Dst: dst, Tag: tag, Seq: seq,
			FragIdx: uint32(i), FragCount: uint32(count),
			Payload: payload[lo:hi],
		}
	}
	return frames
}

// reassembly accumulates the fragments of one in-flight message.
type reassembly struct {
	frags    [][]byte
	received int
	total    int
	size     int
	tag      uint32
	dst      string
}

func newReassembly(count uint32, tag uint32, dst string) *reassembly {
	return &reassembly{frags: make([][]byte, count), total: int(count), tag: tag, dst: dst}
}

// add records a fragment; it returns the complete message payload when
// the last fragment arrives, or nil.
func (r *reassembly) add(f *msgFrame) ([]byte, error) {
	if int(f.FragCount) != r.total {
		return nil, fmt.Errorf("%w: fragment count changed mid-message", ErrBadFrame)
	}
	if r.frags[f.FragIdx] != nil {
		return nil, nil // duplicate fragment (retransmission)
	}
	r.frags[f.FragIdx] = f.Payload
	r.received++
	r.size += len(f.Payload)
	if r.size > MaxMessageSize {
		return nil, ErrTooLarge
	}
	if r.received < r.total {
		return nil, nil
	}
	out := make([]byte, 0, r.size)
	for _, frag := range r.frags {
		out = append(out, frag...)
	}
	return out, nil
}
