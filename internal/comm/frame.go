// Package comm implements the SNIPE communications module (paper §3.4,
// §5.3–5.4, §6): message passing between globally named processes over
// multiple transports and media, with fragmentation, system-side
// buffering of messages for unavailable or migrating tasks, and
// automatic route/interface failover.
//
// The module's layering follows the 1998 implementation:
//
//   - FrameConn: a reliable, message-boundary-preserving connection.
//     Two transports are provided, as in the paper: TCP/IP, and a
//     "selective re-send UDP protocol" (RUDP) — a sliding-window
//     selective-repeat ARQ with SACK bitmaps and adaptive RTO.
//   - Endpoint: a process's communications identity. It listens on any
//     number of transport addresses, resolves destination URNs to
//     routes (via RC metadata in the full system), picks the best
//     common network, fragments and sequences messages, acknowledges
//     end-to-end, retries over alternate routes, and buffers traffic
//     for peers that are temporarily unreachable — which is what makes
//     "no loss of data while migration is in progress" (§5.6) hold.
//
// Route selection is adaptive: each route carries per-route EWMAs of
// observed ack RTT, goodput and error rate (see score.go), blended
// with the advertised media profile, and large messages to multi-homed
// peers are striped — fragmented across every healthy route in
// parallel with a bounded in-flight window per route and per-fragment
// acknowledgements (see stripe.go), aggregating the bandwidth of all
// media between two hosts as the paper's Fig. 1 testbed (10/100 Mbit
// Ethernet plus 155 Mbit ATM between the same pair) invites.
package comm

import (
	"errors"
	"fmt"

	"snipe/internal/xdr"
)

// Frame types exchanged between endpoints, inside transport frames.
// Batched acknowledgement frames (frameAckBatch, frameFragAckBatch)
// carry N single-ack entries in one transport frame; receivers that
// coalesce acks emit them, while single-ack frames remain valid on the
// wire — an endpoint decodes both, so mixed-version pairs interoperate
// (an old receiver simply never batches).
const (
	frameHello        uint8 = iota + 1 // sender identifies itself: URN
	frameMsg                           // one fragment of an application message
	frameAck                           // end-to-end acknowledgement of a message
	frameFragAck                       // per-fragment acknowledgement of a striped fragment
	frameAckBatch                      // batched end-to-end acknowledgements
	frameFragAckBatch                  // batched per-fragment acknowledgements
)

// Fragment flag bits carried in msgFrame.Flags.
const (
	// flagStriped marks a fragment of a message striped across several
	// routes in parallel; the receiver acknowledges each such fragment
	// individually (frameFragAck) so the sender can run a bounded
	// in-flight window per route and detect dead routes mid-stripe.
	flagStriped uint8 = 1 << 0
)

// AnyTag matches any message tag in receive operations.
const AnyTag uint32 = ^uint32(0)

// Errors of the comm layer.
var (
	// ErrClosed indicates the endpoint or connection is closed.
	ErrClosed = errors.New("comm: closed")
	// ErrTimeout indicates a receive or send deadline expired.
	ErrTimeout = errors.New("comm: timeout")
	// ErrNoRoute indicates no route to the destination could be found.
	ErrNoRoute = errors.New("comm: no route to destination")
	// ErrBufferFull indicates the system buffer for an unreachable peer
	// overflowed.
	ErrBufferFull = errors.New("comm: system buffer full")
	// ErrBadFrame indicates a malformed frame.
	ErrBadFrame = errors.New("comm: malformed frame")
	// ErrTooLarge indicates a message beyond MaxMessageSize.
	ErrTooLarge = errors.New("comm: message too large")
)

// MaxMessageSize bounds a single application message.
const MaxMessageSize = 64 << 20

// Per-field wire-decode caps handed to the xdr *Max decoders, so a
// corrupt or hostile length prefix fails fast instead of sizing an
// allocation. Whole frames are already bounded by maxWireFrame; these
// bound individual fields within one.
const (
	maxWireURN     = 4096         // URNs: src/dst names in hello/msg/ack frames
	maxWirePayload = maxWireFrame // one fragment's payload
)

// Message is a received application message.
type Message struct {
	Src     string // sender URN
	Dst     string // destination URN (this endpoint, or a group)
	Tag     uint32 // application tag for selective receive
	Seq     uint64 // sender-assigned per-destination sequence number
	Payload []byte
}

// msgFrame is one fragment of a message on the wire. Every fragment
// carries the full header so that fragments are self-contained and can
// arrive in any order (and, mid-stripe or after a route failover, over
// different connections).
type msgFrame struct {
	Src       string
	Dst       string
	Tag       uint32
	Seq       uint64
	FragIdx   uint32
	FragCount uint32
	Flags     uint8 // fragment-of-stripe header: flagStriped, ...
	Payload   []byte
}

func encodeHello(urn string) []byte {
	e := xdr.NewEncoder(len(urn) + 8)
	e.PutUint8(frameHello)
	e.PutString(urn)
	return e.Bytes()
}

func decodeHello(d *xdr.Decoder) (string, error) {
	return d.StringMax(maxWireURN)
}

func encodeMsgFrame(f *msgFrame) []byte {
	e := xdr.NewEncoder(len(f.Payload) + len(f.Src) + len(f.Dst) + 41)
	return encodeMsgFrameInto(e, f)
}

// encodeMsgFrameInto encodes into a caller-owned (typically pooled)
// encoder after resetting it. The returned slice aliases the encoder's
// buffer: it is valid until the next use of the encoder, which is fine
// for every FrameConn.Send implementation (all of them either write the
// frame synchronously or copy it before queueing).
func encodeMsgFrameInto(e *xdr.Encoder, f *msgFrame) []byte {
	e.Reset()
	e.PutUint8(frameMsg)
	e.PutString(f.Src)
	e.PutString(f.Dst)
	e.PutUint32(f.Tag)
	e.PutUint64(f.Seq)
	e.PutUint32(f.FragIdx)
	e.PutUint32(f.FragCount)
	e.PutUint8(f.Flags)
	e.PutBytes(f.Payload)
	return e.Bytes()
}

func decodeMsgFrame(d *xdr.Decoder) (*msgFrame, error) {
	f := &msgFrame{}
	var err error
	if f.Src, err = d.StringMax(maxWireURN); err != nil {
		return nil, err
	}
	if f.Dst, err = d.StringMax(maxWireURN); err != nil {
		return nil, err
	}
	if f.Tag, err = d.Uint32(); err != nil {
		return nil, err
	}
	if f.Seq, err = d.Uint64(); err != nil {
		return nil, err
	}
	if f.FragIdx, err = d.Uint32(); err != nil {
		return nil, err
	}
	if f.FragCount, err = d.Uint32(); err != nil {
		return nil, err
	}
	if f.Flags, err = d.Uint8(); err != nil {
		return nil, err
	}
	// The payload aliases the decoder's buffer — no per-fragment copy.
	// The receive path owns the frame buffer (see handleMsgFrame) and
	// parks it alongside the reassembly until the message completes.
	if f.Payload, err = d.BytesMax(maxWirePayload); err != nil {
		return nil, err
	}
	if f.FragCount == 0 || f.FragIdx >= f.FragCount {
		return nil, fmt.Errorf("%w: fragment %d/%d", ErrBadFrame, f.FragIdx, f.FragCount)
	}
	return f, nil
}

func encodeAck(src, dst string, seq uint64) []byte {
	e := xdr.NewEncoder(len(src) + len(dst) + 16)
	e.PutUint8(frameAck)
	e.PutString(src) // original message's sender
	e.PutString(dst) // original message's destination (the acker)
	e.PutUint64(seq)
	return e.Bytes()
}

func decodeAck(d *xdr.Decoder) (src, dst string, seq uint64, err error) {
	if src, err = d.StringMax(maxWireURN); err != nil {
		return
	}
	if dst, err = d.StringMax(maxWireURN); err != nil {
		return
	}
	seq, err = d.Uint64()
	return
}

// encodeFragAck builds a per-fragment acknowledgement for one striped
// fragment: the original message's sender, destination (the acker),
// sequence number, and the fragment index being acknowledged.
func encodeFragAck(src, dst string, seq uint64, fragIdx uint32) []byte {
	e := xdr.NewEncoder(len(src) + len(dst) + 24)
	e.PutUint8(frameFragAck)
	e.PutString(src) // original message's sender
	e.PutString(dst) // original message's destination (the acker)
	e.PutUint64(seq)
	e.PutUint32(fragIdx)
	return e.Bytes()
}

func decodeFragAck(d *xdr.Decoder) (src, dst string, seq uint64, fragIdx uint32, err error) {
	if src, err = d.StringMax(maxWireURN); err != nil {
		return
	}
	if dst, err = d.StringMax(maxWireURN); err != nil {
		return
	}
	if seq, err = d.Uint64(); err != nil {
		return
	}
	fragIdx, err = d.Uint32()
	return
}

// ackRef identifies one acknowledged message — or, inside a
// frag-ack batch, one acknowledged fragment — within a batched
// acknowledgement frame.
type ackRef struct {
	src     string // original message's sender
	dst     string // original message's destination (the acker)
	seq     uint64
	fragIdx uint32 // meaningful only in frameFragAckBatch entries
}

// encodeAckBatchInto encodes a batched acknowledgement frame into a
// caller-owned (typically pooled) encoder. ftype selects whole-message
// (frameAckBatch) or per-fragment (frameFragAckBatch) entries. The
// returned slice aliases the encoder's buffer, like encodeMsgFrameInto.
func encodeAckBatchInto(e *xdr.Encoder, ftype uint8, refs []ackRef) []byte {
	e.Reset()
	e.PutUint8(ftype)
	e.PutUint32(uint32(len(refs)))
	for i := range refs {
		r := &refs[i]
		e.PutString(r.src)
		e.PutString(r.dst)
		e.PutUint64(r.seq)
		if ftype == frameFragAckBatch {
			e.PutUint32(r.fragIdx)
		}
	}
	return e.Bytes()
}

// decodeAckBatch reads the entries of a batched acknowledgement frame;
// withFrag selects the frameFragAckBatch layout (an extra fragment
// index per entry).
func decodeAckBatch(d *xdr.Decoder, withFrag bool) ([]ackRef, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	// Each entry costs at least 16 encoded bytes (two string length
	// prefixes + u64), 20 with the fragment index; a count beyond the
	// remaining bytes is hostile — fail before preallocating.
	entryMin := 16
	if withFrag {
		entryMin = 20
	}
	if int64(n)*int64(entryMin) > int64(d.Remaining()) {
		return nil, fmt.Errorf("%w: ack batch count %d exceeds remaining %d bytes",
			ErrBadFrame, n, d.Remaining())
	}
	refs := make([]ackRef, 0, n)
	for i := uint32(0); i < n; i++ {
		var r ackRef
		if r.src, err = d.StringMax(maxWireURN); err != nil {
			return nil, err
		}
		if r.dst, err = d.StringMax(maxWireURN); err != nil {
			return nil, err
		}
		if r.seq, err = d.Uint64(); err != nil {
			return nil, err
		}
		if withFrag {
			if r.fragIdx, err = d.Uint32(); err != nil {
				return nil, err
			}
		}
		refs = append(refs, r)
	}
	return refs, nil
}

// fragment splits payload into n MTU-sized fragments sharing one
// header. mtu is the maximum fragment payload size; flags is stamped
// on every fragment (flagStriped for striped transmissions, 0 for the
// single-route path).
func fragment(src, dst string, tag uint32, seq uint64, payload []byte, mtu int, flags uint8) []*msgFrame {
	if mtu <= 0 {
		mtu = 1 << 16
	}
	count := (len(payload) + mtu - 1) / mtu
	if count == 0 {
		count = 1
	}
	frames := make([]*msgFrame, count)
	for i := 0; i < count; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(payload) {
			hi = len(payload)
		}
		frames[i] = &msgFrame{
			Src: src, Dst: dst, Tag: tag, Seq: seq,
			FragIdx: uint32(i), FragCount: uint32(count), Flags: flags,
			Payload: payload[lo:hi],
		}
	}
	return frames
}

// reassembly accumulates the fragments of one in-flight message.
// Fragment payloads alias the pooled receive buffers they arrived in
// (decodeMsgFrame no longer copies); the reassembly therefore owns
// those backing buffers, releasing them back to the pool when the
// message completes or the reassembly is abandoned. The assembled
// payload handed to the application is always a fresh buffer, so a
// recycled receive buffer is structurally never reachable from a
// delivered Message.
type reassembly struct {
	frags    [][]byte
	backing  [][]byte // pooled receive buffers backing frags, released on completion
	received int
	total    int
	size     int
	tag      uint32
	dst      string
}

func newReassembly(count uint32, tag uint32, dst string) *reassembly {
	return &reassembly{frags: make([][]byte, count), backing: make([][]byte, count),
		total: int(count), tag: tag, dst: dst}
}

// add records a fragment and takes ownership of buf, the receive
// buffer backing f.Payload (nil when the caller did not pool it). It
// returns the complete message payload when the last fragment arrives.
// retained reports whether ownership of buf transferred: when false
// (duplicate fragment, or a fatal error) the caller still owns buf and
// may recycle it. After a non-nil error the caller must discard the
// reassembly via release.
func (r *reassembly) add(f *msgFrame, buf []byte) (payload []byte, retained bool, err error) {
	if int(f.FragCount) != r.total {
		return nil, false, fmt.Errorf("%w: fragment count changed mid-message", ErrBadFrame)
	}
	if r.frags[f.FragIdx] != nil {
		return nil, false, nil // duplicate fragment (retransmission)
	}
	r.frags[f.FragIdx] = f.Payload
	r.backing[f.FragIdx] = buf
	r.received++
	r.size += len(f.Payload)
	if r.size > MaxMessageSize {
		return nil, true, ErrTooLarge
	}
	if r.received < r.total {
		return nil, true, nil
	}
	out := make([]byte, 0, r.size)
	for _, frag := range r.frags {
		out = append(out, frag...)
	}
	r.release()
	return out, true, nil
}

// release returns every backing receive buffer to the pool and drops
// the fragment references. Call when the message completed (add did
// this already), or when abandoning an in-progress reassembly
// (geometry restart, decode error, shutdown).
func (r *reassembly) release() {
	for i, b := range r.backing {
		r.frags[i] = nil
		r.backing[i] = nil
		if b != nil {
			putPayloadBuf(b)
		}
	}
}
