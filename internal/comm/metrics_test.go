package comm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// countingResolver counts Resolve calls and records their times.
type countingResolver struct {
	mu     sync.Mutex
	m      map[string][]Route
	calls  int
	atTime []time.Time
}

func newCountingResolver() *countingResolver {
	return &countingResolver{m: make(map[string][]Route)}
}

func (r *countingResolver) Resolve(urn string) ([]Route, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	r.atTime = append(r.atTime, time.Now())
	return append([]Route(nil), r.m[urn]...), nil
}

func (r *countingResolver) set(urn string, routes ...Route) {
	r.mu.Lock()
	r.m[urn] = routes
	r.mu.Unlock()
}

func (r *countingResolver) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func (r *countingResolver) times() []time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Time(nil), r.atTime...)
}

// failingConn is a FrameConn whose sends always fail; Recv blocks
// until Close.
type failingConn struct {
	once sync.Once
	done chan struct{}
}

func newFailingConn() *failingConn { return &failingConn{done: make(chan struct{})} }

func (c *failingConn) Send([]byte) error { return errors.New("failingConn: send refused") }

func (c *failingConn) Recv() ([]byte, error) {
	<-c.done
	return nil, ErrClosed
}

func (c *failingConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func (c *failingConn) MTU() int { return 1400 }

func (c *failingConn) RemoteAddr() string { return "failingConn" }

// TestRetryBackoffGrowth checks the schedule itself: doubling per
// attempt from the base interval, positive-only jitter, capped at the
// configured maximum.
func TestRetryBackoffGrowth(t *testing.T) {
	e := NewEndpoint("urn:bo", WithRetryInterval(40*time.Millisecond),
		WithMaxRetryBackoff(300*time.Millisecond))
	defer e.Close()
	for attempts, want := range map[int]time.Duration{
		1: 40 * time.Millisecond,
		2: 80 * time.Millisecond,
		3: 160 * time.Millisecond,
		4: 300 * time.Millisecond, // capped (would be 320)
		9: 300 * time.Millisecond,
	} {
		for i := 0; i < 20; i++ {
			got := e.retryBackoff(attempts)
			if got < want {
				t.Fatalf("attempts=%d: backoff %v below lower bound %v", attempts, got, want)
			}
			if max := want + want/4; got > max {
				t.Fatalf("attempts=%d: backoff %v above jitter ceiling %v", attempts, got, max)
			}
		}
	}
}

// TestRetryBackoffSchedule asserts a message with attempts=k is not
// retried before its backoff window: the gap between transmission k
// and k+1 is at least interval<<(k-1). Resolve is called on every
// transmission (cache disabled), so the resolver's call times are the
// attempt times.
func TestRetryBackoffSchedule(t *testing.T) {
	const interval = 40 * time.Millisecond
	res := newCountingResolver() // no routes for the peer: every attempt fails
	e := NewEndpoint("urn:bo-sched", WithResolver(res),
		WithRetryInterval(interval), WithRouteCacheTTL(0))
	defer e.Close()

	if err := e.Send("urn:unreachable", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for res.count() < 4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	at := res.times()
	if len(at) < 4 {
		t.Fatalf("only %d attempts in 2s", len(at))
	}
	for k := 1; k < 4; k++ {
		minGap := interval << (k - 1)
		if gap := at[k].Sub(at[k-1]); gap < minGap {
			t.Fatalf("attempt %d → %d gap %v, want ≥ %v", k, k+1, gap, minGap)
		}
	}
}

// TestRetryBackoffReducesRetries is the regression bound for the
// retry-storm bugfix: against an unreachable peer, the retry counter
// stays far below the one-retry-per-tick rate of the fixed-interval
// schedule.
func TestRetryBackoffReducesRetries(t *testing.T) {
	const interval = 40 * time.Millisecond
	res := newCountingResolver()
	// A resolvable route to a dead address: dials fail, the message
	// stays buffered and is retried on the backoff schedule.
	res.set("urn:dead", Route{Transport: "tcp", Addr: "127.0.0.1:1"})
	e := NewEndpoint("urn:bo-count", WithResolver(res), WithRetryInterval(interval))
	defer e.Close()

	start := time.Now()
	if err := e.Send("urn:dead", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	const window = time.Second
	time.Sleep(window)
	// On a loaded machine the retry loop itself may be starved: wait
	// (bounded) for it to demonstrably run rather than asserting a
	// wall-clock count too early.
	retried := func() uint64 { return e.MetricsSnapshot().Counters["retried"] }
	waitFor(t, 5*time.Second, func() bool { return retried() >= 2 }, "retry loop not running")
	elapsed := time.Since(start)

	// Fixed-interval behavior retries every tick: ~elapsed/interval.
	// Exponential backoff fits only attempts at cumulative 40+80+160+
	// 320+640... ms, so well under half the fixed count even with tick
	// quantisation in the retries' favour. Measuring elapsed (instead of
	// assuming the sleep took exactly `window`) keeps the bound valid
	// when the sleep overruns.
	fixed := uint64(elapsed / interval)
	if got := retried(); got >= fixed/2 {
		t.Fatalf("retried %d times in %v; backoff should stay below %d (fixed ≈ %d)",
			got, elapsed, fixed/2, fixed)
	}
}

// TestRouteCacheSingleResolve asserts a burst of buffered messages to
// one unknown destination costs one resolver call per TTL, not one per
// message per tick.
func TestRouteCacheSingleResolve(t *testing.T) {
	res := newCountingResolver() // resolves to no routes
	e := NewEndpoint("urn:rc", WithResolver(res),
		WithRetryInterval(30*time.Millisecond), WithRouteCacheTTL(10*time.Second))
	defer e.Close()

	for i := 0; i < 6; i++ {
		if err := e.Send("urn:nowhere", 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for enough cache hits to prove several transmissions consulted
	// the cache (bounded; replaces a fixed several-retry-ticks sleep).
	waitFor(t, 5*time.Second, func() bool {
		return e.Metrics().Counter("route_cache_hits").Value() >= 5
	}, "route cache never hit")
	if got := res.count(); got != 1 {
		t.Fatalf("resolver called %d times for 6 buffered messages; want 1", got)
	}
}

// TestRouteCacheInvalidatedOnSendFailure asserts a conn-level send
// failure drops the cached routes so the next attempt re-resolves
// immediately instead of waiting out the TTL.
func TestRouteCacheInvalidatedOnSendFailure(t *testing.T) {
	res := newCountingResolver()
	route := Route{Transport: "brokenwire", Addr: "peer"}
	res.set("urn:flaky", route)
	e := NewEndpoint("urn:rc-inv", WithResolver(res),
		WithRetryInterval(30*time.Millisecond), WithRouteCacheTTL(10*time.Second))
	defer e.Close()
	// Pre-seed the connection for the advertised route with one whose
	// sends fail, so the first transmit fails at the conn level.
	e.AttachConn(route.String(), newFailingConn())

	if err := e.Send("urn:flaky", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// First transmit: resolve #1, send failure, cache invalidated.
	// Next retry: cache miss → resolve #2 (then re-cached; later
	// retries fail at dial and do not invalidate).
	waitFor(t, 5*time.Second, func() bool { return res.count() >= 2 },
		"no re-resolution after send failure")
	// Let several more retries run (bounded, counted via the retried
	// metric rather than wall clock), then check none of them re-resolved.
	retriedNow := e.MetricsSnapshot().Counters["retried"]
	waitFor(t, 5*time.Second, func() bool {
		return e.MetricsSnapshot().Counters["retried"] >= retriedNow+2
	}, "retry loop stalled")
	if got := res.count(); got != 2 {
		t.Fatalf("resolver called %d times; want exactly 2 (re-cached after failure)", got)
	}
	if errs := e.Metrics().Counter("send_errors").Value(); errs == 0 {
		t.Fatal("send_errors counter not incremented")
	}
}

// TestMetricsRaceWithTraffic hammers snapshots while traffic flows;
// run under -race this proves the metrics layer is lock-free-safe.
func TestMetricsRaceWithTraffic(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:mr-a", res)
	b := newTestEndpoint(t, "urn:mr-b", res)

	const n = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			a.Send("urn:mr-b", 1, []byte("payload"))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := recvT(b, 5*time.Second); err != nil {
				return
			}
		}
	}()
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.MetricsSnapshot()
			b.MetricsSnapshot().Render()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Let traffic and snapshots overlap, then stop the snapshot loop.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("traffic stalled")
	}
	sent := a.MetricsSnapshot().Counters["sent"]
	if sent != n {
		t.Fatalf("sent = %d, want %d", sent, n)
	}
	if rcvd := b.MetricsSnapshot().Counters["received"]; rcvd != n {
		t.Fatalf("b received = %d, want %d", rcvd, n)
	}
}

// TestRUDPRemoteAddr asserts RUDP conns report the real peer address
// instead of the transport-name placeholder.
func TestRUDPRemoteAddr(t *testing.T) {
	tr := RUDPTransport{}
	ln, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptCh := make(chan FrameConn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acceptCh <- c
		}
	}()
	dialer, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	if got := dialer.RemoteAddr(); got != ln.Addr() {
		t.Fatalf("dialer RemoteAddr = %q, want %q", got, ln.Addr())
	}
	if err := dialer.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	var server FrameConn
	select {
	case server = <-acceptCh:
	case <-time.After(3 * time.Second):
		t.Fatal("accept timeout")
	}
	defer server.Close()
	if got := server.RemoteAddr(); got == "rudp" || got == "" {
		t.Fatalf("server RemoteAddr = %q, want the peer's address", got)
	}
}
