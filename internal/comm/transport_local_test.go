package comm

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// newLocalTestEndpoint creates an endpoint listening on the given local
// transport ("unix" or "inproc") and registers it with the resolver.
func newLocalTestEndpoint(t testing.TB, urn, transport, addr string, res *testResolver, opts ...EndpointOption) *Endpoint {
	t.Helper()
	opts = append([]EndpointOption{
		WithResolver(res),
		WithRetryInterval(50 * time.Millisecond),
	}, opts...)
	e := NewEndpoint(urn, opts...)
	route, err := e.Listen(ListenSpec{Transport: transport, Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	res.set(urn, route)
	t.Cleanup(e.Close)
	return e
}

func TestEndpointOverUnixTransport(t *testing.T) {
	res := newTestResolver()
	dir := t.TempDir()
	a := newLocalTestEndpoint(t, "urn:ua", "unix", filepath.Join(dir, "a.sock"), res)
	b := newLocalTestEndpoint(t, "urn:ub", "unix", filepath.Join(dir, "b.sock"), res)

	// Large enough to fragment even at the unix frame size.
	payload := make([]byte, 3*unixFragmentSize/2)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if err := sendWaitT(a, "urn:ub", 9, payload, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(b, 5*time.Second)
	if err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("unix transport: len=%d err=%v", len(m.Payload), err)
	}
	// Reply over the reverse path.
	if err := b.Send("urn:ua", 1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if m, err := recvT(a, 5*time.Second); err != nil || string(m.Payload) != "back" {
		t.Fatalf("unix reply: %v %v", m, err)
	}
}

func TestUnixListenRecoversStaleSocket(t *testing.T) {
	// Simulate a crashed owner: a socket file exists but nothing
	// accepts on it. (A raw unix listener closed without unlink would
	// be cleaned up by Go's net package, so build the stale file via an
	// abandoned socket path bound by a dead listener's leftover file.)
	addr := filepath.Join(t.TempDir(), "stale.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Leave the file behind: net.UnixListener unlinks on Close unless
	// told otherwise.
	ln.(*net.UnixListener).SetUnlinkOnClose(false)
	ln.Close()

	ln2, err := UnixTransport{}.Listen(addr)
	if err != nil {
		t.Fatalf("stale socket not recovered: %v", err)
	}
	ln2.Close()
}

func TestEndpointOverInprocTransport(t *testing.T) {
	res := newTestResolver()
	a := newLocalTestEndpoint(t, "urn:ia", "inproc", "", res)
	b := newLocalTestEndpoint(t, "urn:ib", "inproc", "", res)

	payload := make([]byte, 2*inprocMTU+123) // fragments over the channel pair
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := sendWaitT(a, "urn:ib", 3, payload, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(b, 5*time.Second)
	if err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("inproc transport: len=%d err=%v", len(m.Payload), err)
	}
	if err := b.Send("urn:ia", 1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if m, err := recvT(a, 5*time.Second); err != nil || string(m.Payload) != "back" {
		t.Fatalf("inproc reply: %v %v", m, err)
	}
}

func TestInprocAddrConflictAndDialErrors(t *testing.T) {
	tr := InprocTransport{}
	ln, err := tr.Listen("conflict-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("conflict-test"); err == nil {
		t.Fatal("duplicate inproc address accepted")
	}
	ln.Close()
	if _, err := tr.Dial("conflict-test"); err == nil {
		t.Fatal("dial of closed inproc listener succeeded")
	}
	if _, err := tr.Dial("never-existed"); err == nil {
		t.Fatal("dial of unknown inproc address succeeded")
	}
}

func TestInprocRecvDrainsAfterPeerClose(t *testing.T) {
	// Frames already handed to Send must survive the sender closing:
	// the receiver drains its queue before seeing ErrClosed.
	dialer, acceptee := newInprocPair("drain")
	for i := 0; i < 3; i++ {
		if err := dialer.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dialer.Close()
	for i := 0; i < 3; i++ {
		f, err := acceptee.Recv()
		if err != nil || f[0] != byte(i) {
			t.Fatalf("drain frame %d: %v %v", i, f, err)
		}
		putPayloadBuf(f)
	}
	if _, err := acceptee.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: %v", err)
	}
}

func TestInprocSendCopiesFrame(t *testing.T) {
	// FrameConn contract: the caller's buffer is reusable immediately
	// after Send returns.
	dialer, acceptee := newInprocPair("copy")
	defer dialer.Close()
	defer acceptee.Close()
	buf := []byte("original")
	if err := dialer.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBERD")
	f, err := acceptee.Recv()
	if err != nil || string(f) != "original" {
		t.Fatalf("send aliased the caller's buffer: %q %v", f, err)
	}
}

// TestLocalTransportsConcurrentEndpoints drives many endpoint pairs
// over inproc at once — the commtail benchmark's shape in miniature.
func TestLocalTransportsConcurrentEndpoints(t *testing.T) {
	res := newTestResolver()
	sink := newLocalTestEndpoint(t, "urn:lsink", "inproc", "", res)
	const nPairs, nMsgs = 8, 20
	var delivered atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < nPairs*nMsgs; i++ {
			if _, err := recvT(sink, 10*time.Second); err != nil {
				t.Errorf("sink recv %d: %v", i, err)
				return
			}
			delivered.Add(1)
		}
	}()
	for p := 0; p < nPairs; p++ {
		src := newLocalTestEndpoint(t, fmt.Sprintf("urn:lp%d", p), "inproc", "", res)
		go func(e *Endpoint) {
			for i := 0; i < nMsgs; i++ {
				if err := sendWaitT(e, "urn:lsink", 0, []byte("m"), 10*time.Second); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(src)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("only %d/%d messages delivered", delivered.Load(), nPairs*nMsgs)
	}
}
