//go:build go1.18

package comm

import (
	"bytes"
	"testing"

	"snipe/internal/xdr"
)

// The comm decoders face bytes straight off a transport; none of them
// may panic or allocate proportionally to a hostile length prefix.

func FuzzDecodeMsgFrame(f *testing.F) {
	for _, fr := range []*msgFrame{
		{Src: "urn:snipe:a", Dst: "urn:snipe:b", Tag: 7, Seq: 1, FragIdx: 0, FragCount: 1, Payload: []byte("hi")},
		{Src: "", Dst: "", Tag: 0, Seq: 0, FragIdx: 2, FragCount: 5, Payload: nil},
		{Src: "urn:snipe:x", Dst: "urn:snipe:y", Tag: AnyTag, Seq: 1 << 40, FragIdx: 9, FragCount: 10, Payload: bytes.Repeat([]byte{0xab}, 100)},
		{Src: "urn:snipe:s", Dst: "urn:snipe:d", Tag: 3, Seq: 8, FragIdx: 1, FragCount: 4, Flags: flagStriped, Payload: []byte("striped")},
	} {
		f.Add(encodeMsgFrame(fr)[1:]) // strip the frame-type byte, as the dispatcher does
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := decodeMsgFrame(xdr.NewDecoder(b))
		if err != nil {
			return
		}
		if fr.FragCount == 0 || fr.FragIdx >= fr.FragCount {
			t.Fatalf("decodeMsgFrame accepted inconsistent fragment %d/%d", fr.FragIdx, fr.FragCount)
		}
		// A successful decode must round-trip.
		again, err := decodeMsgFrame(xdr.NewDecoder(encodeMsgFrame(fr)[1:]))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Src != fr.Src || again.Dst != fr.Dst || again.Tag != fr.Tag ||
			again.Seq != fr.Seq || again.Flags != fr.Flags || !bytes.Equal(again.Payload, fr.Payload) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr, again)
		}
	})
}

func FuzzDecodeFragAck(f *testing.F) {
	f.Add(encodeFragAck("urn:snipe:a", "urn:snipe:b", 42, 7)[1:])
	f.Add(encodeFragAck("", "", 0, 0)[1:])
	f.Add([]byte{0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, b []byte) {
		src, dst, seq, idx, err := decodeFragAck(xdr.NewDecoder(b))
		if err != nil {
			return
		}
		b2 := encodeFragAck(src, dst, seq, idx)[1:]
		s2, d2, q2, i2, err := decodeFragAck(xdr.NewDecoder(b2))
		if err != nil || s2 != src || d2 != dst || q2 != seq || i2 != idx {
			t.Fatalf("frag-ack round-trip mismatch: %q %q %d %d err=%v", s2, d2, q2, i2, err)
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add(encodeHello("urn:snipe:node:1")[1:])
	f.Add(encodeHello("")[1:])
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		urn, err := decodeHello(xdr.NewDecoder(b))
		if err == nil && len(urn) > maxWireURN {
			t.Fatalf("decodeHello returned %d-byte URN beyond cap", len(urn))
		}
	})
}

func FuzzDecodeAck(f *testing.F) {
	f.Add(encodeAck("urn:snipe:a", "urn:snipe:b", 42)[1:])
	f.Add(encodeAck("", "", 0)[1:])
	f.Add([]byte{0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, b []byte) {
		src, dst, seq, err := decodeAck(xdr.NewDecoder(b))
		if err != nil {
			return
		}
		b2 := encodeAck(src, dst, seq)[1:]
		s2, d2, q2, err := decodeAck(xdr.NewDecoder(b2))
		if err != nil || s2 != src || d2 != dst || q2 != seq {
			t.Fatalf("ack round-trip mismatch: %q %q %d err=%v", s2, d2, q2, err)
		}
	})
}

// encodeAckBatchSeed builds a batch frame body (frame-type byte
// stripped) for fuzz seeding.
func encodeAckBatchSeed(ftype uint8, refs []ackRef) []byte {
	e := xdr.NewEncoder(64)
	return append([]byte(nil), encodeAckBatchInto(e, ftype, refs)[1:]...)
}

func FuzzDecodeAckBatch(f *testing.F) {
	f.Add(encodeAckBatchSeed(frameAckBatch, []ackRef{
		{src: "urn:snipe:a", dst: "urn:snipe:b", seq: 1},
		{src: "urn:snipe:a", dst: "urn:snipe:b", seq: 2},
	}))
	f.Add(encodeAckBatchSeed(frameAckBatch, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // hostile count, no entries
	f.Fuzz(func(t *testing.T, b []byte) {
		refs, err := decodeAckBatch(xdr.NewDecoder(b), false)
		if err != nil {
			return
		}
		// A successful decode must round-trip entry for entry.
		b2 := encodeAckBatchSeed(frameAckBatch, refs)
		again, err := decodeAckBatch(xdr.NewDecoder(b2), false)
		if err != nil || len(again) != len(refs) {
			t.Fatalf("re-decode: %d entries, err=%v (want %d)", len(again), err, len(refs))
		}
		for i := range refs {
			if again[i].src != refs[i].src || again[i].dst != refs[i].dst || again[i].seq != refs[i].seq {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, refs[i], again[i])
			}
		}
	})
}

func FuzzDecodeFragAckBatch(f *testing.F) {
	f.Add(encodeAckBatchSeed(frameFragAckBatch, []ackRef{
		{src: "urn:snipe:a", dst: "urn:snipe:b", seq: 9, fragIdx: 0},
		{src: "urn:snipe:a", dst: "urn:snipe:b", seq: 9, fragIdx: 3},
	}))
	f.Add(encodeAckBatchSeed(frameFragAckBatch, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		refs, err := decodeAckBatch(xdr.NewDecoder(b), true)
		if err != nil {
			return
		}
		b2 := encodeAckBatchSeed(frameFragAckBatch, refs)
		again, err := decodeAckBatch(xdr.NewDecoder(b2), true)
		if err != nil || len(again) != len(refs) {
			t.Fatalf("re-decode: %d entries, err=%v (want %d)", len(again), err, len(refs))
		}
		for i := range refs {
			if again[i] != refs[i] {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, refs[i], again[i])
			}
		}
	})
}

func FuzzParseRoute(f *testing.F) {
	for _, s := range []string{
		"tcp://127.0.0.1:7000",
		"rudp://10.0.0.1:7001;net=lab;rate=1000000",
		"tcp://host:1;net=;rate=0.5",
		"://",
		"tcp://",
		"tcp://h;bogus",
		"tcp://h;rate=notanumber",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRoute(s)
		if err != nil {
			return
		}
		if r.Transport == "" || r.Addr == "" {
			t.Fatalf("ParseRoute(%q) accepted empty transport or addr: %+v", s, r)
		}
		// Accepted routes must re-parse to the same route.
		again, err := ParseRoute(r.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", r.String(), s, err)
		}
		if again != r {
			t.Fatalf("round-trip mismatch: %+v vs %+v", r, again)
		}
	})
}

func FuzzDecodeSequenceState(f *testing.F) {
	var st SequenceState
	st.NextSeq = map[string]uint64{"urn:a": 3}
	st.Expected = map[string]uint64{"urn:b": 9}
	st.Mailbox = []Message{{Src: "urn:a", Dst: "urn:b", Tag: 5, Seq: 2, Payload: []byte("m")}}
	e := xdr.NewEncoder(128)
	st.Encode(e)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeSequenceState(xdr.NewDecoder(b))
	})
}
