package comm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"snipe/internal/xdr"
)

// Streaming request/response channels multiplexed over an Endpoint.
//
// A stream is a bidirectional, flow-controlled byte channel between two
// endpoints. Stream frames ride ordinary endpoint messages under one
// reserved tag (StreamTag), so they inherit everything the messaging
// substrate already provides — exactly-once delivery, per-source
// ordering, system buffering across peer migration, and striping of
// large data chunks across every healthy route. What the stream layer
// adds is conversation state: stream identity, byte-credit flow control
// per direction, graceful half-close, and abortive reset.
//
// Wire format (the payload of a StreamTag message), XDR-encoded:
//
//	kind   uint8  — streamOpen..streamWindow
//	id     uint64 — stream id, allocated by the opener
//	orig   uint8  — 1 when the frame's sender opened the stream
//	... kind-specific fields (see encode/decode below)
//
// The (peer, id, orig) triple names a stream uniquely: ids are scoped
// to their opener, and the orig bit keeps two endpoints that happen to
// pick the same id apart.
//
// Flow control is credit-based per direction. Each side grants its
// receive window up front (the opener's window rides in OPEN; the
// acceptor's initial grant is assumed symmetric — both muxes of a
// deployment run the same configuration) and replenishes credit with
// WINDOW frames as the application consumes received chunks. A writer
// that exhausts its credit blocks until the reader catches up, so a
// slow consumer backpressures the producer instead of ballooning the
// consumer's memory.

// StreamTag is the reserved message tag carrying stream frames.
// Applications must not send their own messages under it, and an
// endpoint hosting a StreamMux must leave StreamTag messages to the
// mailbox (a WithHandler endpoint needs explicit handler tags).
const StreamTag uint32 = ^uint32(0) - 1

// Stream frame kinds.
const (
	streamOpen   uint8 = iota + 1 // open a stream: method, initial window
	streamData                    // one chunk of stream data
	streamClose                   // half-close: no more data from this side
	streamReset                   // abort both directions: reason
	streamWindow                  // credit grant: delta bytes
)

// Stream layer errors.
var (
	// ErrStreamReset indicates the peer (or the local mux) aborted the
	// stream; the wrapped message carries the reset reason.
	ErrStreamReset = errors.New("comm: stream reset")
	// ErrDraining is the reset reason a draining mux gives new streams.
	ErrDraining = errors.New("comm: endpoint draining")
)

// drainReason is the on-wire reset reason for drain rejections; openers
// map it back to ErrDraining.
const drainReason = "draining"

const (
	// defaultStreamWindow is the per-stream, per-direction receive
	// window: how many bytes a peer may have in flight toward us before
	// it must wait for WINDOW grants.
	defaultStreamWindow = 1 << 20
	// defaultStreamChunk caps one DATA message's payload. At the default
	// it matches the endpoint's stripe threshold, so a saturated stream
	// produces exactly stripe-eligible messages and large responses ride
	// the multi-path substrate.
	defaultStreamChunk = 256 << 10
	// maxWireReason bounds a decoded reset reason.
	maxWireReason = 1024
)

// StreamMuxOption configures a StreamMux.
type StreamMuxOption func(*StreamMux)

// WithStreamWindow sets the per-stream receive window in bytes.
func WithStreamWindow(n int) StreamMuxOption {
	return func(m *StreamMux) {
		if n > 0 {
			m.window = n
		}
	}
}

// WithStreamChunk caps the payload of one stream DATA message.
func WithStreamChunk(n int) StreamMuxOption {
	return func(m *StreamMux) {
		if n > 0 {
			m.chunk = n
		}
	}
}

// WithAcceptBacklog bounds how many fully-arrived but not yet accepted
// streams queue before further opens are reset.
func WithAcceptBacklog(n int) StreamMuxOption {
	return func(m *StreamMux) {
		if n > 0 {
			m.backlog = n
		}
	}
}

// streamKey names a stream from the local endpoint's perspective.
type streamKey struct {
	peer   string
	id     uint64
	opened bool // we opened it
}

// StreamMux multiplexes streams over one Endpoint. One mux owns the
// endpoint's StreamTag traffic; the endpoint's other tags are untouched.
type StreamMux struct {
	ep      *Endpoint
	window  int
	chunk   int
	backlog int

	nextID   atomic.Uint64
	draining atomic.Bool

	mu      sync.Mutex
	streams map[streamKey]*Stream
	closed  bool

	accepts chan *Stream
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewStreamMux attaches a stream multiplexer to ep and starts its
// receive loop. Close the mux before (or instead of) closing the
// endpoint; closing the endpoint also unblocks the mux.
func NewStreamMux(ep *Endpoint, opts ...StreamMuxOption) *StreamMux {
	m := &StreamMux{
		ep:      ep,
		window:  defaultStreamWindow,
		chunk:   defaultStreamChunk,
		backlog: 64,
		streams: make(map[streamKey]*Stream),
	}
	for _, o := range opts {
		o(m)
	}
	m.accepts = make(chan *Stream, m.backlog)
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	m.wg.Add(1)
	go m.run(ctx)
	return m
}

// Endpoint returns the endpoint the mux rides on.
func (m *StreamMux) Endpoint() *Endpoint { return m.ep }

// Drain makes the mux refuse new incoming streams (they are reset with
// ErrDraining) while established streams keep flowing — the first step
// of a graceful replica shutdown.
func (m *StreamMux) Drain() { m.draining.Store(true) }

// Draining reports whether Drain has been called.
func (m *StreamMux) Draining() bool { return m.draining.Load() }

// ActiveStreams counts streams that are not yet fully closed.
func (m *StreamMux) ActiveStreams() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.streams)
}

// Close resets every open stream and stops the mux. The underlying
// endpoint stays open.
func (m *StreamMux) Close() {
	m.cancel()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	streams := make([]*Stream, 0, len(m.streams))
	for _, s := range m.streams {
		streams = append(streams, s)
	}
	m.streams = map[streamKey]*Stream{}
	m.mu.Unlock()
	for _, s := range streams {
		s.abortLocal(ErrClosed)
	}
	close(m.accepts)
	m.wg.Wait()
}

// Open starts a stream to dst for the named method. It returns as soon
// as the OPEN frame is accepted into the send buffer; a peer that
// refuses the stream (draining, overloaded, closed) surfaces as
// ErrStreamReset from the first Read/Write.
func (m *StreamMux) Open(ctx context.Context, dst, method string) (*Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(ctx)
	}
	id := m.nextID.Add(1)
	s := m.newStream(dst, id, true, method)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.streams[streamKey{dst, id, true}] = s
	m.mu.Unlock()
	if err := m.ep.Send(dst, StreamTag, encodeStreamOpen(id, true, method, uint32(m.window))); err != nil {
		m.remove(s)
		return nil, err
	}
	return s, nil
}

// Accept returns the next incoming stream, waiting until ctx ends.
func (m *StreamMux) Accept(ctx context.Context) (*Stream, error) {
	select {
	case s, ok := <-m.accepts:
		if !ok {
			return nil, ErrClosed
		}
		return s, nil
	case <-ctx.Done():
		return nil, ctxErr(ctx)
	}
}

// newStream builds the shared stream state.
func (m *StreamMux) newStream(peer string, id uint64, opened bool, method string) *Stream {
	s := &Stream{
		mux:        m,
		peer:       peer,
		id:         id,
		opened:     opened,
		method:     method,
		sendCredit: m.window,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// remove drops a stream from the routing table (frames for it are no
// longer expected).
func (m *StreamMux) remove(s *Stream) {
	m.mu.Lock()
	delete(m.streams, streamKey{s.peer, s.id, s.opened})
	m.mu.Unlock()
}

// run pulls StreamTag messages off the endpoint mailbox and dispatches
// them to stream state. Per-source ordering is inherited from the
// endpoint's sequencing, so OPEN precedes its DATA, and CLOSE follows.
func (m *StreamMux) run(ctx context.Context) {
	defer m.wg.Done()
	for {
		msg, err := m.ep.RecvMatch(ctx, "", StreamTag)
		if err != nil {
			return
		}
		m.handle(msg)
	}
}

// handle dispatches one decoded stream frame.
func (m *StreamMux) handle(msg *Message) {
	f, err := decodeStreamFrame(msg.Payload)
	if err != nil {
		return // tolerate malformed frames from foreign senders
	}
	// A frame whose sender opened the stream refers, locally, to a
	// stream we accepted; and vice versa.
	key := streamKey{msg.Src, f.id, !f.orig}
	m.mu.Lock()
	s, known := m.streams[key]
	m.mu.Unlock()

	switch f.kind {
	case streamOpen:
		m.handleOpen(msg.Src, f, known)
	case streamData:
		if !known {
			// The stream died locally (reset) while this chunk was in
			// flight; tell the peer to stop.
			m.reset(msg.Src, f.id, !key.opened, "unknown stream")
			return
		}
		s.deliver(f.data)
	case streamClose:
		if known {
			s.closeRecv()
			m.reapIfDone(s)
		}
	case streamReset:
		if known {
			m.remove(s)
			reason := f.reason
			if reason == drainReason {
				s.abortLocal(fmt.Errorf("%w: %w", ErrStreamReset, ErrDraining))
			} else {
				s.abortLocal(fmt.Errorf("%w: %s", ErrStreamReset, reason))
			}
		}
	case streamWindow:
		if known {
			s.grant(int(f.delta))
		}
	}
}

// handleOpen admits (or refuses) one incoming stream.
func (m *StreamMux) handleOpen(src string, f *streamFrame, known bool) {
	if known {
		return // duplicate OPEN cannot happen over exactly-once delivery; ignore
	}
	if m.draining.Load() {
		m.reset(src, f.id, false, drainReason)
		return
	}
	s := m.newStream(src, f.id, false, f.method)
	// The opener granted us its receive window explicitly.
	s.mu.Lock()
	s.sendCredit = int(f.delta)
	s.mu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.reset(src, f.id, false, "closed")
		return
	}
	m.streams[streamKey{src, f.id, false}] = s
	m.mu.Unlock()
	select {
	case m.accepts <- s:
	default:
		m.remove(s)
		m.reset(src, f.id, false, "accept backlog full")
	}
}

// reset sends an abortive RESET for a stream (best-effort).
func (m *StreamMux) reset(peer string, id uint64, orig bool, reason string) {
	_ = m.ep.Send(peer, StreamTag, encodeStreamReset(id, orig, reason))
}

// reapIfDone removes a stream whose both directions have closed.
func (m *StreamMux) reapIfDone(s *Stream) {
	s.mu.Lock()
	done := s.sendClosed && s.recvEOF
	s.mu.Unlock()
	if done {
		m.remove(s)
	}
}

// Stream is one bidirectional flow-controlled channel. Reads and
// writes from multiple goroutines are safe; chunks are delivered in
// order within each direction.
type Stream struct {
	mux    *StreamMux
	peer   string
	id     uint64
	opened bool
	method string

	mu         sync.Mutex
	cond       *sync.Cond
	sendCredit int
	sendClosed bool
	recvQ      [][]byte
	recvEOF    bool
	failure    error
}

// Method returns the method name the stream was opened with.
func (s *Stream) Method() string { return s.method }

// Peer returns the remote endpoint's URN.
func (s *Stream) Peer() string { return s.peer }

// deliver queues one received chunk.
func (s *Stream) deliver(data []byte) {
	s.mu.Lock()
	if s.failure == nil && !s.recvEOF {
		s.recvQ = append(s.recvQ, data)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// closeRecv marks the peer's half-close.
func (s *Stream) closeRecv() {
	s.mu.Lock()
	s.recvEOF = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// grant adds send credit.
func (s *Stream) grant(n int) {
	s.mu.Lock()
	s.sendCredit += n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// abortLocal fails the stream locally (peer reset, mux close).
func (s *Stream) abortLocal(err error) {
	s.mu.Lock()
	if s.failure == nil {
		s.failure = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// wake arranges for the stream's cond to broadcast when ctx ends; the
// returned stop function releases the watcher.
func (s *Stream) wake(ctx context.Context) func() bool {
	return context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
}

// Read returns the next received chunk, waiting until data arrives,
// the peer half-closes (io.EOF after the queue drains), the stream
// fails, or ctx ends. The returned slice is owned by the caller.
func (s *Stream) Read(ctx context.Context) ([]byte, error) {
	stop := s.wake(ctx)
	defer stop()
	s.mu.Lock()
	for {
		if len(s.recvQ) > 0 {
			chunk := s.recvQ[0]
			s.recvQ = s.recvQ[1:]
			s.mu.Unlock()
			// Replenish the peer's credit for what we consumed.
			if len(chunk) > 0 {
				_ = s.mux.ep.Send(s.peer, StreamTag,
					encodeStreamWindow(s.id, s.opened, uint32(len(chunk))))
			}
			return chunk, nil
		}
		if s.failure != nil {
			err := s.failure
			s.mu.Unlock()
			return nil, err
		}
		if s.recvEOF {
			s.mu.Unlock()
			return nil, io.EOF
		}
		if ctx.Err() != nil {
			s.mu.Unlock()
			return nil, ctxErr(ctx)
		}
		s.cond.Wait()
	}
}

// Write sends p, chunking to the mux's chunk size and blocking for
// flow-control credit as needed. It returns once every chunk is
// accepted into the endpoint's reliable send buffer.
func (s *Stream) Write(ctx context.Context, p []byte) error {
	stop := s.wake(ctx)
	defer stop()
	for first := true; first || len(p) > 0; first = false {
		n := len(p)
		if n > s.mux.chunk {
			n = s.mux.chunk
		}
		s.mu.Lock()
		for s.failure == nil && !s.sendClosed && s.sendCredit < n && ctx.Err() == nil {
			s.cond.Wait()
		}
		if err := s.failure; err != nil {
			s.mu.Unlock()
			return err
		}
		if s.sendClosed {
			s.mu.Unlock()
			return fmt.Errorf("%w: write after CloseWrite", ErrStreamReset)
		}
		if ctx.Err() != nil {
			s.mu.Unlock()
			return ctxErr(ctx)
		}
		s.sendCredit -= n
		s.mu.Unlock()
		if n == 0 {
			return nil // zero-length write: just the state check above
		}
		if err := s.mux.ep.Send(s.peer, StreamTag, encodeStreamData(s.id, s.opened, p[:n])); err != nil {
			s.grant(n) // credit was not used
			return err
		}
		p = p[n:]
	}
	return nil
}

// CloseWrite half-closes the stream: the peer's reads drain and then
// return io.EOF; reads on this side continue until the peer closes.
func (s *Stream) CloseWrite() error {
	s.mu.Lock()
	if s.failure != nil {
		err := s.failure
		s.mu.Unlock()
		return err
	}
	if s.sendClosed {
		s.mu.Unlock()
		return nil
	}
	s.sendClosed = true
	s.mu.Unlock()
	err := s.mux.ep.Send(s.peer, StreamTag, encodeStreamClose(s.id, s.opened))
	s.mux.reapIfDone(s)
	return err
}

// Reset aborts the stream in both directions with the given reason.
func (s *Stream) Reset(reason string) {
	s.mux.remove(s)
	s.abortLocal(fmt.Errorf("%w: %s (local)", ErrStreamReset, reason))
	s.mux.reset(s.peer, s.id, s.opened, reason)
}

// --- wire encoding -------------------------------------------------------

// streamFrame is a decoded stream frame.
type streamFrame struct {
	kind   uint8
	id     uint64
	orig   bool
	method string // streamOpen
	delta  uint32 // streamOpen (initial window), streamWindow (grant)
	data   []byte // streamData (copied out of the message payload)
	reason string // streamReset
}

func putStreamHeader(e *xdr.Encoder, kind uint8, id uint64, orig bool) {
	e.PutUint8(kind)
	e.PutUint64(id)
	if orig {
		e.PutUint8(1)
	} else {
		e.PutUint8(0)
	}
}

func encodeStreamOpen(id uint64, orig bool, method string, window uint32) []byte {
	e := xdr.NewEncoder(len(method) + 20)
	putStreamHeader(e, streamOpen, id, orig)
	e.PutString(method)
	e.PutUint32(window)
	return e.Bytes()
}

func encodeStreamData(id uint64, orig bool, data []byte) []byte {
	e := xdr.NewEncoder(len(data) + 20)
	putStreamHeader(e, streamData, id, orig)
	e.PutBytes(data)
	return e.Bytes()
}

func encodeStreamClose(id uint64, orig bool) []byte {
	e := xdr.NewEncoder(16)
	putStreamHeader(e, streamClose, id, orig)
	return e.Bytes()
}

func encodeStreamReset(id uint64, orig bool, reason string) []byte {
	e := xdr.NewEncoder(len(reason) + 20)
	putStreamHeader(e, streamReset, id, orig)
	e.PutString(reason)
	return e.Bytes()
}

func encodeStreamWindow(id uint64, orig bool, delta uint32) []byte {
	e := xdr.NewEncoder(20)
	putStreamHeader(e, streamWindow, id, orig)
	e.PutUint32(delta)
	return e.Bytes()
}

func decodeStreamFrame(payload []byte) (*streamFrame, error) {
	d := xdr.NewDecoder(payload)
	f := &streamFrame{}
	var err error
	if f.kind, err = d.Uint8(); err != nil {
		return nil, err
	}
	if f.id, err = d.Uint64(); err != nil {
		return nil, err
	}
	origB, err := d.Uint8()
	if err != nil {
		return nil, err
	}
	f.orig = origB != 0
	switch f.kind {
	case streamOpen:
		if f.method, err = d.StringMax(maxWireURN); err != nil {
			return nil, err
		}
		if f.delta, err = d.Uint32(); err != nil {
			return nil, err
		}
	case streamData:
		if f.data, err = d.BytesMax(MaxMessageSize); err != nil {
			return nil, err
		}
	case streamClose:
	case streamReset:
		if f.reason, err = d.StringMax(maxWireReason); err != nil {
			return nil, err
		}
	case streamWindow:
		if f.delta, err = d.Uint32(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: stream frame kind %d", ErrBadFrame, f.kind)
	}
	return f, nil
}
