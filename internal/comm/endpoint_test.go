package comm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// testResolver is a mutable resolver shared by test endpoints.
type testResolver struct {
	mu sync.Mutex
	m  map[string][]Route
}

func newTestResolver() *testResolver {
	return &testResolver{m: make(map[string][]Route)}
}

func (r *testResolver) Resolve(urn string) ([]Route, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Route(nil), r.m[urn]...), nil
}

func (r *testResolver) set(urn string, routes ...Route) {
	r.mu.Lock()
	r.m[urn] = routes
	r.mu.Unlock()
}

// newTestEndpoint creates an endpoint listening on loopback TCP and
// registers it with the resolver.
func newTestEndpoint(t testing.TB, urn string, res *testResolver, opts ...EndpointOption) *Endpoint {
	t.Helper()
	opts = append([]EndpointOption{
		WithResolver(res),
		WithRetryInterval(50 * time.Millisecond),
	}, opts...)
	e := NewEndpoint(urn, opts...)
	route, err := e.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	res.set(urn, route)
	t.Cleanup(e.Close)
	return e
}

func TestEndpointSendRecv(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:snipe:a", res)
	b := newTestEndpoint(t, "urn:snipe:b", res)

	if err := a.Send("urn:snipe:b", 5, []byte("hello b")); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(b, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != "urn:snipe:a" || m.Dst != "urn:snipe:b" || m.Tag != 5 || string(m.Payload) != "hello b" {
		t.Fatalf("message: %+v", m)
	}
	// Reply over the reverse path.
	if err := b.Send("urn:snipe:a", 6, []byte("hello a")); err != nil {
		t.Fatal(err)
	}
	m, err = recvT(a, 3*time.Second)
	if err != nil || string(m.Payload) != "hello a" {
		t.Fatalf("reply: %v %v", m, err)
	}
}

func TestEndpointOrderedDelivery(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	b := newTestEndpoint(t, "urn:b", res)
	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send("urn:b", 0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := recvT(b, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload[0] != byte(i) {
			t.Fatalf("order violated at %d: got %d", i, m.Payload[0])
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("seq at %d: %d", i, m.Seq)
		}
	}
}

func TestEndpointRecvMatch(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	b := newTestEndpoint(t, "urn:b", res)
	c := newTestEndpoint(t, "urn:c", res)

	a.Send("urn:c", 1, []byte("from-a"))
	b.Send("urn:c", 2, []byte("from-b"))

	// Selective receive by tag.
	m, err := recvMatchT(c, "", 2, 3*time.Second)
	if err != nil || string(m.Payload) != "from-b" {
		t.Fatalf("tag match: %v %v", m, err)
	}
	// Selective receive by source.
	m, err = recvMatchT(c, "urn:a", AnyTag, 3*time.Second)
	if err != nil || string(m.Payload) != "from-a" {
		t.Fatalf("src match: %v %v", m, err)
	}
	// Nothing left.
	if _, err := recvT(c, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
}

func TestEndpointLargeMessageFragmentation(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	b := newTestEndpoint(t, "urn:b", res)
	payload := make([]byte, 1<<20) // 1 MiB: many fragments on TCP
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := sendWaitT(a, "urn:b", 9, payload, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(b, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestEndpointSendWaitAck(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	newTestEndpoint(t, "urn:b", res)
	if err := sendWaitT(a, "urn:b", 0, []byte("x"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := a.Pending(); n != 0 {
		t.Fatalf("outstanding after ack: %d", n)
	}
}

func TestEndpointBuffersForUnknownPeer(t *testing.T) {
	// The destination does not exist yet: the message must be buffered
	// and delivered once the peer appears — the paper's system
	// buffering for "temporarily unavailable tasks".
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	if err := a.Send("urn:late", 3, []byte("early bird")); err != nil {
		t.Fatal(err)
	}
	if n := a.Pending(); n != 1 {
		t.Fatalf("pending = %d", n)
	}
	time.Sleep(100 * time.Millisecond)
	late := newTestEndpoint(t, "urn:late", res)
	m, err := recvT(late, 5*time.Second)
	if err != nil || string(m.Payload) != "early bird" {
		t.Fatalf("buffered delivery: %v %v", m, err)
	}
	// The buffer drains after the ack.
	waitFor(t, 3*time.Second, func() bool { return a.Pending() == 0 }, "buffer not drained")
}

func TestEndpointWithoutBufferingFailsFast(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res, WithoutBuffering())
	err := a.Send("urn:nobody", 0, []byte("x"))
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
	if a.Pending() != 0 {
		t.Fatal("message buffered despite WithoutBuffering")
	}
}

func TestEndpointRouteFailover(t *testing.T) {
	// Peer advertises two routes; the first is dead. Send must succeed
	// via the second — "the ability to switch routes/interfaces as
	// links failed without user applications intervention" (§6).
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	b := NewEndpoint("urn:b", WithResolver(res))
	defer b.Close()
	good, err := b.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	dead := Route{Transport: "tcp", Addr: "127.0.0.1:1", RateBps: 1e9} // preferred but dead
	res.set("urn:b", dead, good)

	if err := sendWaitT(a, "urn:b", 0, []byte("via backup"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(b, 3*time.Second)
	if err != nil || string(m.Payload) != "via backup" {
		t.Fatalf("failover: %v %v", m, err)
	}
}

func TestEndpointMidStreamFailover(t *testing.T) {
	// The peer's primary listener dies mid-stream; buffered retry must
	// redeliver over the surviving route with no loss and no
	// duplication.
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	b := NewEndpoint("urn:b", WithResolver(res))
	defer b.Close()
	r1, err := b.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0", RateBps: 2e9}) // preferred
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0", RateBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	res.set("urn:b", r1, r2)

	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send("urn:b", 0, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
			if i == 20 {
				// Kill the preferred listener mid-stream.
				b.connMu.Lock()
				ln := b.listeners[0].ln
				b.connMu.Unlock()
				ln.Close()
			}
		}
	}()
	got := make([]bool, n)
	for i := 0; i < n; i++ {
		m, err := recvT(b, 10*time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got[m.Payload[0]] {
			t.Fatalf("duplicate delivery of %d", m.Payload[0])
		}
		got[m.Payload[0]] = true
	}
}

func TestEndpointDuplicateSuppression(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res, WithRetryInterval(30*time.Millisecond))
	b := newTestEndpoint(t, "urn:b", res)
	if err := sendWaitT(a, "urn:b", 0, []byte("once"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Force a manual re-transmit of an already-acked message by
	// simulating a stale retry: the receiver must re-ack but not
	// re-deliver.
	om := &outMsg{msg: Message{Src: "urn:a", Dst: "urn:b", Tag: 0, Seq: 1, Payload: []byte("once")}, acked: make(chan struct{})}
	if err := a.transmit(om); err != nil {
		t.Fatal(err)
	}
	if m, err := recvT(b, 3*time.Second); err != nil || string(m.Payload) != "once" {
		t.Fatalf("first delivery: %v %v", m, err)
	}
	if _, err := recvT(b, 200*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("duplicate delivered: %v", err)
	}
	if dups := b.MetricsSnapshot().Counters["duplicates"]; dups == 0 {
		t.Fatal("duplicate not counted")
	}
}

func TestEndpointHandlerMode(t *testing.T) {
	res := newTestResolver()
	got := make(chan *Message, 1)
	a := newTestEndpoint(t, "urn:a", res)
	newTestEndpoint(t, "urn:h", res, WithHandler(func(m *Message) { got <- m }))
	if err := a.Send("urn:h", 4, []byte("handled")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Payload) != "handled" || m.Tag != 4 {
			t.Fatalf("handler message: %+v", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("handler never called")
	}
}

func TestEndpointBufferLimit(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res, WithBufferLimit(3))
	for i := 0; i < 3; i++ {
		if err := a.Send("urn:void", 0, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Send("urn:void", 0, []byte{1}); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("want ErrBufferFull, got %v", err)
	}
}

func TestEndpointCloseSemantics(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	done := make(chan error, 1)
	go func() {
		_, err := recvT(a, 10*time.Second)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Recv not unblocked by Close")
	}
	if err := a.Send("urn:x", 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	a.Close() // idempotent
}

func TestEndpointOverRUDPTransport(t *testing.T) {
	res := newTestResolver()
	a := NewEndpoint("urn:a", WithResolver(res))
	defer a.Close()
	b := NewEndpoint("urn:b", WithResolver(res))
	defer b.Close()
	ra, err := a.Listen(ListenSpec{Transport: "rudp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Listen(ListenSpec{Transport: "rudp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	res.set("urn:a", ra)
	res.set("urn:b", rb)

	payload := make([]byte, 100_000) // forces RUDP fragmentation
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := sendWaitT(a, "urn:b", 1, payload, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(b, 5*time.Second)
	if err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("rudp transport: len=%d err=%v", len(m.Payload), err)
	}
}

func TestEndpointSequenceSnapshotRestore(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	b1 := newTestEndpoint(t, "urn:b", res)
	for i := 0; i < 5; i++ {
		if err := sendWaitT(a, "urn:b", 0, []byte{byte(i)}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := recvT(b1, 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// "Migrate" b: capture sequences, close, restart elsewhere.
	snap := b1.SnapshotSequences()
	if snap.Expected["urn:a"] != 6 {
		t.Fatalf("snapshot expected = %d", snap.Expected["urn:a"])
	}
	b1.Close()
	b2 := NewEndpoint("urn:b", WithResolver(res))
	defer b2.Close()
	b2.RestoreSequences(snap)
	route, err := b2.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	res.set("urn:b", route)

	// Continue the stream: next message is seq 6 and must deliver.
	if err := sendWaitT(a, "urn:b", 0, []byte{99}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(b2, 5*time.Second)
	if err != nil || m.Payload[0] != 99 || m.Seq != 6 {
		t.Fatalf("post-migration: %+v %v", m, err)
	}
}

func TestEndpointStats(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:a", res)
	b := newTestEndpoint(t, "urn:b", res)
	sendWaitT(a, "urn:b", 0, []byte("x"), 5*time.Second)
	recvT(b, time.Second)
	sent := a.MetricsSnapshot().Counters["sent"]
	recv := b.MetricsSnapshot().Counters["received"]
	if sent != 1 || recv != 1 {
		t.Fatalf("stats: sent=%d recv=%d", sent, recv)
	}
}

func BenchmarkEndpointPingPongTCP(b *testing.B) {
	res := newTestResolver()
	a := NewEndpoint("urn:a", WithResolver(res))
	defer a.Close()
	bb := NewEndpoint("urn:b", WithResolver(res))
	defer bb.Close()
	ra, _ := a.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	rb, _ := bb.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	res.set("urn:a", ra)
	res.set("urn:b", rb)
	//lint:allow goroutinelife echo responder exits when recvT errors after the deferred Close
	go func() {
		for {
			m, err := recvT(bb, 10*time.Second)
			if err != nil {
				return
			}
			bb.Send("urn:a", m.Tag, m.Payload)
		}
	}()
	payload := []byte("ping")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send("urn:b", 0, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := recvT(a, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEndpointConcurrentSenders(t *testing.T) {
	res := newTestResolver()
	sink := newTestEndpoint(t, "urn:sink", res)
	const nSenders, nMsgs = 4, 25
	for s := 0; s < nSenders; s++ {
		src := newTestEndpoint(t, fmt.Sprintf("urn:s%d", s), res)
		go func(e *Endpoint, id int) {
			for i := 0; i < nMsgs; i++ {
				e.Send("urn:sink", uint32(id), []byte{byte(i)})
			}
		}(src, s)
	}
	perSender := make(map[uint32]int)
	for i := 0; i < nSenders*nMsgs; i++ {
		m, err := recvT(sink, 10*time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		// Per-sender FIFO: payload must equal that sender's count.
		if int(m.Payload[0]) != perSender[m.Tag] {
			t.Fatalf("sender %d order: want %d got %d", m.Tag, perSender[m.Tag], m.Payload[0])
		}
		perSender[m.Tag]++
	}
}
