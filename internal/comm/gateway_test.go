package comm

import (
	"bytes"
	"testing"
	"time"
)

// gatewayWorld: sender can reach the gateway; the receiver advertises
// only a gateway route (a "non-IP host" behind a bridge, §5.1).
func gatewayWorld(t *testing.T) (sender, gateway, receiver *Endpoint, res *testResolver) {
	t.Helper()
	res = newTestResolver()

	gateway = NewEndpoint("urn:gw", WithResolver(res), WithGatewayRelay())
	t.Cleanup(gateway.Close)
	gwRoute, err := gateway.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	res.set("urn:gw", gwRoute)

	receiver = NewEndpoint("urn:behind", WithResolver(res))
	t.Cleanup(receiver.Close)
	rRoute, err := receiver.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	// The gateway resolves the receiver's real address; senders only see
	// the gateway route.
	_ = rRoute

	sender = NewEndpoint("urn:outside", WithResolver(res), WithRetryInterval(50*time.Millisecond))
	t.Cleanup(sender.Close)
	sRoute, err := sender.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	res.set("urn:outside", GatewayRoute("urn:gw"), sRoute)
	res.set("urn:behind", GatewayRoute("urn:gw"))

	// Only the gateway knows the direct route. The shared resolver is a
	// simplification; give the gateway its own view.
	gwView := newTestResolver()
	gwView.set("urn:behind", rRoute)
	gwView.set("urn:outside", sRoute)
	gateway.SetResolver(gwView)
	return
}

func TestGatewayRelayDelivery(t *testing.T) {
	sender, _, receiver, _ := gatewayWorld(t)
	if err := sendWaitT(sender, "urn:behind", 7, []byte("through the wall"), 10*time.Second); err != nil {
		t.Fatalf("SendWait via gateway: %v", err)
	}
	m, err := recvT(receiver, 5*time.Second)
	if err != nil || string(m.Payload) != "through the wall" {
		t.Fatalf("recv: %v %v", m, err)
	}
	if m.Src != "urn:outside" || m.Tag != 7 || m.Seq != 1 {
		t.Fatalf("message identity: %+v", m)
	}
}

func TestGatewayRelayLargeAndOrdered(t *testing.T) {
	sender, _, receiver, _ := gatewayWorld(t)
	big := make([]byte, 300_000)
	for i := range big {
		big[i] = byte(i * 13)
	}
	for i := 0; i < 5; i++ {
		if err := sender.Send("urn:behind", uint32(i), big); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := recvT(receiver, 10*time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if int(m.Tag) != i || !bytes.Equal(m.Payload, big) {
			t.Fatalf("message %d: tag=%d len=%d", i, m.Tag, len(m.Payload))
		}
	}
	// End-to-end acks drained the sender's buffer.
	deadline := time.Now().Add(5 * time.Second)
	for sender.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d", sender.Pending())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGatewayReplyPath(t *testing.T) {
	sender, _, receiver, _ := gatewayWorld(t)
	if err := sender.Send("urn:behind", 1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(receiver, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver replies through the gateway too (its resolver maps
	// urn:outside to the gateway route only? In this world the receiver
	// shares the sender-side resolver, which lists the gateway first and
	// the direct route second — either path must work).
	if err := sendWaitT(receiver, m.Src, 2, []byte("pong"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := recvMatchT(sender, "urn:behind", 2, 5*time.Second)
	if err != nil || string(r.Payload) != "pong" {
		t.Fatalf("reply: %v %v", r, err)
	}
}

func TestGatewayCrashFailsOverToSecondGateway(t *testing.T) {
	res := newTestResolver()
	gwView := newTestResolver()
	mkGW := func(urn string) *Endpoint {
		gw := NewEndpoint(urn, WithResolver(gwView), WithGatewayRelay())
		t.Cleanup(gw.Close)
		route, err := gw.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		res.set(urn, route)
		gwView.set(urn, route)
		return gw
	}
	gw1 := mkGW("urn:gw1")
	mkGW("urn:gw2")

	receiver := NewEndpoint("urn:behind", WithResolver(res))
	t.Cleanup(receiver.Close)
	rRoute, err := receiver.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	gwView.set("urn:behind", rRoute) // only gateways see the direct route
	res.set("urn:behind", GatewayRoute("urn:gw1"), GatewayRoute("urn:gw2"))

	sender := NewEndpoint("urn:outside", WithResolver(res), WithRetryInterval(50*time.Millisecond))
	t.Cleanup(sender.Close)
	sRoute, err := sender.Listen(ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	res.set("urn:outside", sRoute)
	gwView.set("urn:outside", sRoute)

	// The preferred gateway is dead; the send must reach the receiver
	// via the second.
	gw1.Close()
	if err := sendWaitT(sender, "urn:behind", 3, []byte("survives"), 10*time.Second); err != nil {
		t.Fatalf("send after gateway crash: %v", err)
	}
	m, err := recvT(receiver, 5*time.Second)
	if err != nil || string(m.Payload) != "survives" {
		t.Fatalf("recv: %v %v", m, err)
	}
}

func TestGatewayNoChains(t *testing.T) {
	// A gateway whose own routes are gateway routes must not be used
	// (cycle guard): the send fails with no route rather than looping.
	res := newTestResolver()
	sender := NewEndpoint("urn:s", WithResolver(res), WithoutBuffering())
	t.Cleanup(sender.Close)
	res.set("urn:dst", GatewayRoute("urn:gwA"))
	res.set("urn:gwA", GatewayRoute("urn:gwB"))
	res.set("urn:gwB", GatewayRoute("urn:gwA"))
	if err := sender.Send("urn:dst", 1, []byte("x")); err == nil {
		t.Fatal("chained gateway send succeeded")
	}
}
