package comm

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestPayloadClassFor(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0},
		{1, 0},
		{4 << 10, 0},
		{4<<10 + 1, 1},
		{tcpFragmentSize, 1},
		{tcpFragmentSize + 1024, 1},
		{tcpFragmentSize + 1025, 2},
		{unixFragmentSize + 1024, 2},
		{unixFragmentSize + 1025, 3},
		{maxWireFrame, 3},
		{maxWireFrame + 1, 4},
		{maxPooledPayload, 4},
		{maxPooledPayload + 1, -1},
	}
	for _, c := range cases {
		if got := payloadClassFor(c.n); got != c.want {
			t.Errorf("payloadClassFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPayloadPoolRoundTrip(t *testing.T) {
	for _, n := range []int{1, 100, 4 << 10, tcpFragmentSize, maxWireFrame, maxPooledPayload} {
		b := getPayloadBuf(n)
		if len(b) != n {
			t.Fatalf("getPayloadBuf(%d) len = %d", n, len(b))
		}
		if ci := payloadClassFor(n); ci >= 0 && cap(b) > payloadClasses[ci] {
			t.Fatalf("getPayloadBuf(%d) cap %d overshoots class %d", n, cap(b), payloadClasses[ci])
		}
		putPayloadBuf(b)
	}
	// Oversize buffers bypass the pool entirely.
	big := getPayloadBuf(maxPooledPayload + 1)
	if len(big) != maxPooledPayload+1 {
		t.Fatalf("oversize len = %d", len(big))
	}
	putPayloadBuf(big) // dropped, not pooled: must not panic
	putPayloadBuf(nil) // cap 0: ignored
}

// TestRecycledReceiveBufferNotVisibleToHandler is the zero-copy
// regression test: with pooled receive buffers flowing through
// reassembly, a payload delivered to an application handler must never
// alias a buffer the pool has recycled into a later frame. The handler
// holds every delivered payload while fresh traffic churns the pool;
// any aliasing corrupts a held payload (and trips -race).
func TestRecycledReceiveBufferNotVisibleToHandler(t *testing.T) {
	res := newTestResolver()
	type held struct {
		idx     int
		payload []byte
	}
	heldCh := make(chan held, 256)
	pattern := func(idx, n int) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(idx*31 + i*7)
		}
		return p
	}
	newTestEndpoint(t, "urn:zc-sink", res, WithHandler(func(m *Message) {
		heldCh <- held{int(m.Tag), m.Payload}
	}))
	a := newTestEndpoint(t, "urn:zc-src", res)

	// Multi-fragment messages exercise the reassembly parking path;
	// interleaved small messages churn the same pool classes.
	const nMsgs = 40
	size := 3*tcpFragmentSize + 17
	go func() {
		for i := 0; i < nMsgs; i++ {
			if err := sendWaitT(a, "urn:zc-sink", uint32(i), pattern(i, size), 10*time.Second); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			a.Send("urn:zc-sink", uint32(nMsgs+i), []byte(fmt.Sprintf("churn-%d", i)))
		}
	}()

	var kept []held
	deadline := time.After(30 * time.Second)
	for len(kept) < 2*nMsgs {
		select {
		case h := <-heldCh:
			kept = append(kept, h)
		case <-deadline:
			t.Fatalf("only %d/%d messages delivered", len(kept), 2*nMsgs)
		}
	}
	// Every held payload must still read back exactly as sent, however
	// much pool churn happened since its delivery.
	for _, h := range kept {
		if h.idx < nMsgs {
			if !bytes.Equal(h.payload, pattern(h.idx, size)) {
				t.Fatalf("held payload %d corrupted by buffer recycling", h.idx)
			}
		} else {
			want := fmt.Sprintf("churn-%d", h.idx-nMsgs)
			if string(h.payload) != want {
				t.Fatalf("held payload %d = %q, want %q", h.idx, h.payload, want)
			}
		}
	}
}

// TestReassemblyReleaseRecyclesBacking checks the reassembly's
// ownership bookkeeping directly: parked buffers are recycled exactly
// once, on completion or release, and duplicates are never retained.
func TestReassemblyReleaseRecyclesBacking(t *testing.T) {
	frames := fragment("s", "d", 1, 1, bytes.Repeat([]byte{0xaa}, 300), 100, 0)
	if len(frames) != 3 {
		t.Fatalf("fragment count = %d", len(frames))
	}
	r := newReassembly(frames[0].FragCount, 1, "d")
	// Park two fragments with pooled backings.
	for i := 0; i < 2; i++ {
		buf := getPayloadBuf(len(frames[i].Payload))
		copy(buf, frames[i].Payload)
		frames[i].Payload = buf
		payload, retained, err := r.add(frames[i], buf)
		if payload != nil || !retained || err != nil {
			t.Fatalf("park %d: payload=%v retained=%v err=%v", i, payload != nil, retained, err)
		}
	}
	// A duplicate is not retained: caller keeps ownership.
	dupBuf := getPayloadBuf(len(frames[0].Payload))
	dup := *frames[0]
	dup.Payload = dupBuf
	if _, retained, err := r.add(&dup, dupBuf); retained || err != nil {
		t.Fatalf("duplicate: retained=%v err=%v", retained, err)
	}
	putPayloadBuf(dupBuf)
	// Abandon: release must nil out and recycle both parked backings.
	r.release()
	for i := range r.backing {
		if r.backing[i] != nil || r.frags[i] != nil {
			t.Fatalf("release left fragment %d parked", i)
		}
	}
	// Completion recycles automatically and returns a fresh payload.
	r2 := newReassembly(2, 0, "d")
	f2 := fragment("s", "d", 0, 2, []byte("ab"), 1, 0)
	var out []byte
	for _, f := range f2 {
		buf := getPayloadBuf(len(f.Payload))
		copy(buf, f.Payload)
		f.Payload = buf
		payload, _, err := r2.add(f, buf)
		if err != nil {
			t.Fatal(err)
		}
		if payload != nil {
			out = payload
		}
	}
	if string(out) != "ab" {
		t.Fatalf("assembled %q", out)
	}
	for i := range r2.backing {
		if r2.backing[i] != nil {
			t.Fatalf("completion left backing %d unrecycled", i)
		}
	}
}
