package comm

import (
	"fmt"
	"sync"
	"time"
)

// Multi-path striped transmission. A large message to a multi-homed
// peer is fragmented once (at the smallest MTU among the participating
// routes, so every transmission of the message shares one fragment
// geometry) and the fragments are pulled by one worker goroutine per
// route: each worker keeps up to stripeWindow fragments in flight and
// pulls the next queued fragment as its per-fragment acknowledgements
// come back, so faster media naturally carry more of the message. A
// route that fails mid-stripe — a send error, or no acknowledgement
// progress for the stall window — has its in-flight fragments requeued
// onto the surviving routes. Exactly-once delivery never depends on
// any of this: the receiver reassembles by (src, dst, seq, fragment)
// and deduplicates by sequence number, and the whole-message retry
// path remains the loss backstop, so striping can only add bandwidth,
// not failure modes.

// Fragment lifecycle inside one stripe.
const (
	fragQueued   uint8 = iota // awaiting a route
	fragReserved              // claimed by a worker, send in progress
	fragSent                  // pushed into a conn, awaiting frag-ack
	fragAcked                 // acknowledged by the receiver
)

// stripeState tracks one striped message in flight.
type stripeState struct {
	mu     sync.Mutex
	frags  []*msgFrame
	state  []uint8  // per-fragment lifecycle
	route  []string // per-fragment owning route while reserved/sent
	sentAt []time.Time

	queue    []int          // fragment indices awaiting a route (LIFO)
	perRoute map[string]int // route key → fragments reserved or sent
	failed   map[string]bool
	unsent   int // fragments in fragQueued or fragReserved
	acked    int
	requeues int
	canceled bool

	// lastAck is the stall clock: the last time acknowledgement
	// progress was made (or stalled routes were failed, which restarts
	// the clock for the survivors). Only acks — not sends — count as
	// progress, so a sender that keeps pushing fragments into a black
	// hole still trips the stall window.
	lastAck time.Time

	// gen/waitCh implement a timed condition wait (sync.Cond cannot):
	// every state change bumps gen and closes waitCh.
	gen    uint64
	waitCh chan struct{}
}

func newStripe(frags []*msgFrame) *stripeState {
	s := &stripeState{
		frags:    frags,
		state:    make([]uint8, len(frags)),
		route:    make([]string, len(frags)),
		sentAt:   make([]time.Time, len(frags)),
		queue:    make([]int, len(frags)),
		perRoute: make(map[string]int),
		failed:   make(map[string]bool),
		unsent:   len(frags),
		lastAck:  time.Now(),
		waitCh:   make(chan struct{}),
	}
	for i := range frags {
		s.queue[i] = i
	}
	return s
}

// broadcastLocked wakes every timed waiter. Caller holds s.mu.
func (s *stripeState) broadcastLocked() {
	s.gen++
	close(s.waitCh)
	s.waitCh = make(chan struct{})
}

// next claims the next queued fragment for the worker on routeKey,
// honouring its in-flight window. It blocks while the worker has
// nothing to do but the stripe is still in progress. Returns ok=false
// when the worker should exit: the stripe is complete or canceled,
// the route has been declared failed, or no acknowledgement has
// arrived for a full stall window (in which case every route with
// fragments in flight — possibly including this one — is failed and
// requeued, and surviving callers re-enter to pick the fragments up).
func (s *stripeState) next(routeKey string, window int, stall time.Duration) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.canceled || s.unsent == 0 || s.failed[routeKey] {
			return 0, false
		}
		if len(s.queue) > 0 && s.perRoute[routeKey] < window {
			idx := s.queue[len(s.queue)-1]
			s.queue = s.queue[:len(s.queue)-1]
			s.state[idx] = fragReserved
			s.route[idx] = routeKey
			s.sentAt[idx] = time.Now()
			s.perRoute[routeKey]++
			return idx, true
		}
		// The stall deadline is measured from the last *acknowledgement*
		// (sends into a dead conn must not feed the clock), and every
		// worker waits on the same absolute deadline, so no worker
		// sleeping through a broadcast can push it back.
		now := time.Now()
		deadline := s.lastAck.Add(stall)
		if !now.Before(deadline) {
			// Acknowledgements have dried up for a full stall window.
			// Fail every route still holding fragments and restart the
			// stall clock for the survivors; the whole-message retry
			// path recovers if none survive.
			for key, n := range s.perRoute {
				if n > 0 && !s.failed[key] {
					s.failRouteLocked(key)
				}
			}
			s.lastAck = now
			if s.failed[routeKey] {
				return 0, false
			}
			continue
		}
		s.waitLocked(deadline.Sub(now))
		// Re-check everything from the top: a cancel, completion or
		// requeue may have arrived while waiting, and the stall clock
		// may have been fed. (The old code treated *any* wakeup —
		// including mere sends — as progress, so a stripe pushing
		// fragments without ever being acked never tripped the stall,
		// and a cancel racing the timer could strand the decision a
		// full extra window.)
	}
}

// waitLocked releases s.mu until the stripe's state changes or d
// elapses, then reacquires it. Callers re-derive what happened from
// state; the wakeup itself carries no verdict.
func (s *stripeState) waitLocked(d time.Duration) {
	ch := s.waitCh
	s.mu.Unlock()
	t := time.NewTimer(d)
	select {
	case <-ch:
	case <-t.C:
	}
	t.Stop()
	s.mu.Lock()
}

// sent marks a reserved fragment as pushed into its conn. If the
// fragment was re-assigned (its first route was declared stalled and
// stole back the reservation) or already acknowledged, this is a no-op.
func (s *stripeState) sent(routeKey string, idx int) {
	s.mu.Lock()
	if s.state[idx] == fragReserved && s.route[idx] == routeKey {
		s.state[idx] = fragSent
		s.unsent--
		s.broadcastLocked()
	}
	s.mu.Unlock()
}

// ackFrag records the receiver's per-fragment acknowledgement,
// returning the observation to feed the route scorer.
func (s *stripeState) ackFrag(idx int) (routeKey string, bytes int, elapsed time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < 0 || idx >= len(s.frags) || s.state[idx] == fragAcked {
		return "", 0, 0, false
	}
	prev := s.state[idx]
	routeKey = s.route[idx]
	if prev == fragQueued {
		// Acked before any worker claimed it (a duplicate transmission
		// from an earlier whole-message attempt landed): pull it out of
		// the queue so no worker sends it again.
		for i, q := range s.queue {
			if q == idx {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.unsent--
	}
	if prev == fragReserved {
		s.unsent--
	}
	if prev == fragReserved || prev == fragSent {
		s.perRoute[routeKey]--
	}
	s.state[idx] = fragAcked
	s.acked++
	s.lastAck = time.Now()
	s.broadcastLocked()
	return routeKey, len(s.frags[idx].Payload), time.Since(s.sentAt[idx]), routeKey != ""
}

// failRoute declares a route dead mid-stripe and requeues its
// fragments on the survivors. Returns how many fragments were
// requeued.
func (s *stripeState) failRoute(routeKey string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failRouteLocked(routeKey)
}

func (s *stripeState) failRouteLocked(routeKey string) int {
	if s.failed[routeKey] {
		return 0
	}
	s.failed[routeKey] = true
	n := 0
	for idx := range s.frags {
		if s.route[idx] != routeKey {
			continue
		}
		switch s.state[idx] {
		case fragSent:
			s.unsent++
			fallthrough
		case fragReserved:
			s.state[idx] = fragQueued
			s.route[idx] = ""
			s.queue = append(s.queue, idx)
			n++
		}
	}
	s.perRoute[routeKey] = 0
	s.requeues += n
	s.broadcastLocked()
	return n
}

// cancel ends the stripe early (whole-message ack arrived, or the
// endpoint is closing); workers drain out on their next pull.
func (s *stripeState) cancel() {
	s.mu.Lock()
	s.canceled = true
	s.broadcastLocked()
	s.mu.Unlock()
}

// complete reports whether every fragment was pushed into a live conn
// (or the stripe was made moot by a whole-message ack).
func (s *stripeState) complete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.canceled || s.unsent == 0
}

// remainingUnsent reports fragments never successfully handed to any
// conn.
func (s *stripeState) remainingUnsent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.unsent
}

// transmitStriped attempts to send om by striping it across every
// healthy direct route. It reports handled=false when striping does
// not apply (fewer than two live direct routes, or the message
// fragments too coarsely to split) — the caller then runs the
// single-route failover path. When handled, the returned error is nil
// once every fragment has been accepted by a live conn; per-fragment
// acknowledgements, requeues and the whole-message retry complete the
// reliability story asynchronously.
func (e *Endpoint) transmitStriped(om *outMsg, local, routes []Route) (handled bool, err error) {
	type routeConn struct {
		key  string
		conn FrameConn
	}
	var rcs []routeConn
	minMTU := 0
	m := &om.msg
	// Per-fragment header: frame type, length-prefixed src and dst,
	// tag, seq, fragment index/count, flags, payload length prefix.
	hdr := 34 + len(m.Src) + len(m.Dst)
	for _, route := range e.orderRoutesAdaptive(local, routes) {
		if route.Transport == GatewayTransport {
			continue // relayed paths don't participate in stripes
		}
		conn, err := e.getConn(route)
		if err != nil {
			e.observeRouteError(route.String())
			continue
		}
		mtu := conn.MTU() - hdr
		if mtu < 16 {
			continue
		}
		rcs = append(rcs, routeConn{route.String(), conn})
		if minMTU == 0 || mtu < minMTU {
			minMTU = mtu
		}
	}
	if len(rcs) < 2 {
		return false, nil
	}
	frags := fragment(m.Src, m.Dst, m.Tag, m.Seq, m.Payload, minMTU, flagStriped)
	if len(frags) < 2 {
		return false, nil
	}
	s := newStripe(frags)
	skey := reasmKey{m.Src, m.Dst, m.Seq}
	if e.closed.Load() {
		return true, ErrClosed
	}
	e.stripeMu.Lock()
	e.stripes[skey] = s
	e.stripeMu.Unlock()
	e.mStriped.Inc()
	defer func() {
		e.stripeMu.Lock()
		if e.stripes[skey] == s {
			delete(e.stripes, skey)
		}
		e.stripeMu.Unlock()
	}()

	// The stall window adapts to the participating routes: once they
	// have RTT history, waiting a fixed multi-second window to declare
	// a microsecond-RTT route dead wastes the whole transfer's latency
	// budget.
	keys := make([]string, len(rcs))
	for i, rc := range rcs {
		keys[i] = rc.key
	}
	stall := e.stripeStallFor(keys)

	// A whole-message ack (e.g. the receiver had already accepted this
	// sequence from an earlier attempt) or endpoint shutdown moots the
	// stripe.
	stop := make(chan struct{})
	go func() {
		select {
		case <-om.acked:
			s.cancel()
		case <-e.done:
			s.cancel()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for _, rc := range rcs {
		wg.Add(1)
		go func(rc routeConn) {
			defer wg.Done()
			e.stripeWorker(s, rc.key, rc.conn, stall)
		}(rc)
	}
	wg.Wait()
	close(stop)

	if requeued := s.requeues; requeued > 0 {
		e.mFragRequeues.Add(uint64(requeued))
	}
	if !s.complete() {
		e.invalidateRoutes(m.Dst)
		return true, fmt.Errorf("comm: stripe to %s: %d of %d fragments unsent after route failures",
			m.Dst, s.remainingUnsent(), len(frags))
	}
	return true, nil
}

// stripeStallMin floors the adaptive stall window: below this, benign
// scheduling hiccups would fail healthy routes.
const stripeStallMin = 50 * time.Millisecond

// stripeStallFor derives the stall window for a stripe across the
// given routes: 8× the slowest participating route's EWMA ack RTT —
// several losses deep, but proportionate to the media — clamped to
// [stripeStallMin, e.stripeStall]. Routes without enough history
// contribute nothing; with no history at all, the configured ceiling
// applies unchanged.
func (e *Endpoint) stripeStallFor(routeKeys []string) time.Duration {
	var maxRTTUs float64
	e.scoreMu.Lock()
	for _, key := range routeKeys {
		if s := e.scores[key]; s != nil && s.samples >= scoreMinSamples && s.rttUs > maxRTTUs {
			maxRTTUs = s.rttUs
		}
	}
	e.scoreMu.Unlock()
	if maxRTTUs <= 0 {
		return e.stripeStall
	}
	stall := time.Duration(maxRTTUs*8) * time.Microsecond
	if stall < stripeStallMin {
		stall = stripeStallMin
	}
	if stall > e.stripeStall {
		stall = e.stripeStall
	}
	return stall
}

// stripeWorker pulls fragments for one route until the stripe
// completes or the route dies.
func (e *Endpoint) stripeWorker(s *stripeState, routeKey string, conn FrameConn, stall time.Duration) {
	enc := getFrameEncoder()
	defer putFrameEncoder(enc)
	for {
		idx, ok := s.next(routeKey, e.stripeWindow, stall)
		if !ok {
			return
		}
		if err := conn.Send(encodeMsgFrameInto(enc, s.frags[idx])); err != nil {
			e.mSendErrors.Inc()
			e.observeRouteError(routeKey)
			e.dropConn(routeKey, conn)
			s.failRoute(routeKey)
			return
		}
		e.mFragments.Inc()
		s.sent(routeKey, idx)
	}
}
