package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardIndexStableAndBounded pins the shard-hash contract: a
// destination always maps to the same shard, and every shard index is
// in range. (Distribution quality is a benchmark concern; correctness
// only needs stability.)
func TestShardIndexStableAndBounded(t *testing.T) {
	for i := 0; i < 200; i++ {
		dst := fmt.Sprintf("urn:shard:%d", i)
		idx := shardIndex(dst)
		if idx >= sendShardCount {
			t.Fatalf("shardIndex(%q) = %d out of range", dst, idx)
		}
		if again := shardIndex(dst); again != idx {
			t.Fatalf("shardIndex(%q) unstable: %d then %d", dst, idx, again)
		}
	}
}

// TestShardedSendersPerDestinationOrdering hammers ONE endpoint from
// many goroutines fanning out to several destinations, and checks the
// invariant the sharding must preserve: per-(src,dst) sequence numbers
// are dense and deliveries arrive in sequence order at every
// destination. Run under -race this is also the shard-locking test.
func TestShardedSendersPerDestinationOrdering(t *testing.T) {
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:shard-src", res, WithBufferLimit(1<<14))

	const nDsts, nSenders, perSender = 4, 8, 25
	total := nSenders * perSender // per destination
	type sink struct {
		mu   sync.Mutex
		seqs []uint64
	}
	sinks := make([]*sink, nDsts)
	for d := 0; d < nDsts; d++ {
		s := &sink{}
		sinks[d] = s
		newTestEndpoint(t, fmt.Sprintf("urn:shard-dst%d", d), res, WithHandler(func(m *Message) {
			s.mu.Lock()
			s.seqs = append(s.seqs, m.Seq)
			s.mu.Unlock()
		}))
	}

	var wg sync.WaitGroup
	for g := 0; g < nSenders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				for d := 0; d < nDsts; d++ {
					if err := a.Send(fmt.Sprintf("urn:shard-dst%d", d), 1, []byte("x")); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, 15*time.Second, func() bool {
		for _, s := range sinks {
			s.mu.Lock()
			n := len(s.seqs)
			s.mu.Unlock()
			if n < total {
				return false
			}
		}
		return true
	}, "not all messages delivered")

	for d, s := range sinks {
		s.mu.Lock()
		seqs := append([]uint64(nil), s.seqs...)
		s.mu.Unlock()
		if len(seqs) != total {
			t.Fatalf("dst %d: %d deliveries, want %d", d, len(seqs), total)
		}
		for i, seq := range seqs {
			if seq != uint64(i+1) {
				t.Fatalf("dst %d: delivery %d has seq %d — order broken or seq not dense", d, i, seq)
			}
		}
	}
	// Everything acked: the endpoint-wide buffer accounting returns to
	// zero despite all the cross-shard traffic.
	waitFor(t, 10*time.Second, func() bool { return a.Pending() == 0 }, "buffers not drained")
}

// TestShardedBufferLimitExactAccounting races many senders into a
// fixed buffer limit against an unknown peer: exactly limit sends may
// succeed, every other send must fail with ErrBufferFull (the atomic
// reserve-then-back-out accounting can neither leak nor over-admit).
// Registering the peer then drains the buffer back to exactly zero.
func TestShardedBufferLimitExactAccounting(t *testing.T) {
	const limit = 64
	res := newTestResolver()
	a := newTestEndpoint(t, "urn:acct-src", res, WithBufferLimit(limit))

	var ok, full, other atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2*limit/8; i++ {
				switch err := a.Send("urn:acct-late", 1, []byte("x")); {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrBufferFull):
					full.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("%d sends failed with unexpected errors", other.Load())
	}
	if ok.Load() != limit || full.Load() != limit {
		t.Fatalf("admitted %d, refused %d; want exactly %d each", ok.Load(), full.Load(), limit)
	}
	if got := a.Pending(); got != limit {
		t.Fatalf("Pending() = %d, want %d", got, limit)
	}

	// The destination comes up late: the buffered messages drain to
	// exactly zero and the limit frees up again.
	var delivered atomic.Int64
	newTestEndpoint(t, "urn:acct-late", res, WithHandler(func(m *Message) { delivered.Add(1) }))
	waitFor(t, 15*time.Second, func() bool { return a.Pending() == 0 }, "buffers not drained")
	if got := delivered.Load(); got != limit {
		t.Fatalf("delivered %d messages, want %d", got, limit)
	}
	if err := a.Send("urn:acct-late", 1, []byte("freed")); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
}

// BenchmarkEndpointConcurrentSend measures the sharded send path under
// parallel producers on a single endpoint — the contention profile the
// send-queue sharding exists to fix. Destinations are spread across
// shards so the benchmark exercises shard parallelism, not one queue.
func BenchmarkEndpointConcurrentSend(b *testing.B) {
	res := newTestResolver()
	const nDsts = 8
	src := newLocalTestEndpoint(b, "urn:bench-src", "inproc", "", res,
		WithBufferLimit(1<<17))
	for d := 0; d < nDsts; d++ {
		newLocalTestEndpoint(b, fmt.Sprintf("urn:bench-dst%d", d), "inproc", "", res,
			WithHandler(func(m *Message) {}))
	}
	payload := []byte("benchmark-payload-64-bytes-0123456789abcdef0123456789abcdef!!")
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			dst := fmt.Sprintf("urn:bench-dst%d", i%nDsts)
			i++
			if err := src.SendWait(ctx, dst, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
