package comm

import "sync"

// Gateways implement §5.1: "other protocols can be used — either via a
// gateway (for non-IP capable hosts), or between IP-capable hosts that
// also share a faster communications medium". A process that cannot be
// reached directly advertises a route of transport "gw" whose address
// is a gateway endpoint's URN; senders deliver through the gateway,
// which relays frames to the destination and routes the destination's
// end-to-end acknowledgements back.
//
// The gateway is stateless apart from the (src, dst, seq) → origin
// connection table used to return acknowledgements: reliability stays
// end-to-end (the origin's system buffer retries through the gateway
// until the destination's ack makes it back), so a gateway crash is
// just another recoverable path failure.

// GatewayTransport is the route transport name for gateway-relayed
// addresses; the route Addr is the gateway's URN.
const GatewayTransport = "gw"

// WithGatewayRelay makes the endpoint relay traffic addressed to other
// URNs (a SNIPE gateway, typically run next to a host daemon that
// bridges network domains).
func WithGatewayRelay() EndpointOption {
	return func(e *Endpoint) {
		e.gateway = true
		e.relayConns = make(map[relayKey]FrameConn)
		e.relayReasm = make(map[reasmKey]*reassembly)
	}
}

// GatewayRoute builds the route a destination publishes to be reached
// via a gateway.
func GatewayRoute(gatewayURN string) Route {
	return Route{Transport: GatewayTransport, Addr: gatewayURN}
}

// relayKey identifies one relayed message for ack back-routing.
type relayKey struct {
	src string
	dst string
	seq uint64
}

// relayTableMax bounds gateway state; beyond it the oldest entries are
// dropped wholesale (the affected acks are recovered by origin
// retries).
const relayTableMax = 65536

// relayMu guards the relay tables (kept separate from e.mu: relays
// re-enter transmit, which takes e.mu).
var relayMu sync.Mutex

// relayMsgFrame forwards one frame's message toward its destination.
// Whole messages are reassembled and re-fragmented so the outbound MTU
// may differ from the inbound one. buf is the pooled receive buffer
// backing f.Payload; the return value reports whether its ownership
// was consumed, mirroring handleMsgFrame.
func (e *Endpoint) relayMsgFrame(conn FrameConn, f *msgFrame, buf []byte) (retained bool) {
	key := reasmKey{f.Src, f.Dst, f.Seq}
	relayMu.Lock()
	r, ok := e.relayReasm[key]
	if ok && r.total != int(f.FragCount) {
		// Re-fragmented retry with a new geometry (see handleMsgFrame).
		r.release()
		delete(e.relayReasm, key)
		ok = false
	}
	if !ok {
		r = newReassembly(f.FragCount, f.Tag, f.Dst)
		e.relayReasm[key] = r
	}
	payload, retained, err := r.add(f, buf)
	if err != nil {
		r.release()
		delete(e.relayReasm, key)
		relayMu.Unlock()
		return retained
	}
	if payload == nil {
		relayMu.Unlock()
		return retained
	}
	delete(e.relayReasm, key)
	if len(e.relayConns) >= relayTableMax {
		e.relayConns = make(map[relayKey]FrameConn)
	}
	e.relayConns[relayKey{f.Src, f.Dst, f.Seq}] = conn
	relayMu.Unlock()

	om := &outMsg{
		msg:   Message{Src: f.Src, Dst: f.Dst, Tag: f.Tag, Seq: f.Seq, Payload: payload},
		acked: make(chan struct{}),
	}
	// Best-effort single transmission: the origin's retries drive
	// recovery, so the gateway holds no send buffer.
	go e.transmit(om)
	return retained
}

// relayAck routes a destination's acknowledgement back to the origin
// connection, returning true if this ack belonged to a relayed
// message.
func (e *Endpoint) relayAck(src, dst string, seq uint64) bool {
	if !e.gateway {
		return false
	}
	key := relayKey{src, dst, seq}
	relayMu.Lock()
	conn, ok := e.relayConns[key]
	if ok {
		delete(e.relayConns, key)
	}
	relayMu.Unlock()
	if !ok {
		return false
	}
	conn.Send(encodeAck(src, dst, seq))
	return true
}
