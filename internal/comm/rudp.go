package comm

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"
)

// PacketLink is an unreliable, message-boundary-preserving datagram
// path: a connected UDP socket, or a netsim lossy pipe. The RUDP
// protocol below turns it into a reliable FrameConn.
type PacketLink interface {
	Send(p []byte) error
	Recv() ([]byte, error)
	SetReadDeadline(t time.Time)
	Close() error
	MTU() int
}

// RUDP packet types. The protocol is the paper's "selective re-send UDP
// protocol" (§6): a sliding-window ARQ where the receiver acknowledges
// with a cumulative sequence number plus a selective-ACK bitmap, and
// the sender re-sends exactly the missing packets (on a duplicate-SACK
// fast path or an adaptive retransmission timeout).
const (
	ptData uint8 = iota + 1
	ptAck
	ptFin
)

const (
	rudpHeader  = 5   // type + seq
	rudpWindow  = 128 // max unacknowledged data packets
	sackBits    = 64  // bitmap width
	dupAckRetx  = 2   // duplicate SACKs naming a hole before fast resend
	maxRetries  = 30  // give up after this many retransmissions
	minRTO      = 2 * time.Millisecond
	maxRTO      = 2 * time.Second
	initialRTO  = 50 * time.Millisecond
	retxTick    = time.Millisecond
	closeLinger = 3 // FIN transmissions on close
)

// ErrPeerGone indicates the peer stopped acknowledging entirely.
var ErrPeerGone = errors.New("comm: rudp peer unreachable")

type txEntry struct {
	packet    []byte
	sentAt    time.Time // last transmission
	firstSend time.Time
	retries   int
	missCount int // SACKs that implied this packet is missing
}

// rudpConn implements FrameConn over a PacketLink.
type rudpConn struct {
	link PacketLink

	mu   sync.Mutex
	cond *sync.Cond // window space / delivery / close

	// Sender state.
	nextSeq uint32
	unacked map[uint32]*txEntry
	rto     time.Duration
	srtt    time.Duration
	rttvar  time.Duration
	retxTot int // total retransmissions, for tests and stats

	// Receiver state.
	cumAck    uint32            // highest in-order sequence received
	outOfOrd  map[uint32][]byte // buffered out-of-order packets
	delivered [][]byte          // in-order frames awaiting Recv

	closed   bool
	peerFin  bool
	failed   error
	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewRUDPConn runs the selective-resend protocol over link. Both ends
// of a link must be wrapped. The returned FrameConn is ready
// immediately; no handshake is required (connection establishment, when
// needed, is the transport's job).
func NewRUDPConn(link PacketLink) FrameConn {
	c := &rudpConn{
		link:     link,
		nextSeq:  1,
		unacked:  make(map[uint32]*txEntry),
		rto:      initialRTO,
		outOfOrd: make(map[uint32][]byte),
		done:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(2)
	go c.readLoop()
	go c.retxLoop()
	return c
}

// MTU leaves room for the RUDP header within the link MTU.
func (c *rudpConn) MTU() int {
	m := c.link.MTU() - rudpHeader
	if m < 64 {
		m = 64
	}
	return m
}

// RemoteAddr reports the peer address of the underlying link, so logs
// and metrics identify real peers; links without an address (e.g.
// netsim pipe ends) fall back to the transport name.
func (c *rudpConn) RemoteAddr() string {
	if ra, ok := c.link.(interface{ RemoteAddr() string }); ok {
		if a := ra.RemoteAddr(); a != "" {
			return a
		}
	}
	return "rudp"
}

// Retransmissions reports the total number of re-sent data packets.
func (c *rudpConn) Retransmissions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retxTot
}

// SRTT reports the smoothed round-trip-time estimate (zero before the
// first sample).
func (c *rudpConn) SRTT() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srtt
}

// Send transmits one frame reliably, blocking while the send window is
// full.
func (c *rudpConn) Send(frame []byte) error {
	if len(frame) > c.MTU() {
		return ErrTooLarge
	}
	c.mu.Lock()
	for !c.closed && c.failed == nil && len(c.unacked) >= rudpWindow {
		c.cond.Wait()
	}
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.failed != nil {
		err := c.failed
		c.mu.Unlock()
		return err
	}
	seq := c.nextSeq
	c.nextSeq++
	packet := make([]byte, rudpHeader+len(frame))
	packet[0] = ptData
	binary.BigEndian.PutUint32(packet[1:5], seq)
	copy(packet[rudpHeader:], frame)
	now := time.Now()
	c.unacked[seq] = &txEntry{packet: packet, sentAt: now, firstSend: now}
	c.mu.Unlock()
	// Transmit outside the lock; loss is handled by the ARQ.
	if err := c.link.Send(packet); err != nil && !isTransient(err) {
		return err
	}
	return nil
}

// isTransient reports whether a link error should be left to the
// retransmission machinery rather than surfaced.
func isTransient(err error) bool {
	// Simulated links drop silently; real UDP may return e.g. buffer
	// full errors that resolve themselves. Closed links are permanent.
	return !errors.Is(err, ErrClosed)
}

// Recv returns the next in-order frame.
func (c *rudpConn) Recv() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.delivered) > 0 {
			f := c.delivered[0]
			c.delivered = c.delivered[1:]
			return f, nil
		}
		if c.closed || c.peerFin {
			return nil, ErrClosed
		}
		if c.failed != nil {
			return nil, c.failed
		}
		c.cond.Wait()
	}
}

// Close sends best-effort FINs and stops the protocol machinery.
func (c *rudpConn) Close() error {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.cond.Broadcast()
		c.mu.Unlock()
		fin := []byte{ptFin, 0, 0, 0, 0}
		for i := 0; i < closeLinger; i++ {
			c.link.Send(fin)
		}
		close(c.done)
		c.link.Close()
	})
	c.wg.Wait()
	return nil
}

func (c *rudpConn) readLoop() {
	defer c.wg.Done()
	for {
		c.link.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		p, err := c.link.Recv()
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			// Deadline: loop to re-check done. Other errors on simulated
			// links mean closed.
			if isDeadline(err) {
				continue
			}
			c.mu.Lock()
			c.peerFin = true
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		if len(p) < 1 {
			continue
		}
		switch p[0] {
		case ptData:
			if len(p) < rudpHeader {
				continue
			}
			c.handleData(binary.BigEndian.Uint32(p[1:5]), p[rudpHeader:])
		case ptAck:
			if len(p) < 1+4+8 {
				continue
			}
			c.handleAck(binary.BigEndian.Uint32(p[1:5]), binary.BigEndian.Uint64(p[5:13]))
		case ptFin:
			c.mu.Lock()
			c.peerFin = true
			c.cond.Broadcast()
			c.mu.Unlock()
		}
	}
}

// isDeadline reports whether err is a read-deadline expiry (real
// net.Error timeouts and netsim.ErrTimeout both satisfy the Timeout
// contract).
func isDeadline(err error) bool {
	var t interface{ Timeout() bool }
	if errors.As(err, &t) {
		return t.Timeout()
	}
	return false
}

func (c *rudpConn) handleData(seq uint32, payload []byte) {
	c.mu.Lock()
	if seq > c.cumAck {
		if _, dup := c.outOfOrd[seq]; !dup {
			// Pooled: ownership passes to whoever drains this frame from
			// Recv (the endpoint read loop recycles it after handling).
			cp := getPayloadBuf(len(payload))
			copy(cp, payload)
			c.outOfOrd[seq] = cp
			// Drain the contiguous prefix into the delivery queue.
			for {
				next, ok := c.outOfOrd[c.cumAck+1]
				if !ok {
					break
				}
				delete(c.outOfOrd, c.cumAck+1)
				c.cumAck++
				c.delivered = append(c.delivered, next)
			}
			c.cond.Broadcast()
		}
	}
	cum := c.cumAck
	var bitmap uint64
	for i := uint32(1); i <= sackBits; i++ {
		if _, ok := c.outOfOrd[cum+i]; ok {
			bitmap |= 1 << (i - 1)
		}
	}
	c.mu.Unlock()

	ack := make([]byte, 1+4+8)
	ack[0] = ptAck
	binary.BigEndian.PutUint32(ack[1:5], cum)
	binary.BigEndian.PutUint64(ack[5:13], bitmap)
	c.link.Send(ack)
}

func (c *rudpConn) handleAck(cum uint32, bitmap uint64) {
	var fastRetx [][]byte
	c.mu.Lock()
	// Everything at or below cum is delivered.
	for seq, e := range c.unacked {
		if seq <= cum {
			if e.retries == 0 {
				c.updateRTT(time.Since(e.firstSend))
			}
			delete(c.unacked, seq)
		}
	}
	// Bitmap: selectively acknowledged packets above cum.
	highestSacked := uint32(0)
	for i := uint32(1); i <= sackBits; i++ {
		if bitmap&(1<<(i-1)) != 0 {
			seq := cum + i
			if e, ok := c.unacked[seq]; ok {
				if e.retries == 0 {
					c.updateRTT(time.Since(e.firstSend))
				}
				delete(c.unacked, seq)
			}
			highestSacked = seq
		}
	}
	// Selective re-send: packets below the highest SACKed sequence that
	// remain unacknowledged are presumed lost once named missing by
	// enough SACKs.
	now := time.Now()
	for seq, e := range c.unacked {
		if seq > cum && seq < highestSacked {
			e.missCount++
			if e.missCount >= dupAckRetx {
				e.missCount = 0
				e.retries++
				e.sentAt = now
				c.retxTot++
				fastRetx = append(fastRetx, e.packet)
			}
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, p := range fastRetx {
		c.link.Send(p)
	}
}

// updateRTT applies Jacobson/Karels smoothing. Caller holds c.mu.
func (c *rudpConn) updateRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

func (c *rudpConn) retxLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(retxTick)
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		var retx [][]byte
		now := time.Now()
		c.mu.Lock()
		rto := c.rto
		for _, e := range c.unacked {
			backoff := rto << uint(min(e.retries, 6))
			if now.Sub(e.sentAt) >= backoff {
				if e.retries >= maxRetries {
					c.failed = ErrPeerGone
					c.cond.Broadcast()
					c.mu.Unlock()
					return
				}
				e.retries++
				e.sentAt = now
				c.retxTot++
				retx = append(retx, e.packet)
			}
		}
		c.mu.Unlock()
		for _, p := range retx {
			c.link.Send(p)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
