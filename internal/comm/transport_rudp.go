package comm

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// udpMTU is the datagram payload size used on real UDP paths; safely
// below typical path MTUs.
const udpMTU = 1400

// RUDPTransport runs the selective-resend protocol over real UDP
// sockets. A listener demultiplexes peers on one socket by source
// address; the first packet from a new source implicitly establishes a
// connection (the ARQ recovers any packets lost before the receiver
// existed, so no handshake is needed).
type RUDPTransport struct{}

// Name implements Transport.
func (RUDPTransport) Name() string { return "rudp" }

// Listen implements Transport.
func (RUDPTransport) Listen(addr string) (Listener, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: rudp resolve %s: %w", addr, err)
	}
	sock, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("comm: rudp listen %s: %w", addr, err)
	}
	l := &rudpListener{
		sock:    sock,
		peers:   make(map[string]*udpPeerLink),
		accepts: make(chan FrameConn, 64),
		done:    make(chan struct{}),
	}
	go l.demuxLoop()
	return l, nil
}

// Dial implements Transport.
func (RUDPTransport) Dial(addr string) (FrameConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: rudp resolve %s: %w", addr, err)
	}
	sock, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("comm: rudp dial %s: %w", addr, err)
	}
	return NewRUDPConn(&udpDialLink{sock: sock}), nil
}

// udpDialLink adapts a connected UDP socket to PacketLink.
type udpDialLink struct {
	sock *net.UDPConn
	mu   sync.Mutex
	dl   time.Time
}

func (l *udpDialLink) Send(p []byte) error { _, err := l.sock.Write(p); return err }

func (l *udpDialLink) Recv() ([]byte, error) {
	l.mu.Lock()
	dl := l.dl
	l.mu.Unlock()
	l.sock.SetReadDeadline(dl)
	buf := make([]byte, 64<<10)
	n, err := l.sock.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func (l *udpDialLink) SetReadDeadline(t time.Time) {
	l.mu.Lock()
	l.dl = t
	l.mu.Unlock()
}

func (l *udpDialLink) Close() error { return l.sock.Close() }
func (l *udpDialLink) MTU() int     { return udpMTU }

// RemoteAddr reports the connected socket's peer address.
func (l *udpDialLink) RemoteAddr() string { return l.sock.RemoteAddr().String() }

// rudpListener owns one UDP socket and demultiplexes per-peer links.
type rudpListener struct {
	sock    *net.UDPConn
	mu      sync.Mutex
	peers   map[string]*udpPeerLink
	accepts chan FrameConn
	done    chan struct{}
	closed  bool
}

func (l *rudpListener) demuxLoop() {
	buf := make([]byte, 64<<10)
	for {
		n, raddr, err := l.sock.ReadFromUDP(buf)
		if err != nil {
			l.mu.Lock()
			for _, p := range l.peers {
				p.enqueueClose()
			}
			l.mu.Unlock()
			return
		}
		key := raddr.String()
		l.mu.Lock()
		peer, ok := l.peers[key]
		if !ok && !l.closed {
			peer = newUDPPeerLink(l, raddr)
			l.peers[key] = peer
			conn := NewRUDPConn(peer)
			select {
			case l.accepts <- conn:
			default:
				// Accept backlog full: drop the connection attempt; the
				// dialer's ARQ will retry and a later packet re-creates it.
				delete(l.peers, key)
				peer.enqueueClose()
				conn.Close()
				l.mu.Unlock()
				continue
			}
		}
		l.mu.Unlock()
		if peer != nil {
			pkt := make([]byte, n)
			copy(pkt, buf[:n])
			peer.enqueue(pkt)
		}
	}
}

func (l *rudpListener) Accept() (FrameConn, error) {
	select {
	case c := <-l.accepts:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *rudpListener) Addr() string { return l.sock.LocalAddr().String() }

func (l *rudpListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	return l.sock.Close()
}

func (l *rudpListener) removePeer(key string) {
	l.mu.Lock()
	delete(l.peers, key)
	l.mu.Unlock()
}

// udpPeerLink is the listener-side PacketLink for one remote address.
type udpPeerLink struct {
	listener *rudpListener
	raddr    *net.UDPAddr

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	dl     time.Time
	closed bool
}

func newUDPPeerLink(l *rudpListener, raddr *net.UDPAddr) *udpPeerLink {
	p := &udpPeerLink{listener: l, raddr: raddr}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *udpPeerLink) enqueue(pkt []byte) {
	p.mu.Lock()
	if !p.closed {
		p.queue = append(p.queue, pkt)
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

func (p *udpPeerLink) enqueueClose() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *udpPeerLink) Send(pkt []byte) error {
	_, err := p.listener.sock.WriteToUDP(pkt, p.raddr)
	return err
}

func (p *udpPeerLink) Recv() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if len(p.queue) > 0 {
			pkt := p.queue[0]
			p.queue = p.queue[1:]
			return pkt, nil
		}
		if p.closed {
			return nil, ErrClosed
		}
		dl := p.dl
		if !dl.IsZero() {
			if time.Now().After(dl) {
				return nil, deadlineError{}
			}
			t := time.AfterFunc(time.Until(dl), func() {
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			})
			p.cond.Wait()
			t.Stop()
		} else {
			p.cond.Wait()
		}
	}
}

func (p *udpPeerLink) SetReadDeadline(t time.Time) {
	p.mu.Lock()
	p.dl = t
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *udpPeerLink) Close() error {
	p.enqueueClose()
	p.listener.removePeer(p.raddr.String())
	return nil
}

func (p *udpPeerLink) MTU() int { return udpMTU }

// RemoteAddr reports the demultiplexed peer's address.
func (p *udpPeerLink) RemoteAddr() string { return p.raddr.String() }

// deadlineError satisfies the Timeout contract for the peer link.
type deadlineError struct{}

func (deadlineError) Error() string   { return "comm: read deadline exceeded" }
func (deadlineError) Timeout() bool   { return true }
func (deadlineError) Temporary() bool { return true }
