package comm

import "errors"

// PeerLiveness is the comm layer's view of a failure detector. The
// endpoint feeds it SWIM-style evidence piggybacked on normal traffic
// — every exhausted transmission attempt is a failure report, every
// end-to-end acknowledgement a success report — and, when fail-fast is
// enabled, consults PeerDead before buffering sends so traffic to a
// confirmed-dead peer errors immediately instead of aging out of the
// system buffer retry by retry.
//
// The interface is defined here (not in internal/liveness) so that
// comm stays at the bottom of the import graph; liveness.Monitor
// provides the canonical implementation via its CommLiveness adapter.
type PeerLiveness interface {
	// PeerDead reports whether dst's host is known dead (or cleanly
	// departed). Unknown peers must return false.
	PeerDead(dst string) bool
	// ReportFailure records that a transmission to dst failed on every
	// route.
	ReportFailure(dst string)
	// ReportSuccess records an end-to-end acknowledgement from dst.
	ReportSuccess(dst string)
}

// ErrPeerDead indicates a send was refused because the liveness
// monitor has declared the destination's host dead.
var ErrPeerDead = errors.New("comm: peer host is dead")

// WithLiveness connects the endpoint to a failure detector: send
// failures and acknowledgements are reported as liveness evidence.
// Detection evidence alone never changes send semantics; pair with
// WithFailFastDead to also refuse traffic to dead peers.
func WithLiveness(l PeerLiveness) EndpointOption {
	return func(e *Endpoint) { e.liveness = l }
}

// WithFailFastDead makes Send/SendWait fail immediately with
// ErrPeerDead when the liveness monitor (set via WithLiveness) has
// declared the destination's host dead, and stops retrying buffered
// messages to such peers while they remain dead. Flag-guarded so the
// buffering ablation (experiment E5/E7) keeps its pure
// buffer-and-retry behaviour: without this option, even a monitored
// endpoint buffers to dead peers exactly as before.
func WithFailFastDead() EndpointOption {
	return func(e *Endpoint) { e.failFastDead = true }
}

// peerDead reports whether dst is known dead, under the fail-fast
// flag.
func (e *Endpoint) peerDead(dst string) bool {
	return e.failFastDead && e.liveness != nil && e.liveness.PeerDead(dst)
}

// reportSendFailure feeds one fully-failed transmission into the
// detector.
func (e *Endpoint) reportSendFailure(dst string) {
	if e.liveness != nil {
		e.liveness.ReportFailure(dst)
	}
}

// reportSendSuccess feeds one end-to-end acknowledgement into the
// detector.
func (e *Endpoint) reportSendSuccess(dst string) {
	if e.liveness != nil {
		e.liveness.ReportSuccess(dst)
	}
}
