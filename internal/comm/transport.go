package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// FrameConn is a reliable, ordered, message-boundary-preserving
// connection between two endpoints. The TCP, Unix-socket, in-process
// and selective-resend UDP transports all present this interface, so
// the endpoint layer is transport-agnostic — the paper's "multiple
// communication paths, media and routing methods".
type FrameConn interface {
	// Send transmits one frame. The frame buffer is the caller's: every
	// implementation either writes it out synchronously or copies it
	// before returning, so the caller may reuse it immediately.
	Send(frame []byte) error
	// Recv returns the next frame. Ownership of the returned buffer
	// transfers to the caller, which may recycle it via the payload
	// pool once done (the endpoint read loop does); implementations
	// never touch a returned buffer again.
	Recv() ([]byte, error)
	// Close releases the connection.
	Close() error
	// MTU returns the preferred maximum frame size for this connection.
	MTU() int
	// RemoteAddr describes the peer, for logs.
	RemoteAddr() string
}

// Listener accepts inbound FrameConns.
type Listener interface {
	Accept() (FrameConn, error)
	Addr() string
	Close() error
}

// Transport creates listeners and outbound connections for one
// protocol family.
type Transport interface {
	Name() string
	Listen(addr string) (Listener, error)
	Dial(addr string) (FrameConn, error)
}

// Transports is a registry of transports by name.
type Transports struct {
	mu sync.RWMutex
	m  map[string]Transport
}

// NewTransports returns a registry preloaded with the standard
// transports: "tcp", "rudp", and the co-located fast paths "unix" and
// "inproc".
func NewTransports() *Transports {
	t := &Transports{m: make(map[string]Transport)}
	t.Register(TCPTransport{})
	t.Register(RUDPTransport{})
	t.Register(UnixTransport{})
	t.Register(InprocTransport{})
	return t
}

// Register adds or replaces a transport.
func (t *Transports) Register(tr Transport) {
	t.mu.Lock()
	t.m[tr.Name()] = tr
	t.mu.Unlock()
}

// Get returns the named transport.
func (t *Transports) Get(name string) (Transport, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tr, ok := t.m[name]
	return tr, ok
}

// --- TCP transport -------------------------------------------------

// tcpFragmentSize bounds a frame on stream transports; large messages
// are fragmented above this layer, keeping per-frame buffers bounded.
const tcpFragmentSize = 64 << 10

// TCPTransport is the stream transport: frames are length-prefixed on
// a TCP connection.
type TCPTransport struct{}

// Name implements Transport.
func (TCPTransport) Name() string { return "tcp" }

// Listen implements Transport.
func (TCPTransport) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: tcp listen %s: %w", addr, err)
	}
	return &tcpListener{ln: ln}, nil
}

// Dial implements Transport.
func (TCPTransport) Dial(addr string) (FrameConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("comm: tcp dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewStreamFrameConn(conn), nil
}

type tcpListener struct{ ln net.Listener }

func (l *tcpListener) Accept() (FrameConn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewStreamFrameConn(conn), nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }
func (l *tcpListener) Close() error { return l.ln.Close() }

// streamFrameConn adapts any net.Conn (a real TCP or Unix-socket
// connection, or a netsim shaped pipe) into a FrameConn with 4-byte
// length prefixes.
type streamFrameConn struct {
	conn net.Conn
	mtu  int

	rmu sync.Mutex // serialises Recv
	wmu sync.Mutex // serialises Send
}

// NewStreamFrameConn frames a byte-stream connection. It is exported
// so benchmarks can run the endpoint stack over netsim media pipes.
func NewStreamFrameConn(conn net.Conn) FrameConn {
	return newStreamFrameConnMTU(conn, tcpFragmentSize)
}

// newStreamFrameConnMTU frames a byte-stream connection with a custom
// preferred frame size: local transports (unix) skip a real network
// stack and amortise better with larger fragments.
func newStreamFrameConnMTU(conn net.Conn, mtu int) FrameConn {
	if mtu <= 0 || mtu > maxWireFrame {
		mtu = tcpFragmentSize
	}
	return &streamFrameConn{conn: conn, mtu: mtu}
}

func (c *streamFrameConn) Send(frame []byte) error {
	if len(frame) > maxWireFrame {
		return ErrTooLarge
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	bufs := net.Buffers{hdr[:], frame}
	_, err := bufs.WriteTo(c.conn)
	return err
}

func (c *streamFrameConn) Recv() ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxWireFrame {
		return nil, ErrBadFrame
	}
	// Pooled receive buffer: the caller owns it (see FrameConn.Recv)
	// and recycles it once the frame is handled. Frames are bounded by
	// maxWireFrame, so the buffer always lands in a right-sized class.
	buf := getPayloadBuf(int(n))
	if _, err := io.ReadFull(c.conn, buf); err != nil {
		putPayloadBuf(buf)
		return nil, err
	}
	return buf, nil
}

func (c *streamFrameConn) Close() error { return c.conn.Close() }
func (c *streamFrameConn) MTU() int     { return c.mtu }
func (c *streamFrameConn) RemoteAddr() string {
	if a := c.conn.RemoteAddr(); a != nil {
		return a.String()
	}
	return "?"
}

// maxWireFrame bounds a single transport frame (fragment + headers).
const maxWireFrame = 1 << 20
