package comm

import (
	"bytes"
	"testing"
	"time"
)

// TestAckCoalescingBatchesFragAcks drives a striped transfer with a
// flush window wide enough to span several fragment arrivals, and
// checks the receiver actually emitted batch frames — and that the
// sender still saw every per-fragment acknowledgement despite the
// batching.
func TestAckCoalescingBatchesFragAcks(t *testing.T) {
	a, b, _, _ := stripePair(t, WithAckFlush(25*time.Millisecond))
	payload := patternPayload(7, 2<<20)
	if err := sendWaitT(a, "urn:stripe:b", 1, payload, 30*time.Second); err != nil {
		t.Fatalf("striped send: %v", err)
	}
	m, err := recvT(b, 10*time.Second)
	if err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("recv: err=%v len=%d", err, len(m.Payload))
	}
	snap := b.MetricsSnapshot()
	if snap.Counters["ack_batches"] == 0 {
		t.Fatalf("no batched ack frames emitted: %+v", snap.Counters)
	}
	if snap.Counters["acks_batched"] < 2*snap.Counters["ack_batches"] {
		t.Fatalf("batches carried under two acks on average: %d acks in %d batches",
			snap.Counters["acks_batched"], snap.Counters["ack_batches"])
	}
	// Wait for the drain: the sender must account every fragment the
	// receiver acknowledged, whether it arrived batched or alone.
	waitFor(t, 5*time.Second, func() bool { return a.Pending() == 0 }, "sender not drained")
	if got := a.MetricsSnapshot().Counters["frag_acks"]; got == 0 {
		t.Fatal("sender processed no per-fragment acks")
	}
}

// TestAckFlushZeroDisablesBatching: WithAckFlush(0) sends every
// fragment ack immediately as a legacy single-ack frame, and the
// transfer still completes — the compatibility posture for peers that
// predate the batch frames.
func TestAckFlushZeroDisablesBatching(t *testing.T) {
	a, b, _, _ := stripePair(t, WithAckFlush(0))
	payload := patternPayload(9, 2<<20)
	if err := sendWaitT(a, "urn:stripe:b", 1, payload, 30*time.Second); err != nil {
		t.Fatalf("striped send: %v", err)
	}
	m, err := recvT(b, 10*time.Second)
	if err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("recv: err=%v len=%d", err, len(m.Payload))
	}
	if got := b.MetricsSnapshot().Counters["ack_batches"]; got != 0 {
		t.Fatalf("flush disabled but %d batch frames emitted", got)
	}
	if got := a.MetricsSnapshot().Counters["frag_acks"]; got == 0 {
		t.Fatal("sender processed no per-fragment acks")
	}
}
