package comm

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"snipe/internal/netsim"
)

// stripePair joins two endpoints over two independent netsim links
// (Ethernet100 stream + ATM155 stream by default) so that urnB is
// dual-homed from urnA's point of view, and vice versa. It returns the
// links for failure injection and the mutable resolver for route
// withdrawal.
func stripePair(t *testing.T, opts ...EndpointOption) (a, b *Endpoint, links [2]*netsim.Link, res *testResolver) {
	t.Helper()
	const urnA, urnB = "urn:stripe:a", "urn:stripe:b"
	routes := [2][2]Route{
		{{Transport: "attached", Addr: "a-eth", NetName: "eth", RateBps: 100e6, LatencyUs: 120},
			{Transport: "attached", Addr: "b-eth", NetName: "eth", RateBps: 100e6, LatencyUs: 120}},
		{{Transport: "attached", Addr: "a-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90},
			{Transport: "attached", Addr: "b-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90}},
	}
	res = newTestResolver()
	res.set(urnA, routes[0][0], routes[1][0])
	res.set(urnB, routes[0][1], routes[1][1])
	base := []EndpointOption{WithResolver(res), WithBufferLimit(1 << 14),
		WithRetryInterval(150 * time.Millisecond), WithStripeStall(700 * time.Millisecond)}
	a = NewEndpoint(urnA, append(base, opts...)...)
	b = NewEndpoint(urnB, append(base, opts...)...)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)

	media := [2]netsim.Profile{netsim.Ethernet100, netsim.ATM155}
	for i := range media {
		ca, cb, link := netsim.StreamPipe(media[i], uint64(17+i))
		links[i] = link
		t.Cleanup(link.Close)
		a.AttachConn(routes[i][1].String(), NewStreamFrameConn(ca))
		b.AttachConn(routes[i][0].String(), NewStreamFrameConn(cb))
	}
	return a, b, links, res
}

// patternPayload builds a payload whose content encodes its identity,
// so reassembly errors (lost, duplicated or misordered fragments)
// corrupt a checkable pattern.
func patternPayload(id byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = id ^ byte(i*7+i>>8)
	}
	return p
}

func TestStripeAcrossTwoRoutes(t *testing.T) {
	a, b, _, _ := stripePair(t)
	payload := patternPayload(3, 2<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.SendWaitContext(ctx, "urn:stripe:b", 9, payload); err != nil {
		t.Fatalf("striped send: %v", err)
	}
	m, err := recvT(b, 10*time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatalf("payload corrupted across stripe: got %d bytes", len(m.Payload))
	}
	snap := a.MetricsSnapshot()
	if snap.Counters["striped"] == 0 {
		t.Fatalf("message above threshold was not striped: %+v", snap.Counters)
	}
	if snap.Counters["frag_acks"] == 0 {
		t.Fatalf("no per-fragment acknowledgements observed")
	}
	// Both routes must have carried acknowledged fragments: the scorer
	// saw samples on each.
	carried := 0
	for _, rs := range a.RouteScores() {
		if rs.Samples > 0 {
			carried++
		}
	}
	if carried < 2 {
		t.Fatalf("expected fragments acknowledged on both routes, scorer saw %d: %+v",
			carried, a.RouteScores())
	}
}

func TestStripeDisabledFallsBackToSingleRoute(t *testing.T) {
	a, b, _, _ := stripePair(t, WithStripeThreshold(0))
	payload := patternPayload(5, 1<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.SendWaitContext(ctx, "urn:stripe:b", 2, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, err := recvT(b, 10*time.Second)
	if err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("recv: %v", err)
	}
	if got := a.MetricsSnapshot().Counters["striped"]; got != 0 {
		t.Fatalf("striping disabled but %d messages striped", got)
	}
}

func TestStripeSmallMessageNotStriped(t *testing.T) {
	a, b, _, _ := stripePair(t)
	payload := patternPayload(6, 4<<10) // well below the threshold
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.SendWaitContext(ctx, "urn:stripe:b", 2, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	if m, err := recvT(b, 10*time.Second); err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("recv: %v", err)
	}
	if got := a.MetricsSnapshot().Counters["striped"]; got != 0 {
		t.Fatalf("small message was striped (%d)", got)
	}
}

// TestStripeRouteChurnExactlyOnce is the route-churn failover test: a
// route is taken down and withdrawn mid-stripe, and every message must
// still arrive exactly once, intact, with the sender's buffers fully
// drained afterwards.
func TestStripeRouteChurnExactlyOnce(t *testing.T) {
	a, b, links, res := stripePair(t)
	const n = 6
	const size = 4 << 20
	done := make(chan error, 1)
	go func() {
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			m, err := recvT(b, 60*time.Second)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if seen[m.Seq] {
				done <- fmt.Errorf("duplicate delivery of seq %d", m.Seq)
				return
			}
			seen[m.Seq] = true
			want := patternPayload(byte(m.Seq), size)
			if !bytes.Equal(m.Payload, want) {
				done <- fmt.Errorf("seq %d corrupted (%d bytes)", m.Seq, len(m.Payload))
				return
			}
		}
		// Exactly once: nothing further may arrive.
		if m, err := recvT(b, 300*time.Millisecond); err == nil {
			done <- fmt.Errorf("extra message seq %d after all %d delivered", m.Seq, n)
			return
		}
		done <- nil
	}()

	// Cut the Ethernet link (and withdraw its routes) while the
	// stripes are in flight.
	cut := make(chan struct{})
	go func() {
		time.Sleep(60 * time.Millisecond)
		links[0].SetDown(true)
		res.set("urn:stripe:a", Route{Transport: "attached", Addr: "a-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90})
		res.set("urn:stripe:b", Route{Transport: "attached", Addr: "b-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90})
		close(cut)
	}()

	for i := 1; i <= n; i++ {
		if err := a.Send("urn:stripe:b", 4, patternPayload(byte(i), size)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	<-cut
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Drained: every message acknowledged, no stripe still open.
	deadline := time.Now().Add(30 * time.Second)
	for a.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sender buffers not drained: %d pending", a.Pending())
		}
		time.Sleep(20 * time.Millisecond)
	}
	snap := a.MetricsSnapshot()
	if got := snap.Gauges["stripes_active"]; got != 0 {
		t.Fatalf("stripes still open after drain: %v", got)
	}
}

// TestStripeRouteChurnUnderLoss repeats the churn scenario with the
// surviving route running RUDP over a lossy packet link, so fragment
// requeue rides on top of ARQ loss recovery.
func TestStripeRouteChurnUnderLoss(t *testing.T) {
	const urnA, urnB = "urn:stripe:a", "urn:stripe:b"
	routeAEth := Route{Transport: "attached", Addr: "a-eth", NetName: "eth", RateBps: 100e6, LatencyUs: 120}
	routeBEth := Route{Transport: "attached", Addr: "b-eth", NetName: "eth", RateBps: 100e6, LatencyUs: 120}
	routeAAtm := Route{Transport: "attached", Addr: "a-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90}
	routeBAtm := Route{Transport: "attached", Addr: "b-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90}
	res := newTestResolver()
	res.set(urnA, routeAEth, routeAAtm)
	res.set(urnB, routeBEth, routeBAtm)
	opts := []EndpointOption{WithResolver(res), WithBufferLimit(1 << 14),
		WithRetryInterval(150 * time.Millisecond), WithStripeStall(700 * time.Millisecond)}
	a := NewEndpoint(urnA, opts...)
	b := NewEndpoint(urnB, opts...)
	defer a.Close()
	defer b.Close()

	ca, cb, ethLink := netsim.StreamPipe(netsim.Ethernet100, 23)
	defer ethLink.Close()
	a.AttachConn(routeBEth.String(), NewStreamFrameConn(ca))
	b.AttachConn(routeAEth.String(), NewStreamFrameConn(cb))
	pa, pb, atmLink := netsim.PacketPipe(netsim.ATM155.WithLoss(0.02), 29)
	defer atmLink.Close()
	a.AttachConn(routeBAtm.String(), NewRUDPConn(pa))
	b.AttachConn(routeAAtm.String(), NewRUDPConn(pb))

	payload := patternPayload(11, 4<<20)
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		errc <- a.SendWaitContext(ctx, urnB, 8, payload)
	}()
	time.Sleep(30 * time.Millisecond)
	ethLink.SetDown(true) // mid-stripe: fragments must requeue onto lossy ATM

	m, err := recvT(b, 60*time.Second)
	if err != nil {
		t.Fatalf("recv after churn under loss: %v", err)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatalf("payload corrupted after churn under loss")
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
	if m, err := recvT(b, 300*time.Millisecond); err == nil {
		t.Fatalf("duplicate delivery seq %d", m.Seq)
	}
}

func TestOrderRoutesAdaptive(t *testing.T) {
	e := NewEndpoint("urn:scored")
	defer e.Close()
	fast := Route{Transport: "tcp", Addr: "fast:1", RateBps: 10e6}
	slow := Route{Transport: "tcp", Addr: "slow:1", RateBps: 100e6}
	// Advertised profiles say "slow:1" is the 100 Mbit route; observed
	// behaviour says otherwise.
	for i := 0; i < 8; i++ {
		e.observeRouteAck(fast.String(), 1<<20, 10*time.Millisecond)  // ~100 MB/s
		e.observeRouteAck(slow.String(), 1<<20, 500*time.Millisecond) // ~2 MB/s
	}
	got := e.orderRoutesAdaptive(nil, []Route{slow, fast})
	if got[0] != fast {
		t.Fatalf("adaptive order ignored observed goodput: %+v", got)
	}
	// A burst of errors must demote a route below a clean one.
	for i := 0; i < 20; i++ {
		e.observeRouteError(fast.String())
	}
	got = e.orderRoutesAdaptive(nil, []Route{fast, slow})
	if got[0] != slow {
		t.Fatalf("adaptive order ignored error rate: %+v", got)
	}
	// With no observations the advertised profile decides, exactly as
	// the static policy would.
	e2 := NewEndpoint("urn:unscored")
	defer e2.Close()
	got = e2.orderRoutesAdaptive(nil, []Route{fast, slow})
	if got[0] != slow {
		t.Fatalf("prior should follow advertised rate: %+v", got)
	}
	scores := e.RouteScores()
	if len(scores) != 2 {
		t.Fatalf("RouteScores: want 2 entries, got %+v", scores)
	}
	for _, rs := range scores {
		if rs.Samples == 0 {
			t.Fatalf("route %s has no samples folded in", rs.Route)
		}
	}
}

// TestStripePayloadPoolSurvivesRetryRace hammers send/ack/retry with
// pooled payloads to let the race detector catch any recycle-too-early
// defect.
func TestStripePayloadPoolSurvivesRetryRace(t *testing.T) {
	a, b, _, _ := stripePair(t, WithRetryInterval(10*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 40; i++ {
		payload := patternPayload(byte(i), 300<<10)
		if err := a.Send("urn:stripe:b", 1, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		m, err := b.RecvContext(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want := patternPayload(byte(m.Seq-1), 300<<10)
		if !bytes.Equal(m.Payload, want) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}
