package comm

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"snipe/internal/netsim"
)

// stripePair joins two endpoints over two independent netsim links
// (Ethernet100 stream + ATM155 stream by default) so that urnB is
// dual-homed from urnA's point of view, and vice versa. It returns the
// links for failure injection and the mutable resolver for route
// withdrawal.
func stripePair(t *testing.T, opts ...EndpointOption) (a, b *Endpoint, links [2]*netsim.Link, res *testResolver) {
	t.Helper()
	const urnA, urnB = "urn:stripe:a", "urn:stripe:b"
	routes := [2][2]Route{
		{{Transport: "attached", Addr: "a-eth", NetName: "eth", RateBps: 100e6, LatencyUs: 120},
			{Transport: "attached", Addr: "b-eth", NetName: "eth", RateBps: 100e6, LatencyUs: 120}},
		{{Transport: "attached", Addr: "a-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90},
			{Transport: "attached", Addr: "b-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90}},
	}
	res = newTestResolver()
	res.set(urnA, routes[0][0], routes[1][0])
	res.set(urnB, routes[0][1], routes[1][1])
	base := []EndpointOption{WithResolver(res), WithBufferLimit(1 << 14),
		WithRetryInterval(150 * time.Millisecond), WithStripeStall(700 * time.Millisecond)}
	a = NewEndpoint(urnA, append(base, opts...)...)
	b = NewEndpoint(urnB, append(base, opts...)...)
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)

	media := [2]netsim.Profile{netsim.Ethernet100, netsim.ATM155}
	for i := range media {
		ca, cb, link := netsim.StreamPipe(media[i], uint64(17+i))
		links[i] = link
		t.Cleanup(link.Close)
		a.AttachConn(routes[i][1].String(), NewStreamFrameConn(ca))
		b.AttachConn(routes[i][0].String(), NewStreamFrameConn(cb))
	}
	return a, b, links, res
}

// patternPayload builds a payload whose content encodes its identity,
// so reassembly errors (lost, duplicated or misordered fragments)
// corrupt a checkable pattern.
func patternPayload(id byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = id ^ byte(i*7+i>>8)
	}
	return p
}

func TestStripeAcrossTwoRoutes(t *testing.T) {
	a, b, _, _ := stripePair(t)
	payload := patternPayload(3, 2<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.SendWait(ctx, "urn:stripe:b", 9, payload); err != nil {
		t.Fatalf("striped send: %v", err)
	}
	m, err := recvT(b, 10*time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatalf("payload corrupted across stripe: got %d bytes", len(m.Payload))
	}
	snap := a.MetricsSnapshot()
	if snap.Counters["striped"] == 0 {
		t.Fatalf("message above threshold was not striped: %+v", snap.Counters)
	}
	if snap.Counters["frag_acks"] == 0 {
		t.Fatalf("no per-fragment acknowledgements observed")
	}
	// Both routes must have carried acknowledged fragments: the scorer
	// saw samples on each.
	carried := 0
	for _, rs := range a.RouteScores() {
		if rs.Samples > 0 {
			carried++
		}
	}
	if carried < 2 {
		t.Fatalf("expected fragments acknowledged on both routes, scorer saw %d: %+v",
			carried, a.RouteScores())
	}
}

func TestStripeDisabledFallsBackToSingleRoute(t *testing.T) {
	a, b, _, _ := stripePair(t, WithStripeThreshold(0))
	payload := patternPayload(5, 1<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.SendWait(ctx, "urn:stripe:b", 2, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	m, err := recvT(b, 10*time.Second)
	if err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("recv: %v", err)
	}
	if got := a.MetricsSnapshot().Counters["striped"]; got != 0 {
		t.Fatalf("striping disabled but %d messages striped", got)
	}
}

func TestStripeSmallMessageNotStriped(t *testing.T) {
	a, b, _, _ := stripePair(t)
	payload := patternPayload(6, 4<<10) // well below the threshold
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.SendWait(ctx, "urn:stripe:b", 2, payload); err != nil {
		t.Fatalf("send: %v", err)
	}
	if m, err := recvT(b, 10*time.Second); err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("recv: %v", err)
	}
	if got := a.MetricsSnapshot().Counters["striped"]; got != 0 {
		t.Fatalf("small message was striped (%d)", got)
	}
}

// TestStripeRouteChurnExactlyOnce is the route-churn failover test: a
// route is taken down and withdrawn mid-stripe, and every message must
// still arrive exactly once, intact, with the sender's buffers fully
// drained afterwards.
func TestStripeRouteChurnExactlyOnce(t *testing.T) {
	a, b, links, res := stripePair(t)
	const n = 6
	const size = 4 << 20
	done := make(chan error, 1)
	go func() {
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			m, err := recvT(b, 60*time.Second)
			if err != nil {
				done <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if seen[m.Seq] {
				done <- fmt.Errorf("duplicate delivery of seq %d", m.Seq)
				return
			}
			seen[m.Seq] = true
			want := patternPayload(byte(m.Seq), size)
			if !bytes.Equal(m.Payload, want) {
				done <- fmt.Errorf("seq %d corrupted (%d bytes)", m.Seq, len(m.Payload))
				return
			}
		}
		// Exactly once: nothing further may arrive.
		if m, err := recvT(b, 300*time.Millisecond); err == nil {
			done <- fmt.Errorf("extra message seq %d after all %d delivered", m.Seq, n)
			return
		}
		done <- nil
	}()

	// Cut the Ethernet link (and withdraw its routes) while the
	// stripes are in flight.
	cut := make(chan struct{})
	go func() {
		time.Sleep(60 * time.Millisecond)
		links[0].SetDown(true)
		res.set("urn:stripe:a", Route{Transport: "attached", Addr: "a-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90})
		res.set("urn:stripe:b", Route{Transport: "attached", Addr: "b-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90})
		close(cut)
	}()

	for i := 1; i <= n; i++ {
		if err := a.Send("urn:stripe:b", 4, patternPayload(byte(i), size)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	<-cut
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Drained: every message acknowledged, no stripe still open.
	deadline := time.Now().Add(30 * time.Second)
	for a.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sender buffers not drained: %d pending", a.Pending())
		}
		time.Sleep(20 * time.Millisecond)
	}
	snap := a.MetricsSnapshot()
	if got := snap.Gauges["stripes_active"]; got != 0 {
		t.Fatalf("stripes still open after drain: %v", got)
	}
}

// TestStripeRouteChurnUnderLoss repeats the churn scenario with the
// surviving route running RUDP over a lossy packet link, so fragment
// requeue rides on top of ARQ loss recovery.
func TestStripeRouteChurnUnderLoss(t *testing.T) {
	const urnA, urnB = "urn:stripe:a", "urn:stripe:b"
	routeAEth := Route{Transport: "attached", Addr: "a-eth", NetName: "eth", RateBps: 100e6, LatencyUs: 120}
	routeBEth := Route{Transport: "attached", Addr: "b-eth", NetName: "eth", RateBps: 100e6, LatencyUs: 120}
	routeAAtm := Route{Transport: "attached", Addr: "a-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90}
	routeBAtm := Route{Transport: "attached", Addr: "b-atm", NetName: "atm", RateBps: 140e6, LatencyUs: 90}
	res := newTestResolver()
	res.set(urnA, routeAEth, routeAAtm)
	res.set(urnB, routeBEth, routeBAtm)
	opts := []EndpointOption{WithResolver(res), WithBufferLimit(1 << 14),
		WithRetryInterval(150 * time.Millisecond), WithStripeStall(700 * time.Millisecond)}
	a := NewEndpoint(urnA, opts...)
	b := NewEndpoint(urnB, opts...)
	defer a.Close()
	defer b.Close()

	ca, cb, ethLink := netsim.StreamPipe(netsim.Ethernet100, 23)
	defer ethLink.Close()
	a.AttachConn(routeBEth.String(), NewStreamFrameConn(ca))
	b.AttachConn(routeAEth.String(), NewStreamFrameConn(cb))
	pa, pb, atmLink := netsim.PacketPipe(netsim.ATM155.WithLoss(0.02), 29)
	defer atmLink.Close()
	a.AttachConn(routeBAtm.String(), NewRUDPConn(pa))
	b.AttachConn(routeAAtm.String(), NewRUDPConn(pb))

	payload := patternPayload(11, 4<<20)
	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		errc <- a.SendWait(ctx, urnB, 8, payload)
	}()
	time.Sleep(30 * time.Millisecond)
	ethLink.SetDown(true) // mid-stripe: fragments must requeue onto lossy ATM

	m, err := recvT(b, 60*time.Second)
	if err != nil {
		t.Fatalf("recv after churn under loss: %v", err)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatalf("payload corrupted after churn under loss")
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
	if m, err := recvT(b, 300*time.Millisecond); err == nil {
		t.Fatalf("duplicate delivery seq %d", m.Seq)
	}
}

func TestOrderRoutesAdaptive(t *testing.T) {
	e := NewEndpoint("urn:scored")
	defer e.Close()
	fast := Route{Transport: "tcp", Addr: "fast:1", RateBps: 10e6}
	slow := Route{Transport: "tcp", Addr: "slow:1", RateBps: 100e6}
	// Advertised profiles say "slow:1" is the 100 Mbit route; observed
	// behaviour says otherwise.
	for i := 0; i < 8; i++ {
		e.observeRouteAck(fast.String(), 1<<20, 10*time.Millisecond)  // ~100 MB/s
		e.observeRouteAck(slow.String(), 1<<20, 500*time.Millisecond) // ~2 MB/s
	}
	got := e.orderRoutesAdaptive(nil, []Route{slow, fast})
	if got[0] != fast {
		t.Fatalf("adaptive order ignored observed goodput: %+v", got)
	}
	// A burst of errors must demote a route below a clean one.
	for i := 0; i < 20; i++ {
		e.observeRouteError(fast.String())
	}
	got = e.orderRoutesAdaptive(nil, []Route{fast, slow})
	if got[0] != slow {
		t.Fatalf("adaptive order ignored error rate: %+v", got)
	}
	// With no observations the advertised profile decides, exactly as
	// the static policy would.
	e2 := NewEndpoint("urn:unscored")
	defer e2.Close()
	got = e2.orderRoutesAdaptive(nil, []Route{fast, slow})
	if got[0] != slow {
		t.Fatalf("prior should follow advertised rate: %+v", got)
	}
	scores := e.RouteScores()
	if len(scores) != 2 {
		t.Fatalf("RouteScores: want 2 entries, got %+v", scores)
	}
	for _, rs := range scores {
		if rs.Samples == 0 {
			t.Fatalf("route %s has no samples folded in", rs.Route)
		}
	}
}

// TestStripePayloadPoolSurvivesRetryRace hammers send/ack/retry with
// pooled payloads to let the race detector catch any recycle-too-early
// defect.
func TestStripePayloadPoolSurvivesRetryRace(t *testing.T) {
	a, b, _, _ := stripePair(t, WithRetryInterval(10*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 40; i++ {
		payload := patternPayload(byte(i), 300<<10)
		if err := a.Send("urn:stripe:b", 1, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 40; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want := patternPayload(byte(m.Seq-1), 300<<10)
		if !bytes.Equal(m.Payload, want) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

// TestStripeCancelReleasesWorkers is the lost-wakeup regression test:
// workers blocked in next() with nothing to pull (queue drained by
// another route, stall window far away) must be released promptly when
// cancel() races in — not strand until the stall deadline.
func TestStripeCancelReleasesWorkers(t *testing.T) {
	frags := fragment("s", "d", 1, 1, patternPayload(1, 400), 100, flagStriped)
	s := newStripe(frags)
	// One route claims every fragment so the others find the queue
	// empty and wait.
	for range frags {
		if _, ok := s.next("r1", len(frags), time.Hour); !ok {
			t.Fatal("initial claim failed")
		}
	}
	const nWaiters = 4
	done := make(chan time.Duration, nWaiters)
	for i := 0; i < nWaiters; i++ {
		go func() {
			start := time.Now()
			if _, ok := s.next("r2", 4, time.Hour); ok {
				t.Error("blocked worker got a fragment after cancel")
			}
			done <- time.Since(start)
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the waiters reach the timed wait
	s.cancel()
	for i := 0; i < nWaiters; i++ {
		select {
		case d := <-done:
			if d > 2*time.Second {
				t.Fatalf("worker released only after %v; cancel wakeup lost", d)
			}
		case <-time.After(3 * time.Second):
			t.Fatal("worker never released after cancel: lost wakeup")
		}
	}
}

// TestStripeStallFailsSilentRoute: a route with fragments sent but no
// acknowledgements for a full stall window is failed and its fragments
// requeued; the stalled worker is released rather than spinning.
func TestStripeStallFailsSilentRoute(t *testing.T) {
	frags := fragment("s", "d", 1, 1, patternPayload(2, 400), 100, flagStriped)
	s := newStripe(frags)
	idx, ok := s.next("r1", 1, 60*time.Millisecond)
	if !ok {
		t.Fatal("no fragment claimed")
	}
	s.sent("r1", idx)
	// Window full, no acks arriving: the next pull must wait out the
	// stall window, fail "r1" and exit.
	start := time.Now()
	if _, ok := s.next("r1", 1, 60*time.Millisecond); ok {
		t.Fatal("stalled route still pulling fragments")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("stall verdict took %v; want ~the 60ms window", e)
	}
	s.mu.Lock()
	requeues, failed := s.requeues, s.failed["r1"]
	s.mu.Unlock()
	if !failed || requeues == 0 {
		t.Fatalf("stall did not fail the silent route: failed=%v requeues=%d", failed, requeues)
	}
}

// TestStripeStallAdaptive exercises stripeStallFor: no history keeps
// the configured ceiling; measured RTTs scale it to 8× the slowest
// route, clamped to [stripeStallMin, ceiling].
func TestStripeStallAdaptive(t *testing.T) {
	e := NewEndpoint("urn:stall", WithStripeStall(5*time.Second))
	defer e.Close()
	keys := []string{"k-eth", "k-atm"}
	if got := e.stripeStallFor(keys); got != 5*time.Second {
		t.Fatalf("no history: stall = %v, want the 5s ceiling", got)
	}
	// One sample short of the threshold still keeps the ceiling.
	for i := 0; i < scoreMinSamples-1; i++ {
		e.observeRouteAck(keys[0], 1<<10, 10*time.Millisecond)
	}
	if got := e.stripeStallFor(keys); got != 5*time.Second {
		t.Fatalf("below sample threshold: stall = %v, want the 5s ceiling", got)
	}
	// Enough history: 8× the slowest participating route's RTT.
	e.observeRouteAck(keys[0], 1<<10, 10*time.Millisecond)
	for i := 0; i < scoreMinSamples; i++ {
		e.observeRouteAck(keys[1], 1<<10, 2*time.Millisecond)
	}
	got := e.stripeStallFor(keys)
	if got < 75*time.Millisecond || got > 85*time.Millisecond {
		t.Fatalf("adaptive stall = %v, want ~80ms (8 × 10ms)", got)
	}
	// Microsecond-RTT media clamp to the floor, not below it.
	for i := 0; i < scoreMinSamples; i++ {
		e.observeRouteAck("k-inproc", 1<<10, 100*time.Microsecond)
	}
	if got := e.stripeStallFor([]string{"k-inproc"}); got != stripeStallMin {
		t.Fatalf("floor clamp: stall = %v, want %v", got, stripeStallMin)
	}
	// Very slow media clamp to the configured ceiling.
	e2 := NewEndpoint("urn:stall-slow", WithStripeStall(200*time.Millisecond))
	defer e2.Close()
	for i := 0; i < scoreMinSamples; i++ {
		e2.observeRouteAck("k-slow", 1<<10, time.Second)
	}
	if got := e2.stripeStallFor([]string{"k-slow"}); got != 200*time.Millisecond {
		t.Fatalf("ceiling clamp: stall = %v, want 200ms", got)
	}
}
