package comm

import (
	"sync"

	"snipe/internal/xdr"
)

// Buffer pools for the send hot path. Two allocations dominated a
// send before pooling: the system-buffer copy of the application
// payload made by send(), and the per-fragment wire frame built by
// encodeMsgFrame. Both are recycled here:
//
//   - Payload buffers are reference-counted on the outMsg (see
//     acquirePayload/releasePayload in endpoint.go) because the ack
//     path and a concurrent retry transmission may race; the buffer
//     returns to the pool only when the last reader drops its
//     reference.
//   - Frame encoders are owned by exactly one sender goroutine at a
//     time and can be reused immediately after FrameConn.Send
//     returns: every FrameConn implementation either writes the frame
//     synchronously (streamFrameConn), copies it into its own packet
//     buffer (rudpConn), or seals it into a fresh ciphertext buffer
//     (encryptedConn) before returning.

// maxPooledPayload bounds payload buffers kept for reuse; anything
// larger is handed to the GC so one huge message doesn't pin memory.
const maxPooledPayload = 8 << 20

// maxPooledEncoder bounds the capacity of recycled frame encoders.
const maxPooledEncoder = 2 << 20

var payloadPool = sync.Pool{}

// getPayloadBuf returns a length-n buffer, reusing a pooled one when
// its capacity suffices.
func getPayloadBuf(n int) []byte {
	if v := payloadPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this message; let it age out rather than
		// cycling undersized buffers through the pool.
	}
	return make([]byte, n)
}

// putPayloadBuf recycles a buffer obtained from getPayloadBuf.
func putPayloadBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledPayload {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

var frameEncPool = sync.Pool{
	New: func() any { return xdr.NewEncoder(tcpFragmentSize + 256) },
}

// getFrameEncoder returns a pooled wire-frame encoder.
func getFrameEncoder() *xdr.Encoder { return frameEncPool.Get().(*xdr.Encoder) }

// putFrameEncoder recycles an encoder obtained from getFrameEncoder.
func putFrameEncoder(e *xdr.Encoder) {
	if cap(e.Bytes()) > maxPooledEncoder {
		return
	}
	e.Reset()
	frameEncPool.Put(e)
}
