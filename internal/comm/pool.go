package comm

import (
	"sync"

	"snipe/internal/xdr"
)

// Buffer pools for the comm hot paths. Allocations that dominated a
// send/receive before pooling: the system-buffer copy of the
// application payload made by send(), the per-fragment wire frame
// built by encodeMsgFrame, and (receive side) the per-frame buffer
// filled by streamFrameConn.Recv and the RUDP data path. All are
// recycled here:
//
//   - Payload buffers are reference-counted on the outMsg (see
//     acquirePayload/releasePayload in endpoint.go) because the ack
//     path and a concurrent retry transmission may race; the buffer
//     returns to the pool only when the last reader drops its
//     reference.
//   - Receive-side frame buffers are owned by the FrameConn caller:
//     every Recv hands the buffer over, and the endpoint read loop
//     recycles it unless frame handling retained it (a message
//     fragment parked in a reassembly).
//   - Frame encoders are owned by exactly one sender goroutine at a
//     time and can be reused immediately after FrameConn.Send
//     returns: every FrameConn implementation either writes the frame
//     synchronously (streamFrameConn), copies it into its own packet
//     buffer (rudpConn, inprocConn), or seals it into a fresh
//     ciphertext buffer (encryptedConn) before returning.

// maxPooledPayload bounds payload buffers kept for reuse; anything
// larger is handed to the GC so one huge message doesn't pin memory.
const maxPooledPayload = 8 << 20

// maxPooledEncoder bounds the capacity of recycled frame encoders.
const maxPooledEncoder = 2 << 20

// payloadClasses are the pooled buffer size classes. A single pool
// mixed 1 KiB receive frames with 8 MiB payload copies, so a getter
// could draw a buffer 8000× its need (pinning memory) or, worse, a
// small buffer forced a fresh allocation anyway. Classes keep each
// pool right-sized: RUDP datagrams in the smallest, stream frames
// (≤ tcpFragmentSize, and anything up to maxWireFrame) in the middle
// two, whole-message payload copies in the largest.
var payloadClasses = [...]int{4 << 10, tcpFragmentSize + 1024, unixFragmentSize + 1024, maxWireFrame, maxPooledPayload}

var payloadPools [len(payloadClasses)]sync.Pool

// payloadClassFor returns the index of the smallest class that fits n,
// or -1 when n exceeds every class.
func payloadClassFor(n int) int {
	for i, c := range payloadClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// getPayloadBuf returns a length-n buffer, reusing a pooled one from
// n's size class when available.
func getPayloadBuf(n int) []byte {
	ci := payloadClassFor(n)
	if ci < 0 {
		return make([]byte, n)
	}
	if v := payloadPools[ci].Get(); v != nil {
		b := *(v.(*[]byte))
		return b[:n]
	}
	return make([]byte, n, payloadClasses[ci])
}

// putPayloadBuf recycles a buffer obtained from getPayloadBuf (or any
// other buffer the caller is done with) into the largest size class
// its capacity can serve. Buffers below the smallest class or above
// the pooling bound go to the GC.
func putPayloadBuf(b []byte) {
	c := cap(b)
	if c == 0 || c > maxPooledPayload {
		return
	}
	for i := len(payloadClasses) - 1; i >= 0; i-- {
		if c >= payloadClasses[i] {
			b = b[:0]
			payloadPools[i].Put(&b)
			return
		}
	}
}

var frameEncPool = sync.Pool{
	New: func() any { return xdr.NewEncoder(tcpFragmentSize + 256) },
}

// getFrameEncoder returns a pooled wire-frame encoder.
func getFrameEncoder() *xdr.Encoder { return frameEncPool.Get().(*xdr.Encoder) }

// putFrameEncoder recycles an encoder obtained from getFrameEncoder.
func putFrameEncoder(e *xdr.Encoder) {
	if cap(e.Bytes()) > maxPooledEncoder {
		return
	}
	e.Reset()
	frameEncPool.Put(e)
}
