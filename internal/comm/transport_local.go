package comm

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Co-located fast paths. Tasks that share a host (daemon ↔ task) or a
// process (netsim swarms, benchmarks) pay the full TCP loopback stack
// for every frame under the default transport set. Two additional
// transports close that gap behind the same Route abstraction:
//
//   - "unix": stream framing over a Unix domain socket — same
//     streamFrameConn as TCP but without the IP stack, and with a
//     larger preferred frame size since there is no wire MTU to
//     respect.
//   - "inproc": an in-process transport that moves pooled frame
//     buffers over channels — no sockets, no syscalls. Addresses live
//     in a process-global registry, so any two endpoints in one
//     process can rendezvous by name.
//
// Both register in NewTransports, so a route of transport "unix" or
// "inproc" resolves exactly like "tcp" does.

// unixFragmentSize is the preferred frame size on Unix-socket
// connections: larger than TCP's because fragmentation only buys
// pipelining here, not wire fairness.
const unixFragmentSize = 256 << 10

// UnixTransport is the Unix domain socket transport: stream framing
// identical to TCP's, minus the IP stack. Addresses are filesystem
// socket paths.
type UnixTransport struct{}

// Name implements Transport.
func (UnixTransport) Name() string { return "unix" }

// Listen implements Transport. A leftover socket file from a crashed
// process is removed and the bind retried, provided nothing answers on
// it.
func (UnixTransport) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("unix", addr)
	if err != nil && isUnixAddrInUse(err) && unixSocketStale(addr) {
		os.Remove(addr)
		ln, err = net.Listen("unix", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("comm: unix listen %s: %w", addr, err)
	}
	return &unixListener{ln: ln}, nil
}

// Dial implements Transport.
func (UnixTransport) Dial(addr string) (FrameConn, error) {
	conn, err := net.DialTimeout("unix", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("comm: unix dial %s: %w", addr, err)
	}
	return newStreamFrameConnMTU(conn, unixFragmentSize), nil
}

// isUnixAddrInUse reports whether a unix listen failed because the
// socket path already exists.
func isUnixAddrInUse(err error) bool {
	return errors.Is(err, syscall.EADDRINUSE)
}

// unixSocketStale reports whether nothing is accepting on the socket
// path (a previous owner died without unlinking it).
func unixSocketStale(addr string) bool {
	conn, err := net.DialTimeout("unix", addr, 250*time.Millisecond)
	if err != nil {
		return true
	}
	conn.Close()
	return false
}

type unixListener struct{ ln net.Listener }

func (l *unixListener) Accept() (FrameConn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return newStreamFrameConnMTU(conn, unixFragmentSize), nil
}

func (l *unixListener) Addr() string { return l.ln.Addr().String() }
func (l *unixListener) Close() error { return l.ln.Close() }

// --- In-process transport ------------------------------------------

// inprocMTU is the preferred frame size for in-process connections;
// frames never touch a wire, so the only ceiling is the wire-frame
// decode bound (minus slack for frame headers and XDR padding). Larger
// frames mean fewer channel hand-offs and, for messages that fit in
// one frame, no reassembly copy at all.
const inprocMTU = maxWireFrame - 256

// inprocChanDepth is the per-direction frame queue depth; a full queue
// applies backpressure to Send rather than dropping.
const inprocChanDepth = 256

var (
	inprocMu        sync.Mutex
	inprocListeners = make(map[string]*inprocListener)
	inprocAutoAddr  atomic.Uint64
)

// InprocTransport connects endpoints living in the same process
// through channel-backed FrameConns. Addresses are arbitrary unique
// names in a process-global namespace; an empty listen address
// auto-assigns one.
type InprocTransport struct{}

// Name implements Transport.
func (InprocTransport) Name() string { return "inproc" }

// Listen implements Transport.
func (InprocTransport) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = fmt.Sprintf("inproc-%d", inprocAutoAddr.Add(1))
	}
	l := &inprocListener{addr: addr, accept: make(chan *inprocConn, 16), done: make(chan struct{})}
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if _, taken := inprocListeners[addr]; taken {
		return nil, fmt.Errorf("comm: inproc address %q already in use", addr)
	}
	inprocListeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (InprocTransport) Dial(addr string) (FrameConn, error) {
	inprocMu.Lock()
	l := inprocListeners[addr]
	inprocMu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("comm: inproc dial %s: no listener", addr)
	}
	dialer, acceptee := newInprocPair(addr)
	select {
	case l.accept <- acceptee:
		return dialer, nil
	case <-l.done:
		return nil, fmt.Errorf("comm: inproc dial %s: listener closed", addr)
	}
}

type inprocListener struct {
	addr      string
	accept    chan *inprocConn
	done      chan struct{}
	closeOnce sync.Once
}

func (l *inprocListener) Accept() (FrameConn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		inprocMu.Lock()
		if inprocListeners[l.addr] == l {
			delete(inprocListeners, l.addr)
		}
		inprocMu.Unlock()
	})
	return nil
}

// inprocConn is one direction-pair endpoint of an in-process
// connection: it receives from its own queue and sends into the
// peer's. Send copies the frame into a pooled buffer, preserving the
// FrameConn contract that the caller's buffer is reusable immediately
// and the receiver owns what Recv returns.
type inprocConn struct {
	addr     string
	recv     chan []byte
	send     chan []byte
	ownDone  chan struct{}
	peerDone chan struct{}
	once     sync.Once
}

// newInprocPair builds the two connected halves.
func newInprocPair(addr string) (dialer, acceptee *inprocConn) {
	aToB := make(chan []byte, inprocChanDepth)
	bToA := make(chan []byte, inprocChanDepth)
	doneA := make(chan struct{})
	doneB := make(chan struct{})
	dialer = &inprocConn{addr: addr, recv: bToA, send: aToB, ownDone: doneA, peerDone: doneB}
	acceptee = &inprocConn{addr: addr, recv: aToB, send: bToA, ownDone: doneB, peerDone: doneA}
	return dialer, acceptee
}

func (c *inprocConn) Send(frame []byte) error {
	if len(frame) > maxWireFrame {
		return ErrTooLarge
	}
	select {
	case <-c.ownDone:
		return ErrClosed
	case <-c.peerDone:
		return ErrClosed
	default:
	}
	cp := getPayloadBuf(len(frame))
	copy(cp, frame)
	select {
	case c.send <- cp:
		return nil
	case <-c.ownDone:
		putPayloadBuf(cp)
		return ErrClosed
	case <-c.peerDone:
		putPayloadBuf(cp)
		return ErrClosed
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	// Drain queued frames even after a close, so nothing already sent
	// is lost to teardown ordering.
	select {
	case f := <-c.recv:
		return f, nil
	default:
	}
	select {
	case f := <-c.recv:
		return f, nil
	case <-c.ownDone:
		return nil, ErrClosed
	case <-c.peerDone:
		select {
		case f := <-c.recv:
			return f, nil
		default:
		}
		return nil, ErrClosed
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.ownDone) })
	return nil
}

func (c *inprocConn) MTU() int { return inprocMTU }

func (c *inprocConn) RemoteAddr() string { return "inproc:" + c.addr }
