package comm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeLiveness is a scripted PeerLiveness recording the evidence the
// endpoint feeds it.
type fakeLiveness struct {
	mu        sync.Mutex
	dead      map[string]bool
	failures  map[string]int
	successes map[string]int
}

func newFakeLiveness() *fakeLiveness {
	return &fakeLiveness{
		dead:      make(map[string]bool),
		failures:  make(map[string]int),
		successes: make(map[string]int),
	}
}

func (f *fakeLiveness) PeerDead(dst string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[dst]
}

func (f *fakeLiveness) ReportFailure(dst string) {
	f.mu.Lock()
	f.failures[dst]++
	f.mu.Unlock()
}

func (f *fakeLiveness) ReportSuccess(dst string) {
	f.mu.Lock()
	f.successes[dst]++
	f.mu.Unlock()
}

func (f *fakeLiveness) setDead(dst string, dead bool) {
	f.mu.Lock()
	f.dead[dst] = dead
	f.mu.Unlock()
}

func (f *fakeLiveness) counts(dst string) (failures, successes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failures[dst], f.successes[dst]
}

func TestFailFastDeadRefusesSends(t *testing.T) {
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl), WithFailFastDead())
	newTestEndpoint(t, "urn:b", res)

	fl.setDead("urn:b", true)
	if err := a.Send("urn:b", 1, []byte("x")); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("want ErrPeerDead, got %v", err)
	}
	// Revival restores normal semantics.
	fl.setDead("urn:b", false)
	if err := a.Send("urn:b", 1, []byte("x")); err != nil {
		t.Fatalf("after revival: %v", err)
	}
}

func TestLivenessWithoutFailFastKeepsBuffering(t *testing.T) {
	// Evidence-only wiring (no WithFailFastDead): the E5 ablation
	// posture. Sends to a "dead" peer must buffer exactly as before the
	// subsystem existed.
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl))
	b := newTestEndpoint(t, "urn:b", res)

	fl.setDead("urn:b", true)
	if err := a.Send("urn:b", 1, []byte("still flows")); err != nil {
		t.Fatalf("ablation send refused: %v", err)
	}
	if m, err := recvT(b, 3*time.Second); err != nil || string(m.Payload) != "still flows" {
		t.Fatalf("delivery: %v %v", m, err)
	}
}

func TestAckReportsSuccess(t *testing.T) {
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl))
	newTestEndpoint(t, "urn:b", res)

	if err := sendWaitT(a, "urn:b", 1, []byte("x"), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, succ := fl.counts("urn:b"); succ > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("acknowledgement never reported as liveness success")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fails, _ := fl.counts("urn:b"); fails != 0 {
		t.Fatalf("healthy exchange reported %d failures", fails)
	}
}

func TestExhaustedRoutesReportFailure(t *testing.T) {
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl))
	// A peer advertising only an unreachable route: every transmission
	// attempt fails on all routes, which is the evidence signal.
	res.set("urn:gone", Route{Transport: "tcp", Addr: "127.0.0.1:1"})

	a.Send("urn:gone", 1, []byte("x")) // buffered; background retries fail
	deadline := time.Now().Add(5 * time.Second)
	for {
		if fails, _ := fl.counts("urn:gone"); fails > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("exhausted transmission never reported as failure evidence")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRetrySkipsDeadPeers(t *testing.T) {
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl), WithFailFastDead())
	res.set("urn:limbo", Route{Transport: "tcp", Addr: "127.0.0.1:1"})

	// Buffer a message while the peer is merely unreachable, then
	// declare it dead: the retry loop must stop hammering the route.
	if err := a.Send("urn:limbo", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	fl.setDead("urn:limbo", true)
	time.Sleep(300 * time.Millisecond) // several 50ms retry intervals
	skipsBefore := a.Metrics().Snapshot().Counters["dead_peer_skips"]
	if skipsBefore == 0 {
		t.Fatal("retry loop never skipped the dead peer")
	}
	failsBefore, _ := fl.counts("urn:limbo")
	time.Sleep(200 * time.Millisecond)
	failsAfter, _ := fl.counts("urn:limbo")
	if failsAfter > failsBefore+1 {
		t.Fatalf("dead peer still being dialled: %d -> %d failures", failsBefore, failsAfter)
	}
}
