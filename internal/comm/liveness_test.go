package comm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeLiveness is a scripted PeerLiveness recording the evidence the
// endpoint feeds it.
type fakeLiveness struct {
	mu        sync.Mutex
	dead      map[string]bool
	failures  map[string]int
	successes map[string]int
}

func newFakeLiveness() *fakeLiveness {
	return &fakeLiveness{
		dead:      make(map[string]bool),
		failures:  make(map[string]int),
		successes: make(map[string]int),
	}
}

func (f *fakeLiveness) PeerDead(dst string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[dst]
}

func (f *fakeLiveness) ReportFailure(dst string) {
	f.mu.Lock()
	f.failures[dst]++
	f.mu.Unlock()
}

func (f *fakeLiveness) ReportSuccess(dst string) {
	f.mu.Lock()
	f.successes[dst]++
	f.mu.Unlock()
}

func (f *fakeLiveness) setDead(dst string, dead bool) {
	f.mu.Lock()
	f.dead[dst] = dead
	f.mu.Unlock()
}

func (f *fakeLiveness) counts(dst string) (failures, successes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failures[dst], f.successes[dst]
}

func TestFailFastDeadRefusesSends(t *testing.T) {
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl), WithFailFastDead())
	newTestEndpoint(t, "urn:b", res)

	fl.setDead("urn:b", true)
	if err := a.Send("urn:b", 1, []byte("x")); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("want ErrPeerDead, got %v", err)
	}
	// Revival restores normal semantics.
	fl.setDead("urn:b", false)
	if err := a.Send("urn:b", 1, []byte("x")); err != nil {
		t.Fatalf("after revival: %v", err)
	}
}

func TestLivenessWithoutFailFastKeepsBuffering(t *testing.T) {
	// Evidence-only wiring (no WithFailFastDead): the E5 ablation
	// posture. Sends to a "dead" peer must buffer exactly as before the
	// subsystem existed.
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl))
	b := newTestEndpoint(t, "urn:b", res)

	fl.setDead("urn:b", true)
	if err := a.Send("urn:b", 1, []byte("still flows")); err != nil {
		t.Fatalf("ablation send refused: %v", err)
	}
	if m, err := recvT(b, 3*time.Second); err != nil || string(m.Payload) != "still flows" {
		t.Fatalf("delivery: %v %v", m, err)
	}
}

func TestAckReportsSuccess(t *testing.T) {
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl))
	newTestEndpoint(t, "urn:b", res)

	if err := sendWaitT(a, "urn:b", 1, []byte("x"), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		_, succ := fl.counts("urn:b")
		return succ > 0
	}, "acknowledgement never reported as liveness success")
	if fails, _ := fl.counts("urn:b"); fails != 0 {
		t.Fatalf("healthy exchange reported %d failures", fails)
	}
}

func TestExhaustedRoutesReportFailure(t *testing.T) {
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl))
	// A peer advertising only an unreachable route: every transmission
	// attempt fails on all routes, which is the evidence signal.
	res.set("urn:gone", Route{Transport: "tcp", Addr: "127.0.0.1:1"})

	a.Send("urn:gone", 1, []byte("x")) // buffered; background retries fail
	waitFor(t, 5*time.Second, func() bool {
		fails, _ := fl.counts("urn:gone")
		return fails > 0
	}, "exhausted transmission never reported as failure evidence")
}

func TestRetrySkipsDeadPeers(t *testing.T) {
	res := newTestResolver()
	fl := newFakeLiveness()
	a := newTestEndpoint(t, "urn:a", res, WithLiveness(fl), WithFailFastDead())
	res.set("urn:limbo", Route{Transport: "tcp", Addr: "127.0.0.1:1"})

	// Buffer a message while the peer is merely unreachable, then
	// declare it dead: the retry loop must stop hammering the route.
	if err := a.Send("urn:limbo", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	fl.setDead("urn:limbo", true)
	skips := func() uint64 { return a.Metrics().Snapshot().Counters["dead_peer_skips"] }
	waitFor(t, 5*time.Second, func() bool { return skips() > 0 },
		"retry loop never skipped the dead peer")
	failsBefore, _ := fl.counts("urn:limbo")
	// Wait until several more retry ticks demonstrably skipped the peer
	// (bounded, counted via the skip metric rather than wall clock),
	// then check none of them dialled it.
	skipsBefore := skips()
	waitFor(t, 5*time.Second, func() bool { return skips() >= skipsBefore+3 },
		"retry loop stalled")
	failsAfter, _ := fl.counts("urn:limbo")
	if failsAfter > failsBefore+1 {
		t.Fatalf("dead peer still being dialled: %d -> %d failures", failsBefore, failsAfter)
	}
}
