package comm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Route is one way to reach an endpoint: a transport name, a dialable
// address, and the network interface metadata the paper stores in RC
// host records (§5.2.1) — protocol, "net name" shared by hosts on the
// same private network, per-message latency and bandwidth. The routing
// library uses this to "choose an efficient path to the destination,
// taking advantage of fast, private, and/or non-IP networks where
// available" (§5.2.1).
type Route struct {
	Transport string  // "tcp", "rudp", ...
	Addr      string  // transport-specific address
	NetName   string  // shared network identifier ("" = public internet)
	RateBps   float64 // advertised bandwidth, bits/sec (0 = unknown)
	LatencyUs float64 // advertised per-message latency, µs (0 = unknown)
}

// ListenSpec describes one interface an endpoint should listen on: the
// transport to bind, the bind address, and the media profile (net name,
// bandwidth, latency) advertised to peers via the resulting Route — in
// the full system, published as AttrCommAddr assertions in RC metadata.
type ListenSpec struct {
	Transport string  // "tcp", "rudp", ...
	Addr      string  // transport-specific bind address
	NetName   string  // shared network identifier ("" = public internet)
	RateBps   float64 // advertised bandwidth, bits/sec (0 = unknown)
	LatencyUs float64 // advertised per-message latency, µs (0 = unknown)
}

// Spec converts a route back into the listen spec that would advertise
// it — used when one component's advertised routes seed another's
// listen configuration.
func (r Route) Spec() ListenSpec {
	return ListenSpec{Transport: r.Transport, Addr: r.Addr, NetName: r.NetName,
		RateBps: r.RateBps, LatencyUs: r.LatencyUs}
}

// String renders the route in its RC metadata form:
//
//	transport://addr;net=NAME;rate=BPS;lat=US
func (r Route) String() string {
	s := fmt.Sprintf("%s://%s", r.Transport, r.Addr)
	if r.NetName != "" {
		s += ";net=" + r.NetName
	}
	if r.RateBps > 0 {
		s += fmt.Sprintf(";rate=%g", r.RateBps)
	}
	if r.LatencyUs > 0 {
		s += fmt.Sprintf(";lat=%g", r.LatencyUs)
	}
	return s
}

// ParseRoute parses the RC metadata form produced by String.
func ParseRoute(s string) (Route, error) {
	var r Route
	parts := strings.Split(s, ";")
	head := parts[0]
	i := strings.Index(head, "://")
	if i < 0 {
		return r, fmt.Errorf("comm: route %q missing transport://", s)
	}
	r.Transport = head[:i]
	r.Addr = head[i+3:]
	if r.Transport == "" || r.Addr == "" {
		return r, fmt.Errorf("comm: route %q has empty transport or address", s)
	}
	for _, opt := range parts[1:] {
		kv := strings.SplitN(opt, "=", 2)
		if len(kv) != 2 {
			return r, fmt.Errorf("comm: route option %q in %q", opt, s)
		}
		switch kv[0] {
		case "net":
			r.NetName = kv[1]
		case "rate":
			f, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return r, fmt.Errorf("comm: route rate in %q: %w", s, err)
			}
			// A negative, NaN or infinite rate would poison the route
			// scoring arithmetic and does not survive String().
			if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return r, fmt.Errorf("comm: route rate %q in %q out of range", kv[1], s)
			}
			r.RateBps = f
		case "lat":
			f, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return r, fmt.Errorf("comm: route latency in %q: %w", s, err)
			}
			if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return r, fmt.Errorf("comm: route latency %q in %q out of range", kv[1], s)
			}
			r.LatencyUs = f
		default:
			// Unknown options are ignored for forward compatibility; the
			// metadata schema is open.
		}
	}
	return r, nil
}

// Resolver maps a destination URN to its candidate routes. The full
// system backs this with RC metadata (AttrCommAddr assertions); tests
// and single-process universes use a static table.
type Resolver interface {
	// Resolve returns the destination's advertised routes. An empty
	// slice with nil error means the URN is known but currently has no
	// address (e.g. mid-migration); callers should buffer and retry.
	Resolve(urn string) ([]Route, error)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(urn string) ([]Route, error)

// Resolve implements Resolver.
func (f ResolverFunc) Resolve(urn string) ([]Route, error) { return f(urn) }

// StaticResolver is a fixed URN→routes table, safe for concurrent
// reads after construction.
type StaticResolver map[string][]Route

// Resolve implements Resolver.
func (s StaticResolver) Resolve(urn string) ([]Route, error) {
	return s[urn], nil
}

// OrderRoutes sorts candidate routes best-first given the local
// endpoint's own networks, implementing §5.3: "If the source and
// destination are on a common private network or common IP subnet, the
// message is sent using the fastest of those. Otherwise, the message is
// sent using the host's normal IP routing."
func OrderRoutes(local []Route, remote []Route) []Route {
	localNets := make(map[string]bool, len(local))
	for _, r := range local {
		if r.NetName != "" {
			localNets[r.NetName] = true
		}
	}
	out := append([]Route(nil), remote...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i], out[j]
		sharedI := si.NetName != "" && localNets[si.NetName]
		sharedJ := sj.NetName != "" && localNets[sj.NetName]
		if sharedI != sharedJ {
			return sharedI // common private network first
		}
		if si.RateBps != sj.RateBps {
			return si.RateBps > sj.RateBps // then fastest
		}
		if si.LatencyUs != sj.LatencyUs {
			return si.LatencyUs < sj.LatencyUs // then lowest latency
		}
		return false
	})
	return out
}
