package comm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"snipe/internal/stats"
	"snipe/internal/xdr"
)

// EndpointOption configures an Endpoint.
type EndpointOption func(*Endpoint)

// WithResolver sets the URN→routes resolver (RC-metadata-backed in the
// full system).
func WithResolver(r Resolver) EndpointOption {
	return func(e *Endpoint) { e.resolver = r }
}

// WithTransports sets the transport registry.
func WithTransports(t *Transports) EndpointOption {
	return func(e *Endpoint) { e.transports = t }
}

// WithBufferLimit bounds the number of unacknowledged outbound
// messages held in the system buffer.
func WithBufferLimit(n int) EndpointOption {
	return func(e *Endpoint) { e.bufferLimit = n }
}

// WithRetryInterval sets the base interval of the retry schedule: a
// buffered message's first retry comes one interval after its initial
// transmission, with capped exponential backoff (plus jitter) on each
// further attempt.
func WithRetryInterval(d time.Duration) EndpointOption {
	return func(e *Endpoint) { e.retryInterval = d }
}

// WithMaxRetryBackoff caps the per-message retry backoff: however many
// attempts a message has accumulated, it is retried at least this
// often. The cap bounds how long a peer returning from migration or a
// link failure waits for buffered traffic to find it again.
func WithMaxRetryBackoff(d time.Duration) EndpointOption {
	return func(e *Endpoint) { e.maxRetryBackoff = d }
}

// WithRouteCacheTTL sets how long resolved routes are reused before the
// resolver is asked again. A send failure over cached routes
// invalidates the entry immediately, so the TTL only bounds staleness
// on paths that appear healthy.
func WithRouteCacheTTL(d time.Duration) EndpointOption {
	return func(e *Endpoint) { e.routeCacheTTL = d }
}

// WithoutBuffering disables the system buffer: sends to unreachable
// peers fail immediately and unacknowledged messages are not retried.
// This is the ablation knob for experiment E5/E7 — with buffering off,
// migration and link failure lose messages, as the paper's design
// argument predicts.
func WithoutBuffering() EndpointOption {
	return func(e *Endpoint) { e.buffering = false }
}

// WithStripeThreshold sets the payload size at or above which messages
// to multi-homed peers are striped across all healthy routes in
// parallel. Zero or negative disables striping (the ablation knob for
// the multipath experiment); smaller messages always use the
// single-route failover path.
func WithStripeThreshold(n int) EndpointOption {
	return func(e *Endpoint) { e.stripeThreshold = n }
}

// WithStripeWindow bounds how many fragments each route keeps in
// flight (sent but not yet fragment-acknowledged) during a striped
// transmission.
func WithStripeWindow(n int) EndpointOption {
	return func(e *Endpoint) {
		if n > 0 {
			e.stripeWindow = n
		}
	}
}

// WithStripeStall caps how long a striped transmission tolerates zero
// acknowledgement progress before declaring the routes holding
// in-flight fragments dead and requeueing their fragments. Defaults to
// 4× the retry interval, floored at one second. Once a stripe's routes
// have observed RTT history, the effective stall window adapts to the
// slowest route's EWMA latency (see stripeStallFor) and this value
// only bounds it from above.
func WithStripeStall(d time.Duration) EndpointOption {
	return func(e *Endpoint) { e.stripeStall = d }
}

// WithScoreAlpha sets the EWMA smoothing factor (0 < α ≤ 1) of the
// adaptive route scorer; larger values weight recent observations more
// heavily.
func WithScoreAlpha(a float64) EndpointOption {
	return func(e *Endpoint) {
		if a > 0 && a <= 1 {
			e.scoreAlpha = a
		}
	}
}

// WithAckFlush sets the flush interval of the per-connection
// acknowledgement coalescer: per-fragment acks accumulate for up to
// this long (or until a batch fills, or an end-to-end ack flushes the
// connection's pending acks) before going out as one batched ack
// frame. Zero disables coalescing — every ack is its own frame, the
// pre-batching wire behaviour.
func WithAckFlush(d time.Duration) EndpointOption {
	return func(e *Endpoint) { e.ackFlush = d }
}

// WithHandler delivers incoming messages to fn instead of the mailbox.
// If tags are given, only messages with those tags go to the handler;
// everything else stays in the mailbox for Recv — letting a component
// serve a protocol and make client calls on one endpoint.
func WithHandler(fn func(*Message), tags ...uint32) EndpointOption {
	return func(e *Endpoint) {
		e.handler = fn
		if len(tags) > 0 {
			e.handlerTags = make(map[uint32]bool, len(tags))
			for _, t := range tags {
				e.handlerTags[t] = true
			}
		}
	}
}

// outKey identifies an unacknowledged outbound message.
type outKey struct {
	dst string
	seq uint64
}

type outMsg struct {
	msg         Message
	route       string    // route key of the last successful single-route send (guarded by the owning shard's mu)
	enqueued    time.Time // when the message entered the system buffer
	lastAttempt time.Time
	backoff     time.Duration // wait after lastAttempt before the next retry
	attempts    int
	acked       chan struct{} // closed on acknowledgement

	// Pooled-payload bookkeeping: msg.Payload came from the payload
	// pool and is recycled when the last reference drops. The system
	// buffer holds the initial reference (released on ack, or on send
	// failure with buffering off); each in-progress transmission holds
	// one more, so a retry racing the ack never reads a recycled
	// buffer.
	pooled bool
	refs   atomic.Int32
}

// acquirePayload takes a reference on the message payload for the
// duration of a transmission attempt. It fails if the payload has
// already been recycled (the message was acknowledged).
func (om *outMsg) acquirePayload() bool {
	if !om.pooled {
		return true
	}
	for {
		n := om.refs.Load()
		if n <= 0 {
			return false
		}
		if om.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// releasePayload drops one payload reference, recycling the buffer
// when the last reference goes.
func (om *outMsg) releasePayload() {
	if !om.pooled {
		return
	}
	if om.refs.Add(-1) == 0 {
		p := om.msg.Payload
		om.msg.Payload = nil
		putPayloadBuf(p)
	}
}

// listenerEntry pairs a live listener with the route it advertises, so
// listeners can be closed by route.
type listenerEntry struct {
	ln    Listener
	route Route
}

// routeCacheEntry caches one destination's resolved routes.
type routeCacheEntry struct {
	routes  []Route
	expires time.Time
}

// reasmKey identifies an in-progress reassembly. The destination is
// part of the key because sequence numbers are per (src → dst) stream
// and a gateway sees many destinations' frames from one source.
type reasmKey struct {
	src string
	dst string
	seq uint64
}

// sendShardCount is the number of outbound-state shards; a power of
// two so the destination hash folds with a mask.
const sendShardCount = 16

// sendShard holds the outbound send state for the destinations that
// hash into it: per-peer sequence counters and the unacknowledged
// message buffer. Sharding lets concurrent senders to different peers
// proceed in parallel instead of serialising on one endpoint-wide
// mutex; buffer-limit accounting moves to an endpoint-wide atomic
// (Endpoint.buffered) so the limit still applies exactly across
// shards.
type sendShard struct {
	mu          sync.Mutex
	nextSeq     map[string]uint64 // dst URN → next send seq
	outstanding map[outKey]*outMsg
}

// shardIndex hashes a destination URN to its shard (FNV-1a, masked).
func shardIndex(dst string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(dst); i++ {
		h ^= uint32(dst[i])
		h *= 16777619
	}
	return h & (sendShardCount - 1)
}

func (e *Endpoint) shardFor(dst string) *sendShard {
	return &e.shards[shardIndex(dst)]
}

// Endpoint is a process's communications identity: it owns the
// process's URN, listens on one or more transport addresses, and
// provides reliable, ordered, exactly-once message delivery to and
// from other endpoints, with the system-buffering and route-failover
// semantics of §6.
//
// Locking: the endpoint's state is partitioned so hot paths contend
// only with themselves — outbound send state is hash-sharded by
// destination (shards[i].mu), connections under connMu, the route
// cache under cacheMu, route scores under scoreMu, in-flight stripes
// under stripeMu, and the receive/delivery state (sequencing,
// reassembly, mailbox) under mu. Lock ordering: never hold two of
// these at once except mu→(none); each section acquires exactly one.
type Endpoint struct {
	urn        string
	transports *Transports

	bufferLimit     int
	retryInterval   time.Duration
	maxRetryBackoff time.Duration
	routeCacheTTL   time.Duration
	buffering       bool
	stripeThreshold int           // stripe payloads at or above this size (≤0 disables)
	stripeWindow    int           // per-route in-flight fragment window
	stripeStall     time.Duration // max zero-progress window before a stripe fails stuck routes
	scoreAlpha      float64       // EWMA smoothing factor of the route scorer
	ackFlush        time.Duration // ack coalescing flush interval (0 = one frame per ack)
	liveness        PeerLiveness  // optional failure detector fed by send/ack evidence
	failFastDead    bool          // refuse + stop retrying sends to dead peers
	handler         func(*Message)
	handlerTags     map[uint32]bool // nil = handler takes all tags

	// Outbound state, sharded by destination URN.
	shards   [sendShardCount]sendShard
	buffered atomic.Int64 // unacked messages across all shards (exact buffer-limit accounting)

	// Connection and listener state.
	connMu      sync.Mutex
	listeners   []listenerEntry
	localRoutes []Route
	conns       map[string]FrameConn // route key → conn

	// Route resolution.
	cacheMu    sync.Mutex
	resolver   Resolver
	routeCache map[string]routeCacheEntry // dst URN → resolved routes

	// Adaptive route scoring (see score.go).
	scoreMu sync.Mutex
	scores  map[string]*routeEWMA // route key → adaptive scoring state

	// In-flight striped transmissions (we are src; see stripe.go).
	stripeMu sync.Mutex
	stripes  map[reasmKey]*stripeState

	// Receive state: sequencing, reassembly, delivery.
	mu           sync.Mutex
	cond         *sync.Cond
	expected     map[string]uint64              // src URN → next delivery seq
	reorder      map[string]map[uint64]*Message // src URN → seq → message
	reasm        map[reasmKey]*reassembly
	mailbox      []*Message
	handlerQueue []*Message
	quiesced     bool // migration: stop accepting (and acking) new messages

	// Gateway relay state (nil unless WithGatewayRelay); guarded by the
	// package-level relayMu, not e.mu.
	gateway    bool
	relayConns map[relayKey]FrameConn
	relayReasm map[reasmKey]*reassembly

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	// Telemetry. Hot-path counters are captured once at construction;
	// all mutation is atomic (see internal/stats).
	metrics       *stats.Registry
	mSent         *stats.Counter
	mReceived     *stats.Counter
	mRetried      *stats.Counter
	mDuplicates   *stats.Counter
	mFragments    *stats.Counter
	mResolves     *stats.Counter
	mCacheHits    *stats.Counter
	mSendErrors   *stats.Counter
	mStriped      *stats.Counter   // messages sent via the multi-path stripe path
	mFragAcks     *stats.Counter   // per-fragment acknowledgements received
	mFragRequeues *stats.Counter   // fragments requeued off a failed route mid-stripe
	mAckBatches   *stats.Counter   // batched ack frames sent
	mAcksBatched  *stats.Counter   // individual acks carried inside batch frames
	mDeadRefused  *stats.Counter   // sends refused up front: peer host dead
	mDeadSkips    *stats.Counter   // buffered retries skipped: peer host dead
	hAckLatency   *stats.Histogram // µs, send → end-to-end ack
	hMsgSize      *stats.Histogram // bytes per application message
}

// NewEndpoint creates an endpoint for urn. Call Listen to accept
// traffic; Send works immediately if a resolver is configured.
func NewEndpoint(urn string, opts ...EndpointOption) *Endpoint {
	e := &Endpoint{
		urn:             urn,
		transports:      NewTransports(),
		resolver:        StaticResolver{},
		bufferLimit:     4096,
		retryInterval:   200 * time.Millisecond,
		maxRetryBackoff: 5 * time.Second,
		routeCacheTTL:   250 * time.Millisecond,
		buffering:       true,
		stripeThreshold: 256 << 10,
		stripeWindow:    32,
		scoreAlpha:      0.2,
		ackFlush:        defaultAckFlush,
		conns:           make(map[string]FrameConn),
		routeCache:      make(map[string]routeCacheEntry),
		expected:        make(map[string]uint64),
		reorder:         make(map[string]map[uint64]*Message),
		reasm:           make(map[reasmKey]*reassembly),
		stripes:         make(map[reasmKey]*stripeState),
		scores:          make(map[string]*routeEWMA),
		done:            make(chan struct{}),
		metrics:         stats.NewRegistry(),
	}
	for i := range e.shards {
		e.shards[i].nextSeq = make(map[string]uint64)
		e.shards[i].outstanding = make(map[outKey]*outMsg)
	}
	e.cond = sync.NewCond(&e.mu)
	e.mSent = e.metrics.Counter("sent")
	e.mReceived = e.metrics.Counter("received")
	e.mRetried = e.metrics.Counter("retried")
	e.mDuplicates = e.metrics.Counter("duplicates")
	e.mFragments = e.metrics.Counter("fragments")
	e.mResolves = e.metrics.Counter("resolves")
	e.mCacheHits = e.metrics.Counter("route_cache_hits")
	e.mSendErrors = e.metrics.Counter("send_errors")
	e.mStriped = e.metrics.Counter("striped")
	e.mFragAcks = e.metrics.Counter("frag_acks")
	e.mFragRequeues = e.metrics.Counter("frag_requeues")
	e.mAckBatches = e.metrics.Counter("ack_batches")
	e.mAcksBatched = e.metrics.Counter("acks_batched")
	e.mDeadRefused = e.metrics.Counter("dead_peer_refused")
	e.mDeadSkips = e.metrics.Counter("dead_peer_skips")
	e.hAckLatency = e.metrics.Histogram("ack_latency_us", stats.LatencyBucketsUs)
	e.hMsgSize = e.metrics.Histogram("msg_size_bytes", stats.SizeBuckets)
	for _, o := range opts {
		o(e)
	}
	if e.stripeStall <= 0 {
		e.stripeStall = 4 * e.retryInterval
		if e.stripeStall < time.Second {
			e.stripeStall = time.Second
		}
	}
	e.wg.Add(1)
	go e.retryLoop()
	if e.handler != nil {
		e.wg.Add(1)
		go e.dispatchLoop()
	}
	return e
}

// dispatchLoop feeds handled messages to the handler one at a time,
// preserving the per-source delivery order the sequencing layer
// established.
func (e *Endpoint) dispatchLoop() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.handlerQueue) == 0 && !e.closed.Load() {
			e.cond.Wait()
		}
		if len(e.handlerQueue) == 0 && e.closed.Load() {
			e.mu.Unlock()
			return
		}
		m := e.handlerQueue[0]
		e.handlerQueue = e.handlerQueue[1:]
		h := e.handler
		e.mu.Unlock()
		h(m)
	}
}

// URN returns the endpoint's global name.
func (e *Endpoint) URN() string { return e.urn }

// SetResolver replaces the resolver (used when a client joins a
// universe after construction). Cached routes from the old resolver
// are dropped.
func (e *Endpoint) SetResolver(r Resolver) {
	e.cacheMu.Lock()
	e.resolver = r
	e.routeCache = make(map[string]routeCacheEntry)
	e.cacheMu.Unlock()
}

// Listen starts accepting connections per spec: the named transport is
// bound at spec.Addr, and the spec's media profile is advertised to
// peers via the returned Route — in the full system, published as
// AttrCommAddr assertions in RC metadata.
func (e *Endpoint) Listen(spec ListenSpec) (Route, error) {
	tr, ok := e.transports.Get(spec.Transport)
	if !ok {
		return Route{}, fmt.Errorf("comm: unknown transport %q", spec.Transport)
	}
	ln, err := tr.Listen(spec.Addr)
	if err != nil {
		return Route{}, err
	}
	route := Route{Transport: spec.Transport, Addr: ln.Addr(), NetName: spec.NetName,
		RateBps: spec.RateBps, LatencyUs: spec.LatencyUs}
	if e.closed.Load() {
		ln.Close()
		return Route{}, ErrClosed
	}
	e.connMu.Lock()
	e.listeners = append(e.listeners, listenerEntry{ln: ln, route: route})
	e.localRoutes = append(e.localRoutes, route)
	e.connMu.Unlock()
	e.wg.Add(1)
	go e.acceptLoop(ln)
	return route, nil
}

// Routes returns the endpoint's advertised routes.
func (e *Endpoint) Routes() []Route {
	e.connMu.Lock()
	defer e.connMu.Unlock()
	return append([]Route(nil), e.localRoutes...)
}

// CloseListener shuts the listener that advertised route (as returned
// by Listen) and withdraws it from the endpoint's advertised routes —
// the link-failure injection used by the failover experiments. Unlike
// an index, the route stays a valid handle as listeners come and go.
func (e *Endpoint) CloseListener(route Route) error {
	e.connMu.Lock()
	var ln Listener
	for i, ent := range e.listeners {
		if ent.route == route {
			ln = ent.ln
			e.listeners = append(e.listeners[:i], e.listeners[i+1:]...)
			break
		}
	}
	if ln != nil {
		for i, r := range e.localRoutes {
			if r == route {
				e.localRoutes = append(e.localRoutes[:i], e.localRoutes[i+1:]...)
				break
			}
		}
	}
	e.connMu.Unlock()
	if ln == nil {
		return fmt.Errorf("comm: no listener for route %s", route)
	}
	return ln.Close()
}

// AttachConn adopts an already-established FrameConn (e.g. one built
// over a netsim pipe in benchmarks) for traffic to and from the peer.
// routeKey must be unique per conn.
func (e *Endpoint) AttachConn(routeKey string, conn FrameConn) {
	e.connMu.Lock()
	e.conns[routeKey] = conn
	e.connMu.Unlock()
	conn.Send(encodeHello(e.urn))
	e.wg.Add(1)
	go e.readLoop(conn, routeKey)
}

// Send queues payload for reliable delivery to dst. It returns once
// the message is accepted into the system buffer (and transmission has
// been attempted); delivery is asynchronous and survives peer
// migration and route failures. With buffering disabled, Send fails if
// no route currently works.
func (e *Endpoint) Send(dst string, tag uint32, payload []byte) error {
	_, err := e.send(dst, tag, payload)
	return err
}

// SendWait sends and then blocks until the destination
// acknowledges the message or ctx ends. The message remains buffered
// and retried even if the wait is abandoned.
func (e *Endpoint) SendWait(ctx context.Context, dst string, tag uint32, payload []byte) error {
	om, err := e.send(dst, tag, payload)
	if err != nil {
		return err
	}
	select {
	case <-om.acked:
		return nil
	case <-ctx.Done():
		return ctxErr(ctx)
	case <-e.done:
		return ErrClosed
	}
}

// ctxErr maps a finished context to the endpoint error vocabulary:
// deadline expiry is the familiar ErrTimeout, cancellation passes
// through.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return ctx.Err()
}

func (e *Endpoint) send(dst string, tag uint32, payload []byte) (*outMsg, error) {
	if len(payload) > MaxMessageSize {
		return nil, ErrTooLarge
	}
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if e.peerDead(dst) {
		e.mDeadRefused.Inc()
		return nil, fmt.Errorf("%w: %s", ErrPeerDead, dst)
	}
	// Buffer-limit accounting is endpoint-wide and exact: reserve a
	// slot first, back the reservation out if over the limit. Shards
	// never consult each other.
	if e.buffered.Add(1) > int64(e.bufferLimit) {
		e.buffered.Add(-1)
		return nil, ErrBufferFull
	}
	cp := getPayloadBuf(len(payload))
	copy(cp, payload)
	om := &outMsg{
		enqueued: time.Now(),
		acked:    make(chan struct{}),
		pooled:   true,
	}
	om.refs.Store(1) // the system buffer's reference
	sh := e.shardFor(dst)
	sh.mu.Lock()
	sh.nextSeq[dst]++
	seq := sh.nextSeq[dst]
	om.msg = Message{Src: e.urn, Dst: dst, Tag: tag, Seq: seq, Payload: cp}
	sh.outstanding[outKey{dst, seq}] = om
	sh.mu.Unlock()
	e.mSent.Inc()
	e.hMsgSize.Observe(float64(len(payload)))

	err := e.transmit(om)
	if err != nil && !e.buffering {
		sh.mu.Lock()
		delete(sh.outstanding, outKey{dst, seq})
		sh.mu.Unlock()
		e.buffered.Add(-1)
		om.releasePayload()
		return nil, err
	}
	return om, nil
}

// transmit attempts to push one buffered message toward its
// destination: large messages to multi-homed peers are striped across
// every healthy route in parallel (see stripe.go); everything else
// walks the adaptively scored routes one at a time, failing over on
// error.
func (e *Endpoint) transmit(om *outMsg) error {
	if !om.acquirePayload() {
		return nil // acknowledged (and recycled) before this attempt began
	}
	defer om.releasePayload()
	sh := e.shardFor(om.msg.Dst)
	sh.mu.Lock()
	om.lastAttempt = time.Now()
	om.attempts++
	om.backoff = e.retryBackoff(om.attempts)
	sh.mu.Unlock()
	local := e.Routes()

	routes, err := e.resolveRoutes(om.msg.Dst)
	if err != nil {
		return fmt.Errorf("comm: resolving %s: %w", om.msg.Dst, err)
	}
	if len(routes) == 0 {
		return fmt.Errorf("%w: %s has no advertised routes", ErrNoRoute, om.msg.Dst)
	}
	if e.stripeThreshold > 0 && len(om.msg.Payload) >= e.stripeThreshold {
		if handled, err := e.transmitStriped(om, local, routes); handled {
			return err
		}
		// Striping didn't apply (single-homed peer, or too few
		// fragments to split): fall through to single-route failover.
	}
	var lastErr error
	for _, route := range e.orderRoutesAdaptive(local, routes) {
		// Gateway routes (§5.1) expand to the gateway's own addresses;
		// the frames still name the final destination, and the gateway
		// relays them.
		if route.Transport == GatewayTransport {
			gwRoutes, err := e.resolveRoutes(route.Addr)
			if err != nil || len(gwRoutes) == 0 {
				lastErr = fmt.Errorf("%w: gateway %s unresolved", ErrNoRoute, route.Addr)
				continue
			}
			sent := false
			for _, gr := range e.orderRoutesAdaptive(local, gwRoutes) {
				if gr.Transport == GatewayTransport {
					continue // no gateway chains: avoids relay cycles
				}
				conn, err := e.getConn(gr)
				if err != nil {
					lastErr = err
					e.observeRouteError(gr.String())
					continue
				}
				if err := e.sendOn(conn, om); err != nil {
					lastErr = err
					e.mSendErrors.Inc()
					e.observeRouteError(gr.String())
					e.dropConn(gr.String(), conn)
					e.invalidateRoutes(route.Addr)
					continue
				}
				e.noteSentRoute(om, gr.String())
				sent = true
				break
			}
			if sent {
				return nil
			}
			continue
		}
		conn, err := e.getConn(route)
		if err != nil {
			lastErr = err
			e.observeRouteError(route.String())
			continue
		}
		if err := e.sendOn(conn, om); err != nil {
			lastErr = err
			e.mSendErrors.Inc()
			e.observeRouteError(route.String())
			e.dropConn(route.String(), conn)
			e.invalidateRoutes(om.msg.Dst)
			continue
		}
		e.noteSentRoute(om, route.String())
		return nil
	}
	if lastErr == nil {
		lastErr = ErrNoRoute
	}
	// Every advertised route failed: that is suspicion evidence about
	// the peer itself, not any one path — feed the failure detector.
	// (Resolver errors and empty advertisements above are not reported:
	// a catalog outage or a mid-migration window says nothing about the
	// peer's host.)
	e.reportSendFailure(om.msg.Dst)
	return lastErr
}

// noteSentRoute records which route carried a single-route
// transmission, so the end-to-end acknowledgement can credit its
// RTT/goodput to the right scorer entry.
func (e *Endpoint) noteSentRoute(om *outMsg, routeKey string) {
	sh := e.shardFor(om.msg.Dst)
	sh.mu.Lock()
	om.route = routeKey
	sh.mu.Unlock()
}

// resolveRoutes returns dst's advertised routes, consulting the
// short-TTL route cache first. Empty results are cached too: a burst
// of retries to an unknown or mid-migration peer costs one resolver
// call per TTL instead of one per buffered message per tick.
func (e *Endpoint) resolveRoutes(dst string) ([]Route, error) {
	now := time.Now()
	e.cacheMu.Lock()
	if ent, ok := e.routeCache[dst]; ok && now.Before(ent.expires) {
		routes := ent.routes
		e.cacheMu.Unlock()
		e.mCacheHits.Inc()
		return routes, nil
	}
	resolver := e.resolver
	ttl := e.routeCacheTTL
	e.cacheMu.Unlock()
	e.mResolves.Inc()
	routes, err := resolver.Resolve(dst)
	if err != nil {
		return nil, err
	}
	if ttl > 0 {
		e.cacheMu.Lock()
		e.routeCache[dst] = routeCacheEntry{routes: routes, expires: now.Add(ttl)}
		e.cacheMu.Unlock()
	}
	return routes, nil
}

// invalidateRoutes drops dst's cached routes after a send failure so
// the next attempt re-resolves immediately — failover must not wait
// out the TTL.
func (e *Endpoint) invalidateRoutes(dst string) {
	e.cacheMu.Lock()
	delete(e.routeCache, dst)
	e.cacheMu.Unlock()
}

// retryBackoff computes how long a message that has been attempted n
// times waits before its next retry: the base interval doubled per
// attempt, capped at maxRetryBackoff, plus positive-only jitter (up to
// a quarter of the backoff) so co-buffered messages don't retry in
// lockstep. The jitter never shortens the window, which keeps the
// lower bound exact for schedule assertions. Reads only immutable
// configuration, so it needs no lock.
func (e *Endpoint) retryBackoff(attempts int) time.Duration {
	d := e.retryInterval
	for i := 1; i < attempts && d < e.maxRetryBackoff; i++ {
		d *= 2
	}
	if d > e.maxRetryBackoff {
		d = e.maxRetryBackoff
	}
	if d > 0 {
		d += time.Duration(rand.Int63n(int64(d)/4 + 1))
	}
	return d
}

func (e *Endpoint) sendOn(conn FrameConn, om *outMsg) error {
	m := &om.msg
	// Per-fragment header: frame type, length-prefixed src and dst,
	// tag, seq, fragment index/count, flags, payload length prefix.
	hdr := 34 + len(m.Src) + len(m.Dst)
	mtu := conn.MTU() - hdr
	if mtu < 16 {
		return fmt.Errorf("%w: URNs too long for transport MTU", ErrTooLarge)
	}
	enc := getFrameEncoder()
	defer putFrameEncoder(enc)
	for _, f := range fragment(m.Src, m.Dst, m.Tag, m.Seq, m.Payload, mtu, 0) {
		if err := conn.Send(encodeMsgFrameInto(enc, f)); err != nil {
			return err
		}
		e.mFragments.Inc()
	}
	return nil
}

// getConn returns a live connection for the route, dialing if needed.
func (e *Endpoint) getConn(route Route) (FrameConn, error) {
	key := route.String()
	e.connMu.Lock()
	if conn, ok := e.conns[key]; ok {
		e.connMu.Unlock()
		return conn, nil
	}
	e.connMu.Unlock()
	tr, ok := e.transports.Get(route.Transport)
	if !ok {
		return nil, fmt.Errorf("comm: unknown transport %q", route.Transport)
	}
	conn, err := tr.Dial(route.Addr)
	if err != nil {
		return nil, err
	}
	e.connMu.Lock()
	if existing, ok := e.conns[key]; ok {
		e.connMu.Unlock()
		conn.Close()
		return existing, nil
	}
	if e.closed.Load() {
		e.connMu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	e.conns[key] = conn
	e.connMu.Unlock()
	conn.Send(encodeHello(e.urn))
	e.wg.Add(1)
	go e.readLoop(conn, key)
	return conn, nil
}

func (e *Endpoint) dropConn(key string, conn FrameConn) {
	e.connMu.Lock()
	if e.conns[key] == conn {
		delete(e.conns, key)
	}
	e.connMu.Unlock()
	conn.Close()
}

func (e *Endpoint) acceptLoop(ln Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		key := fmt.Sprintf("in:%p", conn)
		if e.closed.Load() {
			conn.Close()
			return
		}
		e.connMu.Lock()
		e.conns[key] = conn
		e.connMu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn, key)
	}
}

// readLoop drains one connection, recycling each frame buffer unless
// handling retained it (a fragment parked in a reassembly keeps its
// backing buffer until the message completes).
func (e *Endpoint) readLoop(conn FrameConn, key string) {
	defer e.wg.Done()
	defer e.dropConn(key, conn)
	ac := newAckCoalescer(e, conn)
	defer ac.stop()
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		if !e.handleFrame(conn, ac, frame) {
			putPayloadBuf(frame)
		}
	}
}

// handleFrame dispatches one inbound frame. It reports whether
// ownership of the frame buffer was retained (parked in a reassembly);
// when false the caller recycles the buffer.
func (e *Endpoint) handleFrame(conn FrameConn, ac *ackCoalescer, frame []byte) (retained bool) {
	d := xdr.NewDecoder(frame)
	ftype, err := d.Uint8()
	if err != nil {
		return false
	}
	switch ftype {
	case frameHello:
		decodeHello(d) // peer identity: informational

	case frameMsg:
		f, err := decodeMsgFrame(d)
		if err != nil {
			return false
		}
		return e.handleMsgFrame(conn, ac, f, frame)

	case frameAck:
		src, dst, seq, err := decodeAck(d)
		if err != nil {
			return false
		}
		e.handleAck(src, dst, seq)

	case frameFragAck:
		src, dst, seq, fragIdx, err := decodeFragAck(d)
		if err != nil {
			return false
		}
		e.handleFragAck(src, dst, seq, fragIdx)

	case frameAckBatch:
		refs, err := decodeAckBatch(d, false)
		if err != nil {
			return false
		}
		for i := range refs {
			e.handleAck(refs[i].src, refs[i].dst, refs[i].seq)
		}

	case frameFragAckBatch:
		refs, err := decodeAckBatch(d, true)
		if err != nil {
			return false
		}
		for i := range refs {
			e.handleFragAck(refs[i].src, refs[i].dst, refs[i].seq, refs[i].fragIdx)
		}
	}
	return false
}

// handleAck retires one end-to-end acknowledged message: the sender
// side of exactly-once delivery.
func (e *Endpoint) handleAck(src, dst string, seq uint64) {
	// A gateway first checks whether this ack belongs to a relayed
	// message and routes it back to the origin.
	if e.relayAck(src, dst, seq) {
		return
	}
	sh := e.shardFor(dst)
	sh.mu.Lock()
	om, ok := sh.outstanding[outKey{dst, seq}]
	var route string
	var attemptAge time.Duration
	if ok {
		delete(sh.outstanding, outKey{dst, seq})
		close(om.acked)
		route = om.route
		attemptAge = time.Since(om.lastAttempt)
	}
	sh.mu.Unlock()
	e.stripeMu.Lock()
	stripe := e.stripes[reasmKey{src, dst, seq}]
	e.stripeMu.Unlock()
	if stripe != nil {
		stripe.cancel() // message-level ack moots any in-flight stripe
	}
	if ok {
		e.buffered.Add(-1)
		e.hAckLatency.Observe(float64(time.Since(om.enqueued).Microseconds()))
		if route != "" {
			e.observeRouteAck(route, len(om.msg.Payload), attemptAge)
		}
		e.reportSendSuccess(dst) // end-to-end ack: direct proof of life
		om.releasePayload()      // the system buffer's reference
	}
}

// handleFragAck feeds one per-fragment acknowledgement into its
// stripe's window accounting and the route scorer.
func (e *Endpoint) handleFragAck(src, dst string, seq uint64, fragIdx uint32) {
	e.stripeMu.Lock()
	stripe := e.stripes[reasmKey{src, dst, seq}]
	e.stripeMu.Unlock()
	if stripe == nil {
		return
	}
	e.mFragAcks.Inc()
	if route, bytes, elapsed, ok := stripe.ackFrag(int(fragIdx)); ok {
		e.observeRouteAck(route, bytes, elapsed)
	}
}

// handleMsgFrame accepts one message fragment. buf is the pooled
// receive buffer backing f.Payload; the return value reports whether
// its ownership was consumed (parked in a reassembly, or already
// recycled on message completion) — when false the caller recycles it.
func (e *Endpoint) handleMsgFrame(conn FrameConn, ac *ackCoalescer, f *msgFrame, buf []byte) (retained bool) {
	if e.gateway && f.Dst != e.urn {
		return e.relayMsgFrame(conn, f, buf)
	}
	key := reasmKey{f.Src, f.Dst, f.Seq}

	e.mu.Lock()
	// A quiesced endpoint (a task that has checkpointed for migration)
	// neither delivers nor acknowledges: the sender keeps the message
	// buffered and its retries find the task's new location — the
	// paper's redirect-by-re-resolution (§5.6).
	if e.quiesced {
		e.mu.Unlock()
		return false
	}
	// Duplicate detection: anything below the expected sequence (or
	// waiting in the reorder buffer) has already been accepted; re-ack
	// so the sender stops retrying, but do not deliver again.
	_, inReorder := e.reorder[f.Src][f.Seq]
	if (e.expected[f.Src] > 0 && f.Seq < e.expected[f.Src]) || inReorder {
		e.mDuplicates.Inc()
		e.mu.Unlock()
		ac.ack(f.Src, f.Dst, f.Seq)
		return false
	}
	r, ok := e.reasm[key]
	if ok && r.total != int(f.FragCount) {
		// A whole-message retry may re-fragment with a different
		// geometry: the surviving route set (and so the governing MTU)
		// changed between attempts. Restart reassembly with the new
		// geometry instead of poisoning it.
		r.release()
		delete(e.reasm, key)
		ok = false
	}
	if !ok {
		r = newReassembly(f.FragCount, f.Tag, f.Dst)
		e.reasm[key] = r
	}
	payload, retained, err := r.add(f, buf)
	if err != nil {
		// add released nothing on its own; drop the whole reassembly
		// (including buf if it was just parked there).
		r.release()
		delete(e.reasm, key)
		e.mu.Unlock()
		return retained
	}
	if payload == nil {
		e.mu.Unlock()
		// Striped fragments are acknowledged individually so the
		// sender's per-route windows advance and dead routes are
		// detected mid-stripe.
		if f.Flags&flagStriped != 0 {
			ac.fragAck(f.Src, f.Dst, f.Seq, f.FragIdx)
		}
		return retained // awaiting more fragments
	}
	delete(e.reasm, key)

	// The assembled payload is a fresh buffer (add copies fragments out
	// and recycles their pooled backings), so the application can hold
	// the Message forever without pinning or racing the receive pool.
	msg := &Message{Src: f.Src, Dst: f.Dst, Tag: f.Tag, Seq: f.Seq, Payload: payload}
	if e.expected[f.Src] == 0 {
		e.expected[f.Src] = 1
	}
	if f.Seq == e.expected[f.Src] {
		e.deliverLocked(msg)
		e.expected[f.Src]++
		// Drain any buffered successors.
		for {
			next, ok := e.reorder[f.Src][e.expected[f.Src]]
			if !ok {
				break
			}
			delete(e.reorder[f.Src], e.expected[f.Src])
			e.deliverLocked(next)
			e.expected[f.Src]++
		}
	} else {
		if e.reorder[f.Src] == nil {
			e.reorder[f.Src] = make(map[uint64]*Message)
		}
		e.reorder[f.Src][f.Seq] = msg
	}
	e.mu.Unlock()

	// The final fragment of a stripe still gets its per-fragment ack
	// (the sender's scorer wants the sample); the message-level ack
	// below then retires the whole transmission.
	if f.Flags&flagStriped != 0 {
		ac.fragAck(f.Src, f.Dst, f.Seq, f.FragIdx)
	}
	// End-to-end acknowledgement: the message is safely accepted.
	ac.ack(f.Src, f.Dst, f.Seq)
	return retained
}

// deliverLocked appends to the mailbox or dispatches to the handler.
// Caller holds e.mu.
func (e *Endpoint) deliverLocked(m *Message) {
	e.mReceived.Inc()
	if e.handler != nil && (e.handlerTags == nil || e.handlerTags[m.Tag]) {
		e.handlerQueue = append(e.handlerQueue, m)
		e.cond.Broadcast()
		return
	}
	e.mailbox = append(e.mailbox, m)
	e.cond.Broadcast()
}

// Recv returns the next message of any tag from any source,
// waiting until ctx ends.
func (e *Endpoint) Recv(ctx context.Context) (*Message, error) {
	return e.RecvMatch(ctx, "", AnyTag)
}

// RecvMatch returns the next message matching src (""=any) and
// tag (AnyTag=any), waiting until ctx ends. Non-matching messages stay
// queued for other receivers.
func (e *Endpoint) RecvMatch(ctx context.Context, src string, tag uint32) (*Message, error) {
	stop := context.AfterFunc(ctx, func() {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	defer stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		for i, m := range e.mailbox {
			if (src == "" || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
				e.mailbox = append(e.mailbox[:i], e.mailbox[i+1:]...)
				return m, nil
			}
		}
		if e.closed.Load() {
			return nil, ErrClosed
		}
		if ctx.Err() != nil {
			return nil, ctxErr(ctx)
		}
		e.cond.Wait()
	}
}

// retryLoop re-transmits buffered unacknowledged messages, re-resolving
// the destination each time — which is how traffic finds a process
// again after it migrates or a link fails. Each message waits out its
// own capped-exponential backoff window between attempts, so a dead
// peer is probed ever more gently instead of being hammered every
// tick. One loop serves all shards: scanning is cheap (the per-shard
// lock is held only to collect due messages), and a single goroutine
// keeps thousand-endpoint swarms from running thousands of extra
// tickers.
func (e *Endpoint) retryLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.retryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
		}
		if !e.buffering {
			continue
		}
		now := time.Now()
		var due []*outMsg
		for i := range e.shards {
			sh := &e.shards[i]
			sh.mu.Lock()
			for _, om := range sh.outstanding {
				if now.Sub(om.lastAttempt) >= om.backoff {
					due = append(due, om)
				}
			}
			sh.mu.Unlock()
		}
		for _, om := range due {
			// With fail-fast on, retries to a confirmed-dead peer are
			// suppressed while it stays dead; the message remains
			// buffered, so a revived peer (healed partition, restart)
			// still collects its traffic.
			if e.peerDead(om.msg.Dst) {
				e.mDeadSkips.Inc()
				continue
			}
			e.mRetried.Inc()
			e.transmit(om) // failure leaves it buffered for a later tick
		}
	}
}

// Pending reports the number of buffered unacknowledged messages.
func (e *Endpoint) Pending() int {
	return int(e.buffered.Load())
}

// Metrics returns the endpoint's live metric registry; counters update
// as traffic flows. Gauges are refreshed by MetricsSnapshot.
func (e *Endpoint) Metrics() *stats.Registry { return e.metrics }

// MetricsSnapshot captures the endpoint's metrics, refreshing the
// instantaneous gauges first: buffered unacknowledged messages, open
// connections, and — for transports that expose them — cumulative RUDP
// retransmissions and mean smoothed RTT across connections.
func (e *Endpoint) MetricsSnapshot() stats.Snapshot {
	pending := e.buffered.Load()
	e.stripeMu.Lock()
	stripes := len(e.stripes)
	e.stripeMu.Unlock()
	e.scoreMu.Lock()
	scored := len(e.scores)
	e.scoreMu.Unlock()
	e.connMu.Lock()
	conns := make([]FrameConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.connMu.Unlock()
	var retrans int
	var srttSum float64
	var srttN int
	for _, c := range conns {
		if r, ok := c.(interface{ Retransmissions() int }); ok {
			retrans += r.Retransmissions()
		}
		if s, ok := c.(interface{ SRTT() time.Duration }); ok {
			if v := s.SRTT(); v > 0 {
				srttSum += float64(v.Microseconds())
				srttN++
			}
		}
	}
	e.metrics.Gauge("pending").Set(float64(pending))
	e.metrics.Gauge("conns").Set(float64(len(conns)))
	e.metrics.Gauge("stripes_active").Set(float64(stripes))
	e.metrics.Gauge("routes_scored").Set(float64(scored))
	e.metrics.Gauge("rudp_retransmissions").Set(float64(retrans))
	if srttN > 0 {
		e.metrics.Gauge("rudp_srtt_us").Set(srttSum / float64(srttN))
	}
	return e.metrics.Snapshot()
}

// Close shuts down the endpoint. Buffered messages are discarded.
func (e *Endpoint) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	close(e.done)
	// Shard barrier: any sender that passed the closed check before the
	// swap has finished inserting by the time each shard lock cycles,
	// so nothing slips into a shard after this point.
	for i := range e.shards {
		e.shards[i].mu.Lock()
		//lint:ignore SA2001 empty critical section is the barrier
		e.shards[i].mu.Unlock()
	}
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.connMu.Lock()
	lns := append([]listenerEntry(nil), e.listeners...)
	conns := make([]FrameConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.connMu.Unlock()
	for _, ent := range lns {
		ent.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	e.wg.Wait()
}

// Quiesce makes the endpoint stop accepting (and acknowledging) new
// messages, freezing its state for a checkpoint. Messages already in
// the mailbox — accepted and acknowledged but not yet consumed — are
// part of the sequence snapshot and travel with the checkpoint.
func (e *Endpoint) Quiesce() {
	e.mu.Lock()
	e.quiesced = true
	e.mu.Unlock()
}

// SequenceState is the portable communications state of an endpoint,
// captured at checkpoint time so that a migrated process resumes its
// conversations without loss or duplication (§5.6): per-peer send and
// receive sequence numbers, plus any accepted-but-unconsumed mailbox
// messages.
type SequenceState struct {
	NextSeq  map[string]uint64
	Expected map[string]uint64
	Mailbox  []Message
}

// SnapshotSequences captures the endpoint's communications state. The
// endpoint should be quiesced first so the snapshot cannot miss a
// message acknowledged after the capture.
func (e *Endpoint) SnapshotSequences() SequenceState {
	s := SequenceState{
		NextSeq:  make(map[string]uint64),
		Expected: make(map[string]uint64),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for k, v := range sh.nextSeq {
			s.NextSeq[k] = v
		}
		sh.mu.Unlock()
	}
	e.mu.Lock()
	for k, v := range e.expected {
		s.Expected[k] = v
	}
	for _, m := range e.mailbox {
		s.Mailbox = append(s.Mailbox, *m)
	}
	e.mu.Unlock()
	return s
}

// RestoreSequences installs state captured by SnapshotSequences into a
// fresh endpoint (at the migration target).
func (e *Endpoint) RestoreSequences(s SequenceState) {
	for k, v := range s.NextSeq {
		sh := e.shardFor(k)
		sh.mu.Lock()
		sh.nextSeq[k] = v
		sh.mu.Unlock()
	}
	e.mu.Lock()
	for k, v := range s.Expected {
		e.expected[k] = v
	}
	for i := range s.Mailbox {
		m := s.Mailbox[i]
		e.mailbox = append(e.mailbox, &m)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Encode serialises sequence state for transport in a checkpoint.
func (s SequenceState) Encode(e *xdr.Encoder) {
	encodeU64Map(e, s.NextSeq)
	encodeU64Map(e, s.Expected)
	e.PutUint32(uint32(len(s.Mailbox)))
	for _, m := range s.Mailbox {
		e.PutString(m.Src)
		e.PutString(m.Dst)
		e.PutUint32(m.Tag)
		e.PutUint64(m.Seq)
		e.PutBytes(m.Payload)
	}
}

// DecodeSequenceState reads state written by Encode.
func DecodeSequenceState(d *xdr.Decoder) (SequenceState, error) {
	var s SequenceState
	var err error
	if s.NextSeq, err = decodeU64Map(d); err != nil {
		return s, err
	}
	if s.Expected, err = decodeU64Map(d); err != nil {
		return s, err
	}
	n, err := d.Uint32()
	if err != nil {
		return s, err
	}
	// Each mailbox entry costs at least 24 encoded bytes (two string
	// lengths, tag, seq, payload length); a count beyond that is hostile.
	if int64(n)*24 > int64(d.Remaining()) {
		return s, fmt.Errorf("%w: mailbox count %d exceeds remaining %d bytes",
			xdr.ErrStringTooLong, n, d.Remaining())
	}
	for i := uint32(0); i < n; i++ {
		var m Message
		if m.Src, err = d.StringMax(maxWireURN); err != nil {
			return s, err
		}
		if m.Dst, err = d.StringMax(maxWireURN); err != nil {
			return s, err
		}
		if m.Tag, err = d.Uint32(); err != nil {
			return s, err
		}
		if m.Seq, err = d.Uint64(); err != nil {
			return s, err
		}
		if m.Payload, err = d.BytesCopyMax(MaxMessageSize); err != nil {
			return s, err
		}
		s.Mailbox = append(s.Mailbox, m)
	}
	return s, nil
}

func encodeU64Map(e *xdr.Encoder, m map[string]uint64) {
	e.PutUint32(uint32(len(m)))
	for k, v := range m {
		e.PutString(k)
		e.PutUint64(v)
	}
}

func decodeU64Map(d *xdr.Decoder) (map[string]uint64, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	// Each entry costs at least 12 encoded bytes (string length + u64);
	// fail fast on hostile counts before the map preallocation below.
	if int64(n)*12 > int64(d.Remaining()) {
		return nil, fmt.Errorf("%w: map count %d exceeds remaining %d bytes",
			xdr.ErrStringTooLong, n, d.Remaining())
	}
	m := make(map[string]uint64, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		k, err := d.StringMax(maxWireURN)
		if err != nil {
			return nil, err
		}
		v, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}
