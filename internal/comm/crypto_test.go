package comm

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// framePipe returns two plaintext FrameConns over an in-memory duplex
// stream.
func framePipe(t *testing.T) (FrameConn, FrameConn) {
	t.Helper()
	ca, cb := net.Pipe()
	a, b := NewStreamFrameConn(ca), NewStreamFrameConn(cb)
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestEncryptedConnRoundTrip(t *testing.T) {
	pa, pb := framePipe(t)
	secret := []byte("shared")
	a, err := NewEncryptedConn(pa, secret, "test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEncryptedConn(pb, secret, "test")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("confidential payload")
	go a.Send(msg)
	got, err := b.Recv()
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("recv: %q %v", got, err)
	}
	// Reverse direction.
	go b.Send([]byte("reply"))
	got, err = a.Recv()
	if err != nil || string(got) != "reply" {
		t.Fatalf("reply: %q %v", got, err)
	}
}

func TestEncryptedConnCiphertextOnWire(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	a, err := NewEncryptedConn(NewStreamFrameConn(ca), []byte("s"), "l")
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("the secret formula: E = mc^2")
	go a.Send(plain)
	// Read the raw frame from the other end: it must not contain the
	// plaintext.
	raw, err := NewStreamFrameConn(cb).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, plain) || bytes.Contains(raw, []byte("secret formula")) {
		t.Fatal("plaintext visible on the wire")
	}
}

func TestEncryptedConnRejectsWrongKey(t *testing.T) {
	pa, pb := framePipe(t)
	a, _ := NewEncryptedConn(pa, []byte("key-1"), "l")
	b, _ := NewEncryptedConn(pb, []byte("key-2"), "l")
	go a.Send([]byte("x"))
	if _, err := b.Recv(); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong key: %v", err)
	}
	// Different labels also fail.
	pa2, pb2 := framePipe(t)
	a2, _ := NewEncryptedConn(pa2, []byte("k"), "label-a")
	b2, _ := NewEncryptedConn(pb2, []byte("k"), "label-b")
	go a2.Send([]byte("x"))
	if _, err := b2.Recv(); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("wrong label: %v", err)
	}
}

func TestEncryptedConnRejectsTampering(t *testing.T) {
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	a, _ := NewEncryptedConn(NewStreamFrameConn(ca), []byte("k"), "l")
	rawB := NewStreamFrameConn(cb)
	done := make(chan error, 1)
	go func() { done <- a.Send([]byte("payload")) }()
	sealed, err := rawB.Recv()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	// Flip a ciphertext bit and feed it back through a fresh pair.
	ca2, cb2 := net.Pipe()
	defer ca2.Close()
	defer cb2.Close()
	b2, _ := NewEncryptedConn(NewStreamFrameConn(cb2), []byte("k"), "l")
	tampered := append([]byte(nil), sealed...)
	tampered[len(tampered)-1] ^= 0x01
	go NewStreamFrameConn(ca2).Send(tampered)
	if _, err := b2.Recv(); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("tampered frame: %v", err)
	}
}

func TestEncryptedConnMTUAccountsForOverhead(t *testing.T) {
	pa, _ := framePipe(t)
	a, _ := NewEncryptedConn(pa, []byte("k"), "l")
	if a.MTU() >= pa.MTU() {
		t.Fatalf("MTU %d not reduced from %d", a.MTU(), pa.MTU())
	}
}

func TestEncryptedTransportEndToEnd(t *testing.T) {
	secret := []byte("transport-secret")
	transports := NewTransports()
	transports.Register(EncryptedTransport{Inner: TCPTransport{}, Secret: secret})

	resolver := &testResolver{m: make(map[string][]Route)}
	a := NewEndpoint("urn:ea", WithResolver(resolver), WithTransports(transports))
	defer a.Close()
	b := NewEndpoint("urn:eb", WithResolver(resolver), WithTransports(transports))
	defer b.Close()
	ra, err := a.Listen(ListenSpec{Transport: "tcp+tls", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Listen(ListenSpec{Transport: "tcp+tls", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	resolver.set("urn:ea", ra)
	resolver.set("urn:eb", rb)

	payload := make([]byte, 200_000) // multi-fragment
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	if err := sendWaitT(a, "urn:eb", 5, payload, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := recvT(b, 5*time.Second)
	if err != nil || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("encrypted transport: len=%d err=%v", len(m.Payload), err)
	}
	if m.Tag != 5 {
		t.Fatalf("tag: %d", m.Tag)
	}
}

func TestEncryptedTransportKeyMismatchFailsClosed(t *testing.T) {
	ta := NewTransports()
	ta.Register(EncryptedTransport{Inner: TCPTransport{}, Secret: []byte("right")})
	tb := NewTransports()
	tb.Register(EncryptedTransport{Inner: TCPTransport{}, Secret: []byte("wrong")})

	resolver := &testResolver{m: make(map[string][]Route)}
	a := NewEndpoint("urn:ea", WithResolver(resolver), WithTransports(ta), WithoutBuffering())
	defer a.Close()
	b := NewEndpoint("urn:eb", WithResolver(resolver), WithTransports(tb))
	defer b.Close()
	rb, err := b.Listen(ListenSpec{Transport: "tcp+tls", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	resolver.set("urn:eb", rb)

	a.Send("urn:eb", 1, []byte("should not arrive"))
	if m, err := recvT(b, 300*time.Millisecond); err == nil {
		t.Fatalf("mismatched keys delivered %q", m.Payload)
	}
}
