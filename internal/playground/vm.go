// Package playground implements SNIPE playgrounds (paper §3.6, §5.8):
// trusted environments for the secure execution of mobile code.
//
// A playground downloads a code image from a file server, verifies its
// authenticity and integrity (signature and content hash published as
// RC metadata), checks that the code's requested rights are granted,
// and runs it under enforced resource quotas — logging violations and
// excess resource use. The paper anticipates mobile code written in "a
// machine-independent language such as Java, Python, or Limbo ...
// [whose] implementations may also be able to arrange the allocation
// of program storage in a way that facilitates checkpointing, restart,
// and migration". This package provides exactly such a language:
// SnipeScript, a small stack-machine bytecode whose entire execution
// state serialises to a few hundred bytes, making playground tasks
// genuinely checkpointable and migratable.
package playground

import (
	"errors"
	"fmt"

	"snipe/internal/xdr"
)

// Opcodes of the SnipeScript virtual machine. Operand-carrying opcodes
// take one 8-byte immediate.
const (
	opHalt   uint8 = iota // stop, top of stack is the exit value (0 if empty)
	opPush                // push imm
	opPop                 // discard top
	opDup                 // duplicate top
	opSwap                // swap top two
	opAdd                 // a b -- a+b
	opSub                 // a b -- a-b
	opMul                 // a b -- a*b
	opDiv                 // a b -- a/b (b!=0)
	opMod                 // a b -- a%b (b!=0)
	opNeg                 // a -- -a
	opAnd                 // bitwise and
	opOr                  // bitwise or
	opXor                 // bitwise xor
	opShl                 // a n -- a<<n
	opShr                 // a n -- a>>n (arithmetic)
	opEq                  // a b -- a==b
	opNe                  // a b -- a!=b
	opLt                  // a b -- a<b
	opLe                  // a b -- a<=b
	opGt                  // a b -- a>b
	opGe                  // a b -- a>=b
	opNot                 // a -- !a (0→1, nonzero→0)
	opJmp                 // jump to imm
	opJz                  // pop; jump to imm if zero
	opJnz                 // pop; jump to imm if nonzero
	opCall                // push return pc; jump to imm
	opRet                 // pop return pc; jump
	opLoad                // addr -- mem[addr]
	opStore               // value addr -- ; mem[addr]=value
	opLoadI               // -- mem[imm]
	opStoreI              // value -- ; mem[imm]=value
	opSys                 // syscall imm; args per syscall
	opNop
	opMax // sentinel
)

// Syscall numbers (the imm of opSys).
const (
	// SysSend: dstStrIdx tag value -- ok. Sends one 8-byte value.
	SysSend int64 = iota + 1
	// SysRecv: tag timeoutMs -- value ok. ok=0 on timeout.
	SysRecv
	// SysLog: strIdx -- . Logs a string constant.
	SysLog
	// SysLogInt: value -- . Logs an integer.
	SysLogInt
	// SysArgInt: i -- value. Reads task argument i as an integer (0 if
	// missing or malformed).
	SysArgInt
	// SysSteps: -- steps. Reads the VM's executed-instruction counter
	// (the deterministic substitute for wall-clock time).
	SysSteps
	// SysYield: -- . A cooperative scheduling point (checkpoint/kill).
	SysYield
)

// Permissions gate syscalls; a playground grants rights according to
// the code's verified credentials.
type Permissions uint32

// Permission bits.
const (
	PermSend Permissions = 1 << iota
	PermRecv
	PermLog
	// PermAll grants everything; for trusted code.
	PermAll Permissions = ^Permissions(0)
)

// Quota bounds a program's resource use, enforced per instruction —
// the playground's job of "enforcing access restrictions and resource
// usage quotas".
type Quota struct {
	MaxSteps int64 // instruction budget (0 = unlimited)
	MaxStack int   // operand stack depth
	MaxMem   int   // memory cells
}

// DefaultQuota is a generous sandbox default.
var DefaultQuota = Quota{MaxSteps: 10_000_000, MaxStack: 1024, MaxMem: 65536}

// Violation describes a quota or permission violation, which
// playgrounds log (§3.6).
type Violation struct {
	Kind string // "quota" or "permission"
	Msg  string
}

// Errors of the VM.
var (
	// ErrQuota indicates an exceeded resource quota.
	ErrQuota = errors.New("playground: quota exceeded")
	// ErrPermission indicates a syscall without the needed right.
	ErrPermission = errors.New("playground: permission denied")
	// ErrFault indicates a program fault (bad opcode, stack underflow,
	// out-of-range memory, division by zero).
	ErrFault = errors.New("playground: program fault")
	// ErrInterrupted indicates the host stopped execution (kill or
	// checkpoint).
	ErrInterrupted = errors.New("playground: interrupted")
)

// Host is the VM's gateway to SNIPE facilities; the playground binds
// it to the task's endpoint with access control applied.
type Host interface {
	Send(dst string, tag uint32, value int64) error
	Recv(tag uint32, timeoutMs int64) (int64, bool)
	Log(msg string)
	ArgInt(i int) int64
	// Poll is called at yield points; it returns ErrInterrupted to stop
	// the program (for kill or checkpoint).
	Poll() error
}

// Program is executable SnipeScript: a string constant pool, bytecode,
// and an initial memory size.
type Program struct {
	Consts  []string
	Code    []byte
	MemSize int
}

// Encode serialises the program.
func (p *Program) Encode(e *xdr.Encoder) {
	e.PutStringSlice(p.Consts)
	e.PutBytes(p.Code)
	e.PutUint32(uint32(p.MemSize))
}

// Wire-decode caps for programs: a constant pool of at most
// maxWireConsts strings and bytecode of at most maxWireProgram (the
// same bound DecodeImage places on a stored program).
const maxWireConsts = 64 << 10

// DecodeProgram reads a program written by Encode.
func DecodeProgram(d *xdr.Decoder) (*Program, error) {
	p := &Program{}
	var err error
	if p.Consts, err = d.StringSliceMax(maxWireConsts, maxWireProgram); err != nil {
		return nil, err
	}
	if p.Code, err = d.BytesCopyMax(maxWireProgram); err != nil {
		return nil, err
	}
	memSize, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	p.MemSize = int(memSize)
	return p, nil
}

// Bytes returns the serialised program.
func (p *Program) Bytes() []byte {
	e := xdr.NewEncoder(len(p.Code) + 64)
	p.Encode(e)
	return e.Bytes()
}

// ParseProgram decodes a serialised program.
func ParseProgram(b []byte) (*Program, error) {
	d := xdr.NewDecoder(b)
	p, err := DecodeProgram(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// VM executes a Program under quotas and permissions. Its complete
// execution state (pc, stack, memory, step counter) can be captured
// with Snapshot and resumed with RestoreVM — the playground hook for
// checkpointing, restart and migration.
type VM struct {
	prog  *Program
	host  Host
	quota Quota
	perms Permissions

	pc    int
	stack []int64
	mem   []int64
	steps int64

	violations []Violation
}

// NewVM prepares a program for execution.
func NewVM(prog *Program, host Host, quota Quota, perms Permissions) (*VM, error) {
	if quota.MaxMem > 0 && prog.MemSize > quota.MaxMem {
		return nil, fmt.Errorf("%w: program wants %d memory cells, quota %d", ErrQuota, prog.MemSize, quota.MaxMem)
	}
	return &VM{
		prog:  prog,
		host:  host,
		quota: quota,
		perms: perms,
		mem:   make([]int64, prog.MemSize),
		stack: make([]int64, 0, 64),
	}, nil
}

// Violations returns the logged quota/permission violations.
func (v *VM) Violations() []Violation { return v.violations }

// Steps returns the number of executed instructions.
func (v *VM) Steps() int64 { return v.steps }

func (v *VM) violate(kind, format string, args ...interface{}) {
	v.violations = append(v.violations, Violation{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

func (v *VM) push(x int64) error {
	if v.quota.MaxStack > 0 && len(v.stack) >= v.quota.MaxStack {
		v.violate("quota", "stack overflow at pc %d", v.pc)
		return fmt.Errorf("%w: stack depth %d", ErrQuota, len(v.stack))
	}
	v.stack = append(v.stack, x)
	return nil
}

func (v *VM) pop() (int64, error) {
	if len(v.stack) == 0 {
		return 0, fmt.Errorf("%w: stack underflow at pc %d", ErrFault, v.pc)
	}
	x := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	return x, nil
}

func (v *VM) pop2() (a, b int64, err error) {
	if b, err = v.pop(); err != nil {
		return
	}
	a, err = v.pop()
	return
}

func (v *VM) fetchImm() (int64, error) {
	if v.pc+8 > len(v.prog.Code) {
		return 0, fmt.Errorf("%w: truncated immediate at pc %d", ErrFault, v.pc)
	}
	b := v.prog.Code[v.pc:]
	imm := int64(uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]))
	v.pc += 8
	return imm, nil
}

func (v *VM) str(idx int64) (string, error) {
	if idx < 0 || int(idx) >= len(v.prog.Consts) {
		return "", fmt.Errorf("%w: string constant %d out of range", ErrFault, idx)
	}
	return v.prog.Consts[idx], nil
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// yieldEvery is how many instructions run between host Poll calls.
const yieldEvery = 4096

// Run executes until HALT, a fault, a quota violation, or a host
// interruption, returning the program's exit value.
func (v *VM) Run() (int64, error) {
	for {
		if v.quota.MaxSteps > 0 && v.steps >= v.quota.MaxSteps {
			v.violate("quota", "instruction budget %d exhausted", v.quota.MaxSteps)
			return 0, fmt.Errorf("%w: %d instructions", ErrQuota, v.quota.MaxSteps)
		}
		if v.steps%yieldEvery == 0 && v.host != nil {
			if err := v.host.Poll(); err != nil {
				return 0, err
			}
		}
		if v.pc < 0 || v.pc >= len(v.prog.Code) {
			return 0, fmt.Errorf("%w: pc %d out of code range", ErrFault, v.pc)
		}
		op := v.prog.Code[v.pc]
		v.pc++
		v.steps++

		var err error
		switch op {
		case opHalt:
			if len(v.stack) == 0 {
				return 0, nil
			}
			return v.stack[len(v.stack)-1], nil
		case opNop:
		case opPush:
			var imm int64
			if imm, err = v.fetchImm(); err == nil {
				err = v.push(imm)
			}
		case opPop:
			_, err = v.pop()
		case opDup:
			if len(v.stack) == 0 {
				err = fmt.Errorf("%w: dup on empty stack", ErrFault)
			} else {
				err = v.push(v.stack[len(v.stack)-1])
			}
		case opSwap:
			var a, b int64
			if a, b, err = v.pop2(); err == nil {
				v.push(b)
				err = v.push(a)
			}
		case opAdd, opSub, opMul, opDiv, opMod, opAnd, opOr, opXor, opShl, opShr,
			opEq, opNe, opLt, opLe, opGt, opGe:
			var a, b int64
			if a, b, err = v.pop2(); err != nil {
				break
			}
			var r int64
			switch op {
			case opAdd:
				r = a + b
			case opSub:
				r = a - b
			case opMul:
				r = a * b
			case opDiv:
				if b == 0 {
					err = fmt.Errorf("%w: division by zero at pc %d", ErrFault, v.pc)
				} else {
					r = a / b
				}
			case opMod:
				if b == 0 {
					err = fmt.Errorf("%w: modulo by zero at pc %d", ErrFault, v.pc)
				} else {
					r = a % b
				}
			case opAnd:
				r = a & b
			case opOr:
				r = a | b
			case opXor:
				r = a ^ b
			case opShl:
				r = a << uint(b&63)
			case opShr:
				r = a >> uint(b&63)
			case opEq:
				r = boolToInt(a == b)
			case opNe:
				r = boolToInt(a != b)
			case opLt:
				r = boolToInt(a < b)
			case opLe:
				r = boolToInt(a <= b)
			case opGt:
				r = boolToInt(a > b)
			case opGe:
				r = boolToInt(a >= b)
			}
			if err == nil {
				err = v.push(r)
			}
		case opNeg:
			var a int64
			if a, err = v.pop(); err == nil {
				err = v.push(-a)
			}
		case opNot:
			var a int64
			if a, err = v.pop(); err == nil {
				err = v.push(boolToInt(a == 0))
			}
		case opJmp:
			var imm int64
			if imm, err = v.fetchImm(); err == nil {
				v.pc = int(imm)
			}
		case opJz, opJnz:
			var imm, c int64
			if imm, err = v.fetchImm(); err != nil {
				break
			}
			if c, err = v.pop(); err != nil {
				break
			}
			if (op == opJz && c == 0) || (op == opJnz && c != 0) {
				v.pc = int(imm)
			}
		case opCall:
			var imm int64
			if imm, err = v.fetchImm(); err != nil {
				break
			}
			if err = v.push(int64(v.pc)); err == nil {
				v.pc = int(imm)
			}
		case opRet:
			var ret int64
			if ret, err = v.pop(); err == nil {
				v.pc = int(ret)
			}
		case opLoad:
			var addr int64
			if addr, err = v.pop(); err != nil {
				break
			}
			if addr < 0 || int(addr) >= len(v.mem) {
				err = fmt.Errorf("%w: load of cell %d (mem %d)", ErrFault, addr, len(v.mem))
			} else {
				err = v.push(v.mem[addr])
			}
		case opStore:
			var val, addr int64
			if val, addr, err = v.pop2(); err != nil {
				break
			}
			// Stack order: value addr -- ; pop2 gives (a=val, b=addr).
			if addr < 0 || int(addr) >= len(v.mem) {
				err = fmt.Errorf("%w: store to cell %d (mem %d)", ErrFault, addr, len(v.mem))
			} else {
				v.mem[addr] = val
			}
		case opLoadI:
			var imm int64
			if imm, err = v.fetchImm(); err != nil {
				break
			}
			if imm < 0 || int(imm) >= len(v.mem) {
				err = fmt.Errorf("%w: load of cell %d", ErrFault, imm)
			} else {
				err = v.push(v.mem[imm])
			}
		case opStoreI:
			var imm, val int64
			if imm, err = v.fetchImm(); err != nil {
				break
			}
			if val, err = v.pop(); err != nil {
				break
			}
			if imm < 0 || int(imm) >= len(v.mem) {
				err = fmt.Errorf("%w: store to cell %d", ErrFault, imm)
			} else {
				v.mem[imm] = val
			}
		case opSys:
			err = v.syscall()
		default:
			err = fmt.Errorf("%w: bad opcode %d at pc %d", ErrFault, op, v.pc-1)
		}
		if err != nil {
			return 0, err
		}
	}
}

func (v *VM) syscall() error {
	num, err := v.fetchImm()
	if err != nil {
		return err
	}
	if v.host == nil {
		return fmt.Errorf("%w: no host bound for syscall %d", ErrFault, num)
	}
	switch num {
	case SysSend:
		if v.perms&PermSend == 0 {
			v.violate("permission", "send without PermSend")
			return fmt.Errorf("%w: send", ErrPermission)
		}
		value, err := v.pop()
		if err != nil {
			return err
		}
		tag, err := v.pop()
		if err != nil {
			return err
		}
		dstIdx, err := v.pop()
		if err != nil {
			return err
		}
		dst, err := v.str(dstIdx)
		if err != nil {
			return err
		}
		sendErr := v.host.Send(dst, uint32(tag), value)
		return v.push(boolToInt(sendErr == nil))
	case SysRecv:
		if v.perms&PermRecv == 0 {
			v.violate("permission", "recv without PermRecv")
			return fmt.Errorf("%w: recv", ErrPermission)
		}
		timeoutMs, err := v.pop()
		if err != nil {
			return err
		}
		tag, err := v.pop()
		if err != nil {
			return err
		}
		value, ok := v.host.Recv(uint32(tag), timeoutMs)
		if err := v.push(value); err != nil {
			return err
		}
		return v.push(boolToInt(ok))
	case SysLog:
		if v.perms&PermLog == 0 {
			v.violate("permission", "log without PermLog")
			return fmt.Errorf("%w: log", ErrPermission)
		}
		idx, err := v.pop()
		if err != nil {
			return err
		}
		s, err := v.str(idx)
		if err != nil {
			return err
		}
		v.host.Log(s)
		return nil
	case SysLogInt:
		if v.perms&PermLog == 0 {
			v.violate("permission", "log without PermLog")
			return fmt.Errorf("%w: log", ErrPermission)
		}
		x, err := v.pop()
		if err != nil {
			return err
		}
		v.host.Log(fmt.Sprintf("%d", x))
		return nil
	case SysArgInt:
		i, err := v.pop()
		if err != nil {
			return err
		}
		return v.push(v.host.ArgInt(int(i)))
	case SysSteps:
		return v.push(v.steps)
	case SysYield:
		return v.host.Poll()
	}
	return fmt.Errorf("%w: unknown syscall %d", ErrFault, num)
}

// Snapshot captures the VM's complete execution state.
func (v *VM) Snapshot() []byte {
	e := xdr.NewEncoder(len(v.mem)*8 + len(v.stack)*8 + 64)
	e.PutUint32(uint32(v.pc))
	e.PutInt64(v.steps)
	e.PutUint32(uint32(len(v.stack)))
	for _, x := range v.stack {
		e.PutInt64(x)
	}
	e.PutUint32(uint32(len(v.mem)))
	for _, x := range v.mem {
		e.PutInt64(x)
	}
	return e.Bytes()
}

// RestoreVM rebuilds a VM from a snapshot, binding a new host (the
// migration target's endpoint).
func RestoreVM(prog *Program, snapshot []byte, host Host, quota Quota, perms Permissions) (*VM, error) {
	v, err := NewVM(prog, host, quota, perms)
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(snapshot)
	pc, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	v.pc = int(pc)
	if v.steps, err = d.Int64(); err != nil {
		return nil, err
	}
	nStack, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if quota.MaxStack > 0 && int(nStack) > quota.MaxStack {
		return nil, fmt.Errorf("%w: snapshot stack %d", ErrQuota, nStack)
	}
	v.stack = make([]int64, nStack)
	for i := range v.stack {
		if v.stack[i], err = d.Int64(); err != nil {
			return nil, err
		}
	}
	nMem, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if quota.MaxMem > 0 && int(nMem) > quota.MaxMem {
		return nil, fmt.Errorf("%w: snapshot memory %d", ErrQuota, nMem)
	}
	v.mem = make([]int64, nMem)
	for i := range v.mem {
		if v.mem[i], err = d.Int64(); err != nil {
			return nil, err
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return v, nil
}
