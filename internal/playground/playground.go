package playground

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"snipe/internal/fileserv"
	"snipe/internal/lifn"
	"snipe/internal/naming"
	"snipe/internal/seckey"
	"snipe/internal/task"
)

// ProgramName is the registry name under which a playground installs
// itself on a daemon; specs with Program: ProgramName and a CodeURL
// run mobile code.
const ProgramName = "playground"

// Sentinel control errors used between the VM poll hook and the task
// wrapper.
var (
	errWantCheckpoint = errors.New("playground: checkpoint requested")
	errWantKill       = errors.New("playground: kill requested")
)

// GrantPolicy decides which rights a playground grants to code from a
// given verified signer.
type GrantPolicy func(signer string) Permissions

// Playground is the host-side runner for signed mobile code. It
// implements the §3.6 duties: download the code from a file server,
// verify authenticity and integrity, verify the code has the rights it
// needs, enforce quotas and access restrictions, log violations, and
// provide checkpoint/restart/migration hooks.
type Playground struct {
	cat   naming.Catalog
	trust *seckey.TrustStore
	grant GrantPolicy
	quota Quota

	mu  sync.Mutex
	log []string
}

// New builds a playground. grant defaults to denying everything from
// unknown signers and granting the image's requested rights to any
// signer the trust store accepts for code signing.
func New(cat naming.Catalog, trust *seckey.TrustStore, grant GrantPolicy, quota Quota) *Playground {
	if grant == nil {
		grant = func(string) Permissions { return PermAll }
	}
	if quota == (Quota{}) {
		quota = DefaultQuota
	}
	return &Playground{cat: cat, trust: trust, grant: grant, quota: quota}
}

// Log returns the playground's violation/audit log.
func (pg *Playground) Log() []string {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return append([]string(nil), pg.log...)
}

func (pg *Playground) logf(format string, args ...interface{}) {
	pg.mu.Lock()
	pg.log = append(pg.log, fmt.Sprintf(format, args...))
	pg.mu.Unlock()
}

// Register installs the playground's task function on a registry.
func (pg *Playground) Register(reg *task.Registry) {
	reg.Register(ProgramName, pg.Run)
}

// Run is the task function: it executes spec.CodeURL inside the
// sandbox. It cooperates with checkpoint requests by snapshotting the
// VM and returning task.ErrMigrated; the code itself is re-fetched
// from the file servers at the migration target (the paper's model:
// code and state live on file servers, §5.6).
func (pg *Playground) Run(ctx *task.Context) error {
	spec := ctx.Spec()
	if spec.CodeURL == "" {
		return fmt.Errorf("%w: spec has no CodeURL", ErrBadImage)
	}

	// 1. Download the code image from any replica.
	fc := fileserv.NewClient(pg.cat, ctx.Endpoint())
	raw, err := fc.FetchAny(spec.CodeURL, nil)
	if err != nil {
		return fmt.Errorf("playground: fetching %s: %w", spec.CodeURL, err)
	}

	// 2. Integrity: content hash published as RC metadata.
	if err := lifn.VerifyHash(pg.cat, naming.FileURN(spec.CodeURL), raw); err != nil {
		pg.logf("integrity violation for %s: %v", spec.CodeURL, err)
		return err
	}

	// 3. Authenticity: the image signature must verify under a signer
	// trusted for code signing.
	img, err := DecodeImage(raw)
	if err != nil {
		return err
	}
	signerKey, ok := pg.trust.TrustedKey(seckey.PurposeCodeSigning, img.Signer)
	if !ok {
		pg.logf("untrusted signer %s for %s", img.Signer, spec.CodeURL)
		return fmt.Errorf("%w: signer %s not trusted for code signing", seckey.ErrUntrusted, img.Signer)
	}
	if err := img.Verify(signerKey); err != nil {
		pg.logf("signature violation for %s: %v", spec.CodeURL, err)
		return err
	}

	// 4. Rights: the code's requested permissions must be granted.
	granted := pg.grant(img.Signer)
	if img.Perms&^granted != 0 {
		pg.logf("rights violation: %s requests %x, granted %x", spec.CodeURL, img.Perms, granted)
		return fmt.Errorf("%w: image requests rights %x beyond grant %x", ErrPermission, img.Perms, granted)
	}

	prog, err := ParseProgram(img.Program)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadImage, err)
	}

	// 5. Execute under quota, binding syscalls to the task's endpoint.
	host := &taskHost{ctx: ctx, pg: pg}
	var vm *VM
	if st := ctx.RestoredState(); st != nil {
		vm, err = RestoreVM(prog, st, host, pg.quota, img.Perms)
	} else {
		vm, err = NewVM(prog, host, pg.quota, img.Perms)
	}
	if err != nil {
		return err
	}

	exit, err := vm.Run()
	for _, v := range vm.Violations() {
		pg.logf("%s violation in %s: %s", v.Kind, spec.CodeURL, v.Msg)
	}
	switch {
	case errors.Is(err, errWantCheckpoint):
		ctx.SaveCheckpoint(vm.Snapshot())
		return task.ErrMigrated
	case errors.Is(err, errWantKill):
		return task.ErrKilled
	case err != nil:
		return err
	}
	if exit != 0 {
		return fmt.Errorf("playground: program exited with %d", exit)
	}
	return nil
}

// taskHost binds VM syscalls to the task context.
type taskHost struct {
	ctx *task.Context
	pg  *Playground
}

func (h *taskHost) Send(dst string, tag uint32, value int64) error {
	payload := make([]byte, 8)
	for i := 0; i < 8; i++ {
		payload[i] = byte(uint64(value) >> uint(56-8*i))
	}
	return h.ctx.Send(dst, tag, payload)
}

func (h *taskHost) Recv(tag uint32, timeoutMs int64) (int64, bool) {
	if timeoutMs <= 0 {
		timeoutMs = 1
	}
	m, err := h.ctx.RecvMatch("", tag, time.Duration(timeoutMs)*time.Millisecond)
	if err != nil || len(m.Payload) < 8 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(m.Payload[i])
	}
	return int64(v), true
}

func (h *taskHost) Log(msg string) {
	h.pg.logf("[%s] %s", h.ctx.URN(), msg)
}

func (h *taskHost) ArgInt(i int) int64 {
	args := h.ctx.Args()
	if i < 0 || i >= len(args) {
		return 0
	}
	n, err := strconv.ParseInt(args[i], 0, 64)
	if err != nil {
		return 0
	}
	return n
}

func (h *taskHost) Poll() error {
	select {
	case <-h.ctx.Done():
		return errWantKill
	case <-h.ctx.CheckpointRequested():
		return errWantCheckpoint
	default:
		if h.ctx.CheckPause() {
			return errWantKill
		}
		return nil
	}
}

// Publish stores a signed image on a file server and registers its
// content hash in RC metadata, making it launchable by CodeURL.
func Publish(cat naming.Catalog, fc *fileserv.Client, serverURN string, img *CodeImage) error {
	raw := img.Encode()
	if err := fc.Store(serverURN, img.Name, raw); err != nil {
		return err
	}
	return lifn.BindHash(cat, naming.FileURN(img.Name), raw)
}
