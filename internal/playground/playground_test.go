package playground

import (
	"errors"
	"strings"
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/fileserv"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/seckey"
	"snipe/internal/task"
)

type detRand struct{ state uint64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}

type pgWorld struct {
	t      *testing.T
	store  *rcds.Store
	cat    naming.Catalog
	fs     *fileserv.Server
	fc     *fileserv.Client
	trust  *seckey.TrustStore
	signer *seckey.Principal
	pg     *Playground
	reg    *task.Registry
}

func newPGWorld(t *testing.T) *pgWorld {
	t.Helper()
	store := rcds.NewStore("pg-test")
	cat := naming.StoreCatalog(store)
	fs, err := fileserv.NewServer("fs1", cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fs.Close)

	ep := comm.NewEndpoint("urn:publisher", comm.WithResolver(naming.NewResolver(cat)))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	naming.Register(cat, "urn:publisher", []comm.Route{route})
	t.Cleanup(ep.Close)

	signer, err := seckey.NewPrincipal("urn:snipe:user:dev", &detRand{state: 7})
	if err != nil {
		t.Fatal(err)
	}
	trust := seckey.NewTrustStore()
	trust.Trust(seckey.PurposeCodeSigning, signer.Name, signer.Public())

	pg := New(cat, trust, nil, Quota{MaxSteps: 1_000_000, MaxStack: 256, MaxMem: 4096})
	reg := task.NewRegistry()
	pg.Register(reg)

	return &pgWorld{t: t, store: store, cat: cat, fs: fs,
		fc: fileserv.NewClient(cat, ep), trust: trust, signer: signer, pg: pg, reg: reg}
}

func (w *pgWorld) publish(name, src string, perms Permissions) {
	w.t.Helper()
	img := SignImage(w.signer, name, MustAssemble(src), perms)
	if err := Publish(w.cat, w.fc, w.fs.URN(), img); err != nil {
		w.t.Fatal(err)
	}
}

func (w *pgWorld) daemon(host string) *daemon.Daemon {
	w.t.Helper()
	d := daemon.New(daemon.Config{HostName: host, Catalog: w.cat, Registry: w.reg})
	if err := d.Start(); err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(d.Close)
	return d
}

const helloSrc = `
.mem 4
.str greet "hello from mobile code"
push $greet
sys log
push 0
halt`

func TestImageSignAndVerify(t *testing.T) {
	w := newPGWorld(t)
	img := SignImage(w.signer, "code", MustAssemble(helloSrc), PermLog)
	if err := img.Verify(w.signer.Public()); err != nil {
		t.Fatal(err)
	}
	// Tampering breaks verification.
	img.Program[0] ^= 0xFF
	if err := img.Verify(w.signer.Public()); !errors.Is(err, ErrBadImage) {
		t.Fatalf("tampered image: %v", err)
	}
	// Encode/decode round trip.
	img2 := SignImage(w.signer, "code", MustAssemble(helloSrc), PermLog)
	got, err := DecodeImage(img2.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "code" || got.Perms != PermLog || got.Signer != w.signer.Name {
		t.Fatalf("decoded: %+v", got)
	}
	if err := got.Verify(w.signer.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeImage([]byte{1}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestMobileCodeRunsOnDaemon(t *testing.T) {
	w := newPGWorld(t)
	w.publish("hello.sc", helloSrc, PermLog)
	d := w.daemon("h1")
	urn, err := d.Spawn(task.Spec{Program: ProgramName, CodeURL: "hello.sc"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.WaitTask(urn, 10*time.Second)
	if err != nil || st != task.StateExited {
		t.Fatalf("mobile code: %v %v", st, err)
	}
	logs := w.pg.Log()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "hello from mobile code") {
			found = true
		}
	}
	if !found {
		t.Fatalf("log output missing: %v", logs)
	}
}

func TestTamperedCodeRejected(t *testing.T) {
	w := newPGWorld(t)
	w.publish("good.sc", helloSrc, PermLog)
	// Corrupt the stored bytes after the hash was registered.
	data, _ := w.fs.Get("good.sc")
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	w.fs.Put("good.sc", bad)

	d := w.daemon("h1")
	urn, err := d.Spawn(task.Spec{Program: ProgramName, CodeURL: "good.sc"})
	if err != nil {
		t.Fatal(err)
	}
	st, werr := d.WaitTask(urn, 10*time.Second)
	if st != task.StateFailed || werr == nil || !strings.Contains(werr.Error(), "hash mismatch") {
		t.Fatalf("tampered code: %v %v", st, werr)
	}
	foundViolation := false
	for _, l := range w.pg.Log() {
		if strings.Contains(l, "integrity violation") {
			foundViolation = true
		}
	}
	if !foundViolation {
		t.Fatalf("integrity violation not logged: %v", w.pg.Log())
	}
}

func TestUntrustedSignerRejected(t *testing.T) {
	w := newPGWorld(t)
	mallory, _ := seckey.NewPrincipal("urn:snipe:user:mallory", &detRand{state: 66})
	img := SignImage(mallory, "evil.sc", MustAssemble(helloSrc), PermLog)
	if err := Publish(w.cat, w.fc, w.fs.URN(), img); err != nil {
		t.Fatal(err)
	}
	d := w.daemon("h1")
	urn, _ := d.Spawn(task.Spec{Program: ProgramName, CodeURL: "evil.sc"})
	st, werr := d.WaitTask(urn, 10*time.Second)
	if st != task.StateFailed || !errors.Is(werr, seckey.ErrUntrusted) {
		t.Fatalf("untrusted signer: %v %v", st, werr)
	}
}

func TestRightsBeyondGrantRejected(t *testing.T) {
	w := newPGWorld(t)
	// Policy: this signer may only log.
	w.pg.grant = func(signer string) Permissions { return PermLog }
	w.publish("greedy.sc", helloSrc, PermLog|PermSend)
	d := w.daemon("h1")
	urn, _ := d.Spawn(task.Spec{Program: ProgramName, CodeURL: "greedy.sc"})
	st, werr := d.WaitTask(urn, 10*time.Second)
	if st != task.StateFailed || !errors.Is(werr, ErrPermission) {
		t.Fatalf("greedy code: %v %v", st, werr)
	}
}

func TestMobileCodeMessaging(t *testing.T) {
	w := newPGWorld(t)
	// Program: reads arg 0 (a value), sends value*2 to the URN in the
	// constant pool.
	src := `
.mem 4
.str dst "urn:collector"
push $dst
push 9
push 0
sys argint
push 2
mul
sys send
pop
push 0
halt`
	w.publish("worker.sc", src, PermSend)
	d := w.daemon("h1")

	// A collector endpoint to receive the result.
	ep := comm.NewEndpoint("urn:collector", comm.WithResolver(naming.NewResolver(w.cat)))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	naming.Register(w.cat, "urn:collector", []comm.Route{route})
	defer ep.Close()

	urn, err := d.Spawn(task.Spec{Program: ProgramName, CodeURL: "worker.sc", Args: []string{"21"}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := recvMatchT(ep, "", 9, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(m.Payload[i])
	}
	if int64(v) != 42 {
		t.Fatalf("mobile code sent %d", int64(v))
	}
	if st, _ := d.WaitTask(urn, 10*time.Second); st != task.StateExited {
		t.Fatalf("state: %v", st)
	}
}

func TestMobileCodeCheckpointMigration(t *testing.T) {
	w := newPGWorld(t)
	// A long counting loop with yields so checkpoint requests are seen.
	src := `
.mem 2
start:
loadi 0
push 2000000
ge
jnz done
loadi 0
push 1
add
storei 0
jmp start
done:
push 0
halt`
	w.publish("counter.sc", src, 0)
	w.pg.quota = Quota{MaxSteps: 1 << 40, MaxStack: 64, MaxMem: 64}
	d1 := w.daemon("h1")
	d2 := w.daemon("h2")

	urn, err := d1.Spawn(task.Spec{Program: ProgramName, CodeURL: "counter.sc"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	spec, err := d1.Checkpoint(urn, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Checkpoint == nil {
		t.Fatal("no VM snapshot captured")
	}
	d1.Release(urn)
	// Adopt on the second host: the code is re-fetched from the file
	// server, the VM state restored, and the loop runs to completion.
	if err := d2.Adopt(urn, spec); err != nil {
		t.Fatal(err)
	}
	st, werr := d2.WaitTask(urn, 30*time.Second)
	if st != task.StateExited || werr != nil {
		t.Fatalf("migrated mobile code: %v %v", st, werr)
	}
}

func TestMobileCodeKill(t *testing.T) {
	w := newPGWorld(t)
	w.publish("spin.sc", ".mem 2\nspin:\njmp spin", 0)
	// Raise the step quota so the kill, not the quota, ends it.
	w.pg.quota = Quota{MaxSteps: 1 << 40, MaxStack: 64, MaxMem: 64}
	d := w.daemon("h1")
	urn, err := d.Spawn(task.Spec{Program: ProgramName, CodeURL: "spin.sc"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := d.Signal(urn, task.SigKill); err != nil {
		t.Fatal(err)
	}
	st, _ := d.WaitTask(urn, 10*time.Second)
	if st != task.StateExited {
		t.Fatalf("killed mobile code: %v", st)
	}
}

func TestQuotaViolationLogged(t *testing.T) {
	w := newPGWorld(t)
	w.publish("hog.sc", ".mem 2\nspin:\njmp spin", 0)
	w.pg.quota = Quota{MaxSteps: 10_000, MaxStack: 64, MaxMem: 64}
	d := w.daemon("h1")
	urn, _ := d.Spawn(task.Spec{Program: ProgramName, CodeURL: "hog.sc"})
	st, werr := d.WaitTask(urn, 10*time.Second)
	if st != task.StateFailed || !errors.Is(werr, ErrQuota) {
		t.Fatalf("hog: %v %v", st, werr)
	}
	found := false
	for _, l := range w.pg.Log() {
		if strings.Contains(l, "quota violation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("quota violation not logged: %v", w.pg.Log())
	}
}

func TestSpecWithoutCodeURL(t *testing.T) {
	w := newPGWorld(t)
	d := w.daemon("h1")
	urn, err := d.Spawn(task.Spec{Program: ProgramName})
	if err != nil {
		t.Fatal(err)
	}
	st, werr := d.WaitTask(urn, 10*time.Second)
	if st != task.StateFailed || !errors.Is(werr, ErrBadImage) {
		t.Fatalf("no CodeURL: %v %v", st, werr)
	}
}
