package playground

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"snipe/internal/seckey"
	"snipe/internal/xdr"
)

// CodeImage is a signed unit of mobile code: the program, the rights
// it requests, and the provider's signature. The paper's metadata
// servers "contain signed descriptions of mobile code, allowing
// playgrounds to verify the codes authenticity and integrity and to
// identify the resources and access rights needed for that code to
// operate" (§3.1).
type CodeImage struct {
	Name      string
	Program   []byte // serialised Program
	Perms     Permissions
	Signer    string
	Signature []byte
}

// ErrBadImage indicates a malformed or unverifiable code image.
var ErrBadImage = errors.New("playground: bad code image")

func (img *CodeImage) signedBytes() []byte {
	e := xdr.NewEncoder(len(img.Program) + 64)
	e.PutString(img.Name)
	e.PutBytes(img.Program)
	e.PutUint32(uint32(img.Perms))
	e.PutString(img.Signer)
	return e.Bytes()
}

// SignImage builds a signed code image from a program.
func SignImage(signer *seckey.Principal, name string, prog *Program, perms Permissions) *CodeImage {
	img := &CodeImage{Name: name, Program: prog.Bytes(), Perms: perms, Signer: signer.Name}
	img.Signature = signer.Sign(img.signedBytes())
	return img
}

// Verify checks the image's signature under the signer's key.
func (img *CodeImage) Verify(signerKey ed25519.PublicKey) error {
	if !seckey.Verify(signerKey, img.signedBytes(), img.Signature) {
		return fmt.Errorf("%w: signature by %s does not verify", ErrBadImage, img.Signer)
	}
	return nil
}

// Encode serialises the image for storage on a file server.
func (img *CodeImage) Encode() []byte {
	e := xdr.NewEncoder(len(img.Program) + 128)
	e.PutRaw(img.signedBytes())
	e.PutBytes(img.Signature)
	return e.Bytes()
}

// Per-field wire-decode caps: names and signer IDs are short, a
// program is at most maxWireProgram, an ed25519 signature is 64 bytes.
const (
	maxWireImgName = 4096
	maxWireProgram = 4 << 20
	maxWireSig     = 256
)

// DecodeImage reads an image written by Encode.
func DecodeImage(b []byte) (*CodeImage, error) {
	d := xdr.NewDecoder(b)
	img := &CodeImage{}
	var err error
	if img.Name, err = d.StringMax(maxWireImgName); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if img.Program, err = d.BytesCopyMax(maxWireProgram); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	perms, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	img.Perms = Permissions(perms)
	if img.Signer, err = d.StringMax(maxWireImgName); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if img.Signature, err = d.BytesCopyMax(maxWireSig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return img, nil
}
