package playground

import (
	"errors"
	"testing"
	"testing/quick"
)

// nullHost satisfies Host with no-ops for pure-compute tests.
type nullHost struct {
	logs  []string
	args  []int64
	sent  []int64
	inbox []int64
}

func (h *nullHost) Send(dst string, tag uint32, value int64) error {
	h.sent = append(h.sent, value)
	return nil
}

func (h *nullHost) Recv(tag uint32, timeoutMs int64) (int64, bool) {
	if len(h.inbox) == 0 {
		return 0, false
	}
	v := h.inbox[0]
	h.inbox = h.inbox[1:]
	return v, true
}

func (h *nullHost) Log(msg string) { h.logs = append(h.logs, msg) }
func (h *nullHost) ArgInt(i int) int64 {
	if i < 0 || i >= len(h.args) {
		return 0
	}
	return h.args[i]
}
func (h *nullHost) Poll() error { return nil }

func run(t *testing.T, src string, host Host, quota Quota, perms Permissions) (int64, *VM, error) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm, err := NewVM(prog, host, quota, perms)
	if err != nil {
		return 0, nil, err
	}
	exit, err := vm.Run()
	return exit, vm, err
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"push 2\npush 3\nadd\nhalt", 5},
		{"push 10\npush 3\nsub\nhalt", 7},
		{"push 6\npush 7\nmul\nhalt", 42},
		{"push 17\npush 5\ndiv\nhalt", 3},
		{"push 17\npush 5\nmod\nhalt", 2},
		{"push 5\nneg\nhalt", -5},
		{"push 12\npush 10\nand\nhalt", 8},
		{"push 12\npush 10\nor\nhalt", 14},
		{"push 12\npush 10\nxor\nhalt", 6},
		{"push 1\npush 4\nshl\nhalt", 16},
		{"push -16\npush 2\nshr\nhalt", -4},
		{"push 3\npush 3\neq\nhalt", 1},
		{"push 3\npush 4\nne\nhalt", 1},
		{"push 3\npush 4\nlt\nhalt", 1},
		{"push 4\npush 4\nle\nhalt", 1},
		{"push 5\npush 4\ngt\nhalt", 1},
		{"push 4\npush 5\nge\nhalt", 0},
		{"push 0\nnot\nhalt", 1},
		{"push 9\nnot\nhalt", 0},
		{"halt", 0},
	}
	for i, c := range cases {
		exit, _, err := run(t, c.src, &nullHost{}, DefaultQuota, 0)
		if err != nil || exit != c.want {
			t.Errorf("case %d (%q): exit=%d err=%v, want %d", i, c.src, exit, err, c.want)
		}
	}
}

func TestStackOps(t *testing.T) {
	exit, _, err := run(t, "push 1\npush 2\nswap\npop\nhalt", &nullHost{}, DefaultQuota, 0)
	if err != nil || exit != 2 {
		t.Fatalf("swap/pop: %d %v", exit, err)
	}
	exit, _, err = run(t, "push 7\ndup\nadd\nhalt", &nullHost{}, DefaultQuota, 0)
	if err != nil || exit != 14 {
		t.Fatalf("dup: %d %v", exit, err)
	}
}

func TestMemory(t *testing.T) {
	src := `
.mem 16
push 99
storei 3
loadi 3
halt`
	exit, _, err := run(t, src, &nullHost{}, DefaultQuota, 0)
	if err != nil || exit != 99 {
		t.Fatalf("storei/loadi: %d %v", exit, err)
	}
	// Indirect load/store.
	src2 := `
.mem 8
push 55
push 2
store
push 2
load
halt`
	exit, _, err = run(t, src2, &nullHost{}, DefaultQuota, 0)
	if err != nil || exit != 55 {
		t.Fatalf("store/load: %d %v", exit, err)
	}
}

func TestControlFlowLoop(t *testing.T) {
	// Sum 1..10 = 55 using a loop.
	src := `
.mem 2
; mem[0] = i, mem[1] = sum
push 1
storei 0
loop:
loadi 0
push 10
gt
jnz done
loadi 1
loadi 0
add
storei 1
loadi 0
push 1
add
storei 0
jmp loop
done:
loadi 1
halt`
	exit, _, err := run(t, src, &nullHost{}, DefaultQuota, 0)
	if err != nil || exit != 55 {
		t.Fatalf("loop sum: %d %v", exit, err)
	}
}

func TestCallRet(t *testing.T) {
	// A function that doubles its argument (on the stack under the
	// return address handling: we keep it simple, arg in mem[0]).
	src := `
.mem 1
push 21
storei 0
call double
loadi 0
halt
double:
loadi 0
push 2
mul
storei 0
ret`
	exit, _, err := run(t, src, &nullHost{}, DefaultQuota, 0)
	if err != nil || exit != 42 {
		t.Fatalf("call/ret: %d %v", exit, err)
	}
}

func TestFaults(t *testing.T) {
	cases := []string{
		"pop\nhalt",                    // underflow
		"push 1\npush 0\ndiv\nhalt",    // div by zero
		"push 1\npush 0\nmod\nhalt",    // mod by zero
		"push 100\nload\nhalt",         // mem out of range (default 64)
		"push 1\npush -1\nstore\nhalt", // negative address
		"jmp 99999\nnop",               // pc out of range
		"dup\nhalt",                    // dup on empty
	}
	for i, src := range cases {
		_, _, err := run(t, src, &nullHost{}, DefaultQuota, 0)
		if !errors.Is(err, ErrFault) {
			t.Errorf("case %d (%q): want ErrFault, got %v", i, src, err)
		}
	}
}

func TestBadOpcode(t *testing.T) {
	prog := &Program{Code: []byte{200}, MemSize: 0}
	vm, err := NewVM(prog, &nullHost{}, DefaultQuota, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); !errors.Is(err, ErrFault) {
		t.Fatalf("bad opcode: %v", err)
	}
}

func TestStepQuota(t *testing.T) {
	src := ".mem 4\nspin:\njmp spin"
	_, vm, err := run(t, src, &nullHost{}, Quota{MaxSteps: 1000, MaxStack: 8, MaxMem: 8}, 0)
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("want ErrQuota, got %v", err)
	}
	if len(vm.Violations()) == 0 || vm.Violations()[0].Kind != "quota" {
		t.Fatalf("violations: %v", vm.Violations())
	}
}

func TestStackQuota(t *testing.T) {
	src := ".mem 4\ngrow:\npush 1\njmp grow"
	_, _, err := run(t, src, &nullHost{}, Quota{MaxSteps: 1e6, MaxStack: 16, MaxMem: 8}, 0)
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("want ErrQuota, got %v", err)
	}
}

func TestMemQuota(t *testing.T) {
	prog := MustAssemble(".mem 1000\nhalt")
	if _, err := NewVM(prog, &nullHost{}, Quota{MaxMem: 100}, 0); !errors.Is(err, ErrQuota) {
		t.Fatalf("want ErrQuota, got %v", err)
	}
}

func TestSyscallPermissions(t *testing.T) {
	sendSrc := `
.str dst "urn:x"
push $dst
push 1
push 42
sys send
halt`
	// Without PermSend: denied and logged.
	_, vm, err := run(t, sendSrc, &nullHost{}, DefaultQuota, PermLog)
	if !errors.Is(err, ErrPermission) {
		t.Fatalf("want ErrPermission, got %v", err)
	}
	found := false
	for _, v := range vm.Violations() {
		if v.Kind == "permission" {
			found = true
		}
	}
	if !found {
		t.Fatal("permission violation not logged")
	}
	// With PermSend: works.
	h := &nullHost{}
	exit, _, err := run(t, sendSrc, h, DefaultQuota, PermSend)
	if err != nil || exit != 1 {
		t.Fatalf("send: %d %v", exit, err)
	}
	if len(h.sent) != 1 || h.sent[0] != 42 {
		t.Fatalf("host sent: %v", h.sent)
	}
}

func TestSyscallRecvLogArgs(t *testing.T) {
	src := `
.str msg "starting"
push $msg
sys log
push 0
sys argint
push 5
push 100
sys recv
pop
add
sys logint
push 0
halt`
	h := &nullHost{inbox: []int64{30}, args: []int64{12}}
	exit, _, err := run(t, src, h, DefaultQuota, PermAll)
	if err != nil || exit != 0 {
		t.Fatalf("run: %d %v", exit, err)
	}
	if len(h.logs) != 2 || h.logs[0] != "starting" || h.logs[1] != "42" {
		t.Fatalf("logs: %v", h.logs)
	}
}

func TestSysStepsAndYield(t *testing.T) {
	src := `
sys yield
sys steps
halt`
	exit, _, err := run(t, src, &nullHost{}, DefaultQuota, 0)
	if err != nil || exit <= 0 {
		t.Fatalf("steps: %d %v", exit, err)
	}
}

func TestPollInterruption(t *testing.T) {
	h := &pollNHost{failAfter: 3}
	src := "spin:\nsys yield\njmp spin"
	prog := MustAssemble(src)
	vm, err := NewVM(prog, h, DefaultQuota, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
}

type pollNHost struct {
	nullHost
	calls     int
	failAfter int
}

func (h *pollNHost) Poll() error {
	h.calls++
	if h.calls > h.failAfter {
		return ErrInterrupted
	}
	return nil
}

func TestSnapshotRestoreMidLoop(t *testing.T) {
	// Run a counting loop with a tiny step quota, snapshot at the
	// quota, restore into a fresh VM with more budget, finish, and
	// check the result equals an uninterrupted run.
	src := `
.mem 2
start:
loadi 0
push 1000
ge
jnz done
loadi 0
push 1
add
storei 0
loadi 1
loadi 0
add
storei 1
jmp start
done:
loadi 1
halt`
	prog := MustAssemble(src)

	// Uninterrupted reference.
	ref, err := NewVM(prog, &nullHost{}, DefaultQuota, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: stop after ~2000 steps via quota.
	vm1, err := NewVM(prog, &nullHost{}, Quota{MaxSteps: 2000, MaxStack: 64, MaxMem: 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm1.Run(); !errors.Is(err, ErrQuota) {
		t.Fatalf("expected quota stop, got %v", err)
	}
	snap := vm1.Snapshot()

	vm2, err := RestoreVM(prog, snap, &nullHost{}, DefaultQuota, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vm2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored run = %d, want %d", got, want)
	}
	if vm2.Steps() <= vm1.Steps() {
		t.Fatal("restored VM did not keep the step counter")
	}
}

func TestRestoreRejectsOversizedState(t *testing.T) {
	prog := MustAssemble(".mem 64\nhalt")
	vm, _ := NewVM(prog, &nullHost{}, DefaultQuota, 0)
	snap := vm.Snapshot()
	if _, err := RestoreVM(prog, snap, &nullHost{}, Quota{MaxMem: 8}, 0); !errors.Is(err, ErrQuota) {
		t.Fatalf("want ErrQuota, got %v", err)
	}
	if _, err := RestoreVM(prog, []byte{1, 2}, &nullHost{}, DefaultQuota, 0); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus",
		"push",
		"add 1",
		"jmp nowhere\nhalt",
		".mem x",
		".str a",
		".str a unquoted",
		"push $missing",
		"dup:\ndup:\nhalt",
		"sys explode",
		"push zzz",
	}
	for i, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("case %d (%q): assembled without error", i, src)
		}
	}
}

func TestAssemblerCommentsAndHex(t *testing.T) {
	src := `
; leading comment
push 0x10  ; hex immediate
push 2
mul        ; trailing comment
halt`
	exit, _, err := run(t, src, &nullHost{}, DefaultQuota, 0)
	if err != nil || exit != 32 {
		t.Fatalf("hex/comments: %d %v", exit, err)
	}
}

func TestProgramSerializationRoundTrip(t *testing.T) {
	prog := MustAssemble(".mem 7\n.str s \"x\"\npush $s\nsys log\nhalt")
	got, err := ParseProgram(prog.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.MemSize != 7 || len(got.Consts) != 1 || got.Consts[0] != "x" ||
		len(got.Code) != len(prog.Code) {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := ParseProgram([]byte{1}); err == nil {
		t.Fatal("truncated program accepted")
	}
}

// Property: the VM never panics on arbitrary bytecode; it either halts
// or returns an error within the step quota.
func TestQuickVMNeverPanics(t *testing.T) {
	f := func(code []byte, memSize uint8) bool {
		prog := &Program{Code: code, MemSize: int(memSize), Consts: []string{"a"}}
		vm, err := NewVM(prog, &nullHost{}, Quota{MaxSteps: 5000, MaxStack: 64, MaxMem: 256}, PermAll)
		if err != nil {
			return true
		}
		vm.Run()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore at arbitrary interruption points is
// transparent for the loop-sum program.
func TestQuickSnapshotTransparency(t *testing.T) {
	src := `
.mem 2
start:
loadi 0
push 300
ge
jnz done
loadi 0
push 1
add
storei 0
loadi 1
loadi 0
add
storei 1
jmp start
done:
loadi 1
halt`
	prog := MustAssemble(src)
	ref, _ := NewVM(prog, &nullHost{}, DefaultQuota, 0)
	want, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := func(stopAt uint16) bool {
		steps := int64(stopAt)%3000 + 1
		vm1, _ := NewVM(prog, &nullHost{}, Quota{MaxSteps: steps, MaxStack: 64, MaxMem: 64}, 0)
		exit, err := vm1.Run()
		if err == nil {
			return exit == want // finished before the quota
		}
		if !errors.Is(err, ErrQuota) {
			return false
		}
		vm2, err := RestoreVM(prog, vm1.Snapshot(), &nullHost{}, DefaultQuota, 0)
		if err != nil {
			return false
		}
		got, err := vm2.Run()
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVMLoop(b *testing.B) {
	src := `
.mem 2
start:
loadi 0
push 10000
ge
jnz done
loadi 0
push 1
add
storei 0
jmp start
done:
halt`
	prog := MustAssemble(src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vm, err := NewVM(prog, nil, Quota{MaxSteps: 1e9, MaxStack: 64, MaxMem: 64}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := vm.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
