//go:build go1.18

package playground

import (
	"bytes"
	"testing"
)

func FuzzDecodeProgram(f *testing.F) {
	for _, p := range []*Program{
		{Consts: []string{"hello"}, Code: []byte{opPush, 0, 0, 0, 0, 0, 0, 0, 42, opHalt}, MemSize: 16},
		{Consts: nil, Code: nil, MemSize: 0},
	} {
		f.Add(p.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // hostile const-pool count
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := ParseProgram(b)
		if err != nil {
			return
		}
		again, err := ParseProgram(p.Bytes())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again.Consts) != len(p.Consts) || !bytes.Equal(again.Code, p.Code) || again.MemSize != p.MemSize {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", p, again)
		}
	})
}
