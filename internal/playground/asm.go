package playground

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates SnipeScript assembly into a Program. The syntax:
//
//	; comment
//	.mem 128            ; memory cells (default 64)
//	.str hello "hi"     ; string constant; push with $hello
//	loop:               ; label
//	    push 1
//	    push $hello     ; pushes the constant's pool index
//	    sys log         ; syscalls by name: send recv log logint argint steps yield
//	    jnz loop        ; jumps take label operands
//	    halt
//
// Operand-carrying instructions: push, jmp, jz, jnz, call, loadi,
// storei, sys. Everything else is zero-operand.
func Assemble(src string) (*Program, error) {
	type pending struct {
		pos   int // offset of the 8-byte immediate to patch
		label string
		line  int
	}
	p := &Program{MemSize: 64}
	strIdx := map[string]int64{}
	labels := map[string]int{}
	var patches []pending
	var code []byte

	emitOp := func(op uint8) { code = append(code, op) }
	emitImm := func(x int64) {
		code = append(code,
			byte(uint64(x)>>56), byte(uint64(x)>>48), byte(uint64(x)>>40), byte(uint64(x)>>32),
			byte(uint64(x)>>24), byte(uint64(x)>>16), byte(uint64(x)>>8), byte(uint64(x)))
	}

	ops0 := map[string]uint8{
		"halt": opHalt, "nop": opNop, "pop": opPop, "dup": opDup, "swap": opSwap,
		"add": opAdd, "sub": opSub, "mul": opMul, "div": opDiv, "mod": opMod,
		"neg": opNeg, "and": opAnd, "or": opOr, "xor": opXor, "shl": opShl, "shr": opShr,
		"eq": opEq, "ne": opNe, "lt": opLt, "le": opLe, "gt": opGt, "ge": opGe,
		"not": opNot, "ret": opRet, "load": opLoad, "store": opStore,
	}
	ops1 := map[string]uint8{
		"push": opPush, "jmp": opJmp, "jz": opJz, "jnz": opJnz, "call": opCall,
		"loadi": opLoadI, "storei": opStoreI, "sys": opSys,
	}
	syscalls := map[string]int64{
		"send": SysSend, "recv": SysRecv, "log": SysLog, "logint": SysLogInt,
		"argint": SysArgInt, "steps": SysSteps, "yield": SysYield,
	}

	resolveOperand := func(op string, lineNo int, opcode uint8) (int64, bool, error) {
		// Returns (value, isLabelPatch, err).
		if strings.HasPrefix(op, "$") {
			idx, ok := strIdx[op[1:]]
			if !ok {
				return 0, false, fmt.Errorf("playground: line %d: unknown string constant %q", lineNo, op[1:])
			}
			return idx, false, nil
		}
		if n, err := strconv.ParseInt(op, 0, 64); err == nil {
			return n, false, nil
		}
		switch opcode {
		case opJmp, opJz, opJnz, opCall:
			return 0, true, nil // label, patched later
		case opSys:
			if n, ok := syscalls[op]; ok {
				return n, false, nil
			}
			return 0, false, fmt.Errorf("playground: line %d: unknown syscall %q", lineNo, op)
		}
		return 0, false, fmt.Errorf("playground: line %d: bad operand %q", lineNo, op)
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".mem"):
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("playground: line %d: .mem needs one operand", lineNo+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("playground: line %d: bad .mem size %q", lineNo+1, fields[1])
			}
			p.MemSize = n
			continue
		case strings.HasPrefix(line, ".str"):
			rest := strings.TrimSpace(strings.TrimPrefix(line, ".str"))
			sp := strings.IndexAny(rest, " \t")
			if sp < 0 {
				return nil, fmt.Errorf("playground: line %d: .str needs name and value", lineNo+1)
			}
			name := rest[:sp]
			val := strings.TrimSpace(rest[sp+1:])
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, fmt.Errorf("playground: line %d: .str value must be quoted: %v", lineNo+1, err)
			}
			strIdx[name] = int64(len(p.Consts))
			p.Consts = append(p.Consts, unq)
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("playground: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(code)
			continue
		}
		fields := strings.Fields(line)
		mnem := strings.ToLower(fields[0])
		if op, ok := ops0[mnem]; ok {
			if len(fields) != 1 {
				return nil, fmt.Errorf("playground: line %d: %s takes no operand", lineNo+1, mnem)
			}
			emitOp(op)
			continue
		}
		op, ok := ops1[mnem]
		if !ok {
			return nil, fmt.Errorf("playground: line %d: unknown instruction %q", lineNo+1, mnem)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("playground: line %d: %s takes one operand", lineNo+1, mnem)
		}
		val, isLabel, err := resolveOperand(fields[1], lineNo+1, op)
		if err != nil {
			return nil, err
		}
		emitOp(op)
		if isLabel {
			patches = append(patches, pending{pos: len(code), label: fields[1], line: lineNo + 1})
		}
		emitImm(val)
	}

	for _, pt := range patches {
		target, ok := labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("playground: line %d: undefined label %q", pt.line, pt.label)
		}
		x := int64(target)
		for i := 0; i < 8; i++ {
			code[pt.pos+i] = byte(uint64(x) >> uint(56-8*i))
		}
	}
	p.Code = code
	return p, nil
}

// MustAssemble is Assemble that panics on error, for tests and
// examples with literal programs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}
