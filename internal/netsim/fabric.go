package netsim

import (
	"fmt"
	"net"
	"sync"
)

// Fabric metrics ride the package registry like the link shapers do.
var mPartitions = metrics.Counter("partitions_injected")

// Fabric is a registry of named endpoints and the links between them,
// adding network partition injection on top of the per-link loss/delay
// shaping: Partition(a, b) severs every link between two named nodes
// (both directions, in-flight data lost) and keeps severing links
// created while the partition holds; Heal restores them. Isolate cuts
// one node off from everyone.
//
// The fabric does not create links itself — callers build pipes as
// usual and register them under node names — so existing topologies
// opt in link by link.
type Fabric struct {
	mu         sync.Mutex
	links      map[pairKey][]*Link
	partitions map[pairKey]bool
	isolated   map[string]bool
}

// pairKey names an unordered node pair.
type pairKey struct{ a, b string }

func orderedPair(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		links:      make(map[pairKey][]*Link),
		partitions: make(map[pairKey]bool),
		isolated:   make(map[string]bool),
	}
}

// AddLink registers an existing link as connecting nodes a and b. If
// the pair is already partitioned (or either node isolated), the link
// comes up down.
func (f *Fabric) AddLink(a, b string, l *Link) {
	key := orderedPair(a, b)
	f.mu.Lock()
	f.links[key] = append(f.links[key], l)
	down := f.severedLocked(key)
	f.mu.Unlock()
	if down {
		l.SetDown(true)
	}
}

// severedLocked reports whether the pair is cut by a partition or an
// isolation. Caller holds f.mu.
func (f *Fabric) severedLocked(key pairKey) bool {
	return f.partitions[key] || f.isolated[key.a] || f.isolated[key.b]
}

// Partition severs all links between a and b: sends fail with
// ErrLinkDown and in-flight data is lost, exactly as a cut cable or a
// misconfigured router would. Links registered later between the pair
// start down until Heal.
func (f *Fabric) Partition(a, b string) {
	key := orderedPair(a, b)
	f.mu.Lock()
	already := f.partitions[key]
	f.partitions[key] = true
	links := append([]*Link(nil), f.links[key]...)
	f.mu.Unlock()
	if !already {
		mPartitions.Inc()
	}
	for _, l := range links {
		l.SetDown(true)
	}
}

// Heal removes the a–b partition, restoring any links not also cut by
// an isolation.
func (f *Fabric) Heal(a, b string) {
	key := orderedPair(a, b)
	f.mu.Lock()
	delete(f.partitions, key)
	var restore []*Link
	if !f.severedLocked(key) {
		restore = append(restore, f.links[key]...)
	}
	f.mu.Unlock()
	for _, l := range restore {
		l.SetDown(false)
	}
}

// Isolate cuts node a off from every peer, current and future — the
// whole-host partition used for failure-detection experiments.
func (f *Fabric) Isolate(a string) {
	f.mu.Lock()
	already := f.isolated[a]
	f.isolated[a] = true
	var cut []*Link
	for key, links := range f.links {
		if key.a == a || key.b == a {
			cut = append(cut, links...)
		}
	}
	f.mu.Unlock()
	if !already {
		mPartitions.Inc()
	}
	for _, l := range cut {
		l.SetDown(true)
	}
}

// Rejoin reverses Isolate, restoring links whose pairs are not
// otherwise severed.
func (f *Fabric) Rejoin(a string) {
	f.mu.Lock()
	delete(f.isolated, a)
	var restore []*Link
	for key, links := range f.links {
		if (key.a == a || key.b == a) && !f.severedLocked(key) {
			restore = append(restore, links...)
		}
	}
	f.mu.Unlock()
	for _, l := range restore {
		l.SetDown(false)
	}
}

// Partitioned reports whether traffic between a and b is currently
// severed (by Partition or Isolate).
func (f *Fabric) Partitioned(a, b string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.severedLocked(orderedPair(a, b))
}

// Gate returns a reachability gate for the a–b pair: nil while
// connected, ErrLinkDown while severed. It is the hook for modelling
// partitions on paths that are not netsim pipes — naming.GatedCatalog
// wraps RC metadata access behind one, so a "partitioned" node's
// heartbeats stop reaching the catalog without any real link in
// between.
func (f *Fabric) Gate(a, b string) func() error {
	return func() error {
		if f.Partitioned(a, b) {
			return fmt.Errorf("%w: %s–%s partitioned", ErrLinkDown, a, b)
		}
		return nil
	}
}

// PairGate returns a reachability gate over arbitrary node pairs: nil
// while a pair is connected, ErrLinkDown while severed. It is Gate
// generalised to callers that pick the pair per call — gossip agents
// hand it to their Gate hook so one fabric partitions the whole
// cluster's gossip traffic.
func (f *Fabric) PairGate() func(a, b string) error {
	return func(a, b string) error {
		if f.Partitioned(a, b) {
			return fmt.Errorf("%w: %s–%s partitioned", ErrLinkDown, a, b)
		}
		return nil
	}
}

// StreamPipe builds a shaped stream link between named nodes and
// registers it, returning the two conn ends (a's side first).
func (f *Fabric) StreamPipe(a, b string, p Profile, seed uint64) (net.Conn, net.Conn, *Link) {
	ca, cb, link := StreamPipe(p, seed)
	f.AddLink(a, b, link)
	return ca, cb, link
}

// PacketPipe builds a shaped packet link between named nodes and
// registers it, returning the two packet ends (a's side first).
func (f *Fabric) PacketPipe(a, b string, p Profile, seed uint64) (*PacketEnd, *PacketEnd, *Link) {
	ea, eb, link := PacketPipe(p, seed)
	f.AddLink(a, b, link)
	return ea, eb, link
}
