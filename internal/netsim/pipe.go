package netsim

import (
	"net"
	"sync"
	"time"
)

// simAddr is a trivial net.Addr for simulated endpoints.
type simAddr string

func (a simAddr) Network() string { return "netsim" }
func (a simAddr) String() string  { return string(a) }

// Link is a full-duplex simulated link between two endpoints. Both
// stream and packet views share the same shaping machinery; SetDown
// models a link failure for the paper's route-failover behaviour ("the
// ability to switch routes/interfaces as links failed", §6).
type Link struct {
	a2b, b2a *shapedQueue
	profile  Profile
}

// StreamPipe creates a shaped, full-duplex byte-stream link with the
// given profile and returns its two net.Conn endpoints. seed controls
// loss determinism (streams do not lose data, but the seed is shared
// with any packet view of the link).
func StreamPipe(p Profile, seed uint64) (net.Conn, net.Conn, *Link) {
	l := &Link{
		a2b:     newShapedQueue(p, NewRNG(seed), false),
		b2a:     newShapedQueue(p, NewRNG(seed+1), false),
		profile: p,
	}
	a := &streamConn{link: l, tx: l.a2b, rx: l.b2a, local: "netsim-a", remote: "netsim-b"}
	b := &streamConn{link: l, tx: l.b2a, rx: l.a2b, local: "netsim-b", remote: "netsim-a"}
	return a, b, l
}

// PacketPipe creates a shaped, lossy, message-boundary-preserving link
// (a simulated UDP path) and returns its two endpoints.
func PacketPipe(p Profile, seed uint64) (*PacketEnd, *PacketEnd, *Link) {
	l := &Link{
		a2b:     newShapedQueue(p, NewRNG(seed), true),
		b2a:     newShapedQueue(p, NewRNG(seed+1), true),
		profile: p,
	}
	a := &PacketEnd{link: l, tx: l.a2b, rx: l.b2a}
	b := &PacketEnd{link: l, tx: l.b2a, rx: l.a2b}
	return a, b, l
}

// Profile returns the link's medium profile.
func (l *Link) Profile() Profile { return l.profile }

// SetDown takes the link down (true) or restores it (false). While
// down, sends fail with ErrLinkDown and in-flight data is lost.
func (l *Link) SetDown(down bool) {
	l.a2b.setDown(down)
	l.b2a.setDown(down)
}

// Close shuts both directions.
func (l *Link) Close() {
	l.a2b.close()
	l.b2a.close()
}

// DroppedFrames reports frames lost to injected loss, both directions.
func (l *Link) DroppedFrames() int {
	return l.a2b.droppedFrames() + l.b2a.droppedFrames()
}

// streamConn is one net.Conn endpoint of a stream link.
type streamConn struct {
	link          *Link
	tx, rx        *shapedQueue
	local, remote string

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
	closeOnce     sync.Once
}

var _ net.Conn = (*streamConn)(nil)

func (c *streamConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dl := c.readDeadline
	c.mu.Unlock()
	n, err := c.rx.recvStream(p, dl)
	if err == ErrTimeout {
		return n, &net.OpError{Op: "read", Net: "netsim", Err: err}
	}
	return n, err
}

func (c *streamConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dl := c.writeDeadline
	c.mu.Unlock()
	// Large writes are chunked at the MTU so that shaping sees frames.
	mtu := c.link.profile.MTU
	if mtu <= 0 {
		mtu = 64 << 10
	}
	sent := 0
	for sent < len(p) {
		end := sent + mtu
		if end > len(p) {
			end = len(p)
		}
		if err := c.tx.send(p[sent:end], dl); err != nil {
			if err == ErrTimeout {
				err = &net.OpError{Op: "write", Net: "netsim", Err: err}
			}
			return sent, err
		}
		sent = end
	}
	return sent, nil
}

func (c *streamConn) Close() error {
	c.closeOnce.Do(func() {
		c.tx.close()
		c.rx.close()
	})
	return nil
}

func (c *streamConn) LocalAddr() net.Addr  { return simAddr(c.local) }
func (c *streamConn) RemoteAddr() net.Addr { return simAddr(c.remote) }

func (c *streamConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return nil
}

func (c *streamConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return nil
}

func (c *streamConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return nil
}

// PacketEnd is one endpoint of a packet link: unreliable, unordered
// only under loss, message boundaries preserved — the substrate the
// selective-resend UDP protocol runs over.
type PacketEnd struct {
	link   *Link
	tx, rx *shapedQueue

	mu           sync.Mutex
	readDeadline time.Time
}

// Send transmits one datagram. Datagrams larger than the MTU are sent
// whole (IP fragmentation is abstracted away) but pay the serialization
// cost of their fragments. Loss applies per datagram.
func (e *PacketEnd) Send(p []byte) error {
	return e.tx.send(p, time.Time{})
}

// Recv returns the next delivered datagram, honouring the read
// deadline.
func (e *PacketEnd) Recv() ([]byte, error) {
	e.mu.Lock()
	dl := e.readDeadline
	e.mu.Unlock()
	return e.rx.recvPacket(dl)
}

// SetReadDeadline sets the deadline for Recv. A zero time blocks
// indefinitely.
func (e *PacketEnd) SetReadDeadline(t time.Time) {
	e.mu.Lock()
	e.readDeadline = t
	e.mu.Unlock()
}

// Close shuts down this endpoint's transmit direction and wakes any
// blocked receiver on the other side.
func (e *PacketEnd) Close() error {
	e.tx.close()
	e.rx.close()
	return nil
}

// MTU reports the link MTU.
func (e *PacketEnd) MTU() int { return e.link.profile.MTU }
