package netsim

import (
	"errors"
	"io"
	"testing"
	"time"
)

func TestFabricPartitionHeal(t *testing.T) {
	f := NewFabric()
	a, b, link := f.StreamPipe("n1", "n2", Loopback, 11)
	defer link.Close()

	// Connected: bytes flow.
	go func() { io.ReadFull(b, make([]byte, 1)) }()
	if _, err := a.Write([]byte("x")); err != nil {
		t.Fatalf("before partition: %v", err)
	}

	f.Partition("n1", "n2")
	if !f.Partitioned("n1", "n2") || !f.Partitioned("n2", "n1") {
		t.Fatal("partition not symmetric")
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("during partition: %v", err)
	}
	// Links registered while the pair is severed come up down.
	c, _, late := f.StreamPipe("n2", "n1", Loopback, 12)
	defer late.Close()
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("late link not severed: %v", err)
	}

	f.Heal("n1", "n2")
	if f.Partitioned("n1", "n2") {
		t.Fatal("still partitioned after heal")
	}
	go func() { io.ReadFull(b, make([]byte, 1)) }()
	if _, err := a.Write([]byte("x")); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestFabricIsolate(t *testing.T) {
	f := NewFabric()
	a12, _, l12 := f.StreamPipe("n1", "n2", Loopback, 21)
	defer l12.Close()
	a13, _, l13 := f.StreamPipe("n1", "n3", Loopback, 22)
	defer l13.Close()
	a23, b23, l23 := f.StreamPipe("n2", "n3", Loopback, 23)
	defer l23.Close()

	f.Isolate("n1")
	if _, err := a12.Write([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("n1-n2 survived isolation: %v", err)
	}
	if _, err := a13.Write([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("n1-n3 survived isolation: %v", err)
	}
	// The unrelated pair is untouched.
	go func() { io.ReadFull(b23, make([]byte, 1)) }()
	if _, err := a23.Write([]byte("x")); err != nil {
		t.Fatalf("n2-n3 collateral damage: %v", err)
	}

	f.Rejoin("n1")
	if f.Partitioned("n1", "n2") || f.Partitioned("n1", "n3") {
		t.Fatal("still severed after rejoin")
	}
}

func TestFabricIsolationOutlivesHeal(t *testing.T) {
	// A pair cut by both a partition and an isolation stays down until
	// BOTH are lifted.
	f := NewFabric()
	a, _, link := f.StreamPipe("n1", "n2", Loopback, 31)
	defer link.Close()
	f.Partition("n1", "n2")
	f.Isolate("n1")
	f.Heal("n1", "n2")
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("heal pierced the isolation: %v", err)
	}
	f.Rejoin("n1")
	if f.Partitioned("n1", "n2") {
		t.Fatal("severed after both lifted")
	}
}

func TestFabricGate(t *testing.T) {
	f := NewFabric()
	gate := f.Gate("host", "rc")
	if err := gate(); err != nil {
		t.Fatalf("gate closed while connected: %v", err)
	}
	f.Partition("host", "rc")
	if err := gate(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("gate open during partition: %v", err)
	}
	f.Heal("host", "rc")
	if err := gate(); err != nil {
		t.Fatalf("gate stuck after heal: %v", err)
	}
	// Isolation closes every gate touching the node.
	f.Isolate("host")
	if err := gate(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("gate open during isolation: %v", err)
	}
}

func TestFabricPacketPipe(t *testing.T) {
	f := NewFabric()
	ea, eb, link := f.PacketPipe("n1", "n2", Loopback, 41)
	defer link.Close()
	if err := ea.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	eb.SetReadDeadline(time.Now().Add(time.Second))
	if pkt, err := eb.Recv(); err != nil || string(pkt) != "ping" {
		t.Fatalf("recv: %q %v", pkt, err)
	}
	f.Partition("n1", "n2")
	if err := ea.Send([]byte("ping")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("packet send during partition: %v", err)
	}
}
