package netsim

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestProfileTransmitTime(t *testing.T) {
	// 100 Mbit = 12.5 MB/s: 12500 bytes should take ~1ms plus overhead.
	d := Ethernet100.TransmitTime(12500)
	if d < time.Millisecond || d > 1100*time.Microsecond {
		t.Fatalf("TransmitTime(12500) on 100Mb = %v", d)
	}
	if Ethernet10.TransmitTime(1000) <= Ethernet100.TransmitTime(1000) {
		t.Fatal("10Mb should be slower than 100Mb")
	}
}

func TestProfileModifiers(t *testing.T) {
	p := Ethernet100.WithLoss(0.5)
	if p.Loss != 0.5 || Ethernet100.Loss != 0 {
		t.Fatal("WithLoss must copy")
	}
	q := WAN.WithLatency(time.Second)
	if q.Latency != time.Second || WAN.Latency == time.Second {
		t.Fatal("WithLatency must copy")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	// Float64 in [0,1).
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestStreamPipeRoundTrip(t *testing.T) {
	a, b, link := StreamPipe(Loopback, 1)
	defer link.Close()
	msg := []byte("hello across the simulated wire")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
}

func TestStreamPipeBidirectional(t *testing.T) {
	a, b, link := StreamPipe(Ethernet100, 2)
	defer link.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Write([]byte("ping"))
		buf := make([]byte, 4)
		io.ReadFull(a, buf)
		if string(buf) != "pong" {
			t.Errorf("a got %q", buf)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, 4)
		io.ReadFull(b, buf)
		if string(buf) != "ping" {
			t.Errorf("b got %q", buf)
		}
		b.Write([]byte("pong"))
	}()
	wg.Wait()
}

func TestStreamPipeLargeTransferIntegrity(t *testing.T) {
	a, b, link := StreamPipe(Loopback, 3)
	defer link.Close()
	rng := NewRNG(99)
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	go func() {
		a.Write(data)
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large transfer corrupted")
	}
}

func TestStreamPipeRateShaping(t *testing.T) {
	// 1 Mbit/s link: 62500 bytes should take ~0.5s to arrive.
	slow := Profile{Name: "slow", BitsPerSec: 1e6, Latency: 0, MTU: 1500}
	a, b, link := StreamPipe(slow, 4)
	defer link.Close()
	const n = 62500
	start := time.Now()
	go func() {
		a.Write(make([]byte, n))
	}()
	buf := make([]byte, n)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 400*time.Millisecond {
		t.Fatalf("transfer too fast for 1Mb/s link: %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("transfer far too slow: %v", elapsed)
	}
}

func TestStreamPipeLatency(t *testing.T) {
	p := Profile{Name: "lat", BitsPerSec: 1e9, Latency: 50 * time.Millisecond, MTU: 1500}
	a, b, link := StreamPipe(p, 5)
	defer link.Close()
	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	io.ReadFull(b, buf)
	if e := time.Since(start); e < 45*time.Millisecond {
		t.Fatalf("latency not applied: %v", e)
	}
}

func TestStreamPipeReadDeadline(t *testing.T) {
	a, b, link := StreamPipe(Loopback, 6)
	defer link.Close()
	_ = a
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	var opErr interface{ Timeout() bool }
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if ne, ok := err.(interface{ Unwrap() error }); ok {
		if !errors.Is(ne.Unwrap(), ErrTimeout) {
			t.Fatalf("want ErrTimeout, got %v", err)
		}
	}
	_ = opErr
	// Clearing the deadline allows reads again.
	b.SetReadDeadline(time.Time{})
	go a.Write([]byte("y"))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("after clearing deadline: %v", err)
	}
}

func TestStreamPipeCloseUnblocksReader(t *testing.T) {
	a, b, link := StreamPipe(Loopback, 7)
	defer link.Close()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestLinkDown(t *testing.T) {
	a, b, link := StreamPipe(Loopback, 8)
	defer link.Close()
	_ = b
	link.SetDown(true)
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("want ErrLinkDown, got %v", err)
	}
	link.SetDown(false)
	go func() {
		buf := make([]byte, 1)
		io.ReadFull(b, buf)
	}()
	if _, err := a.Write([]byte("x")); err != nil {
		t.Fatalf("after restore: %v", err)
	}
}

func TestPacketPipeDelivery(t *testing.T) {
	a, b, link := PacketPipe(Loopback, 9)
	defer link.Close()
	if err := a.Send([]byte("dgram-1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("dgram-2")); err != nil {
		t.Fatal(err)
	}
	p1, err := b.Recv()
	if err != nil || string(p1) != "dgram-1" {
		t.Fatalf("recv1: %q %v", p1, err)
	}
	p2, err := b.Recv()
	if err != nil || string(p2) != "dgram-2" {
		t.Fatalf("recv2: %q %v", p2, err)
	}
}

func TestPacketPipeBoundariesPreserved(t *testing.T) {
	a, b, link := PacketPipe(Ethernet100, 10)
	defer link.Close()
	sizes := []int{1, 100, 1500, 9000}
	go func() {
		for _, n := range sizes {
			a.Send(make([]byte, n))
		}
	}()
	for _, n := range sizes {
		p, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != n {
			t.Fatalf("boundary lost: want %d bytes, got %d", n, len(p))
		}
	}
}

func TestPacketPipeLossRate(t *testing.T) {
	p := Loopback.WithLoss(0.3)
	a, b, link := PacketPipe(p, 11)
	defer link.Close()
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := b.Recv(); err != nil {
			break
		}
		received++
		if received+link.DroppedFrames() == total {
			break
		}
	}
	lossRate := 1 - float64(received)/total
	if lossRate < 0.2 || lossRate > 0.4 {
		t.Fatalf("loss rate %.3f, want ≈0.3", lossRate)
	}
}

func TestPacketPipeRecvDeadline(t *testing.T) {
	_, b, link := PacketPipe(Loopback, 12)
	defer link.Close()
	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := b.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestPacketPipeDeterministicLoss(t *testing.T) {
	runOnce := func() []bool {
		a, b, link := PacketPipe(Loopback.WithLoss(0.5), 42)
		defer link.Close()
		const n = 200
		for i := 0; i < n; i++ {
			a.Send([]byte{byte(i)})
		}
		got := make([]bool, 256)
		b.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		for {
			p, err := b.Recv()
			if err != nil {
				break
			}
			got[p[0]] = true
		}
		return got
	}
	r1, r2 := runOnce(), runOnce()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("loss pattern not deterministic for identical seeds")
		}
	}
}

// Property: any sequence of writes is received as the identical byte
// stream, for any profile.
func TestQuickStreamIntegrity(t *testing.T) {
	profiles := []Profile{Loopback, Ethernet100, ATM155}
	f := func(chunks [][]byte, profileIdx uint8) bool {
		p := profiles[int(profileIdx)%len(profiles)]
		a, b, link := StreamPipe(p, uint64(profileIdx))
		defer link.Close()
		var want []byte
		for _, c := range chunks {
			if len(c) > 4096 {
				c = c[:4096]
			}
			want = append(want, c...)
		}
		go func() {
			for _, c := range chunks {
				if len(c) > 4096 {
					c = c[:4096]
				}
				if len(c) > 0 {
					a.Write(c)
				}
			}
			a.Close()
		}()
		got, err := io.ReadAll(b)
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStreamPipeThroughput64K(b *testing.B) {
	a, bb, link := StreamPipe(Loopback, 1)
	defer link.Close()
	buf := make([]byte, 64<<10)
	//lint:allow goroutinelife drain loop exits when Read errors after the deferred link.Close
	go func() {
		sink := make([]byte, 64<<10)
		for {
			if _, err := bb.Read(sink); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	link.Close()
}
