package netsim

import (
	"fmt"
	"sync"
)

// Hub metrics ride the package registry like the link shapers do.
var (
	mHubMessages = metrics.Counter("hub_messages")
	mHubDrops    = metrics.Counter("hub_drops")
)

// hubQueueDepth bounds each node's inbound queue. A full queue drops
// new messages — the finite receive buffer every real NIC has — so a
// stalled node exerts no backpressure on the rest of the simulation.
const hubQueueDepth = 1024

// HubMsg is one message in flight on a hub.
type HubMsg struct {
	From    string
	Payload any
}

// Hub is a lightweight in-memory message bus for simulations too large
// for per-pair pipes: 5–10k nodes exchanging datagram-shaped payloads
// (the gossip scale experiments) need O(N) state, not O(N²) links.
// Each attached node gets a bounded inbound queue drained by one
// dedicated goroutine; payloads are passed by reference with no
// serialization, so a 10k-host cluster fits in one process. An
// optional Fabric supplies partition semantics: sends between severed
// node pairs fail with ErrLinkDown, exactly like pipe traffic.
type Hub struct {
	fabric *Fabric // optional partition source

	mu     sync.RWMutex
	nodes  map[string]*HubNode
	closed bool
}

// HubNode is one attached endpoint.
type HubNode struct {
	hub  *Hub
	name string
	ch   chan HubMsg
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

// NewHub returns an empty hub. fabric may be nil (no partitions).
func NewHub(fabric *Fabric) *Hub {
	return &Hub{fabric: fabric, nodes: make(map[string]*HubNode)}
}

// Attach registers a named node; every message sent to it is handed to
// deliver, in order, on the node's own goroutine. Attaching an
// existing name or attaching to a closed hub returns an error.
func (h *Hub) Attach(name string, deliver func(from string, payload any)) (*HubNode, error) {
	n := &HubNode{
		hub:  h,
		name: name,
		ch:   make(chan HubMsg, hubQueueDepth),
		done: make(chan struct{}),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := h.nodes[name]; ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("netsim: hub node %q already attached", name)
	}
	h.nodes[name] = n
	h.mu.Unlock()
	go func() {
		for {
			select {
			case <-n.done:
				return
			case m := <-n.ch:
				deliver(m.From, m.Payload)
			}
		}
	}()
	return n, nil
}

// Close detaches every node and refuses new attachments.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	nodes := make([]*HubNode, 0, len(h.nodes))
	for _, n := range h.nodes {
		nodes = append(nodes, n)
	}
	h.nodes = make(map[string]*HubNode)
	h.mu.Unlock()
	for _, n := range nodes {
		n.stop()
	}
}

// Send delivers payload to the named peer. It fails with ErrLinkDown
// while the fabric severs the pair, ErrClosed for unknown or detached
// peers, and silently drops (counted) when the peer's inbound queue is
// full — loss, like any network.
func (n *HubNode) Send(to string, payload any) error {
	h := n.hub
	if h.fabric != nil && h.fabric.Partitioned(n.name, to) {
		return fmt.Errorf("%w: %s–%s partitioned", ErrLinkDown, n.name, to)
	}
	h.mu.RLock()
	peer, ok := h.nodes[to]
	h.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: hub node %q", ErrClosed, to)
	}
	select {
	case peer.ch <- HubMsg{From: n.name, Payload: payload}:
		mHubMessages.Inc()
		return nil
	default:
		mHubDrops.Inc()
		return nil
	}
}

// Close detaches the node from the hub and stops its delivery
// goroutine. Idempotent.
func (n *HubNode) Close() {
	n.hub.mu.Lock()
	if n.hub.nodes[n.name] == n {
		delete(n.hub.nodes, n.name)
	}
	n.hub.mu.Unlock()
	n.stop()
}

func (n *HubNode) stop() {
	n.mu.Lock()
	if !n.closed {
		n.closed = true
		close(n.done)
	}
	n.mu.Unlock()
}
