// Package netsim emulates the communication media of the SNIPE testbed.
//
// The paper's Fig. 1 reports "Bandwidth in MegaBytes/Second offered to
// SNIPE client applications on various media" — 10/100 Mbit Ethernet and
// 155 Mbit ATM. That hardware is not available here, so netsim restores
// the media's first-order properties (serialization rate, propagation
// latency, frame overhead, loss) around real in-process byte pipes. The
// SNIPE communication stack (framing, fragmentation, TCP-style stream
// transport, the selective-resend UDP protocol) runs unmodified over
// these pipes, so the bandwidth-vs-message-size curves have the same
// shape as the paper's: per-message overhead dominating small messages,
// saturation at the medium's rate for large ones.
//
// The model: each direction of a link has a virtual transmit clock.
// Sending n bytes advances the clock by (n+overhead)/rate; the data
// becomes readable at clock+latency. Writers therefore pipeline — many
// frames can be "in flight" — while a bounded queue models finite
// buffering and provides backpressure.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"snipe/internal/stats"
)

// Package-level telemetry: every shaped link direction feeds the same
// registry, giving experiments a media-level picture of traffic shaped
// and losses injected across all simulated links in the process.
var (
	metrics       = stats.NewRegistry()
	mShapedBytes  = metrics.Counter("shaped_bytes")
	mShapedFrames = metrics.Counter("shaped_frames")
	mInjectedLoss = metrics.Counter("injected_losses")
)

// Metrics returns the simulator's shared metric registry.
func Metrics() *stats.Registry { return metrics }

// Profile describes a communication medium.
type Profile struct {
	Name          string
	BitsPerSec    float64       // raw signalling rate
	Latency       time.Duration // one-way propagation + switch delay
	Loss          float64       // per-frame loss probability (packet pipes)
	MTU           int           // maximum frame payload in bytes
	FrameOverhead int           // per-frame header/trailer bytes on the wire
}

// BytesPerSec returns the payload serialization rate.
func (p Profile) BytesPerSec() float64 { return p.BitsPerSec / 8 }

// TransmitTime returns the serialization time for n payload bytes sent
// as a single frame.
func (p Profile) TransmitTime(n int) time.Duration {
	return time.Duration(float64(n+p.FrameOverhead) / p.BytesPerSec() * float64(time.Second))
}

// String returns the profile name.
func (p Profile) String() string { return p.Name }

// Media profiles calibrated to the paper's testbed. Latencies are
// representative of 1997-era switched LANs; the ATM AAL5 path has lower
// per-cell latency but higher per-frame overhead (cell tax).
var (
	// Ethernet10 is 10 Mbit shared Ethernet.
	Ethernet10 = Profile{Name: "10Mb-ethernet", BitsPerSec: 10e6, Latency: 400 * time.Microsecond, MTU: 1500, FrameOverhead: 26}
	// Ethernet100 is 100 Mbit switched Ethernet, the paper's main LAN.
	Ethernet100 = Profile{Name: "100Mb-ethernet", BitsPerSec: 100e6, Latency: 120 * time.Microsecond, MTU: 1500, FrameOverhead: 26}
	// ATM155 is 155 Mbit ATM with AAL5 framing (cell tax ≈ 5/53).
	ATM155 = Profile{Name: "155Mb-ATM", BitsPerSec: 155e6 * 48 / 53, Latency: 90 * time.Microsecond, MTU: 9180, FrameOverhead: 48}
	// Myrinet is the paper testbed's system-area network: 1.28 Gbit
	// links with single-digit-microsecond switch latency and large
	// frames (no inter-frame gap tax worth modelling).
	Myrinet = Profile{Name: "1.28Gb-myrinet", BitsPerSec: 1.28e9, Latency: 9 * time.Microsecond, MTU: 16384, FrameOverhead: 8}
	// WAN is a lossy wide-area path, for robustness experiments.
	WAN = Profile{Name: "WAN", BitsPerSec: 8e6, Latency: 20 * time.Millisecond, Loss: 0.01, MTU: 1500, FrameOverhead: 40}
	// Loopback is an effectively unconstrained local link, the baseline.
	Loopback = Profile{Name: "loopback", BitsPerSec: 8e9, Latency: 5 * time.Microsecond, MTU: 65536, FrameOverhead: 0}
)

// WithLoss returns a copy of the profile with the given frame loss rate.
func (p Profile) WithLoss(loss float64) Profile {
	p.Loss = loss
	p.Name = fmt.Sprintf("%s+loss%.3g", p.Name, loss)
	return p
}

// WithLatency returns a copy of the profile with the given latency.
func (p Profile) WithLatency(d time.Duration) Profile {
	p.Latency = d
	return p
}

// RNG is a splitmix64 generator: deterministic, seedable, and cheap, so
// loss patterns reproduce exactly across runs.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Errors returned by simulated links.
var (
	// ErrClosed indicates the pipe or link has been closed.
	ErrClosed = errors.New("netsim: closed")
	// ErrLinkDown indicates a link administratively taken down (for
	// failover experiments).
	ErrLinkDown = errors.New("netsim: link down")
	// ErrTimeout indicates a deadline expired. It implements the
	// net.Error Timeout contract so transport code can treat simulated
	// and real deadline expiries uniformly.
	ErrTimeout error = timeoutError{}
)

// timeoutError is the concrete type of ErrTimeout.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netsim: deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// chunk is a unit of shaped data awaiting delivery.
type chunk struct {
	data      []byte
	deliverAt time.Time
}

// shapedQueue is one direction of a link: a bounded FIFO of chunks with
// delivery times assigned by the virtual transmit clock.
type shapedQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	profile  Profile
	txClock  time.Time // virtual time the transmitter frees up
	queued   int       // bytes awaiting delivery
	maxQueue int       // backpressure threshold
	chunks   []chunk
	closed   bool
	down     bool
	rng      *RNG
	packet   bool // preserve message boundaries and apply loss
	dropped  int  // frames dropped by loss injection (packet mode)
}

func newShapedQueue(p Profile, rng *RNG, packet bool) *shapedQueue {
	// Queue capacity: at least 256 KiB or twice the bandwidth-delay
	// product, so a saturated sender can keep the pipe full.
	bdp := int(p.BytesPerSec() * p.Latency.Seconds())
	maxQueue := 256 << 10
	if 2*bdp > maxQueue {
		maxQueue = 2 * bdp
	}
	q := &shapedQueue{profile: p, maxQueue: maxQueue, rng: rng, packet: packet}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// send shapes and enqueues data, blocking for backpressure. The data is
// copied. deadline of zero means block indefinitely.
func (q *shapedQueue) send(data []byte, deadline time.Time) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && !q.down && q.queued+len(data) > q.maxQueue && q.queued > 0 {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrTimeout
		}
		q.waitLocked(deadline)
	}
	if q.closed {
		return ErrClosed
	}
	if q.down {
		return ErrLinkDown
	}
	if q.packet && q.profile.Loss > 0 && q.rng.Float64() < q.profile.Loss {
		q.dropped++
		mInjectedLoss.Inc()
		return nil // frame silently lost, as UDP would
	}
	now := time.Now()
	if q.txClock.Before(now) {
		q.txClock = now
	}
	// Serialization: frames larger than the MTU occupy the wire for
	// their full fragmented length (each fragment pays frame overhead).
	n := len(data)
	frames := 1
	if q.profile.MTU > 0 && n > q.profile.MTU {
		frames = (n + q.profile.MTU - 1) / q.profile.MTU
	}
	txTime := time.Duration(float64(n+frames*q.profile.FrameOverhead) / q.profile.BytesPerSec() * float64(time.Second))
	q.txClock = q.txClock.Add(txTime)
	cp := make([]byte, n)
	copy(cp, data)
	q.chunks = append(q.chunks, chunk{data: cp, deliverAt: q.txClock.Add(q.profile.Latency)})
	q.queued += n
	mShapedBytes.Add(uint64(n))
	mShapedFrames.Add(uint64(frames))
	q.cond.Broadcast()
	return nil
}

// waitLocked waits on the condition with an optional deadline.
func (q *shapedQueue) waitLocked(deadline time.Time) {
	if deadline.IsZero() {
		q.cond.Wait()
		return
	}
	// Timed wait: poll via a timer that broadcasts.
	t := time.AfterFunc(time.Until(deadline), func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	q.cond.Wait()
	t.Stop()
}

// recvStream reads up to len(p) bytes, blocking until the earliest
// chunk's delivery time. Stream mode: chunk boundaries are not
// preserved.
func (q *shapedQueue) recvStream(p []byte, deadline time.Time) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.chunks) > 0 {
			wait := time.Until(q.chunks[0].deliverAt)
			if wait <= 0 {
				n := 0
				for n < len(p) && len(q.chunks) > 0 && !time.Now().Before(q.chunks[0].deliverAt) {
					c := &q.chunks[0]
					m := copy(p[n:], c.data)
					n += m
					if m == len(c.data) {
						q.chunks = q.chunks[1:]
					} else {
						c.data = c.data[m:]
					}
					q.queued -= m
				}
				q.cond.Broadcast()
				return n, nil
			}
			// Sleep (unlocked) until delivery or deadline.
			if !deadline.IsZero() && deadline.Before(q.chunks[0].deliverAt) {
				if time.Now().After(deadline) {
					return 0, ErrTimeout
				}
				wait = time.Until(deadline)
			}
			q.mu.Unlock()
			time.Sleep(wait)
			q.mu.Lock()
			continue
		}
		if q.closed {
			return 0, io.EOF
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return 0, ErrTimeout
		}
		q.waitLocked(deadline)
	}
}

// recvPacket returns the next whole frame, blocking until delivery.
func (q *shapedQueue) recvPacket(deadline time.Time) ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.chunks) > 0 {
			wait := time.Until(q.chunks[0].deliverAt)
			if wait <= 0 {
				c := q.chunks[0]
				q.chunks = q.chunks[1:]
				q.queued -= len(c.data)
				q.cond.Broadcast()
				return c.data, nil
			}
			if !deadline.IsZero() && deadline.Before(q.chunks[0].deliverAt) {
				if time.Now().After(deadline) {
					return nil, ErrTimeout
				}
				wait = time.Until(deadline)
			}
			q.mu.Unlock()
			time.Sleep(wait)
			q.mu.Lock()
			continue
		}
		if q.closed {
			return nil, io.EOF
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		q.waitLocked(deadline)
	}
}

func (q *shapedQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *shapedQueue) setDown(down bool) {
	q.mu.Lock()
	q.down = down
	if down {
		// A downed link loses everything in flight.
		q.chunks = nil
		q.queued = 0
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *shapedQueue) droppedFrames() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}
