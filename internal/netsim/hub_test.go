package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"snipe/internal/gossip"
)

// node looks up an attached node for test sends.
func (h *Hub) node(name string) (*HubNode, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n, ok := h.nodes[name]
	return n, ok
}

func TestHubDelivery(t *testing.T) {
	h := NewHub(nil)
	defer h.Close()
	var mu sync.Mutex
	var got []HubMsg
	if _, err := h.Attach("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Attach("b", func(from string, payload any) {
		mu.Lock()
		got = append(got, HubMsg{From: from, Payload: payload})
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	a, _ := h.node("a")
	for i := 0; i < 10; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/10", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		if m.From != "a" || m.Payload.(int) != i {
			t.Fatalf("message %d: %+v (in-order delivery broken)", i, m)
		}
	}
}

func TestHubAttachErrors(t *testing.T) {
	h := NewHub(nil)
	if _, err := h.Attach("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Attach("a", nil); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	h.Close()
	if _, err := h.Attach("b", nil); err == nil {
		t.Fatal("attach to closed hub accepted")
	}
}

func TestHubUnknownAndDetachedPeers(t *testing.T) {
	h := NewHub(nil)
	defer h.Close()
	a, err := h.Attach("a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to unknown peer: %v", err)
	}
	b, _ := h.Attach("b", func(string, any) {})
	b.Close()
	if err := a.Send("b", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to detached peer: %v", err)
	}
}

func TestHubPartition(t *testing.T) {
	f := NewFabric()
	h := NewHub(f)
	defer h.Close()
	delivered := make(chan string, 16)
	a, _ := h.Attach("a", nil)
	if _, err := h.Attach("b", func(from string, payload any) { delivered <- payload.(string) }); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", "before"); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-delivered:
		if got != "before" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pre-partition delivery timed out")
	}

	f.Partition("a", "b")
	if err := a.Send("b", "during"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send across partition: %v", err)
	}
	f.Heal("a", "b")
	if err := a.Send("b", "after"); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-delivered:
		if got != "after" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-heal delivery timed out")
	}
}

func TestHubDropsWhenQueueFull(t *testing.T) {
	h := NewHub(nil)
	defer h.Close()
	a, _ := h.Attach("a", nil)
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	if _, err := h.Attach("b", func(string, any) {
		once.Do(func() { close(first) })
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	defer close(release)
	// Park the delivery goroutine in the handler, then overfill the
	// bounded queue: the excess must be dropped silently (nil error),
	// never block the sender.
	dropsBefore := mHubDrops.Value()
	if err := a.Send("b", 0); err != nil {
		t.Fatal(err)
	}
	<-first
	for i := 0; i < hubQueueDepth+100; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if d := mHubDrops.Value() - dropsBefore; d < 100 {
		t.Fatalf("hub_drops advanced by %d, want >= 100", d)
	}
}

// TestHubGossipPartition runs a three-agent gossip group over a hub —
// the transport the liveness scale bench uses — and drives a full
// partition/heal cycle through the fabric: the isolated member is
// declared dead by the majority's reporter with quorum, and refutes
// its way back after the heal.
func TestHubGossipPartition(t *testing.T) {
	f := NewFabric()
	h := NewHub(f)
	defer h.Close()
	hosts := []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"}
	short := map[string]string{"snipe://hosts/a": "a", "snipe://hosts/b": "b", "snipe://hosts/c": "c"}

	// Handlers look the agent up lazily so nodes can attach before the
	// agents that use them exist.
	var mu sync.Mutex
	agents := make(map[string]*gossip.Agent, len(hosts))
	var digestMu sync.Mutex
	digests := make(map[string][]*gossip.Digest)
	for _, host := range hosts {
		host := host
		node, err := h.Attach(short[host], func(from string, payload any) {
			mu.Lock()
			ag := agents[host]
			mu.Unlock()
			if ag == nil {
				return
			}
			if m, err := gossip.DecodeMessage(payload.([]byte)); err == nil {
				ag.Deliver(&m)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		ag, err := gossip.NewAgent(gossip.Config{
			Self: host,
			Transport: gossip.TransportFunc(func(to string, m *gossip.Message) error {
				return node.Send(short[to], m.Encode())
			}),
			Peers:          func() ([]string, error) { return hosts, nil },
			ProbeInterval:  20 * time.Millisecond,
			AckTimeout:     8 * time.Millisecond,
			ProbeTimeout:   50 * time.Millisecond,
			SuspectTimeout: 60 * time.Millisecond,
			WriteDigest: func(d *gossip.Digest) error {
				digestMu.Lock()
				digests[host] = append(digests[host], d)
				digestMu.Unlock()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		agents[host] = ag
		mu.Unlock()
	}
	for _, host := range hosts {
		ag := agents[host]
		if err := ag.Start(); err != nil {
			t.Fatal(err)
		}
		defer ag.Stop()
	}

	aliveEverywhere := func() bool {
		for _, ag := range agents {
			n := 0
			for _, u := range ag.Members() {
				if u.State != gossip.StateAlive || u.Inc < 1 {
					return false
				}
				n++
			}
			if n != len(hosts) {
				return false
			}
		}
		return true
	}
	waitHub(t, "full alive convergence", aliveEverywhere)

	f.Isolate("c")
	waitHub(t, "majority digest carries the death with quorum", func() bool {
		digestMu.Lock()
		defer digestMu.Unlock()
		for _, host := range hosts[:2] {
			ds := digests[host]
			if len(ds) == 0 {
				continue
			}
			d := ds[len(ds)-1]
			if !d.Quorum {
				continue
			}
			for _, u := range d.Members {
				if u.Host == "snipe://hosts/c" && u.State == gossip.StateDead {
					return true
				}
			}
		}
		return false
	})

	f.Rejoin("c")
	waitHub(t, "isolated member refutes and revives", aliveEverywhere)
}

func waitHub(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", desc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
