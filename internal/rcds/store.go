package rcds

import (
	"crypto/sha256"
	"sort"
	"strings"
	"sync"
	"time"

	"snipe/internal/stats"
	"snipe/internal/xdr"
)

// Event reports a catalog change to a subscriber.
type Event struct {
	Assertion Assertion
}

// Store is one replica's catalog state: the merged element sets per
// URI, the per-origin op logs used for anti-entropy, and the version
// vector summarising them. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	origin  string
	lamport uint64
	seq     uint64 // this origin's next op sequence number - 1

	catalogs map[string]map[elemKey]*Assertion
	log      map[string]map[uint64]Assertion // origin → seq → op (may have holes)
	vv       VersionVector                   // contiguous high-water marks
	floor    map[string]uint64               // origin → first log seq still servable (0 = from the start)

	version uint64 // bumped on every visible change
	cond    *sync.Cond

	subs   map[int]*subscription
	nextID int

	nowFn func() int64 // injectable wall clock for tests

	// Telemetry (see internal/stats); pointers captured at construction.
	metrics        *stats.Registry
	mLocalOps      *stats.Counter
	mRemoteOps     *stats.Counter
	mRemoteApplied *stats.Counter
	mLookups       *stats.Counter
	mSnapInstall   *stats.Counter // ops installed from a peer snapshot page
	mCompacted     *stats.Counter // log entries dropped by compaction
	hLookupUs      *stats.Histogram // catalog read latency
	hReplLagUs     *stats.Histogram // origin mint → local apply, master-master lag
}

type subscription struct {
	prefix string
	ch     chan Event
}

// NewStore returns an empty replica identified by origin.
func NewStore(origin string) *Store {
	s := &Store{
		origin:   origin,
		catalogs: make(map[string]map[elemKey]*Assertion),
		log:      make(map[string]map[uint64]Assertion),
		vv:       make(VersionVector),
		floor:    make(map[string]uint64),
		subs:     make(map[int]*subscription),
		nowFn:    func() int64 { return time.Now().UnixNano() },
		metrics:  stats.NewRegistry(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.mLocalOps = s.metrics.Counter("local_ops")
	s.mRemoteOps = s.metrics.Counter("remote_ops")
	s.mRemoteApplied = s.metrics.Counter("remote_ops_applied")
	s.mLookups = s.metrics.Counter("lookups")
	s.mSnapInstall = s.metrics.Counter("snapshot_ops_installed")
	s.mCompacted = s.metrics.Counter("log_compacted_ops")
	s.hLookupUs = s.metrics.Histogram("lookup_latency_us", stats.LatencyBucketsUs)
	s.hReplLagUs = s.metrics.Histogram("replication_lag_us", stats.LatencyBucketsUs)
	return s
}

// Origin returns the replica's identity.
func (s *Store) Origin() string { return s.origin }

// newLocalOp mints a local assertion with fresh clock and sequence.
// Caller holds s.mu.
func (s *Store) newLocalOp(uri, name, value string, deleted bool) Assertion {
	s.mLocalOps.Inc()
	s.lamport++
	s.seq++
	return Assertion{
		URI:        uri,
		Name:       name,
		Value:      value,
		Clock:      s.lamport,
		Origin:     s.origin,
		Seq:        s.seq,
		Deleted:    deleted,
		ServerTime: s.nowFn(),
	}
}

// applyLocked merges one assertion into the catalog and, when it came
// from this store's own mint or is a remote op, records it in the log.
// Returns true if the catalog visibly changed. Caller holds s.mu.
func (s *Store) applyLocked(a Assertion) bool {
	cat, ok := s.catalogs[a.URI]
	if !ok {
		cat = make(map[elemKey]*Assertion)
		s.catalogs[a.URI] = cat
	}
	key := elemKey{a.Name, a.Value}
	cur, exists := cat[key]
	if exists && !a.Supersedes(cur) {
		return false
	}
	cp := a
	cat[key] = &cp
	if a.Clock > s.lamport {
		s.lamport = a.Clock
	}
	s.version++
	s.notifyLocked(a)
	s.cond.Broadcast()
	return true
}

// recordLocked files op in the origin's log and advances the contiguous
// version vector, draining any pending ops that become contiguous.
// Caller holds s.mu.
func (s *Store) recordLocked(a Assertion) {
	l, ok := s.log[a.Origin]
	if !ok {
		l = make(map[uint64]Assertion)
		s.log[a.Origin] = l
	}
	if _, dup := l[a.Seq]; dup {
		return
	}
	l[a.Seq] = a
	for {
		next := s.vv[a.Origin] + 1
		if _, ok := l[next]; !ok {
			break
		}
		s.vv[a.Origin] = next
	}
}

func (s *Store) notifyLocked(a Assertion) {
	for _, sub := range s.subs {
		if strings.HasPrefix(a.URI, sub.prefix) {
			select {
			case sub.ch <- Event{Assertion: a}:
			default: // slow subscriber: drop rather than block the store
			}
		}
	}
}

// Set makes value the sole live value for (uri, name): existing live
// values of the attribute are tombstoned and the new element added.
// It returns the ops to be pushed to peers.
func (s *Store) Set(uri, name, value string) []Assertion {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ops []Assertion
	for key, cur := range s.catalogs[uri] {
		if key.name == name && !cur.Deleted && key.value != value {
			ops = append(ops, s.newLocalOp(uri, name, key.value, true))
		}
	}
	ops = append(ops, s.newLocalOp(uri, name, value, false))
	for _, op := range ops {
		s.recordLocked(op)
		s.applyLocked(op)
	}
	return ops
}

// Add inserts value as an additional live value for (uri, name) —
// RCDS attributes such as locations and comm addresses are
// multi-valued. Returns the op to push.
func (s *Store) Add(uri, name, value string) []Assertion {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := s.newLocalOp(uri, name, value, false)
	s.recordLocked(op)
	s.applyLocked(op)
	return []Assertion{op}
}

// AddSigned inserts a value carrying a detached signature (used for
// signed metadata subsets such as published keys and code signatures).
func (s *Store) AddSigned(uri, name, value string, signer string, sig []byte) []Assertion {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := s.newLocalOp(uri, name, value, false)
	op.Signer = signer
	op.Signature = sig
	s.recordLocked(op)
	s.applyLocked(op)
	return []Assertion{op}
}

// Remove tombstones the (uri, name, value) element. Returns the ops to
// push (empty if the element was not live).
func (s *Store) Remove(uri, name, value string) []Assertion {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.catalogs[uri][elemKey{name, value}]
	if !ok || cur.Deleted {
		return nil
	}
	op := s.newLocalOp(uri, name, value, true)
	s.recordLocked(op)
	s.applyLocked(op)
	return []Assertion{op}
}

// RemoveAll tombstones every live value of (uri, name).
func (s *Store) RemoveAll(uri, name string) []Assertion {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ops []Assertion
	for key, cur := range s.catalogs[uri] {
		if key.name == name && !cur.Deleted {
			ops = append(ops, s.newLocalOp(uri, name, key.value, true))
		}
	}
	for _, op := range ops {
		s.recordLocked(op)
		s.applyLocked(op)
	}
	return ops
}

// ApplyRemote merges ops received from a peer (push or anti-entropy),
// returning the number that changed the catalog.
func (s *Store) ApplyRemote(ops []Assertion) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := 0
	for _, op := range ops {
		if op.Origin == s.origin {
			continue // our own ops echoed back
		}
		s.mRemoteOps.Inc()
		s.recordLocked(op)
		if s.applyLocked(op) {
			changed++
			s.mRemoteApplied.Inc()
			// Replication lag: origin's mint time to our apply time. The
			// clocks are different hosts', so skew can swallow small lags;
			// only positive samples are meaningful.
			if op.ServerTime > 0 {
				if lag := s.nowFn() - op.ServerTime; lag > 0 {
					s.hReplLagUs.Observe(float64(lag) / 1e3)
				}
			}
		}
	}
	return changed
}

// observeLookup records one catalog read for the lookup metrics.
func (s *Store) observeLookup(start time.Time) {
	s.mLookups.Inc()
	s.hLookupUs.Observe(float64(time.Since(start).Microseconds()))
}

// Get returns the live assertions for uri, sorted by (name, value).
func (s *Store) Get(uri string) []Assertion {
	defer s.observeLookup(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Assertion
	for _, a := range s.catalogs[uri] {
		if !a.Deleted {
			out = append(out, *a)
		}
	}
	sortAssertions(out)
	return out
}

// Values returns the live values of (uri, name), sorted.
func (s *Store) Values(uri, name string) []string {
	defer s.observeLookup(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for key, a := range s.catalogs[uri] {
		if key.name == name && !a.Deleted {
			out = append(out, key.value)
		}
	}
	sort.Strings(out)
	return out
}

// FirstValue returns the most recently written live value of
// (uri, name), if any.
func (s *Store) FirstValue(uri, name string) (string, bool) {
	defer s.observeLookup(time.Now())
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Assertion
	for key, a := range s.catalogs[uri] {
		if key.name == name && !a.Deleted {
			if best == nil || a.Supersedes(best) {
				best = a
			}
		}
	}
	if best == nil {
		return "", false
	}
	return best.Value, true
}

// URIs returns all URIs with live assertions under the prefix, sorted.
func (s *Store) URIs(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for uri, cat := range s.catalogs {
		if !strings.HasPrefix(uri, prefix) {
			continue
		}
		for _, a := range cat {
			if !a.Deleted {
				out = append(out, uri)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Vector returns a copy of the replica's contiguous version vector.
func (s *Store) Vector() VersionVector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vv.Copy()
}

// OpsSince returns up to max ops that remote (with version vector
// theirs) has not seen, in per-origin sequence order. max <= 0 means
// unlimited.
func (s *Store) OpsSince(theirs VersionVector, max int) []Assertion {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Assertion
	origins := make([]string, 0, len(s.log))
	for origin := range s.log {
		origins = append(origins, origin)
	}
	sort.Strings(origins)
	for _, origin := range origins {
		l := s.log[origin]
		for seq := theirs[origin] + 1; seq <= s.vv[origin]; seq++ {
			op, ok := l[seq]
			if !ok {
				break
			}
			out = append(out, op)
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// Version returns the store's change counter.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// WaitVersion blocks until the store's version exceeds since or the
// timeout elapses, returning the current version. It is the long-poll
// primitive behind metadata change notification.
func (s *Store) WaitVersion(since uint64, timeout time.Duration) uint64 {
	return s.WaitVersionCancel(since, timeout, nil)
}

// WaitVersionCancel is WaitVersion with a cancellation channel
// (typically a server's shutdown signal): when cancel closes, the wait
// returns early with the current version. A nil cancel never fires.
func (s *Store) WaitVersionCancel(since uint64, timeout time.Duration, cancel <-chan struct{}) uint64 {
	deadline := time.Now().Add(timeout)
	canceled := func() bool {
		select {
		case <-cancel:
			return true
		default:
			return false
		}
	}
	if cancel != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-cancel:
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-stop:
			}
		}()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.version <= since && !canceled() {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		t := time.AfterFunc(remaining, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		s.cond.Wait()
		t.Stop()
	}
	return s.version
}

// Subscribe delivers every catalog change whose URI has the given
// prefix to ch until Unsubscribe. Events are dropped rather than
// blocking the store if ch is full; subscribers needing completeness
// should re-read the catalog on wakeup.
func (s *Store) Subscribe(prefix string, ch chan Event) (id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id = s.nextID
	s.nextID++
	s.subs[id] = &subscription{prefix: prefix, ch: ch}
	return id
}

// Unsubscribe removes a subscription.
func (s *Store) Unsubscribe(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, id)
}

// Stats reports catalog sizes for monitoring.
func (s *Store) Stats() (uris, elements, tombstones int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	uris = len(s.catalogs)
	for _, cat := range s.catalogs {
		for _, a := range cat {
			if a.Deleted {
				tombstones++
			} else {
				elements++
			}
		}
	}
	return
}

// Metrics returns the store's live metric registry.
func (s *Store) Metrics() *stats.Registry { return s.metrics }

// MetricsSnapshot captures the store's metrics with the catalog-size
// gauges refreshed.
func (s *Store) MetricsSnapshot() stats.Snapshot {
	uris, elements, tombstones := s.Stats()
	s.metrics.Gauge("uris").Set(float64(uris))
	s.metrics.Gauge("elements").Set(float64(elements))
	s.metrics.Gauge("tombstones").Set(float64(tombstones))
	return s.metrics.Snapshot()
}

// SetNowFunc overrides the wall clock used for server timestamps; for
// tests.
func (s *Store) SetNowFunc(f func() int64) {
	s.mu.Lock()
	s.nowFn = f
	s.mu.Unlock()
}

// Snapshot + incremental catch-up (DESIGN.md "Sharded catalog"): a
// replica rejoining its group pulls the peer's compacted catalog state
// — one assertion per element, winners and tombstones, NOT the op
// history — in deterministic URI-ordered pages, then the op tail since
// the snapshot's version vector. Log compaction makes this necessary
// (the history below the floor is gone) and worthwhile (the snapshot is
// catalog-sized, the history is write-count-sized).

// SnapshotPage returns up to maxOps catalog elements (including
// tombstones) for URIs strictly after afterURI in lexical order, the
// cursor for the next page ("" when the dump is complete), and the
// store's current version vector. Pages never split a URI, so the
// cursor is simply the last URI included.
func (s *Store) SnapshotPage(afterURI string, maxOps int) (ops []Assertion, next string, vv VersionVector) {
	if maxOps <= 0 {
		maxOps = 8192
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	uris := make([]string, 0, len(s.catalogs))
	for uri := range s.catalogs {
		if uri > afterURI {
			uris = append(uris, uri)
		}
	}
	sort.Strings(uris)
	for _, uri := range uris {
		if len(ops) >= maxOps {
			return ops, next, s.vv.Copy()
		}
		for _, a := range s.catalogs[uri] {
			ops = append(ops, *a)
		}
		next = uri
	}
	return ops, "", s.vv.Copy()
}

// InstallSnapshotOps merges one snapshot page into the catalog and the
// log, returning the number of elements that changed the catalog. The
// caller advances the version vector with MergeVector once every page
// has been installed; until then the replica does not claim coverage of
// sequence numbers it has only partially received.
func (s *Store) InstallSnapshotOps(ops []Assertion) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := 0
	for _, op := range ops {
		if op.Origin == s.origin {
			continue // our own ops: already in our log
		}
		s.mSnapInstall.Inc()
		s.recordLocked(op)
		if s.applyLocked(op) {
			changed++
		}
	}
	return changed
}

// MergeVector raises the store's contiguous version vector to cover vv
// (a snapshot's base): intermediate superseded ops below the new marks
// were compacted away on the peer and will never arrive, so the log may
// now have holes under the vector. The serving floor moves up to the
// new marks for every origin that advanced — this replica can serve
// tails only from the snapshot base onward; peers that are further
// behind must themselves catch up by snapshot.
func (s *Store) MergeVector(vv VersionVector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for origin, seq := range vv {
		if seq > s.vv[origin] {
			s.vv[origin] = seq
			if seq+1 > s.floor[origin] {
				s.floor[origin] = seq + 1
			}
		}
	}
}

// CanServeTail reports whether the log can serve every op a replica at
// vector theirs is missing — i.e. theirs is at or above the compaction
// floor for every origin this store has advanced past it on.
func (s *Store) CanServeTail(theirs VersionVector) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for origin, seq := range s.vv {
		have := theirs[origin]
		if seq > have && have+1 < s.floor[origin] {
			return false
		}
	}
	return true
}

// Compact drops log entries more than keepTail sequence numbers below
// each origin's contiguous mark, raising the serving floor accordingly,
// and returns the number of entries dropped. The catalog (element sets
// and tombstones) is untouched: compaction trades the ability to serve
// deep history tails for bounded log memory; replicas below the floor
// catch up by snapshot instead.
func (s *Store) Compact(keepTail int) int {
	if keepTail < 0 {
		keepTail = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for origin, l := range s.log {
		mark := s.vv[origin]
		if mark <= uint64(keepTail) {
			continue
		}
		horizon := mark - uint64(keepTail) // drop seqs <= horizon
		if horizon+1 > s.floor[origin] {
			s.floor[origin] = horizon + 1
		}
		for seq := range l {
			if seq <= horizon {
				delete(l, seq)
				dropped++
			}
		}
	}
	if dropped > 0 {
		s.mCompacted.Add(uint64(dropped))
	}
	return dropped
}

// LogLen returns the number of retained op-log entries across origins.
func (s *Store) LogLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, l := range s.log {
		n += len(l)
	}
	return n
}

// ContentHash returns a digest over the full catalog content — every
// element and tombstone with all its fields, in deterministic order.
// Two replicas whose hashes match hold byte-identical catalogs; the
// convergence proof the catch-up tests and bench assert.
func (s *Store) ContentHash() [32]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	uris := make([]string, 0, len(s.catalogs))
	for uri := range s.catalogs {
		uris = append(uris, uri)
	}
	sort.Strings(uris)
	h := sha256.New()
	e := xdr.NewEncoder(256)
	for _, uri := range uris {
		cat := s.catalogs[uri]
		elems := make([]Assertion, 0, len(cat))
		for _, a := range cat {
			elems = append(elems, *a)
		}
		sort.Slice(elems, func(i, j int) bool {
			if elems[i].Name != elems[j].Name {
				return elems[i].Name < elems[j].Name
			}
			return elems[i].Value < elems[j].Value
		})
		for i := range elems {
			e.Reset()
			elems[i].Encode(e)
			h.Write(e.Bytes())
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func sortAssertions(as []Assertion) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].Name != as[j].Name {
			return as[i].Name < as[j].Name
		}
		return as[i].Value < as[j].Value
	})
}
