package rcds

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore("rc1")
	s.Set("urn:h1", AttrArch, "go-sim")
	s.Add("urn:f1", AttrLocation, "fs1")
	s.Add("urn:f1", AttrLocation, "fs2")
	s.Remove("urn:f1", AttrLocation, "fs1")
	// Remote ops are preserved too.
	other := NewStore("rc2")
	s.ApplyRemote(other.Set("urn:h2", AttrArch, "sparc"))

	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin() != "rc1" {
		t.Fatalf("origin: %s", got.Origin())
	}
	if v, ok := got.FirstValue("urn:h1", AttrArch); !ok || v != "go-sim" {
		t.Fatalf("h1 arch: %q %v", v, ok)
	}
	if locs := got.Values("urn:f1", AttrLocation); len(locs) != 1 || locs[0] != "fs2" {
		t.Fatalf("f1 locations (tombstone lost?): %v", locs)
	}
	if v, ok := got.FirstValue("urn:h2", AttrArch); !ok || v != "sparc" {
		t.Fatalf("remote op lost: %q %v", v, ok)
	}
	// Version vector reconstructed: a caught-up peer gets nothing.
	if ops := got.OpsSince(s.Vector(), 0); len(ops) != 0 {
		t.Fatalf("vector drift: %d ops", len(ops))
	}
}

func TestSnapshotPreservesClocks(t *testing.T) {
	s := NewStore("rc1")
	for i := 0; i < 10; i++ {
		s.Set("u", "n", "v")
	}
	var buf bytes.Buffer
	s.SaveTo(&buf)
	got, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// New local ops on the restored store must supersede pre-snapshot
	// state everywhere (clocks must not regress).
	ops := got.Set("u", "n", "post-restart")
	op := ops[len(ops)-1]
	if !op.Supersedes(&Assertion{Clock: 10, Origin: "rc1", Seq: 10}) {
		t.Fatalf("restored clocks regressed: %+v", op)
	}
}

func TestLoadStoreRejectsGarbage(t *testing.T) {
	if _, err := LoadStore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadStore(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rc.snap")

	// Missing file → fresh store.
	fresh, err := LoadFile(path, "rc9")
	if err != nil || fresh.Origin() != "rc9" {
		t.Fatalf("fresh: %v %v", fresh, err)
	}

	s := NewStore("rc1")
	s.Set("urn:x", "k", "v")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.FirstValue("urn:x", "k"); !ok || v != "v" {
		t.Fatalf("file round trip: %q %v", v, ok)
	}
}

func TestRestartedReplicaCatchesUp(t *testing.T) {
	// A replica snapshots, "crashes", misses writes, restarts from the
	// snapshot, and converges via anti-entropy.
	s0 := NewServer(NewStore("rc0"), WithAntiEntropyInterval(30*time.Millisecond))
	if err := s0.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	s1 := NewServer(NewStore("rc1"),
		WithPeers(s0.Addr()), WithAntiEntropyInterval(30*time.Millisecond))
	if err := s1.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	s0.SetPeers(s1.Addr())

	c := NewClient([]string{s0.Addr()}, nil)
	defer c.Close()
	c.Set(context.Background(), "urn:a", "k", "before")

	// Replica 1 receives the write, snapshots, and dies.
	c1 := NewClient([]string{s1.Addr()}, nil)
	wctx, wcancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer wcancel()
	if _, err := c1.WaitFor(wctx, "urn:a", "k"); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	var snap bytes.Buffer
	if err := s1.Store().SaveTo(&snap); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// A write lands while replica 1 is down.
	c.Set(context.Background(), "urn:a", "k2", "while-down")

	// Restart from the snapshot; anti-entropy pulls the missed write.
	restored, err := LoadStore(&snap)
	if err != nil {
		t.Fatal(err)
	}
	s1b := NewServer(restored, WithPeers(s0.Addr()), WithAntiEntropyInterval(30*time.Millisecond))
	if err := s1b.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s1b.Close()
	c1b := NewClient([]string{s1b.Addr()}, nil)
	defer c1b.Close()
	wctx2, wcancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel2()
	if v, err := c1b.WaitFor(wctx2, "urn:a", "k2"); err != nil || v != "while-down" {
		t.Fatalf("catch-up: %q %v", v, err)
	}
	// And it kept the pre-crash state.
	if v, ok, _ := c1b.FirstValue(context.Background(), "urn:a", "k"); !ok || v != "before" {
		t.Fatalf("pre-crash state: %q %v", v, ok)
	}
}
