package rcds

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"snipe/internal/stats"
	"snipe/internal/xdr"
)

// pushTimeout bounds one replication RPC (push or anti-entropy pull) to
// a peer.
const pushTimeout = 5 * time.Second

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithSecret enables HMAC authentication with the given shared secret.
func WithSecret(secret []byte) ServerOption {
	return func(s *Server) { s.secret = secret }
}

// WithPeers sets the addresses of the other replicas this server pushes
// updates to and pulls anti-entropy from.
func WithPeers(addrs ...string) ServerOption {
	return func(s *Server) { s.peers = append([]string(nil), addrs...) }
}

// WithAntiEntropyInterval sets how often the server pulls from peers.
func WithAntiEntropyInterval(d time.Duration) ServerOption {
	return func(s *Server) { s.aeInterval = d }
}

// WithShard makes the server enforce catalog sharding: ops on URIs that
// map (under m) to a group other than self are answered with a
// wrong-shard redirect instead of being served. Config-namespace URIs
// (IsConfigURI) are exempt. The map can be replaced at runtime with
// SetShard.
func WithShard(self int, m *ShardMap) ServerOption {
	return func(s *Server) { s.shard = &shardConfig{self: self, m: m} }
}

// WithLogCompaction bounds the op log: a background loop periodically
// drops entries more than keepTail sequence numbers below each origin's
// contiguous mark. Replicas that fall below the resulting floor catch
// up via snapshot (SyncFromPeer) instead of history replay.
func WithLogCompaction(keepTail int) ServerOption {
	return func(s *Server) { s.compactKeep = keepTail }
}

// WithPeerGate installs a reachability gate consulted before every
// push or anti-entropy exchange with a peer: while gate(peer) returns
// an error the exchange is skipped, modelling a severed replication
// link. netsim's Fabric.Gate plugs in here for partition experiments.
func WithPeerGate(gate func(peer string) error) ServerOption {
	return func(s *Server) { s.peerGate = gate }
}

// shardConfig is a server's sharding stance: its own group and the map.
type shardConfig struct {
	self int
	m    *ShardMap
}

// Server is one RC/metadata server replica: it serves the catalog
// protocol on a TCP listener, pushes local writes to its peers, and
// runs periodic anti-entropy pulls so that replicas converge even when
// pushes are lost — the master–master model of §7.
type Server struct {
	store       *Store
	secret      []byte
	peers       []string
	aeInterval  time.Duration
	compactKeep int // >0: background log compaction keeps this much tail
	peerGate    func(peer string) error

	mu       sync.Mutex
	shard    *shardConfig // nil = unsharded
	ln       net.Listener
	conns    map[net.Conn]struct{}
	pushCh   chan []Assertion
	done     chan struct{}
	wg       sync.WaitGroup
	stopped  bool
	pushFail int // push attempts that failed (peer down); healed by anti-entropy

	// testDelay, when set before Start, stalls every request dispatch —
	// the package tests' knob for proving request overlap and measuring
	// serialized vs. multiplexed throughput under a fixed service time.
	testDelay time.Duration

	mShardReject *stats.Counter // ops redirected to their owning group
	mSnapPages   *stats.Counter // snapshot pages served to rejoiners
	mTailPulls   *stats.Counter // catch-up tail pulls served
}

// NewServer creates a server over store. Call Start to begin serving.
func NewServer(store *Store, opts ...ServerOption) *Server {
	s := &Server{
		store:      store,
		aeInterval: 250 * time.Millisecond,
		conns:      make(map[net.Conn]struct{}),
		pushCh:     make(chan []Assertion, 1024),
		done:       make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	s.mShardReject = store.Metrics().Counter("shard_rejects")
	s.mSnapPages = store.Metrics().Counter("snapshot_pages_served")
	s.mTailPulls = store.Metrics().Counter("tail_pulls_served")
	return s
}

// SetShard installs (or replaces) the server's shard map at runtime —
// the resharding hook. A nil map disables enforcement.
func (s *Server) SetShard(self int, m *ShardMap) {
	s.mu.Lock()
	if m == nil {
		s.shard = nil
	} else {
		s.shard = &shardConfig{self: self, m: m}
	}
	s.mu.Unlock()
}

// shardCheck returns a wrong-shard redirect when sharding is enforced
// and uri belongs to another group; nil means serve it here.
func (s *Server) shardCheck(uri string) []byte {
	s.mu.Lock()
	sc := s.shard
	s.mu.Unlock()
	if sc == nil || IsConfigURI(uri) {
		return nil
	}
	if owner := sc.m.Owner(uri); owner != sc.self {
		s.mShardReject.Inc()
		return wrongShardResponse(owner, sc.m.Epoch)
	}
	return nil
}

// Store returns the server's underlying replica store.
func (s *Server) Store() *Store { return s.store }

// Start listens on addr (host:port; port 0 picks a free port) and
// begins serving, pushing, and anti-entropy.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rcds: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	s.wg.Add(1)
	go s.pushLoop()
	// The loop re-reads the peer set every tick, so it starts even when
	// peers arrive later via SetPeers (the common bootstrap order).
	if s.aeInterval > 0 {
		s.wg.Add(1)
		go s.antiEntropyLoop()
	}
	if s.compactKeep > 0 {
		s.wg.Add(1)
		go s.compactLoop()
	}
	return nil
}

// Addr returns the listen address, valid after Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops serving and waits for all connection handlers to finish.
// The store survives, so a new server can be started over it — the
// crash/recover cycle of the availability experiments.
func (s *Server) Close() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.done)
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// SetPeers replaces the peer set (used when the replica group changes).
func (s *Server) SetPeers(addrs ...string) {
	s.mu.Lock()
	s.peers = append([]string(nil), addrs...)
	s.mu.Unlock()
}

// PushFailures reports how many peer pushes failed and were left to
// anti-entropy to repair.
func (s *Server) PushFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushFail
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn multiplexes one client connection: every request frame
// carries an ID and is dispatched in its own goroutine, and responses
// are written (under a per-connection writer lock) as they complete —
// possibly out of order, so a long-poll never blocks a lookup.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer func() {
		reqWG.Wait()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		frame, err := readFrame(conn, s.secret)
		if err != nil {
			return
		}
		id, body, err := splitMux(frame)
		if err != nil {
			return
		}
		reqWG.Add(1)
		go func(id uint64, body []byte) {
			defer reqWG.Done()
			if s.testDelay > 0 {
				time.Sleep(s.testDelay)
			}
			resp := s.dispatch(body)
			// The writer lock only serialises responses multiplexed onto
			// this one client connection; a stalled client stalls its own
			// responses, nothing else.
			writeMu.Lock()
			defer writeMu.Unlock()
			writeFrame(conn, muxBody(id, resp), s.secret) //lint:allow lockedio intentional per-connection response writer lock
		}(id, body)
	}
}

// dispatch executes one request and returns the response body.
func (s *Server) dispatch(body []byte) []byte {
	d := xdr.NewDecoder(body)
	cmd, err := d.Uint8()
	if err != nil {
		return errResponse(err)
	}
	switch cmd {
	case cmdPing:
		return okResponse(func(e *xdr.Encoder) { e.PutString(s.store.Origin()) })

	case cmdSet, cmdAdd, cmdRemove:
		uri, name, value, err := decodeTriple(d)
		if err != nil {
			return errResponse(err)
		}
		if rej := s.shardCheck(uri); rej != nil {
			return rej
		}
		var ops []Assertion
		switch cmd {
		case cmdSet:
			ops = s.store.Set(uri, name, value)
		case cmdAdd:
			ops = s.store.Add(uri, name, value)
		case cmdRemove:
			ops = s.store.Remove(uri, name, value)
		}
		s.enqueuePush(ops)
		return okResponse(nil)

	case cmdAddSigned:
		uri, name, value, err := decodeTriple(d)
		if err != nil {
			return errResponse(err)
		}
		signer, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		sig, err := d.BytesCopyMax(maxWireSig)
		if err != nil {
			return errResponse(err)
		}
		if rej := s.shardCheck(uri); rej != nil {
			return rej
		}
		ops := s.store.AddSigned(uri, name, value, signer, sig)
		s.enqueuePush(ops)
		return okResponse(nil)

	case cmdRemoveAll:
		uri, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		name, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		if rej := s.shardCheck(uri); rej != nil {
			return rej
		}
		ops := s.store.RemoveAll(uri, name)
		s.enqueuePush(ops)
		return okResponse(nil)

	case cmdGet:
		uri, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		if rej := s.shardCheck(uri); rej != nil {
			return rej
		}
		as := s.store.Get(uri)
		return okResponse(func(e *xdr.Encoder) { EncodeAssertions(e, as) })

	case cmdValues:
		uri, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		name, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		if rej := s.shardCheck(uri); rej != nil {
			return rej
		}
		return okResponse(func(e *xdr.Encoder) { e.PutStringSlice(s.store.Values(uri, name)) })

	case cmdFirst:
		uri, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		name, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		if rej := s.shardCheck(uri); rej != nil {
			return rej
		}
		v, ok := s.store.FirstValue(uri, name)
		return okResponse(func(e *xdr.Encoder) { e.PutBool(ok); e.PutString(v) })

	case cmdURIs:
		prefix, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		return okResponse(func(e *xdr.Encoder) { e.PutStringSlice(s.store.URIs(prefix)) })

	case cmdVector:
		vv := s.store.Vector()
		return okResponse(func(e *xdr.Encoder) { vv.Encode(e) })

	case cmdOpsSince:
		theirs, err := DecodeVersionVector(d)
		if err != nil {
			return errResponse(err)
		}
		max, err := d.Uint32()
		if err != nil {
			return errResponse(err)
		}
		ops := s.store.OpsSince(theirs, int(max))
		return okResponse(func(e *xdr.Encoder) { EncodeAssertions(e, ops) })

	case cmdApply:
		ops, err := DecodeAssertions(d)
		if err != nil {
			return errResponse(err)
		}
		n := s.store.ApplyRemote(ops)
		// Relay newly learned ops onward so partially connected replica
		// groups still converge quickly.
		if n > 0 {
			s.enqueuePush(ops)
		}
		return okResponse(func(e *xdr.Encoder) { e.PutUint32(uint32(n)) })

	case cmdWait:
		since, err := d.Uint64()
		if err != nil {
			return errResponse(err)
		}
		timeoutMs, err := d.Uint32()
		if err != nil {
			return errResponse(err)
		}
		// Long-polls run in per-request goroutines and must not outlive
		// the server: s.done cuts them short at shutdown.
		v := s.store.WaitVersionCancel(since, time.Duration(timeoutMs)*time.Millisecond, s.done)
		return okResponse(func(e *xdr.Encoder) { e.PutUint64(v) })

	case cmdStats:
		uris, elems, tombs := s.store.Stats()
		return okResponse(func(e *xdr.Encoder) {
			e.PutUint32(uint32(uris))
			e.PutUint32(uint32(elems))
			e.PutUint32(uint32(tombs))
		})

	case cmdCatchup:
		theirs, err := DecodeVersionVector(d)
		if err != nil {
			return errResponse(err)
		}
		max, err := d.Uint32()
		if err != nil {
			return errResponse(err)
		}
		if !s.store.CanServeTail(theirs) {
			// The requester is below our compaction floor: it must page
			// the snapshot (cmdSnapshotPage) before pulling the tail.
			return okResponse(func(e *xdr.Encoder) { e.PutUint8(catchupModeSnapshot) })
		}
		s.mTailPulls.Inc()
		ops := s.store.OpsSince(theirs, int(max))
		return okResponse(func(e *xdr.Encoder) {
			e.PutUint8(catchupModeTail)
			EncodeAssertions(e, ops)
		})

	case cmdSnapshotPage:
		afterURI, err := d.StringMax(maxWireURI)
		if err != nil {
			return errResponse(err)
		}
		max, err := d.Uint32()
		if err != nil {
			return errResponse(err)
		}
		s.mSnapPages.Inc()
		ops, next, vv := s.store.SnapshotPage(afterURI, int(max))
		return okResponse(func(e *xdr.Encoder) {
			vv.Encode(e)
			e.PutString(next)
			EncodeAssertions(e, ops)
		})
	}
	return errResponse(fmt.Errorf("unknown command %d", cmd))
}

func decodeTriple(d *xdr.Decoder) (uri, name, value string, err error) {
	if uri, err = d.StringMax(maxWireURI); err != nil {
		return
	}
	if name, err = d.StringMax(maxWireURI); err != nil {
		return
	}
	value, err = d.StringMax(maxWireValue)
	return
}

// enqueuePush queues ops for asynchronous push replication.
func (s *Server) enqueuePush(ops []Assertion) {
	if len(ops) == 0 || len(s.peers) == 0 {
		return
	}
	select {
	case s.pushCh <- ops:
	default:
		// Push queue full: anti-entropy will deliver these ops instead.
		s.mu.Lock()
		s.pushFail++
		s.mu.Unlock()
	}
}

// pushLoop forwards queued ops to every peer.
func (s *Server) pushLoop() {
	defer s.wg.Done()
	clients := make(map[string]*Client)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for {
		select {
		case <-s.done:
			return
		case ops := <-s.pushCh:
			s.mu.Lock()
			peers := append([]string(nil), s.peers...)
			s.mu.Unlock()
			for _, peer := range peers {
				if s.peerGate != nil && s.peerGate(peer) != nil {
					// Link severed (netsim partition): count it as a lost
					// push and leave repair to anti-entropy after healing.
					s.mu.Lock()
					s.pushFail++
					s.mu.Unlock()
					continue
				}
				c, ok := clients[peer]
				if !ok {
					c = NewClient([]string{peer}, s.secret)
					clients[peer] = c
				}
				ctx, cancel := context.WithTimeout(context.Background(), pushTimeout)
				_, err := c.Apply(ctx, ops)
				cancel()
				if err != nil {
					s.mu.Lock()
					s.pushFail++
					s.mu.Unlock()
				}
			}
		}
	}
}

// antiEntropyLoop periodically syncs from each peer via SyncFromPeer:
// paged op tails in the steady state, a compacted snapshot plus tail
// when this replica has fallen below a peer's compaction floor — so a
// rejoining replica converges without full history replay.
func (s *Server) antiEntropyLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.aeInterval)
	defer ticker.Stop()
	clients := make(map[string]*Client)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.mu.Lock()
			peers := append([]string(nil), s.peers...)
			s.mu.Unlock()
			for _, peer := range peers {
				if s.peerGate != nil && s.peerGate(peer) != nil {
					continue // link severed; try again next tick
				}
				c, ok := clients[peer]
				if !ok {
					c = NewClient([]string{peer}, s.secret)
					clients[peer] = c
				}
				ctx, cancel := s.syncCtx()
				_, err := SyncFromPeer(ctx, s.store, c, 0)
				cancel()
				_ = err // peer down or mid-shutdown; try again next tick
			}
		}
	}
}

// syncCtx derives a context for one anti-entropy exchange, cancelled
// when the server shuts down so a sync cannot outlive Close. The
// exchange as a whole is NOT deadline-bounded: a rejoin snapshot at
// catalog scale legitimately takes many page round trips, and cutting
// it off mid-transfer would discard the round's work before MergeVector
// could claim it. Stall protection is per RPC — SyncFromPeer bounds
// every Catchup/SnapshotPage call by pushTimeout, so a dead peer costs
// one RPC timeout, not a hung loop.
func (s *Server) syncCtx() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		select {
		case <-s.done:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// compactLoop periodically drops op-log entries more than compactKeep
// below each origin's contiguous mark. Bounding the log is what makes
// 1M+-URI catalogs viable: without it every write ever made stays
// resident and every rejoin replays it.
func (s *Server) compactLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.aeInterval * 8)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			s.store.Compact(s.compactKeep)
		}
	}
}

// ErrStopped is returned by operations on a closed server.
var ErrStopped = errors.New("rcds: server stopped")
