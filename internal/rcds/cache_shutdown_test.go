package rcds

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestWatchGoroutineShutdown proves the read-cache watch goroutine (and
// the connection read loop under it) terminates when the client closes:
// Close must return promptly even while a watch long-poll is in flight,
// and the process goroutine count must return to its pre-client level.
// goleak is not vendored, so this bounds runtime.NumGoroutine manually
// with a settle loop to absorb scheduler noise.
func TestWatchGoroutineShutdown(t *testing.T) {
	s := startTestServer(t, "leak", 0)

	baseline := runtime.NumGoroutine()

	const nClients = 8
	clients := make([]*Client, nClients)
	for i := range clients {
		c := NewClient([]string{s.Addr()}, nil, WithReadCache())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		// Force a real connection + watch establishment before closing.
		if err := c.Set(ctx, "urn:leak", "k", "v"); err != nil {
			cancel()
			t.Fatal(err)
		}
		if _, _, err := c.FirstValue(ctx, "urn:leak", "k"); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		clients[i] = c
	}

	// Each cached client runs a watch goroutine riding a long-poll up to
	// watchPoll long; Close cancels it and waits, so it must return well
	// before a full poll window elapses.
	for _, c := range clients {
		done := make(chan struct{})
		go func(c *Client) { c.Close(); close(done) }(c)
		select {
		case <-done:
		case <-time.After(watchPoll + 2*time.Second):
			t.Fatal("Close did not return before the watch poll window elapsed")
		}
	}

	// The server still holds its accept loop plus per-connection readers
	// that unwind asynchronously after the client side drops; poll until
	// the count settles back to the baseline (small slack for runtime
	// helper goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWatchLoopExitsOnClientClosed proves the watch loop takes its
// early-return path when the in-flight poll fails with ErrClientClosed
// (the connection torn down by Close racing the cancel): Close's
// wg.Wait must not dangle on a watch goroutine backing off to redial.
func TestWatchLoopExitsOnClientClosed(t *testing.T) {
	s := startTestServer(t, "leak2", 0)
	for i := 0; i < 20; i++ {
		c := NewClient([]string{s.Addr()}, nil, WithReadCache())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if _, err := c.Ping(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		done := make(chan struct{})
		go func() { c.Close(); close(done) }()
		select {
		case <-done:
		case <-time.After(watchPoll + 2*time.Second):
			t.Fatal("Close hung waiting for the watch goroutine")
		}
	}
}
