package rcds

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"snipe/internal/xdr"
)

// Persistence: SNIPE targets "long-term distributed computing
// applications and data stores", so an RC server must survive restarts
// with its catalog intact. A snapshot serialises the replica's op logs
// (from which the catalog, version vector and Lamport clock are all
// reconstructed deterministically); a restarted replica then converges
// with its peers through normal anti-entropy, catching up on whatever
// it missed while down.

// snapshotMagic guards against loading foreign files.
const snapshotMagic = "SNIPE-RC-SNAPSHOT-1"

// SaveTo writes a snapshot of the replica's state.
func (s *Store) SaveTo(w io.Writer) error {
	s.mu.Lock()
	e := xdr.NewEncoder(1 << 16)
	e.PutString(snapshotMagic)
	e.PutString(s.origin)
	e.PutUint64(s.lamport)
	e.PutUint64(s.seq)
	e.PutUint32(uint32(len(s.log)))
	for origin, l := range s.log {
		e.PutString(origin)
		e.PutUint32(uint32(len(l)))
		for _, op := range l {
			op.Encode(e)
		}
	}
	s.mu.Unlock()
	_, err := w.Write(e.Bytes())
	return err
}

// LoadStore reads a snapshot written by SaveTo and reconstructs the
// replica.
func LoadStore(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rcds: reading snapshot: %w", err)
	}
	d := xdr.NewDecoder(data)
	magic, err := d.StringMax(64)
	if err != nil || magic != snapshotMagic {
		return nil, fmt.Errorf("rcds: not an RC snapshot (magic %q, err %v)", magic, err)
	}
	origin, err := d.StringMax(maxWireURI)
	if err != nil {
		return nil, err
	}
	s := NewStore(origin)
	if s.lamport, err = d.Uint64(); err != nil {
		return nil, err
	}
	if s.seq, err = d.Uint64(); err != nil {
		return nil, err
	}
	nOrigins, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nOrigins; i++ {
		if _, err := d.StringMax(maxWireURI); err != nil { // origin name; ops carry it too
			return nil, err
		}
		nOps, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < nOps; j++ {
			op, err := DecodeAssertion(d)
			if err != nil {
				return nil, err
			}
			s.mu.Lock()
			s.recordLocked(op)
			s.applyLocked(op)
			s.mu.Unlock()
		}
	}
	// The snapshot's lamport/seq take precedence over what replay
	// inferred (replay can only raise lamport, never above the saved
	// value plus op clocks; restore the exact counters).
	d2 := xdr.NewDecoder(data)
	d2.StringMax(64)         // magic
	d2.StringMax(maxWireURI) // origin
	lamport, _ := d2.Uint64()
	seq, _ := d2.Uint64()
	s.mu.Lock()
	if lamport > s.lamport {
		s.lamport = lamport
	}
	if seq > s.seq {
		s.seq = seq
	}
	s.mu.Unlock()
	return s, nil
}

// SaveFile snapshots the store to path atomically (write to a temp
// file, then rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := s.SaveTo(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path; a missing file yields a fresh
// store with the given origin (first boot).
func LoadFile(path, origin string) (*Store, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return NewStore(origin), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadStore(bufio.NewReader(f))
}
