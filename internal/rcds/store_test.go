package rcds

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"snipe/internal/xdr"
)

func TestSetGetSingleValue(t *testing.T) {
	s := NewStore("s1")
	s.Set("urn:snipe:host:h1", AttrArch, "linux-amd64")
	v, ok := s.FirstValue("urn:snipe:host:h1", AttrArch)
	if !ok || v != "linux-amd64" {
		t.Fatalf("FirstValue = %q, %v", v, ok)
	}
	// Set replaces.
	s.Set("urn:snipe:host:h1", AttrArch, "solaris-sparc")
	vals := s.Values("urn:snipe:host:h1", AttrArch)
	if len(vals) != 1 || vals[0] != "solaris-sparc" {
		t.Fatalf("after replace: %v", vals)
	}
}

func TestAddMultiValued(t *testing.T) {
	s := NewStore("s1")
	s.Add("urn:snipe:file:f1", AttrLocation, "http://a/f1")
	s.Add("urn:snipe:file:f1", AttrLocation, "http://b/f1")
	s.Add("urn:snipe:file:f1", AttrLocation, "http://b/f1") // duplicate
	vals := s.Values("urn:snipe:file:f1", AttrLocation)
	if len(vals) != 2 {
		t.Fatalf("want 2 locations, got %v", vals)
	}
}

func TestRemove(t *testing.T) {
	s := NewStore("s1")
	s.Add("u", "n", "v1")
	s.Add("u", "n", "v2")
	ops := s.Remove("u", "n", "v1")
	if len(ops) != 1 || !ops[0].Deleted {
		t.Fatalf("Remove ops = %v", ops)
	}
	if vals := s.Values("u", "n"); len(vals) != 1 || vals[0] != "v2" {
		t.Fatalf("after remove: %v", vals)
	}
	// Removing a non-live element is a no-op.
	if ops := s.Remove("u", "n", "v1"); ops != nil {
		t.Fatalf("double remove ops = %v", ops)
	}
	if ops := s.Remove("u", "n", "never"); ops != nil {
		t.Fatalf("remove of absent ops = %v", ops)
	}
}

func TestRemoveAll(t *testing.T) {
	s := NewStore("s1")
	s.Add("u", "n", "v1")
	s.Add("u", "n", "v2")
	s.Add("u", "other", "x")
	s.RemoveAll("u", "n")
	if vals := s.Values("u", "n"); len(vals) != 0 {
		t.Fatalf("after RemoveAll: %v", vals)
	}
	if vals := s.Values("u", "other"); len(vals) != 1 {
		t.Fatalf("other attribute disturbed: %v", vals)
	}
}

func TestGetSortedAndLiveOnly(t *testing.T) {
	s := NewStore("s1")
	s.Add("u", "b", "2")
	s.Add("u", "a", "1")
	s.Add("u", "a", "0")
	s.Remove("u", "b", "2")
	as := s.Get("u")
	if len(as) != 2 {
		t.Fatalf("Get returned %d assertions", len(as))
	}
	if as[0].Name != "a" || as[0].Value != "0" || as[1].Value != "1" {
		t.Fatalf("not sorted: %v", as)
	}
}

func TestURIs(t *testing.T) {
	s := NewStore("s1")
	s.Add("urn:snipe:host:h1", "a", "1")
	s.Add("urn:snipe:host:h2", "a", "1")
	s.Add("urn:snipe:proc:p1", "a", "1")
	s.RemoveAll("urn:snipe:host:h2", "a")
	got := s.URIs("urn:snipe:host:")
	if len(got) != 1 || got[0] != "urn:snipe:host:h1" {
		t.Fatalf("URIs = %v", got)
	}
	if all := s.URIs(""); len(all) != 2 {
		t.Fatalf("all URIs = %v", all)
	}
}

func TestServerTimeStamping(t *testing.T) {
	s := NewStore("s1")
	var fake int64 = 12345
	s.SetNowFunc(func() int64 { return fake })
	ops := s.Add("u", "n", "v")
	if ops[0].ServerTime != 12345 {
		t.Fatalf("ServerTime = %d", ops[0].ServerTime)
	}
}

func TestReplicationConvergenceTwoWay(t *testing.T) {
	a, b := NewStore("a"), NewStore("b")
	opsA := a.Set("u", "n", "from-a")
	opsB := b.Set("u", "n", "from-b")
	// Exchange in both orders; replicas must converge identically.
	a.ApplyRemote(opsB)
	b.ApplyRemote(opsA)
	va, _ := a.FirstValue("u", "n")
	vb, _ := b.FirstValue("u", "n")
	if va != vb {
		t.Fatalf("diverged: a=%q b=%q", va, vb)
	}
	// Concurrent Sets with equal clocks: higher origin wins.
	if va != "from-b" {
		t.Fatalf("tiebreak: got %q, want from-b", va)
	}
}

func TestReplicationIdempotent(t *testing.T) {
	a, b := NewStore("a"), NewStore("b")
	ops := a.Add("u", "n", "v")
	if n := b.ApplyRemote(ops); n != 1 {
		t.Fatalf("first apply changed %d", n)
	}
	if n := b.ApplyRemote(ops); n != 0 {
		t.Fatalf("second apply changed %d", n)
	}
	if n := a.ApplyRemote(ops); n != 0 {
		t.Fatalf("self apply changed %d", n)
	}
}

func TestTombstoneBeatsEarlierAdd(t *testing.T) {
	a, b := NewStore("a"), NewStore("b")
	add := a.Add("u", "n", "v")
	b.ApplyRemote(add)
	del := b.Remove("u", "n", "v")
	a.ApplyRemote(del)
	if vals := a.Values("u", "n"); len(vals) != 0 {
		t.Fatalf("tombstone lost: %v", vals)
	}
	// A later re-add resurrects the element everywhere.
	re := a.Add("u", "n", "v")
	b.ApplyRemote(re)
	if vals := b.Values("u", "n"); len(vals) != 1 {
		t.Fatalf("re-add lost: %v", vals)
	}
}

func TestVersionVectorAndOpsSince(t *testing.T) {
	a := NewStore("a")
	a.Add("u", "n", "1")
	a.Add("u", "n", "2")
	a.Add("u", "n", "3")
	vv := a.Vector()
	if vv["a"] != 3 {
		t.Fatalf("vector = %v", vv)
	}
	// A peer that has seen 1 op should receive the remaining 2.
	ops := a.OpsSince(VersionVector{"a": 1}, 0)
	if len(ops) != 2 || ops[0].Seq != 2 || ops[1].Seq != 3 {
		t.Fatalf("OpsSince = %v", ops)
	}
	// max limits the batch.
	if ops := a.OpsSince(VersionVector{}, 2); len(ops) != 2 {
		t.Fatalf("limited OpsSince = %v", ops)
	}
	// A fully caught-up peer gets nothing.
	if ops := a.OpsSince(vv, 0); len(ops) != 0 {
		t.Fatalf("caught-up OpsSince = %v", ops)
	}
}

func TestOutOfOrderRemoteOps(t *testing.T) {
	a, b := NewStore("a"), NewStore("b")
	op1 := a.Add("u", "n", "1")[0]
	op2 := a.Add("u", "n", "2")[0]
	op3 := a.Add("u", "n", "3")[0]
	// Deliver 3 then 1 then 2 (push reordering).
	b.ApplyRemote([]Assertion{op3})
	if vv := b.Vector(); vv["a"] != 0 {
		t.Fatalf("vector advanced past a hole: %v", vv)
	}
	b.ApplyRemote([]Assertion{op1})
	if vv := b.Vector(); vv["a"] != 1 {
		t.Fatalf("vector after op1: %v", vv)
	}
	b.ApplyRemote([]Assertion{op2})
	if vv := b.Vector(); vv["a"] != 3 {
		t.Fatalf("vector after hole filled: %v", vv)
	}
	// Catalog saw all three regardless of order.
	if vals := b.Values("u", "n"); len(vals) != 3 {
		t.Fatalf("values = %v", vals)
	}
	// b can now serve a's full log to a third replica.
	c := NewStore("c")
	c.ApplyRemote(b.OpsSince(VersionVector{}, 0))
	if vals := c.Values("u", "n"); len(vals) != 3 {
		t.Fatalf("relay values = %v", vals)
	}
}

func TestWaitVersion(t *testing.T) {
	s := NewStore("s1")
	v0 := s.Version()
	done := make(chan uint64, 1)
	go func() { done <- s.WaitVersion(v0, 2*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	s.Add("u", "n", "v")
	select {
	case v := <-done:
		if v <= v0 {
			t.Fatalf("version did not advance: %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitVersion did not wake")
	}
	// Timeout path.
	start := time.Now()
	v := s.WaitVersion(s.Version(), 50*time.Millisecond)
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("WaitVersion returned too early")
	}
	if v != s.Version() {
		t.Fatalf("version mismatch: %d", v)
	}
}

func TestSubscribe(t *testing.T) {
	s := NewStore("s1")
	ch := make(chan Event, 16)
	id := s.Subscribe("urn:snipe:proc:", ch)
	s.Add("urn:snipe:proc:p1", AttrState, "running")
	s.Add("urn:snipe:host:h1", AttrLoad, "0.5") // outside prefix
	select {
	case ev := <-ch:
		if ev.Assertion.URI != "urn:snipe:proc:p1" {
			t.Fatalf("event = %v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event")
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected event: %v", ev)
	default:
	}
	s.Unsubscribe(id)
	s.Add("urn:snipe:proc:p2", AttrState, "running")
	select {
	case ev := <-ch:
		t.Fatalf("event after unsubscribe: %v", ev)
	default:
	}
}

func TestStats(t *testing.T) {
	s := NewStore("s1")
	s.Add("u1", "n", "v")
	s.Add("u2", "n", "v")
	s.Remove("u2", "n", "v")
	uris, elems, tombs := s.Stats()
	if uris != 2 || elems != 1 || tombs != 1 {
		t.Fatalf("Stats = %d %d %d", uris, elems, tombs)
	}
}

func TestAssertionEncodeDecode(t *testing.T) {
	a := Assertion{
		URI: "urn:x", Name: "n", Value: "v", Clock: 7, Origin: "s1",
		Seq: 3, Deleted: true, ServerTime: -42,
		Signature: []byte{1, 2}, Signer: "alice",
	}
	e := xdr.NewEncoder(0)
	a.Encode(e)
	d := xdr.NewDecoder(e.Bytes())
	got, err := DecodeAssertion(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.URI != a.URI || got.Clock != 7 || !got.Deleted || got.ServerTime != -42 ||
		got.Signer != "alice" || len(got.Signature) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestVersionVectorDominates(t *testing.T) {
	v := VersionVector{"a": 3, "b": 1}
	w := VersionVector{"a": 2}
	if !v.Dominates(w) {
		t.Fatal("v should dominate w")
	}
	if w.Dominates(v) {
		t.Fatal("w should not dominate v")
	}
	if !v.Dominates(VersionVector{}) {
		t.Fatal("anything dominates empty")
	}
}

func TestSupersedesOrdering(t *testing.T) {
	base := Assertion{Clock: 5, Origin: "m", Seq: 1}
	cases := []struct {
		a    Assertion
		want bool
	}{
		{Assertion{Clock: 6, Origin: "a", Seq: 1}, true},
		{Assertion{Clock: 4, Origin: "z", Seq: 9}, false},
		{Assertion{Clock: 5, Origin: "z", Seq: 1}, true},
		{Assertion{Clock: 5, Origin: "a", Seq: 1}, false},
		{Assertion{Clock: 5, Origin: "m", Seq: 2}, true},
		{Assertion{Clock: 5, Origin: "m", Seq: 1}, false},
	}
	for i, c := range cases {
		if got := c.a.Supersedes(&base); got != c.want {
			t.Errorf("case %d: Supersedes = %v, want %v", i, got, c.want)
		}
	}
}

// Property: N replicas applying a random interleaving of each other's
// ops all converge to the same catalog (strong eventual consistency).
func TestQuickConvergence(t *testing.T) {
	type opSpec struct {
		Replica uint8
		URI     uint8
		Name    uint8
		Value   uint8
		Kind    uint8 // 0 set, 1 add, 2 remove
	}
	f := func(specs []opSpec, order []uint16) bool {
		const nReplicas = 3
		stores := make([]*Store, nReplicas)
		for i := range stores {
			stores[i] = NewStore(fmt.Sprintf("r%d", i))
		}
		var allOps []Assertion
		for _, sp := range specs {
			st := stores[int(sp.Replica)%nReplicas]
			uri := fmt.Sprintf("u%d", sp.URI%3)
			name := fmt.Sprintf("n%d", sp.Name%2)
			value := fmt.Sprintf("v%d", sp.Value%4)
			var ops []Assertion
			switch sp.Kind % 3 {
			case 0:
				ops = st.Set(uri, name, value)
			case 1:
				ops = st.Add(uri, name, value)
			case 2:
				ops = st.Remove(uri, name, value)
			}
			allOps = append(allOps, ops...)
		}
		// Deliver every op to every replica in a permuted order (ops a
		// replica already has are ignored by ApplyRemote's dedup).
		perm := make([]Assertion, len(allOps))
		copy(perm, allOps)
		for i := range perm {
			if len(order) == 0 {
				break
			}
			j := int(order[i%len(order)]) % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for _, st := range stores {
			st.ApplyRemote(perm)
		}
		// All replicas must agree on every URI's live set.
		for uri := 0; uri < 3; uri++ {
			u := fmt.Sprintf("u%d", uri)
			ref := stores[0].Get(u)
			for _, st := range stores[1:] {
				got := st.Get(u)
				if len(got) != len(ref) {
					return false
				}
				for i := range ref {
					if got[i].Name != ref[i].Name || got[i].Value != ref[i].Value {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: assertions round-trip through the wire encoding.
func TestQuickAssertionRoundTrip(t *testing.T) {
	f := func(uri, name, value, origin string, clock, seq uint64, deleted bool, st int64) bool {
		a := Assertion{URI: uri, Name: name, Value: value, Origin: origin,
			Clock: clock, Seq: seq, Deleted: deleted, ServerTime: st}
		e := xdr.NewEncoder(0)
		a.Encode(e)
		got, err := DecodeAssertion(xdr.NewDecoder(e.Bytes()))
		return err == nil && got.URI == uri && got.Name == name &&
			got.Value == value && got.Origin == origin && got.Clock == clock &&
			got.Seq == seq && got.Deleted == deleted && got.ServerTime == st
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStoreSet(b *testing.B) {
	s := NewStore("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set("urn:snipe:host:h1", AttrLoad, "0.5")
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore("bench")
	for i := 0; i < 10; i++ {
		s.Add("u", fmt.Sprintf("n%d", i), "v")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get("u")
	}
}
