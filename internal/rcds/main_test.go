package rcds

import (
	"testing"

	"snipe/internal/testutil"
)

// TestMain fails the package if any goroutine is still alive after the
// tests pass: endpoints, daemons and watchers must wind down when their
// owners close.
func TestMain(m *testing.M) { testutil.Main(m) }
