package rcds

import (
	"fmt"

	"snipe/internal/xdr"
)

// Well-known assertion names used throughout SNIPE (paper §5.2). The
// metadata schema is open — "little is hidden in internal data
// structures" — so these are conventions, not a closed set.
const (
	// AttrHostDaemonURL is the URL of a host's SNIPE daemon.
	AttrHostDaemonURL = "host-daemon-url"
	// AttrCPUs describes the number and type of CPUs on a host.
	AttrCPUs = "cpus"
	// AttrArch is a host's architecture / data format identifier.
	AttrArch = "arch"
	// AttrInterface describes one network interface (repeatable).
	AttrInterface = "interface"
	// AttrBroker is the URL of a broker managing a host (repeatable).
	AttrBroker = "broker"
	// AttrPublicKey is a principal's public key (hex).
	AttrPublicKey = "public-key"
	// AttrCommAddr is a process's communications address (repeatable).
	AttrCommAddr = "comm-addr"
	// AttrNotify is a member of a process's notify list (repeatable).
	AttrNotify = "notify"
	// AttrState is a task/process state.
	AttrState = "state"
	// AttrLocation is a replica location for a file/service (repeatable).
	AttrLocation = "location"
	// AttrMcastRouter is a multicast router URL for a group (repeatable).
	AttrMcastRouter = "mcast-router"
	// AttrLoad is a host's load average, published by its daemon.
	AttrLoad = "load"
	// AttrHeartbeat is a host daemon's liveness heartbeat: a
	// monotonically increasing sequence number, a wall-clock timestamp
	// and the current load in one value (see internal/liveness), so one
	// replicated write per beat carries both liveness and placement
	// input. A trailing "down" marks a clean shutdown tombstone.
	AttrHeartbeat = "heartbeat"
	// AttrMemory is a host's available memory in MB.
	AttrMemory = "memory-mb"
	// AttrSupervisorLIFN is a process's supervisor LIFN (§5.2.3).
	AttrSupervisorLIFN = "supervisor-lifn"
	// AttrCodeHash is the content hash of a mobile code image.
	AttrCodeHash = "code-hash"
	// AttrCodeSig is the signature over a mobile code image.
	AttrCodeSig = "code-sig"
	// AttrPlayground advertises a host's playground capabilities.
	AttrPlayground = "playground"
	// AttrProtocol lists a file server's supported access protocols.
	AttrProtocol = "protocol"
	// AttrServiceReplica is one replica's endpoint URN, published under
	// a service-group URN (repeatable; see internal/service). Load and
	// liveness for the replica ride its host's heartbeat, so joining a
	// group costs exactly one extra assertion.
	AttrServiceReplica = "service-replica"
	// AttrGroupDigest is a gossip group's liveness digest, published by
	// the group's elected reporter under the group's liveness URI: one
	// catalog assertion per group per interval carrying every member's
	// incarnation, sequence, state and load (see internal/gossip). It
	// replaces per-host heartbeat writes on the catalog hot path.
	AttrGroupDigest = "group-digest"
	// AttrGossipGroup records which gossip group a host belongs to, as
	// "<group>/<groups>", written once by its daemon at startup so load
	// and liveness readers can find the host's digest.
	AttrGossipGroup = "gossip-group"
)

// Assertion is one replicated metadata element: for resource URI, the
// pair Name=Value, stamped with the update's Lamport clock and origin.
// Deleted assertions are tombstones kept for convergence. ServerTime is
// the wall-clock time (Unix nanoseconds) at which the accepting RC
// server stamped the update — the paper's "automatic time stamping of
// metadata by the RC servers" that lets temporally disjoint tasks judge
// the age of what they read (§3.1). It is informational and plays no
// part in conflict resolution.
type Assertion struct {
	URI        string
	Name       string
	Value      string
	Clock      uint64 // Lamport clock of the update
	Origin     string // ID of the server that accepted the update
	Seq        uint64 // per-origin sequence number (op log position)
	Deleted    bool
	ServerTime int64
	Signature  []byte // optional detached signature over (URI,Name,Value)
	Signer     string // principal that produced Signature
}

// elemKey identifies an element within a URI's catalog. RCDS attributes
// are multi-valued (a file has many locations, a process many comm
// addresses), so identity is the (name, value) pair.
type elemKey struct {
	name  string
	value string
}

// Supersedes reports whether a beats b under last-writer-wins order:
// higher Lamport clock wins; equal clocks break ties by origin so that
// all replicas pick the same winner.
func (a *Assertion) Supersedes(b *Assertion) bool {
	if a.Clock != b.Clock {
		return a.Clock > b.Clock
	}
	if a.Origin != b.Origin {
		return a.Origin > b.Origin
	}
	// Same origin, same clock: the later sequence number wins.
	return a.Seq > b.Seq
}

// SignedBytes returns the canonical byte string a detached assertion
// signature covers.
func (a *Assertion) SignedBytes() []byte {
	e := xdr.NewEncoder(len(a.URI) + len(a.Name) + len(a.Value) + 16)
	e.PutString(a.URI)
	e.PutString(a.Name)
	e.PutString(a.Value)
	return e.Bytes()
}

// String renders the assertion for logs.
func (a *Assertion) String() string {
	tomb := ""
	if a.Deleted {
		tomb = " (deleted)"
	}
	return fmt.Sprintf("%s: %s=%q @%d/%s#%d%s", a.URI, a.Name, a.Value, a.Clock, a.Origin, a.Seq, tomb)
}

// Encode writes the assertion to e.
func (a *Assertion) Encode(e *xdr.Encoder) {
	e.PutString(a.URI)
	e.PutString(a.Name)
	e.PutString(a.Value)
	e.PutUint64(a.Clock)
	e.PutString(a.Origin)
	e.PutUint64(a.Seq)
	e.PutBool(a.Deleted)
	e.PutInt64(a.ServerTime)
	e.PutBytes(a.Signature)
	e.PutString(a.Signer)
}

// Per-field wire-decode caps handed to the xdr *Max decoders: URIs,
// names and origins are short; values are bounded well below the frame
// limit; a signature is an ed25519 signature plus slack.
const (
	maxWireURI   = 4096
	maxWireValue = 1 << 20
	maxWireSig   = 256
	maxWireItems = 64 << 10 // list responses: values, URIs, names
)

// DecodeAssertion reads an assertion written by Encode.
func DecodeAssertion(d *xdr.Decoder) (Assertion, error) {
	var a Assertion
	var err error
	if a.URI, err = d.StringMax(maxWireURI); err != nil {
		return a, err
	}
	if a.Name, err = d.StringMax(maxWireURI); err != nil {
		return a, err
	}
	if a.Value, err = d.StringMax(maxWireValue); err != nil {
		return a, err
	}
	if a.Clock, err = d.Uint64(); err != nil {
		return a, err
	}
	if a.Origin, err = d.StringMax(maxWireURI); err != nil {
		return a, err
	}
	if a.Seq, err = d.Uint64(); err != nil {
		return a, err
	}
	if a.Deleted, err = d.Bool(); err != nil {
		return a, err
	}
	if a.ServerTime, err = d.Int64(); err != nil {
		return a, err
	}
	if a.Signature, err = d.BytesCopyMax(maxWireSig); err != nil {
		return a, err
	}
	if len(a.Signature) == 0 {
		a.Signature = nil
	}
	if a.Signer, err = d.StringMax(maxWireURI); err != nil {
		return a, err
	}
	return a, nil
}

// EncodeAssertions writes a length-prefixed assertion list.
func EncodeAssertions(e *xdr.Encoder, as []Assertion) {
	e.PutUint32(uint32(len(as)))
	for i := range as {
		as[i].Encode(e)
	}
}

// DecodeAssertions reads a list written by EncodeAssertions.
func DecodeAssertions(d *xdr.Decoder) ([]Assertion, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	out := make([]Assertion, 0, minInt(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		a, err := DecodeAssertion(d)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// VersionVector summarises how much of each origin's op log a replica
// holds: origin → highest contiguous sequence number applied.
type VersionVector map[string]uint64

// Copy returns an independent copy of the vector.
func (v VersionVector) Copy() VersionVector {
	out := make(VersionVector, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Dominates reports whether v has seen everything in w.
func (v VersionVector) Dominates(w VersionVector) bool {
	for origin, seq := range w {
		if v[origin] < seq {
			return false
		}
	}
	return true
}

// Encode writes the vector.
func (v VersionVector) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(len(v)))
	for origin, seq := range v {
		e.PutString(origin)
		e.PutUint64(seq)
	}
}

// DecodeVersionVector reads a vector written by Encode.
func DecodeVersionVector(d *xdr.Decoder) (VersionVector, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	// Each entry costs at least 12 encoded bytes (string length + u64);
	// fail fast on hostile counts before the map preallocation below.
	if int64(n)*12 > int64(d.Remaining()) {
		return nil, fmt.Errorf("%w: vector count %d exceeds remaining %d bytes",
			xdr.ErrStringTooLong, n, d.Remaining())
	}
	v := make(VersionVector, minInt(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		origin, err := d.StringMax(maxWireURI)
		if err != nil {
			return nil, err
		}
		seq, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		v[origin] = seq
	}
	return v, nil
}
