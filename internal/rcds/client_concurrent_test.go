package rcds

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"snipe/internal/xdr"
)

// startTestServer starts a server over a fresh store with the given
// per-dispatch delay (0 = none) and registers cleanup.
func startTestServer(t testing.TB, origin string, delay time.Duration) *Server {
	t.Helper()
	s := NewServer(NewStore(origin))
	s.testDelay = delay
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// ctxTimeout returns a context bounded by the given duration string,
// canceled at test cleanup — the idiom for long-poll calls that used to
// take an explicit timeout argument.
func ctxTimeout(t testing.TB, d string) context.Context {
	t.Helper()
	dur, err := time.ParseDuration(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	t.Cleanup(cancel)
	return ctx
}

// TestRequestOverlap proves out-of-order responses on one connection:
// a Wait long-poll (the delayed response) is outstanding while a Get
// issued after it on the same connection completes first.
func TestRequestOverlap(t *testing.T) {
	s := startTestServer(t, "overlap", 0)
	c := NewClient([]string{s.Addr()}, nil)
	defer c.Close()

	if err := c.Set(context.Background(), "urn:x", "k", "v"); err != nil {
		t.Fatal(err)
	}
	ver, err := c.Wait(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	waitDone := make(chan error, 1)
	go func() {
		// Long-poll that cannot complete until its server-side timeout:
		// nothing writes while it is pending.
		_, err := c.Wait(context.Background(), ver, 1500*time.Millisecond)
		waitDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the long-poll reach the server

	start := time.Now()
	if _, err := c.Get(context.Background(), "urn:x"); err != nil {
		t.Fatalf("get during long-poll: %v", err)
	}
	elapsed := time.Since(start)

	select {
	case err := <-waitDone:
		t.Fatalf("long-poll finished before the later Get (err=%v)", err)
	default:
	}
	if elapsed > 700*time.Millisecond {
		t.Fatalf("get took %v; it was blocked behind the long-poll", elapsed)
	}
	if err := <-waitDone; err != nil {
		t.Fatalf("long-poll: %v", err)
	}
	// Single replica, no failovers: everything rode one connection.
	snap := c.MetricsSnapshot()
	if snap.Counters["failovers"] != 0 {
		t.Fatalf("failovers = %d, want 0", snap.Counters["failovers"])
	}
}

// TestConcurrentLookupsOneConnection overlaps Get and Values from many
// goroutines over the single shared connection.
func TestConcurrentLookupsOneConnection(t *testing.T) {
	s := startTestServer(t, "mux", 2*time.Millisecond)
	c := NewClient([]string{s.Addr()}, nil)
	defer c.Close()

	for i := 0; i < 4; i++ {
		if err := c.Set(context.Background(), fmt.Sprintf("urn:m%d", i), "k", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 16
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			uri := fmt.Sprintf("urn:m%d", g%4)
			want := fmt.Sprintf("v%d", g%4)
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					as, err := c.Get(context.Background(), uri)
					if err != nil || len(as) != 1 || as[0].Value != want {
						errs <- fmt.Errorf("get %s: %v %v", uri, as, err)
						return
					}
				} else {
					vals, err := c.Values(context.Background(), uri, "k")
					if err != nil || len(vals) != 1 || vals[0] != want {
						errs <- fmt.Errorf("values %s: %v %v", uri, vals, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if f := c.MetricsSnapshot().Counters["failovers"]; f != 0 {
		t.Fatalf("failovers = %d, want 0 (single healthy replica)", f)
	}
}

// TestFailoverMidStream kills the replica serving a batch of in-flight
// requests; the unanswered requests are re-issued against the next
// replica and every caller still gets its answer.
func TestFailoverMidStream(t *testing.T) {
	s0 := NewServer(NewStore("f0"))
	s0.testDelay = 150 * time.Millisecond // holds requests in flight
	if err := s0.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	s1 := startTestServer(t, "f1", 0)

	// Both replicas hold the value (as after anti-entropy).
	s0.Store().Set("urn:f", "k", "v")
	s1.Store().Set("urn:f", "k", "v")

	c := NewClient([]string{s0.Addr(), s1.Addr()}, nil)
	defer c.Close()

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			v, ok, err := c.FirstValue(ctx, "urn:f", "k")
			if err != nil || !ok || v != "v" {
				errs <- fmt.Errorf("first value: %q %v %v", v, ok, err)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // requests are now parked in s0's delay
	s0.Close()                        // kill the replica mid-stream
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if f := c.MetricsSnapshot().Counters["failovers"]; f == 0 {
		t.Fatal("no failover recorded despite a killed replica")
	}
}

// TestReadCacheCoherence checks the coherence rule: after a remote
// write is observed via the Wait sequence, the next FirstValue returns
// the new value; between writes, reads are served from cache.
func TestReadCacheCoherence(t *testing.T) {
	s := startTestServer(t, "coh", 0)
	writer := NewClient([]string{s.Addr()}, nil)
	defer writer.Close()
	reader := NewClient([]string{s.Addr()}, nil, WithReadCache())
	defer reader.Close()

	if err := writer.Set(context.Background(), "urn:c", "k", "v1"); err != nil {
		t.Fatal(err)
	}

	// The cache serves only after the watch loop has established its
	// baseline sequence; poll until a repeated read registers a hit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok, err := reader.FirstValue(context.Background(), "urn:c", "k")
		if err != nil || !ok || v != "v1" {
			t.Fatalf("read v1: %q %v %v", v, ok, err)
		}
		if reader.MetricsSnapshot().Counters["cache_hits"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cache never started serving hits")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Remote write by a different client: invisible to the reader's
	// local invalidation, only the watch can deliver it.
	if err := writer.Set(context.Background(), "urn:c", "k", "v2"); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		v, _, err := reader.FirstValue(context.Background(), "urn:c", "k")
		if err != nil {
			t.Fatal(err)
		}
		if v == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cached value never converged: still %q", v)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Local writes invalidate immediately (read-your-writes).
	if err := reader.Set(context.Background(), "urn:c", "k", "v3"); err != nil {
		t.Fatal(err)
	}
	if v, _, err := reader.FirstValue(context.Background(), "urn:c", "k"); err != nil || v != "v3" {
		t.Fatalf("read-your-writes: %q %v", v, err)
	}

	snap := reader.MetricsSnapshot()
	for _, key := range []string{"cache_hits", "cache_misses", "requests", "failovers"} {
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("metrics snapshot missing %q: %v", key, snap.Counters)
		}
	}
	if snap.Counters["cache_hits"] == 0 || snap.Counters["cache_misses"] == 0 {
		t.Fatalf("cache counters not moving: %v", snap.Counters)
	}
}

// serialClient mimics the seed client's wire behaviour: one request at
// a time per connection, the next request waiting for the previous
// response. It speaks the current mux framing so both sides of the
// throughput comparison share transport and server costs.
type serialClient struct {
	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
}

func dialSerial(t testing.TB, addr string) *serialClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &serialClient{conn: conn}
}

func (sc *serialClient) firstValue(uri, name string) (string, bool, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.nextID++
	req := request(cmdFirst, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	})
	if err := writeFrame(sc.conn, muxBody(sc.nextID, req), nil); err != nil {
		return "", false, err
	}
	frame, err := readFrame(sc.conn, nil)
	if err != nil {
		return "", false, err
	}
	_, body, err := splitMux(frame)
	if err != nil {
		return "", false, err
	}
	d, err := parseResponse(body)
	if err != nil {
		return "", false, err
	}
	ok, err := d.Bool()
	if err != nil {
		return "", false, err
	}
	v, err := d.String()
	return v, ok, err
}

// runLookups fans out callers goroutines, each performing iters lookups
// through fn, and returns the wall-clock time for all to finish.
func runLookups(t testing.TB, callers, iters int, fn func() error) time.Duration {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	start := time.Now()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				if err := fn(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return elapsed
}

// TestMuxThroughputSpeedup is the acceptance benchmark in test form:
// with 8 concurrent callers against a server with a fixed per-request
// service time, the multiplexed client must deliver at least 4x the
// lookup throughput of the seed-style serial client.
func TestMuxThroughputSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based comparison")
	}
	const delay = 5 * time.Millisecond
	const callers = 8
	const iters = 20

	s := startTestServer(t, "thr", delay)
	s.Store().Set("urn:t", "k", "v")

	serial := dialSerial(t, s.Addr())
	serialTime := runLookups(t, callers, iters, func() error {
		_, _, err := serial.firstValue("urn:t", "k")
		return err
	})

	mux := NewClient([]string{s.Addr()}, nil)
	defer mux.Close()
	muxTime := runLookups(t, callers, iters, func() error {
		_, _, err := mux.FirstValue(context.Background(), "urn:t", "k")
		return err
	})

	speedup := float64(serialTime) / float64(muxTime)
	t.Logf("serial=%v mux=%v speedup=%.1fx", serialTime, muxTime, speedup)
	if speedup < 4 {
		t.Fatalf("mux speedup %.1fx < 4x (serial=%v mux=%v)", speedup, serialTime, muxTime)
	}
}

// BenchmarkCatalogLookup8 measures 8-way concurrent FirstValue
// throughput through the multiplexed client.
func BenchmarkCatalogLookup8(b *testing.B) {
	s := startTestServer(b, "bench-mux", 0)
	s.Store().Set("urn:b", "k", "v")
	c := NewClient([]string{s.Addr()}, nil)
	defer c.Close()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := c.FirstValue(context.Background(), "urn:b", "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCatalogLookupSerial8 is the seed-style baseline: 8 callers
// serialised over one connection.
func BenchmarkCatalogLookupSerial8(b *testing.B) {
	s := startTestServer(b, "bench-serial", 0)
	s.Store().Set("urn:b", "k", "v")
	sc := dialSerial(b, s.Addr())
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := sc.firstValue("urn:b", "k"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
