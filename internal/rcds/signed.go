package rcds

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"

	"snipe/internal/seckey"
)

// Signed assertions implement RCDS's end-to-end metadata authenticity
// (§2.1): "subsets of metadata can also be cryptographically signed …
// and the signatures provided to RCDS clients", so a client can verify
// a value even though it arrived through an untrusted replica chain.
// The signer's public key is itself published as RC metadata
// (AttrPublicKey of the signer's URN), mirroring §4's key distribution.

// ErrUnverified indicates an assertion whose signature is missing or
// does not verify.
var ErrUnverified = errors.New("rcds: assertion signature unverified")

// SignAssertionValue produces the detached signature for a
// (uri, name, value) triple.
func SignAssertionValue(signer *seckey.Principal, uri, name, value string) []byte {
	a := Assertion{URI: uri, Name: name, Value: value}
	return signer.Sign(a.SignedBytes())
}

// VerifyAssertion checks an assertion's detached signature under pub.
func VerifyAssertion(a *Assertion, pub ed25519.PublicKey) error {
	if len(a.Signature) == 0 {
		return fmt.Errorf("%w: %s %s has no signature", ErrUnverified, a.URI, a.Name)
	}
	if !seckey.Verify(pub, a.SignedBytes(), a.Signature) {
		return fmt.Errorf("%w: %s %s signed by %q", ErrUnverified, a.URI, a.Name, a.Signer)
	}
	return nil
}

// AddSignedBy signs and publishes one assertion in a single step.
func (c *Client) AddSignedBy(ctx context.Context, signer *seckey.Principal, uri, name, value string) error {
	sig := SignAssertionValue(signer, uri, name, value)
	return c.AddSigned(ctx, uri, name, value, signer.Name, sig)
}

// PublishKey publishes a principal's public key as its RC metadata, so
// verifiers can find it (§4: "each principal's public key is stored as
// an attribute of that principal's RC metadata").
func (c *Client) PublishKey(ctx context.Context, p *seckey.Principal) error {
	return c.Set(ctx, p.Name, AttrPublicKey, p.PublicHex())
}

// VerifiedValues returns the values of (uri, name) whose signatures
// verify under their signers' published keys, ignoring unsigned or
// unverifiable ones. The trust decision — whether a given signer is
// acceptable — is the caller's, applied to the returned signer names.
func (c *Client) VerifiedValues(ctx context.Context, uri, name string) (values []string, signers []string, err error) {
	as, err := c.Get(ctx, uri)
	if err != nil {
		return nil, nil, err
	}
	for i := range as {
		a := &as[i]
		if a.Name != name || len(a.Signature) == 0 || a.Signer == "" {
			continue
		}
		keyHex, ok, err := c.FirstValue(ctx, a.Signer, AttrPublicKey)
		if err != nil || !ok {
			continue
		}
		pub, err := seckey.ParsePublicHex(keyHex)
		if err != nil {
			continue
		}
		if VerifyAssertion(a, pub) != nil {
			continue
		}
		values = append(values, a.Value)
		signers = append(signers, a.Signer)
	}
	return values, signers, nil
}
