package rcds

import (
	"context"
	"fmt"

	"snipe/internal/xdr"
)

// defaultSyncPage is the per-RPC op bound for catch-up pulls: large
// enough to amortize round trips, small enough that a page encodes far
// below the frame limit.
const defaultSyncPage = 8192

// Catchup asks the server for ops the holder of vector theirs is
// missing. It returns catchupModeTail with up to maxOps assertions when
// the server's log can serve the whole gap, or catchupModeSnapshot
// (with no ops) when theirs is below the server's compaction floor and
// the requester must page the snapshot first. Replication-internal;
// SyncFromPeer drives it.
func (c *Client) Catchup(ctx context.Context, theirs VersionVector, maxOps int) (mode uint8, ops []Assertion, err error) {
	d, err := c.roundTrip(ctx, c.seedGroup(), request(cmdCatchup, func(e *xdr.Encoder) {
		theirs.Encode(e)
		e.PutUint32(uint32(maxOps))
	}))
	if err != nil {
		return 0, nil, err
	}
	if mode, err = d.Uint8(); err != nil {
		return 0, nil, err
	}
	switch mode {
	case catchupModeSnapshot:
		return mode, nil, nil
	case catchupModeTail:
		ops, err = DecodeAssertions(d)
		return mode, ops, err
	default:
		return 0, nil, fmt.Errorf("%w: catchup mode %d", ErrServer, mode)
	}
}

// SnapshotPage pulls one page of the server's compacted catalog dump:
// every element (winners and tombstones) for URIs after afterURI, the
// next-page cursor ("" when complete), and the server's version vector.
// Replication-internal; SyncFromPeer drives it.
func (c *Client) SnapshotPage(ctx context.Context, afterURI string, maxOps int) (ops []Assertion, next string, vv VersionVector, err error) {
	d, err := c.roundTrip(ctx, c.seedGroup(), request(cmdSnapshotPage, func(e *xdr.Encoder) {
		e.PutString(afterURI)
		e.PutUint32(uint32(maxOps))
	}))
	if err != nil {
		return nil, "", nil, err
	}
	if vv, err = DecodeVersionVector(d); err != nil {
		return nil, "", nil, err
	}
	if next, err = d.StringMax(maxWireURI); err != nil {
		return nil, "", nil, err
	}
	ops, err = DecodeAssertions(d)
	return ops, next, vv, err
}

// SyncResult summarises one SyncFromPeer run.
type SyncResult struct {
	TailOps      int  // ops applied via incremental tails
	SnapshotOps  int  // elements installed via snapshot pages
	Snapshots    int  // snapshot transfers performed (0 = pure tail)
	UsedSnapshot bool // at least one round went through the snapshot path
}

// SyncFromPeer brings store up to date from the replica behind peer:
// incremental op tails when the peer's log covers the gap, a paged
// compacted snapshot plus the tail since its base vector when it does
// not. This is the rejoin path — a replica that was down (or a fresh
// one joining the group) converges in O(catalog) transfers instead of
// replaying the full write history — and the periodic anti-entropy
// pull, which in the steady state takes the tail branch with a
// near-empty gap.
//
// Each RPC is individually bounded by pushTimeout so a stalled peer
// fails the sync promptly, but the exchange as a whole runs as long as
// pages keep arriving: a catalog-scale snapshot is many round trips,
// and an overall deadline would abandon the transfer before MergeVector
// could bank it (the next round would restart from page one, forever).
func SyncFromPeer(ctx context.Context, store *Store, peer *Client, pageSize int) (SyncResult, error) {
	if pageSize <= 0 {
		pageSize = defaultSyncPage
	}
	var res SyncResult
	// A snapshot round strictly raises our vector to the peer's base,
	// so two rounds only happen when compaction advances the peer's
	// floor mid-sync; more than a few means we are being outrun.
	for snapshots := 0; ; {
		rctx, rcancel := context.WithTimeout(ctx, pushTimeout)
		mode, ops, err := peer.Catchup(rctx, store.Vector(), pageSize)
		rcancel()
		if err != nil {
			return res, err
		}
		if mode == catchupModeTail {
			if len(ops) == 0 {
				return res, nil // converged
			}
			store.ApplyRemote(ops)
			res.TailOps += len(ops)
			if len(ops) < pageSize {
				return res, nil
			}
			continue
		}
		// Snapshot path: page the compacted dump, then merge the base
		// vector and loop back into tail mode for what was written
		// since the first page.
		snapshots++
		if snapshots > 3 {
			return res, fmt.Errorf("rcds: sync with %v: compaction outran %d snapshot rounds", peer.Servers(), snapshots-1)
		}
		res.Snapshots++
		res.UsedSnapshot = true
		var base VersionVector
		after := ""
		for {
			rctx, rcancel := context.WithTimeout(ctx, pushTimeout)
			page, next, vv, err := peer.SnapshotPage(rctx, after, pageSize)
			rcancel()
			if err != nil {
				return res, err
			}
			if base == nil {
				// The first page's vector is the base: anything written
				// after it is covered by the tail pull even if a later
				// page already carried it (the merge is idempotent).
				base = vv
			}
			store.InstallSnapshotOps(page)
			res.SnapshotOps += len(page)
			if next == "" {
				break
			}
			after = next
		}
		if base != nil {
			store.MergeVector(base)
		}
	}
}
