//go:build go1.18

package rcds

import (
	"bytes"
	"testing"

	"snipe/internal/xdr"
)

func fuzzAssertionBytes(a Assertion) []byte {
	e := xdr.NewEncoder(128)
	a.Encode(e)
	return e.Bytes()
}

func FuzzDecodeAssertion(f *testing.F) {
	f.Add(fuzzAssertionBytes(Assertion{
		URI: "urn:snipe:host:a", Name: "comm-addr", Value: "tcp://h:1",
		Clock: 7, Origin: "srv1", Seq: 3,
	}))
	f.Add(fuzzAssertionBytes(Assertion{
		URI: "urn:x", Name: "n", Value: "", Deleted: true, ServerTime: -1,
		Signature: bytes.Repeat([]byte{1}, 64), Signer: "alice",
	}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := DecodeAssertion(xdr.NewDecoder(b))
		if err != nil {
			return
		}
		again, err := DecodeAssertion(xdr.NewDecoder(fuzzAssertionBytes(a)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.URI != a.URI || again.Name != a.Name || again.Value != a.Value ||
			again.Clock != a.Clock || again.Origin != a.Origin || again.Seq != a.Seq ||
			again.Deleted != a.Deleted || !bytes.Equal(again.Signature, a.Signature) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", a, again)
		}
	})
}

func FuzzDecodeAssertions(f *testing.F) {
	e := xdr.NewEncoder(256)
	EncodeAssertions(e, []Assertion{
		{URI: "urn:a", Name: "n", Value: "v", Clock: 1, Origin: "o", Seq: 1},
		{URI: "urn:b", Name: "m", Value: "w", Clock: 2, Origin: "o", Seq: 2},
	})
	f.Add(e.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // hostile count
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeAssertions(xdr.NewDecoder(b))
	})
}

func FuzzDecodeVersionVector(f *testing.F) {
	vv := VersionVector{"srv1": 10, "srv2": 3}
	e := xdr.NewEncoder(64)
	vv.Encode(e)
	f.Add(e.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // hostile count, no body
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := DecodeVersionVector(xdr.NewDecoder(b))
		if err != nil {
			return
		}
		e := xdr.NewEncoder(64)
		v.Encode(e)
		again, err := DecodeVersionVector(xdr.NewDecoder(e.Bytes()))
		if err != nil || !again.Dominates(v) || !v.Dominates(again) {
			t.Fatalf("vector round-trip mismatch: %v vs %v (err %v)", v, again, err)
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	f.Add(okResponse(func(e *xdr.Encoder) { e.PutString("pong") }))
	f.Add(errResponse(ErrServer))
	f.Add(wrongShardResponse(2, 7))
	f.Add([]byte{statusWrongShard, 0, 0, 0, 1}) // truncated redirect
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 0, 4, 'j', 'u', 'n', 'k'})
	f.Fuzz(func(t *testing.T, b []byte) {
		// Every status except OK yields an error: statusErr and
		// statusWrongShard by design (server error / typed redirect),
		// everything else as ErrUnknownStatus.
		if len(b) > 0 && b[0] != statusOK {
			if _, err := parseResponse(b); err == nil {
				t.Fatalf("parseResponse accepted non-OK status %d", b[0])
			}
			return
		}
		parseResponse(b)
	})
}
