package rcds

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// startReplicaGroup launches n fully meshed RC servers with a fast
// anti-entropy interval, returning them and a cleanup function.
func startReplicaGroup(t *testing.T, n int, secret []byte) []*Server {
	t.Helper()
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = NewServer(NewStore(fmt.Sprintf("rc%d", i)),
			WithSecret(secret),
			WithAntiEntropyInterval(30*time.Millisecond))
		if err := servers[i].Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range servers {
		var peers []string
		for j, p := range servers {
			if i != j {
				peers = append(peers, p.Addr())
			}
		}
		s.SetPeers(peers...)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return servers
}

func groupAddrs(servers []*Server) []string {
	addrs := make([]string, len(servers))
	for i, s := range servers {
		addrs[i] = s.Addr()
	}
	return addrs
}

func TestClientPingAndBasicOps(t *testing.T) {
	servers := startReplicaGroup(t, 1, nil)
	c := NewClient(groupAddrs(servers), nil)
	defer c.Close()

	origin, err := c.Ping(context.Background())
	if err != nil || origin != "rc0" {
		t.Fatalf("Ping = %q, %v", origin, err)
	}
	if err := c.Set(context.Background(), "urn:h1", AttrArch, "linux"); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(context.Background(), "urn:h1", AttrInterface, "tcp://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(context.Background(), "urn:h1", AttrInterface, "tcp://127.0.0.1:2"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.FirstValue(context.Background(), "urn:h1", AttrArch)
	if err != nil || !ok || v != "linux" {
		t.Fatalf("FirstValue = %q %v %v", v, ok, err)
	}
	vals, err := c.Values(context.Background(), "urn:h1", AttrInterface)
	if err != nil || len(vals) != 2 {
		t.Fatalf("Values = %v, %v", vals, err)
	}
	as, err := c.Get(context.Background(), "urn:h1")
	if err != nil || len(as) != 3 {
		t.Fatalf("Get = %v, %v", as, err)
	}
	if err := c.Remove(context.Background(), "urn:h1", AttrInterface, "tcp://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if vals, _ := c.Values(context.Background(), "urn:h1", AttrInterface); len(vals) != 1 {
		t.Fatalf("after Remove: %v", vals)
	}
	if err := c.RemoveAll(context.Background(), "urn:h1", AttrInterface); err != nil {
		t.Fatal(err)
	}
	if vals, _ := c.Values(context.Background(), "urn:h1", AttrInterface); len(vals) != 0 {
		t.Fatalf("after RemoveAll: %v", vals)
	}
	uris, err := c.URIs(context.Background(), "urn:")
	if err != nil || len(uris) != 1 {
		t.Fatalf("URIs = %v, %v", uris, err)
	}
	if _, _, _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestClientAddSigned(t *testing.T) {
	servers := startReplicaGroup(t, 1, nil)
	c := NewClient(groupAddrs(servers), nil)
	defer c.Close()
	if err := c.AddSigned(context.Background(), "urn:p1", AttrPublicKey, "aabb", "alice", []byte{9}); err != nil {
		t.Fatal(err)
	}
	as, err := c.Get(context.Background(), "urn:p1")
	if err != nil || len(as) != 1 {
		t.Fatalf("Get = %v, %v", as, err)
	}
	if as[0].Signer != "alice" || !bytes.Equal(as[0].Signature, []byte{9}) {
		t.Fatalf("signature fields lost: %+v", as[0])
	}
}

func TestReplicationPushPropagates(t *testing.T) {
	servers := startReplicaGroup(t, 3, nil)
	c0 := NewClient([]string{servers[0].Addr()}, nil)
	defer c0.Close()
	if err := c0.Set(context.Background(), "urn:x", "n", "v"); err != nil {
		t.Fatal(err)
	}
	// The write lands on replica 0 and should propagate to 1 and 2.
	for i := 1; i < 3; i++ {
		ci := NewClient([]string{servers[i].Addr()}, nil)
		if _, err := ci.WaitFor(ctxTimeout(t, "3s"), "urn:x", "n"); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		ci.Close()
	}
}

func TestAntiEntropyHealsPartition(t *testing.T) {
	servers := startReplicaGroup(t, 2, nil)
	// Write directly to replica 0's store while replica 1 is "down".
	servers[1].Close()
	c0 := NewClient([]string{servers[0].Addr()}, nil)
	defer c0.Close()
	if err := c0.Set(context.Background(), "urn:healed", "n", "v"); err != nil {
		t.Fatal(err)
	}
	// Bring replica 1 back on a fresh listener over the same store.
	revived := NewServer(servers[1].Store(),
		WithPeers(servers[0].Addr()),
		WithAntiEntropyInterval(30*time.Millisecond))
	if err := revived.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	c1 := NewClient([]string{revived.Addr()}, nil)
	defer c1.Close()
	if _, err := c1.WaitFor(ctxTimeout(t, "3s"), "urn:healed", "n"); err != nil {
		t.Fatalf("anti-entropy did not heal: %v", err)
	}
}

func TestClientFailover(t *testing.T) {
	servers := startReplicaGroup(t, 3, nil)
	c := NewClient(groupAddrs(servers), nil)
	defer c.Close()
	c.SetTimeout(500 * time.Millisecond)
	if err := c.Set(context.Background(), "urn:a", "n", "1"); err != nil {
		t.Fatal(err)
	}
	// Kill the replica the client is connected to; the next request
	// must fail over transparently.
	servers[0].Close()
	if err := c.Set(context.Background(), "urn:a", "n2", "2"); err != nil {
		t.Fatalf("failover Set: %v", err)
	}
	if _, ok, err := c.FirstValue(context.Background(), "urn:a", "n2"); err != nil || !ok {
		t.Fatalf("failover read: %v %v", ok, err)
	}
}

func TestClientAllServersDown(t *testing.T) {
	c := NewClient([]string{"127.0.0.1:1"}, nil) // nothing listening
	defer c.Close()
	c.SetTimeout(200 * time.Millisecond)
	if _, err := c.Ping(context.Background()); !errors.Is(err, ErrNoServers) {
		t.Fatalf("want ErrNoServers, got %v", err)
	}
}

func TestHMACAuthentication(t *testing.T) {
	secret := []byte("rc-shared-secret")
	servers := startReplicaGroup(t, 2, secret)

	good := NewClient(groupAddrs(servers), secret)
	defer good.Close()
	if err := good.Set(context.Background(), "urn:s", "n", "v"); err != nil {
		t.Fatalf("authenticated client: %v", err)
	}

	// Wrong secret: the server rejects the frame and drops the
	// connection; the client sees no servers.
	bad := NewClient(groupAddrs(servers), []byte("wrong"))
	defer bad.Close()
	bad.SetTimeout(300 * time.Millisecond)
	if _, err := bad.Ping(context.Background()); err == nil {
		t.Fatal("wrong secret accepted")
	}

	// No secret at all likewise fails.
	none := NewClient(groupAddrs(servers), nil)
	defer none.Close()
	none.SetTimeout(300 * time.Millisecond)
	if _, err := none.Ping(context.Background()); err == nil {
		t.Fatal("missing MAC accepted")
	}

	// Replication still works between authenticated peers.
	c1 := NewClient([]string{servers[1].Addr()}, secret)
	defer c1.Close()
	if _, err := c1.WaitFor(ctxTimeout(t, "3s"), "urn:s", "n"); err != nil {
		t.Fatalf("authenticated replication: %v", err)
	}
}

func TestWaitLongPoll(t *testing.T) {
	servers := startReplicaGroup(t, 1, nil)
	c := NewClient(groupAddrs(servers), nil)
	defer c.Close()
	v0, err := c.Wait(context.Background(), 0, 10*time.Millisecond) // immediate: version 0 exceeded? version starts at 0
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan uint64, 1)
	go func() {
		v, err := c.Wait(context.Background(), v0, 5*time.Second)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		done <- v
	}()
	time.Sleep(30 * time.Millisecond)
	c2 := NewClient(groupAddrs(servers), nil)
	defer c2.Close()
	if err := c2.Set(context.Background(), "urn:w", "n", "v"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v <= v0 {
			t.Fatalf("version did not advance: %d <= %d", v, v0)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long poll never woke")
	}
}

func TestVectorAndOpsSinceRPC(t *testing.T) {
	servers := startReplicaGroup(t, 1, nil)
	c := NewClient(groupAddrs(servers), nil)
	defer c.Close()
	c.Set(context.Background(), "urn:v", "n", "1")
	c.Set(context.Background(), "urn:v", "n", "2")
	vv, err := c.Vector(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vv["rc0"] == 0 {
		t.Fatalf("vector = %v", vv)
	}
	ops, err := c.OpsSince(context.Background(), VersionVector{}, 0)
	if err != nil || len(ops) == 0 {
		t.Fatalf("OpsSince = %v, %v", ops, err)
	}
	// Apply them to a fresh store and verify it converges.
	fresh := NewStore("fresh")
	fresh.ApplyRemote(ops)
	if v, ok := fresh.FirstValue("urn:v", "n"); !ok || v != "2" {
		t.Fatalf("fresh store: %q %v", v, ok)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := NewServer(NewStore("x"))
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // must not panic or deadlock
}

func TestConcurrentClients(t *testing.T) {
	servers := startReplicaGroup(t, 2, nil)
	addrs := groupAddrs(servers)
	const nClients = 8
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		go func(id int) {
			c := NewClient(addrs, nil)
			defer c.Close()
			for j := 0; j < 20; j++ {
				uri := fmt.Sprintf("urn:c%d", id)
				if err := c.Set(context.Background(), uri, "n", fmt.Sprintf("%d", j)); err != nil {
					errs <- err
					return
				}
				if _, _, err := c.FirstValue(context.Background(), uri, "n"); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Both replicas eventually hold all writes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, e0, _ := servers[0].Store().Stats()
		_, e1, _ := servers[1].Store().Stats()
		if e0 == e1 && e0 >= nClients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: %d vs %d", e0, e1)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func BenchmarkRPCSet(b *testing.B) {
	s := NewServer(NewStore("bench"))
	if err := s.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c := NewClient([]string{s.Addr()}, nil)
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set(context.Background(), "urn:bench", "n", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCGet(b *testing.B) {
	s := NewServer(NewStore("bench"))
	if err := s.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c := NewClient([]string{s.Addr()}, nil)
	defer c.Close()
	c.Set(context.Background(), "urn:bench", "n", "v")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(context.Background(), "urn:bench"); err != nil {
			b.Fatal(err)
		}
	}
}
