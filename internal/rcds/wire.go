package rcds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"snipe/internal/seckey"
	"snipe/internal/xdr"
)

// Command codes of the RC server protocol. The 1997 implementation used
// SUN RPC with MD5-hashed shared secrets (§6); this build speaks a
// length-prefixed binary protocol with optional HMAC-SHA256 message
// authentication — the same shared-secret mechanism with a current hash
// (see DESIGN.md substitutions).
//
// Framing is multiplexed: every request and response body begins with a
// uint64 request ID chosen by the client. One connection carries many
// in-flight requests; the server answers each in its own goroutine and
// may write responses out of order, so a long-poll Wait never blocks a
// concurrent Get on the same connection.
const (
	cmdPing uint8 = iota + 1
	cmdSet
	cmdAdd
	cmdAddSigned
	cmdRemove
	cmdRemoveAll
	cmdGet
	cmdValues
	cmdFirst
	cmdURIs
	cmdVector
	cmdOpsSince
	cmdApply
	cmdWait
	cmdStats
	cmdCatchup
	cmdSnapshotPage
)

// Response status codes.
const (
	statusOK  uint8 = 0
	statusErr uint8 = 1
	// statusWrongShard redirects an op on a URI this replica's group
	// does not own; the payload carries the owning group index (uint32)
	// and the server's shard-map epoch (uint64).
	statusWrongShard uint8 = 2
)

// Catchup response modes (cmdCatchup).
const (
	// catchupModeTail: the response carries an assertion tail the
	// requester applies directly (its vector is above the server's
	// log-compaction floor).
	catchupModeTail uint8 = 1
	// catchupModeSnapshot: the requester is behind the compaction
	// horizon; it must page the compacted snapshot (cmdSnapshotPage)
	// and then pull the tail.
	catchupModeSnapshot uint8 = 2
)

// Frame size limit: a single RPC may carry at most this many bytes.
const maxFrame = 16 << 20

// Errors of the wire layer.
var (
	// ErrFrameTooLarge indicates a declared frame beyond maxFrame.
	ErrFrameTooLarge = errors.New("rcds: frame too large")
	// ErrBadMAC indicates a frame failing HMAC verification.
	ErrBadMAC = errors.New("rcds: bad frame MAC")
	// ErrServer wraps an error string returned by the server.
	ErrServer = errors.New("rcds: server error")
	// ErrNoServers indicates every configured RC server failed.
	ErrNoServers = errors.New("rcds: no reachable RC server")
	// ErrUnknownStatus indicates a response status tag the protocol does
	// not define — a version skew or corruption signal, distinct from a
	// server-reported error.
	ErrUnknownStatus = errors.New("rcds: unknown response status")
)

const macSize = 32

// writeFrame sends one length-prefixed frame, appending an HMAC when
// secret is non-empty.
func writeFrame(w io.Writer, body []byte, secret []byte) error {
	total := len(body)
	if len(secret) > 0 {
		total += macSize
	}
	if total > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	bufs := net.Buffers{hdr[:], body}
	if len(secret) > 0 {
		bufs = append(bufs, seckey.SumMAC(secret, body))
	}
	_, err := bufs.WriteTo(w)
	return err
}

// readFrame receives one frame, verifying its HMAC when secret is
// non-empty and returning the body.
func readFrame(r io.Reader, secret []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if len(secret) > 0 {
		if len(buf) < macSize {
			return nil, ErrBadMAC
		}
		body, mac := buf[:len(buf)-macSize], buf[len(buf)-macSize:]
		if !seckey.CheckMAC(secret, body, mac) {
			return nil, ErrBadMAC
		}
		return body, nil
	}
	return buf, nil
}

// muxBody prepends the request ID to a request or response body,
// forming the frame body that goes on the wire (and under the MAC).
func muxBody(id uint64, body []byte) []byte {
	out := make([]byte, 8+len(body))
	binary.BigEndian.PutUint64(out, id)
	copy(out[8:], body)
	return out
}

// splitMux separates a frame body into its request ID and payload.
func splitMux(frame []byte) (uint64, []byte, error) {
	if len(frame) < 8 {
		return 0, nil, errors.New("rcds: short mux frame")
	}
	return binary.BigEndian.Uint64(frame), frame[8:], nil
}

// request assembles cmd+payload into a frame body.
func request(cmd uint8, payload func(*xdr.Encoder)) []byte {
	e := xdr.NewEncoder(64)
	e.PutUint8(cmd)
	if payload != nil {
		payload(e)
	}
	return e.Bytes()
}

// okResponse assembles a success response.
func okResponse(payload func(*xdr.Encoder)) []byte {
	e := xdr.NewEncoder(64)
	e.PutUint8(statusOK)
	if payload != nil {
		payload(e)
	}
	return e.Bytes()
}

// errResponse assembles an error response.
func errResponse(err error) []byte {
	e := xdr.NewEncoder(64)
	e.PutUint8(statusErr)
	e.PutString(err.Error())
	return e.Bytes()
}

// wrongShardResponse assembles a wrong-shard redirect naming the owning
// group under the server's shard map of the given epoch.
func wrongShardResponse(group int, epoch uint64) []byte {
	e := xdr.NewEncoder(16)
	e.PutUint8(statusWrongShard)
	e.PutUint32(uint32(group))
	e.PutUint64(epoch)
	return e.Bytes()
}

// parseResponse splits a response into a decoder positioned at the
// payload, or the server-side error.
func parseResponse(body []byte) (*xdr.Decoder, error) {
	d := xdr.NewDecoder(body)
	status, err := d.Uint8()
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return d, nil
	case statusErr:
		msg, err := d.StringMax(maxWireValue)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s", ErrServer, msg)
	case statusWrongShard:
		group, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		epoch, err := d.Uint64()
		if err != nil {
			return nil, err
		}
		return nil, &WrongShardError{Group: int(group), Epoch: epoch}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownStatus, status)
	}
}
