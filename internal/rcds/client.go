package rcds

import (
	"fmt"
	"net"
	"sync"
	"time"

	"snipe/internal/xdr"
)

// Client talks to a set of RC server replicas. Because the registry is
// master–master, any replica can serve any request; the client fails
// over to the next replica when one is unreachable, which is how SNIPE
// clients ride out RC server crashes (the availability property of §6).
// Client is safe for concurrent use; requests are serialised over one
// connection at a time.
type Client struct {
	addrs  []string
	secret []byte

	mu      sync.Mutex
	conn    net.Conn
	current int // index into addrs of the connected server
	timeout time.Duration
}

// NewClient returns a client over the given replica addresses. secret
// enables HMAC authentication and must match the servers'.
func NewClient(addrs []string, secret []byte) *Client {
	return &Client{
		addrs:   append([]string(nil), addrs...),
		secret:  secret,
		timeout: 5 * time.Second,
	}
}

// SetTimeout sets the per-request dial/IO timeout.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Servers returns the configured replica addresses.
func (c *Client) Servers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.addrs...)
}

// Close drops the current connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// roundTrip sends req and returns the response payload decoder, failing
// over across replicas. extraTimeout widens the IO deadline for
// long-poll requests.
func (c *Client) roundTrip(req []byte, extraTimeout time.Duration) (*xdr.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.addrs) == 0 {
		return nil, ErrNoServers
	}
	var lastErr error
	for attempt := 0; attempt < len(c.addrs)+1; attempt++ {
		if c.conn == nil {
			idx := (c.current + attempt) % len(c.addrs)
			conn, err := net.DialTimeout("tcp", c.addrs[idx], c.timeout)
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
			c.current = idx
		}
		c.conn.SetDeadline(time.Now().Add(c.timeout + extraTimeout))
		if err := writeFrame(c.conn, req, c.secret); err != nil {
			lastErr = err
			c.conn.Close()
			c.conn = nil
			continue
		}
		body, err := readFrame(c.conn, c.secret)
		if err != nil {
			lastErr = err
			c.conn.Close()
			c.conn = nil
			continue
		}
		return parseResponse(body)
	}
	return nil, fmt.Errorf("%w (last: %v)", ErrNoServers, lastErr)
}

// Ping checks connectivity, returning the responding server's origin ID.
func (c *Client) Ping() (string, error) {
	d, err := c.roundTrip(request(cmdPing, nil), 0)
	if err != nil {
		return "", err
	}
	return d.String()
}

// Set makes value the sole live value of (uri, name).
func (c *Client) Set(uri, name, value string) error {
	_, err := c.roundTrip(request(cmdSet, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}), 0)
	return err
}

// Add inserts value as an additional live value of (uri, name).
func (c *Client) Add(uri, name, value string) error {
	_, err := c.roundTrip(request(cmdAdd, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}), 0)
	return err
}

// AddSigned inserts a value with a detached signature by signer.
func (c *Client) AddSigned(uri, name, value, signer string, sig []byte) error {
	_, err := c.roundTrip(request(cmdAddSigned, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
		e.PutString(signer)
		e.PutBytes(sig)
	}), 0)
	return err
}

// Remove tombstones the (uri, name, value) element.
func (c *Client) Remove(uri, name, value string) error {
	_, err := c.roundTrip(request(cmdRemove, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}), 0)
	return err
}

// RemoveAll tombstones every live value of (uri, name).
func (c *Client) RemoveAll(uri, name string) error {
	_, err := c.roundTrip(request(cmdRemoveAll, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}), 0)
	return err
}

// Get returns the live assertions for uri.
func (c *Client) Get(uri string) ([]Assertion, error) {
	d, err := c.roundTrip(request(cmdGet, func(e *xdr.Encoder) { e.PutString(uri) }), 0)
	if err != nil {
		return nil, err
	}
	return DecodeAssertions(d)
}

// Values returns the live values of (uri, name).
func (c *Client) Values(uri, name string) ([]string, error) {
	d, err := c.roundTrip(request(cmdValues, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}), 0)
	if err != nil {
		return nil, err
	}
	return d.StringSlice()
}

// FirstValue returns the most recently written live value of
// (uri, name).
func (c *Client) FirstValue(uri, name string) (string, bool, error) {
	d, err := c.roundTrip(request(cmdFirst, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}), 0)
	if err != nil {
		return "", false, err
	}
	ok, err := d.Bool()
	if err != nil {
		return "", false, err
	}
	v, err := d.String()
	return v, ok, err
}

// URIs returns all catalogued URIs under prefix.
func (c *Client) URIs(prefix string) ([]string, error) {
	d, err := c.roundTrip(request(cmdURIs, func(e *xdr.Encoder) { e.PutString(prefix) }), 0)
	if err != nil {
		return nil, err
	}
	return d.StringSlice()
}

// Vector returns the server's version vector.
func (c *Client) Vector() (VersionVector, error) {
	d, err := c.roundTrip(request(cmdVector, nil), 0)
	if err != nil {
		return nil, err
	}
	return DecodeVersionVector(d)
}

// OpsSince returns ops the holder of vector theirs has not seen.
func (c *Client) OpsSince(theirs VersionVector, max int) ([]Assertion, error) {
	d, err := c.roundTrip(request(cmdOpsSince, func(e *xdr.Encoder) {
		theirs.Encode(e)
		e.PutUint32(uint32(max))
	}), 0)
	if err != nil {
		return nil, err
	}
	return DecodeAssertions(d)
}

// Apply pushes replication ops to the server (peer-to-peer path).
func (c *Client) Apply(ops []Assertion) (int, error) {
	d, err := c.roundTrip(request(cmdApply, func(e *xdr.Encoder) {
		EncodeAssertions(e, ops)
	}), 0)
	if err != nil {
		return 0, err
	}
	n, err := d.Uint32()
	return int(n), err
}

// Wait long-polls until the server's catalog version exceeds since or
// the timeout elapses, returning the current version.
func (c *Client) Wait(since uint64, timeout time.Duration) (uint64, error) {
	d, err := c.roundTrip(request(cmdWait, func(e *xdr.Encoder) {
		e.PutUint64(since)
		e.PutUint32(uint32(timeout / time.Millisecond))
	}), timeout)
	if err != nil {
		return 0, err
	}
	return d.Uint64()
}

// Stats returns (uris, live elements, tombstones) on the server.
func (c *Client) Stats() (uris, elems, tombs int, err error) {
	d, err := c.roundTrip(request(cmdStats, nil), 0)
	if err != nil {
		return 0, 0, 0, err
	}
	u, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	el, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	tb, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	return int(u), int(el), int(tb), nil
}

// WaitFor polls until (uri, name) has a live value or the timeout
// elapses — the client-side rendezvous primitive SNIPE components use
// to wait for each other's metadata to appear.
func (c *Client) WaitFor(uri, name string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	var version uint64
	for {
		v, ok, err := c.FirstValue(uri, name)
		if err == nil && ok {
			return v, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return "", fmt.Errorf("rcds: waiting for %s %s: %w", uri, name, err)
			}
			return "", fmt.Errorf("rcds: timeout waiting for %s %s", uri, name)
		}
		remaining := time.Until(deadline)
		pollWait := 200 * time.Millisecond
		if remaining < pollWait {
			pollWait = remaining
		}
		// Use the long-poll to avoid busy-waiting; ignore errors, the
		// next FirstValue will fail over.
		if nv, err := c.Wait(version, pollWait); err == nil {
			version = nv
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
}
