package rcds

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"snipe/internal/stats"
	"snipe/internal/xdr"
)

// errConnBroken marks a request whose connection died before the
// response arrived; roundTrip re-issues such requests against the next
// replica.
var errConnBroken = errors.New("rcds: connection broken")

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("rcds: client closed")

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithReadCache enables the client-side read cache: Get, Values and
// FirstValue results are served locally and invalidated by a watch
// goroutine riding the server's Wait long-poll sequence numbers, so
// repeated resolves of stable URNs cost zero round trips. See DESIGN.md
// for the coherence rule.
func WithReadCache() ClientOption {
	return func(c *Client) { c.cache = newReadCache() }
}

// WithTimeout sets the initial per-request dial/IO timeout.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// call is one in-flight request awaiting its response frame.
type call struct {
	ch chan callResult
}

type callResult struct {
	body []byte
	err  error
}

// clientConn is one multiplexed connection to a replica: a writer lock
// serialises frame writes, a reader goroutine demultiplexes responses
// to pending calls by request ID.
type clientConn struct {
	c      net.Conn
	secret []byte

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]*call
	broken  bool
	err     error
}

// register records a pending call for id.
func (cc *clientConn) register(id uint64) (*call, error) {
	cl := &call{ch: make(chan callResult, 1)}
	cc.mu.Lock()
	if cc.broken {
		err := cc.err
		cc.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", errConnBroken, err)
	}
	cc.pending[id] = cl
	cc.mu.Unlock()
	return cl, nil
}

// unregister abandons a pending call (context expiry); a late response
// for the id is discarded by the read loop.
func (cc *clientConn) unregister(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// fail marks the connection dead and completes every pending call with
// errConnBroken so waiters can fail over.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.broken {
		cc.mu.Unlock()
		return
	}
	cc.broken = true
	cc.err = err
	pending := cc.pending
	cc.pending = make(map[uint64]*call)
	cc.mu.Unlock()
	cc.c.Close()
	for _, cl := range pending {
		cl.ch <- callResult{err: fmt.Errorf("%w: %v", errConnBroken, err)}
	}
}

// readLoop demultiplexes response frames to their pending calls.
func (cc *clientConn) readLoop() {
	for {
		frame, err := readFrame(cc.c, cc.secret)
		if err != nil {
			cc.fail(err)
			return
		}
		id, body, err := splitMux(frame)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		cl, ok := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ok {
			cl.ch <- callResult{body: body}
		}
	}
}

// writeRequest frames and writes one request under the writer lock.
func (cc *clientConn) writeRequest(id uint64, req []byte, deadline time.Time) error {
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()
	cc.c.SetWriteDeadline(deadline)
	// The writer lock is per-connection and guards nothing but this
	// write; a stalled peer stalls only requests multiplexed onto this
	// same connection, bounded by the write deadline above.
	return writeFrame(cc.c, muxBody(id, req), cc.secret) //lint:allow lockedio intentional per-connection writer lock, bounded by the write deadline

}

// Client talks to a set of RC server replicas. Because the registry is
// master–master, any replica can serve any request; the client fails
// over to the next replica when one is unreachable, which is how SNIPE
// clients ride out RC server crashes (the availability property of §6).
//
// Client is safe for concurrent use, and requests are multiplexed: any
// number of goroutines share one persistent connection per replica,
// each request carrying a wire-level ID so responses are matched out of
// order. A slow request (a Wait long-poll, a large OpsSince) never
// blocks concurrent lookups. When a connection dies, unanswered
// requests are re-issued against the next replica.
type Client struct {
	addrs  []string
	secret []byte

	mu      sync.Mutex
	conn    *clientConn
	current int // index into addrs of the (next) server
	timeout time.Duration
	closed  bool

	nextID   atomic.Uint64
	inflight atomic.Int64

	cache       *readCache // nil = caching disabled
	watchCancel context.CancelFunc
	wg          sync.WaitGroup

	// Telemetry (see internal/stats); pointers captured at construction.
	metrics    *stats.Registry
	mRequests  *stats.Counter
	mFailovers *stats.Counter
	mCacheHits *stats.Counter
	mCacheMiss *stats.Counter
	gInflight  *stats.Gauge
}

// NewClient returns a client over the given replica addresses. secret
// enables HMAC authentication and must match the servers'.
func NewClient(addrs []string, secret []byte, opts ...ClientOption) *Client {
	c := &Client{
		addrs:   append([]string(nil), addrs...),
		secret:  secret,
		timeout: 5 * time.Second,
		metrics: stats.NewRegistry(),
	}
	c.mRequests = c.metrics.Counter("requests")
	c.mFailovers = c.metrics.Counter("failovers")
	c.mCacheHits = c.metrics.Counter("cache_hits")
	c.mCacheMiss = c.metrics.Counter("cache_misses")
	c.gInflight = c.metrics.Gauge("inflight")
	for _, o := range opts {
		o(c)
	}
	if c.cache != nil {
		ctx, cancel := context.WithCancel(context.Background())
		c.watchCancel = cancel
		c.wg.Add(1)
		go c.watchLoop(ctx)
	}
	return c
}

// SetTimeout sets the per-request dial/IO timeout.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Servers returns the configured replica addresses.
func (c *Client) Servers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.addrs...)
}

// ReadCacheActive reports whether the client caches reads locally.
// naming.Resolver uses this to skip its own TTL cache and ride the
// client's watch-invalidated one instead.
func (c *Client) ReadCacheActive() bool { return c.cache != nil }

// Metrics returns the client's live metric registry.
func (c *Client) Metrics() *stats.Registry { return c.metrics }

// MetricsSnapshot captures the client's metrics — request, failover and
// cache counters plus the in-flight depth gauge. A daemon whose catalog
// is a remote Client composes this into its /stats output under the
// "rcds." prefix.
func (c *Client) MetricsSnapshot() stats.Snapshot {
	c.gInflight.Set(float64(c.inflight.Load()))
	return c.metrics.Snapshot()
}

// Close stops the watch goroutine and drops the current connection.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if c.watchCancel != nil {
		c.watchCancel()
	}
	if conn != nil {
		conn.fail(ErrClientClosed)
	}
	c.wg.Wait()
}

// getConn returns the live multiplexed connection, dialing the current
// replica if none is up. A dial failure advances to the next replica.
func (c *Client) getConn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		c.conn.mu.Lock()
		broken := c.conn.broken
		c.conn.mu.Unlock()
		if !broken {
			cc := c.conn
			c.mu.Unlock()
			return cc, nil
		}
		c.conn = nil
	}
	addr := c.addrs[c.current%len(c.addrs)]
	timeout := c.timeout
	c.mu.Unlock()

	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.current++ // the next dial tries the next replica
		return nil, err
	}
	if c.closed {
		conn.Close()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		// A concurrent caller connected first; keep theirs.
		conn.Close()
		return c.conn, nil
	}
	cc := &clientConn{c: conn, secret: c.secret, pending: make(map[uint64]*call)}
	c.conn = cc
	go cc.readLoop()
	return cc, nil
}

// connFailed retires a dead connection and advances to the next
// replica. Only the first caller to notice the failure advances the
// cursor; cached reads are flushed because the next replica's Wait
// sequence numbering is not comparable to the old one's.
func (c *Client) connFailed(cc *clientConn) {
	c.mu.Lock()
	if c.conn == cc {
		c.conn = nil
		c.current++
		c.mFailovers.Inc()
	}
	c.mu.Unlock()
	if c.cache != nil {
		c.cache.invalidateAll()
	}
}

// roundTrip sends req and returns the response payload decoder. The
// request is issued over the shared multiplexed connection; if that
// connection dies before the response arrives, the request is re-issued
// against the next replica (as many times as there are replicas).
func (c *Client) roundTrip(ctx context.Context, req []byte) (*xdr.Decoder, error) {
	c.mu.Lock()
	n := len(c.addrs)
	timeout := c.timeout
	c.mu.Unlock()
	if n == 0 {
		return nil, ErrNoServers
	}
	c.mRequests.Inc()
	c.inflight.Add(1)
	defer c.inflight.Add(-1)

	var lastErr error
	for attempt := 0; attempt < n+1; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cc, err := c.getConn(ctx)
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		id := c.nextID.Add(1)
		cl, err := cc.register(id)
		if err != nil {
			lastErr = err
			c.connFailed(cc)
			continue
		}
		if err := cc.writeRequest(id, req, time.Now().Add(timeout)); err != nil {
			cc.unregister(id)
			cc.fail(err)
			lastErr = err
			c.connFailed(cc)
			continue
		}
		select {
		case res := <-cl.ch:
			if res.err != nil {
				lastErr = res.err
				c.connFailed(cc)
				continue
			}
			return parseResponse(res.body)
		case <-ctx.Done():
			cc.unregister(id)
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("%w (last: %v)", ErrNoServers, lastErr)
}

// Timeout reports the client's configured per-request timeout. Callers
// that hold a context-less interface (naming.Catalog adapters) use it
// to derive per-call deadlines.
func (c *Client) Timeout() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timeout
}

// Ping checks connectivity, returning the responding server's
// origin ID.
func (c *Client) Ping(ctx context.Context) (string, error) {
	d, err := c.roundTrip(ctx, request(cmdPing, nil))
	if err != nil {
		return "", err
	}
	return d.StringMax(maxWireURI)
}

// Set makes value the sole live value of (uri, name).
func (c *Client) Set(ctx context.Context, uri, name, value string) error {
	_, err := c.roundTrip(ctx, request(cmdSet, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// Add inserts value as an additional live value of (uri, name).
func (c *Client) Add(ctx context.Context, uri, name, value string) error {
	_, err := c.roundTrip(ctx, request(cmdAdd, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// AddSigned inserts a value with a detached signature by signer.
func (c *Client) AddSigned(ctx context.Context, uri, name, value, signer string, sig []byte) error {
	_, err := c.roundTrip(ctx, request(cmdAddSigned, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
		e.PutString(signer)
		e.PutBytes(sig)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// Remove tombstones the (uri, name, value) element.
func (c *Client) Remove(ctx context.Context, uri, name, value string) error {
	_, err := c.roundTrip(ctx, request(cmdRemove, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// RemoveAll tombstones every live value of (uri, name).
func (c *Client) RemoveAll(ctx context.Context, uri, name string) error {
	_, err := c.roundTrip(ctx, request(cmdRemoveAll, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// invalidateWrite drops cached reads for a URI this client just wrote,
// preserving read-your-writes before the watch notices the version
// advance.
func (c *Client) invalidateWrite(uri string, err error) {
	if c.cache != nil && err == nil {
		c.cache.invalidateURI(uri)
	}
}

// Get returns the live assertions for uri.
func (c *Client) Get(ctx context.Context, uri string) ([]Assertion, error) {
	if c.cache != nil {
		if as, ok := c.cache.lookupGet(uri); ok {
			c.mCacheHits.Inc()
			return as, nil
		}
		c.mCacheMiss.Inc()
		epoch := c.cache.epochNow()
		as, err := c.getRemote(ctx, uri)
		if err == nil {
			c.cache.storeGet(uri, as, epoch)
		}
		return as, err
	}
	return c.getRemote(ctx, uri)
}

func (c *Client) getRemote(ctx context.Context, uri string) ([]Assertion, error) {
	d, err := c.roundTrip(ctx, request(cmdGet, func(e *xdr.Encoder) { e.PutString(uri) }))
	if err != nil {
		return nil, err
	}
	return DecodeAssertions(d)
}

// Values returns the live values of (uri, name).
func (c *Client) Values(ctx context.Context, uri, name string) ([]string, error) {
	if c.cache != nil {
		if vals, ok := c.cache.lookupValues(uri, name); ok {
			c.mCacheHits.Inc()
			return vals, nil
		}
		c.mCacheMiss.Inc()
		epoch := c.cache.epochNow()
		vals, err := c.valuesRemote(ctx, uri, name)
		if err == nil {
			c.cache.storeValues(uri, name, vals, epoch)
		}
		return vals, err
	}
	return c.valuesRemote(ctx, uri, name)
}

func (c *Client) valuesRemote(ctx context.Context, uri, name string) ([]string, error) {
	d, err := c.roundTrip(ctx, request(cmdValues, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}))
	if err != nil {
		return nil, err
	}
	return d.StringSliceMax(maxWireItems, maxWireValue)
}

// FirstValue returns the most recently written live value of
// (uri, name).
func (c *Client) FirstValue(ctx context.Context, uri, name string) (string, bool, error) {
	if c.cache != nil {
		if v, ok, hit := c.cache.lookupFirst(uri, name); hit {
			c.mCacheHits.Inc()
			return v, ok, nil
		}
		c.mCacheMiss.Inc()
		epoch := c.cache.epochNow()
		v, ok, err := c.firstRemote(ctx, uri, name)
		if err == nil {
			c.cache.storeFirst(uri, name, v, ok, epoch)
		}
		return v, ok, err
	}
	return c.firstRemote(ctx, uri, name)
}

func (c *Client) firstRemote(ctx context.Context, uri, name string) (string, bool, error) {
	d, err := c.roundTrip(ctx, request(cmdFirst, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}))
	if err != nil {
		return "", false, err
	}
	ok, err := d.Bool()
	if err != nil {
		return "", false, err
	}
	v, err := d.StringMax(maxWireValue)
	return v, ok, err
}

// URIs returns all catalogued URIs under prefix.
func (c *Client) URIs(ctx context.Context, prefix string) ([]string, error) {
	d, err := c.roundTrip(ctx, request(cmdURIs, func(e *xdr.Encoder) { e.PutString(prefix) }))
	if err != nil {
		return nil, err
	}
	return d.StringSliceMax(maxWireItems, maxWireValue)
}

// Vector returns the server's version vector.
func (c *Client) Vector(ctx context.Context) (VersionVector, error) {
	d, err := c.roundTrip(ctx, request(cmdVector, nil))
	if err != nil {
		return nil, err
	}
	return DecodeVersionVector(d)
}

// OpsSince returns ops the holder of vector theirs has not seen.
func (c *Client) OpsSince(ctx context.Context, theirs VersionVector, max int) ([]Assertion, error) {
	d, err := c.roundTrip(ctx, request(cmdOpsSince, func(e *xdr.Encoder) {
		theirs.Encode(e)
		e.PutUint32(uint32(max))
	}))
	if err != nil {
		return nil, err
	}
	return DecodeAssertions(d)
}

// Apply pushes replication ops to the server (peer-to-peer
// path).
func (c *Client) Apply(ctx context.Context, ops []Assertion) (int, error) {
	d, err := c.roundTrip(ctx, request(cmdApply, func(e *xdr.Encoder) {
		EncodeAssertions(e, ops)
	}))
	if err != nil {
		return 0, err
	}
	n, err := d.Uint32()
	return int(n), err
}

// Wait long-polls until the server's catalog version exceeds
// since or the server-side timeout elapses, returning the current
// version. ctx must outlive the server-side timeout for the poll to
// complete normally.
func (c *Client) Wait(ctx context.Context, since uint64, timeout time.Duration) (uint64, error) {
	d, err := c.roundTrip(ctx, request(cmdWait, func(e *xdr.Encoder) {
		e.PutUint64(since)
		e.PutUint32(uint32(timeout / time.Millisecond))
	}))
	if err != nil {
		return 0, err
	}
	return d.Uint64()
}

// Stats returns (uris, live elements, tombstones) on the server.
func (c *Client) Stats(ctx context.Context) (uris, elems, tombs int, err error) {
	d, err := c.roundTrip(ctx, request(cmdStats, nil))
	if err != nil {
		return 0, 0, 0, err
	}
	u, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	el, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	tb, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	return int(u), int(el), int(tb), nil
}

// WaitFor polls until (uri, name) has a live value or ctx ends —
// the client-side rendezvous primitive SNIPE components use to wait for
// each other's metadata to appear.
func (c *Client) WaitFor(ctx context.Context, uri, name string) (string, error) {
	var version uint64
	for {
		v, ok, err := c.FirstValue(ctx, uri, name)
		if err == nil && ok {
			return v, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			if err != nil {
				return "", fmt.Errorf("rcds: waiting for %s %s: %w", uri, name, err)
			}
			return "", fmt.Errorf("rcds: timeout waiting for %s %s", uri, name)
		}
		pollWait := 200 * time.Millisecond
		if deadline, ok := ctx.Deadline(); ok {
			if remaining := time.Until(deadline); remaining < pollWait {
				pollWait = remaining
			}
		}
		if pollWait <= 0 {
			continue
		}
		// Use the long-poll to avoid busy-waiting; ignore errors, the
		// next FirstValue will fail over.
		if nv, err := c.Wait(ctx, version, pollWait); err == nil {
			version = nv
		} else if ctx.Err() == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
}
