package rcds

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snipe/internal/stats"
	"snipe/internal/xdr"
)

// errConnBroken marks a request whose connection died before the
// response arrived; roundTrip re-issues such requests against the next
// replica.
var errConnBroken = errors.New("rcds: connection broken")

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("rcds: client closed")

// wrongShardRetries bounds how many times a routed op re-resolves the
// shard map after a wrong-shard redirect before giving up. Two covers
// the common case (stale map, one refresh); the third absorbs a map
// that changes again mid-retry.
const wrongShardRetries = 3

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithReadCache enables the client-side read cache: Get, Values and
// FirstValue results are served locally and invalidated by a watch
// goroutine riding the server's Wait long-poll sequence numbers, so
// repeated resolves of stable URNs cost zero round trips. Under shard
// routing every replica group gets its own cache and watch, so the
// coherence rule holds per group. See DESIGN.md for the coherence rule.
func WithReadCache() ClientOption {
	return func(c *Client) { c.cacheOn = true }
}

// WithTimeout sets the initial per-request dial/IO timeout.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithShardRouting makes the client route URI-keyed operations to the
// owning replica group under the catalog's shard map (DESIGN.md
// "Sharded catalog"). The map is resolved once from the seed replicas
// (the addresses NewClient was given), cached, and re-resolved whenever
// a server answers with a wrong-shard redirect. Without this option —
// and with it, when no map is published — every operation goes to the
// seed replicas, exactly as before sharding existed.
func WithShardRouting() ClientOption {
	return func(c *Client) { c.routing = true }
}

// call is one in-flight request awaiting its response frame.
type call struct {
	ch chan callResult
}

type callResult struct {
	body []byte
	err  error
}

// clientConn is one multiplexed connection to a replica: a writer lock
// serialises frame writes, a reader goroutine demultiplexes responses
// to pending calls by request ID.
type clientConn struct {
	c      net.Conn
	secret []byte

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]*call
	broken  bool
	err     error
}

// register records a pending call for id.
func (cc *clientConn) register(id uint64) (*call, error) {
	cl := &call{ch: make(chan callResult, 1)}
	cc.mu.Lock()
	if cc.broken {
		err := cc.err
		cc.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", errConnBroken, err)
	}
	cc.pending[id] = cl
	cc.mu.Unlock()
	return cl, nil
}

// unregister abandons a pending call (context expiry); a late response
// for the id is discarded by the read loop.
func (cc *clientConn) unregister(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// fail marks the connection dead and completes every pending call with
// errConnBroken so waiters can fail over.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.broken {
		cc.mu.Unlock()
		return
	}
	cc.broken = true
	cc.err = err
	pending := cc.pending
	cc.pending = make(map[uint64]*call)
	cc.mu.Unlock()
	cc.c.Close()
	for _, cl := range pending {
		cl.ch <- callResult{err: fmt.Errorf("%w: %v", errConnBroken, err)}
	}
}

// readLoop demultiplexes response frames to their pending calls.
func (cc *clientConn) readLoop() {
	for {
		frame, err := readFrame(cc.c, cc.secret)
		if err != nil {
			cc.fail(err)
			return
		}
		id, body, err := splitMux(frame)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		cl, ok := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ok {
			cl.ch <- callResult{body: body}
		}
	}
}

// writeRequest frames and writes one request under the writer lock.
func (cc *clientConn) writeRequest(id uint64, req []byte, deadline time.Time) error {
	cc.writeMu.Lock()
	defer cc.writeMu.Unlock()
	cc.c.SetWriteDeadline(deadline)
	// The writer lock is per-connection and guards nothing but this
	// write; a stalled peer stalls only requests multiplexed onto this
	// same connection, bounded by the write deadline above.
	return writeFrame(cc.c, muxBody(id, req), cc.secret) //lint:allow lockedio intentional per-connection writer lock, bounded by the write deadline

}

// replicaGroup is the client's connection state for one replica group:
// the addresses, the live multiplexed connection with its failover
// cursor, and (when caching is on) the group's own watch-coherent read
// cache. The unsharded client has exactly one of these — the seed
// group; shard routing adds one per group in the shard map.
type replicaGroup struct {
	addrs []string

	mu      sync.Mutex
	conn    *clientConn
	current int  // index into addrs of the (next) server
	closed  bool // retired (map superseded) or client closed

	cache     *readCache // nil = caching disabled
	watchStop context.CancelFunc
}

// Client talks to a set of RC server replicas. Because the registry is
// master–master, any replica can serve any request; the client fails
// over to the next replica when one is unreachable, which is how SNIPE
// clients ride out RC server crashes (the availability property of §6).
//
// Client is safe for concurrent use, and requests are multiplexed: any
// number of goroutines share one persistent connection per replica
// group, each request carrying a wire-level ID so responses are matched
// out of order. A slow request (a Wait long-poll, a large OpsSince)
// never blocks concurrent lookups. When a connection dies, unanswered
// requests are re-issued against the next replica.
//
// With WithShardRouting, URI-keyed operations are routed to the replica
// group owning the URI under the catalog's shard map; the caller-facing
// semantics of Get/Set/Wait and the read cache are unchanged.
type Client struct {
	secret []byte

	mu       sync.Mutex
	seed     *replicaGroup
	groups   []*replicaGroup // index = shard group id; nil until a map installs
	shard    *ShardMap       // installed shard map; nil = route everything to seed
	mapTried bool            // first resolution attempted (routing only)
	timeout  time.Duration
	closed   bool

	routing bool // WithShardRouting
	cacheOn bool // WithReadCache

	nextID   atomic.Uint64
	inflight atomic.Int64
	wg       sync.WaitGroup

	// Telemetry (see internal/stats); pointers captured at construction.
	metrics     *stats.Registry
	mRequests   *stats.Counter
	mFailovers  *stats.Counter
	mCacheHits  *stats.Counter
	mCacheMiss  *stats.Counter
	mWrongShard *stats.Counter
	mMapResolve *stats.Counter
	gInflight   *stats.Gauge
}

// NewClient returns a client over the given replica addresses. secret
// enables HMAC authentication and must match the servers'. Under shard
// routing, addrs are the seed replicas: any group whose config
// namespace carries the shard map.
func NewClient(addrs []string, secret []byte, opts ...ClientOption) *Client {
	c := &Client{
		secret:  secret,
		timeout: 5 * time.Second,
		metrics: stats.NewRegistry(),
	}
	c.mRequests = c.metrics.Counter("requests")
	c.mFailovers = c.metrics.Counter("failovers")
	c.mCacheHits = c.metrics.Counter("cache_hits")
	c.mCacheMiss = c.metrics.Counter("cache_misses")
	c.mWrongShard = c.metrics.Counter("wrong_shard_redirects")
	c.mMapResolve = c.metrics.Counter("shard_map_resolves")
	c.gInflight = c.metrics.Gauge("inflight")
	for _, o := range opts {
		o(c)
	}
	c.seed = c.newGroup(addrs)
	return c
}

// newGroup builds a replica group, starting its cache watch when the
// client caches reads.
func (c *Client) newGroup(addrs []string) *replicaGroup {
	g := &replicaGroup{addrs: append([]string(nil), addrs...)}
	if c.cacheOn {
		g.cache = newReadCache()
		ctx, cancel := context.WithCancel(context.Background())
		g.watchStop = cancel
		c.wg.Add(1)
		go c.watchLoop(ctx, g)
	}
	return g
}

// retireGroup stops a group's watch and breaks its connection; in-flight
// requests fail over and find the group refusing redials.
func retireGroup(g *replicaGroup) {
	if g.watchStop != nil {
		g.watchStop()
	}
	g.mu.Lock()
	g.closed = true
	conn := g.conn
	g.conn = nil
	g.mu.Unlock()
	if conn != nil {
		conn.fail(ErrClientClosed)
	}
}

// SetTimeout sets the per-request dial/IO timeout.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Servers returns the configured seed replica addresses.
func (c *Client) Servers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.seed.addrs...)
}

// ReadCacheActive reports whether the client caches reads locally.
// naming.Resolver uses this to skip its own TTL cache and ride the
// client's watch-invalidated one instead.
func (c *Client) ReadCacheActive() bool { return c.cacheOn }

// ShardMap returns the shard map the client is currently routing with,
// or nil when it routes everything to the seed replicas.
func (c *Client) ShardMap() *ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shard
}

// Metrics returns the client's live metric registry.
func (c *Client) Metrics() *stats.Registry { return c.metrics }

// MetricsSnapshot captures the client's metrics — request, failover and
// cache counters plus the in-flight depth gauge. A daemon whose catalog
// is a remote Client composes this into its /stats output under the
// "rcds." prefix.
func (c *Client) MetricsSnapshot() stats.Snapshot {
	c.gInflight.Set(float64(c.inflight.Load()))
	return c.metrics.Snapshot()
}

// Close stops the watch goroutines and drops every connection.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	groups := append([]*replicaGroup{c.seed}, c.groups...)
	c.mu.Unlock()
	for _, g := range groups {
		retireGroup(g)
	}
	c.wg.Wait()
}

// seedGroup returns the seed replica group (the NewClient addresses).
func (c *Client) seedGroup() *replicaGroup {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seed
}

// route returns the replica group that should serve an operation on
// uri: the owning group under the installed shard map, or the seed
// group when routing is off, no map is installed, or the URI is in the
// globally served config namespace.
func (c *Client) route(uri string) *replicaGroup {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.routing || c.shard == nil || IsConfigURI(uri) {
		return c.seed
	}
	gid := c.shard.Owner(uri)
	if gid < 0 || gid >= len(c.groups) {
		return c.seed
	}
	return c.groups[gid]
}

// ensureShardMap performs the one-time shard-map bootstrap: the first
// routed operation resolves the map from the seed replicas. Absence of
// a published map is not an error — the client stays seed-routed, and a
// later wrong-shard redirect forces a re-resolve.
func (c *Client) ensureShardMap(ctx context.Context) error {
	c.mu.Lock()
	tried := c.mapTried
	c.mu.Unlock()
	if tried {
		return nil
	}
	err := c.resolveShardMap(ctx)
	c.mu.Lock()
	c.mapTried = true
	c.mu.Unlock()
	return err
}

// resolveShardMap reads the shard map from the seed group's config
// namespace and installs it if its epoch is newer than the current one.
func (c *Client) resolveShardMap(ctx context.Context) error {
	c.mMapResolve.Inc()
	d, err := c.roundTrip(ctx, c.seedGroup(), request(cmdFirst, func(e *xdr.Encoder) {
		e.PutString(ShardMapURI)
		e.PutString(AttrShardMap)
	}))
	if err != nil {
		return err
	}
	ok, err := d.Bool()
	if err != nil {
		return err
	}
	v, err := d.StringMax(maxWireValue)
	if err != nil {
		return err
	}
	if !ok {
		return nil // no map published: stay seed-routed
	}
	m, err := ParseShardMap(v)
	if err != nil {
		return err
	}
	c.installShardMap(m)
	return nil
}

// installShardMap swaps in m if it is strictly newer than the installed
// map, building fresh per-group connection state and retiring the old.
func (c *Client) installShardMap(m *ShardMap) {
	c.mu.Lock()
	if c.closed || (c.shard != nil && m.Epoch <= c.shard.Epoch) {
		c.mu.Unlock()
		return
	}
	old := c.groups
	c.shard = m
	c.groups = make([]*replicaGroup, len(m.Groups))
	for i, addrs := range m.Groups {
		c.groups[i] = c.newGroup(addrs)
	}
	c.mu.Unlock()
	for _, g := range old {
		retireGroup(g)
	}
}

// PublishShardMap writes m to the config namespace of every group it
// names, so that any group's replicas can bootstrap a routing client.
// Config entries replicate within a group but not across groups, hence
// the fan-out here; resharding publishes a higher epoch the same way.
func PublishShardMap(ctx context.Context, m *ShardMap, secret []byte) error {
	for i, addrs := range m.Groups {
		cl := NewClient(addrs, secret)
		err := cl.Set(ctx, ShardMapURI, AttrShardMap, m.Format())
		cl.Close()
		if err != nil {
			return fmt.Errorf("rcds: publish shard map to group %d: %w", i, err)
		}
	}
	return nil
}

// getConn returns g's live multiplexed connection, dialing the current
// replica if none is up. A dial failure advances to the next replica.
func (c *Client) getConn(ctx context.Context, g *replicaGroup) (*clientConn, error) {
	c.mu.Lock()
	closed := c.closed
	timeout := c.timeout
	c.mu.Unlock()
	if closed {
		return nil, ErrClientClosed
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrClientClosed
	}
	if g.conn != nil {
		g.conn.mu.Lock()
		broken := g.conn.broken
		g.conn.mu.Unlock()
		if !broken {
			cc := g.conn
			g.mu.Unlock()
			return cc, nil
		}
		g.conn = nil
	}
	addr := g.addrs[g.current%len(g.addrs)]
	g.mu.Unlock()

	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)

	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		g.current++ // the next dial tries the next replica
		return nil, err
	}
	if g.closed {
		conn.Close()
		return nil, ErrClientClosed
	}
	if g.conn != nil {
		// A concurrent caller connected first; keep theirs.
		conn.Close()
		return g.conn, nil
	}
	cc := &clientConn{c: conn, secret: c.secret, pending: make(map[uint64]*call)}
	g.conn = cc
	go cc.readLoop()
	return cc, nil
}

// connFailed retires a dead connection and advances to the group's next
// replica. Only the first caller to notice the failure advances the
// cursor; the group's cached reads are flushed because the next
// replica's Wait sequence numbering is not comparable to the old one's.
func (c *Client) connFailed(g *replicaGroup, cc *clientConn) {
	g.mu.Lock()
	if g.conn == cc {
		g.conn = nil
		g.current++
		c.mFailovers.Inc()
	}
	g.mu.Unlock()
	if g.cache != nil {
		g.cache.invalidateAll()
	}
}

// roundTrip sends req to group g and returns the response payload
// decoder. The request is issued over the group's shared multiplexed
// connection; if that connection dies before the response arrives, the
// request is re-issued against the group's next replica (as many times
// as there are replicas).
func (c *Client) roundTrip(ctx context.Context, g *replicaGroup, req []byte) (*xdr.Decoder, error) {
	g.mu.Lock()
	n := len(g.addrs)
	g.mu.Unlock()
	c.mu.Lock()
	timeout := c.timeout
	c.mu.Unlock()
	if n == 0 {
		return nil, ErrNoServers
	}
	c.mRequests.Inc()
	c.inflight.Add(1)
	defer c.inflight.Add(-1)

	var lastErr error
	for attempt := 0; attempt < n+1; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cc, err := c.getConn(ctx, g)
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		id := c.nextID.Add(1)
		cl, err := cc.register(id)
		if err != nil {
			lastErr = err
			c.connFailed(g, cc)
			continue
		}
		if err := cc.writeRequest(id, req, time.Now().Add(timeout)); err != nil {
			cc.unregister(id)
			cc.fail(err)
			lastErr = err
			c.connFailed(g, cc)
			continue
		}
		select {
		case res := <-cl.ch:
			if res.err != nil {
				lastErr = res.err
				c.connFailed(g, cc)
				continue
			}
			return parseResponse(res.body)
		case <-ctx.Done():
			cc.unregister(id)
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("%w (last: %v)", ErrNoServers, lastErr)
}

// routedTrip sends a URI-keyed request to the group owning uri. A
// wrong-shard redirect (stale map) re-resolves the map and retries
// against the new owner, a bounded number of times.
func (c *Client) routedTrip(ctx context.Context, uri string, req []byte) (*xdr.Decoder, error) {
	if !c.routing {
		return c.roundTrip(ctx, c.seedGroup(), req)
	}
	if err := c.ensureShardMap(ctx); err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < wrongShardRetries; attempt++ {
		d, err := c.roundTrip(ctx, c.route(uri), req)
		var ws *WrongShardError
		if !errors.As(err, &ws) {
			return d, err
		}
		c.mWrongShard.Inc()
		lastErr = err
		if rerr := c.resolveShardMap(ctx); rerr != nil {
			return nil, rerr
		}
	}
	return nil, lastErr
}

// cacheGroup resolves the group whose cache serves reads of uri,
// bootstrapping the shard map first so the very first cached read does
// not fill the wrong group's cache.
func (c *Client) cacheGroup(ctx context.Context, uri string) (*replicaGroup, error) {
	if c.routing {
		if err := c.ensureShardMap(ctx); err != nil {
			return nil, err
		}
	}
	return c.route(uri), nil
}

// Timeout reports the client's configured per-request timeout. Callers
// that hold a context-less interface (naming.Catalog adapters) use it
// to derive per-call deadlines.
func (c *Client) Timeout() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timeout
}

// Ping checks connectivity, returning the responding server's
// origin ID.
func (c *Client) Ping(ctx context.Context) (string, error) {
	d, err := c.roundTrip(ctx, c.seedGroup(), request(cmdPing, nil))
	if err != nil {
		return "", err
	}
	return d.StringMax(maxWireURI)
}

// Set makes value the sole live value of (uri, name).
func (c *Client) Set(ctx context.Context, uri, name, value string) error {
	_, err := c.routedTrip(ctx, uri, request(cmdSet, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// Add inserts value as an additional live value of (uri, name).
func (c *Client) Add(ctx context.Context, uri, name, value string) error {
	_, err := c.routedTrip(ctx, uri, request(cmdAdd, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// AddSigned inserts a value with a detached signature by signer.
func (c *Client) AddSigned(ctx context.Context, uri, name, value, signer string, sig []byte) error {
	_, err := c.routedTrip(ctx, uri, request(cmdAddSigned, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
		e.PutString(signer)
		e.PutBytes(sig)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// Remove tombstones the (uri, name, value) element.
func (c *Client) Remove(ctx context.Context, uri, name, value string) error {
	_, err := c.routedTrip(ctx, uri, request(cmdRemove, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
		e.PutString(value)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// RemoveAll tombstones every live value of (uri, name).
func (c *Client) RemoveAll(ctx context.Context, uri, name string) error {
	_, err := c.routedTrip(ctx, uri, request(cmdRemoveAll, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}))
	c.invalidateWrite(uri, err)
	return err
}

// invalidateWrite drops cached reads for a URI this client just wrote,
// preserving read-your-writes before the watch notices the version
// advance. Every group's cache is swept: cheap, and correct across a
// map change that moved the URI between groups mid-write.
func (c *Client) invalidateWrite(uri string, err error) {
	if !c.cacheOn || err != nil {
		return
	}
	c.mu.Lock()
	groups := append([]*replicaGroup{c.seed}, c.groups...)
	c.mu.Unlock()
	for _, g := range groups {
		g.cache.invalidateURI(uri)
	}
}

// Get returns the live assertions for uri.
func (c *Client) Get(ctx context.Context, uri string) ([]Assertion, error) {
	if !c.cacheOn {
		return c.getRemote(ctx, uri)
	}
	g, err := c.cacheGroup(ctx, uri)
	if err != nil {
		return nil, err
	}
	if as, ok := g.cache.lookupGet(uri); ok {
		c.mCacheHits.Inc()
		return as, nil
	}
	c.mCacheMiss.Inc()
	epoch := g.cache.epochNow()
	as, err := c.getRemote(ctx, uri)
	if err == nil {
		g.cache.storeGet(uri, as, epoch)
	}
	return as, err
}

func (c *Client) getRemote(ctx context.Context, uri string) ([]Assertion, error) {
	d, err := c.routedTrip(ctx, uri, request(cmdGet, func(e *xdr.Encoder) { e.PutString(uri) }))
	if err != nil {
		return nil, err
	}
	return DecodeAssertions(d)
}

// Values returns the live values of (uri, name).
func (c *Client) Values(ctx context.Context, uri, name string) ([]string, error) {
	if !c.cacheOn {
		return c.valuesRemote(ctx, uri, name)
	}
	g, err := c.cacheGroup(ctx, uri)
	if err != nil {
		return nil, err
	}
	if vals, ok := g.cache.lookupValues(uri, name); ok {
		c.mCacheHits.Inc()
		return vals, nil
	}
	c.mCacheMiss.Inc()
	epoch := g.cache.epochNow()
	vals, err := c.valuesRemote(ctx, uri, name)
	if err == nil {
		g.cache.storeValues(uri, name, vals, epoch)
	}
	return vals, err
}

func (c *Client) valuesRemote(ctx context.Context, uri, name string) ([]string, error) {
	d, err := c.routedTrip(ctx, uri, request(cmdValues, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}))
	if err != nil {
		return nil, err
	}
	return d.StringSliceMax(maxWireItems, maxWireValue)
}

// FirstValue returns the most recently written live value of
// (uri, name).
func (c *Client) FirstValue(ctx context.Context, uri, name string) (string, bool, error) {
	if !c.cacheOn {
		return c.firstRemote(ctx, uri, name)
	}
	g, err := c.cacheGroup(ctx, uri)
	if err != nil {
		return "", false, err
	}
	if v, ok, hit := g.cache.lookupFirst(uri, name); hit {
		c.mCacheHits.Inc()
		return v, ok, nil
	}
	c.mCacheMiss.Inc()
	epoch := g.cache.epochNow()
	v, ok, err := c.firstRemote(ctx, uri, name)
	if err == nil {
		g.cache.storeFirst(uri, name, v, ok, epoch)
	}
	return v, ok, err
}

func (c *Client) firstRemote(ctx context.Context, uri, name string) (string, bool, error) {
	d, err := c.routedTrip(ctx, uri, request(cmdFirst, func(e *xdr.Encoder) {
		e.PutString(uri)
		e.PutString(name)
	}))
	if err != nil {
		return "", false, err
	}
	ok, err := d.Bool()
	if err != nil {
		return "", false, err
	}
	v, err := d.StringMax(maxWireValue)
	return v, ok, err
}

// URIs returns all catalogued URIs under prefix. Under shard routing
// the listing fans out to every group and merges: the one read that is
// inherently cross-shard.
func (c *Client) URIs(ctx context.Context, prefix string) ([]string, error) {
	if c.routing {
		if err := c.ensureShardMap(ctx); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	groups := append([]*replicaGroup(nil), c.groups...)
	c.mu.Unlock()
	if !c.routing || len(groups) == 0 {
		return c.urisFrom(ctx, c.seedGroup(), prefix)
	}
	seen := make(map[string]struct{})
	var out []string
	for _, g := range groups {
		us, err := c.urisFrom(ctx, g, prefix)
		if err != nil {
			return nil, err
		}
		for _, u := range us {
			if _, dup := seen[u]; !dup {
				seen[u] = struct{}{}
				out = append(out, u)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func (c *Client) urisFrom(ctx context.Context, g *replicaGroup, prefix string) ([]string, error) {
	d, err := c.roundTrip(ctx, g, request(cmdURIs, func(e *xdr.Encoder) { e.PutString(prefix) }))
	if err != nil {
		return nil, err
	}
	return d.StringSliceMax(maxWireItems, maxWireValue)
}

// Vector returns the seed server's version vector
// (replication-internal; peer clients are single-group).
func (c *Client) Vector(ctx context.Context) (VersionVector, error) {
	d, err := c.roundTrip(ctx, c.seedGroup(), request(cmdVector, nil))
	if err != nil {
		return nil, err
	}
	return DecodeVersionVector(d)
}

// OpsSince returns ops the holder of vector theirs has not seen.
func (c *Client) OpsSince(ctx context.Context, theirs VersionVector, max int) ([]Assertion, error) {
	d, err := c.roundTrip(ctx, c.seedGroup(), request(cmdOpsSince, func(e *xdr.Encoder) {
		theirs.Encode(e)
		e.PutUint32(uint32(max))
	}))
	if err != nil {
		return nil, err
	}
	return DecodeAssertions(d)
}

// Apply pushes replication ops to the server (peer-to-peer
// path).
func (c *Client) Apply(ctx context.Context, ops []Assertion) (int, error) {
	d, err := c.roundTrip(ctx, c.seedGroup(), request(cmdApply, func(e *xdr.Encoder) {
		EncodeAssertions(e, ops)
	}))
	if err != nil {
		return 0, err
	}
	n, err := d.Uint32()
	return int(n), err
}

// Wait long-polls until the seed group's catalog version exceeds
// since or the server-side timeout elapses, returning the current
// version. ctx must outlive the server-side timeout for the poll to
// complete normally. Under shard routing a version stream covers one
// group only — use WaitURI to watch the group owning a specific URI.
func (c *Client) Wait(ctx context.Context, since uint64, timeout time.Duration) (uint64, error) {
	return c.waitOn(ctx, c.seedGroup(), since, timeout)
}

// WaitURI long-polls the catalog version of the replica group owning
// uri — the shard-aware watch primitive: a write to uri lands in that
// group, so its version stream is the one that advances.
func (c *Client) WaitURI(ctx context.Context, uri string, since uint64, timeout time.Duration) (uint64, error) {
	if !c.routing {
		return c.Wait(ctx, since, timeout)
	}
	if err := c.ensureShardMap(ctx); err != nil {
		return 0, err
	}
	return c.waitOn(ctx, c.route(uri), since, timeout)
}

func (c *Client) waitOn(ctx context.Context, g *replicaGroup, since uint64, timeout time.Duration) (uint64, error) {
	d, err := c.roundTrip(ctx, g, request(cmdWait, func(e *xdr.Encoder) {
		e.PutUint64(since)
		e.PutUint32(uint32(timeout / time.Millisecond))
	}))
	if err != nil {
		return 0, err
	}
	return d.Uint64()
}

// Stats returns (uris, live elements, tombstones) — summed across all
// groups under shard routing, so the total reflects the whole sharded
// catalog. Config-namespace entries replicate per group and are counted
// once per group holding them.
func (c *Client) Stats(ctx context.Context) (uris, elems, tombs int, err error) {
	if c.routing {
		if err := c.ensureShardMap(ctx); err != nil {
			return 0, 0, 0, err
		}
	}
	c.mu.Lock()
	groups := append([]*replicaGroup(nil), c.groups...)
	c.mu.Unlock()
	if !c.routing || len(groups) == 0 {
		return c.statsFrom(ctx, c.seedGroup())
	}
	for _, g := range groups {
		u, el, tb, err := c.statsFrom(ctx, g)
		if err != nil {
			return 0, 0, 0, err
		}
		uris += u
		elems += el
		tombs += tb
	}
	return uris, elems, tombs, nil
}

func (c *Client) statsFrom(ctx context.Context, g *replicaGroup) (uris, elems, tombs int, err error) {
	d, err := c.roundTrip(ctx, g, request(cmdStats, nil))
	if err != nil {
		return 0, 0, 0, err
	}
	u, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	el, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	tb, err := d.Uint32()
	if err != nil {
		return 0, 0, 0, err
	}
	return int(u), int(el), int(tb), nil
}

// WaitFor polls until (uri, name) has a live value or ctx ends —
// the client-side rendezvous primitive SNIPE components use to wait for
// each other's metadata to appear. The long-poll rides the version
// stream of the group owning uri, so it works unchanged under sharding.
func (c *Client) WaitFor(ctx context.Context, uri, name string) (string, error) {
	var version uint64
	for {
		v, ok, err := c.FirstValue(ctx, uri, name)
		if err == nil && ok {
			return v, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			if err != nil {
				return "", fmt.Errorf("rcds: waiting for %s %s: %w", uri, name, err)
			}
			return "", fmt.Errorf("rcds: timeout waiting for %s %s", uri, name)
		}
		pollWait := 200 * time.Millisecond
		if deadline, ok := ctx.Deadline(); ok {
			if remaining := time.Until(deadline); remaining < pollWait {
				pollWait = remaining
			}
		}
		if pollWait <= 0 {
			continue
		}
		// Use the long-poll to avoid busy-waiting; ignore errors, the
		// next FirstValue will fail over.
		if nv, err := c.WaitURI(ctx, uri, version, pollWait); err == nil {
			version = nv
		} else if ctx.Err() == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
}
