package rcds

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Catalog sharding (DESIGN.md "Sharded catalog"): the URI namespace is
// partitioned across replica groups by consistent hashing over the URI
// path. Each URI is owned by exactly one group; writes and watches fan
// out only within the owning group, so catalog capacity scales with the
// number of groups instead of every replica holding everything.
//
// The shard map itself lives in the catalog under a well-known URI in
// the config namespace, which is exempt from shard routing: any replica
// answers config reads, so a client can bootstrap the map from its seed
// replicas before it knows any shard exists. Servers enforce ownership
// and answer an op on a URI they do not own with a statusWrongShard
// redirect carrying the owning group and the server's map epoch; the
// client re-resolves the map and retries shard-side.

const (
	// ConfigPrefix is the URI namespace exempt from shard routing:
	// config entries are replicated per group and served by any replica.
	ConfigPrefix = "snipe://config/"
	// ShardMapURI is the well-known catalog URI the shard map is stored
	// under (attribute AttrShardMap).
	ShardMapURI = ConfigPrefix + "rcds/shard-map"
	// AttrShardMap is the assertion name holding the encoded shard map.
	AttrShardMap = "shard-map"
)

// IsConfigURI reports whether uri is in the globally served config
// namespace, exempt from shard ownership checks.
func IsConfigURI(uri string) bool { return strings.HasPrefix(uri, ConfigPrefix) }

// ShardKey returns the portion of a URI that shard hashing covers: the
// path, with the scheme stripped, so that "snipe://hosts/h1" and URN
// forms hash by what they name rather than how they are spelled.
func ShardKey(uri string) string {
	if i := strings.Index(uri, "://"); i >= 0 {
		return uri[i+3:]
	}
	if rest, ok := strings.CutPrefix(uri, "urn:"); ok {
		return rest
	}
	return uri
}

// ShardOf returns the owning group index for uri among n groups. It is
// the one hash every router — client, server, bench verifier — must
// agree on: 64-bit FNV-1a of the shard key fed to jump consistent
// hashing, so changing the group count moves only ~1/n of the keys.
func ShardOf(uri string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(ShardKey(uri)))
	return int(jumpHash(h.Sum64(), n))
}

// jumpHash is Lamping & Veach's jump consistent hash: maps key to a
// bucket in [0, buckets) such that growing the bucket count relocates
// only keys that move to the new buckets.
func jumpHash(key uint64, buckets int) int32 {
	var b int64 = -1
	var j int64
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int32(b)
}

// ShardMap assigns every catalog URI to one replica group. Epoch orders
// map revisions: a server rejecting an op includes its epoch, and a
// client only installs a fetched map with a strictly higher epoch than
// the one it holds.
type ShardMap struct {
	Epoch  uint64
	Groups [][]string // replica addresses per group, index = group id
}

// NumShards returns the group count.
func (m *ShardMap) NumShards() int { return len(m.Groups) }

// Owner returns the group index owning uri.
func (m *ShardMap) Owner(uri string) int { return ShardOf(uri, len(m.Groups)) }

// ErrBadShardMap reports an unparseable or invalid shard map encoding.
var ErrBadShardMap = errors.New("rcds: bad shard map")

// Format encodes the map as the catalog value stored under ShardMapURI:
//
//	v1 epoch=3 groups=host:1,host:2|host:3,host:4
//
// Addresses must not contain spaces, commas or pipes.
func (m *ShardMap) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1 epoch=%d groups=", m.Epoch)
	for i, g := range m.Groups {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strings.Join(g, ","))
	}
	return b.String()
}

// ParseShardMap decodes a value written by Format.
func ParseShardMap(s string) (*ShardMap, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 || fields[0] != "v1" {
		return nil, fmt.Errorf("%w: %q", ErrBadShardMap, s)
	}
	epochStr, ok := strings.CutPrefix(fields[1], "epoch=")
	if !ok {
		return nil, fmt.Errorf("%w: missing epoch in %q", ErrBadShardMap, s)
	}
	epoch, err := strconv.ParseUint(epochStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: epoch %q: %v", ErrBadShardMap, epochStr, err)
	}
	groupsStr, ok := strings.CutPrefix(fields[2], "groups=")
	if !ok {
		return nil, fmt.Errorf("%w: missing groups in %q", ErrBadShardMap, s)
	}
	m := &ShardMap{Epoch: epoch}
	for _, g := range strings.Split(groupsStr, "|") {
		var addrs []string
		for _, a := range strings.Split(g, ",") {
			if a == "" {
				return nil, fmt.Errorf("%w: empty address in %q", ErrBadShardMap, s)
			}
			addrs = append(addrs, a)
		}
		m.Groups = append(m.Groups, addrs)
	}
	if len(m.Groups) == 0 {
		return nil, fmt.Errorf("%w: no groups in %q", ErrBadShardMap, s)
	}
	return m, nil
}

// ErrWrongShard is the errors.Is target for wrong-shard redirects.
var ErrWrongShard = errors.New("rcds: wrong shard")

// WrongShardError is the typed error a shard-enforcing server answers
// with when an op names a URI owned by another group. Group is the
// owning group under the server's map; Epoch is that map's revision, so
// a client holding an older map knows to re-resolve before retrying.
type WrongShardError struct {
	Group int
	Epoch uint64
}

func (e *WrongShardError) Error() string {
	return fmt.Sprintf("rcds: wrong shard (owner group %d, map epoch %d)", e.Group, e.Epoch)
}

// Unwrap makes errors.Is(err, ErrWrongShard) hold.
func (e *WrongShardError) Unwrap() error { return ErrWrongShard }
