package rcds

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"snipe/internal/netsim"
	"snipe/internal/testutil"
)

func TestStoreSnapshotPagePagination(t *testing.T) {
	s := NewStore("rc0")
	const n = 25
	for i := 0; i < n; i++ {
		s.Set(fmt.Sprintf("urn:u%02d", i), "k", "v")
	}
	s.Remove("urn:u03", "k", "v") // tombstone must survive the dump

	var got []Assertion
	after, pages := "", 0
	for {
		ops, next, vv := s.SnapshotPage(after, 7)
		if len(vv) == 0 {
			t.Fatal("page carried no version vector")
		}
		got = append(got, ops...)
		pages++
		if next == "" {
			break
		}
		if next <= after {
			t.Fatalf("cursor not advancing: %q -> %q", after, next)
		}
		after = next
	}
	if pages < 3 {
		t.Fatalf("%d pages for %d URIs at 7/page, want several", pages, n)
	}
	uris := map[string]bool{}
	tombs := 0
	for _, a := range got {
		uris[a.URI] = true
		if a.Deleted {
			tombs++
		}
	}
	if len(uris) != n || tombs != 1 {
		t.Fatalf("dump covers %d URIs (%d tombstones), want %d (1)", len(uris), tombs, n)
	}
	// A page never splits a URI: re-dump with maxOps 1 and confirm each
	// page still carries whole URIs.
	s.Add("urn:u00", "k", "second")
	ops, next, _ := s.SnapshotPage("", 1)
	if len(ops) < 2 || ops[0].URI != ops[1].URI {
		t.Fatalf("page split a URI: %v (next %q)", ops, next)
	}
}

func TestStoreCompactionFloor(t *testing.T) {
	s := NewStore("rc0")
	for i := 0; i < 100; i++ {
		s.Set("urn:hot", "k", fmt.Sprintf("v%d", i))
	}
	if !s.CanServeTail(VersionVector{}) {
		t.Fatal("uncompacted log must serve any tail")
	}
	before := s.LogLen()
	dropped := s.Compact(10)
	if dropped == 0 || s.LogLen() >= before {
		t.Fatalf("Compact dropped %d (log %d -> %d)", dropped, before, s.LogLen())
	}
	if s.CanServeTail(VersionVector{}) {
		t.Fatal("empty vector is below the floor after compaction")
	}
	if !s.CanServeTail(s.Vector()) {
		t.Fatal("an up-to-date vector must still be tail-servable")
	}
	// Snapshot install + MergeVector lands a fresh replica above the floor.
	fresh := NewStore("rc1")
	ops, next, vv := s.SnapshotPage("", 0)
	if next != "" {
		t.Fatalf("single-page dump expected, got cursor %q", next)
	}
	fresh.InstallSnapshotOps(ops)
	fresh.MergeVector(vv)
	if !s.CanServeTail(fresh.Vector()) {
		t.Fatal("snapshot-installed replica still below the floor")
	}
	if fresh.ContentHash() != s.ContentHash() {
		t.Fatal("snapshot install did not converge byte-identically")
	}
}

func TestSyncFromPeerTailPath(t *testing.T) {
	servers := startReplicaGroup(t, 1, nil)
	src := servers[0].Store()
	for i := 0; i < 50; i++ {
		src.Set(fmt.Sprintf("urn:t%d", i), "k", "v")
	}
	dst := NewStore("rcX")
	c := NewClient(groupAddrs(servers), nil)
	defer c.Close()
	res, err := SyncFromPeer(context.Background(), dst, c, 7) // force paging
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedSnapshot || res.Snapshots != 0 {
		t.Fatalf("tail-servable gap used snapshot: %+v", res)
	}
	if res.TailOps == 0 || dst.ContentHash() != src.ContentHash() {
		t.Fatalf("tail sync did not converge: %+v", res)
	}
}

func TestSyncFromPeerSnapshotPath(t *testing.T) {
	servers := startReplicaGroup(t, 1, nil)
	src := servers[0].Store()
	// Long history, small catalog: 20 URIs overwritten 50 times each,
	// cycling two values so elements supersede instead of piling up new
	// tombstones — the snapshot stays O(catalog) while history grows.
	const uris, rewrites = 20, 50
	history := 0
	for r := 0; r < rewrites; r++ {
		for i := 0; i < uris; i++ {
			history += len(src.Set(fmt.Sprintf("urn:s%d", i), "k", fmt.Sprintf("v%d", r%2)))
		}
	}
	src.Remove("urn:s0", "k", fmt.Sprintf("v%d", rewrites-1))
	history++
	src.Compact(5)

	dst := NewStore("rcY")
	c := NewClient(groupAddrs(servers), nil)
	defer c.Close()
	res, err := SyncFromPeer(context.Background(), dst, c, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedSnapshot {
		t.Fatalf("stale replica bypassed the snapshot: %+v", res)
	}
	if dst.ContentHash() != src.ContentHash() {
		t.Fatal("snapshot sync did not converge byte-identically")
	}
	// The point of the snapshot: transfer is O(catalog), not O(history).
	if total := res.SnapshotOps + res.TailOps; total >= history/2 {
		t.Fatalf("rejoin transferred %d ops against %d history ops", total, history)
	}
	snap := src.Metrics().Snapshot()
	if snap.Counters["snapshot_pages_served"] == 0 {
		t.Fatal("server never counted a snapshot page")
	}
	if snap.Counters["log_compacted_ops"] == 0 {
		t.Fatal("store never counted compacted ops")
	}
}

// TestServerRejoinViaSnapshot is the full crash/rejoin cycle: a replica
// misses a long overwrite history, the survivor compacts its log, and
// the rejoiner's own anti-entropy loop converges it through the
// snapshot path without history replay.
func TestServerRejoinViaSnapshot(t *testing.T) {
	servers := startReplicaGroup(t, 2, nil)
	c := NewClient([]string{servers[0].Addr()}, nil)
	defer c.Close()
	if err := c.Set(context.Background(), "urn:pre", "k", "v"); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		_, ok := servers[1].Store().FirstValue("urn:pre", "k")
		return ok
	}, "initial write never replicated")

	// Replica 1 goes down and misses a long history.
	downStore := servers[1].Store()
	servers[1].Close()
	for r := 0; r < 30; r++ {
		for i := 0; i < 10; i++ {
			if err := c.Set(context.Background(), fmt.Sprintf("urn:r%d", i), "k", fmt.Sprintf("v%d", r)); err != nil {
				t.Fatal(err)
			}
		}
	}
	servers[0].Store().Compact(5)

	// Restart over the surviving store; AE must use the snapshot path.
	rejoin := NewServer(downStore,
		WithPeers(servers[0].Addr()),
		WithAntiEntropyInterval(20*time.Millisecond))
	if err := rejoin.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer rejoin.Close()
	// Vector coverage first: content can match while the sync is still
	// mid-snapshot (the differing URIs may sort into early pages); only
	// a merged base vector proves the transfer actually completed.
	testutil.WaitFor(t, 10*time.Second, func() bool {
		return downStore.Vector().Dominates(servers[0].Store().Vector()) &&
			downStore.ContentHash() == servers[0].Store().ContentHash()
	}, "rejoining replica never converged")
	snap := servers[0].Store().Metrics().Snapshot()
	if snap.Counters["snapshot_pages_served"] == 0 {
		t.Fatal("rejoin did not go through the snapshot path")
	}
	if snap.Counters["snapshot_ops_installed"] != 0 {
		t.Fatal("survivor should install nothing; the rejoiner does")
	}
	if downStore.Metrics().Snapshot().Counters["snapshot_ops_installed"] == 0 {
		t.Fatal("rejoiner installed no snapshot ops")
	}
}

// TestPartitionRejoinViaSnapshot drives the same rejoin through a
// netsim partition: the replication link is severed via a Fabric gate
// (pushes and pulls are skipped while partitioned), the connected side
// accumulates and compacts history, and healing the partition lets
// anti-entropy converge the stale side through the snapshot path.
func TestPartitionRejoinViaSnapshot(t *testing.T) {
	fab := netsim.NewFabric()
	stores := []*Store{NewStore("rc0"), NewStore("rc1")}
	servers := make([]*Server, 2)
	addrToNode := make(map[string]string)
	var mkGate = func(self string) func(string) error {
		return func(peer string) error {
			node, ok := addrToNode[peer]
			if !ok {
				return nil
			}
			return fab.Gate(self, node)()
		}
	}
	for i := range servers {
		servers[i] = NewServer(stores[i],
			WithAntiEntropyInterval(20*time.Millisecond),
			WithPeerGate(mkGate(fmt.Sprintf("n%d", i))))
		if err := servers[i].Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer servers[i].Close()
	}
	for i := range servers {
		addrToNode[servers[i].Addr()] = fmt.Sprintf("n%d", i)
	}
	servers[0].SetPeers(servers[1].Addr())
	servers[1].SetPeers(servers[0].Addr())

	c := NewClient([]string{servers[0].Addr()}, nil)
	defer c.Close()
	if err := c.Set(context.Background(), "urn:pre", "k", "v"); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		_, ok := stores[1].FirstValue("urn:pre", "k")
		return ok
	}, "write never crossed the healthy link")

	fab.Partition("n0", "n1")
	pushesBefore := servers[0].PushFailures()
	for r := 0; r < 25; r++ {
		for i := 0; i < 8; i++ {
			if err := c.Set(context.Background(), fmt.Sprintf("urn:p%d", i), "k", fmt.Sprintf("v%d", r)); err != nil {
				t.Fatal(err)
			}
		}
	}
	stores[0].Compact(5)
	if servers[0].PushFailures() <= pushesBefore {
		t.Fatal("partitioned pushes were not counted as failures")
	}
	if h0, h1 := stores[0].ContentHash(), stores[1].ContentHash(); h0 == h1 {
		t.Fatal("stores converged across a severed link")
	}

	fab.Heal("n0", "n1")
	testutil.WaitFor(t, 10*time.Second, func() bool {
		return stores[1].Vector().Dominates(stores[0].Vector()) &&
			stores[0].ContentHash() == stores[1].ContentHash()
	}, "stale side never converged after heal")
	if stores[1].Metrics().Snapshot().Counters["snapshot_ops_installed"] == 0 {
		t.Fatal("healed rejoin did not use the snapshot path")
	}
	if !strings.Contains(fmt.Sprint(stores[1].Vector()), "rc0") {
		t.Fatal("rejoiner never learned the survivor's origin")
	}
}
