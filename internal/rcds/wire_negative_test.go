package rcds

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"snipe/internal/xdr"
)

// TestParseResponseNegative exercises the hostile shapes a response
// body can take: truncated frames, an error string whose declared
// length exceeds both the cap and the bytes present, and status tags
// the protocol does not define.
func TestParseResponseNegative(t *testing.T) {
	// statusErr followed by a 2 GB claimed string length and no body.
	oversized := []byte{statusErr}
	oversized = binary.BigEndian.AppendUint32(oversized, 2<<30)

	// statusErr with a declared length just over the per-value cap,
	// and enough real bytes to back it: the cap must fire, not the
	// truncation check.
	overCap := []byte{statusErr}
	overCap = binary.BigEndian.AppendUint32(overCap, maxWireValue+1)
	overCap = append(overCap, make([]byte, maxWireValue+3)...)

	cases := []struct {
		name    string
		body    []byte
		wantErr error  // errors.Is target, nil = any error
		wantSub string // substring of the message, "" = skip
	}{
		{name: "empty body", body: nil},
		{name: "truncated error string", body: []byte{statusErr, 0, 0, 0, 10, 'h', 'i'}},
		{name: "oversized error length", body: oversized, wantErr: xdr.ErrStringTooLong},
		{name: "error length over value cap", body: overCap, wantErr: xdr.ErrStringTooLong},
		{name: "unknown status tag", body: []byte{0x7f, 0, 0, 0, 0}, wantErr: ErrUnknownStatus, wantSub: "unknown response status"},
		{name: "high status tag", body: []byte{0xff}, wantErr: ErrUnknownStatus, wantSub: "unknown response status"},
		{name: "server error passes through", body: errResponse(errors.New("boom")), wantErr: ErrServer, wantSub: "boom"},
		{name: "wrong shard truncated after group", body: []byte{statusWrongShard, 0, 0, 0, 2}},
		{name: "wrong shard empty payload", body: []byte{statusWrongShard}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := parseResponse(tc.body)
			if err == nil {
				t.Fatalf("parseResponse(%x) accepted (decoder %v)", tc.body, d)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want errors.Is(%v)", err, tc.wantErr)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
		})
	}

	// The well-formed shapes still parse.
	if _, err := parseResponse(okResponse(nil)); err != nil {
		t.Fatalf("empty OK response rejected: %v", err)
	}
	if _, err := parseResponse(okResponse(func(e *xdr.Encoder) { e.PutString("x") })); err != nil {
		t.Fatalf("OK response rejected: %v", err)
	}

	// A well-formed wrong-shard redirect surfaces as the typed error,
	// not an opaque server error: the router matches on it to re-resolve
	// the shard map.
	_, err := parseResponse(wrongShardResponse(3, 9))
	if !errors.Is(err, ErrWrongShard) {
		t.Fatalf("wrong-shard response: error %v, want errors.Is(ErrWrongShard)", err)
	}
	var ws *WrongShardError
	if !errors.As(err, &ws) || ws.Group != 3 || ws.Epoch != 9 {
		t.Fatalf("wrong-shard response decoded %+v, want group 3 epoch 9", ws)
	}
}
