package rcds

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"snipe/internal/testutil"
)

func TestShardKeyNormalizesSpellings(t *testing.T) {
	cases := []struct{ uri, want string }{
		{"snipe://hosts/h1", "hosts/h1"},
		{"urn:snipe:process:p1", "snipe:process:p1"},
		{"plain/path", "plain/path"},
		{"snipe://config/rcds/shard-map", "config/rcds/shard-map"},
	}
	for _, tc := range cases {
		if got := ShardKey(tc.uri); got != tc.want {
			t.Errorf("ShardKey(%q) = %q, want %q", tc.uri, got, tc.want)
		}
	}
}

func TestShardOfStableAndBounded(t *testing.T) {
	for n := 1; n <= 16; n *= 2 {
		for i := 0; i < 1000; i++ {
			uri := fmt.Sprintf("snipe://hosts/h%d", i)
			g := ShardOf(uri, n)
			if g < 0 || g >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", uri, n, g)
			}
			if again := ShardOf(uri, n); again != g {
				t.Fatalf("ShardOf(%q, %d) unstable: %d then %d", uri, n, g, again)
			}
		}
	}
}

func TestShardOfDistribution(t *testing.T) {
	const n, keys = 4, 20000
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[ShardOf(fmt.Sprintf("snipe://files/f%d", i), n)]++
	}
	for g, c := range counts {
		// Perfectly uniform would be keys/n; allow ±25%.
		if c < keys/n*3/4 || c > keys/n*5/4 {
			t.Fatalf("group %d holds %d of %d keys: skewed %v", g, c, keys, counts)
		}
	}
}

func TestJumpHashMinimalMovement(t *testing.T) {
	// Growing 4 -> 5 groups must move only keys destined for the new
	// group — roughly 1/5 of them — and never relocate between old
	// groups.
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		uri := fmt.Sprintf("urn:snipe:process:p%d", i)
		before, after := ShardOf(uri, 4), ShardOf(uri, 5)
		if before != after {
			moved++
			if after != 4 {
				t.Fatalf("%q moved between old groups: %d -> %d", uri, before, after)
			}
		}
	}
	if moved < keys/10 || moved > keys*3/10 {
		t.Fatalf("moved %d of %d keys on 4->5 growth, want ~1/5", moved, keys)
	}
}

func TestShardMapFormatParseRoundTrip(t *testing.T) {
	m := &ShardMap{Epoch: 7, Groups: [][]string{
		{"h1:100", "h2:100"},
		{"h3:100"},
		{"h4:100", "h5:100", "h6:100"},
	}}
	got, err := ParseShardMap(m.Format())
	if err != nil {
		t.Fatalf("ParseShardMap(%q): %v", m.Format(), err)
	}
	if got.Epoch != m.Epoch || got.NumShards() != m.NumShards() {
		t.Fatalf("round trip lost shape: %+v vs %+v", got, m)
	}
	for i := range m.Groups {
		if len(got.Groups[i]) != len(m.Groups[i]) {
			t.Fatalf("group %d: %v vs %v", i, got.Groups[i], m.Groups[i])
		}
		for j := range m.Groups[i] {
			if got.Groups[i][j] != m.Groups[i][j] {
				t.Fatalf("group %d addr %d: %q vs %q", i, j, got.Groups[i][j], m.Groups[i][j])
			}
		}
	}
}

func TestParseShardMapNegative(t *testing.T) {
	for _, s := range []string{
		"",
		"v2 epoch=1 groups=a",
		"v1 groups=a",
		"v1 epoch=x groups=a",
		"v1 epoch=1",
		"v1 epoch=1 groups=",
		"v1 epoch=1 groups=a,,b",
	} {
		if _, err := ParseShardMap(s); !errors.Is(err, ErrBadShardMap) {
			t.Errorf("ParseShardMap(%q) err = %v, want ErrBadShardMap", s, err)
		}
	}
}

func TestIsConfigURIExemption(t *testing.T) {
	if !IsConfigURI(ShardMapURI) {
		t.Fatal("the shard map URI itself must be config-exempt")
	}
	if IsConfigURI("snipe://hosts/h1") {
		t.Fatal("host URIs are not config")
	}
}

// startShardedCatalog launches groups of nReplicas servers each, all
// shard-enforcing under one map, publishes the map to every group's
// config namespace, and returns the map plus all servers (group-major).
func startShardedCatalog(t *testing.T, groups, nReplicas int) (*ShardMap, [][]*Server) {
	t.Helper()
	m := &ShardMap{Epoch: 1}
	all := make([][]*Server, groups)
	for g := 0; g < groups; g++ {
		all[g] = startReplicaGroup(t, nReplicas, nil)
		m.Groups = append(m.Groups, groupAddrs(all[g]))
	}
	for g := range all {
		for _, s := range all[g] {
			s.SetShard(g, m)
		}
	}
	if err := PublishShardMap(context.Background(), m, nil); err != nil {
		t.Fatal(err)
	}
	return m, all
}

func TestServerEnforcesShardOwnership(t *testing.T) {
	m, all := startShardedCatalog(t, 3, 1)
	// A raw single-group client pointed at group 0 must be redirected
	// for URIs the map assigns elsewhere.
	c := NewClient(m.Groups[0], nil)
	defer c.Close()
	var foreign string
	for i := 0; ; i++ {
		u := fmt.Sprintf("snipe://hosts/h%d", i)
		if m.Owner(u) != 0 {
			foreign = u
			break
		}
	}
	err := c.Set(context.Background(), foreign, AttrArch, "linux")
	var ws *WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("foreign write err = %v, want WrongShardError", err)
	}
	if ws.Group != m.Owner(foreign) || ws.Epoch != m.Epoch {
		t.Fatalf("redirect %+v, want group %d epoch %d", ws, m.Owner(foreign), m.Epoch)
	}
	if errors.Is(err, ErrWrongShard) == false {
		t.Fatal("WrongShardError must unwrap to ErrWrongShard")
	}
	// Reads are redirected too.
	if _, err := c.Get(context.Background(), foreign); !errors.As(err, &ws) {
		t.Fatalf("foreign read err = %v, want WrongShardError", err)
	}
	// Config URIs are served anywhere.
	if err := c.Set(context.Background(), ConfigPrefix+"x", "k", "v"); err != nil {
		t.Fatalf("config write rejected: %v", err)
	}
	if all[0][0].Store().Metrics().Snapshot().Counters["shard_rejects"] == 0 {
		t.Fatal("shard_rejects counter did not move")
	}
}

func TestRoutingClientSpansShards(t *testing.T) {
	m, all := startShardedCatalog(t, 4, 1)
	c := NewClient(m.Groups[0], nil, WithShardRouting())
	defer c.Close()

	const n = 64
	owned := make([]int, m.NumShards())
	for i := 0; i < n; i++ {
		uri := fmt.Sprintf("snipe://hosts/h%d", i)
		if err := c.Set(context.Background(), uri, AttrArch, fmt.Sprintf("a%d", i)); err != nil {
			t.Fatalf("Set %s: %v", uri, err)
		}
		owned[m.Owner(uri)]++
	}
	for g := range owned {
		if owned[g] == 0 {
			t.Fatalf("no test URI landed on group %d; widen n", g)
		}
	}
	// Every write landed on its owning group and only there.
	for g, servers := range all {
		uris, _, _ := servers[0].Store().Stats()
		want := owned[g] + 1 // + the shard map config entry
		if uris != want {
			t.Fatalf("group %d holds %d URIs, want %d", g, uris, want)
		}
	}
	// Reads route the same way.
	for i := 0; i < n; i++ {
		uri := fmt.Sprintf("snipe://hosts/h%d", i)
		v, ok, err := c.FirstValue(context.Background(), uri, AttrArch)
		if err != nil || !ok || v != fmt.Sprintf("a%d", i) {
			t.Fatalf("FirstValue(%s) = %q %v %v", uri, v, ok, err)
		}
	}
	// URIs fans out and merges across groups.
	uris, err := c.URIs(context.Background(), "snipe://hosts/")
	if err != nil || len(uris) != n {
		t.Fatalf("URIs = %d entries, %v; want %d", len(uris), err, n)
	}
	// Stats sums across groups: n host URIs + one map entry per group.
	u, _, _, err := c.Stats(context.Background())
	if err != nil || u != n+m.NumShards() {
		t.Fatalf("Stats uris = %d, %v; want %d", u, err, n+m.NumShards())
	}
	if c.ShardMap() == nil || c.ShardMap().Epoch != m.Epoch {
		t.Fatalf("client map %+v, want epoch %d", c.ShardMap(), m.Epoch)
	}
	snap := c.MetricsSnapshot()
	if snap.Counters["shard_map_resolves"] == 0 {
		t.Fatal("client never resolved the shard map")
	}
	if snap.Counters["wrong_shard_redirects"] != 0 {
		t.Fatal("fresh-map routing should see no redirects")
	}
}

func TestRoutingClientRecoversFromStaleMap(t *testing.T) {
	m, all := startShardedCatalog(t, 2, 1)
	c := NewClient(m.Groups[0], nil, WithShardRouting())
	defer c.Close()
	// Resolve the epoch-1 map.
	if err := c.Set(context.Background(), "snipe://hosts/seed", AttrArch, "x"); err != nil {
		t.Fatal(err)
	}

	// Reshard: grow to 3 groups (epoch 2). The new group's servers join
	// the fabric; old servers learn the new map; the client still holds
	// epoch 1.
	extra := startReplicaGroup(t, 1, nil)
	m2 := &ShardMap{Epoch: 2, Groups: append(append([][]string{}, m.Groups...), groupAddrs(extra))}
	for g, servers := range all {
		for _, s := range servers {
			s.SetShard(g, m2)
		}
	}
	extra[0].SetShard(2, m2)
	if err := PublishShardMap(context.Background(), m2, nil); err != nil {
		t.Fatal(err)
	}

	// Find a URI the new map moves to the new group; the client's stale
	// map routes it to an old group, which redirects.
	var moved string
	for i := 0; ; i++ {
		u := fmt.Sprintf("snipe://hosts/m%d", i)
		if m2.Owner(u) == 2 && m.Owner(u) != 2 {
			moved = u
			break
		}
	}
	if err := c.Set(context.Background(), moved, AttrArch, "relocated"); err != nil {
		t.Fatalf("write after reshard: %v", err)
	}
	if got := c.ShardMap().Epoch; got != 2 {
		t.Fatalf("client map epoch %d after redirect, want 2", got)
	}
	if c.MetricsSnapshot().Counters["wrong_shard_redirects"] == 0 {
		t.Fatal("redirect counter did not move")
	}
	uris, _, _ := extra[0].Store().Stats()
	if uris != 2 { // the moved URI + the shard-map entry
		t.Fatalf("new group holds %d URIs, want 2", uris)
	}
}

func TestWaitURIWatchesOwningGroup(t *testing.T) {
	m, _ := startShardedCatalog(t, 2, 1)
	c := NewClient(m.Groups[0], nil, WithShardRouting())
	defer c.Close()
	w := NewClient(m.Groups[0], nil, WithShardRouting())
	defer w.Close()

	// Pick a URI owned by group 1: the seed group's version stream
	// never advances for it, so only a routed wait can see the write.
	var uri string
	for i := 0; ; i++ {
		u := fmt.Sprintf("snipe://hosts/w%d", i)
		if m.Owner(u) == 1 {
			uri = u
			break
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := w.WaitFor(context.Background(), uri, AttrArch)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.Set(context.Background(), uri, AttrArch, "up"); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("WaitFor: %v", err)
			}
			return true
		default:
			return false
		}
	}, "routed WaitFor never woke")
}

func TestShardedReadCacheCoherence(t *testing.T) {
	m, _ := startShardedCatalog(t, 2, 1)
	c := NewClient(m.Groups[0], nil, WithShardRouting(), WithReadCache())
	defer c.Close()
	writer := NewClient(m.Groups[0], nil, WithShardRouting())
	defer writer.Close()

	var uri string
	for i := 0; ; i++ {
		u := fmt.Sprintf("snipe://hosts/c%d", i)
		if m.Owner(u) == 1 {
			uri = u
			break
		}
	}
	if err := writer.Set(context.Background(), uri, AttrArch, "v1"); err != nil {
		t.Fatal(err)
	}
	// Warm the owning group's cache and wait for a cached hit.
	testutil.WaitFor(t, 5*time.Second, func() bool {
		before := c.MetricsSnapshot().Counters["cache_hits"]
		v, ok, err := c.FirstValue(context.Background(), uri, AttrArch)
		if err != nil || !ok || v != "v1" {
			t.Fatalf("FirstValue = %q %v %v", v, ok, err)
		}
		return c.MetricsSnapshot().Counters["cache_hits"] > before
	}, "read never served from the shard group's cache")
	// A foreign write through another client must invalidate via the
	// owning group's watch and become visible.
	if err := writer.Set(context.Background(), uri, AttrArch, "v2"); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		v, _, err := c.FirstValue(context.Background(), uri, AttrArch)
		if err != nil {
			t.Fatalf("FirstValue: %v", err)
		}
		return v == "v2"
	}, "cached read never converged to the foreign write")
}
