package rcds

import (
	"context"
	"errors"
	"testing"

	"snipe/internal/seckey"
)

type detRand struct{ state uint64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}

func TestSignedAssertionEndToEnd(t *testing.T) {
	servers := startReplicaGroup(t, 2, nil)
	c := NewClient(groupAddrs(servers), nil)
	defer c.Close()

	alice, err := seckey.NewPrincipal("urn:snipe:user:alice", &detRand{state: 1})
	if err != nil {
		t.Fatal(err)
	}
	mallory, _ := seckey.NewPrincipal("urn:snipe:user:mallory", &detRand{state: 2})

	if err := c.PublishKey(context.Background(), alice); err != nil {
		t.Fatal(err)
	}
	c.PublishKey(context.Background(), mallory)

	// Alice publishes a signed location; Mallory forges one claiming to
	// be Alice; an unsigned value is also present.
	if err := c.AddSignedBy(context.Background(), alice, "urn:snipe:file:data", AttrLocation, "https://good/data"); err != nil {
		t.Fatal(err)
	}
	forged := SignAssertionValue(mallory, "urn:snipe:file:data", AttrLocation, "https://evil/data")
	c.AddSigned(context.Background(), "urn:snipe:file:data", AttrLocation, "https://evil/data", alice.Name, forged)
	c.Add(context.Background(), "urn:snipe:file:data", AttrLocation, "https://unsigned/data")

	values, signers, err := c.VerifiedValues(context.Background(), "urn:snipe:file:data", AttrLocation)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 1 || values[0] != "https://good/data" || signers[0] != alice.Name {
		t.Fatalf("verified values: %v by %v", values, signers)
	}
}

func TestVerifyAssertionDirect(t *testing.T) {
	alice, _ := seckey.NewPrincipal("alice", &detRand{state: 3})
	a := Assertion{URI: "u", Name: "n", Value: "v", Signer: "alice"}
	a.Signature = SignAssertionValue(alice, "u", "n", "v")
	if err := VerifyAssertion(&a, alice.Public()); err != nil {
		t.Fatal(err)
	}
	// Any field change breaks it.
	b := a
	b.Value = "tampered"
	if err := VerifyAssertion(&b, alice.Public()); !errors.Is(err, ErrUnverified) {
		t.Fatalf("tampered: %v", err)
	}
	c := a
	c.Signature = nil
	if err := VerifyAssertion(&c, alice.Public()); !errors.Is(err, ErrUnverified) {
		t.Fatalf("unsigned: %v", err)
	}
}

func TestSignedAssertionSurvivesReplication(t *testing.T) {
	servers := startReplicaGroup(t, 2, nil)
	c0 := NewClient([]string{servers[0].Addr()}, nil)
	defer c0.Close()
	alice, _ := seckey.NewPrincipal("urn:a", &detRand{state: 4})
	c0.PublishKey(context.Background(), alice)
	if err := c0.AddSignedBy(context.Background(), alice, "urn:doc", "hash", "abc123"); err != nil {
		t.Fatal(err)
	}
	// Read through the other replica: the signature replicated intact.
	c1 := NewClient([]string{servers[1].Addr()}, nil)
	defer c1.Close()
	if _, err := c1.WaitFor(ctxTimeout(t, "5s"), "urn:doc", "hash"); err != nil {
		t.Fatal(err)
	}
	values, _, err := c1.VerifiedValues(context.Background(), "urn:doc", "hash")
	if err != nil || len(values) != 1 || values[0] != "abc123" {
		t.Fatalf("replicated signed value: %v %v", values, err)
	}
}
