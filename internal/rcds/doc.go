// Package rcds implements the Resource Cataloging and Distribution
// System substrate that SNIPE is built on (paper §2.1, §3.1, §5.2).
//
// RCDS maintains, for every resource named by a URI (URL or URN), a set
// of metadata assertions — "name=value" pairs — in a highly distributed
// and replicated registry. The registry uses a "true master–master
// update data model" (§7): every RC server accepts writes and
// propagates them to its peers, trading strict serializability for
// availability, exactly the design point the paper argues for in
// replicated registries (§2.1).
//
// The replication model is a last-writer-wins element set: each
// (URI, name, value) element carries a Lamport clock and the origin
// server's identity; concurrent updates are resolved by (clock, origin)
// ordering, deletions are tombstones, and anti-entropy exchanges use
// per-origin version vectors over each server's op log. This gives the
// paper's availability-over-atomicity consistency ("a consistency model
// which sacrifices strict atomicity and serializability", §2.1) with
// convergence guaranteed by commutative, idempotent merges.
//
// # Structure
//
// The package splits three ways, mirroring the deployment shape:
//
//   - Store (store.go, persist.go) is the replica state machine: the
//     assertion catalog, the per-origin op log with its version vector
//     and compaction floor, and the merge rules. It is purely local —
//     no I/O beyond explicit Save/Load — so every replication property
//     is testable without a network.
//   - Server (server.go, wire.go) puts a Store on the wire: a
//     multiplexed length-prefixed binary protocol with optional HMAC
//     authentication, push replication to peers, periodic anti-entropy
//     pulls (SyncFromPeer), and optional shard enforcement plus log
//     compaction.
//   - Client (client.go, cache.go, shard.go, sync.go) is what the rest
//     of SNIPE holds: failover across a replica group, request
//     multiplexing, the watch-coherent read cache, and — under
//     WithShardRouting — routing of URI-keyed operations to the replica
//     group that owns the URI under the catalog's shard map.
//
// # Sharding
//
// A catalog too large for one replica group is partitioned by
// consistent hashing over the URI path (ShardOf): each URI is owned by
// exactly one group, writes and watches fan out only within the owning
// group, and the shard map itself lives in the catalog's config
// namespace (ShardMapURI) so clients bootstrap it from any replica.
// Servers answer operations on foreign URIs with a typed wrong-shard
// redirect; clients re-resolve the map and retry. Replicas that fall
// behind a peer's compaction floor converge via a paged catalog
// snapshot plus the op tail since its base vector (SyncFromPeer)
// instead of replaying the full write history. DESIGN.md "Sharded
// catalog" specifies the protocol and its failure modes.
package rcds
