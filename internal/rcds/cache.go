package rcds

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Read-cache coherence (see DESIGN.md):
//
// A watch goroutine rides the server's Wait long-poll. While the watch
// is healthy the cache serves Get/Values/FirstValue locally; whenever
// the watched catalog version advances — any write, anywhere in the
// replica group that reached our server — the cache is flushed and the
// next read refetches. A watch error (server unreachable) or a replica
// failover empties the cache and disables it until the watch
// re-establishes, so a partitioned client never serves stale reads
// forever. Reads are therefore stale by at most one Wait notification
// latency, and a read observed after the watch has seen a write's
// sequence number is guaranteed to reflect that write.
//
// Fills are epoch-guarded: a response that was in flight across a flush
// must not repopulate the cache with pre-flush data, so each fill
// carries the epoch observed when the request was issued and is
// discarded if a flush intervened.

// watchPoll is the server-side long-poll window of the watch loop.
const watchPoll = 2 * time.Second

// watchRetry is how long the watch backs off after an error before
// re-establishing.
const watchRetry = 100 * time.Millisecond

// maxCacheEntries bounds the read cache; at the bound, new fills are
// dropped (the frequent version-advance flushes keep it small anyway).
const maxCacheEntries = 4096

type cacheKind uint8

const (
	kindGet cacheKind = iota
	kindValues
	kindFirst
)

type cacheKey struct {
	kind cacheKind
	uri  string
	name string
}

type cacheVal struct {
	assertions []Assertion // kindGet
	values     []string    // kindValues
	value      string      // kindFirst
	ok         bool        // kindFirst: value present
}

// readCache is the client-side read cache. valid is true only while the
// watch loop is confirming coherence; epoch increments on every flush
// so in-flight fills that straddle a flush are discarded.
type readCache struct {
	mu      sync.Mutex
	valid   bool
	epoch   uint64
	entries map[cacheKey]cacheVal
}

func newReadCache() *readCache {
	return &readCache{entries: make(map[cacheKey]cacheVal)}
}

// epochNow returns the current fill epoch; callers snapshot it before
// issuing the remote read backing a fill.
func (rc *readCache) epochNow() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.epoch
}

// flush empties the cache (version advanced) but keeps it enabled.
func (rc *readCache) flush() {
	rc.mu.Lock()
	rc.epoch++
	rc.entries = make(map[cacheKey]cacheVal)
	rc.mu.Unlock()
}

// invalidateAll empties and disables the cache until the watch loop
// re-enables it (watch error, replica failover).
func (rc *readCache) invalidateAll() {
	rc.mu.Lock()
	rc.epoch++
	rc.valid = false
	rc.entries = make(map[cacheKey]cacheVal)
	rc.mu.Unlock()
}

// setValid re-enables serving after a successful watch poll.
func (rc *readCache) setValid() {
	rc.mu.Lock()
	rc.valid = true
	rc.mu.Unlock()
}

// invalidateURI drops every cached read of uri (a write through this
// client), preserving read-your-writes ahead of the watch notification.
func (rc *readCache) invalidateURI(uri string) {
	rc.mu.Lock()
	rc.epoch++
	for k := range rc.entries {
		if k.uri == uri {
			delete(rc.entries, k)
		}
	}
	rc.mu.Unlock()
}

func (rc *readCache) lookup(k cacheKey) (cacheVal, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if !rc.valid {
		return cacheVal{}, false
	}
	v, ok := rc.entries[k]
	return v, ok
}

func (rc *readCache) store(k cacheKey, v cacheVal, epoch uint64) {
	rc.mu.Lock()
	if rc.valid && rc.epoch == epoch && len(rc.entries) < maxCacheEntries {
		rc.entries[k] = v
	}
	rc.mu.Unlock()
}

func (rc *readCache) lookupGet(uri string) ([]Assertion, bool) {
	v, ok := rc.lookup(cacheKey{kind: kindGet, uri: uri})
	if !ok {
		return nil, false
	}
	return append([]Assertion(nil), v.assertions...), true
}

func (rc *readCache) storeGet(uri string, as []Assertion, epoch uint64) {
	rc.store(cacheKey{kind: kindGet, uri: uri},
		cacheVal{assertions: append([]Assertion(nil), as...)}, epoch)
}

func (rc *readCache) lookupValues(uri, name string) ([]string, bool) {
	v, ok := rc.lookup(cacheKey{kind: kindValues, uri: uri, name: name})
	if !ok {
		return nil, false
	}
	return append([]string(nil), v.values...), true
}

func (rc *readCache) storeValues(uri, name string, vals []string, epoch uint64) {
	rc.store(cacheKey{kind: kindValues, uri: uri, name: name},
		cacheVal{values: append([]string(nil), vals...)}, epoch)
}

func (rc *readCache) lookupFirst(uri, name string) (string, bool, bool) {
	v, ok := rc.lookup(cacheKey{kind: kindFirst, uri: uri, name: name})
	if !ok {
		return "", false, false
	}
	return v.value, v.ok, true
}

func (rc *readCache) storeFirst(uri, name, value string, present bool, epoch uint64) {
	rc.store(cacheKey{kind: kindFirst, uri: uri, name: name},
		cacheVal{value: value, ok: present}, epoch)
}

// watchLoop keeps one replica group's read cache coherent: it
// long-polls that group's catalog version and flushes the group's
// cached reads whenever the version advances. The poll itself
// multiplexes over the group's shared connection, so watching costs no
// dedicated connection and never blocks lookups. Under shard routing
// every group runs its own watchLoop — the coherence rule is per
// group, matching the per-group version streams.
func (c *Client) watchLoop(ctx context.Context, g *replicaGroup) {
	defer c.wg.Done()
	var since uint64
	for {
		if ctx.Err() != nil {
			return
		}
		pollCtx, cancel := context.WithTimeout(ctx, watchPoll+c.pollTimeout())
		v, err := c.waitOn(pollCtx, g, since, watchPoll)
		cancel()
		if err != nil {
			// Cannot confirm coherence; stop serving cached reads until
			// the watch re-establishes.
			g.cache.invalidateAll()
			if errors.Is(err, ErrClientClosed) {
				// Close() or a map change has begun retiring this group;
				// don't redial while the client waits on wg.
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(watchRetry):
			}
			continue
		}
		if v != since {
			g.cache.flush()
			since = v
		}
		g.cache.setValid()
	}
}

func (c *Client) pollTimeout() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timeout
}
