package pvm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"snipe/internal/testutil"
)

func newMachine(t *testing.T, nSlaves int, reg *Registry) (*Daemon, []*Daemon) {
	t.Helper()
	master, err := NewMaster("m0", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Kill)
	slaves := make([]*Daemon, nSlaves)
	for i := range slaves {
		s, err := Join(fmt.Sprintf("s%d", i+1), "127.0.0.1:0", master.Addr(), reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Kill)
		slaves[i] = s
	}
	return master, slaves
}

func TestTIDEncoding(t *testing.T) {
	tid := makeTID(3, 42)
	if tid.Host() != 3 || tid.Local() != 42 {
		t.Fatalf("TID fields: %d %d", tid.Host(), tid.Local())
	}
	if tid.String() != "t0003002a" {
		t.Fatalf("TID string: %s", tid)
	}
}

func TestJoinBuildsHostTable(t *testing.T) {
	master, slaves := newMachine(t, 2, NewRegistry())
	if len(master.Hosts()) != 3 {
		t.Fatalf("master table: %v", master.Hosts())
	}
	// Slaves eventually hold the full table (the last join's broadcast).
	for _, s := range slaves {
		testutil.WaitFor(t, 3*time.Second, func() bool { return len(s.Hosts()) == 3 },
			fmt.Sprintf("slave %s host table incomplete", s.Name()))
	}
	if master.Index() != 0 || slaves[0].Index() != 1 || slaves[1].Index() != 2 {
		t.Fatal("host indices wrong")
	}
}

func TestLocalTaskMessaging(t *testing.T) {
	reg := NewRegistry()
	echoed := make(chan string, 1)
	reg.Register("recv", func(ctx *TaskCtx) error {
		m, err := ctx.Recv(7, 5*time.Second)
		if err != nil {
			return err
		}
		echoed <- string(m.Payload)
		return nil
	})
	master, _ := newMachine(t, 0, reg)
	tid, err := master.SpawnLocal("recv", nil)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := master.SpawnLocal("recv", nil) // any task context to send from
	if err != nil {
		t.Fatal(err)
	}
	sctx, _ := master.Task(sender)
	if err := sctx.Send(tid, 7, []byte("local hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-echoed:
		if got != "local hello" {
			t.Fatalf("payload: %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered")
	}
}

func TestDaemonRoutedCrossHostMessaging(t *testing.T) {
	reg := NewRegistry()
	got := make(chan Message, 1)
	reg.Register("sink", func(ctx *TaskCtx) error {
		m, err := ctx.Recv(-1, 10*time.Second)
		if err != nil {
			return err
		}
		got <- m
		return nil
	})
	master, slaves := newMachine(t, 1, reg)
	// Sink on the slave, sender on the master: the message crosses
	// pvmd→pvmd.
	sinkTID, err := slaves[0].SpawnLocal("sink", nil)
	if err != nil {
		t.Fatal(err)
	}
	senderTID, err := master.SpawnLocal("sink", nil)
	if err != nil {
		t.Fatal(err)
	}
	sctx, _ := master.Task(senderTID)
	if err := sctx.Send(sinkTID, 9, []byte("across hosts")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Payload) != "across hosts" || m.Src != senderTID || m.Tag != 9 {
			t.Fatalf("message: %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-host message lost")
	}
}

func TestCentralizedSpawnRoundRobin(t *testing.T) {
	reg := NewRegistry()
	reg.Register("idle", func(ctx *TaskCtx) error {
		_, err := ctx.Recv(-1, 30*time.Second)
		_ = err
		return nil
	})
	master, slaves := newMachine(t, 2, reg)
	hosts := map[int]int{}
	for i := 0; i < 6; i++ {
		tid, err := master.Spawn("idle", nil)
		if err != nil {
			t.Fatal(err)
		}
		hosts[tid.Host()]++
	}
	// Round-robin over 3 hosts → 2 each.
	if hosts[0] != 2 || hosts[1] != 2 || hosts[2] != 2 {
		t.Fatalf("placement: %v", hosts)
	}
	_ = slaves
}

func TestSlaveSpawnViaMaster(t *testing.T) {
	reg := NewRegistry()
	reg.Register("quick", func(ctx *TaskCtx) error { return nil })
	_, slaves := newMachine(t, 2, reg)
	tid, err := slaves[0].Spawn("quick", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = tid
}

func TestSpawnUnknownProgram(t *testing.T) {
	master, _ := newMachine(t, 0, NewRegistry())
	if _, err := master.SpawnLocal("ghost", nil); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("want ErrUnknownProgram, got %v", err)
	}
}

func TestMasterFailureBreaksMachine(t *testing.T) {
	// The PVM weakness §2.2 documents: master death breaks joins and
	// spawns for the whole virtual machine.
	reg := NewRegistry()
	reg.Register("quick", func(ctx *TaskCtx) error { return nil })
	master, slaves := newMachine(t, 1, reg)
	master.Kill()

	if _, err := slaves[0].Spawn("quick", nil); err == nil {
		t.Fatal("spawn succeeded without master")
	}
	if _, err := Join("late", "127.0.0.1:0", master.Addr(), reg); !errors.Is(err, ErrMasterDown) {
		t.Fatalf("join after master death: %v", err)
	}
}

func TestSlaveFailureTolerated(t *testing.T) {
	reg := NewRegistry()
	reg.Register("quick", func(ctx *TaskCtx) error { return nil })
	master, slaves := newMachine(t, 2, reg)
	slaves[0].Kill()
	// The master can still spawn locally and on the surviving slave.
	ok := 0
	for i := 0; i < 6; i++ {
		if tid, err := master.Spawn("quick", nil); err == nil && tid.Host() != 1 {
			ok++
		}
	}
	if ok < 4 {
		t.Fatalf("only %d spawns survived a slave failure", ok)
	}
}

func TestHostTableUpdateFailsOnDeadSlave(t *testing.T) {
	reg := NewRegistry()
	master, slaves := newMachine(t, 1, reg)
	// Kill the slave, then try to admit a new host: the sequential
	// host-table broadcast hits the dead slave and fails.
	slaves[0].Kill()
	table := master.Hosts()
	if err := master.broadcastHostTable(table); !errors.Is(err, ErrHostTableUpdate) {
		t.Fatalf("want ErrHostTableUpdate, got %v", err)
	}
}

func TestLookupHost(t *testing.T) {
	master, slaves := newMachine(t, 1, NewRegistry())
	// Wait for the table to reach the slave.
	testutil.WaitFor(t, 3*time.Second, func() bool { return len(slaves[0].Hosts()) == 2 },
		"host table never reached the slave")
	addr, err := slaves[0].LookupHost("m0")
	if err != nil || addr != master.Addr() {
		t.Fatalf("lookup: %q %v", addr, err)
	}
	if _, err := slaves[0].LookupHost("nope"); err == nil {
		t.Fatal("unknown host resolved")
	}
	slaves[0].Kill()
	if _, err := slaves[0].LookupHost("m0"); !errors.Is(err, ErrClosed) {
		t.Fatalf("dead daemon lookup: %v", err)
	}
}

func TestRecvTagFilterAndTimeout(t *testing.T) {
	reg := NewRegistry()
	result := make(chan error, 1)
	reg.Register("selective", func(ctx *TaskCtx) error {
		// First a timeout with nothing queued.
		if _, err := ctx.Recv(5, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
			result <- fmt.Errorf("timeout: %v", err)
			return nil
		}
		// Then selective receive: tag 2 before tag 1 despite arrival order.
		m2, err := ctx.Recv(2, 5*time.Second)
		if err != nil || string(m2.Payload) != "two" {
			result <- fmt.Errorf("tag2: %v %v", m2, err)
			return nil
		}
		m1, err := ctx.Recv(1, 5*time.Second)
		if err != nil || string(m1.Payload) != "one" {
			result <- fmt.Errorf("tag1: %v %v", m1, err)
			return nil
		}
		result <- nil
		return nil
	})
	master, _ := newMachine(t, 0, reg)
	tid, err := master.SpawnLocal("selective", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := master.Task(tid)
	time.Sleep(50 * time.Millisecond) // let the timeout branch run
	helper, _ := master.SpawnLocal("selective", nil)
	hctx, _ := master.Task(helper)
	hctx.Send(tid, 1, []byte("one"))
	hctx.Send(tid, 2, []byte("two"))
	select {
	case err := <-result:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("selective receive stuck")
	}
	_ = ctx
}

func TestTaskWaitAndArgs(t *testing.T) {
	reg := NewRegistry()
	reg.Register("argcheck", func(ctx *TaskCtx) error {
		if len(ctx.Args()) != 2 || ctx.Args()[1] != "b" {
			return fmt.Errorf("args: %v", ctx.Args())
		}
		return nil
	})
	master, _ := newMachine(t, 0, reg)
	tid, err := master.SpawnLocal("argcheck", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, ok := master.Task(tid)
	if !ok {
		t.Fatal("task missing")
	}
	if err := ctx.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ctx.MyTID() != tid {
		t.Fatal("tid mismatch")
	}
}

func TestKillIdempotent(t *testing.T) {
	master, _ := newMachine(t, 0, NewRegistry())
	master.Kill()
	master.Kill()
	if !master.isDead() {
		t.Fatal("not dead")
	}
}

func BenchmarkDaemonRoutedPingPong(b *testing.B) {
	reg := NewRegistry()
	reg.Register("echo", func(ctx *TaskCtx) error {
		for {
			m, err := ctx.Recv(-1, 30*time.Second)
			if err != nil {
				return nil
			}
			if err := ctx.Send(m.Src, m.Tag, m.Payload); err != nil {
				return nil
			}
		}
	})
	reg.Register("idle", func(ctx *TaskCtx) error {
		// Park on a tag that never arrives so the benchmark goroutine is
		// the only consumer of the echo replies.
		ctx.Recv(424242, time.Hour)
		return nil
	})
	master, err := NewMaster("bm", "127.0.0.1:0", reg)
	if err != nil {
		b.Fatal(err)
	}
	defer master.Kill()
	slave, err := Join("bs", "127.0.0.1:0", master.Addr(), reg)
	if err != nil {
		b.Fatal(err)
	}
	defer slave.Kill()
	echoTID, err := slave.SpawnLocal("echo", nil)
	if err != nil {
		b.Fatal(err)
	}
	pingTID, err := master.SpawnLocal("idle", nil)
	if err != nil {
		b.Fatal(err)
	}
	ping, _ := master.Task(pingTID)
	payload := []byte("ping")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ping.Send(echoTID, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := ping.Recv(1, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
