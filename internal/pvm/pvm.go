// Package pvm is a miniature PVM 3.x: the baseline system SNIPE was
// built to improve on (paper §2.2). It reproduces the architectural
// properties the paper criticises, so the comparisons in experiments
// E2, E3 and E6 are against the real design, not a strawman:
//
//   - A single master pvmd owns the host table. "PVM can tolerate
//     slave failures but not failure of its master host": when the
//     master dies, joins, spawns and host-table lookups all fail.
//   - Host-table updates are distributed by sequential unicast and
//     abort if any slave is unreachable ("it also cannot tolerate link
//     failures during host table updates").
//   - Messages are routed through the pvmd daemons (PVM's default
//     route): task → local pvmd → remote pvmd → task. This is the
//     extra hop that made PVMPI slower than SNIPE-based MPI Connect
//     (§6.1).
//   - Resource management is centralized at the master ("the PVM
//     resource manager uses centralized decision making").
//   - Task identifiers (TIDs) are valid only within one virtual
//     machine; there is no global name space.
package pvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"snipe/internal/xdr"
)

// Errors of the PVM layer.
var (
	// ErrMasterDown indicates an operation requiring the master after
	// its failure.
	ErrMasterDown = errors.New("pvm: master pvmd unreachable")
	// ErrHostTableUpdate indicates a host-table update aborted by an
	// unreachable slave.
	ErrHostTableUpdate = errors.New("pvm: host table update failed")
	// ErrNoSuchTask indicates a message to an unknown TID.
	ErrNoSuchTask = errors.New("pvm: no such task")
	// ErrUnknownProgram indicates a spawn of an unregistered program.
	ErrUnknownProgram = errors.New("pvm: unknown program")
	// ErrClosed indicates a dead pvmd.
	ErrClosed = errors.New("pvm: pvmd is down")
	// ErrTimeout indicates a receive timeout.
	ErrTimeout = errors.New("pvm: timeout")
)

// TID is a PVM task identifier: host index in the high 16 bits, local
// task number in the low 16 — meaningful only inside this virtual
// machine.
type TID uint32

// Host extracts the host index.
func (t TID) Host() int { return int(t >> 16) }

// Local extracts the per-host task number.
func (t TID) Local() int { return int(t & 0xFFFF) }

func makeTID(host, local int) TID { return TID(uint32(host)<<16 | uint32(local&0xFFFF)) }

// String renders the TID in PVM's hex style.
func (t TID) String() string { return fmt.Sprintf("t%08x", uint32(t)) }

// Message is a received PVM message.
type Message struct {
	Src     TID
	Dst     TID
	Tag     int
	Payload []byte
}

// hostEntry is one row of the host table.
type hostEntry struct {
	Index int
	Name  string
	Addr  string
}

// Func is a PVM task body.
type Func func(ctx *TaskCtx) error

// Registry maps program names to task functions (the $PVM_PATH of the
// simulation).
type Registry struct {
	mu sync.RWMutex
	m  map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]Func)} }

// Register installs a program.
func (r *Registry) Register(name string, fn Func) {
	r.mu.Lock()
	r.m[name] = fn
	r.mu.Unlock()
}

// Lookup finds a program.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.m[name]
	return fn, ok
}

// Pvmd wire message types.
const (
	pmData uint8 = iota + 1 // routed task message
	pmJoinReq
	pmJoinResp
	pmHostTable
	pmSpawnReq
	pmSpawnResp
	pmTaskExit
	pmEnroll // task → local pvmd: register the task's delivery socket
)

// lockedConn serialises writes to one task's delivery socket.
type lockedConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (lc *lockedConn) write(frame []byte) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return writeFrame(lc.conn, frame)
}

// Daemon is one pvmd.
type Daemon struct {
	name     string
	index    int
	master   bool
	registry *Registry

	mu        sync.Mutex
	ln        net.Listener
	hostTable []hostEntry
	conns     map[int]net.Conn      // host index → dialed conn
	accepted  map[net.Conn]struct{} // inbound conns, closed on Kill
	tasks     map[int]*TaskCtx      // local id → task
	taskConns map[int]*lockedConn   // local id → task's enrolled socket
	nextLocal int
	nextSpawn int // master: round-robin pointer
	pending   map[uint64]chan pendingResp
	nextReqID uint64
	dead      bool
	wg        sync.WaitGroup
}

type pendingResp struct {
	tid TID
	err string
}

// NewMaster starts the master pvmd on addr (the first host of the
// virtual machine).
func NewMaster(name, addr string, reg *Registry) (*Daemon, error) {
	d := &Daemon{
		name:      name,
		index:     0,
		master:    true,
		registry:  reg,
		conns:     make(map[int]net.Conn),
		accepted:  make(map[net.Conn]struct{}),
		taskConns: make(map[int]*lockedConn),
		tasks:     make(map[int]*TaskCtx),
		pending:   make(map[uint64]chan pendingResp),
	}
	if err := d.listen(addr); err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.hostTable = []hostEntry{{Index: 0, Name: name, Addr: d.Addr()}}
	d.mu.Unlock()
	return d, nil
}

// Join starts a slave pvmd and adds it to the virtual machine via the
// master.
func Join(name, addr, masterAddr string, reg *Registry) (*Daemon, error) {
	d := &Daemon{
		name:      name,
		registry:  reg,
		conns:     make(map[int]net.Conn),
		accepted:  make(map[net.Conn]struct{}),
		taskConns: make(map[int]*lockedConn),
		tasks:     make(map[int]*TaskCtx),
		pending:   make(map[uint64]chan pendingResp),
	}
	if err := d.listen(addr); err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", masterAddr, 3*time.Second)
	if err != nil {
		d.Kill()
		return nil, fmt.Errorf("%w: %v", ErrMasterDown, err)
	}
	e := xdr.NewEncoder(64)
	e.PutUint8(pmJoinReq)
	e.PutString(name)
	e.PutString(d.Addr())
	if err := writeFrame(conn, e.Bytes()); err != nil {
		conn.Close()
		d.Kill()
		return nil, fmt.Errorf("%w: %v", ErrMasterDown, err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := readFrame(conn)
	conn.Close()
	if err != nil {
		d.Kill()
		return nil, fmt.Errorf("%w: %v", ErrMasterDown, err)
	}
	dec := xdr.NewDecoder(frame)
	mt, _ := dec.Uint8()
	if mt != pmJoinResp {
		d.Kill()
		return nil, fmt.Errorf("pvm: unexpected join response %d", mt)
	}
	idx, err := dec.Uint32()
	if err != nil {
		d.Kill()
		return nil, err
	}
	d.mu.Lock()
	d.index = int(idx)
	d.mu.Unlock()
	// The host table arrives via the broadcast the master sends next;
	// wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		n := len(d.hostTable)
		d.mu.Unlock()
		if n > 0 {
			return d, nil
		}
		if time.Now().After(deadline) {
			d.Kill()
			return nil, fmt.Errorf("pvm: host table never arrived")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func (d *Daemon) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pvm: listen %s: %w", addr, err)
	}
	d.ln = ln
	d.wg.Add(1)
	go d.acceptLoop()
	return nil
}

// Addr returns the pvmd's listen address.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Name returns the host name.
func (d *Daemon) Name() string { return d.name }

// Index returns the host index.
func (d *Daemon) Index() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.index
}

// IsMaster reports whether this pvmd is the master.
func (d *Daemon) IsMaster() bool { return d.master }

// Hosts returns a copy of the host table.
func (d *Daemon) Hosts() []hostEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]hostEntry(nil), d.hostTable...)
}

// Kill terminates the pvmd, modelling a host crash. Tasks on the host
// die with it.
func (d *Daemon) Kill() {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return
	}
	d.dead = true
	tasks := make([]*TaskCtx, 0, len(d.tasks))
	for _, t := range d.tasks {
		tasks = append(tasks, t)
	}
	conns := make([]net.Conn, 0, len(d.conns)+len(d.accepted))
	for _, c := range d.conns {
		conns = append(conns, c)
	}
	for c := range d.accepted {
		conns = append(conns, c)
	}
	d.conns = make(map[int]net.Conn)
	d.accepted = make(map[net.Conn]struct{})
	d.mu.Unlock()
	d.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, t := range tasks {
		t.kill()
	}
	d.wg.Wait()
}

func (d *Daemon) isDead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead
}

// --- framing ---------------------------------------------------------

func writeFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	bufs := net.Buffers{hdr[:], body}
	_, err := bufs.WriteTo(w)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, errors.New("pvm: oversized frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.mu.Lock()
		if d.dead {
			d.mu.Unlock()
			conn.Close()
			return
		}
		d.accepted[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go d.serveConn(conn)
	}
}

func (d *Daemon) serveConn(conn net.Conn) {
	defer d.wg.Done()
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.accepted, conn)
		d.mu.Unlock()
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		d.handleFrame(conn, frame)
	}
}

// connTo returns (dialing if needed) a connection to the pvmd at host
// index idx.
func (d *Daemon) connTo(idx int) (net.Conn, error) {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := d.conns[idx]; ok {
		d.mu.Unlock()
		return c, nil
	}
	var addr string
	for _, h := range d.hostTable {
		if h.Index == idx {
			addr = h.Addr
		}
	}
	d.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("%w: host %d not in table", ErrNoSuchTask, idx)
	}
	conn, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if existing, ok := d.conns[idx]; ok {
		d.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	d.conns[idx] = conn
	d.mu.Unlock()
	d.wg.Add(1)
	//lint:allow goroutinelife reader exits when the conn errors; Close closes every conn and waits on d.wg
	go func() {
		defer d.wg.Done()
		defer func() {
			d.mu.Lock()
			if d.conns[idx] == conn {
				delete(d.conns, idx)
			}
			d.mu.Unlock()
			conn.Close()
		}()
		for {
			frame, err := readFrame(conn)
			if err != nil {
				return
			}
			d.handleFrame(conn, frame)
		}
	}()
	return conn, nil
}

func (d *Daemon) sendTo(idx int, body []byte) error {
	conn, err := d.connTo(idx)
	if err != nil {
		return err
	}
	if err := writeFrame(conn, body); err != nil {
		d.mu.Lock()
		if d.conns[idx] == conn {
			delete(d.conns, idx)
		}
		d.mu.Unlock()
		conn.Close()
		return err
	}
	return nil
}
