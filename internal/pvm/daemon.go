package pvm

import (
	"fmt"
	"net"
	"sync"
	"time"

	"snipe/internal/xdr"
)

// handleFrame dispatches one pvmd protocol message.
func (d *Daemon) handleFrame(conn connWriter, frame []byte) {
	dec := xdr.NewDecoder(frame)
	mt, err := dec.Uint8()
	if err != nil {
		return
	}
	switch mt {
	case pmJoinReq:
		d.handleJoin(conn, dec)
	case pmHostTable:
		d.handleHostTable(dec)
	case pmData:
		d.handleData(dec)
	case pmSpawnReq:
		d.handleSpawnReq(dec)
	case pmSpawnResp:
		d.handleSpawnResp(dec)
	case pmEnroll:
		local, err := dec.Uint32()
		if err != nil {
			return
		}
		nc, ok := conn.(net.Conn)
		if !ok {
			return
		}
		d.mu.Lock()
		d.taskConns[int(local)] = &lockedConn{conn: nc}
		d.mu.Unlock()
	}
}

// connWriter is the reply surface handleFrame gets (a net.Conn).
type connWriter interface {
	Write(p []byte) (int, error)
}

// Per-field wire-decode caps handed to the xdr *Max decoders, so a
// corrupt length prefix fails fast instead of sizing an allocation.
const (
	maxWireString  = 4096     // host names, addresses, program names, errors
	maxWireArgs    = 1024     // spawn argv entries, each capped at maxWireString
	maxWirePayload = 16 << 20 // one routed task message
)

// handleJoin (master only) admits a new host and pushes the updated
// host table to every member — PVM's fragile sequential update.
func (d *Daemon) handleJoin(conn connWriter, dec *xdr.Decoder) {
	if !d.master {
		return
	}
	name, err := dec.StringMax(maxWireString)
	if err != nil {
		return
	}
	addr, err := dec.StringMax(maxWireString)
	if err != nil {
		return
	}
	d.mu.Lock()
	idx := len(d.hostTable)
	d.hostTable = append(d.hostTable, hostEntry{Index: idx, Name: name, Addr: addr})
	table := append([]hostEntry(nil), d.hostTable...)
	d.mu.Unlock()

	e := xdr.NewEncoder(16)
	e.PutUint8(pmJoinResp)
	e.PutUint32(uint32(idx))
	writeFrame(conn, e.Bytes())

	if err := d.broadcastHostTable(table); err != nil {
		// A failed update leaves the virtual machine inconsistent — the
		// PVM weakness §2.2 describes. The join stands on hosts already
		// updated; others have a stale table.
		return
	}
}

// broadcastHostTable pushes the table to every slave sequentially,
// aborting on the first unreachable host.
func (d *Daemon) broadcastHostTable(table []hostEntry) error {
	e := xdr.NewEncoder(256)
	e.PutUint8(pmHostTable)
	e.PutUint32(uint32(len(table)))
	for _, h := range table {
		e.PutUint32(uint32(h.Index))
		e.PutString(h.Name)
		e.PutString(h.Addr)
	}
	body := e.Bytes()
	for _, h := range table {
		if h.Index == d.index {
			continue
		}
		// Each update leg uses a fresh connection so an unreachable
		// slave is detected immediately — and aborts the whole update,
		// PVM's documented fragility.
		conn, err := net.DialTimeout("tcp", h.Addr, 2*time.Second)
		if err != nil {
			return fmt.Errorf("%w: host %s: %v", ErrHostTableUpdate, h.Name, err)
		}
		err = writeFrame(conn, body)
		conn.Close()
		if err != nil {
			return fmt.Errorf("%w: host %s: %v", ErrHostTableUpdate, h.Name, err)
		}
	}
	return nil
}

func (d *Daemon) handleHostTable(dec *xdr.Decoder) {
	n, err := dec.Uint32()
	if err != nil {
		return
	}
	if int64(n)*12 > int64(dec.Remaining()) {
		return // hostile host count: each entry is at least 12 encoded bytes
	}
	table := make([]hostEntry, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		idx, err := dec.Uint32()
		if err != nil {
			return
		}
		name, err := dec.StringMax(maxWireString)
		if err != nil {
			return
		}
		addr, err := dec.StringMax(maxWireString)
		if err != nil {
			return
		}
		table = append(table, hostEntry{Index: int(idx), Name: name, Addr: addr})
	}
	d.mu.Lock()
	d.hostTable = table
	d.mu.Unlock()
}

// handleData delivers or forwards a routed task message.
func (d *Daemon) handleData(dec *xdr.Decoder) {
	src, err := dec.Uint32()
	if err != nil {
		return
	}
	dst, err := dec.Uint32()
	if err != nil {
		return
	}
	tag, err := dec.Int32()
	if err != nil {
		return
	}
	payload, err := dec.BytesCopyMax(maxWirePayload)
	if err != nil {
		return
	}
	d.routeData(Message{Src: TID(src), Dst: TID(dst), Tag: int(tag), Payload: payload})
}

// routeData implements pvmd routing: local delivery or forward to the
// destination host's pvmd.
func (d *Daemon) routeData(m Message) error {
	dstHost := m.Dst.Host()
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return ErrClosed
	}
	if dstHost == d.index {
		t, ok := d.tasks[m.Dst.Local()]
		tc := d.taskConns[m.Dst.Local()]
		d.mu.Unlock()
		if !ok {
			return fmt.Errorf("%w: %v", ErrNoSuchTask, m.Dst)
		}
		// Local delivery crosses the task's pvmd socket, as real PVM
		// delivered over the task↔pvmd unix socket; the direct path is
		// only a fallback for unenrolled tasks.
		if tc != nil {
			e := xdr.NewEncoder(len(m.Payload) + 32)
			e.PutUint8(pmData)
			e.PutUint32(uint32(m.Src))
			e.PutUint32(uint32(m.Dst))
			e.PutInt32(int32(m.Tag))
			e.PutBytes(m.Payload)
			if err := tc.write(e.Bytes()); err == nil {
				return nil
			}
		}
		t.deliver(m)
		return nil
	}
	d.mu.Unlock()
	e := xdr.NewEncoder(len(m.Payload) + 32)
	e.PutUint8(pmData)
	e.PutUint32(uint32(m.Src))
	e.PutUint32(uint32(m.Dst))
	e.PutInt32(int32(m.Tag))
	e.PutBytes(m.Payload)
	return d.sendTo(dstHost, e.Bytes())
}

// SpawnLocal starts a task on this pvmd directly.
func (d *Daemon) SpawnLocal(program string, args []string) (TID, error) {
	fn, ok := d.registry.Lookup(program)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownProgram, program)
	}
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return 0, ErrClosed
	}
	d.nextLocal++
	local := d.nextLocal
	tid := makeTID(d.index, local)
	ctx := newTaskCtx(d, tid, args)
	d.tasks[local] = ctx
	addr := d.Addr()
	d.mu.Unlock()

	// Enrol the task with its pvmd over a real local socket — the
	// task↔pvmd hop of genuine PVM. All of the task's traffic crosses
	// this socket in both directions.
	if sock, err := net.DialTimeout("tcp", addr, 3*time.Second); err == nil {
		e := xdr.NewEncoder(8)
		e.PutUint8(pmEnroll)
		e.PutUint32(uint32(local))
		if writeFrame(sock, e.Bytes()) == nil {
			ctx.sock = &lockedConn{conn: sock}
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				ctx.readLoop(sock)
			}()
		} else {
			sock.Close()
		}
	}

	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		ctx.err = fn(ctx)
		close(ctx.exited)
	}()
	return tid, nil
}

// Task returns the context of a locally hosted task.
func (d *Daemon) Task(tid TID) (*TaskCtx, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tasks[tid.Local()]
	return t, ok
}

// Spawn implements PVM's centralized placement: the request goes to
// the master, which round-robins over the host table and forwards the
// spawn to the chosen pvmd. Fails if the master is down (§2.2).
func (d *Daemon) Spawn(program string, args []string) (TID, error) {
	if d.master {
		return d.masterSpawn(program, args)
	}
	// Ask the master.
	d.mu.Lock()
	d.nextReqID++
	reqID := d.nextReqID
	ch := make(chan pendingResp, 1)
	d.pending[reqID] = ch
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.pending, reqID)
		d.mu.Unlock()
	}()
	e := xdr.NewEncoder(64)
	e.PutUint8(pmSpawnReq)
	e.PutUint32(uint32(d.index))
	e.PutUint64(reqID)
	e.PutString(program)
	e.PutStringSlice(args)
	if err := d.sendTo(0, e.Bytes()); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrMasterDown, err)
	}
	select {
	case resp := <-ch:
		if resp.err != "" {
			return 0, fmt.Errorf("pvm: spawn: %s", resp.err)
		}
		return resp.tid, nil
	case <-time.After(5 * time.Second):
		return 0, fmt.Errorf("%w: spawn timed out", ErrMasterDown)
	}
}

// masterSpawn places and executes a spawn as the master.
func (d *Daemon) masterSpawn(program string, args []string) (TID, error) {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return 0, ErrClosed
	}
	if len(d.hostTable) == 0 {
		d.mu.Unlock()
		return 0, ErrHostTableUpdate
	}
	target := d.hostTable[d.nextSpawn%len(d.hostTable)]
	d.nextSpawn++
	d.mu.Unlock()
	if target.Index == d.index {
		return d.SpawnLocal(program, args)
	}
	// Forward to the target pvmd and wait for its response.
	d.mu.Lock()
	d.nextReqID++
	reqID := d.nextReqID
	ch := make(chan pendingResp, 1)
	d.pending[reqID] = ch
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.pending, reqID)
		d.mu.Unlock()
	}()
	e := xdr.NewEncoder(64)
	e.PutUint8(pmSpawnReq)
	e.PutUint32(uint32(d.index))
	e.PutUint64(reqID)
	e.PutString(program)
	e.PutStringSlice(args)
	if err := d.sendTo(target.Index, e.Bytes()); err != nil {
		return 0, err
	}
	select {
	case resp := <-ch:
		if resp.err != "" {
			return 0, fmt.Errorf("pvm: spawn: %s", resp.err)
		}
		return resp.tid, nil
	case <-time.After(5 * time.Second):
		return 0, ErrTimeout
	}
}

// handleSpawnReq executes a spawn forwarded by another pvmd (either a
// slave's request arriving at the master, or the master's placement
// arriving at a slave).
func (d *Daemon) handleSpawnReq(dec *xdr.Decoder) {
	fromIdx, err := dec.Uint32()
	if err != nil {
		return
	}
	reqID, err := dec.Uint64()
	if err != nil {
		return
	}
	program, err := dec.StringMax(maxWireString)
	if err != nil {
		return
	}
	args, err := dec.StringSliceMax(maxWireArgs, maxWireString)
	if err != nil {
		return
	}
	var tid TID
	var spawnErr error
	if d.master {
		tid, spawnErr = d.masterSpawn(program, args)
	} else {
		tid, spawnErr = d.SpawnLocal(program, args)
	}
	e := xdr.NewEncoder(64)
	e.PutUint8(pmSpawnResp)
	e.PutUint64(reqID)
	e.PutUint32(uint32(tid))
	if spawnErr != nil {
		e.PutString(spawnErr.Error())
	} else {
		e.PutString("")
	}
	d.sendTo(int(fromIdx), e.Bytes())
}

func (d *Daemon) handleSpawnResp(dec *xdr.Decoder) {
	reqID, err := dec.Uint64()
	if err != nil {
		return
	}
	tid, err := dec.Uint32()
	if err != nil {
		return
	}
	msg, err := dec.StringMax(maxWireString)
	if err != nil {
		return
	}
	d.mu.Lock()
	ch, ok := d.pending[reqID]
	d.mu.Unlock()
	if ok {
		select {
		case ch <- pendingResp{tid: TID(tid), err: msg}:
		default:
		}
	}
}

// LookupHost resolves a host name through the host table — the PVM
// stand-in for metadata lookup in availability experiment E3. On a
// slave this consults the local table copy; the canonical table lives
// on the master, so Resolve-after-master-death returns stale or
// missing data, unlike the replicated RC servers.
func (d *Daemon) LookupHost(name string) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return "", ErrClosed
	}
	for _, h := range d.hostTable {
		if h.Name == name {
			return h.Addr, nil
		}
	}
	return "", fmt.Errorf("%w: host %q", ErrNoSuchTask, name)
}

// TaskCtx is a running PVM task's context.
type TaskCtx struct {
	daemon *Daemon
	tid    TID
	args   []string
	sock   *lockedConn // the task's pvmd socket (nil: direct fallback)

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []Message
	killed bool
	exited chan struct{}
	err    error
}

// readLoop drains deliveries from the task's pvmd socket.
func (c *TaskCtx) readLoop(conn net.Conn) {
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		dec := xdr.NewDecoder(frame)
		mt, err := dec.Uint8()
		if err != nil || mt != pmData {
			continue
		}
		src, err := dec.Uint32()
		if err != nil {
			continue
		}
		dst, err := dec.Uint32()
		if err != nil {
			continue
		}
		tag, err := dec.Int32()
		if err != nil {
			continue
		}
		payload, err := dec.BytesCopyMax(maxWirePayload)
		if err != nil {
			continue
		}
		c.deliver(Message{Src: TID(src), Dst: TID(dst), Tag: int(tag), Payload: payload})
	}
}

func newTaskCtx(d *Daemon, tid TID, args []string) *TaskCtx {
	c := &TaskCtx{daemon: d, tid: tid, args: args, exited: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// MyTID returns the task's identifier.
func (c *TaskCtx) MyTID() TID { return c.tid }

// Args returns the task's arguments.
func (c *TaskCtx) Args() []string { return c.args }

// Send routes a message via the local pvmd (PVM's default route): the
// message crosses the task's pvmd socket, then — for remote
// destinations — the pvmd↔pvmd connection, then the destination
// task's socket.
func (c *TaskCtx) Send(dst TID, tag int, payload []byte) error {
	if c.sock != nil {
		e := xdr.NewEncoder(len(payload) + 32)
		e.PutUint8(pmData)
		e.PutUint32(uint32(c.tid))
		e.PutUint32(uint32(dst))
		e.PutInt32(int32(tag))
		e.PutBytes(payload)
		return c.sock.write(e.Bytes())
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return c.daemon.routeData(Message{Src: c.tid, Dst: dst, Tag: tag, Payload: cp})
}

func (c *TaskCtx) deliver(m Message) {
	c.mu.Lock()
	if !c.killed {
		c.inbox = append(c.inbox, m)
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Recv returns the next message matching tag (-1 = any), waiting up to
// timeout.
func (c *TaskCtx) Recv(tag int, timeout time.Duration) (Message, error) {
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for i, m := range c.inbox {
			if tag < 0 || m.Tag == tag {
				c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
				return m, nil
			}
		}
		if c.killed {
			return Message{}, ErrClosed
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Message{}, ErrTimeout
		}
		t := time.AfterFunc(remaining, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		c.cond.Wait()
		t.Stop()
	}
}

// Killed reports whether the task's host died.
func (c *TaskCtx) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

func (c *TaskCtx) kill() {
	c.mu.Lock()
	c.killed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	if c.sock != nil {
		c.sock.conn.Close()
	}
}

// Wait blocks until the task function returns, yielding its error.
func (c *TaskCtx) Wait(timeout time.Duration) error {
	select {
	case <-c.exited:
		return c.err
	case <-time.After(timeout):
		return ErrTimeout
	}
}
