// Package seckey implements the SNIPE security model (paper §4).
//
// Authentication in SNIPE is by public-key cryptography. Every
// principal (user, host, process, resource manager, RC server) owns a
// key pair whose public half is published as an attribute of the
// principal's RC metadata. A signed subset of metadata serves as a key
// certificate; before a client accepts a signed statement, the signer's
// key certificate must itself be signed by a party the client trusts
// for that purpose.
//
// The paper's two-certificate resource-grant protocol is implemented by
// UserGrant, HostAttestation and Authorization: a resource manager
// verifies a grant signed by the user and an attestation signed by the
// requesting host, then issues its own signed authorization to the
// hosts where the resources live.
//
// Substitution note (DESIGN.md): the 1997 implementation used MD5-hashed
// shared secrets and unspecified signature algorithms; this build uses
// Ed25519 signatures and SHA-256/HMAC-SHA256, the modern equivalents of
// the same mechanisms.
package seckey

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"snipe/internal/xdr"
)

// Errors returned by verification routines.
var (
	// ErrBadSignature indicates a signature that does not verify.
	ErrBadSignature = errors.New("seckey: signature verification failed")
	// ErrUntrusted indicates a signer not trusted for the purpose.
	ErrUntrusted = errors.New("seckey: signer not trusted for purpose")
	// ErrExpired indicates a statement past its validity interval.
	ErrExpired = errors.New("seckey: statement expired")
	// ErrScopeMismatch indicates grant/attestation fields that disagree.
	ErrScopeMismatch = errors.New("seckey: grant and attestation scopes disagree")
	// ErrUnknownPrincipal indicates a principal with no published key.
	ErrUnknownPrincipal = errors.New("seckey: unknown principal")
)

// Purpose names what a trust relationship is for. The paper notes that
// "each client or service may determine its own requirements for which
// parties to trust for which purposes".
type Purpose string

// Well-known purposes within SNIPE.
const (
	// PurposeUserCA marks parties trusted to certify user keys.
	PurposeUserCA Purpose = "user-ca"
	// PurposeHostCA marks parties trusted to certify host keys.
	PurposeHostCA Purpose = "host-ca"
	// PurposeResourceGrant marks parties trusted to grant resource access.
	PurposeResourceGrant Purpose = "resource-grant"
	// PurposeCodeSigning marks parties trusted to sign mobile code.
	PurposeCodeSigning Purpose = "code-signing"
)

// Principal is a named key pair. Name is the principal's URN (for
// processes and users) or distinguished URL (for hosts and services).
type Principal struct {
	Name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewPrincipal generates a fresh key pair for name using entropy from
// rand (crypto/rand.Reader in production; a deterministic reader in
// tests).
func NewPrincipal(name string, rand io.Reader) (*Principal, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("seckey: generating key for %s: %w", name, err)
	}
	return &Principal{Name: name, pub: pub, priv: priv}, nil
}

// Public returns the principal's public key.
func (p *Principal) Public() ed25519.PublicKey { return p.pub }

// PublicHex returns the public key as a hex string, the form in which
// keys are published as RC metadata assertions.
func (p *Principal) PublicHex() string { return hex.EncodeToString(p.pub) }

// Sign signs msg with the principal's private key.
func (p *Principal) Sign(msg []byte) []byte { return ed25519.Sign(p.priv, msg) }

// Verify reports whether sig is a valid signature on msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// ParsePublicHex decodes a hex-encoded Ed25519 public key as published
// in RC metadata.
func ParsePublicHex(s string) (ed25519.PublicKey, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("seckey: bad public key hex: %w", err)
	}
	if len(b) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("seckey: public key is %d bytes, want %d", len(b), ed25519.PublicKeySize)
	}
	return ed25519.PublicKey(b), nil
}

// ContentHash returns the SHA-256 digest used for resource authenticity
// (the paper's MD5/SHA role: hashes of resources signed by providers and
// published with the resource's metadata).
func ContentHash(data []byte) [32]byte { return sha256.Sum256(data) }

// ContentHashHex returns the hex form of ContentHash for storage as a
// metadata assertion value.
func ContentHashHex(data []byte) string {
	h := ContentHash(data)
	return hex.EncodeToString(h[:])
}

// Statement is a signed, scoped claim: Subject said Fields, valid for
// logical times [NotBefore, NotAfter] (SNIPE logical clock ticks; 0
// NotAfter means no expiry). It is the building block for key
// certificates and authorizations: a certificate is precisely "a signed
// subset of RC metadata" (§4), i.e. a Statement whose fields are
// metadata assertions.
type Statement struct {
	Subject   string            // whom/what the statement is about
	Signer    string            // principal name of the signer
	Purpose   Purpose           // what the statement authorizes
	Fields    map[string]string // the signed assertion subset
	NotBefore uint64
	NotAfter  uint64
	Signature []byte
}

// canonicalBytes serialises the statement deterministically for signing.
func (s *Statement) canonicalBytes() []byte {
	e := xdr.NewEncoder(256)
	e.PutString(s.Subject)
	e.PutString(s.Signer)
	e.PutString(string(s.Purpose))
	keys := sortedKeys(s.Fields)
	e.PutUint32(uint32(len(keys)))
	for _, k := range keys {
		e.PutString(k)
		e.PutString(s.Fields[k])
	}
	e.PutUint64(s.NotBefore)
	e.PutUint64(s.NotAfter)
	return e.Bytes()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: field sets are small and this avoids importing sort
	// for a hot path that is not hot.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// NewStatement creates and signs a statement by signer about subject.
func NewStatement(signer *Principal, subject string, purpose Purpose, fields map[string]string, notBefore, notAfter uint64) *Statement {
	s := &Statement{
		Subject:   subject,
		Signer:    signer.Name,
		Purpose:   purpose,
		Fields:    fields,
		NotBefore: notBefore,
		NotAfter:  notAfter,
	}
	s.Signature = signer.Sign(s.canonicalBytes())
	return s
}

// VerifySignature checks the statement's signature under pub and its
// validity at logical time now.
func (s *Statement) VerifySignature(pub ed25519.PublicKey, now uint64) error {
	if !Verify(pub, s.canonicalBytes(), s.Signature) {
		return fmt.Errorf("%w: statement about %s by %s", ErrBadSignature, s.Subject, s.Signer)
	}
	if now < s.NotBefore || (s.NotAfter != 0 && now > s.NotAfter) {
		return fmt.Errorf("%w: valid [%d,%d], now %d", ErrExpired, s.NotBefore, s.NotAfter, now)
	}
	return nil
}

// Encode serialises the statement for transmission or storage.
func (s *Statement) Encode(e *xdr.Encoder) {
	e.PutRaw(s.canonicalBytes())
	e.PutBytes(s.Signature)
}

// Per-field wire-decode caps: names, purposes and field entries are
// short strings; an ed25519 signature is 64 bytes plus slack.
const (
	maxWireField = 4096
	maxWireSig   = 256
)

// DecodeStatement reads a statement previously written by Encode.
func DecodeStatement(d *xdr.Decoder) (*Statement, error) {
	s := &Statement{}
	var err error
	if s.Subject, err = d.StringMax(maxWireField); err != nil {
		return nil, err
	}
	if s.Signer, err = d.StringMax(maxWireField); err != nil {
		return nil, err
	}
	var purpose string
	if purpose, err = d.StringMax(maxWireField); err != nil {
		return nil, err
	}
	s.Purpose = Purpose(purpose)
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	// Each field costs at least 8 encoded bytes (two string lengths);
	// fail fast on hostile counts before the map preallocation below.
	if int64(n)*8 > int64(d.Remaining()) {
		return nil, fmt.Errorf("seckey: field count %d exceeds remaining %d bytes", n, d.Remaining())
	}
	if n > 0 {
		s.Fields = make(map[string]string, min(int(n), 1024))
	}
	for i := uint32(0); i < n; i++ {
		k, err := d.StringMax(maxWireField)
		if err != nil {
			return nil, err
		}
		v, err := d.StringMax(maxWireField)
		if err != nil {
			return nil, err
		}
		s.Fields[k] = v
	}
	if s.NotBefore, err = d.Uint64(); err != nil {
		return nil, err
	}
	if s.NotAfter, err = d.Uint64(); err != nil {
		return nil, err
	}
	if s.Signature, err = d.BytesCopyMax(maxWireSig); err != nil {
		return nil, err
	}
	return s, nil
}

// KeyCertificate binds a principal name to a public key. It is a
// Statement whose fields include "public-key". The subject's key is
// carried inside the signed field set, so tampering with it breaks the
// signature.
type KeyCertificate struct {
	*Statement
}

// FieldPublicKey is the assertion name under which a certificate
// carries its subject's public key.
const FieldPublicKey = "public-key"

// NewKeyCertificate issues a certificate for subject's public key,
// signed by ca for the given purpose.
func NewKeyCertificate(ca *Principal, subjectName string, subjectPub ed25519.PublicKey, purpose Purpose, notBefore, notAfter uint64) *KeyCertificate {
	fields := map[string]string{FieldPublicKey: hex.EncodeToString(subjectPub)}
	return &KeyCertificate{NewStatement(ca, subjectName, purpose, fields, notBefore, notAfter)}
}

// SubjectKey extracts the certified public key.
func (c *KeyCertificate) SubjectKey() (ed25519.PublicKey, error) {
	hexKey, ok := c.Fields[FieldPublicKey]
	if !ok {
		return nil, fmt.Errorf("seckey: certificate for %s has no %s field", c.Subject, FieldPublicKey)
	}
	return ParsePublicHex(hexKey)
}

// TrustStore records which signer keys a client trusts for which
// purposes, and verifies certificate-backed statements against them.
// It is safe for concurrent use.
type TrustStore struct {
	mu      sync.RWMutex
	trusted map[Purpose]map[string]ed25519.PublicKey // purpose → signer name → key
}

// NewTrustStore returns an empty trust store.
func NewTrustStore() *TrustStore {
	return &TrustStore{trusted: make(map[Purpose]map[string]ed25519.PublicKey)}
}

// Trust records that signerName's key is trusted for purpose.
func (t *TrustStore) Trust(purpose Purpose, signerName string, key ed25519.PublicKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.trusted[purpose]
	if !ok {
		m = make(map[string]ed25519.PublicKey)
		t.trusted[purpose] = m
	}
	keyCopy := make(ed25519.PublicKey, len(key))
	copy(keyCopy, key)
	m[signerName] = keyCopy
}

// Revoke removes trust in signerName for purpose.
func (t *TrustStore) Revoke(purpose Purpose, signerName string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m, ok := t.trusted[purpose]; ok {
		delete(m, signerName)
	}
}

// TrustedKey returns the key trusted for (purpose, signerName), if any.
func (t *TrustStore) TrustedKey(purpose Purpose, signerName string) (ed25519.PublicKey, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m, ok := t.trusted[purpose]
	if !ok {
		return nil, false
	}
	k, ok := m[signerName]
	return k, ok
}

// VerifyCertificate checks that cert was signed by a party trusted for
// its purpose and is valid at logical time now, returning the certified
// subject key.
func (t *TrustStore) VerifyCertificate(cert *KeyCertificate, now uint64) (ed25519.PublicKey, error) {
	signerKey, ok := t.TrustedKey(cert.Purpose, cert.Signer)
	if !ok {
		return nil, fmt.Errorf("%w: %s for %s", ErrUntrusted, cert.Signer, cert.Purpose)
	}
	if err := cert.VerifySignature(signerKey, now); err != nil {
		return nil, err
	}
	return cert.SubjectKey()
}

// MACKey derives a per-connection HMAC key from a shared secret and a
// channel binding label, for the paper's optimisation of maintaining an
// authenticated connection instead of signing every request (§4).
func MACKey(sharedSecret []byte, label string) []byte {
	mac := hmac.New(sha256.New, sharedSecret)
	mac.Write([]byte("snipe-mac-key:"))
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

// SumMAC computes the HMAC-SHA256 of msg under key.
func SumMAC(key, msg []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	return mac.Sum(nil)
}

// CheckMAC reports whether got is the correct HMAC for msg under key,
// in constant time.
func CheckMAC(key, msg, got []byte) bool {
	return hmac.Equal(SumMAC(key, msg), got)
}
