package seckey

import (
	"fmt"
)

// Grant-protocol field names. A grant or attestation is a Statement
// whose Fields identify the process, host and resource in question; the
// two-certificate protocol of §4 requires that the resource manager see
// the same (process, host, resource) triple from both the user and the
// requesting host before issuing its own authorization.
const (
	FieldProcess  = "process"  // URN of the requesting process
	FieldHost     = "host"     // distinguished URL of the requesting host
	FieldResource = "resource" // URL of the resource being requested
)

// UserGrant is "a signed statement from the user, granting a particular
// process on a particular host, access to the desired resources".
type UserGrant struct{ *Statement }

// NewUserGrant issues a grant signed by user.
func NewUserGrant(user *Principal, processURN, hostURL, resourceURL string, notBefore, notAfter uint64) *UserGrant {
	fields := map[string]string{
		FieldProcess:  processURN,
		FieldHost:     hostURL,
		FieldResource: resourceURL,
	}
	return &UserGrant{NewStatement(user, processURN, PurposeResourceGrant, fields, notBefore, notAfter)}
}

// HostAttestation is "a signed statement from the requesting host
// indicating that the resources are requested by that process".
type HostAttestation struct{ *Statement }

// NewHostAttestation issues an attestation signed by host.
func NewHostAttestation(host *Principal, processURN, resourceURL string, notBefore, notAfter uint64) *HostAttestation {
	fields := map[string]string{
		FieldProcess:  processURN,
		FieldHost:     host.Name,
		FieldResource: resourceURL,
	}
	return &HostAttestation{NewStatement(host, processURN, PurposeResourceGrant, fields, notBefore, notAfter)}
}

// Authorization is the resource manager's own signed statement
// "authorizing use of the requested resources by that process", which
// it transmits to the hosts where the resources reside.
type Authorization struct{ *Statement }

// ACL answers whether a user may access a resource; resource managers
// consult it after both certificates verify.
type ACL interface {
	// Allowed reports whether user may access resource.
	Allowed(user, resource string) bool
}

// ACLFunc adapts a function to the ACL interface.
type ACLFunc func(user, resource string) bool

// Allowed implements ACL.
func (f ACLFunc) Allowed(user, resource string) bool { return f(user, resource) }

// Authorizer implements the resource-manager side of the §4 protocol:
// verify the user grant against keys trusted for PurposeUserCA-certified
// users, verify the host attestation against PurposeHostCA-certified
// hosts, check the ACL, then issue a signed Authorization.
type Authorizer struct {
	rm    *Principal
	trust *TrustStore
	acl   ACL
}

// NewAuthorizer returns an Authorizer signing as rm, trusting trust,
// and consulting acl.
func NewAuthorizer(rm *Principal, trust *TrustStore, acl ACL) *Authorizer {
	return &Authorizer{rm: rm, trust: trust, acl: acl}
}

// Authorize runs the two-certificate check. userCert and hostCert are
// the key certificates for the grant's and attestation's signers; now is
// the RM's logical time. On success it returns the RM's signed
// authorization for the (process, host, resource) triple.
func (a *Authorizer) Authorize(grant *UserGrant, userCert *KeyCertificate, att *HostAttestation, hostCert *KeyCertificate, now uint64) (*Authorization, error) {
	// First certificate: the user's key must be certified by a party the
	// RM trusts to vouch for users.
	if userCert.Purpose != PurposeUserCA {
		return nil, fmt.Errorf("%w: user certificate has purpose %q", ErrUntrusted, userCert.Purpose)
	}
	userKey, err := a.trust.VerifyCertificate(userCert, now)
	if err != nil {
		return nil, fmt.Errorf("seckey: user certificate: %w", err)
	}
	if userCert.Subject != grant.Signer {
		return nil, fmt.Errorf("%w: certificate subject %q is not grant signer %q", ErrScopeMismatch, userCert.Subject, grant.Signer)
	}
	if err := grant.VerifySignature(userKey, now); err != nil {
		return nil, fmt.Errorf("seckey: user grant: %w", err)
	}

	// Second certificate: the requesting host's key must be certified by
	// a party the RM trusts to vouch for hosts.
	if hostCert.Purpose != PurposeHostCA {
		return nil, fmt.Errorf("%w: host certificate has purpose %q", ErrUntrusted, hostCert.Purpose)
	}
	hostKey, err := a.trust.VerifyCertificate(hostCert, now)
	if err != nil {
		return nil, fmt.Errorf("seckey: host certificate: %w", err)
	}
	if hostCert.Subject != att.Signer {
		return nil, fmt.Errorf("%w: certificate subject %q is not attestation signer %q", ErrScopeMismatch, hostCert.Subject, att.Signer)
	}
	if err := att.VerifySignature(hostKey, now); err != nil {
		return nil, fmt.Errorf("seckey: host attestation: %w", err)
	}

	// Scopes must agree: same process, same host, same resource.
	for _, f := range []string{FieldProcess, FieldHost, FieldResource} {
		if grant.Fields[f] != att.Fields[f] {
			return nil, fmt.Errorf("%w: field %s: grant %q, attestation %q",
				ErrScopeMismatch, f, grant.Fields[f], att.Fields[f])
		}
	}

	// Policy: does this user have permission for this resource?
	if a.acl != nil && !a.acl.Allowed(grant.Signer, grant.Fields[FieldResource]) {
		return nil, fmt.Errorf("%w: user %s may not access %s", ErrUntrusted, grant.Signer, grant.Fields[FieldResource])
	}

	fields := map[string]string{
		FieldProcess:  grant.Fields[FieldProcess],
		FieldHost:     grant.Fields[FieldHost],
		FieldResource: grant.Fields[FieldResource],
		"granted-by":  grant.Signer,
	}
	return &Authorization{NewStatement(a.rm, grant.Fields[FieldProcess], PurposeResourceGrant, fields, now, grant.NotAfter)}, nil
}

// VerifyAuthorization is the resource-host side: check that auth was
// signed by a resource manager this host trusts for resource grants.
func VerifyAuthorization(trust *TrustStore, auth *Authorization, now uint64) error {
	rmKey, ok := trust.TrustedKey(PurposeResourceGrant, auth.Signer)
	if !ok {
		return fmt.Errorf("%w: RM %s for resource grants", ErrUntrusted, auth.Signer)
	}
	return auth.VerifySignature(rmKey, now)
}
