package seckey

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"snipe/internal/xdr"
)

// detRand is a deterministic byte stream for reproducible key
// generation in tests.
type detRand struct{ state uint64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}

func newTestPrincipal(t *testing.T, name string, seed uint64) *Principal {
	t.Helper()
	p, err := NewPrincipal(name, &detRand{state: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSignVerify(t *testing.T) {
	p := newTestPrincipal(t, "urn:snipe:user:alice", 1)
	msg := []byte("spawn request")
	sig := p.Sign(msg)
	if !Verify(p.Public(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(p.Public(), []byte("tampered"), sig) {
		t.Fatal("tampered message accepted")
	}
	sig[0] ^= 0xFF
	if Verify(p.Public(), msg, sig) {
		t.Fatal("tampered signature accepted")
	}
	if Verify(nil, msg, sig) {
		t.Fatal("nil key accepted")
	}
}

func TestPublicHexRoundTrip(t *testing.T) {
	p := newTestPrincipal(t, "urn:snipe:host:h1", 2)
	got, err := ParsePublicHex(p.PublicHex())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p.Public()) {
		t.Fatal("hex round trip mismatch")
	}
	if _, err := ParsePublicHex("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParsePublicHex("abcd"); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestStatementRoundTripAndTamper(t *testing.T) {
	signer := newTestPrincipal(t, "urn:snipe:rm:r1", 3)
	s := NewStatement(signer, "urn:snipe:process:p1", PurposeResourceGrant,
		map[string]string{"a": "1", "b": "2"}, 5, 100)
	if err := s.VerifySignature(signer.Public(), 50); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// Encode/decode round trip.
	e := xdr.NewEncoder(0)
	s.Encode(e)
	d := xdr.NewDecoder(e.Bytes())
	got, err := DecodeStatement(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.Subject != s.Subject || got.Signer != s.Signer || got.Purpose != s.Purpose {
		t.Fatalf("decoded statement differs: %+v", got)
	}
	if err := got.VerifySignature(signer.Public(), 50); err != nil {
		t.Fatalf("decoded verify: %v", err)
	}

	// Tampering with a field breaks the signature.
	got.Fields["a"] = "evil"
	if err := got.VerifySignature(signer.Public(), 50); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered field: want ErrBadSignature, got %v", err)
	}
}

func TestStatementExpiry(t *testing.T) {
	signer := newTestPrincipal(t, "rm", 4)
	s := NewStatement(signer, "x", PurposeUserCA, nil, 10, 20)
	if err := s.VerifySignature(signer.Public(), 9); !errors.Is(err, ErrExpired) {
		t.Fatalf("before NotBefore: %v", err)
	}
	if err := s.VerifySignature(signer.Public(), 21); !errors.Is(err, ErrExpired) {
		t.Fatalf("after NotAfter: %v", err)
	}
	if err := s.VerifySignature(signer.Public(), 15); err != nil {
		t.Fatalf("within interval: %v", err)
	}
	// NotAfter == 0 means no expiry.
	s2 := NewStatement(signer, "x", PurposeUserCA, nil, 0, 0)
	if err := s2.VerifySignature(signer.Public(), 1<<60); err != nil {
		t.Fatalf("no expiry: %v", err)
	}
}

func TestKeyCertificate(t *testing.T) {
	ca := newTestPrincipal(t, "urn:snipe:rm:ca", 5)
	alice := newTestPrincipal(t, "urn:snipe:user:alice", 6)
	cert := NewKeyCertificate(ca, alice.Name, alice.Public(), PurposeUserCA, 0, 0)

	key, err := cert.SubjectKey()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key, alice.Public()) {
		t.Fatal("certified key differs")
	}

	trust := NewTrustStore()
	if _, err := trust.VerifyCertificate(cert, 1); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("empty trust store: %v", err)
	}
	trust.Trust(PurposeUserCA, ca.Name, ca.Public())
	if _, err := trust.VerifyCertificate(cert, 1); err != nil {
		t.Fatalf("trusted CA: %v", err)
	}
	trust.Revoke(PurposeUserCA, ca.Name)
	if _, err := trust.VerifyCertificate(cert, 1); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("after revoke: %v", err)
	}
}

func TestTrustStoreKeyCopied(t *testing.T) {
	ca := newTestPrincipal(t, "ca", 7)
	trust := NewTrustStore()
	key := make([]byte, len(ca.Public()))
	copy(key, ca.Public())
	trust.Trust(PurposeUserCA, "ca", key)
	key[0] ^= 0xFF // mutate the caller's slice
	stored, ok := trust.TrustedKey(PurposeUserCA, "ca")
	if !ok {
		t.Fatal("key missing")
	}
	if !bytes.Equal(stored, ca.Public()) {
		t.Fatal("trust store aliased caller's key slice")
	}
}

func setupGrantWorld(t *testing.T) (rm *Authorizer, user, host *Principal, userCert, hostCert *KeyCertificate, hostTrust *TrustStore, rmPrincipal *Principal) {
	t.Helper()
	rmPrincipal = newTestPrincipal(t, "urn:snipe:rm:r1", 10)
	user = newTestPrincipal(t, "urn:snipe:user:alice", 11)
	host = newTestPrincipal(t, "snipe://hosts/h1", 12)

	// The RM doubles as CA for its users and hosts, as §4 recommends.
	userCert = NewKeyCertificate(rmPrincipal, user.Name, user.Public(), PurposeUserCA, 0, 0)
	hostCert = NewKeyCertificate(rmPrincipal, host.Name, host.Public(), PurposeHostCA, 0, 0)

	rmTrust := NewTrustStore()
	rmTrust.Trust(PurposeUserCA, rmPrincipal.Name, rmPrincipal.Public())
	rmTrust.Trust(PurposeHostCA, rmPrincipal.Name, rmPrincipal.Public())

	acl := ACLFunc(func(u, r string) bool {
		return u == user.Name && r == "snipe://res/db"
	})
	rm = NewAuthorizer(rmPrincipal, rmTrust, acl)

	hostTrust = NewTrustStore()
	hostTrust.Trust(PurposeResourceGrant, rmPrincipal.Name, rmPrincipal.Public())
	return
}

func TestTwoCertificateGrantProtocol(t *testing.T) {
	rm, user, host, userCert, hostCert, hostTrust, _ := setupGrantWorld(t)

	grant := NewUserGrant(user, "urn:snipe:process:p1", host.Name, "snipe://res/db", 0, 0)
	att := NewHostAttestation(host, "urn:snipe:process:p1", "snipe://res/db", 0, 0)

	auth, err := rm.Authorize(grant, userCert, att, hostCert, 1)
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if auth.Fields[FieldProcess] != "urn:snipe:process:p1" {
		t.Fatalf("authorization fields: %v", auth.Fields)
	}
	// The resource host verifies the RM's authorization.
	if err := VerifyAuthorization(hostTrust, auth, 2); err != nil {
		t.Fatalf("VerifyAuthorization: %v", err)
	}
	// A host that does not trust this RM rejects it.
	if err := VerifyAuthorization(NewTrustStore(), auth, 2); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("untrusting host: %v", err)
	}
}

func TestGrantScopeMismatch(t *testing.T) {
	rm, user, host, userCert, hostCert, _, _ := setupGrantWorld(t)
	grant := NewUserGrant(user, "urn:snipe:process:p1", host.Name, "snipe://res/db", 0, 0)
	// Attestation names a different process.
	att := NewHostAttestation(host, "urn:snipe:process:OTHER", "snipe://res/db", 0, 0)
	if _, err := rm.Authorize(grant, userCert, att, hostCert, 1); !errors.Is(err, ErrScopeMismatch) {
		t.Fatalf("want ErrScopeMismatch, got %v", err)
	}
}

func TestGrantACLDenied(t *testing.T) {
	rm, user, host, userCert, hostCert, _, _ := setupGrantWorld(t)
	grant := NewUserGrant(user, "urn:snipe:process:p1", host.Name, "snipe://res/forbidden", 0, 0)
	att := NewHostAttestation(host, "urn:snipe:process:p1", "snipe://res/forbidden", 0, 0)
	if _, err := rm.Authorize(grant, userCert, att, hostCert, 1); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("want ErrUntrusted (ACL), got %v", err)
	}
}

func TestGrantForgedByImpostor(t *testing.T) {
	rm, user, host, userCert, hostCert, _, _ := setupGrantWorld(t)
	mallory := newTestPrincipal(t, user.Name, 99) // same name, different key
	grant := NewUserGrant(mallory, "urn:snipe:process:p1", host.Name, "snipe://res/db", 0, 0)
	att := NewHostAttestation(host, "urn:snipe:process:p1", "snipe://res/db", 0, 0)
	if _, err := rm.Authorize(grant, userCert, att, hostCert, 1); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestGrantWrongCertificatePurpose(t *testing.T) {
	rm, user, host, _, hostCert, _, rmPrincipal := setupGrantWorld(t)
	// A host-purpose certificate presented as the user certificate.
	wrongCert := NewKeyCertificate(rmPrincipal, user.Name, user.Public(), PurposeHostCA, 0, 0)
	grant := NewUserGrant(user, "urn:snipe:process:p1", host.Name, "snipe://res/db", 0, 0)
	att := NewHostAttestation(host, "urn:snipe:process:p1", "snipe://res/db", 0, 0)
	if _, err := rm.Authorize(grant, wrongCert, att, hostCert, 1); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("want ErrUntrusted, got %v", err)
	}
}

func TestGrantCertSubjectMismatch(t *testing.T) {
	rm, user, host, _, hostCert, _, rmPrincipal := setupGrantWorld(t)
	// Certificate certifies a different user's name with alice's key.
	badCert := NewKeyCertificate(rmPrincipal, "urn:snipe:user:bob", user.Public(), PurposeUserCA, 0, 0)
	grant := NewUserGrant(user, "urn:snipe:process:p1", host.Name, "snipe://res/db", 0, 0)
	att := NewHostAttestation(host, "urn:snipe:process:p1", "snipe://res/db", 0, 0)
	if _, err := rm.Authorize(grant, badCert, att, hostCert, 1); !errors.Is(err, ErrScopeMismatch) {
		t.Fatalf("want ErrScopeMismatch, got %v", err)
	}
}

func TestContentHash(t *testing.T) {
	h1 := ContentHashHex([]byte("code image v1"))
	h2 := ContentHashHex([]byte("code image v2"))
	if h1 == h2 {
		t.Fatal("distinct content hashed equal")
	}
	if len(h1) != 64 {
		t.Fatalf("hash hex length %d", len(h1))
	}
	if h1 != ContentHashHex([]byte("code image v1")) {
		t.Fatal("hash not deterministic")
	}
}

func TestMAC(t *testing.T) {
	key := MACKey([]byte("shared-secret"), "rc-server-1")
	msg := []byte("catalog update")
	mac := SumMAC(key, msg)
	if !CheckMAC(key, msg, mac) {
		t.Fatal("valid MAC rejected")
	}
	if CheckMAC(key, []byte("other"), mac) {
		t.Fatal("wrong message accepted")
	}
	otherKey := MACKey([]byte("shared-secret"), "rc-server-2")
	if CheckMAC(otherKey, msg, mac) {
		t.Fatal("wrong label key accepted")
	}
}

func TestSortedKeysProperty(t *testing.T) {
	f := func(keys []string) bool {
		m := make(map[string]string, len(keys))
		for _, k := range keys {
			m[k] = "v"
		}
		sorted := sortedKeys(m)
		if len(sorted) != len(m) {
			return false
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1] >= sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: statement signatures survive arbitrary field sets, and any
// single-field mutation is detected.
func TestQuickStatementIntegrity(t *testing.T) {
	signer := newTestPrincipal(t, "signer", 42)
	f := func(subject, k, v, v2 string) bool {
		if v == v2 {
			return true
		}
		s := NewStatement(signer, subject, PurposeCodeSigning, map[string]string{k: v}, 0, 0)
		if s.VerifySignature(signer.Public(), 1) != nil {
			return false
		}
		s.Fields[k] = v2
		return errors.Is(s.VerifySignature(signer.Public(), 1), ErrBadSignature)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignStatement(b *testing.B) {
	signer, err := NewPrincipal("bench", &detRand{state: 1})
	if err != nil {
		b.Fatal(err)
	}
	fields := map[string]string{"process": "p", "host": "h", "resource": "r"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewStatement(signer, "subject", PurposeResourceGrant, fields, 0, 0)
	}
}

func BenchmarkVerifyStatement(b *testing.B) {
	signer, err := NewPrincipal("bench", &detRand{state: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := NewStatement(signer, "subject", PurposeResourceGrant,
		map[string]string{"process": "p"}, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.VerifySignature(signer.Public(), 1); err != nil {
			b.Fatal(err)
		}
	}
}
