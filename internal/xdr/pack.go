package xdr

import "fmt"

// Kind tags a packed item with its type, making Packer buffers
// self-describing in the style of PVM's typed pack/unpack routines.
type Kind uint8

// Item kinds recognised by Packer/Unpacker.
const (
	KindInvalid Kind = iota
	KindInt8
	KindInt16
	KindInt32
	KindInt64
	KindUint8
	KindUint16
	KindUint32
	KindUint64
	KindFloat32
	KindFloat64
	KindBool
	KindString
	KindBytes
	KindInt64Slice
	KindFloat64Slice
	KindStringSlice
)

var kindNames = map[Kind]string{
	KindInvalid:      "invalid",
	KindInt8:         "int8",
	KindInt16:        "int16",
	KindInt32:        "int32",
	KindInt64:        "int64",
	KindUint8:        "uint8",
	KindUint16:       "uint16",
	KindUint32:       "uint32",
	KindUint64:       "uint64",
	KindFloat32:      "float32",
	KindFloat64:      "float64",
	KindBool:         "bool",
	KindString:       "string",
	KindBytes:        "bytes",
	KindInt64Slice:   "[]int64",
	KindFloat64Slice: "[]float64",
	KindStringSlice:  "[]string",
}

// String returns the human-readable kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Packer builds a self-describing typed message buffer. Each Pack* call
// appends a one-byte kind tag followed by the value's encoding, so that
// the receiving Unpacker can verify it is reading the type the sender
// wrote — the PVM heritage SNIPE's client library keeps (§3.4).
// The zero value is ready to use.
type Packer struct {
	enc Encoder
}

// NewPacker returns a Packer with capacity preallocated.
func NewPacker(capacity int) *Packer {
	return &Packer{enc: Encoder{buf: make([]byte, 0, capacity)}}
}

// Bytes returns the packed buffer.
func (p *Packer) Bytes() []byte { return p.enc.Bytes() }

// Len returns the packed length in bytes.
func (p *Packer) Len() int { return p.enc.Len() }

// Reset discards all packed data.
func (p *Packer) Reset() { p.enc.Reset() }

// PackInt8 appends a tagged int8.
func (p *Packer) PackInt8(v int8) { p.enc.PutUint8(uint8(KindInt8)); p.enc.PutInt8(v) }

// PackInt16 appends a tagged int16.
func (p *Packer) PackInt16(v int16) { p.enc.PutUint8(uint8(KindInt16)); p.enc.PutInt16(v) }

// PackInt32 appends a tagged int32.
func (p *Packer) PackInt32(v int32) { p.enc.PutUint8(uint8(KindInt32)); p.enc.PutInt32(v) }

// PackInt64 appends a tagged int64.
func (p *Packer) PackInt64(v int64) { p.enc.PutUint8(uint8(KindInt64)); p.enc.PutInt64(v) }

// PackUint8 appends a tagged uint8.
func (p *Packer) PackUint8(v uint8) { p.enc.PutUint8(uint8(KindUint8)); p.enc.PutUint8(v) }

// PackUint16 appends a tagged uint16.
func (p *Packer) PackUint16(v uint16) { p.enc.PutUint8(uint8(KindUint16)); p.enc.PutUint16(v) }

// PackUint32 appends a tagged uint32.
func (p *Packer) PackUint32(v uint32) { p.enc.PutUint8(uint8(KindUint32)); p.enc.PutUint32(v) }

// PackUint64 appends a tagged uint64.
func (p *Packer) PackUint64(v uint64) { p.enc.PutUint8(uint8(KindUint64)); p.enc.PutUint64(v) }

// PackFloat32 appends a tagged float32.
func (p *Packer) PackFloat32(v float32) { p.enc.PutUint8(uint8(KindFloat32)); p.enc.PutFloat32(v) }

// PackFloat64 appends a tagged float64.
func (p *Packer) PackFloat64(v float64) { p.enc.PutUint8(uint8(KindFloat64)); p.enc.PutFloat64(v) }

// PackBool appends a tagged bool.
func (p *Packer) PackBool(v bool) { p.enc.PutUint8(uint8(KindBool)); p.enc.PutBool(v) }

// PackString appends a tagged string.
func (p *Packer) PackString(v string) { p.enc.PutUint8(uint8(KindString)); p.enc.PutString(v) }

// PackBytes appends a tagged byte slice.
func (p *Packer) PackBytes(v []byte) { p.enc.PutUint8(uint8(KindBytes)); p.enc.PutBytes(v) }

// PackInt64Slice appends a tagged []int64.
func (p *Packer) PackInt64Slice(v []int64) {
	p.enc.PutUint8(uint8(KindInt64Slice))
	p.enc.PutUint32(uint32(len(v)))
	for _, x := range v {
		p.enc.PutInt64(x)
	}
}

// PackFloat64Slice appends a tagged []float64.
func (p *Packer) PackFloat64Slice(v []float64) {
	p.enc.PutUint8(uint8(KindFloat64Slice))
	p.enc.PutUint32(uint32(len(v)))
	for _, x := range v {
		p.enc.PutFloat64(x)
	}
}

// PackStringSlice appends a tagged []string.
func (p *Packer) PackStringSlice(v []string) {
	p.enc.PutUint8(uint8(KindStringSlice))
	p.enc.PutStringSlice(v)
}

// Unpacker reads a typed buffer produced by Packer, verifying each
// item's kind tag.
type Unpacker struct {
	dec Decoder
}

// NewUnpacker returns an Unpacker over data.
func NewUnpacker(data []byte) *Unpacker {
	return &Unpacker{dec: Decoder{buf: data}}
}

// Remaining reports the number of unread bytes.
func (u *Unpacker) Remaining() int { return u.dec.Remaining() }

// Finish returns an error if unread bytes remain.
func (u *Unpacker) Finish() error { return u.dec.Finish() }

// NextKind peeks at the kind of the next item without consuming it.
func (u *Unpacker) NextKind() (Kind, error) {
	if u.dec.Remaining() < 1 {
		return KindInvalid, ErrShortBuffer
	}
	return Kind(u.dec.buf[u.dec.off]), nil
}

func (u *Unpacker) expect(k Kind) error {
	off := u.dec.Offset()
	got, err := u.dec.Uint8()
	if err != nil {
		return err
	}
	if Kind(got) != k {
		return fmt.Errorf("%w: at offset %d: want %v, got %v", ErrTypeMismatch, off, k, Kind(got))
	}
	return nil
}

// Int8 unpacks a tagged int8.
func (u *Unpacker) Int8() (int8, error) {
	if err := u.expect(KindInt8); err != nil {
		return 0, err
	}
	return u.dec.Int8()
}

// Int16 unpacks a tagged int16.
func (u *Unpacker) Int16() (int16, error) {
	if err := u.expect(KindInt16); err != nil {
		return 0, err
	}
	return u.dec.Int16()
}

// Int32 unpacks a tagged int32.
func (u *Unpacker) Int32() (int32, error) {
	if err := u.expect(KindInt32); err != nil {
		return 0, err
	}
	return u.dec.Int32()
}

// Int64 unpacks a tagged int64.
func (u *Unpacker) Int64() (int64, error) {
	if err := u.expect(KindInt64); err != nil {
		return 0, err
	}
	return u.dec.Int64()
}

// Uint8 unpacks a tagged uint8.
func (u *Unpacker) Uint8() (uint8, error) {
	if err := u.expect(KindUint8); err != nil {
		return 0, err
	}
	return u.dec.Uint8()
}

// Uint16 unpacks a tagged uint16.
func (u *Unpacker) Uint16() (uint16, error) {
	if err := u.expect(KindUint16); err != nil {
		return 0, err
	}
	return u.dec.Uint16()
}

// Uint32 unpacks a tagged uint32.
func (u *Unpacker) Uint32() (uint32, error) {
	if err := u.expect(KindUint32); err != nil {
		return 0, err
	}
	return u.dec.Uint32()
}

// Uint64 unpacks a tagged uint64.
func (u *Unpacker) Uint64() (uint64, error) {
	if err := u.expect(KindUint64); err != nil {
		return 0, err
	}
	return u.dec.Uint64()
}

// Float32 unpacks a tagged float32.
func (u *Unpacker) Float32() (float32, error) {
	if err := u.expect(KindFloat32); err != nil {
		return 0, err
	}
	return u.dec.Float32()
}

// Float64 unpacks a tagged float64.
func (u *Unpacker) Float64() (float64, error) {
	if err := u.expect(KindFloat64); err != nil {
		return 0, err
	}
	return u.dec.Float64()
}

// Bool unpacks a tagged bool.
func (u *Unpacker) Bool() (bool, error) {
	if err := u.expect(KindBool); err != nil {
		return false, err
	}
	return u.dec.Bool()
}

// String unpacks a tagged string.
func (u *Unpacker) String() (string, error) {
	if err := u.expect(KindString); err != nil {
		return "", err
	}
	return u.dec.String()
}

// Bytes unpacks a tagged byte slice into fresh storage.
func (u *Unpacker) Bytes() ([]byte, error) {
	if err := u.expect(KindBytes); err != nil {
		return nil, err
	}
	return u.dec.BytesCopy()
}

// Int64Slice unpacks a tagged []int64.
func (u *Unpacker) Int64Slice() ([]int64, error) {
	if err := u.expect(KindInt64Slice); err != nil {
		return nil, err
	}
	n, err := u.dec.Uint32()
	if err != nil {
		return nil, err
	}
	if int64(n)*8 > int64(u.dec.Remaining()) {
		return nil, fmt.Errorf("%w: []int64 at offset %d: declared %d items, remaining %d bytes",
			ErrStringTooLong, u.dec.Offset()-4, n, u.dec.Remaining())
	}
	out := make([]int64, n)
	for i := range out {
		if out[i], err = u.dec.Int64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Float64Slice unpacks a tagged []float64.
func (u *Unpacker) Float64Slice() ([]float64, error) {
	if err := u.expect(KindFloat64Slice); err != nil {
		return nil, err
	}
	n, err := u.dec.Uint32()
	if err != nil {
		return nil, err
	}
	if int64(n)*8 > int64(u.dec.Remaining()) {
		return nil, fmt.Errorf("%w: []float64 at offset %d: declared %d items, remaining %d bytes",
			ErrStringTooLong, u.dec.Offset()-4, n, u.dec.Remaining())
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = u.dec.Float64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// StringSlice unpacks a tagged []string.
func (u *Unpacker) StringSlice() ([]string, error) {
	if err := u.expect(KindStringSlice); err != nil {
		return nil, err
	}
	return u.dec.StringSlice()
}
