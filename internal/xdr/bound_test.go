package xdr

import (
	"errors"
	"runtime"
	"strings"
	"testing"
)

// hostileLen returns a buffer whose length prefix claims n bytes but
// which carries almost no payload.
func hostileLen(n uint32) []byte {
	e := NewEncoder(8)
	e.PutUint32(n)
	e.PutRaw([]byte{1, 2, 3})
	return e.Bytes()
}

// TestHostileLengthFailsFastWithoutAllocating proves the MaxDecodeLen
// guard: a frame claiming a 2 GB string/slice errors out before any
// allocation is sized from the declared length.
func TestHostileLengthFailsFastWithoutAllocating(t *testing.T) {
	const claimed = 2 << 30 // 2 GiB, above MaxDecodeLen
	buf := hostileLen(claimed)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)

	decodes := []struct {
		name string
		fn   func(d *Decoder) error
	}{
		{"String", func(d *Decoder) error { _, err := d.String(); return err }},
		{"Bytes", func(d *Decoder) error { _, err := d.Bytes(); return err }},
		{"BytesCopy", func(d *Decoder) error { _, err := d.BytesCopy(); return err }},
		{"StringSlice", func(d *Decoder) error { _, err := d.StringSlice(); return err }},
		{"StringMax", func(d *Decoder) error { _, err := d.StringMax(16); return err }},
		{"BytesCopyMax", func(d *Decoder) error { _, err := d.BytesCopyMax(16); return err }},
	}
	for _, tc := range decodes {
		err := tc.fn(NewDecoder(buf))
		if err == nil {
			t.Fatalf("%s: hostile 2 GB length accepted", tc.name)
		}
		if !errors.Is(err, ErrStringTooLong) {
			t.Errorf("%s: err = %v, want ErrStringTooLong", tc.name, err)
		}
	}

	runtime.ReadMemStats(&ms1)
	if grew := ms1.TotalAlloc - ms0.TotalAlloc; grew > 1<<20 {
		t.Fatalf("decoding hostile lengths allocated %d bytes; want < 1 MiB", grew)
	}
}

func TestStringSliceHostileCountFailsFast(t *testing.T) {
	// Claim 500M items in an 8-byte buffer: must fail on the count
	// alone, before looping.
	d := NewDecoder(hostileLen(500 << 20))
	if _, err := d.StringSlice(); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("err = %v, want ErrStringTooLong", err)
	}
	// And a count above an explicit item cap.
	e := NewEncoder(16)
	e.PutStringSlice([]string{"a", "b", "c"})
	d = NewDecoder(e.Bytes())
	if _, err := d.StringSliceMax(2, 16); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("err = %v, want ErrStringTooLong for item-cap overflow", err)
	}
}

func TestCappedVariants(t *testing.T) {
	e := NewEncoder(64)
	e.PutString("hello")
	e.PutBytes([]byte{9, 9, 9})
	e.PutStringSlice([]string{"xx", "yy"})

	d := NewDecoder(e.Bytes())
	s, err := d.StringMax(5)
	if err != nil || s != "hello" {
		t.Fatalf("StringMax = %q, %v", s, err)
	}
	b, err := d.BytesCopyMax(3)
	if err != nil || len(b) != 3 {
		t.Fatalf("BytesCopyMax = %v, %v", b, err)
	}
	ss, err := d.StringSliceMax(2, 2)
	if err != nil || len(ss) != 2 {
		t.Fatalf("StringSliceMax = %v, %v", ss, err)
	}

	// Same data, caps one too small.
	d = NewDecoder(e.Bytes())
	if _, err := d.StringMax(4); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("StringMax(4) err = %v", err)
	}
	d = NewDecoder(e.Bytes())
	d.StringMax(5)
	if _, err := d.BytesMax(2); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("BytesMax(2) err = %v", err)
	}
	d = NewDecoder(e.Bytes())
	d.StringMax(5)
	d.BytesMax(3)
	if _, err := d.StringSliceMax(2, 1); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("StringSliceMax(2,1) err = %v", err)
	}
}

// TestDecodeErrorsCarryKindAndOffset covers the diagnosability fix:
// every decode error names what was being read and where.
func TestDecodeErrorsCarryKindAndOffset(t *testing.T) {
	// Short scalar: three bytes where a uint32 is needed at offset 0.
	d := NewDecoder([]byte{1, 2, 3})
	_, err := d.Uint32()
	if !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
	for _, want := range []string{"uint32", "offset 0"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}

	// Scalar mid-buffer: the offset must reflect the cursor.
	d = NewDecoder([]byte{1, 2, 3})
	d.Uint16()
	_, err = d.Uint64()
	if !strings.Contains(err.Error(), "uint64 at offset 2") {
		t.Errorf("error %q missing kind+offset", err)
	}

	// Over-cap length prefix names the kind, offset, and both sizes.
	e := NewEncoder(16)
	e.PutUint8(7)
	e.PutString("too long for cap")
	d = NewDecoder(e.Bytes())
	d.Uint8()
	_, err = d.StringMax(4)
	for _, want := range []string{"string", "offset 1", "exceeds cap 4"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}

	// Unpacker type mismatch names both kinds and the tag offset.
	p := NewPacker(16)
	p.PackInt8(1)
	p.PackString("x")
	u := NewUnpacker(p.Bytes())
	u.Int8()
	_, err = u.Int64()
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
	for _, want := range []string{"offset 2", "want int64", "got string"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestUnpackerSliceCountGuard(t *testing.T) {
	// A []int64 claiming 1<<31 items must fail fast (the old int
	// multiplication guard could be bypassed on 32-bit hosts).
	e := NewEncoder(16)
	e.PutUint8(uint8(KindInt64Slice))
	e.PutUint32(1 << 31)
	u := NewUnpacker(e.Bytes())
	if _, err := u.Int64Slice(); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("err = %v, want ErrStringTooLong", err)
	}
}
