package xdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeScalars(t *testing.T) {
	e := NewEncoder(64)
	e.PutUint8(0xAB)
	e.PutUint16(0xCDEF)
	e.PutUint32(0xDEADBEEF)
	e.PutUint64(0x0123456789ABCDEF)
	e.PutInt8(-5)
	e.PutInt16(-1234)
	e.PutInt32(-123456789)
	e.PutInt64(-1234567890123456789)
	e.PutFloat32(3.25)
	e.PutFloat64(-2.5e100)
	e.PutBool(true)
	e.PutBool(false)

	d := NewDecoder(e.Bytes())
	if v, err := d.Uint8(); err != nil || v != 0xAB {
		t.Fatalf("Uint8 = %v, %v", v, err)
	}
	if v, err := d.Uint16(); err != nil || v != 0xCDEF {
		t.Fatalf("Uint16 = %v, %v", v, err)
	}
	if v, err := d.Uint32(); err != nil || v != 0xDEADBEEF {
		t.Fatalf("Uint32 = %v, %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != 0x0123456789ABCDEF {
		t.Fatalf("Uint64 = %v, %v", v, err)
	}
	if v, err := d.Int8(); err != nil || v != -5 {
		t.Fatalf("Int8 = %v, %v", v, err)
	}
	if v, err := d.Int16(); err != nil || v != -1234 {
		t.Fatalf("Int16 = %v, %v", v, err)
	}
	if v, err := d.Int32(); err != nil || v != -123456789 {
		t.Fatalf("Int32 = %v, %v", v, err)
	}
	if v, err := d.Int64(); err != nil || v != -1234567890123456789 {
		t.Fatalf("Int64 = %v, %v", v, err)
	}
	if v, err := d.Float32(); err != nil || v != 3.25 {
		t.Fatalf("Float32 = %v, %v", v, err)
	}
	if v, err := d.Float64(); err != nil || v != -2.5e100 {
		t.Fatalf("Float64 = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v != true {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v != false {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestEncodeDecodeStringsAndBytes(t *testing.T) {
	e := NewEncoder(0)
	e.PutString("hello, SNIPE")
	e.PutString("")
	e.PutBytes([]byte{1, 2, 3})
	e.PutBytes(nil)
	e.PutStringSlice([]string{"a", "", "URN:snipe:x"})
	e.PutRaw([]byte{9, 9})

	d := NewDecoder(e.Bytes())
	if s, err := d.String(); err != nil || s != "hello, SNIPE" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if s, err := d.String(); err != nil || s != "" {
		t.Fatalf("empty String = %q, %v", s, err)
	}
	if b, err := d.Bytes(); err != nil || !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v, %v", b, err)
	}
	if b, err := d.Bytes(); err != nil || len(b) != 0 {
		t.Fatalf("nil Bytes = %v, %v", b, err)
	}
	ss, err := d.StringSlice()
	if err != nil || len(ss) != 3 || ss[2] != "URN:snipe:x" {
		t.Fatalf("StringSlice = %v, %v", ss, err)
	}
	raw, err := d.Raw(2)
	if err != nil || !bytes.Equal(raw, []byte{9, 9}) {
		t.Fatalf("Raw = %v, %v", raw, err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", err)
	}
	// A failed read must not advance the cursor.
	if v, err := d.Uint16(); err != nil || v != 0x0102 {
		t.Fatalf("after failed read: %v, %v", v, err)
	}
}

func TestDecoderCorruptLength(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint32(1 << 30) // absurd declared length
	d := NewDecoder(e.Bytes())
	if _, err := d.Bytes(); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("want ErrStringTooLong, got %v", err)
	}

	// Declared length longer than remaining data.
	e.Reset()
	e.PutUint32(10)
	e.PutRaw([]byte("abc"))
	d = NewDecoder(e.Bytes())
	if _, err := d.String(); !errors.Is(err, ErrStringTooLong) {
		t.Fatalf("want ErrStringTooLong, got %v", err)
	}
}

func TestDecoderTrailingData(t *testing.T) {
	d := NewDecoder([]byte{0, 0})
	if _, err := d.Uint8(); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("want ErrTrailingData, got %v", err)
	}
}

func TestBytesCopyIndependence(t *testing.T) {
	e := NewEncoder(0)
	e.PutBytes([]byte{7, 8, 9})
	src := e.Bytes()
	d := NewDecoder(src)
	got, err := d.BytesCopy()
	if err != nil {
		t.Fatal(err)
	}
	src[4] = 0 // mutate the first payload byte in the source buffer
	if got[0] != 7 {
		t.Fatal("BytesCopy result aliases source buffer")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	p := NewPacker(0)
	p.PackInt8(-1)
	p.PackInt16(-300)
	p.PackInt32(1 << 20)
	p.PackInt64(-(1 << 40))
	p.PackUint8(200)
	p.PackUint16(60000)
	p.PackUint32(4e9)
	p.PackUint64(1 << 63)
	p.PackFloat32(1.5)
	p.PackFloat64(math.Pi)
	p.PackBool(true)
	p.PackString("metadata")
	p.PackBytes([]byte{0xFF, 0x00})
	p.PackInt64Slice([]int64{1, -2, 3})
	p.PackFloat64Slice([]float64{0.5, -0.25})
	p.PackStringSlice([]string{"x", "y"})

	u := NewUnpacker(p.Bytes())
	if v, err := u.Int8(); err != nil || v != -1 {
		t.Fatalf("Int8: %v %v", v, err)
	}
	if v, err := u.Int16(); err != nil || v != -300 {
		t.Fatalf("Int16: %v %v", v, err)
	}
	if v, err := u.Int32(); err != nil || v != 1<<20 {
		t.Fatalf("Int32: %v %v", v, err)
	}
	if v, err := u.Int64(); err != nil || v != -(1<<40) {
		t.Fatalf("Int64: %v %v", v, err)
	}
	if v, err := u.Uint8(); err != nil || v != 200 {
		t.Fatalf("Uint8: %v %v", v, err)
	}
	if v, err := u.Uint16(); err != nil || v != 60000 {
		t.Fatalf("Uint16: %v %v", v, err)
	}
	if v, err := u.Uint32(); err != nil || v != 4e9 {
		t.Fatalf("Uint32: %v %v", v, err)
	}
	if v, err := u.Uint64(); err != nil || v != 1<<63 {
		t.Fatalf("Uint64: %v %v", v, err)
	}
	if v, err := u.Float32(); err != nil || v != 1.5 {
		t.Fatalf("Float32: %v %v", v, err)
	}
	if v, err := u.Float64(); err != nil || v != math.Pi {
		t.Fatalf("Float64: %v %v", v, err)
	}
	if v, err := u.Bool(); err != nil || !v {
		t.Fatalf("Bool: %v %v", v, err)
	}
	if v, err := u.String(); err != nil || v != "metadata" {
		t.Fatalf("String: %v %v", v, err)
	}
	if v, err := u.Bytes(); err != nil || !bytes.Equal(v, []byte{0xFF, 0x00}) {
		t.Fatalf("Bytes: %v %v", v, err)
	}
	if v, err := u.Int64Slice(); err != nil || len(v) != 3 || v[1] != -2 {
		t.Fatalf("Int64Slice: %v %v", v, err)
	}
	if v, err := u.Float64Slice(); err != nil || len(v) != 2 || v[1] != -0.25 {
		t.Fatalf("Float64Slice: %v %v", v, err)
	}
	if v, err := u.StringSlice(); err != nil || len(v) != 2 || v[0] != "x" {
		t.Fatalf("StringSlice: %v %v", v, err)
	}
	if err := u.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestUnpackTypeMismatch(t *testing.T) {
	p := NewPacker(0)
	p.PackInt32(42)
	u := NewUnpacker(p.Bytes())
	if _, err := u.String(); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestNextKind(t *testing.T) {
	p := NewPacker(0)
	p.PackFloat64(1)
	u := NewUnpacker(p.Bytes())
	k, err := u.NextKind()
	if err != nil || k != KindFloat64 {
		t.Fatalf("NextKind = %v, %v", k, err)
	}
	// Peeking must not consume.
	if _, err := u.Float64(); err != nil {
		t.Fatalf("Float64 after peek: %v", err)
	}
	if _, err := u.NextKind(); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("NextKind at end: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindFloat64.String() != "float64" {
		t.Fatal("KindFloat64 name")
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("unknown kind name")
	}
}

// Property: any sequence of (uint64, string, bytes) triples round-trips.
func TestQuickRoundTripTriples(t *testing.T) {
	f := func(u64s []uint64, strs []string, blobs [][]byte) bool {
		e := NewEncoder(0)
		for _, v := range u64s {
			e.PutUint64(v)
		}
		e.PutStringSlice(strs)
		e.PutUint32(uint32(len(blobs)))
		for _, b := range blobs {
			e.PutBytes(b)
		}
		d := NewDecoder(e.Bytes())
		for _, v := range u64s {
			got, err := d.Uint64()
			if err != nil || got != v {
				return false
			}
		}
		gotStrs, err := d.StringSlice()
		if err != nil || len(gotStrs) != len(strs) {
			return false
		}
		for i := range strs {
			if gotStrs[i] != strs[i] {
				return false
			}
		}
		n, err := d.Uint32()
		if err != nil || int(n) != len(blobs) {
			return false
		}
		for _, b := range blobs {
			got, err := d.Bytes()
			if err != nil || !bytes.Equal(got, b) {
				return false
			}
		}
		return d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: floats round-trip bit-exactly, including NaN payload bits.
func TestQuickFloatBits(t *testing.T) {
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		e := NewEncoder(8)
		e.PutFloat64(v)
		d := NewDecoder(e.Bytes())
		got, err := d.Float64()
		return err == nil && math.Float64bits(got) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a decoder never reads past the end of arbitrary input; it
// either returns a value or an error, and never panics.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(data)
		for d.Remaining() > 0 {
			if _, err := d.Bytes(); err != nil {
				// On error the cursor may stop; consume one byte to progress.
				if _, err := d.Uint8(); err != nil {
					return true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: packer/unpacker round-trips arbitrary typed payloads.
func TestQuickPackRoundTrip(t *testing.T) {
	f := func(i int64, s string, b []byte, fs []float64) bool {
		p := NewPacker(0)
		p.PackInt64(i)
		p.PackString(s)
		p.PackBytes(b)
		p.PackFloat64Slice(fs)
		u := NewUnpacker(p.Bytes())
		gi, err := u.Int64()
		if err != nil || gi != i {
			return false
		}
		gs, err := u.String()
		if err != nil || gs != s {
			return false
		}
		gb, err := u.Bytes()
		if err != nil || !bytes.Equal(gb, b) {
			return false
		}
		gfs, err := u.Float64Slice()
		if err != nil || len(gfs) != len(fs) {
			return false
		}
		for idx := range fs {
			if math.Float64bits(gfs[idx]) != math.Float64bits(fs[idx]) {
				return false
			}
		}
		return u.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeSmall(b *testing.B) {
	e := NewEncoder(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutUint64(uint64(i))
		e.PutString("urn:snipe:process:42")
		e.PutUint32(7)
	}
}

func BenchmarkDecodeSmall(b *testing.B) {
	e := NewEncoder(64)
	e.PutUint64(1)
	e.PutString("urn:snipe:process:42")
	e.PutUint32(7)
	data := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(data)
		if _, err := d.Uint64(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.String(); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Uint32(); err != nil {
			b.Fatal(err)
		}
	}
}
