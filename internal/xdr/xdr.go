// Package xdr implements architecture-independent data conversion for
// SNIPE, in the spirit of Sun XDR as used by PVM and RCDS.
//
// All multi-byte quantities are encoded big-endian ("network order") so
// that heterogeneous hosts interoperate: the SNIPE paper (§3.4) lists
// "data conversion (e.g. between different host architectures)" as a
// client-library responsibility. Two layers are provided:
//
//   - Encoder/Decoder: a low-level, append-only binary encoder and a
//     cursor-based decoder used by every wire protocol in the repository.
//   - Packer/Unpacker: a typed, self-describing message buffer in the
//     style of PVM's pvm_pk*/pvm_upk* routines. Each item carries a type
//     tag so that receivers can validate the shape of incoming data.
package xdr

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by decoding routines.
var (
	// ErrShortBuffer indicates a read past the end of the encoded data.
	ErrShortBuffer = errors.New("xdr: short buffer")
	// ErrStringTooLong indicates a declared length that exceeds the
	// remaining buffer or the sanity limit.
	ErrStringTooLong = errors.New("xdr: declared length exceeds buffer")
	// ErrTypeMismatch indicates an unpack of a different type than packed.
	ErrTypeMismatch = errors.New("xdr: type mismatch")
	// ErrTrailingData indicates extra bytes after a complete decode.
	ErrTrailingData = errors.New("xdr: trailing data")
)

// MaxDecodeLen bounds any single declared string/byte-slice length, as
// a defence against corrupt or hostile length prefixes: no decode path
// ever sizes an allocation from a declared length above this, so a
// frame claiming a 2 GB string fails fast without allocating.
//
// Wire decoders should normally pass a much tighter, field-appropriate
// cap to the *Max variants (StringMax, BytesMax, BytesCopyMax,
// StringSliceMax); the snipe-lint xdrbound analyzer enforces that the
// uncapped forms are not used outside this package.
const MaxDecodeLen = 1 << 28 // 256 MiB

// Encoder accumulates a big-endian binary encoding. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded data. The slice aliases the encoder's
// internal buffer; callers that keep encoding must copy it first.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards all encoded data, retaining the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUint8 appends a single byte.
func (e *Encoder) PutUint8(v uint8) { e.buf = append(e.buf, v) }

// PutUint16 appends a big-endian 16-bit value.
func (e *Encoder) PutUint16(v uint16) {
	e.buf = append(e.buf, byte(v>>8), byte(v))
}

// PutUint32 appends a big-endian 32-bit value.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// PutUint64 appends a big-endian 64-bit value.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = append(e.buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// PutInt8 appends a signed byte.
func (e *Encoder) PutInt8(v int8) { e.PutUint8(uint8(v)) }

// PutInt16 appends a big-endian signed 16-bit value.
func (e *Encoder) PutInt16(v int16) { e.PutUint16(uint16(v)) }

// PutInt32 appends a big-endian signed 32-bit value.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutInt64 appends a big-endian signed 64-bit value.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutFloat32 appends an IEEE-754 float in big-endian bit order.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutFloat64 appends an IEEE-754 double in big-endian bit order.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutBool appends a boolean as a single 0/1 byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint8(1)
	} else {
		e.PutUint8(0)
	}
}

// PutString appends a uint32 length prefix followed by the string bytes.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a uint32 length prefix followed by the raw bytes.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutRaw appends bytes with no length prefix.
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// PutStringSlice appends a count followed by each string.
func (e *Encoder) PutStringSlice(ss []string) {
	e.PutUint32(uint32(len(ss)))
	for _, s := range ss {
		e.PutString(s)
	}
}

// Decoder reads values from a big-endian binary encoding produced by
// Encoder. Decoders are value types; copying one yields an independent
// cursor over the same data.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a Decoder reading from data. The decoder does not
// copy data; the caller must not mutate it while decoding.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset reports the current read offset.
func (d *Decoder) Offset() int { return d.off }

// Finish returns ErrTrailingData if unread bytes remain, nil otherwise.
func (d *Decoder) Finish() error {
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailingData, d.Remaining())
	}
	return nil
}

// errShort builds an ErrShortBuffer that names the kind being decoded
// and the offset where the buffer ran out, so a corrupted frame (or a
// fuzzer crash) is diagnosable from the error alone.
func (d *Decoder) errShort(kind string, need int) error {
	return fmt.Errorf("%w: %s at offset %d: need %d bytes, have %d",
		ErrShortBuffer, kind, d.off, need, d.Remaining())
}

func (d *Decoder) need(n int) error {
	if d.Remaining() < n {
		return ErrShortBuffer
	}
	return nil
}

// Uint8 reads a single byte.
func (d *Decoder) Uint8() (uint8, error) {
	if d.Remaining() < 1 {
		return 0, d.errShort("uint8", 1)
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

// Uint16 reads a big-endian 16-bit value.
func (d *Decoder) Uint16() (uint16, error) {
	if d.Remaining() < 2 {
		return 0, d.errShort("uint16", 2)
	}
	v := uint16(d.buf[d.off])<<8 | uint16(d.buf[d.off+1])
	d.off += 2
	return v, nil
}

// Uint32 reads a big-endian 32-bit value.
func (d *Decoder) Uint32() (uint32, error) {
	if d.Remaining() < 4 {
		return 0, d.errShort("uint32", 4)
	}
	b := d.buf[d.off:]
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	d.off += 4
	return v, nil
}

// Uint64 reads a big-endian 64-bit value.
func (d *Decoder) Uint64() (uint64, error) {
	if d.Remaining() < 8 {
		return 0, d.errShort("uint64", 8)
	}
	b := d.buf[d.off:]
	v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	d.off += 8
	return v, nil
}

// Int8 reads a signed byte.
func (d *Decoder) Int8() (int8, error) {
	v, err := d.Uint8()
	return int8(v), err
}

// Int16 reads a big-endian signed 16-bit value.
func (d *Decoder) Int16() (int16, error) {
	v, err := d.Uint16()
	return int16(v), err
}

// Int32 reads a big-endian signed 32-bit value.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Int64 reads a big-endian signed 64-bit value.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Float32 reads an IEEE-754 float.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// Bool reads a boolean byte; any nonzero value is true.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint8()
	return v != 0, err
}

// lengthPrefixed reads one length-prefixed field of the given kind,
// rejecting declared lengths above max (and always above MaxDecodeLen)
// before anything is allocated or consumed past the prefix.
func (d *Decoder) lengthPrefixed(kind string, max int) ([]byte, error) {
	if max < 0 || max > MaxDecodeLen {
		max = MaxDecodeLen
	}
	off := d.off
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %s at offset %d: declared %d exceeds cap %d",
			ErrStringTooLong, kind, off, n, max)
	}
	if d.Remaining() < int(n) {
		return nil, fmt.Errorf("%w: %s at offset %d: declared %d, remaining %d",
			ErrStringTooLong, kind, off, n, d.Remaining())
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// String reads a length-prefixed string.
//
// Wire decoders should prefer StringMax with a field-appropriate cap.
func (d *Decoder) String() (string, error) {
	b, err := d.lengthPrefixed("string", MaxDecodeLen)
	return string(b), err
}

// StringMax reads a length-prefixed string, rejecting declared lengths
// above max.
func (d *Decoder) StringMax(max int) (string, error) {
	b, err := d.lengthPrefixed("string", max)
	return string(b), err
}

// Bytes reads a length-prefixed byte slice. The returned slice aliases
// the decoder's underlying buffer.
//
// Wire decoders should prefer BytesMax with a field-appropriate cap.
func (d *Decoder) Bytes() ([]byte, error) {
	return d.lengthPrefixed("bytes", MaxDecodeLen)
}

// BytesMax reads a length-prefixed byte slice, rejecting declared
// lengths above max. The returned slice aliases the decoder's
// underlying buffer.
func (d *Decoder) BytesMax(max int) ([]byte, error) {
	return d.lengthPrefixed("bytes", max)
}

// BytesCopy reads a length-prefixed byte slice into fresh storage.
//
// Wire decoders should prefer BytesCopyMax with a field-appropriate
// cap.
func (d *Decoder) BytesCopy() ([]byte, error) {
	return d.BytesCopyMax(MaxDecodeLen)
}

// BytesCopyMax reads a length-prefixed byte slice into fresh storage,
// rejecting declared lengths above max.
func (d *Decoder) BytesCopyMax(max int) ([]byte, error) {
	b, err := d.lengthPrefixed("bytes", max)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// Raw reads exactly n bytes with no length prefix. The returned slice
// aliases the decoder's underlying buffer.
func (d *Decoder) Raw(n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrShortBuffer
	}
	if err := d.need(n); err != nil {
		return nil, d.errShort("raw", n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// StringSlice reads a count-prefixed sequence of strings.
//
// Wire decoders should prefer StringSliceMax with field-appropriate
// caps.
func (d *Decoder) StringSlice() ([]string, error) {
	return d.StringSliceMax(MaxDecodeLen, MaxDecodeLen)
}

// StringSliceMax reads a count-prefixed sequence of strings, rejecting
// counts above maxItems and individual strings longer than maxEach. A
// declared count that could not fit in the remaining bytes (each
// element costs at least its 4-byte length prefix) fails fast before
// any element is decoded.
func (d *Decoder) StringSliceMax(maxItems, maxEach int) ([]string, error) {
	if maxItems < 0 || maxItems > MaxDecodeLen {
		maxItems = MaxDecodeLen
	}
	off := d.off
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(maxItems) {
		return nil, fmt.Errorf("%w: string slice at offset %d: declared %d items exceeds cap %d",
			ErrStringTooLong, off, n, maxItems)
	}
	if int64(n)*4 > int64(d.Remaining()) {
		return nil, fmt.Errorf("%w: string slice at offset %d: declared %d items, remaining %d bytes",
			ErrStringTooLong, off, n, d.Remaining())
	}
	out := make([]string, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		s, err := d.StringMax(maxEach)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
