package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
)

// Handler serves one accepted stream. The request side is read from st
// until io.EOF; the response is written back on the same stream. A nil
// return half-closes the stream cleanly (clients see EOF after the
// response); an error resets it, and the client treats the call as
// failed and retries on another replica.
type Handler func(ctx context.Context, st *comm.Stream) error

// ServerConfig wires one replica of a service group.
type ServerConfig struct {
	// Name is the service name; all replicas of a group share it.
	Name     string
	Catalog  naming.Catalog
	Endpoint *comm.Endpoint
	// Mux, when non-nil, is a shared stream mux over Endpoint (an
	// endpoint supports exactly one mux). Nil builds an owned one.
	Mux *comm.StreamMux
	// MuxOptions tunes an owned mux (ignored when Mux is set).
	MuxOptions []comm.StreamMuxOption
	// Monitor and HostURL, when both set, arm self-draining: the
	// replica drains as soon as its own host enters Suspect, without
	// waiting for an external Evacuator to tell it to.
	Monitor *liveness.Monitor
	HostURL string
	// DrainGrace bounds how long Drain waits for in-flight streams
	// (default 15s).
	DrainGrace time.Duration
	// OnError, if non-nil, observes handler failures.
	OnError func(method string, err error)
}

// Server is one replica: it registers its endpoint URN under the
// service URN and serves streams accepted from the group's clients.
type Server struct {
	cfg ServerConfig
	mux *comm.StreamMux
	own bool   // we built the mux and must close it
	uri string // service URN (naming.ServiceURN)
	urn string // this replica's endpoint URN

	mu       sync.Mutex
	handlers map[string]Handler

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	inflight  sync.WaitGroup
	cancelSub func()

	withdrawOnce sync.Once
	closeOnce    sync.Once
}

// NewServer registers the replica in the catalog and starts accepting
// streams. Handlers may be added before or after (Handle is safe
// concurrently); a stream for a method with no handler is reset.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Name == "" || cfg.Catalog == nil || cfg.Endpoint == nil {
		return nil, errors.New("service: server needs Name, Catalog and Endpoint")
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 15 * time.Second
	}
	s := &Server{
		cfg:      cfg,
		mux:      cfg.Mux,
		uri:      naming.ServiceURN(cfg.Name),
		urn:      cfg.Endpoint.URN(),
		handlers: make(map[string]Handler),
	}
	if s.mux == nil {
		s.mux = comm.NewStreamMux(cfg.Endpoint, cfg.MuxOptions...)
		s.own = true
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if err := cfg.Catalog.Add(s.uri, rcds.AttrServiceReplica, s.urn); err != nil {
		if s.own {
			s.mux.Close()
		}
		s.cancel()
		return nil, fmt.Errorf("service: registering %s replica %s: %w", cfg.Name, s.urn, err)
	}
	if cfg.Monitor != nil && cfg.HostURL != "" {
		events, cancel := cfg.Monitor.Subscribe(16)
		s.cancelSub = cancel
		s.wg.Add(1)
		go s.watchOwnHost(events)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// URN returns the replica's endpoint URN (the value registered under
// the service URN).
func (s *Server) URN() string { return s.urn }

// ServiceURI returns the group's catalog URN.
func (s *Server) ServiceURI() string { return s.uri }

// Mux exposes the stream mux, mainly so tests and co-located clients
// can share it.
func (s *Server) Mux() *comm.StreamMux { return s.mux }

// Draining reports whether the replica has stopped accepting streams.
func (s *Server) Draining() bool { return s.mux.Draining() }

// Handle registers the handler for a method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		st, err := s.mux.Accept(s.ctx)
		if err != nil {
			return // mux closed or server shutting down
		}
		s.inflight.Add(1)
		go s.serve(st)
	}
}

func (s *Server) serve(st *comm.Stream) {
	defer s.inflight.Done()
	s.mu.Lock()
	h := s.handlers[st.Method()]
	s.mu.Unlock()
	if h == nil {
		st.Reset("unknown method " + st.Method())
		return
	}
	if err := h(s.ctx, st); err != nil {
		st.Reset(err.Error())
		if s.cfg.OnError != nil {
			s.cfg.OnError(st.Method(), err)
		}
		return
	}
	st.CloseWrite() // idempotent if the handler already half-closed
}

// watchOwnHost self-drains when this replica's host turns Suspect —
// the same early-warning reaction the Evacuator applies to tasks,
// local to the replica so it fires even with no orchestrator running.
func (s *Server) watchOwnHost(events <-chan liveness.Event) {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case e, ok := <-events:
			if !ok {
				return
			}
			if e.Host == s.cfg.HostURL && (e.To == liveness.Suspect || e.To == liveness.Dead) {
				go s.DrainFor(s.cfg.HostURL)
				return
			}
		}
	}
}

// withdraw removes the replica from the group's catalog entry, once.
func (s *Server) withdraw() {
	s.withdrawOnce.Do(func() {
		s.cfg.Catalog.Remove(s.uri, rcds.AttrServiceReplica, s.urn)
	})
}

// Drain takes the replica out of service gracefully: withdraw the
// catalog registration so new resolutions skip it, stop accepting
// streams (peers that raced the withdrawal get ErrDraining and retry
// on another replica), then wait for in-flight streams to finish —
// bounded by ctx AND the configured DrainGrace. The endpoint stays
// open throughout so in-flight responses can still ride every route.
func (s *Server) Drain(ctx context.Context) error {
	s.withdraw()
	s.mux.Drain()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainGrace)
	defer cancel()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("service: drain of %s replica %s: %w", s.cfg.Name, s.urn, ctx.Err())
	}
	// Handlers have returned; wait for the last buffered response
	// chunks to be consumed (streams reap once both sides close).
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for s.mux.ActiveStreams() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("service: drain of %s replica %s: %w", s.cfg.Name, s.urn, ctx.Err())
		case <-tick.C:
		}
	}
	return nil
}

// DrainFor adapts Drain to the migrate.EvacuatorConfig.DrainHook
// shape: it drains only when the suspect host is this replica's own.
func (s *Server) DrainFor(hostURL string) {
	if s.cfg.HostURL != "" && hostURL != s.cfg.HostURL {
		return
	}
	s.Drain(context.Background())
}

// Close withdraws the registration and stops the replica. In-flight
// handlers are cancelled via their context rather than awaited; use
// Drain first for a graceful exit.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.withdraw()
		s.cancel()
		if s.cancelSub != nil {
			s.cancelSub()
		}
		if s.own {
			s.mux.Close()
		}
	})
	s.wg.Wait()
}
