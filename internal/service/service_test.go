package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/testutil"
)

// world is an in-process universe: a store-backed catalog, a resolver
// over it, and endpoints on loopback TCP.
type world struct {
	t   *testing.T
	cat naming.Catalog
}

func newWorld(t *testing.T) *world {
	t.Helper()
	return &world{t: t, cat: naming.StoreCatalog(rcds.NewStore("svc-test"))}
}

func (w *world) endpoint(urn string) *comm.Endpoint {
	w.t.Helper()
	res := naming.NewResolver(w.cat)
	res.SetTTL(20 * time.Millisecond)
	ep := comm.NewEndpoint(urn, comm.WithResolver(res))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		w.t.Fatal(err)
	}
	if err := naming.Register(w.cat, urn, []comm.Route{route}); err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(ep.Close)
	return ep
}

// heartbeats publishes a host's liveness every interval until stopped.
func (w *world) heartbeats(host string, load float64, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	hostURL := naming.HostURL(host)
	var seq uint64
	beat := func() {
		seq++
		hb := liveness.Heartbeat{Seq: seq, Time: time.Now().UnixNano(), Load: load}
		w.cat.Set(hostURL, rcds.AttrHeartbeat, hb.String())
	}
	beat()
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				beat()
			}
		}
	}()
	stop = func() { once.Do(func() { close(done) }) }
	w.t.Cleanup(stop)
	return stop
}

func (w *world) monitor() *liveness.Monitor {
	w.t.Helper()
	mon := liveness.NewMonitor(w.cat, liveness.Options{
		CheckInterval: 10 * time.Millisecond,
		MinSuspect:    100 * time.Millisecond,
		MaxSuspect:    400 * time.Millisecond,
	})
	w.t.Cleanup(mon.Close)
	return mon
}

// echoReplica runs one echo replica of svc on host; the handler reads
// the request and answers "<tag>:<request>".
func (w *world) echoReplica(svc, host, tag string, mon *liveness.Monitor) (*Server, *comm.Endpoint) {
	w.t.Helper()
	ep := w.endpoint(naming.ProcessURN(host, svc))
	srv, err := NewServer(ServerConfig{
		Name:     svc,
		Catalog:  w.cat,
		Endpoint: ep,
		Monitor:  mon,
		HostURL:  naming.HostURL(host),
	})
	if err != nil {
		w.t.Fatal(err)
	}
	srv.Handle("echo", func(ctx context.Context, st *comm.Stream) error {
		req, err := readAll(ctx, st)
		if err != nil {
			return err
		}
		return st.Write(ctx, []byte(tag+":"+string(req)))
	})
	w.t.Cleanup(srv.Close)
	return srv, ep
}

func readAll(ctx context.Context, st *comm.Stream) ([]byte, error) {
	var out []byte
	for {
		chunk, err := st.Read(ctx)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	testutil.WaitFor(t, d, cond, msg)
}

// TestServiceGroupKillReplicaZeroFailedRequests is the tentpole e2e:
// three replicas serve a sustained call stream, one host dies mid-run,
// and — between per-attempt retry and the liveness-fed balancer — not
// a single Call fails.
func TestServiceGroupKillReplicaZeroFailedRequests(t *testing.T) {
	w := newWorld(t)
	mon := w.monitor()

	hosts := []string{"h1", "h2", "h3"}
	stops := make(map[string]func())
	for _, h := range hosts {
		stops[h] = w.heartbeats(h, 0.5, 20*time.Millisecond)
	}
	var eps []*comm.Endpoint
	for _, h := range hosts {
		_, ep := w.echoReplica("lookup", h, h, mon)
		eps = append(eps, ep)
	}

	cli, err := NewClient(ClientConfig{
		Service:        "lookup",
		Catalog:        w.cat,
		Endpoint:       w.endpoint(naming.ProcessURN("cli", "caller")),
		Monitor:        mon,
		Attempts:       3,
		AttemptTimeout: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var calls, failures atomic.Int64
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				req := fmt.Sprintf("w%d-%d", worker, i)
				resp, err := cli.Call(ctx, "echo", []byte(req))
				cancel()
				calls.Add(1)
				if err != nil {
					failures.Add(1)
					t.Errorf("call %s failed: %v", req, err)
				} else if want := ":" + req; len(resp) < 3 || string(resp[2:]) != want {
					failures.Add(1)
					t.Errorf("call %s: bad response %q", req, resp)
				}
			}
		}(worker)
	}

	// Let the group serve for a while, then crash h2: its heartbeats
	// stop and its endpoint dies without any drain.
	time.Sleep(400 * time.Millisecond)
	stops["h2"]()
	eps[1].Close()

	waitFor(t, 5*time.Second, func() bool {
		return mon.State(naming.HostURL("h2")) == liveness.Suspect ||
			mon.State(naming.HostURL("h2")) == liveness.Dead
	}, "monitor never suspected the killed host")

	// Keep the load running well past detection so post-kill traffic
	// exercises the narrowed rotation.
	time.Sleep(600 * time.Millisecond)
	close(stopLoad)
	wg.Wait()

	if calls.Load() == 0 {
		t.Fatal("no calls issued")
	}
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d calls failed; want zero", f, calls.Load())
	}
	// The balancer must have dropped h2's replica from rotation.
	cands, err := cli.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, urn := range cands {
		if liveness.HostOfURN(urn) == naming.HostURL("h2") {
			t.Fatalf("dead host's replica still in rotation: %v", cands)
		}
	}
	t.Logf("served %d calls across kill with zero failures", calls.Load())
}

// TestServerDrainGraceful: a draining replica finishes its in-flight
// stream, withdraws its registration, and refuses new streams while
// the rest of the group keeps serving.
func TestServerDrainGraceful(t *testing.T) {
	w := newWorld(t)

	started := make(chan struct{})
	release := make(chan struct{})
	epA := w.endpoint(naming.ProcessURN("ha", "slow"))
	srvA, err := NewServer(ServerConfig{Name: "slow", Catalog: w.cat, Endpoint: epA})
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvA.Handle("work", func(ctx context.Context, st *comm.Stream) error {
		req, err := readAll(ctx, st)
		if err != nil {
			return err
		}
		close(started)
		<-release
		return st.Write(ctx, append([]byte("done:"), req...))
	})

	cli, err := NewClient(ClientConfig{
		Service:  "slow",
		Catalog:  w.cat,
		Endpoint: w.endpoint(naming.ProcessURN("cli", "drainer")),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	callDone := make(chan error, 1)
	go func() {
		resp, err := cli.Call(ctx, "work", []byte("x"))
		if err == nil && string(resp) != "done:x" {
			err = fmt.Errorf("bad response %q", resp)
		}
		callDone <- err
	}()
	<-started

	// Drain with the call still in flight. Registration must be gone
	// immediately; Drain itself must block until the call finishes.
	drainDone := make(chan error, 1)
	go func() { drainDone <- srvA.Drain(ctx) }()
	waitFor(t, 2*time.Second, srvA.Draining, "mux never started draining")
	if vals, _ := w.cat.Values(srvA.ServiceURI(), rcds.AttrServiceReplica); len(vals) != 0 {
		t.Fatalf("registration not withdrawn during drain: %v", vals)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned before in-flight stream finished: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// A stream opened against the draining replica is refused.
	st, err := cli.mux.Open(ctx, srvA.URN(), "work")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Read(ctx); !errors.Is(err, comm.ErrDraining) {
		t.Fatalf("open against draining replica: %v, want ErrDraining", err)
	}

	// A second replica registers; new calls land there.
	epB := w.endpoint(naming.ProcessURN("hb", "slow"))
	srvB, err := NewServer(ServerConfig{Name: "slow", Catalog: w.cat, Endpoint: epB})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	srvB.Handle("work", func(ctx context.Context, st *comm.Stream) error {
		if _, err := readAll(ctx, st); err != nil {
			return err
		}
		return st.Write(ctx, []byte("fresh"))
	})
	resp, err := cli.Call(ctx, "work", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "fresh" {
		t.Fatalf("post-drain call answered by %q", resp)
	}

	// Release the slow handler: the in-flight call completes without
	// error and the drain finishes.
	close(release)
	if err := <-callDone; err != nil {
		t.Fatalf("in-flight call failed across drain: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestBalancerSkipsSuspectHosts: the monitor's failure notification
// takes a replica out of rotation via the subscription, not a poll.
func TestBalancerSkipsSuspectHosts(t *testing.T) {
	w := newWorld(t)
	mon := w.monitor()
	stop1 := w.heartbeats("b1", 0, 20*time.Millisecond)
	stop2 := w.heartbeats("b2", 0, 20*time.Millisecond)

	uri := naming.ServiceURN("bal")
	r1 := naming.ProcessURN("b1", "bal")
	r2 := naming.ProcessURN("b2", "bal")
	w.cat.Add(uri, rcds.AttrServiceReplica, r1)
	w.cat.Add(uri, rcds.AttrServiceReplica, r2)

	cli, err := NewClient(ClientConfig{
		Service:  "bal",
		Catalog:  w.cat,
		Endpoint: w.endpoint(naming.ProcessURN("cli", "bal")),
		Monitor:  mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	waitFor(t, 2*time.Second, func() bool {
		c, err := cli.Candidates()
		return err == nil && len(c) == 2
	}, "both replicas should start in rotation")

	// A still-beating host shrugs suspicion off (the next heartbeat
	// recovers it), so silence the host before injecting evidence.
	stop2()
	mon.MarkSuspect(naming.HostURL("b2"), "test evidence")
	waitFor(t, 2*time.Second, func() bool {
		c, err := cli.Candidates()
		return err == nil && len(c) == 1 && c[0] == r1
	}, "suspect host's replica not dropped from rotation")

	// Suspecting every host empties the rotation.
	stop1()
	mon.MarkSuspect(naming.HostURL("b1"), "test evidence")
	waitFor(t, 2*time.Second, func() bool {
		_, err := cli.Candidates()
		return errors.Is(err, ErrNoReplicas)
	}, "candidates should report ErrNoReplicas with all hosts suspect")
}

// TestBalancerWeighsAdvertisedLoad: with no latency history, the
// heartbeat load decides the order — a 10x load gap dwarfs the jitter.
func TestBalancerWeighsAdvertisedLoad(t *testing.T) {
	w := newWorld(t)
	w.heartbeats("idle", 0.1, 20*time.Millisecond)
	w.heartbeats("busy", 9.0, 20*time.Millisecond)

	uri := naming.ServiceURN("weigh")
	idle := naming.ProcessURN("idle", "weigh")
	busy := naming.ProcessURN("busy", "weigh")
	w.cat.Add(uri, rcds.AttrServiceReplica, busy)
	w.cat.Add(uri, rcds.AttrServiceReplica, idle)

	cli, err := NewClient(ClientConfig{
		Service:  "weigh",
		Catalog:  w.cat,
		Endpoint: w.endpoint(naming.ProcessURN("cli", "weigh")),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 10; i++ {
		cands, err := cli.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if cands[0] != idle {
			t.Fatalf("round %d: busy host preferred: %v", i, cands)
		}
	}

	// A failure observation doubles the idle replica's estimate until
	// it loses its edge... but 2x20ms < (1+9)x20ms, so only repeated
	// failures flip the order.
	for i := 0; i < 5; i++ {
		cli.observe(idle, 0, true)
	}
	cands, err := cli.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if cands[0] != busy {
		t.Fatalf("failure-penalised replica still preferred: %v", cands)
	}
}
