// Package service builds replicated service groups out of SNIPE's
// existing primitives, closing the loop the paper sketches for
// "information services" (§4): several task replicas register under one
// catalog URN, clients resolve the group through the RC metadata
// registry and balance their requests across the live replicas.
//
// The design deliberately adds no new wire protocol and no new
// replicated state:
//
//   - Membership is one RC assertion per replica — the replica's
//     endpoint URN added under the service URN (rcds.AttrServiceReplica).
//     Joining and leaving a group are ordinary catalog writes, visible
//     through the same client read cache every other lookup uses.
//   - Load and liveness are NOT republished per service; a replica's
//     process URN names its host, and the host's existing heartbeat
//     (one replicated write per beat, see internal/liveness) already
//     carries both. A service with ten replicas on ten hosts costs ten
//     assertions total, not ten extra write streams.
//   - Requests and responses ride comm's stream layer, so a large
//     response is chunked, flow-controlled and — at stream chunk size —
//     striped across every healthy route to the replica.
//
// Balancing is client-side and liveness-aware: the Client subscribes
// to a liveness.Monitor and drops replicas on suspect/dead hosts from
// rotation before their requests can fail, weights the rest by the
// advertised heartbeat load and by the comm layer's per-route EWMA
// score history, and retries a failed call on a different replica. A
// replica leaving (drain, migration, crash) therefore costs clients a
// retry at worst, and usually nothing.
//
// Graceful drain mirrors the migration layer's philosophy: a draining
// replica withdraws its catalog registration, refuses new streams
// (peers get ErrDraining and retry elsewhere) and finishes in-flight
// ones. Wiring Server.DrainFor as a migrate.Evacuator DrainHook makes
// suspicion trigger the same sequence automatically.
package service

import (
	"errors"
	"fmt"
)

const (
	// DefaultAttempts is how many distinct replicas a Call tries before
	// giving up.
	DefaultAttempts = 3
)

// ErrNoReplicas is returned when a service group has no registered —
// or no live — replicas.
var ErrNoReplicas = errors.New("service: no live replicas")

// groupError wraps the last per-replica failure with call context.
func groupError(service, method string, attempts int, last error) error {
	return fmt.Errorf("service: %s.%s failed after %d attempts: %w",
		service, method, attempts, last)
}
