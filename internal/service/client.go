package service

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
)

// ClientConfig wires a service-group client.
type ClientConfig struct {
	// Service is the group name (resolved via naming.ServiceURN).
	Service  string
	Catalog  naming.Catalog
	Endpoint *comm.Endpoint
	// Mux, when non-nil, is a shared stream mux over Endpoint (an
	// endpoint supports exactly one mux). Nil builds an owned one.
	Mux *comm.StreamMux
	// MuxOptions tunes an owned mux (ignored when Mux is set).
	MuxOptions []comm.StreamMuxOption
	// Monitor, when non-nil, feeds the balancer: the client subscribes
	// to its failure notifications and takes replicas on suspect or
	// dead hosts out of rotation before their calls can fail.
	Monitor *liveness.Monitor
	// Attempts is how many distinct replicas one Call tries (default
	// DefaultAttempts, capped at the replica count).
	Attempts int
	// AttemptTimeout bounds each per-replica attempt (default 2s), so
	// one unresponsive replica cannot eat the whole call deadline.
	AttemptTimeout time.Duration
}

// Client resolves a service group through the catalog and balances
// calls across its live replicas.
//
// Balancing is pick-lowest-score with jitter: a replica's score is the
// client's own EWMA of observed call latency, blended with the comm
// layer's per-route EWMA history for the replica's registered routes
// (RTT, error rate), multiplied by 1+load from the replica host's
// heartbeat. Replicas whose hosts the liveness monitor holds Suspect,
// Dead or Left are skipped outright. The ±10% jitter keeps a fleet of
// clients from stampeding the single momentarily-cheapest replica.
//
// Call retries on a distinct replica after any attempt failure, so the
// group delivers calls at-least-once: a replica may observe a request
// whose response was lost. Handlers should be idempotent or dedupe.
type Client struct {
	cfg ClientConfig
	mux *comm.StreamMux
	own bool
	uri string

	mu        sync.Mutex
	lat       map[string]float64        // replica URN → EWMA call latency, seconds
	down      map[string]liveness.State // host URL → non-placeable state
	rng       *rand.Rand
	cancelSub func()
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewClient builds a client for one service group.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Service == "" || cfg.Catalog == nil || cfg.Endpoint == nil {
		return nil, errors.New("service: client needs Service, Catalog and Endpoint")
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = DefaultAttempts
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	c := &Client{
		cfg:  cfg,
		mux:  cfg.Mux,
		uri:  naming.ServiceURN(cfg.Service),
		lat:  make(map[string]float64),
		down: make(map[string]liveness.State),
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if c.mux == nil {
		c.mux = comm.NewStreamMux(cfg.Endpoint, cfg.MuxOptions...)
		c.own = true
	}
	if cfg.Monitor != nil {
		for _, info := range cfg.Monitor.Snapshot() {
			if !info.State.Placeable() {
				c.down[info.Host] = info.State
			}
		}
		events, cancel := cfg.Monitor.Subscribe(64)
		c.cancelSub = cancel
		c.wg.Add(1)
		go c.watch(events)
	}
	return c, nil
}

// watch folds the monitor's failure notifications into the down-set
// the balancer consults — push-based, so a host death removes its
// replicas from rotation without any per-call liveness lookup.
func (c *Client) watch(events <-chan liveness.Event) {
	defer c.wg.Done()
	for e := range events {
		c.mu.Lock()
		if e.To.Placeable() {
			delete(c.down, e.Host)
		} else {
			c.down[e.Host] = e.To
		}
		c.mu.Unlock()
	}
}

// ServiceURI returns the group's catalog URN.
func (c *Client) ServiceURI() string { return c.uri }

// Replicas lists the group's registered replica URNs, live or not.
func (c *Client) Replicas() ([]string, error) {
	return c.cfg.Catalog.Values(c.uri, rcds.AttrServiceReplica)
}

// Candidates resolves the group and returns live replicas ordered by
// ascending score (best first).
func (c *Client) Candidates() ([]string, error) {
	urns, err := c.Replicas()
	if err != nil {
		return nil, err
	}
	routeHist := make(map[string]comm.RouteScore)
	for _, rs := range c.cfg.Endpoint.RouteScores() {
		routeHist[rs.Route] = rs
	}
	type scored struct {
		urn   string
		score float64
	}
	live := make([]scored, 0, len(urns))
	for _, urn := range urns {
		host := liveness.HostOfURN(urn)
		if host != "" {
			c.mu.Lock()
			_, dead := c.down[host]
			c.mu.Unlock()
			if dead {
				continue
			}
		}
		live = append(live, scored{urn, c.score(urn, host, routeHist)})
	}
	if len(live) == 0 {
		return nil, ErrNoReplicas
	}
	sort.Slice(live, func(i, j int) bool { return live[i].score < live[j].score })
	out := make([]string, len(live))
	for i, s := range live {
		out[i] = s.urn
	}
	return out, nil
}

// defaultLatency is the prior for replicas this client has never
// called: optimistic enough that new replicas get traffic.
const defaultLatency = 0.020 // 20ms

// score computes a replica's balancing score; lower is better.
func (c *Client) score(urn, host string, routeHist map[string]comm.RouteScore) float64 {
	c.mu.Lock()
	lat, ok := c.lat[urn]
	jitter := 0.9 + 0.2*c.rng.Float64()
	c.mu.Unlock()
	if !ok {
		lat = defaultLatency
	}
	// Blend in the comm layer's per-route EWMAs for the replica's
	// registered routes: a replica reachable over a route with bad
	// observed RTT or error history inherits that history even before
	// this client's first call to it.
	if addrs, err := c.cfg.Catalog.Values(urn, rcds.AttrCommAddr); err == nil {
		best := -1.0
		for _, addr := range addrs {
			rs, ok := routeHist[addr]
			if !ok || rs.Samples == 0 {
				continue
			}
			v := (rs.RTTUs / 1e6) * (1 + 4*rs.ErrRate)
			if best < 0 || v < best {
				best = v
			}
		}
		if best >= 0 {
			lat = (lat + best) / 2
		}
	}
	score := lat * jitter
	if host != "" {
		if load, ok := liveness.HostLoad(c.cfg.Catalog, host); ok && load > 0 {
			score *= 1 + load
		}
	}
	return score
}

// observe folds one call outcome into the replica's latency EWMA. A
// failure doubles the estimate (floored at the default prior) so the
// replica is deprioritised but recovers through later successes.
func (c *Client) observe(urn string, d time.Duration, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.lat[urn]
	if !ok {
		cur = defaultLatency
	}
	if failed {
		c.lat[urn] = max(cur, defaultLatency) * 2
		return
	}
	c.lat[urn] = 0.7*cur + 0.3*d.Seconds()
}

// Open picks the best live replica and opens a raw stream to it, for
// callers that want streaming semantics beyond one request/response.
// Returns the chosen replica's URN. No retries: the caller owns the
// stream's failure handling.
func (c *Client) Open(ctx context.Context, method string) (*comm.Stream, string, error) {
	cands, err := c.Candidates()
	if err != nil {
		return nil, "", err
	}
	st, err := c.mux.Open(ctx, cands[0], method)
	if err != nil {
		return nil, "", err
	}
	return st, cands[0], nil
}

// Call performs one request/response exchange: write req, half-close,
// read the response to EOF. A failed attempt is retried on the next
// best replica, re-resolving the group each time so replicas that
// registered or withdrew mid-call are seen; at most cfg.Attempts
// distinct replicas are tried.
func (c *Client) Call(ctx context.Context, method string, req []byte) ([]byte, error) {
	tried := make(map[string]bool)
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			break
		}
		cands, err := c.Candidates()
		if err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		urn := ""
		for _, u := range cands {
			if !tried[u] {
				urn = u
				break
			}
		}
		if urn == "" {
			break // every live replica tried
		}
		tried[urn] = true
		start := time.Now()
		resp, err := c.callOnce(ctx, urn, method, req)
		c.observe(urn, time.Since(start), err != nil)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return nil, groupError(c.cfg.Service, method, len(tried), lastErr)
}

// callOnce runs one attempt against one replica under the per-attempt
// timeout.
func (c *Client) callOnce(ctx context.Context, urn, method string, req []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	st, err := c.mux.Open(ctx, urn, method)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			st.Reset("call abandoned")
		}
	}()
	if err := st.Write(ctx, req); err != nil {
		return nil, err
	}
	if err := st.CloseWrite(); err != nil {
		return nil, err
	}
	var resp []byte
	for {
		chunk, err := st.Read(ctx)
		if err == io.EOF {
			ok = true
			return resp, nil
		}
		if err != nil {
			return nil, err
		}
		resp = append(resp, chunk...)
	}
}

// Close drops the monitor subscription and, when owned, the mux.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		if c.cancelSub != nil {
			c.cancelSub()
		}
		if c.own {
			c.mux.Close()
		}
	})
	c.wg.Wait()
}
