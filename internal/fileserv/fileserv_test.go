package fileserv

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/lifn"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/testutil"
)

type world struct {
	t     *testing.T
	store *rcds.Store
	cat   naming.Catalog
}

func newWorld(t *testing.T) *world {
	s := rcds.NewStore("fs-test")
	return &world{t: t, store: s, cat: naming.StoreCatalog(s)}
}

func (w *world) server(name string) *Server {
	w.t.Helper()
	s, err := NewServer(name, w.cat, nil)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(s.Close)
	return s
}

func (w *world) client(urn string) *Client {
	w.t.Helper()
	ep := comm.NewEndpoint(urn, comm.WithResolver(naming.NewResolver(w.cat)))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		w.t.Fatal(err)
	}
	naming.Register(w.cat, urn, []comm.Route{route})
	w.t.Cleanup(ep.Close)
	return NewClient(w.cat, ep)
}

func TestStoreAndFetch(t *testing.T) {
	w := newWorld(t)
	s := w.server("fs1")
	c := w.client("urn:fc")
	data := []byte("observations: 42")
	if err := c.Store(s.URN(), "weather.dat", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Fetch(s.URN(), "weather.dat")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch: %q %v", got, err)
	}
	// Location registered in RC metadata.
	locs := w.store.Values(naming.FileURN("weather.dat"), rcds.AttrLocation)
	if len(locs) != 1 || locs[0] != s.URN() {
		t.Fatalf("locations: %v", locs)
	}
}

func TestFetchMissing(t *testing.T) {
	w := newWorld(t)
	s := w.server("fs1")
	c := w.client("urn:fc")
	if _, err := c.Fetch(s.URN(), "ghost"); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
}

func TestLargeFileChunked(t *testing.T) {
	w := newWorld(t)
	s := w.server("fs1")
	c := w.client("urn:fc")
	data := make([]byte, 3*chunkSize+17)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := c.Store(s.URN(), "big.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Fetch(s.URN(), "big.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("large fetch: len=%d err=%v", len(got), err)
	}
}

func TestEmptyFile(t *testing.T) {
	w := newWorld(t)
	s := w.server("fs1")
	c := w.client("urn:fc")
	if err := c.Store(s.URN(), "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Fetch(s.URN(), "empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty fetch: %v %v", got, err)
	}
}

func TestSinkIncrementalWrites(t *testing.T) {
	// The paper's file sink: a process streams messages; they land in
	// one file.
	w := newWorld(t)
	s := w.server("fs1")
	c := w.client("urn:fc")
	sink := c.OpenSink(s.URN(), "log.txt")
	for i := 0; i < 5; i++ {
		if err := sink.Write([]byte(fmt.Sprintf("line %d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := c.Fetch(s.URN(), "log.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := "line 0\nline 1\nline 2\nline 3\nline 4\n"
	if string(got) != want {
		t.Fatalf("sink content: %q", got)
	}
}

func TestTwoWritersDoNotInterleave(t *testing.T) {
	w := newWorld(t)
	s := w.server("fs1")
	c1 := w.client("urn:w1")
	c2 := w.client("urn:w2")
	s1 := c1.OpenSink(s.URN(), "same-name")
	s2 := c2.OpenSink(s.URN(), "other-name")
	s1.Write([]byte("AAA"))
	s2.Write([]byte("BBB"))
	s1.Write([]byte("aaa"))
	if err := s1.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, _ := c1.Fetch(s.URN(), "same-name")
	if string(got) != "AAAaaa" {
		t.Fatalf("writer isolation: %q", got)
	}
}

func TestStreamToThirdParty(t *testing.T) {
	// A file source streams to a process other than the requester.
	w := newWorld(t)
	s := w.server("fs1")
	requester := w.client("urn:requester")
	receiverClient := w.client("urn:receiver3p")
	receiverEP := receiverClient.ep

	data := make([]byte, 2*chunkSize+5)
	for i := range data {
		data[i] = byte(i * 7)
	}
	s.Put("stream.dat", data)
	if err := requester.StreamTo(s.URN(), "stream.dat", "urn:receiver3p"); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReceiveStream(receiverEP, s.URN(), 10*time.Second)
	if err != nil || name != "stream.dat" || !bytes.Equal(got, data) {
		t.Fatalf("stream: %q len=%d err=%v", name, len(got), err)
	}
}

func TestStreamToMissingFile(t *testing.T) {
	w := newWorld(t)
	s := w.server("fs1")
	requester := w.client("urn:requester")
	receiver := w.client("urn:receiver3p")
	if err := requester.StreamTo(s.URN(), "ghost", "urn:receiver3p"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReceiveStream(receiver.ep, s.URN(), 5*time.Second); !errors.Is(err, ErrRemote) {
		t.Fatalf("missing file stream: %v", err)
	}
}

func TestList(t *testing.T) {
	w := newWorld(t)
	s := w.server("fs1")
	c := w.client("urn:fc")
	s.Put("b", []byte("2"))
	s.Put("a", []byte("1"))
	files, err := c.List(s.URN())
	if err != nil || len(files) != 2 || files[0] != "a" {
		t.Fatalf("List = %v, %v", files, err)
	}
}

func TestPullReplication(t *testing.T) {
	w := newWorld(t)
	s1 := w.server("fs1")
	s2 := w.server("fs2")
	c := w.client("urn:fc")
	s1.Put("shared", []byte("replica me"))
	if err := c.Pull(s2.URN(), "shared", s1.URN()); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("shared")
	if !ok || string(got) != "replica me" {
		t.Fatalf("pulled: %q %v", got, ok)
	}
	// Both servers are now registered locations.
	locs := w.store.Values(naming.FileURN("shared"), rcds.AttrLocation)
	if len(locs) != 2 {
		t.Fatalf("locations after pull: %v", locs)
	}
}

func TestReplicatorSweep(t *testing.T) {
	w := newWorld(t)
	s1 := w.server("fs1")
	s2 := w.server("fs2")
	s3 := w.server("fs3")
	s1.Put("f1", []byte("one"))
	s2.Put("f2", []byte("two"))

	r := NewReplicator(w.client("urn:repl"), ReplicationPolicy{MinReplicas: 2})
	created := r.RunOnce()
	if created != 2 {
		t.Fatalf("created %d replicas, want 2", created)
	}
	// Every file now has 2 replicas; a second sweep is a no-op.
	if created := r.RunOnce(); created != 0 {
		t.Fatalf("second sweep created %d", created)
	}
	count := 0
	for _, s := range []*Server{s1, s2, s3} {
		if _, ok := s.Get("f1"); ok {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("f1 has %d replicas", count)
	}
}

func TestReplicatorBackground(t *testing.T) {
	w := newWorld(t)
	s1 := w.server("fs1")
	s2 := w.server("fs2")
	r := NewReplicator(w.client("urn:repl"), ReplicationPolicy{MinReplicas: 2, Interval: 50 * time.Millisecond})
	r.Start()
	defer r.Stop()
	s1.Put("late-file", []byte("data"))
	testutil.WaitFor(t, 5*time.Second, func() bool {
		_, ok := s2.Get("late-file")
		return ok
	}, "background replication never happened")
	if r.Copied() == 0 {
		t.Fatal("Copied() = 0")
	}
	r.Stop() // idempotent
}

func TestFetchAnyFailover(t *testing.T) {
	w := newWorld(t)
	s1 := w.server("fs1")
	s2 := w.server("fs2")
	s1.Put("ha-file", []byte("available"))
	c := w.client("urn:fc")
	if err := c.Pull(s2.URN(), "ha-file", s1.URN()); err != nil {
		t.Fatal(err)
	}
	// Kill the first replica; FetchAny must fail over to the second.
	s1.Close()
	c.SetTimeout(2 * time.Second)
	got, err := c.FetchAny("ha-file", nil)
	if err != nil || string(got) != "available" {
		t.Fatalf("FetchAny after replica failure: %q %v", got, err)
	}
	// No replicas at all.
	if _, err := c.FetchAny("never-stored", nil); !errors.Is(err, lifn.ErrNoLocations) {
		t.Fatalf("want ErrNoLocations, got %v", err)
	}
}

func TestHTTPExport(t *testing.T) {
	w := newWorld(t)
	s := w.server("fs1")
	s.Put("doc.txt", []byte("hypertext"))
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/files/doc.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 32)
	n, _ := resp.Body.Read(buf)
	if resp.StatusCode != 200 || string(buf[:n]) != "hypertext" {
		t.Fatalf("HTTP: %d %q", resp.StatusCode, buf[:n])
	}
	if resp2, _ := ts.Client().Get(ts.URL + "/files/missing"); resp2.StatusCode != 404 {
		t.Fatalf("missing file: %d", resp2.StatusCode)
	}
	if resp3, _ := ts.Client().Get(ts.URL + "/other"); resp3.StatusCode != 404 {
		t.Fatalf("bad path: %d", resp3.StatusCode)
	}
}

func TestServiceRegistration(t *testing.T) {
	w := newWorld(t)
	s1 := w.server("fs1")
	w.server("fs2")
	c := w.client("urn:fc")
	servers, err := c.Servers()
	if err != nil || len(servers) != 2 {
		t.Fatalf("Servers = %v, %v", servers, err)
	}
	s1.Close()
	servers, _ = c.Servers()
	if len(servers) != 1 {
		t.Fatalf("after close: %v", servers)
	}
}

func TestFileMsgRoundTrip(t *testing.T) {
	f := &fileMsg{Op: opData, ReqID: 7, Name: "n", Dst: "d", Data: []byte{1},
		EOF: true, OK: true, Err: "e", Names: []string{"x"}}
	got, err := decodeFileMsg(f.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != opData || got.ReqID != 7 || got.Name != "n" || got.Dst != "d" ||
		!got.EOF || !got.OK || got.Err != "e" || len(got.Names) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := decodeFileMsg([]byte{9}); err == nil {
		t.Fatal("truncated accepted")
	}
}
